#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repo's Markdown files.

Checks every `[text](target)` link in *.md files (excluding build/ and
.git/): a relative target must exist on disk, resolved against the file
that references it. External schemes (http/https/mailto) and pure in-page
anchors (#...) are skipped; a `path#anchor` target is checked for the path
part only. Other reference styles (<autolinks>, reference-style
definitions) are not parsed — use inline links for intra-repo paths.

Usage: python3 tools/check_md_links.py [repo_root]
Exit status: 0 = all links resolve, 1 = at least one broken link.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {"build", ".git", ".claude"}


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.relative_to(root).parts):
            yield path


def check_text(text: str, md: Path, root: Path):
    broken = []
    links = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        for target in LINK_RE.findall(line):
            links += 1
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (root / path_part.lstrip("/")) if target.startswith("/") \
                else (md.parent / path_part)
            if not resolved.exists():
                broken.append((lineno, target))
    return broken, links


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    root = root.resolve()
    total_links = 0
    failures = []
    for md in md_files(root):
        broken, links = check_text(md.read_text(encoding="utf-8"), md, root)
        total_links += links
        for lineno, target in broken:
            failures.append(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} broken link(s)")
        return 1
    print(f"OK: all intra-repo links resolve ({total_links} links scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
