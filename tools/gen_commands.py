#!/usr/bin/env python3
"""Generate external command streams (the ctl::parse_tasks JSON format).

Writes a JSON array of control-plane tasks — one object per line, unique
ascending ids, non-decreasing `at_s` timestamps — that
`bench_cluster_consolidation --commands=FILE` and `tools/pas_ctl` feed to
`ctl::ControlPlane`. Deterministic for a given (seed, hosts, vms, horizon,
count): the bundled set under examples/commands/ was produced by the
commands in examples/commands/README.md and can be regenerated bit-for-bit.

The mix models a day of orchestrator traffic: operator migrations, a
stop/start maintenance pair per stopped VM, an occasional crash drill with
a later restart attempt, link-bandwidth changes, and shift-change
annotations. Ids and hosts are drawn in range for the target fleet, so a
generated stream parses cleanly against --hosts/--vms dims; whether each
command is *accepted* still depends on cluster state at fire time (that is
the point — the result log records it).

Usage:
  tools/gen_commands.py --out=examples/commands/smoke.json \
      --seed=1 --hosts=8 --vms=64 --horizon=400 --count=12
"""

import argparse
import random
import sys


def gen_tasks(rng: random.Random, hosts: int, vms: int, horizon: float,
              count: int) -> list[dict]:
    tasks = []
    stopped = []  # VMs with a pending start (stop/start pairs stay matched)
    crashed = []  # hosts hit by a drill (restart targets avoid them)
    next_id = 1

    def live_host() -> int:
        alive = [h for h in range(hosts) if h not in crashed]
        return rng.choice(alive) if alive else 0

    times = sorted(round(rng.uniform(0.03, 0.95) * horizon, 6) for _ in range(count))
    for at in times:
        task = {"id": next_id, "at_s": at}
        next_id += 1
        roll = rng.random()
        if stopped and roll < 0.2:
            task["task"] = "start_vm"
            task["vm"] = stopped.pop(0)
            task["host"] = live_host()
        elif roll < 0.45:
            task["task"] = "migrate"
            task["vm"] = rng.randrange(vms)
            task["host"] = live_host()
        elif roll < 0.6:
            task["task"] = "stop_vm"
            vm = rng.randrange(vms)
            task["vm"] = vm
            stopped.append(vm)
        elif roll < 0.68 and len(crashed) < hosts - 2:
            task["task"] = "crash_host"
            victim = live_host()
            task["host"] = victim
            task["restart"] = rng.random() < 0.75
            crashed.append(victim)
        elif roll < 0.76 and crashed:
            # A later what-if: try restarting something onto a live host.
            task["task"] = "restart_vm"
            task["vm"] = rng.randrange(vms)
            task["host"] = live_host()
        elif roll < 0.88:
            task["task"] = "set_link_bandwidth"
            task["mb_per_s"] = round(rng.uniform(40.0, 160.0), 3)
        else:
            task["task"] = "annotate"
            task["note"] = f"shift change #{task['id']}"
        tasks.append(task)
    return tasks


def format_task(task: dict) -> str:
    parts = [f'"id": {task["id"]}', f'"at_s": {task["at_s"]:.6f}',
             f'"task": "{task["task"]}"']
    for key in ("vm", "host"):
        if key in task:
            parts.append(f'"{key}": {task[key]}')
    if "restart" in task:
        parts.append(f'"restart": {"true" if task["restart"] else "false"}')
    if "mb_per_s" in task:
        parts.append(f'"mb_per_s": {task["mb_per_s"]:.3f}')
    if "note" in task:
        parts.append(f'"note": "{task["note"]}"')
    return "{" + ", ".join(parts) + "}"


def main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", required=True, help="output JSON path")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--hosts", type=int, default=8)
    p.add_argument("--vms", type=int, default=64)
    p.add_argument("--horizon", type=float, default=400.0,
                   help="run length the stream targets, seconds")
    p.add_argument("--count", type=int, default=12, help="number of tasks")
    args = p.parse_args(argv)

    if args.hosts < 2 or args.vms < 1 or args.count < 1 or args.horizon <= 0:
        p.error("need --hosts >= 2, --vms >= 1, --count >= 1, --horizon > 0")

    rng = random.Random(args.seed)
    tasks = gen_tasks(rng, args.hosts, args.vms, args.horizon, args.count)

    with open(args.out, "w", newline="\n") as f:
        f.write("[\n")
        for i, task in enumerate(tasks):
            f.write(format_task(task) + ("," if i + 1 < len(tasks) else "") + "\n")
        f.write("]\n")
    kinds = sorted({t["task"] for t in tasks})
    print(f"wrote {args.out}: {len(tasks)} task(s), kinds: {', '.join(kinds)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
