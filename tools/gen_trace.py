#!/usr/bin/env python3
"""Generate replayable demand traces (the wl::Trace CSV format).

Writes a step-function demand series — `t_sec,demand_pct[,memory_mb]`,
strictly increasing timestamps, final demand 0 — that
`bench_cluster_consolidation --trace=DIR` and
`scenario::WorkloadPreset::kTrace` replay through `wl::TraceReplay`.
Deterministic for a given (kind, seed): the bundled set under
examples/traces/ was produced by the commands in examples/traces/README.md
and can be regenerated bit-for-bit.

Shapes:
  web     sinusoidal day cycle (interactive tenants: quiet night, busy
          afternoon) plus mild seeded noise
  batch   off-peak rectangular batch windows (nightly jobs)
  bursty  low baseline with short seeded spikes
  flat    constant demand (calibration / sizing baseline)

Usage:
  tools/gen_trace.py --out=examples/traces/web_day.csv --kind=web \
      --seed=1 --duration=4000 --step=10 --peak=45 [--memory=512]
"""

import argparse
import math
import random
import sys


def demand_series(kind: str, rng: random.Random, steps: int, peak: float) -> list[float]:
    out = []
    for i in range(steps):
        phase = i / max(1, steps)  # one "day" across the whole trace
        if kind == "web":
            # Night trough at phase 0, afternoon crest at phase ~0.6.
            base = max(0.0, math.sin(math.pi * (phase**0.8)))
            v = peak * (0.15 + 0.85 * base) + rng.uniform(-0.05, 0.05) * peak
        elif kind == "batch":
            # Two nightly windows: [0.05, 0.25) and [0.7, 0.85).
            active = 0.05 <= phase < 0.25 or 0.7 <= phase < 0.85
            v = peak * (0.9 + rng.uniform(0.0, 0.1)) if active else 0.0
        elif kind == "bursty":
            v = peak * 0.08
            if rng.random() < 0.06:
                v = peak * rng.uniform(0.6, 1.0)
        elif kind == "flat":
            v = peak
        else:
            raise ValueError(f"unknown kind {kind!r}")
        out.append(min(99.0, max(0.0, v)))
    return out


def main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", required=True, help="output CSV path")
    p.add_argument("--kind", default="web", choices=["web", "batch", "bursty", "flat"])
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration", type=float, default=4000.0, help="trace length, seconds")
    p.add_argument("--step", type=float, default=10.0, help="interval length, seconds")
    p.add_argument("--peak", type=float, default=45.0, help="peak demand, percent")
    p.add_argument("--memory", type=float, default=0.0,
                   help="constant memory footprint column, MB (0 = omit)")
    args = p.parse_args(argv)

    if args.step <= 0 or args.duration < args.step:
        p.error("--duration must cover at least one --step")
    steps = int(args.duration / args.step)
    rng = random.Random(args.seed)
    series = demand_series(args.kind, rng, steps, args.peak)

    with open(args.out, "w", newline="\n") as f:
        f.write("t_sec,demand_pct,memory_mb\n" if args.memory > 0 else
                "t_sec,demand_pct\n")
        for i, v in enumerate(series):
            cells = [f"{i * args.step:.6f}", f"{v:.6f}"]
            if args.memory > 0:
                cells.append(f"{args.memory:.6f}")
            f.write(",".join(cells) + "\n")
        # The closing point: demand 0 from the end of the last interval on.
        cells = [f"{steps * args.step:.6f}", "0.000000"]
        if args.memory > 0:
            cells.append(f"{args.memory:.6f}")
        f.write(",".join(cells) + "\n")
    print(f"wrote {args.out}: {steps + 1} points, kind={args.kind}, "
          f"peak={max(series):.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
