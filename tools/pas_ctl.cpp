// pas_ctl: drive the hosting-cluster simulator from an external command
// stream — the control plane's standalone front end.
//
// Two modes over the same ctl::ControlPlane:
//
//   batch (default)   Reads a whole task log through a ctl::FileCommunicator
//                     (a regular file, or a named pipe — the read blocks
//                     until the writer closes it), parses it strictly
//                     against the fleet dims (malformed input exits 1 with
//                     the origin:line diagnostic), runs the scenario to the
//                     horizon, and publishes the result log to --results
//                     (stdout when omitted). Deterministic end to end: the
//                     same stream over the same scenario yields the same
//                     result log, byte for byte, in every engine.
//
//   --repl            Line-oriented interactive driver on stdin:
//                         {"id": 1, "at_s": 10, "task": "migrate", ...}
//                             queue one task (same JSON as a stream line)
//                         run <seconds>
//                             advance the cluster to absolute sim-time
//                         status
//                             one-line fleet summary
//                         quit
//                             publish the result log and exit
//                     Tasks queued with at_s in the past fire at the next
//                     event boundary (ControlPlane::submit). Feeding the
//                     same line sequence replays the same session.
//
// Usage: pas_ctl --commands=FILE [--results=FILE] [--repl]
//          [--hosts=8] [--vms=64] [--horizon=400] [--seed=17]
//          [--threads=1] [--slow] [--chaos-seed=N]
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/flags.hpp"
#include "common/units.hpp"
#include "control/communicator.hpp"
#include "control/control_plane.hpp"
#include "control/task.hpp"
#include "scenario/hosting_cluster.hpp"

namespace {

using pas::common::seconds;
using pas::common::SimTime;

struct Options {
  std::string commands;
  std::string results;
  bool repl = false;
  std::size_t hosts = 8;
  std::size_t vms = 64;
  double horizon_s = 400.0;
  std::uint64_t seed = 17;
  std::size_t threads = 1;
  bool fast_path = true;
  std::uint64_t chaos_seed = 0;
};

std::unique_ptr<pas::cluster::Cluster> build(const Options& opt) {
  pas::scenario::HostingClusterConfig cfg;
  cfg.hosts = opt.hosts;
  cfg.vms = opt.vms;
  cfg.horizon = seconds(static_cast<long long>(opt.horizon_s));
  cfg.seed = opt.seed;
  cfg.threads = opt.threads;
  cfg.fast_path = opt.fast_path;
  cfg.chaos_seed = opt.chaos_seed;
  return pas::scenario::build_hosting_cluster(cfg);
}

void print_status(pas::cluster::Cluster& cluster) {
  std::printf("t=%.3fs hosts=%zu (on: %zu, crashed: %zu) vms: %zu running, %zu lost\n",
              cluster.now().sec(), cluster.host_count(), cluster.powered_on_count(),
              cluster.crashed_count(), cluster.running_vm_count(), cluster.lost_vm_count());
}

int run_batch(const Options& opt) {
  auto comm = std::make_unique<pas::ctl::FileCommunicator>(opt.commands, opt.results);
  auto plane = std::make_unique<pas::ctl::ControlPlane>(
      std::move(comm), pas::ctl::FleetDims{opt.hosts, opt.vms});
  const std::size_t tasks = plane->tasks().size();

  auto cluster = build(opt);
  pas::ctl::ControlPlane* ctl = plane.get();
  cluster->install_control(std::move(plane));
  cluster->run_until(seconds(static_cast<long long>(opt.horizon_s)));

  ctl->publish();
  std::fprintf(stderr, "pas_ctl: %zu task(s), %zu fired: %zu ok, %zu rejected, %zu superseded\n",
               tasks, ctl->results().size(), ctl->accepted(), ctl->rejected(),
               ctl->superseded());
  print_status(*cluster);
  return 0;
}

int run_repl(const Options& opt) {
  auto cluster = build(opt);
  // An empty scripted stream: the plane exists purely as a submit() target.
  // Arm it immediately (run_until to the current instant advances nothing
  // but schedules the control plane onto the queue) so the first task line
  // works without a prior `run`.
  cluster->install_control(
      std::make_unique<pas::ctl::ControlPlane>(std::vector<pas::ctl::Task>{}));
  cluster->run_until(cluster->now());
  pas::ctl::ControlPlane* ctl = cluster->control();

  const SimTime horizon = seconds(static_cast<long long>(opt.horizon_s));
  std::string line;
  std::uint64_t repl_line = 0;
  while (std::getline(std::cin, line)) {
    ++repl_line;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      if (line.compare(first, 4, "quit") == 0 || line.compare(first, 4, "exit") == 0) break;
      if (line.compare(first, 6, "status") == 0) {
        print_status(*cluster);
        continue;
      }
      if (line.compare(first, 4, "run ") == 0) {
        const double to_s = std::stod(line.substr(first + 4));
        const SimTime to = pas::common::usec(static_cast<long long>(to_s * 1e6));
        if (to <= cluster->now()) {
          std::fprintf(stderr, "run %.3f: already at %.3fs\n", to_s, cluster->now().sec());
          continue;
        }
        cluster->run_until(std::min(to, horizon));
        print_status(*cluster);
        continue;
      }
      // Anything else is one task object — parsed as a single-element
      // stream so it gets the full strict treatment, with the REPL line
      // number as the origin's line (wrap adds one line above).
      const std::string origin = "<repl:" + std::to_string(repl_line) + ">";
      auto tasks = pas::ctl::parse_tasks("[\n" + line + "\n]", origin,
                                         {opt.hosts, opt.vms});
      for (const pas::ctl::Task& task : tasks) {
        ctl->submit(task);
        std::fprintf(stderr, "queued task %llu (%s) at %.3fs\n",
                     static_cast<unsigned long long>(task.id),
                     pas::ctl::to_string(task.kind), task.at.sec());
      }
    } catch (const std::exception& err) {
      std::fprintf(stderr, "error: %s\n", err.what());
    }
  }

  const std::string log = ctl->result_log();
  if (opt.results.empty()) {
    std::fputs(log.c_str(), stdout);
  } else {
    std::ofstream out(opt.results, std::ios::binary);
    out << log;
  }
  std::fprintf(stderr, "pas_ctl: %zu fired: %zu ok, %zu rejected, %zu superseded\n",
               ctl->results().size(), ctl->accepted(), ctl->rejected(), ctl->superseded());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const pas::common::Flags flags(argc, argv);
  Options opt;
  opt.commands = flags.get_or("commands", "");
  opt.results = flags.get_or("results", "");
  opt.repl = flags.has("repl");
  opt.hosts = static_cast<std::size_t>(flags.get_int("hosts", 8));
  opt.vms = static_cast<std::size_t>(flags.get_int("vms", 64));
  opt.horizon_s = flags.get_double("horizon", 400.0);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  opt.fast_path = !flags.has("slow");
  opt.chaos_seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 0));

  if (!opt.repl && opt.commands.empty()) {
    std::fprintf(stderr,
                 "pas_ctl: need --commands=FILE (batch) or --repl (interactive)\n"
                 "usage: pas_ctl --commands=FILE [--results=FILE] [--repl]\n"
                 "         [--hosts=8] [--vms=64] [--horizon=400] [--seed=17]\n"
                 "         [--threads=1] [--slow] [--chaos-seed=N]\n");
    return 2;
  }

  try {
    return opt.repl ? run_repl(opt) : run_batch(opt);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "pas_ctl: %s\n", err.what());
    return 1;
  }
}
