// Fig. 7 — "Absolute loads with our governor / SEDF scheduler / exact
// load": the extra slices exactly compensate the lowered frequency, so SEDF
// "brings a solution" for exact loads.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 7";
  spec.title = "Absolute loads with the stable governor (SEDF scheduler, exact load)";
  spec.expectation =
      "V20 absolute load flat at 20 % through the entire run — its SLA "
      "holds even at 1600 MHz";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kSedf;
  spec.cfg.governor = "stable-ondemand";
  spec.cfg.load = pas::scenario::LoadKind::kExact;
  spec.absolute_view = true;
  return pas::bench::run_figure(argc, argv, spec);
}
