// Ablation D — consolidation vs DVFS complementarity (paper §2.3).
//
// Fixed fleet demand (24 VMs x 12 % CPU), sweeping the memory footprint per
// VM. As memory binds, consolidation needs more hosts, per-host CPU load
// falls, and the power DVFS/PAS reclaims on top of consolidation grows —
// "DVFS is complementary to consolidation".
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "consolidation/consolidation.hpp"
#include "platform/host_class.hpp"

int main(int argc, char** argv) {
  using namespace pas;
  const common::Flags flags{argc, argv};
  const int vm_count = static_cast<int>(flags.get_int("vms", 24));

  const auto fleet =
      platform::planner_fleet(static_cast<std::size_t>(vm_count), platform::optiplex_755());

  std::printf("=== Ablation D: consolidation is memory-bound; DVFS is complementary ===\n");
  std::printf("%d VMs, 12 %% CPU demand each, 4 GB hosts; sweeping memory per VM.\n\n",
              vm_count);
  std::printf("  %10s %9s %14s %12s %14s %12s\n", "VM mem MB", "hosts on", "mean load %",
              "power W", "power@max W", "DVFS gain %");

  for (const double mem : {256.0, 512.0, 1024.0, 1536.0, 2048.0, 3072.0}) {
    std::vector<consolidation::VmSpec> vms;
    for (int i = 0; i < vm_count; ++i) {
      consolidation::VmSpec v;
      v.name = "vm" + std::to_string(i);
      v.credit = 12.0;
      v.cpu_demand_pct = 12.0;
      v.memory_mb = mem;
      vms.push_back(v);
    }
    const auto placement = consolidation::place_ffd(vms, fleet);
    const auto outcome = consolidation::evaluate(placement, vms, fleet);
    const double gain =
        outcome.total_power_max_freq_watts > 0
            ? 100.0 * outcome.dvfs_saving_watts() / outcome.total_power_max_freq_watts
            : 0.0;
    std::printf("  %10.0f %9zu %14.1f %12.1f %14.1f %12.1f\n", mem, outcome.hosts_on,
                outcome.mean_active_load_pct, outcome.total_power_watts,
                outcome.total_power_max_freq_watts, gain);
  }

  std::printf("\nreading: at small footprints consolidation packs hosts to ~100 %% CPU and\n"
              "DVFS reclaims nothing; as memory binds first, active hosts run ever more\n"
              "underloaded and the PAS frequency choice recovers a growing share of the\n"
              "bill — the paper's §2.3 argument, quantified.\n");
  return 0;
}
