// Fig. 3 — "Global loads with Ondemand governor / Credit scheduler / exact
// load": the stock governor is aggressive and unstable.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 3";
  spec.title = "Global loads with the stock Ondemand governor (credit scheduler, exact load)";
  spec.expectation =
      "same load plateaus as Fig. 2 but the frequency trace oscillates "
      "(no hysteresis, 20 ms samples); compare transition count with Fig. 4";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kCredit;
  spec.cfg.governor = "ondemand";
  spec.cfg.load = pas::scenario::LoadKind::kExact;
  return pas::bench::run_figure(argc, argv, spec);
}
