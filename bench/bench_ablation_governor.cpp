// Ablation B — governor stability vs energy (the Fig. 3 / Fig. 4 trade-off
// quantified).
//
// Runs the two-VM exact-load profile under every governor and reports
// frequency transitions, mean power, energy, and V20's SLA violation — the
// numbers behind "our governor ... is less aggressive and more stable, and
// consequently saves less energy".
#include <cstdio>

#include "common/flags.hpp"
#include "scenario/two_vm.hpp"

int main(int argc, char** argv) {
  using namespace pas;
  const common::Flags flags{argc, argv};

  std::printf("=== Ablation B: governor policies on the two-VM exact-load profile ===\n\n");
  std::printf("  %-16s %12s %10s %10s %14s %14s\n", "governor", "transitions", "avg W",
              "energy kJ", "V20 SLA viol%", "V70 SLA viol%");

  for (const char* name :
       {"performance", "powersave", "ondemand", "stable-ondemand", "conservative"}) {
    scenario::TwoVmConfig cfg;
    cfg.scheduler = sched::SchedulerKind::kCredit;
    cfg.governor = name;
    cfg.load = scenario::LoadKind::kExact;
    if (flags.has("short")) {
      cfg.total = common::seconds(2000);
      cfg.v20_from = common::seconds(100);
      cfg.v20_until = common::seconds(1700);
      cfg.v70_from = common::seconds(600);
      cfg.v70_until = common::seconds(1300);
      cfg.trace_stride = common::seconds(5);
    }
    const scenario::TwoVmResult r = scenario::run_two_vm(cfg);
    std::printf("  %-16s %12llu %10.1f %10.1f %14.1f %14.1f\n", name,
                static_cast<unsigned long long>(r.freq_transitions), r.average_watts,
                r.energy_joules / 1000.0, 100.0 * r.v20_sla_violation,
                100.0 * r.v70_sla_violation);
  }

  std::printf(
      "\nreading: performance wastes energy but never violates; powersave violates\n"
      "massively; stock ondemand is cheap but twitchy (transition count) and violates\n"
      "V20's SLA at low frequency; stable-ondemand keeps transitions low at slightly\n"
      "higher energy — and still violates V20's SLA, which is why PAS exists.\n");
  return 0;
}
