// Fig. 9 — "Global loads with the PAS scheduler / thrashing load": the
// contribution. PAS computes the fitting frequency itself and rescales
// credits by 1/(ratio*cf), so V20 gets 33 % of a 1600 MHz processor — the
// same computing capacity as 20 % of a 2667 MHz one — and not a cycle more.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 9";
  spec.title = "Global loads with the PAS scheduler (thrashing load)";
  spec.expectation =
      "phase 1/3: frequency 1600 MHz, V20 capped at a compensated 33 % "
      "global; phase 2: frequency 2667 MHz, caps back to 20/70";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kCredit;
  spec.cfg.governor = "";  // PAS owns DVFS
  spec.cfg.controller = pas::scenario::ControllerKind::kPas;
  spec.cfg.load = pas::scenario::LoadKind::kThrashing;
  spec.cfg.dom0_demand = 10.0;
  return pas::bench::run_figure(argc, argv, spec);
}
