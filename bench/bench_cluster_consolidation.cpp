// Cluster consolidation bench: the §2.3 figure made dynamic, plus the
// cluster layer's throughput and exactness gates.
//
// One scenario — 8 hosts x 64 VMs, tenants spread round-robin, an online
// manager consolidating them with live migrations — measured three ways:
//
//   static spread      : no manager; every host on, pinned at max frequency
//   consolidation only : manager migrates + VOVO, frequency pinned at max
//   consolidation + PAS: manager additionally scales each host's frequency
//                        (credits eq.-4-compensated)
//
// The consolidation-only minus consolidation+PAS gap is the energy DVFS
// reclaims ON TOP of consolidation — positive exactly because memory binds
// before CPU (§2.3), now demonstrated on a running fleet with migration
// overhead and downtime included rather than on a frozen placement.
//
// The bench also A/Bs the event-driven fast path against the reference
// slow-stepped loop at full cluster scale (byte-identical traces required)
// and records simulated-seconds-per-wall-second, with an optional floor
// for CI (--require-rate=2000).
//
// --threads=N additionally runs the same scenario on the parallel cluster
// engine (N executors stepping host segments on a thread pool) and records
// serial-vs-parallel wall time as `parallel_speedup`. The parallel run
// must be byte-identical to the serial one — that gate is always on —
// and --require-parallel-speedup=X turns the speedup into a CI floor
// (full runs only; --smoke keeps the exactness check but is exempt from
// the speedup gate, which needs real cores and a real horizon).
//
// --trace=DIR additionally replays a recorded-demand scenario: the same
// fleet, every tenant a wl::TraceReplay over a trace from DIR
// (scenario::WorkloadPreset::kTrace, assignment seeded by --fleet-seed).
// The replay is run fast-vs-slow (and at --threads if > 1) and must stay
// byte-identical — `trace.replay_identical` is gated like the other
// identity contracts, smoke mode included; results land in the
// `trace{...}` JSON block.
//
// --fleet=mixed swaps the uniform 8-GB fleet for the heterogeneous
// platform catalog (scenario::FleetPreset::kMixed: xeon / optiplex / elite
// round-robin, hungriest class first). The same three policies run on the
// mixed fleet, plus a fourth — the manager with efficient-first packing
// turned OFF (naive index-order FFD) — and the gap between naive and
// efficient-first is the energy the heterogeneity-aware cost term is
// worth. Per-class host counts and the per-class energy split land in the
// `hetero{...}` JSON block; --require-hetero-saving turns the gap into a
// CI floor (full runs only; --smoke is exempt like the speedup gate — a
// short horizon barely starts packing).
//
// --chaos-seed=N additionally reruns the scenario under a seeded fault
// schedule (fault::draw_fault_plan: host crashes, migration aborts, link
// degradation, planner brownouts) fast-vs-slow (and at --threads if > 1).
// Byte-identity under faults is gated like the other identity contracts,
// smoke included; survived-VM and recovery-latency stats land in the
// `chaos{...}` JSON block. The chaos runs are separate from the policy
// measurements above — fault-free numbers stay fault-free.
//
// --commands=FILE additionally runs the scenario under an external command
// stream (ctl::parse_tasks over a JSON task log; see src/control/task.hpp)
// fast-vs-slow (and at --threads if > 1). The control plane is held to the
// trace-replay contract: byte-identical cluster state AND result logs
// across engines, a byte-identical result log on re-record, and a
// byte-exact annotation round trip (result log → no-op annotate stream →
// re-record). The combined `control.replay_identical` verdict is gated
// always, smoke included; task/acceptance counts land in the
// `control{...}` JSON block.
//
// --scale-hosts=N (with --scale-vms, --scale-horizon) adds the SCALE tier:
// the same hosting scenario at fleet size (the CI gate runs 1000 hosts x
// 10000 VMs), executed twice — the delta-driven incremental planner
// (ClusterManagerConfig::incremental, the default) against the legacy
// full-replan manager — with byte-identity between the two ALWAYS gated:
// the incremental planner is an optimization, never a behavior change.
// Planner wall time is metered inside the manager (planner_ns / planning
// ticks / plans skipped) and lands in the `scale{...}` JSON block;
// --require-scale-rate puts a sim-s/wall-s floor on the scale run,
// --require-planner-speedup a floor on legacy-vs-incremental planner time,
// and --require-scale-planner-ns a ceiling on incremental planner ns per
// manager tick (all full runs only — --smoke is exempt, scale needs scale).
//
// Every invocation also reports the sparse driver's dispatch counters in
// the `engine{...}` JSON block (segments / dispatches / bulk_skips /
// active_fraction / pool_grain, taken from the scale run when present,
// else the 8x64 fast run); --require-active-fraction=X turns the fraction
// into a CI ceiling on the scale tier (full runs only, --smoke exempt).
//
// --federation=K adds the FEDERATION tier: K hosting-cluster shards (the
// same per-shard recipe, shard 0 skew-loaded with a quarter of the last
// shard's tenants) under one fed::Federation — a global planner balancing
// per-shard aggregate books with bounded cross-shard WAN migrations. The
// federated run is executed slow-path, fast-path, and (at --threads > 1)
// on the parallel engine; every shard must be byte-identical across all
// of them AND the cross-shard migration ledgers must match — gated
// always, smoke included. With K = 1 the federation must degrade
// byte-exactly to the bench's own single-cluster fast run (it schedules
// no federation events at all). Shard count, cross-shard census per link
// kind and sim-s/wall-s land in the `federation{...}` JSON block;
// --require-federation-rate puts a floor on the federated rate (full
// runs only, --smoke exempt).
//
// Identity verdicts are tri-state throughout: a `*_identical` JSON field
// is true/false only when its comparison actually executed, and null when
// it never ran (e.g. `parallel_identical` with --threads=1) — a gate that
// "passes" because nothing was compared is a vacuous gate, and the gates
// below skip null verdicts instead of defaulting them to true.
//
// Usage: bench_cluster_consolidation [--smoke] [--horizon=SECONDS]
//          [--hosts=8] [--vms=64] [--out=BENCH_cluster.json]
//          [--require-rate=RATE] [--threads=N]
//          [--require-parallel-speedup=X]
//          [--fleet=uniform|mixed] [--fleet-seed=N] [--require-hetero-saving]
//          [--trace=DIR] [--chaos-seed=N] [--commands=FILE]
//          [--scale-hosts=N] [--scale-vms=N] [--scale-horizon=SECONDS]
//          [--require-scale-rate=RATE] [--require-planner-speedup=X]
//          [--require-scale-planner-ns=NS] [--require-active-fraction=X]
//          [--federation=K] [--require-federation-rate=RATE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/flags.hpp"
#include "common/thread_pool.hpp"
#include "control/control_plane.hpp"
#include "control/task.hpp"
#include "federation/federation.hpp"
#include "platform/host_class.hpp"
#include "scenario/federation_scenario.hpp"
#include "scenario/hosting_cluster.hpp"
#include "workload/trace_replay.hpp"

namespace {

using pas::common::seconds;
using pas::common::SimTime;
using pas::scenario::HostingClusterConfig;

// Minimal JSON string escaping for user-supplied values (the --trace
// path): quotes, backslashes and control characters.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

double run_timed(pas::cluster::Cluster& cluster, SimTime horizon) {
  const auto start = std::chrono::steady_clock::now();
  cluster.run_until(horizon);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

bool clusters_identical(pas::cluster::Cluster& a, pas::cluster::Cluster& b) {
  for (pas::cluster::HostId h = 0; h < a.host_count(); ++h) {
    const auto sa = a.host(h).trace().samples();
    const auto sb = b.host(h).trace().samples();
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const auto ra = sa[i];
      const auto rb = sb[i];
      if (ra.t != rb.t || ra.freq_mhz != rb.freq_mhz ||
          ra.global_load_pct != rb.global_load_pct ||
          ra.absolute_load_pct != rb.absolute_load_pct)
        return false;
      for (std::size_t v = 0; v < ra.vm_global_pct.size(); ++v) {
        if (ra.vm_global_pct[v] != rb.vm_global_pct[v] ||
            ra.vm_absolute_pct[v] != rb.vm_absolute_pct[v] ||
            ra.vm_credit_pct[v] != rb.vm_credit_pct[v] ||
            ra.vm_saturated[v] != rb.vm_saturated[v])
          return false;
      }
    }
    if (a.host(h).idle_time() != b.host(h).idle_time()) return false;
  }
  if (a.migrations().size() != b.migrations().size()) return false;
  for (std::size_t i = 0; i < a.migrations().size(); ++i) {
    if (a.migrations()[i].vm != b.migrations()[i].vm ||
        a.migrations()[i].start != b.migrations()[i].start ||
        a.migrations()[i].end != b.migrations()[i].end ||
        a.migrations()[i].outcome != b.migrations()[i].outcome)
      return false;
  }
  for (pas::cluster::GlobalVmId g = 0; g < a.vm_count(); ++g)
    if (a.vm_state(g) != b.vm_state(g)) return false;
  for (pas::cluster::GlobalVmId g = 0; g < a.vm_count(); ++g)
    if (a.residence(g) != b.residence(g)) return false;
  return true;
}

// The cluster identity contract lifted to the federation: every shard
// byte-identical, plus matching cross-shard ledgers (same flights over the
// same links at the same instants) and VM registries.
bool federations_identical(pas::fed::Federation& a, pas::fed::Federation& b) {
  if (a.shard_count() != b.shard_count()) return false;
  for (pas::fed::ShardId s = 0; s < a.shard_count(); ++s)
    if (!clusters_identical(a.shard(s), b.shard(s))) return false;
  if (a.planner_ticks() != b.planner_ticks() || a.moves_issued() != b.moves_issued() ||
      a.cross_shard_in_flight() != b.cross_shard_in_flight())
    return false;
  const auto& ra = a.cross_shard_records();
  const auto& rb = b.cross_shard_records();
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].vm != rb[i].vm || ra[i].from_shard != rb[i].from_shard ||
        ra[i].to_shard != rb[i].to_shard || ra[i].from_host != rb[i].from_host ||
        ra[i].to_host != rb[i].to_host || ra[i].src_vm != rb[i].src_vm ||
        ra[i].dst_vm != rb[i].dst_vm || ra[i].link != rb[i].link ||
        ra[i].record.start != rb[i].record.start ||
        ra[i].record.stop != rb[i].record.stop || ra[i].record.end != rb[i].record.end ||
        ra[i].record.downtime != rb[i].record.downtime ||
        ra[i].record.rounds != rb[i].record.rounds ||
        ra[i].record.transferred_mb != rb[i].record.transferred_mb ||
        ra[i].record.outcome != rb[i].record.outcome)
      return false;
  }
  if (a.vm_count() != b.vm_count()) return false;
  for (pas::fed::FedVmId v = 0; v < a.vm_count(); ++v)
    if (a.locate(v).shard != b.locate(v).shard || a.locate(v).vm != b.locate(v).vm)
      return false;
  return true;
}

// Tri-state identity verdict for JSON: a comparison that never ran is
// null, never a vacuous true.
const char* json_verdict(const std::optional<bool>& v) {
  return v.has_value() ? (*v ? "true" : "false") : "null";
}

}  // namespace

int main(int argc, char** argv) {
  const pas::common::Flags flags{argc, argv};
  const long horizon_s = flags.get_int("horizon", flags.has("smoke") ? 400 : 4000);
  if (horizon_s < 64) {
    std::fprintf(stderr, "bench_cluster_consolidation: --horizon must be >= 64\n");
    return 2;
  }
  const auto hosts = static_cast<std::size_t>(flags.get_int("hosts", 8));
  const auto vms = static_cast<std::size_t>(flags.get_int("vms", 64));
  const std::string out = flags.get_or("out", "BENCH_cluster.json");
  const std::string fleet = flags.get_or("fleet", "uniform");
  if (fleet != "uniform" && fleet != "mixed") {
    std::fprintf(stderr, "bench_cluster_consolidation: --fleet must be uniform or mixed\n");
    return 2;
  }
  const bool mixed = fleet == "mixed";
  const SimTime horizon = seconds(horizon_s);

  HostingClusterConfig base;
  base.hosts = hosts;
  base.vms = vms;
  base.horizon = horizon;
  if (mixed) {
    base.fleet = pas::scenario::FleetPreset::kMixed;
    base.fleet_seed = static_cast<std::uint64_t>(flags.get_int("fleet-seed", 0));
  }

  std::printf("=== cluster consolidation: %zu hosts x %zu VMs, %ld simulated s, %s fleet ===\n",
              hosts, vms, horizon_s, fleet.c_str());

  // --- throughput + exactness: fast path vs reference loop, manager on ---
  auto cfg_slow = base;
  cfg_slow.fast_path = false;
  auto slow = pas::scenario::build_hosting_cluster(cfg_slow);
  const double slow_wall = run_timed(*slow, horizon);
  const double slow_rate = static_cast<double>(horizon_s) / slow_wall;
  std::printf("  slow-stepped loop : %8.2f wall ms   %10.0f sim-s/wall-s\n",
              slow_wall * 1e3, slow_rate);

  auto cfg_fast = base;
  cfg_fast.fast_path = true;
  auto fast = pas::scenario::build_hosting_cluster(cfg_fast);
  const double fast_wall = run_timed(*fast, horizon);
  const double fast_rate = static_cast<double>(horizon_s) / fast_wall;
  std::printf("  event-driven loop : %8.2f wall ms   %10.0f sim-s/wall-s\n",
              fast_wall * 1e3, fast_rate);

  const bool identical = clusters_identical(*slow, *fast);
  const double speedup = slow_wall / fast_wall;
  std::printf("  speedup: %.2fx   traces identical: %s\n", speedup,
              identical ? "yes" : "NO — BUG");

  // Sparse-driver telemetry comes from the most representative fleet this
  // invocation runs: the scale tier when present (consolidation parks most
  // of a big fleet, which is what the active-fraction gate is about),
  // otherwise the 8x64 fast run. Overwritten in the scale block below.
  pas::cluster::EngineStats engine_stats = fast->engine_stats();
  std::size_t engine_grain = fast->config().execution.pool_grain;

  // --- the parallel engine: same scenario, host segments on a pool ---
  // --threads follows ExecutionPolicy semantics: 1 (the default) = serial
  // only, no parallel measurement; 0 = hardware concurrency; N > 1 = N.
  auto threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  if (threads == 0) threads = pas::common::ThreadPool::hardware_threads();
  double par_wall = 0.0;
  double par_rate = 0.0;
  double parallel_speedup = 0.0;
  // No parallel run, no verdict: with --threads=1 this stays nullopt and
  // the JSON says null — previously it defaulted to true and the gate
  // "passed" a comparison that never executed.
  std::optional<bool> parallel_identical;
  if (threads > 1) {
    auto cfg_par = base;
    cfg_par.fast_path = true;
    cfg_par.threads = threads;
    auto par = pas::scenario::build_hosting_cluster(cfg_par);
    par_wall = run_timed(*par, horizon);
    par_rate = static_cast<double>(horizon_s) / par_wall;
    parallel_speedup = fast_wall / par_wall;
    parallel_identical = clusters_identical(*fast, *par);
    std::printf("  parallel (%zu thr)  : %8.2f wall ms   %10.0f sim-s/wall-s   "
                "%.2fx vs serial   identical: %s\n",
                threads, par_wall * 1e3, par_rate, parallel_speedup,
                *parallel_identical ? "yes" : "NO — BUG");
  }

  // --- the dynamic §2.3 figure ---
  // (c) consolidation + PAS is the fast run above; (a) and (b) rerun the
  // same tenants under the other policies.
  auto cfg_spread = base;
  cfg_spread.install_manager = false;
  auto spread = pas::scenario::build_hosting_cluster(cfg_spread);
  spread->run_until(horizon);

  auto cfg_consol = base;
  cfg_consol.manager.dvfs = pas::cluster::ClusterManagerConfig::Dvfs::kPinnedMax;
  auto consol = pas::scenario::build_hosting_cluster(cfg_consol);
  consol->run_until(horizon);

  const double watts_spread = spread->average_watts();
  const double watts_consol = consol->average_watts();
  const double watts_pas = fast->average_watts();
  const double consolidation_saving = watts_spread - watts_consol;
  const double dvfs_saving = watts_consol - watts_pas;

  std::printf("\n  policy                      mean W   hosts on   migrations\n");
  std::printf("  static spread             %8.1f   %8zu   %10zu\n", watts_spread,
              spread->powered_on_count(), spread->migrations().size());
  std::printf("  consolidation only        %8.1f   %8zu   %10zu\n", watts_consol,
              consol->powered_on_count(), consol->migrations().size());
  std::printf("  consolidation + PAS DVFS  %8.1f   %8zu   %10zu\n", watts_pas,
              fast->powered_on_count(), fast->migrations().size());
  std::printf("  consolidation saves %.1f W; DVFS reclaims another %.1f W on top (§2.3)\n",
              consolidation_saving, dvfs_saving);

  // --- heterogeneity: per-class split + the efficient-first A/B ---
  // The naive baseline reruns the PAS policy with the planner's
  // heterogeneity-aware host ordering disabled (index-order FFD): the watt
  // gap prices the cost term on the mixed fleet.
  double watts_naive_order = 0.0;
  double hetero_saving = 0.0;
  std::string hetero_json;
  if (mixed) {
    auto cfg_naive = base;
    cfg_naive.manager.efficient_first = false;
    auto naive = pas::scenario::build_hosting_cluster(cfg_naive);
    naive->run_until(horizon);
    watts_naive_order = naive->average_watts();
    hetero_saving = watts_naive_order - watts_pas;

    struct ClassStat {
      std::size_t hosts = 0;
      double energy_joules = 0.0;
    };
    std::map<std::string, ClassStat> classes;  // ordered -> stable JSON
    for (pas::cluster::HostId h = 0; h < fast->host_count(); ++h) {
      ClassStat& s = classes[fast->host_class(h).name];
      ++s.hosts;
      s.energy_joules += fast->host_energy_joules(h);
    }

    std::printf("\n  heterogeneous fleet (efficient-first vs naive index order):\n");
    std::printf("  naive-order manager       %8.1f W   efficient-first saves %.1f W\n",
                watts_naive_order, hetero_saving);
    hetero_json = "  \"hetero\": {\n    \"classes\": {";
    bool first = true;
    char buf[256];
    for (const auto& [name, s] : classes) {
      std::printf("    class %-16s %zu host(s)   %.0f J\n", name.c_str(), s.hosts,
                  s.energy_joules);
      std::snprintf(buf, sizeof(buf), "%s\n      \"%s\": {\"hosts\": %zu, \"energy_joules\": %.3f}",
                    first ? "" : ",", name.c_str(), s.hosts, s.energy_joules);
      hetero_json += buf;
      first = false;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n    },\n    \"watts_naive_order\": %.3f,\n"
                  "    \"efficient_first_saving_watts\": %.3f\n  },\n",
                  watts_naive_order, hetero_saving);
    hetero_json += buf;
  }

  // --- trace replay: recorded-demand tenants on the same fleet ---
  // Fast vs slow (and vs parallel when --threads > 1) must stay
  // byte-identical with every tenant a TraceReplay; that identity is a
  // gated contract like the synthetic ones, smoke included.
  const std::string trace_dir = flags.get_or("trace", "");
  std::optional<bool> replay_identical;  // nullopt until the replay A/B runs
  std::string trace_json;
  if (!trace_dir.empty()) {
    const std::vector<pas::wl::Trace> traces = pas::wl::Trace::load_dir(trace_dir);
    auto cfg_trace = base;
    cfg_trace.workload = pas::scenario::WorkloadPreset::kTrace;
    cfg_trace.traces = traces;

    auto tr_slow_cfg = cfg_trace;
    tr_slow_cfg.fast_path = false;
    auto tr_slow = pas::scenario::build_hosting_cluster(tr_slow_cfg);
    const double tr_slow_wall = run_timed(*tr_slow, horizon);

    auto tr_fast = pas::scenario::build_hosting_cluster(cfg_trace);
    const double tr_fast_wall = run_timed(*tr_fast, horizon);
    const double tr_rate = static_cast<double>(horizon_s) / tr_fast_wall;
    replay_identical = clusters_identical(*tr_slow, *tr_fast);

    if (threads > 1) {
      auto tr_par_cfg = cfg_trace;
      tr_par_cfg.threads = threads;
      auto tr_par = pas::scenario::build_hosting_cluster(tr_par_cfg);
      (void)run_timed(*tr_par, horizon);
      replay_identical = *replay_identical && clusters_identical(*tr_fast, *tr_par);
    }

    std::printf("\n  trace replay (%zu trace(s) from %s):\n", traces.size(),
                trace_dir.c_str());
    std::printf("  replay fast path  : %8.2f wall ms   %10.0f sim-s/wall-s   "
                "%.2fx vs slow   identical: %s\n",
                tr_fast_wall * 1e3, tr_rate, tr_slow_wall / tr_fast_wall,
                *replay_identical ? "yes" : "NO — BUG");
    std::printf("  replay fleet      : %8.1f mean W   %zu migrations\n",
                tr_fast->average_watts(), tr_fast->migrations().size());

    // The dir is user-supplied and unbounded: compose around it with
    // std::string so a long path cannot truncate the JSON.
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    \"files\": %zu,\n"
                  "    \"replay_identical\": %s,\n"
                  "    \"sim_per_wall\": %.1f,\n"
                  "    \"speedup\": %.3f,\n"
                  "    \"watts\": %.3f,\n"
                  "    \"migrations\": %zu\n  },\n",
                  traces.size(), json_verdict(replay_identical), tr_rate,
                  tr_slow_wall / tr_fast_wall, tr_fast->average_watts(),
                  tr_fast->migrations().size());
    trace_json = "  \"trace\": {\n    \"dir\": \"" + json_escape(trace_dir) + "\",\n" + buf;
  }

  // --- chaos: the same scenario under a seeded fault schedule ---
  // Separate runs so the policy numbers above stay fault-free; the gate is
  // the standing byte-identity contract, now under crashes/aborts/degraded
  // links/brownouts.
  const auto chaos_seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 0));
  std::optional<bool> chaos_identical;  // nullopt until the chaos A/B runs
  std::string chaos_json;
  if (chaos_seed != 0) {
    auto cfg_chaos = base;
    cfg_chaos.chaos_seed = chaos_seed;

    auto ch_slow_cfg = cfg_chaos;
    ch_slow_cfg.fast_path = false;
    auto ch_slow = pas::scenario::build_hosting_cluster(ch_slow_cfg);
    ch_slow->run_until(horizon);

    auto ch_fast = pas::scenario::build_hosting_cluster(cfg_chaos);
    ch_fast->run_until(horizon);
    chaos_identical = clusters_identical(*ch_slow, *ch_fast);

    if (threads > 1) {
      auto ch_par_cfg = cfg_chaos;
      ch_par_cfg.threads = threads;
      auto ch_par = pas::scenario::build_hosting_cluster(ch_par_cfg);
      ch_par->run_until(horizon);
      chaos_identical = *chaos_identical && clusters_identical(*ch_fast, *ch_par);
    }

    const pas::fault::FaultInjector& inj = *ch_fast->faults();
    std::size_t brownout_skipped = 0;
    std::size_t restarts = 0;
    std::size_t abandoned = 0;
    if (auto* mgr = ch_fast->manager()) {
      brownout_skipped = mgr->ticks_skipped();
      restarts = mgr->restarts_issued();
      abandoned = mgr->restarts_abandoned();
    }
    // Recovery-latency SLO stats (orphan → running again): p50/mean/max
    // over the run's VmRecovery records.
    const pas::cluster::RecoveryStats rec =
        pas::cluster::summarize_recoveries(ch_fast->recoveries());

    std::printf("\n  chaos (seed %llu): %zu fault(s) drawn — %zu crash(es), "
                "%zu abort(s), %zu degrade(s), %zu brownout(s)\n",
                static_cast<unsigned long long>(chaos_seed), inj.plan().events.size(),
                inj.plan().count(pas::fault::FaultKind::kHostCrash),
                inj.plan().count(pas::fault::FaultKind::kMigrationAbort),
                inj.plan().count(pas::fault::FaultKind::kLinkDegrade),
                inj.plan().count(pas::fault::FaultKind::kBrownout));
    std::printf("  fired: %zu crash(es), %zu abort(s), %zu degrade(s); "
                "%zu tick(s) browned out\n",
                inj.crashes_fired(), inj.aborts_fired(), inj.link_degrades_fired(),
                brownout_skipped);
    std::printf("  VMs: %zu/%zu survived, %zu lost; %zu recovery restart(s) "
                "(p50 %.1f s, mean %.1f s, max %.1f s), %zu abandoned\n",
                ch_fast->running_vm_count(), static_cast<std::size_t>(ch_fast->vm_count()),
                ch_fast->lost_vm_count(), rec.count, rec.p50.sec(), rec.mean_s,
                rec.max.sec(), abandoned);
    std::printf("  identity under faults (fast/slow%s): %s\n",
                threads > 1 ? "/parallel" : "",
                *chaos_identical ? "yes" : "NO — BUG");

    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "  \"chaos\": {\n"
                  "    \"seed\": %llu,\n"
                  "    \"faults_drawn\": %zu,\n"
                  "    \"crashes\": %zu,\n"
                  "    \"migration_aborts\": %zu,\n"
                  "    \"link_degrades\": %zu,\n"
                  "    \"brownout_ticks_skipped\": %zu,\n"
                  "    \"vms\": %zu,\n"
                  "    \"vms_survived\": %zu,\n"
                  "    \"vms_lost\": %zu,\n"
                  "    \"recovery_restarts\": %zu,\n"
                  "    \"recovery_abandoned\": %zu,\n"
                  "    \"recovery_latency_p50_s\": %.6f,\n"
                  "    \"recovery_latency_mean_s\": %.3f,\n"
                  "    \"recovery_latency_max_s\": %.6f,\n"
                  "    \"restarts_issued\": %zu,\n"
                  "    \"chaos_identical\": %s\n  },\n",
                  static_cast<unsigned long long>(chaos_seed), inj.plan().events.size(),
                  inj.crashes_fired(), inj.aborts_fired(), inj.link_degrades_fired(),
                  brownout_skipped, static_cast<std::size_t>(ch_fast->vm_count()),
                  ch_fast->running_vm_count(), ch_fast->lost_vm_count(), rec.count,
                  abandoned, rec.p50.sec(), rec.mean_s, rec.max.sec(), restarts,
                  json_verdict(chaos_identical));
    chaos_json = buf;
  }

  // --- control plane: an external command stream over the same fleet ---
  // --commands=FILE parses a JSON task log (ctl::parse_tasks, strict), runs
  // the scenario under it fast-vs-slow (and at --threads if > 1), and holds
  // the control plane to the PR 5 trace contract: cluster state AND the
  // serialized result log must be byte-identical across engines, and the
  // record→replay→re-record loop must close byte-exactly — re-running the
  // same file reproduces the same result log, and re-injecting the result
  // log as a no-op annotation stream re-records itself verbatim. The
  // combined verdict is `control.replay_identical`, gated always (smoke
  // included) like every identity contract.
  const std::string commands_file = flags.get_or("commands", "");
  std::optional<bool> control_replay_identical;  // nullopt until the A/B runs
  std::string control_json;
  if (!commands_file.empty()) {
    std::ifstream cmd_in(commands_file, std::ios::binary);
    if (!cmd_in) {
      std::fprintf(stderr, "bench_cluster_consolidation: cannot open %s\n",
                   commands_file.c_str());
      return 2;
    }
    std::ostringstream cmd_text;
    cmd_text << cmd_in.rdbuf();
    const std::vector<pas::ctl::Task> tasks =
        pas::ctl::parse_tasks(cmd_text.str(), commands_file, {hosts, vms});

    auto cfg_ctl = base;
    cfg_ctl.commands = tasks;

    auto ct_slow_cfg = cfg_ctl;
    ct_slow_cfg.fast_path = false;
    auto ct_slow = pas::scenario::build_hosting_cluster(ct_slow_cfg);
    ct_slow->run_until(horizon);

    auto ct_fast = pas::scenario::build_hosting_cluster(cfg_ctl);
    ct_fast->run_until(horizon);
    const std::string result_log = ct_fast->control()->result_log();
    control_replay_identical = clusters_identical(*ct_slow, *ct_fast) &&
                               ct_slow->control()->result_log() == result_log;

    if (threads > 1) {
      auto ct_par_cfg = cfg_ctl;
      ct_par_cfg.threads = threads;
      auto ct_par = pas::scenario::build_hosting_cluster(ct_par_cfg);
      ct_par->run_until(horizon);
      control_replay_identical = *control_replay_identical &&
                                 clusters_identical(*ct_fast, *ct_par) &&
                                 ct_par->control()->result_log() == result_log;
    }

    // Re-record: the same file through a fresh cluster must reproduce the
    // result log byte-for-byte.
    {
      auto ct_re = pas::scenario::build_hosting_cluster(cfg_ctl);
      ct_re->run_until(horizon);
      control_replay_identical = *control_replay_identical &&
                                 ct_re->control()->result_log() == result_log;
    }

    // Close the loop: the result log re-injected as a no-op annotation
    // stream must re-record itself verbatim (annotation streams are a
    // fixed point of record→re-inject — ctl::results_to_annotations).
    {
      const std::string notes =
          pas::ctl::results_to_annotations(ct_fast->control()->results());
      auto cfg_notes = base;
      cfg_notes.commands = pas::ctl::parse_tasks(notes, "<annotations>", {hosts, vms});
      auto ct_notes = pas::scenario::build_hosting_cluster(cfg_notes);
      ct_notes->run_until(horizon);
      control_replay_identical =
          *control_replay_identical &&
          pas::ctl::results_to_annotations(ct_notes->control()->results()) == notes;
    }

    const pas::ctl::ControlPlane& plane = *ct_fast->control();
    std::printf("\n  control plane (%zu task(s) from %s):\n", tasks.size(),
                commands_file.c_str());
    std::printf("  fired %zu: %zu ok, %zu rejected, %zu superseded   "
                "replay identical: %s\n",
                plane.results().size(), plane.accepted(), plane.rejected(),
                plane.superseded(),
                *control_replay_identical ? "yes" : "NO — BUG");

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"tasks\": %zu,\n"
                  "    \"fired\": %zu,\n"
                  "    \"accepted\": %zu,\n"
                  "    \"rejected\": %zu,\n"
                  "    \"superseded\": %zu,\n"
                  "    \"replay_identical\": %s\n  },\n",
                  tasks.size(), plane.results().size(), plane.accepted(),
                  plane.rejected(), plane.superseded(),
                  json_verdict(control_replay_identical));
    control_json =
        "  \"control\": {\n    \"file\": \"" + json_escape(commands_file) + "\",\n" + buf;
  }

  // --- scale: the delta-driven incremental planner at fleet size ---
  // Same scenario recipe at --scale-hosts x --scale-vms, run twice: the
  // incremental manager (persistent HostBook + event-fed dirty set +
  // unchanged-tick early-out) against the legacy from-scratch replan.
  // Byte-identity between the two is the whole contract — the planner
  // rewrite is an optimization, never a behavior change — so that gate is
  // always on, smoke included. The planner-time floors/ceilings only bind
  // on full runs: a smoke horizon barely plans at all.
  const auto scale_hosts = static_cast<std::size_t>(flags.get_int("scale-hosts", 0));
  std::optional<bool> scale_identical;  // nullopt until the scale A/B runs
  double scale_rate = 0.0;
  double planner_speedup = 0.0;
  double inc_ns_per_tick = 0.0;
  std::string scale_json;
  if (scale_hosts > 0) {
    const auto scale_vms = static_cast<std::size_t>(
        flags.get_int("scale-vms", static_cast<long>(scale_hosts * 10)));
    const long scale_horizon_s =
        flags.get_int("scale-horizon", flags.has("smoke") ? 120 : 600);
    const SimTime scale_horizon = seconds(scale_horizon_s);

    auto cfg_scale = base;
    cfg_scale.hosts = scale_hosts;
    cfg_scale.vms = scale_vms;
    cfg_scale.horizon = scale_horizon;
    cfg_scale.fast_path = true;
    // The scale tier exercises the full engine: sparse partition on the
    // coordinating thread, pooled dispatch of the active remainder at
    // --threads. Both sides of the legacy/incremental A/B get the same
    // executors, so the planner comparison stays apples-to-apples.
    cfg_scale.threads = threads;

    std::printf("\n  scale tier: %zu hosts x %zu VMs, %ld simulated s\n",
                scale_hosts, scale_vms, scale_horizon_s);

    auto cfg_leg = cfg_scale;
    cfg_leg.manager.incremental = false;
    auto sc_leg = pas::scenario::build_hosting_cluster(cfg_leg);
    const double leg_wall = run_timed(*sc_leg, scale_horizon);

    auto cfg_inc = cfg_scale;
    cfg_inc.manager.incremental = true;
    auto sc_inc = pas::scenario::build_hosting_cluster(cfg_inc);
    const double inc_wall = run_timed(*sc_inc, scale_horizon);
    scale_rate = static_cast<double>(scale_horizon_s) / inc_wall;
    engine_stats = sc_inc->engine_stats();
    engine_grain = sc_inc->config().execution.pool_grain;

    scale_identical = clusters_identical(*sc_leg, *sc_inc);

    const pas::cluster::ClusterManager& inc_mgr = *sc_inc->manager();
    const pas::cluster::ClusterManager& leg_mgr = *sc_leg->manager();
    const pas::consolidation::HostBookStats& bk = inc_mgr.book_stats();
    // Amortized planner cost per manager tick: skipped ticks count — the
    // early-out is exactly what buys the amortization.
    const std::size_t inc_ticks = inc_mgr.planning_ticks() + inc_mgr.plans_skipped();
    inc_ns_per_tick = inc_ticks > 0
                          ? static_cast<double>(inc_mgr.planner_ns()) /
                                static_cast<double>(inc_ticks)
                          : 0.0;
    planner_speedup = inc_mgr.planner_ns() > 0
                          ? static_cast<double>(leg_mgr.planner_ns()) /
                                static_cast<double>(inc_mgr.planner_ns())
                          : 0.0;

    std::printf("  legacy replan     : %8.2f wall s   planner %8.1f ms over %zu tick(s)\n",
                leg_wall, static_cast<double>(leg_mgr.planner_ns()) * 1e-6,
                leg_mgr.planning_ticks());
    std::printf("  incremental       : %8.2f wall s   planner %8.1f ms over %zu tick(s), "
                "%zu skipped\n",
                inc_wall, static_cast<double>(inc_mgr.planner_ns()) * 1e-6,
                inc_mgr.planning_ticks(), inc_mgr.plans_skipped());
    std::printf("  planner speedup: %.2fx   %.0f ns/tick amortized   "
                "sim rate %.0f sim-s/wall-s\n",
                planner_speedup, inc_ns_per_tick, scale_rate);
    std::printf("  book: %zu plan(s) = %zu cached + %zu delta + %zu rebuild; "
                "%zu rank(s) walked, %zu scan(s), %zu mark(s)+%zu event(s) coalesced\n",
                bk.plans, bk.cached_plans, bk.delta_plans, bk.full_rebuilds,
                bk.vms_walked, bk.vms_scanned, bk.coalesced_marks,
                inc_mgr.events_coalesced());
    std::printf("  identical to legacy replan: %s\n",
                *scale_identical ? "yes" : "NO — BUG");

    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": {\n"
                  "    \"hosts\": %zu,\n"
                  "    \"vms\": %zu,\n"
                  "    \"simulated_seconds\": %ld,\n"
                  "    \"incremental\": {\"wall_seconds\": %.6f, \"sim_per_wall\": %.1f,\n"
                  "      \"planner_ns\": %llu, \"planning_ticks\": %zu, "
                  "\"plans_skipped\": %zu,\n"
                  "      \"planner_ns_per_tick\": %.1f, \"events_coalesced\": %zu},\n"
                  "    \"legacy\": {\"wall_seconds\": %.6f, \"planner_ns\": %llu, "
                  "\"planning_ticks\": %zu},\n"
                  "    \"planner_speedup\": %.3f,\n"
                  "    \"book\": {\"plans\": %zu, \"cached\": %zu, \"delta\": %zu, "
                  "\"full_rebuilds\": %zu,\n"
                  "      \"vms_walked\": %zu, \"vms_scanned\": %zu, "
                  "\"coalesced_marks\": %zu},\n"
                  "    \"scale_identical\": %s\n  },\n",
                  scale_hosts, scale_vms, scale_horizon_s, inc_wall, scale_rate,
                  static_cast<unsigned long long>(inc_mgr.planner_ns()),
                  inc_mgr.planning_ticks(), inc_mgr.plans_skipped(), inc_ns_per_tick,
                  inc_mgr.events_coalesced(), leg_wall,
                  static_cast<unsigned long long>(leg_mgr.planner_ns()),
                  leg_mgr.planning_ticks(), planner_speedup, bk.plans, bk.cached_plans,
                  bk.delta_plans, bk.full_rebuilds, bk.vms_walked, bk.vms_scanned,
                  bk.coalesced_marks, json_verdict(scale_identical));
    scale_json = buf;
  }

  // --- federation: K shards under the global planner, per-link WAN moves ---
  // The same per-shard recipe, shard 0 skew-loaded, run slow-path vs
  // fast-path (and vs the parallel engine at --threads > 1). Identity is
  // the lifted cluster contract — every shard byte-identical AND the
  // cross-shard ledgers equal — gated always, smoke included. K = 1 must
  // additionally reproduce the bench's own single-cluster fast run
  // byte-exactly: a single-shard federation schedules no events at all.
  const auto fed_shards = static_cast<std::size_t>(flags.get_int("federation", 0));
  std::optional<bool> federation_identical;  // nullopt until the tier runs
  double fed_rate = 0.0;
  std::string federation_json;
  if (fed_shards > 0) {
    pas::scenario::FederationScenarioConfig fc;
    fc.base = base;
    fc.shards = fed_shards;

    auto fc_slow = fc;
    fc_slow.base.fast_path = false;
    auto fd_slow = pas::scenario::build_federation(fc_slow);
    const auto slow_start = std::chrono::steady_clock::now();
    fd_slow->run_until(horizon);
    const double fd_slow_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - slow_start)
            .count();

    auto fd_fast = pas::scenario::build_federation(fc);
    const auto fast_start = std::chrono::steady_clock::now();
    fd_fast->run_until(horizon);
    const double fd_fast_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - fast_start)
            .count();
    fed_rate = static_cast<double>(horizon_s) / fd_fast_wall;
    federation_identical = federations_identical(*fd_slow, *fd_fast);

    if (threads > 1) {
      auto fc_par = fc;
      fc_par.base.threads = threads;
      auto fd_par = pas::scenario::build_federation(fc_par);
      fd_par->run_until(horizon);
      federation_identical =
          *federation_identical && federations_identical(*fd_fast, *fd_par);
    }
    // K = 1 degradation: byte-exact to the single-cluster fast run above
    // (same config, same seed, no skew, no federation events).
    if (fed_shards == 1)
      federation_identical =
          *federation_identical && clusters_identical(*fast, fd_fast->shard(0));

    // Cross-shard census by link kind; the intra-rack tier is the shards'
    // own internal migrations.
    std::size_t wan_moves = 0;
    std::size_t cross_rack_moves = 0;
    for (const pas::fed::FedMigrationRecord& r : fd_fast->cross_shard_records()) {
      if (r.link == pas::fed::LinkKind::kWan)
        ++wan_moves;
      else
        ++cross_rack_moves;
    }
    std::size_t intra_moves = 0;
    std::size_t fed_vms = 0;
    for (pas::fed::ShardId s = 0; s < fd_fast->shard_count(); ++s) {
      intra_moves += fd_fast->shard(s).migrations().size();
      fed_vms += fd_fast->shard(s).vm_count();
    }

    std::printf("\n  federation tier: %zu shard(s) x %zu hosts, %zu VMs total\n",
                fed_shards, hosts, fed_vms);
    std::printf("  federated run     : %8.2f wall ms   %10.0f sim-s/wall-s   "
                "%.2fx vs slow\n",
                fd_fast_wall * 1e3, fed_rate, fd_slow_wall / fd_fast_wall);
    std::printf("  migrations: %zu intra-rack (shard-internal), %zu cross-rack, "
                "%zu wan   planner ticks %zu   identical: %s\n",
                intra_moves, cross_rack_moves, wan_moves, fd_fast->planner_ticks(),
                *federation_identical ? "yes" : "NO — BUG");

    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "  \"federation\": {\n"
                  "    \"shards\": %zu,\n"
                  "    \"vms\": %zu,\n"
                  "    \"planner_ticks\": %zu,\n"
                  "    \"cross_shard_migrations\": %zu,\n"
                  "    \"links\": {\"intra_rack\": %zu, \"cross_rack\": %zu, "
                  "\"wan\": %zu},\n"
                  "    \"wall_seconds\": %.6f,\n"
                  "    \"sim_per_wall\": %.1f,\n"
                  "    \"federation_identical\": %s\n  },\n",
                  fed_shards, fed_vms, fd_fast->planner_ticks(),
                  fd_fast->cross_shard_records().size(), intra_moves, cross_rack_moves,
                  wan_moves, fd_fast_wall, fed_rate, json_verdict(federation_identical));
    federation_json = buf;
  }

  // --- engine telemetry: the sparse driver's dispatch counters ---
  // active_fraction = dispatches / (dispatches + bulk_skips): how much of
  // the fleet the engine really had to step. On a consolidated scale fleet
  // it should sit well below 1 — --require-active-fraction turns that into
  // a CI ceiling (scale tier only; --smoke exempt, a short horizon barely
  // consolidates).
  std::string engine_json;
  {
    std::printf("\n  engine: %llu segment(s), %llu dispatch(es), %llu bulk skip(s)   "
                "active fraction %.3f   pool grain %zu\n",
                static_cast<unsigned long long>(engine_stats.segments),
                static_cast<unsigned long long>(engine_stats.dispatches),
                static_cast<unsigned long long>(engine_stats.bulk_skips),
                engine_stats.active_fraction(), engine_grain);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"engine\": {\n"
                  "    \"segments\": %llu,\n"
                  "    \"dispatches\": %llu,\n"
                  "    \"bulk_skips\": %llu,\n"
                  "    \"active_fraction\": %.6f,\n"
                  "    \"pool_grain\": %zu\n  },\n",
                  static_cast<unsigned long long>(engine_stats.segments),
                  static_cast<unsigned long long>(engine_stats.dispatches),
                  static_cast<unsigned long long>(engine_stats.bulk_skips),
                  engine_stats.active_fraction(), engine_grain);
    engine_json = buf;
  }

  // The parallel A/B only exists at --threads > 1: without it the whole
  // block is null — numbers from a run that never happened are as vacuous
  // as a defaulted identity verdict.
  std::string parallel_json;
  if (threads > 1) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"parallel\": {\"threads\": %zu, \"wall_seconds\": %.6f, "
                  "\"sim_per_wall\": %.1f},\n"
                  "  \"parallel_speedup\": %.3f,\n"
                  "  \"parallel_identical\": %s,\n",
                  threads, par_wall, par_rate, parallel_speedup,
                  json_verdict(parallel_identical));
    parallel_json = buf;
  } else {
    parallel_json =
        "  \"parallel\": null,\n"
        "  \"parallel_speedup\": null,\n"
        "  \"parallel_identical\": null,\n";
  }

  {
    std::ofstream js{out};
    if (!js) {
      std::fprintf(stderr, "bench_cluster_consolidation: cannot write %s\n", out.c_str());
      return 2;
    }
    char buf[4096];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"cluster_consolidation\",\n"
                  "  \"scenario\": \"hosting_cluster_%zux%zu\",\n"
                  "  \"fleet\": \"%s\",\n"
                  "  \"hosts\": %zu,\n"
                  "  \"vms\": %zu,\n"
                  "  \"simulated_seconds\": %ld,\n"
                  "  \"slow\": {\"wall_seconds\": %.6f, \"sim_per_wall\": %.1f},\n"
                  "  \"fast\": {\"wall_seconds\": %.6f, \"sim_per_wall\": %.1f},\n"
                  "  \"speedup\": %.3f,\n"
                  "  \"traces_identical\": %s,\n",
                  hosts, vms, fleet.c_str(), hosts, vms, horizon_s, slow_wall, slow_rate,
                  fast_wall, fast_rate, speedup, identical ? "true" : "false");
    js << buf;
    js << parallel_json;
    std::snprintf(buf, sizeof(buf),
                  "  \"watts_static_spread\": %.3f,\n"
                  "  \"watts_consolidation_only\": %.3f,\n"
                  "  \"watts_consolidation_pas\": %.3f,\n"
                  "  \"consolidation_saving_watts\": %.3f,\n"
                  "  \"dvfs_saving_watts\": %.3f,\n",
                  watts_spread, watts_consol, watts_pas, consolidation_saving,
                  dvfs_saving);
    js << buf;
    // The optional blocks embed unbounded strings (class names, the
    // --trace path): streamed, not snprintf'd, so they cannot truncate.
    js << hetero_json << trace_json << chaos_json << control_json << scale_json
       << federation_json << engine_json;
    std::snprintf(buf, sizeof(buf),
                  "  \"migrations\": %zu,\n"
                  "  \"hosts_on_final\": %zu\n"
                  "}\n",
                  fast->migrations().size(), fast->powered_on_count());
    js << buf;
    std::printf("  written to %s\n", out.c_str());
  }

  // Identity gates. The optional verdicts fail only on an EXECUTED
  // comparison that came back false; a nullopt (the tier never ran) is
  // skipped — failing it would be as wrong as the old vacuous pass.
  if (!identical) {
    std::printf("  FAIL: fast path diverged from the reference loop\n");
    return 1;
  }
  if (parallel_identical && !*parallel_identical) {
    std::printf("  FAIL: parallel engine diverged from the serial engine\n");
    return 1;
  }
  if (replay_identical && !*replay_identical) {
    std::printf("  FAIL: trace replay diverged between engine variants\n");
    return 1;
  }
  if (chaos_identical && !*chaos_identical) {
    std::printf("  FAIL: engines diverged under injected faults\n");
    return 1;
  }
  if (control_replay_identical && !*control_replay_identical) {
    std::printf("  FAIL: control-plane replay diverged (state, result log, or "
                "annotation round trip)\n");
    return 1;
  }
  if (scale_identical && !*scale_identical) {
    std::printf("  FAIL: incremental planner diverged from the legacy replan\n");
    return 1;
  }
  if (federation_identical && !*federation_identical) {
    std::printf("  FAIL: federated shards or cross-shard ledgers diverged\n");
    return 1;
  }
  const double fed_floor = flags.get_double("require-federation-rate", 0.0);
  if (fed_floor > 0.0 && !flags.has("smoke")) {
    if (fed_shards == 0) {
      std::printf("  FAIL: --require-federation-rate needs --federation > 0\n");
      return 1;
    }
    if (fed_rate < fed_floor) {
      std::printf("  FAIL: federated rate %.0f sim-s/wall-s below the %.0f floor\n",
                  fed_rate, fed_floor);
      return 1;
    }
  }
  const double scale_floor = flags.get_double("require-scale-rate", 0.0);
  if (scale_floor > 0.0 && !flags.has("smoke")) {
    if (scale_hosts == 0) {
      std::printf("  FAIL: --require-scale-rate needs --scale-hosts > 0\n");
      return 1;
    }
    if (scale_rate < scale_floor) {
      std::printf("  FAIL: scale rate %.0f sim-s/wall-s below the %.0f floor\n",
                  scale_rate, scale_floor);
      return 1;
    }
  }
  const double planner_floor = flags.get_double("require-planner-speedup", 0.0);
  if (planner_floor > 0.0 && !flags.has("smoke")) {
    if (scale_hosts == 0) {
      std::printf("  FAIL: --require-planner-speedup needs --scale-hosts > 0\n");
      return 1;
    }
    if (planner_speedup < planner_floor) {
      std::printf("  FAIL: planner speedup %.2fx below the %.2fx floor\n",
                  planner_speedup, planner_floor);
      return 1;
    }
  }
  const double ns_ceiling = flags.get_double("require-scale-planner-ns", 0.0);
  if (ns_ceiling > 0.0 && !flags.has("smoke")) {
    if (scale_hosts == 0) {
      std::printf("  FAIL: --require-scale-planner-ns needs --scale-hosts > 0\n");
      return 1;
    }
    if (inc_ns_per_tick > ns_ceiling) {
      std::printf("  FAIL: planner %.0f ns/tick above the %.0f ceiling\n",
                  inc_ns_per_tick, ns_ceiling);
      return 1;
    }
  }
  const double af_ceiling = flags.get_double("require-active-fraction", 0.0);
  if (af_ceiling > 0.0 && !flags.has("smoke")) {
    if (scale_hosts == 0) {
      std::printf("  FAIL: --require-active-fraction needs --scale-hosts > 0\n");
      return 1;
    }
    if (engine_stats.active_fraction() > af_ceiling) {
      std::printf("  FAIL: engine active fraction %.3f above the %.3f ceiling\n",
                  engine_stats.active_fraction(), af_ceiling);
      return 1;
    }
  }
  const double par_floor = flags.get_double("require-parallel-speedup", 0.0);
  if (par_floor > 0.0 && !flags.has("smoke")) {
    if (threads <= 1) {
      std::printf("  FAIL: --require-parallel-speedup needs --threads > 1\n");
      return 1;
    }
    if (parallel_speedup < par_floor) {
      std::printf("  FAIL: parallel speedup %.2fx below the %.2fx floor\n",
                  parallel_speedup, par_floor);
      return 1;
    }
  }
  if (dvfs_saving <= 0.0) {
    std::printf("  FAIL: DVFS reclaimed nothing on top of consolidation\n");
    return 1;
  }
  if (flags.has("require-hetero-saving") && !flags.has("smoke")) {
    if (!mixed) {
      std::printf("  FAIL: --require-hetero-saving needs --fleet=mixed\n");
      return 1;
    }
    if (hetero_saving <= 0.0) {
      std::printf("  FAIL: efficient-first packing saved nothing (%.2f W) vs naive order\n",
                  hetero_saving);
      return 1;
    }
  }
  const double floor = flags.get_double("require-rate", 0.0);
  if (floor > 0.0 && fast_rate < floor) {
    std::printf("  FAIL: fast rate %.0f sim-s/wall-s below the %.0f floor\n", fast_rate,
                floor);
    return 1;
  }
  return 0;
}
