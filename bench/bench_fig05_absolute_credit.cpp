// Fig. 5 — "Absolute loads with our governor / Credit scheduler / exact
// load": THE problem figure. V20's absolute load collapses to ~10-12 %
// whenever it is alone on the host (frequency lowered), and recovers only
// while V70 keeps the frequency up.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 5";
  spec.title = "Absolute loads with the stable governor (credit scheduler, exact load)";
  spec.expectation =
      "V20 absolute load ~12 % (paper: ~10 %) in phases 1 and 3 despite its "
      "20 % SLA; climbs to 20 % only during phase 2 when V70 forces the "
      "frequency to 2667 MHz";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kCredit;
  spec.cfg.governor = "stable-ondemand";
  spec.cfg.load = pas::scenario::LoadKind::kExact;
  spec.absolute_view = true;
  return pas::bench::run_figure(argc, argv, spec);
}
