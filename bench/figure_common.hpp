// Shared driver for the figure-reproduction benches (Figs. 2-10).
//
// Each bench binary configures one TwoVmConfig, names the paper figure it
// regenerates and states the expected shape; this driver runs the scenario,
// prints the ASCII chart + phase table, and optionally dumps the raw trace
// as CSV (--csv=PATH) for external plotting. --short runs a 2000 s profile
// instead of the paper's 8000 s.
#pragma once

#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "scenario/two_vm.hpp"

namespace pas::bench {

struct FigureSpec {
  const char* id;            // "Fig. 5"
  const char* title;         // what the paper's caption says
  const char* expectation;   // the shape we claim to reproduce
  scenario::TwoVmConfig cfg;
  bool absolute_view = false;  // plot absolute (vs global) loads
};

inline int run_figure(int argc, char** argv, FigureSpec spec) {
  const common::Flags flags{argc, argv};
  if (flags.has("short")) {
    spec.cfg.total = common::seconds(2000);
    spec.cfg.v20_from = common::seconds(100);
    spec.cfg.v20_until = common::seconds(1700);
    spec.cfg.v70_from = common::seconds(600);
    spec.cfg.v70_until = common::seconds(1300);
    spec.cfg.trace_stride = common::seconds(5);
  }

  std::printf("=== %s: %s ===\n", spec.id, spec.title);
  std::printf("expected shape: %s\n\n", spec.expectation);

  const scenario::TwoVmResult result = scenario::run_two_vm(spec.cfg);

  const std::string chart = scenario::render_loads_chart(
      result, spec.absolute_view,
      std::string{spec.id} + (spec.absolute_view ? " (absolute loads)" : " (global loads)"));
  std::fputs(chart.c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(scenario::render_phase_table(result).c_str(), stdout);

  if (const auto csv = flags.get("csv")) {
    result.trace.write_csv(*csv);
    std::printf("  trace written to %s\n", csv->c_str());
  }
  std::fputs("\n", stdout);
  return 0;
}

}  // namespace pas::bench
