// Fig. 6 — "Global loads with our governor / SEDF scheduler / exact load":
// work-conserving SEDF hands V20 the unused slices.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 6";
  spec.title = "Global loads with the stable governor (SEDF scheduler, exact load)";
  spec.expectation =
      "V20 global load ~33-35 % in phase 1 (extra slices at 1600 MHz), "
      "dropping back to 20 % when V70 wakes and the frequency reaches max";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kSedf;
  spec.cfg.governor = "stable-ondemand";
  spec.cfg.load = pas::scenario::LoadKind::kExact;
  return pas::bench::run_figure(argc, argv, spec);
}
