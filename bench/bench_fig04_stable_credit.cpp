// Fig. 4 — "Global loads with our governor / Credit scheduler / exact load":
// the authors' stable ondemand variant removes the oscillation.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 4";
  spec.title = "Global loads with the paper's stable governor (credit scheduler, exact load)";
  spec.expectation =
      "V20 20 % / V70 70 % global plateaus; frequency 1600 MHz while only "
      "V20 is active, 2667 MHz while V70 is active, no oscillation";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kCredit;
  spec.cfg.governor = "stable-ondemand";
  spec.cfg.load = pas::scenario::LoadKind::kExact;
  return pas::bench::run_figure(argc, argv, spec);
}
