// Microbenchmarks (google-benchmark): the hot paths a real hypervisor would
// care about — scheduler pick/charge/account, the PAS per-tick recompute,
// governor decisions, and end-to-end simulation throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/compensation.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace pas;

hv::VmConfig vm_cfg(double credit) {
  hv::VmConfig c;
  c.credit = credit;
  return c;
}

template <typename Sched>
void BM_SchedulerPickChargeAccount(benchmark::State& state) {
  Sched sched;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<common::VmId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    sched.add_vm(static_cast<common::VmId>(i), vm_cfg(100.0 / static_cast<double>(n)));
    ids.push_back(static_cast<common::VmId>(i));
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    const common::VmId v = sched.pick(common::usec(t), ids);
    if (v != common::kInvalidVm) sched.charge(v, common::msec(1));
    t += 1000;
    if (t % 30'000 == 0) sched.account(common::usec(t));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_SchedulerPickChargeAccount, sched::CreditScheduler)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_TEMPLATE(BM_SchedulerPickChargeAccount, sched::SedfScheduler)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32);

void BM_PasCompensationTick(benchmark::State& state) {
  const auto ladder = cpu::FrequencyLadder::paper_default();
  const auto n = static_cast<std::size_t>(state.range(0));
  double absolute = 0.0;
  for (auto _ : state) {
    const std::size_t idx = core::compute_new_freq_index(ladder, absolute);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += core::compensated_credit(100.0 / static_cast<double>(n), ladder, idx);
    }
    benchmark::DoNotOptimize(sum);
    absolute += 7.3;
    if (absolute > 100.0) absolute -= 100.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PasCompensationTick)->Arg(2)->Arg(8)->Arg(32);

void BM_GovernorDecide(benchmark::State& state) {
  const auto ladder = cpu::FrequencyLadder::paper_default();
  gov::StableOndemandGovernor stable;
  gov::OndemandGovernor ondemand;
  gov::Sample s;
  double u = 0.0;
  for (auto _ : state) {
    s.util = u;
    s.avg_util = u;
    s.current_index = 2;
    benchmark::DoNotOptimize(stable.decide(s, ladder));
    benchmark::DoNotOptimize(ondemand.decide(s, ladder));
    u += 0.013;
    if (u > 1.0) u -= 1.0;
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_GovernorDecide);

/// End-to-end: simulated seconds per wall second for a loaded two-VM host.
void BM_HostSimulationThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    hv::HostConfig hc;
    hc.trace_stride = common::SimTime{};
    hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
    host.add_vm(vm_cfg(20.0), std::make_unique<wl::BusyLoop>());
    host.add_vm(vm_cfg(70.0), std::make_unique<wl::BusyLoop>());
    state.ResumeTiming();
    host.run_until(common::seconds(100));
    benchmark::DoNotOptimize(host.idle_time());
  }
  state.SetItemsProcessed(state.iterations() * 100);  // simulated seconds
}
BENCHMARK(BM_HostSimulationThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
