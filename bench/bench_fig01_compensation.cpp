// Fig. 1 — "Compensation of Frequency Reduction with Credit Allocation".
//
// pi-app execution times at the maximum frequency (2667 MHz) with initial
// credits 10..100 %, against the same runs at 2133 MHz with the credits
// computed by eq. 4 (C / 0.8 -> 12.5..125). The two series must coincide:
// a credit allocation can exactly cancel a frequency reduction.
#include <cstdio>
#include <vector>

#include "calibration/proportionality.hpp"
#include "common/ascii_chart.hpp"
#include "common/csv.hpp"
#include "common/flags.hpp"
#include "core/compensation.hpp"

int main(int argc, char** argv) {
  using namespace pas;
  const common::Flags flags{argc, argv};
  const auto ladder = cpu::FrequencyLadder::paper_default();
  const std::size_t max_state = ladder.max_index();
  const std::size_t new_state = ladder.index_of(common::mhz(2133));
  // Paper's pi-app sized so credit 10 % -> ~1100 s (Y axis of Fig. 1).
  const common::Work pi_work = common::mf_seconds(flags.get_double("work", 110.0));

  std::printf("=== Fig. 1: Compensation of frequency reduction with credit allocation ===\n");
  std::printf("expected shape: the 2133 MHz series with eq.4-compensated credits overlays\n");
  std::printf("the 2667 MHz series with the initial credits (identical execution times).\n");
  std::printf("NOTE: for initial credits >= 90 %% the compensated credit exceeds 100 %%\n");
  std::printf("of the slower processor (112.5 / 125 %%) — a cap above the whole machine\n");
  std::printf("cannot be honored, so the time saturates at W/ratio. Eq. 4 compensates\n");
  std::printf("fully whenever the compensated credit is feasible (credits <= 80 %%).\n\n");
  std::printf("  %10s %12s | %10s %12s | %8s\n", "credit(%)", "T@2667 (s)", "newcred(%)",
              "T@2133 (s)", "diff(%)");

  std::vector<double> t_max_series, t_new_series;
  double worst_feasible_diff = 0.0;
  for (int c = 10; c <= 100; c += 10) {
    const double t_max =
        calib::measure_pi_time_sec(ladder, max_state, static_cast<double>(c), pi_work);
    const double new_credit =
        core::compensated_credit(static_cast<double>(c), ladder, new_state);
    const double t_new = calib::measure_pi_time_sec(ladder, new_state, new_credit, pi_work);
    const double diff = (t_new / t_max - 1.0) * 100.0;
    if (new_credit <= 100.0) worst_feasible_diff = std::max(worst_feasible_diff, std::abs(diff));
    std::printf("  %10d %12.1f | %10.1f %12.1f | %+7.2f%s\n", c, t_max, new_credit, t_new,
                diff, new_credit > 100.0 ? "  (infeasible cap)" : "");
    t_max_series.push_back(t_max);
    t_new_series.push_back(t_new);
  }
  std::printf("\n  worst deviation over feasible compensated credits: %.2f %% "
              "(paper: the curves coincide)\n\n",
              worst_feasible_diff);

  std::vector<common::ChartSeries> series;
  series.push_back({"T@2667/init-credit", 'o', t_max_series});
  series.push_back({"T@2133/new-credit", 'x', t_new_series});
  common::ChartOptions opt;
  opt.title = "Fig. 1: execution time vs credit (both series should overlay)";
  opt.width = 60;
  opt.height = 16;
  opt.y_min = 0.0;
  opt.y_max = 1200.0;
  opt.x_label = "initial credit 10% .. 100% ->";
  std::fputs(common::render_chart(series, opt).c_str(), stdout);

  if (const auto path = flags.get("csv")) {
    common::CsvWriter out{*path};
    out.header({"credit_pct", "t_max_freq_sec", "new_credit_pct", "t_new_freq_sec"});
    for (std::size_t i = 0; i < t_max_series.size(); ++i) {
      const double c = 10.0 * static_cast<double>(i + 1);
      out.row({c, t_max_series[i], core::compensated_credit(c, ladder, new_state),
               t_new_series[i]});
    }
    std::printf("  data written to %s\n", path->c_str());
  }
  return 0;
}
