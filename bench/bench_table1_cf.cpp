// Table 1 — "cf_min on different processors".
//
// Runs the §5.2 calibration procedure on the five modeled Grid5000 machines
// and compares the measured cf_min with the paper's row. Also prints the
// per-state cf series to show it is (approximately) constant per machine,
// as the paper observed.
#include <cstdio>

#include "calibration/cf_calibrator.hpp"
#include "common/csv.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  using namespace pas;
  const common::Flags flags{argc, argv};

  calib::CfCalibratorConfig cfg;
  cfg.measure_time = common::seconds(flags.get_int("measure", 120));

  std::printf("=== Table 1: cf_min on different processors ===\n");
  std::printf("paper row:    X3440 0.94867 | L5420 0.99903 | E5-2620 0.80338 | "
              "Opteron-6164HE 0.99508 | i7-3770 0.86206\n");
  std::printf("mechanism: turbo parts run above nominal at the top P-state, so the\n");
  std::printf("nominal frequency ratio overestimates low-state slowdowns (DESIGN.md)\n\n");

  const auto reports = calib::calibrate_table1(cfg);
  const double paper[] = {0.94867, 0.99903, 0.80338, 0.99508, 0.86206};

  std::printf("  %-22s %10s %10s %10s %8s\n", "processor", "cf_min", "paper", "model-gt",
              "err(%)");
  std::size_t i = 0;
  for (const auto& r : reports) {
    const double err = (r.cf_min / paper[i] - 1.0) * 100.0;
    std::printf("  %-22s %10.5f %10.5f %10.5f %+7.2f\n", r.machine.c_str(), r.cf_min,
                paper[i], r.expected_cf_min, err);
    ++i;
  }

  std::printf("\n  per-state cf (should be ~constant per machine):\n");
  for (const auto& r : reports) {
    std::printf("  %-22s:", r.machine.c_str());
    for (const auto& m : r.states) std::printf(" %5.0fMHz=%.3f", m.nominal_mhz, m.cf);
    std::printf("\n");
  }

  if (const auto path = flags.get("csv")) {
    common::CsvWriter out{*path};
    out.raw_line("machine,state_mhz,ratio,mean_load_pct,cf");
    for (const auto& r : reports) {
      for (const auto& m : r.states) {
        out.labeled_row(r.machine,
                        std::vector<double>{m.nominal_mhz, m.ratio, m.mean_load_pct, m.cf});
      }
    }
    std::printf("  data written to %s\n", path->c_str());
  }
  return 0;
}
