// Table 2 — "Execution Times on Different Virtualization Platforms".
//
// V20 (20 % credit) runs the pi-app while V70 is lazy, on seven modeled
// platforms, under the Performance and OnDemand governor modes. The paper's
// headline: fixed-credit platforms lose 27-50 % under OnDemand, Xen/PAS
// loses nothing, variable-credit platforms lose nothing (but overserve V20).
#include <cstdio>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "platform/catalog.hpp"

int main(int argc, char** argv) {
  using namespace pas;
  const common::Flags flags{argc, argv};

  platform::Table2Config cfg;
  // Full-size runs land near the paper's absolute seconds; --fast scales
  // the pi-app down 8x (ratios unchanged).
  if (flags.has("fast")) cfg.pi_work = common::mf_seconds(40.0);

  std::printf("=== Table 2: execution times on different virtualization platforms ===\n");
  std::printf("paper:        Performance | OnDemand | Degradation\n");
  std::printf("  Hyper-V 2012       1601 |     3212 |  50 %%\n");
  std::printf("  VMware ESXi 5      1550 |     2132 |  27 %%\n");
  std::printf("  Xen/credit         1559 |     2599 |  40 %%\n");
  std::printf("  Xen/PAS            1559 |     1560 |   0 %%\n");
  std::printf("  Xen/SEDF            616 |      616 |   0 %%\n");
  std::printf("  KVM                 599 |      599 |   0 %%\n");
  std::printf("  VirtualBox          625 |      625 |   0 %%\n\n");

  const auto rows = platform::run_table2(cfg);

  std::printf("measured:\n");
  std::printf("  %-20s %-20s %13s %11s %13s\n", "platform", "family", "Performance(s)",
              "OnDemand(s)", "Degradation(%)");
  for (const auto& r : rows) {
    std::printf("  %-20s %-20s %13.0f %11.0f %13.1f\n", r.name.c_str(), r.family.c_str(),
                r.t_performance_sec, r.t_ondemand_sec, r.degradation_pct);
  }
  std::printf("\nshape check: fixed-credit degradations ~50/27/40 %%, PAS and all "
              "variable-credit rows ~0 %%,\nvariable-credit times ~2.5x faster than "
              "fixed-credit under Performance.\n");

  if (const auto path = flags.get("csv")) {
    common::CsvWriter out{*path};
    out.raw_line("platform,family,t_performance_sec,t_ondemand_sec,degradation_pct");
    for (const auto& r : rows) {
      out.labeled_row(r.name + "," + r.family,
                      std::vector<double>{r.t_performance_sec, r.t_ondemand_sec,
                                          r.degradation_pct});
    }
    std::printf("  data written to %s\n", path->c_str());
  }
  return 0;
}
