// Fig. 2 — "Load profile (at the maximum frequency)": the reference run.
// Credit scheduler, frequency pinned at max, exact load.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 2";
  spec.title = "Load profile at the maximum frequency (credit scheduler, exact load)";
  spec.expectation =
      "V20 plateau at 20 % global load on [500,6500)s, V70 plateau at 70 % on "
      "[2500,5000)s, frequency flat at 2667 MHz";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kCredit;
  spec.cfg.governor = "performance";
  spec.cfg.load = pas::scenario::LoadKind::kExact;
  return pas::bench::run_figure(argc, argv, spec);
}
