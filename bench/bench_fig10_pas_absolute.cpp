// Fig. 10 — "Absolute loads with the PAS scheduler / thrashing load": the
// payoff view. Absolute capacities equal the purchased credits (20/70) in
// every phase, at the lowest frequency that can deliver them.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 10";
  spec.title = "Absolute loads with the PAS scheduler (thrashing load)";
  spec.expectation =
      "V20 absolute load flat at 20 % and V70 at 70 % while active — SLAs "
      "hold AND the frequency drops to 1600 MHz whenever possible";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kCredit;
  spec.cfg.governor = "";
  spec.cfg.controller = pas::scenario::ControllerKind::kPas;
  spec.cfg.load = pas::scenario::LoadKind::kThrashing;
  spec.cfg.dom0_demand = 10.0;
  spec.absolute_view = true;
  return pas::bench::run_figure(argc, argv, spec);
}
