// Ablation A — the §4.1 implementation choices.
//
// The paper considered three designs and shipped the in-hypervisor one
// because a user-level implementation "can be quite intrusive ... and it
// may lack reactivity". This bench quantifies that: after a step from idle
// to full thrash, how long until the controller has rescaled credits and
// frequency, and how much SLA-relevant capacity V20 loses across repeated
// load steps under each design.
#include <cstdio>
#include <memory>

#include "common/flags.hpp"
#include "core/pas_controller.hpp"
#include "core/user_level_managers.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace pas;

struct Design {
  const char* name;
  bool governor;  // design 1 keeps the stock governor
  int kind;       // 0 = PAS, 1 = user-level credit, 2 = user-level credit+DVFS
};

std::unique_ptr<hv::Controller> make_controller(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<core::PasController>();
    case 1:
      return std::make_unique<core::UserLevelCreditManager>();
    default:
      return std::make_unique<core::UserLevelDvfsCreditManager>();
  }
}

struct StepResult {
  double settle_sec = 0.0;     // time to settle caps after the load step
  double work_deficit = 0.0;   // mf-seconds V20 lost vs its SLA during steps
};

/// Square-wave load on V20 (90 % credit): 60 s idle / 60 s thrash, repeated.
StepResult run_design(const Design& d, int cycles) {
  hv::HostConfig hc;
  hc.trace_stride = common::SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  if (d.governor) host.set_governor(std::make_unique<gov::StableOndemandGovernor>());
  host.set_controller(make_controller(d.kind));

  std::vector<wl::LoadProfile::Step> steps;
  for (int c = 0; c < cycles; ++c) {
    steps.push_back({common::seconds(120 * c + 60), 1.0});
    steps.push_back({common::seconds(120 * c + 120), 0.0});
  }
  hv::VmConfig v;
  v.name = "V90";
  v.credit = 90.0;
  host.add_vm(v, std::make_unique<wl::GatedBusyLoop>(wl::LoadProfile{steps}));

  StepResult res;
  int settled_cycles = 0;
  for (int c = 0; c < cycles; ++c) {
    const common::SimTime step_at = common::seconds(120 * c + 60);
    host.run_until(step_at);
    const double work0 = host.vm(0).total_work.mf_seconds();
    // Poll until the cap reflects full frequency (90 % +- 5) or phase ends.
    bool settled = false;
    while (host.now() < step_at + common::seconds(60)) {
      host.run_until(host.now() + common::msec(100));
      if (!settled && host.scheduler().cap(0) < 95.0 &&
          host.cpufreq().current_index() == host.cpu().ladder().max_index()) {
        res.settle_sec += (host.now() - step_at).sec();
        settled = true;
        ++settled_cycles;
      }
    }
    host.run_until(step_at + common::seconds(60));
    const double work = host.vm(0).total_work.mf_seconds() - work0;
    res.work_deficit += std::max(0.0, 0.90 * 60.0 - work);
  }
  if (settled_cycles > 0) res.settle_sec /= settled_cycles;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags{argc, argv};
  const int cycles = static_cast<int>(flags.get_int("cycles", 5));

  std::printf("=== Ablation A: PAS implementation choices (paper §4.1) ===\n");
  std::printf("square-wave thrash on a 90%%-credit VM, %d idle/thrash cycles;\n", cycles);
  std::printf("settle = time from load step until caps+frequency are correct.\n\n");
  std::printf("  %-34s %12s %18s\n", "design", "settle (s)", "work deficit (mf-s)");

  const Design designs[] = {
      {"in-hypervisor PAS (shipped)", false, 0},
      {"user-level credit (design 1)", true, 1},
      {"user-level credit+DVFS (design 2)", false, 2},
  };
  for (const auto& d : designs) {
    const StepResult r = run_design(d, cycles);
    std::printf("  %-34s %12.2f %18.2f\n", d.name, r.settle_sec, r.work_deficit);
  }
  std::printf("\nexpected: the in-hypervisor design settles fastest and loses the least "
              "capacity;\ndesign 1 chases the governor; design 2 is limited by its "
              "daemon period.\n");
  return 0;
}
