// Core-throughput bench: simulated-seconds-per-wall-second on a 32-VM
// hosting-center scenario, with the event-driven fast path A/B'd against
// the reference slow-stepped loop.
//
// The scenario models a hosting center at moderate load: a few dozen
// tenants whose web servers, batch jobs and thrashing loads come and go
// across the day while most capacity sits reserved-but-idle — exactly the
// long-horizon regime the dynamic-reconfiguration studies need. The bench
// asserts the fast path produces byte-identical traces, then records both
// rates and the speedup in BENCH_core.json.
//
// Usage: bench_core_throughput [--smoke] [--horizon=SECONDS]
//                              [--out=BENCH_core.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/load_profile.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace {

using pas::common::mf_seconds;
using pas::common::seconds;
using pas::common::SimTime;

constexpr std::size_t kVmCount = 32;

std::unique_ptr<pas::hv::Host> build_host(bool fast_path, SimTime horizon) {
  pas::hv::HostConfig hc;
  hc.trace_stride = seconds(10);
  hc.event_driven_fast_path = fast_path;
  auto host = std::make_unique<pas::hv::Host>(
      hc, std::make_unique<pas::sched::CreditScheduler>());
  host->set_governor(pas::gov::make_governor("stable-ondemand"));

  const auto horizon_s = horizon.us() / 1'000'000;
  // A day-cycle hosting center: the business "day" (first half of the
  // horizon) sees staggered web traffic, thrashing loads and batch jobs
  // contending under their caps; the "night" (second half) is the
  // reserved-but-idle regime where a long-horizon study spends most of its
  // simulated time.
  //
  // 8 web tenants (2 % credit each): request pulses over 1/8 of the day.
  for (int i = 0; i < 8; ++i) {
    pas::hv::VmConfig cfg;
    cfg.name = "web" + std::to_string(i);
    cfg.credit = 2.0;
    pas::wl::WebAppConfig wc;
    wc.queue_capacity = 500;
    wc.seed = 100 + static_cast<std::uint64_t>(i);
    const double rate = pas::wl::WebApp::rate_for_demand(cfg.credit, wc.request_cost);
    const auto from = seconds(horizon_s * i / 32);
    const auto until = seconds(horizon_s * i / 32 + horizon_s / 8);
    host->add_vm(cfg, std::make_unique<pas::wl::WebApp>(
                          pas::wl::LoadProfile::pulse(from, until, rate), wc));
  }
  // 6 thrashing tenants (3 % credit): gated CPU hogs — the all-over-cap
  // idle path while the gate is open.
  for (int i = 0; i < 6; ++i) {
    pas::hv::VmConfig cfg;
    cfg.name = "hog" + std::to_string(i);
    cfg.credit = 3.0;
    const auto from = seconds(horizon_s / 8 + horizon_s * i / 32);
    const auto until = seconds(horizon_s / 8 + horizon_s * i / 32 + horizon_s / 12);
    host->add_vm(cfg, std::make_unique<pas::wl::GatedBusyLoop>(
                          pas::wl::LoadProfile::pulse(from, until, 1.0)));
  }
  // 6 batch tenants (5 % credit): short pi-app jobs with staggered starts
  // through the day.
  for (int i = 0; i < 6; ++i) {
    pas::hv::VmConfig cfg;
    cfg.name = "batch" + std::to_string(i);
    cfg.credit = 5.0;
    host->add_vm(cfg, std::make_unique<pas::wl::PiApp>(
                          mf_seconds(static_cast<double>(horizon_s) / 400.0),
                          seconds(horizon_s * i / 16)));
  }
  // 12 reserved-but-idle tenants.
  for (int i = 0; i < 12; ++i) {
    pas::hv::VmConfig cfg;
    cfg.name = "idle" + std::to_string(i);
    cfg.credit = 2.0;
    host->add_vm(cfg, std::make_unique<pas::wl::IdleGuest>());
  }
  return host;
}

bool traces_identical(const pas::hv::Host& a, const pas::hv::Host& b) {
  const auto sa = a.trace().samples();
  const auto sb = b.trace().samples();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    const auto ra = sa[i];
    const auto rb = sb[i];
    if (ra.t != rb.t || ra.freq_mhz != rb.freq_mhz ||
        ra.global_load_pct != rb.global_load_pct ||
        ra.absolute_load_pct != rb.absolute_load_pct)
      return false;
    for (std::size_t v = 0; v < ra.vm_global_pct.size(); ++v) {
      if (ra.vm_global_pct[v] != rb.vm_global_pct[v] ||
          ra.vm_absolute_pct[v] != rb.vm_absolute_pct[v] ||
          ra.vm_credit_pct[v] != rb.vm_credit_pct[v] ||
          ra.vm_saturated[v] != rb.vm_saturated[v])
        return false;
    }
  }
  if (a.idle_time() != b.idle_time()) return false;
  for (pas::common::VmId v = 0; v < a.vm_count(); ++v) {
    if (a.vm(v).total_busy != b.vm(v).total_busy ||
        a.vm(v).total_work != b.vm(v).total_work)
      return false;
  }
  return true;
}

double run_timed(pas::hv::Host& host, SimTime horizon) {
  const auto start = std::chrono::steady_clock::now();
  host.run_until(horizon);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const pas::common::Flags flags{argc, argv};
  const long horizon_s = flags.get_int("horizon", flags.has("smoke") ? 400 : 4000);
  if (horizon_s < 32) {  // shorter horizons make the staggered windows empty
    std::fprintf(stderr, "bench_core_throughput: --horizon must be >= 32 (got %ld)\n",
                 horizon_s);
    return 2;
  }
  const std::string out = flags.get_or("out", "BENCH_core.json");
  const SimTime horizon = seconds(horizon_s);

  std::printf("=== core throughput: 32-VM hosting center, %ld simulated s ===\n",
              horizon_s);

  // --only=fast / --only=slow runs a single mode (profiling); no JSON then.
  const std::string only = flags.get_or("only", "");
  if (!only.empty()) {
    if (only != "fast" && only != "slow") {
      std::fprintf(stderr, "bench_core_throughput: --only takes 'fast' or 'slow'\n");
      return 2;
    }
    auto host = build_host(/*fast_path=*/only == "fast", horizon);
    const double wall = run_timed(*host, horizon);
    std::printf("  %s loop: %8.2f wall ms   %10.0f sim-s/wall-s\n", only.c_str(),
                wall * 1e3, static_cast<double>(horizon_s) / wall);
    return 0;
  }

  auto slow_host = build_host(/*fast_path=*/false, horizon);
  const double slow_wall = run_timed(*slow_host, horizon);
  const double slow_rate = static_cast<double>(horizon_s) / slow_wall;
  std::printf("  slow-stepped loop : %8.2f wall ms   %10.0f sim-s/wall-s\n",
              slow_wall * 1e3, slow_rate);

  auto fast_host = build_host(/*fast_path=*/true, horizon);
  const double fast_wall = run_timed(*fast_host, horizon);
  const double fast_rate = static_cast<double>(horizon_s) / fast_wall;
  std::printf("  event-driven loop : %8.2f wall ms   %10.0f sim-s/wall-s\n",
              fast_wall * 1e3, fast_rate);

  const bool identical = traces_identical(*slow_host, *fast_host);
  const double speedup = slow_wall / fast_wall;
  std::printf("  speedup: %.2fx   traces identical: %s\n", speedup,
              identical ? "yes" : "NO — BUG");

  {
    std::ofstream js{out};
    if (!js) {
      std::fprintf(stderr, "bench_core_throughput: cannot write %s\n", out.c_str());
      return 2;
    }
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"core_throughput\",\n"
                  "  \"scenario\": \"hosting_center_32vm\",\n"
                  "  \"vms\": %zu,\n"
                  "  \"simulated_seconds\": %ld,\n"
                  "  \"slow\": {\"wall_seconds\": %.6f, \"sim_per_wall\": %.1f},\n"
                  "  \"fast\": {\"wall_seconds\": %.6f, \"sim_per_wall\": %.1f},\n"
                  "  \"speedup\": %.3f,\n"
                  "  \"traces_identical\": %s\n"
                  "}\n",
                  kVmCount, horizon_s, slow_wall, slow_rate, fast_wall, fast_rate,
                  speedup, identical ? "true" : "false");
    js << buf;
    std::printf("  written to %s\n", out.c_str());
  }

  if (!identical) return 1;
  if (flags.has("require-speedup") && speedup < 3.0) {
    std::printf("  FAIL: speedup %.2fx below the 3x bar\n", speedup);
    return 1;
  }
  return 0;
}
