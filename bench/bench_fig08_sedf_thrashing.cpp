// Fig. 8 — "Global or absolute loads with our governor / SEDF scheduler /
// thrashing load": SEDF in default. A thrashing V20 soaks up the whole
// host (~85-90 %), pinning the frequency at max — the provider pays for
// capacity V20 never bought.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  pas::bench::FigureSpec spec;
  spec.id = "Fig. 8";
  spec.title = "Loads with the stable governor (SEDF scheduler, thrashing load)";
  spec.expectation =
      "V20 global load ~85-90 % in phases 1 and 3 (paper: 85 %), frequency "
      "pinned at 2667 MHz for the whole active span (global == absolute)";
  spec.cfg.scheduler = pas::sched::SchedulerKind::kSedf;
  spec.cfg.governor = "stable-ondemand";
  spec.cfg.load = pas::scenario::LoadKind::kThrashing;
  spec.cfg.dom0_demand = 10.0;  // thrashing web traffic loads the Dom0 backend
  return pas::bench::run_figure(argc, argv, spec);
}
