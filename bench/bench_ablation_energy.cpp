// Ablation C — the energy/QoS frontier: credit vs SEDF vs PAS under
// thrashing load (the provider's decision table).
//
//   credit+governor: saves energy, violates the SLA (Fig. 5);
//   SEDF+governor:   honors the SLA, wastes energy and oversupplies (Fig. 8);
//   PAS:             honors the SLA at the low-frequency energy point
//                    (Figs. 9/10) — the paper's claim in one table.
// Also sweeps the PAS smoothing choice (averaged vs instantaneous load).
#include <cstdio>

#include "common/flags.hpp"
#include "scenario/two_vm.hpp"

namespace {

using namespace pas;

scenario::TwoVmConfig base(bool short_run) {
  scenario::TwoVmConfig cfg;
  cfg.load = scenario::LoadKind::kThrashing;
  cfg.dom0_demand = 10.0;
  if (short_run) {
    cfg.total = common::seconds(2000);
    cfg.v20_from = common::seconds(100);
    cfg.v20_until = common::seconds(1700);
    cfg.v70_from = common::seconds(600);
    cfg.v70_until = common::seconds(1300);
    cfg.trace_stride = common::seconds(5);
  }
  return cfg;
}

void report(const char* name, const scenario::TwoVmResult& r) {
  std::printf("  %-24s %10.1f %10.1f %14.1f %15.1f\n", name, r.energy_joules / 1000.0,
              r.average_watts, 100.0 * r.v20_sla_violation, r.phases[1].v20_absolute_pct);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags{argc, argv};
  const bool short_run = flags.has("short");

  std::printf("=== Ablation C: energy vs QoS under thrashing load ===\n\n");
  std::printf("  %-24s %10s %10s %14s %15s\n", "policy", "energy kJ", "avg W",
              "V20 SLA viol%", "P1 V20 abs%");

  {
    scenario::TwoVmConfig cfg = base(short_run);
    cfg.scheduler = sched::SchedulerKind::kCredit;
    cfg.governor = "stable-ondemand";
    report("credit + governor", scenario::run_two_vm(cfg));
  }
  {
    scenario::TwoVmConfig cfg = base(short_run);
    cfg.scheduler = sched::SchedulerKind::kSedf;
    cfg.governor = "stable-ondemand";
    report("SEDF + governor", scenario::run_two_vm(cfg));
  }
  {
    scenario::TwoVmConfig cfg = base(short_run);
    cfg.scheduler = sched::SchedulerKind::kCredit;
    cfg.governor = "";
    cfg.controller = scenario::ControllerKind::kPas;
    report("PAS (in-hypervisor)", scenario::run_two_vm(cfg));
  }
  {
    scenario::TwoVmConfig cfg = base(short_run);
    cfg.scheduler = sched::SchedulerKind::kCredit;
    cfg.governor = "stable-ondemand";
    cfg.controller = scenario::ControllerKind::kUserLevelCredit;
    report("user-level credit mgr", scenario::run_two_vm(cfg));
  }
  {
    scenario::TwoVmConfig cfg = base(short_run);
    cfg.scheduler = sched::SchedulerKind::kCredit;
    cfg.governor = "";
    cfg.controller = scenario::ControllerKind::kUserLevelDvfsCredit;
    report("user-level credit+DVFS", scenario::run_two_vm(cfg));
  }

  std::printf(
      "\nreading: P1 V20 abs%% is the delivered capacity against a 20 %% SLA during\n"
      "the V20-only phase. credit+governor under-delivers (~12 %%); SEDF delivers by\n"
      "over-spending energy (max frequency, V20 takes the whole host); PAS delivers\n"
      "exactly 20 %% at the SEDF-beating energy point. The user-level variants match\n"
      "PAS in steady state but pay reactivity penalties at phase changes\n"
      "(see bench_ablation_impl_choice).\n");
  return 0;
}
