// Quickstart: the paper's problem and its fix, in ~60 lines.
//
// Build a one-core virtualized host, give a customer VM a 20 % credit, let
// it thrash, and compare what it actually receives:
//   (1) credit scheduler + ondemand governor — the SLA silently shrinks;
//   (2) the same host with the PAS controller — the SLA holds.
//
// Run: ./examples/quickstart
#include <cstdio>
#include <memory>

#include "core/pas.hpp"

using namespace pas;

namespace {

/// Runs a 20 %-credit thrashing VM for 10 simulated minutes; returns the
/// absolute capacity it received (percent of the max-frequency processor).
double delivered_capacity_pct(bool use_pas) {
  hv::HostConfig hc;             // DELL Optiplex 755 ladder: 1600..2667 MHz
  hc.trace_stride = common::SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};

  if (use_pas) {
    // PAS owns both the frequency and the credits (paper §4).
    host.set_controller(std::make_unique<core::PasController>());
  } else {
    // The stock setup: an ondemand-style governor, blind to VM credits.
    host.set_governor(std::make_unique<gov::StableOndemandGovernor>());
  }

  hv::VmConfig v20;
  v20.name = "V20";
  v20.credit = 20.0;  // the SLA: 20 % of the processor at max frequency
  const common::VmId id = host.add_vm(v20, std::make_unique<wl::BusyLoop>());

  host.run_until(common::seconds(600));
  return 100.0 * host.vm(id).total_work.mf_seconds() / host.now().sec();
}

}  // namespace

int main() {
  std::printf("V20 bought 20 %% of the processor (at maximum frequency) and is fully "
              "loaded.\nThe host is otherwise idle, so DVFS scales the frequency "
              "down...\n\n");

  const double naive = delivered_capacity_pct(/*use_pas=*/false);
  std::printf("  credit scheduler + ondemand governor: V20 received %.1f %% "
              "(SLA broken)\n", naive);

  const double pas = delivered_capacity_pct(/*use_pas=*/true);
  std::printf("  credit scheduler + PAS controller:    V20 received %.1f %% "
              "(SLA held)\n\n", pas);

  std::printf("PAS raised V20's cap to 20 / (1600/2667) = 33.3 %% of the slower "
              "processor,\nwhich buys exactly the 20 %% it paid for — while the "
              "frequency stays at the\nminimum and the provider still saves "
              "energy.\n");
  return 0;
}
