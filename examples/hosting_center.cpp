// Hosting-center example: a provider's fleet under three operating
// policies, audited for the electricity bill AND for what the customers
// actually got — now on the real multi-host cluster with live migration
// (PR 1's single-host audit grew into the dynamic §2.3 workflow).
//
// Policies:
//   static spread       — VMs stay where they landed; all hosts on, max
//                         frequency (the "just buy hardware" baseline)
//   consolidation       — online manager packs VMs with live migrations
//                         and powers empty hosts off (VOVO)
//   consolidation + PAS — the manager additionally scales each host's
//                         frequency, re-compensating credits (eq. 4)
//
// The audit shows the §2.3 claim end to end: consolidation cuts most of
// the bill, DVFS reclaims more on top, and the SLA column shows what the
// reconfiguration cost the customers (migration downtime included).
//
// Run: ./examples/hosting_center [--hours=2] [--hosts=8] [--vms=64]
#include <cstdio>
#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/flags.hpp"
#include "scenario/hosting_cluster.hpp"

using namespace pas;

namespace {

struct AuditRow {
  std::string policy;
  double energy_kj = 0.0;
  double mean_watts = 0.0;
  std::size_t hosts_on = 0;
  std::size_t migrations = 0;
  common::SimTime total_downtime{};
  double worst_violation_fraction = 0.0;
  std::string worst_customer;
};

AuditRow run_policy(const std::string& policy, const scenario::HostingClusterConfig& base) {
  scenario::HostingClusterConfig cfg = base;
  if (policy == "static spread") {
    cfg.install_manager = false;
  } else if (policy == "consolidation") {
    cfg.manager.dvfs = cluster::ClusterManagerConfig::Dvfs::kPinnedMax;
  }  // "consolidation + PAS" keeps the default kPas
  auto cl = scenario::build_hosting_cluster(cfg);
  cl->run_until(cfg.horizon);

  AuditRow row;
  row.policy = policy;
  row.energy_kj = cl->energy_joules() / 1000.0;
  row.mean_watts = cl->average_watts();
  row.hosts_on = cl->powered_on_count();
  row.migrations = cl->migrations().size();
  for (cluster::GlobalVmId gid = 0; gid < cl->vm_count(); ++gid) {
    row.total_downtime += cl->vm_stats(gid).downtime;
    const double violation = cl->sla().violation_fraction(gid);
    if (violation > row.worst_violation_fraction) {
      row.worst_violation_fraction = violation;
      row.worst_customer = cl->vm_config(gid).vm.name;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags{argc, argv};
  scenario::HostingClusterConfig base;
  base.horizon = common::seconds(flags.get_int("hours", 2) * 3600);
  base.hosts = static_cast<std::size_t>(flags.get_int("hosts", 8));
  base.vms = static_cast<std::size_t>(flags.get_int("vms", 64));

  std::printf("Hosting-center audit: %zu tenants on %zu hosts, %lld h.\n\n", base.vms,
              base.hosts, static_cast<long long>(base.horizon.sec() / 3600));
  std::printf("  %-20s %11s %8s %9s %11s %10s %14s %9s\n", "policy", "energy kJ",
              "mean W", "hosts on", "migrations", "downtime s", "worst SLA viol", "customer");

  for (const char* policy : {"static spread", "consolidation", "consolidation + PAS"}) {
    const AuditRow r = run_policy(policy, base);
    std::printf("  %-20s %11.0f %8.1f %9zu %11zu %10.2f %13.1f%% %9s\n", r.policy.c_str(),
                r.energy_kj, r.mean_watts, r.hosts_on, r.migrations,
                r.total_downtime.sec(), 100.0 * r.worst_violation_fraction,
                r.worst_customer.empty() ? "-" : r.worst_customer.c_str());
  }

  std::printf(
      "\nreading: consolidation powers hosts off and pays for it in migrations and\n"
      "a little SLA-visible downtime; PAS then drops the survivors' frequency and\n"
      "re-compensates credits, reclaiming more energy without further SLA cost —\n"
      "DVFS is complementary to consolidation (paper §2.3), live.\n");
  return 0;
}
