// Hosting-center scenario: a provider packs several customers with
// different SLAs and duty cycles onto one host and audits, for each policy,
// (a) whether every customer got the capacity they bought and (b) what the
// electricity bill looks like.
//
// Five VMs: two steady web servers (15 % each), a nightly batch customer
// (30 %, thrashing while active), a bursty API backend (20 %), and Dom0.
//
// Run: ./examples/hosting_center [--hours=2]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "core/pas.hpp"
#include "metrics/sla_checker.hpp"

using namespace pas;

namespace {

struct Customer {
  const char* name;
  common::Percent credit;
  bool batch;  // thrashing while active
  common::SimTime active_from, active_until;
  double web_demand_pct;  // for non-batch customers
};

struct AuditRow {
  std::string policy;
  double energy_kj = 0.0;
  double min_delivery_ratio = 1.0;  // worst (delivered / purchased) across customers
  std::string worst_customer;
};

AuditRow run_policy(const std::string& policy, common::SimTime horizon) {
  hv::HostConfig hc;
  hc.trace_stride = common::seconds(10);
  std::unique_ptr<hv::Scheduler> sched;
  if (policy == "SEDF + governor") {
    sched = std::make_unique<sched::SedfScheduler>();
  } else {
    sched = std::make_unique<sched::CreditScheduler>();
  }
  hv::Host host{hc, std::move(sched)};
  if (policy == "PAS") {
    host.set_controller(std::make_unique<core::PasController>());
  } else if (policy != "performance (no DVFS)") {
    host.set_governor(std::make_unique<gov::StableOndemandGovernor>());
  } else {
    host.set_governor(std::make_unique<gov::PerformanceGovernor>());
  }

  // Dom0 first (highest priority).
  hv::VmConfig dom0;
  dom0.name = "Dom0";
  dom0.credit = 10.0;
  dom0.priority = 1;
  host.add_vm(dom0, std::make_unique<wl::IdleGuest>());

  const std::vector<Customer> customers = {
      {"web-a", 15.0, false, common::seconds(0), horizon, 15.0},
      {"web-b", 15.0, false, common::seconds(0), horizon, 12.0},
      {"batch", 30.0, true, common::usec(horizon.us() / 4), common::usec(horizon.us() * 3 / 4),
       0.0},
      {"api", 20.0, false, common::usec(horizon.us() / 8), common::usec(horizon.us() * 7 / 8),
       18.0},
  };
  std::vector<common::VmId> ids;
  std::uint64_t seed = 11;
  for (const auto& c : customers) {
    hv::VmConfig cfg;
    cfg.name = c.name;
    cfg.credit = c.credit;
    if (c.batch) {
      ids.push_back(host.add_vm(
          cfg, std::make_unique<wl::GatedBusyLoop>(
                   wl::LoadProfile::pulse(c.active_from, c.active_until, 1.0))));
    } else {
      wl::WebAppConfig wc;
      wc.seed = ++seed;
      const double rate = wl::WebApp::rate_for_demand(c.web_demand_pct, wc.request_cost);
      ids.push_back(host.add_vm(
          cfg, std::make_unique<wl::WebApp>(
                   wl::LoadProfile::pulse(c.active_from, c.active_until, rate), wc)));
    }
  }

  host.run_until(horizon);

  AuditRow row;
  row.policy = policy;
  row.energy_kj = host.energy().joules() / 1000.0;
  for (std::size_t i = 0; i < customers.size(); ++i) {
    const auto& c = customers[i];
    // Delivered capacity while active vs what a saturated customer would be
    // owed. Web customers only demand `web_demand_pct`, so compare against
    // min(demand, credit).
    const double active_sec = (c.active_until - c.active_from).sec();
    const double delivered = host.vm(ids[i]).total_work.mf_seconds() / active_sec * 100.0;
    const double owed = c.batch ? c.credit : std::min(c.web_demand_pct, c.credit);
    const double ratio = owed > 0 ? delivered / owed : 1.0;
    if (ratio < row.min_delivery_ratio) {
      row.min_delivery_ratio = ratio;
      row.worst_customer = c.name;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags{argc, argv};
  const auto horizon = common::seconds(flags.get_int("hours", 2) * 3600);

  std::printf("Hosting-center audit: 4 customers (15/15/30/20 %% SLAs) + Dom0, %lld h.\n\n",
              static_cast<long long>(horizon.sec() / 3600));
  std::printf("  %-24s %12s %18s %8s\n", "policy", "energy (kJ)", "worst delivery",
              "customer");

  for (const char* policy :
       {"performance (no DVFS)", "credit + governor", "SEDF + governor", "PAS"}) {
    const AuditRow r = run_policy(policy, horizon);
    std::printf("  %-24s %12.0f %17.0f%% %8s\n", r.policy.c_str(), r.energy_kj,
                100.0 * r.min_delivery_ratio, r.worst_customer.c_str());
  }

  std::printf("\nreading: 'worst delivery' is the most-shortchanged customer's delivered\n"
              "capacity as a share of what they were owed. Performance delivers 100 %% at\n"
              "the highest energy; credit+governor saves energy by shortchanging the\n"
              "batch customer; PAS delivers ~100 %% at near the credit+governor energy\n"
              "point.\n");
  return 0;
}
