// Energy study: what PAS is worth in joules across consolidation levels.
//
// Sweeps the host's aggregate demand from 10 % to 90 % (two customer VMs
// with proportional credits, thrashing) and prints energy + delivered-SLA
// for three policies. Shows the paper's §2.3 point: consolidation rarely
// fills hosts completely (memory-bound), so the DVFS headroom PAS exploits
// exists at every realistic operating point.
//
// Run: ./examples/energy_study [--minutes=20]
#include <cstdio>
#include <memory>

#include "common/flags.hpp"
#include "core/pas.hpp"

using namespace pas;

namespace {

struct Outcome {
  double energy_kj = 0.0;
  double delivered_pct = 0.0;  // total absolute capacity received by the VMs
};

Outcome run(double total_demand_pct, const std::string& policy, common::SimTime span) {
  hv::HostConfig hc;
  hc.trace_stride = common::SimTime{};
  std::unique_ptr<hv::Scheduler> sched;
  if (policy == "sedf") {
    sched = std::make_unique<sched::SedfScheduler>();
  } else {
    sched = std::make_unique<sched::CreditScheduler>();
  }
  hv::Host host{hc, std::move(sched)};
  if (policy == "pas") {
    host.set_controller(std::make_unique<core::PasController>());
  } else {
    host.set_governor(std::make_unique<gov::StableOndemandGovernor>());
  }

  // Two thrashing customers splitting the demand 1:2.
  for (const double share : {1.0 / 3.0, 2.0 / 3.0}) {
    hv::VmConfig v;
    v.credit = total_demand_pct * share;
    host.add_vm(v, std::make_unique<wl::BusyLoop>());
  }
  host.run_until(span);

  Outcome o;
  o.energy_kj = host.energy().joules() / 1000.0;
  o.delivered_pct = 100.0 *
                    (host.vm(0).total_work.mf_seconds() + host.vm(1).total_work.mf_seconds()) /
                    span.sec();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags{argc, argv};
  const auto span = common::seconds(flags.get_int("minutes", 20) * 60);

  std::printf("Energy vs consolidation level (two thrashing VMs, credits = demand).\n");
  std::printf("'delivered' should equal the aggregate credit; energy is the bill.\n\n");
  std::printf("  %8s | %21s | %21s | %21s\n", "", "credit + governor", "SEDF + governor",
              "PAS");
  std::printf("  %8s | %9s %11s | %9s %11s | %9s %11s\n", "demand %", "energy kJ", "delivered",
              "energy kJ", "delivered", "energy kJ", "delivered");

  for (const double demand : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    const Outcome credit = run(demand, "credit", span);
    const Outcome sedf = run(demand, "sedf", span);
    const Outcome pas = run(demand, "pas", span);
    std::printf("  %8.0f | %9.0f %10.1f%% | %9.0f %10.1f%% | %9.0f %10.1f%%\n", demand,
                credit.energy_kj, credit.delivered_pct, sedf.energy_kj, sedf.delivered_pct,
                pas.energy_kj, pas.delivered_pct);
  }

  std::printf("\nreading: credit+governor under-delivers at every partial load (the\n"
              "governor parks low and the caps stay nominal); SEDF delivers by burning\n"
              "the whole host; PAS delivers the exact aggregate credit at the lowest\n"
              "frequency that can carry it.\n");
  return 0;
}
