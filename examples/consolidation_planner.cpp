// Consolidation planner: pack a VM fleet onto hosts, power the rest off,
// and report what DVFS/PAS still reclaims — the paper's §2.3 workflow as a
// command-line tool.
//
// Run: ./examples/consolidation_planner [--vms=32] [--hosts=16] [--host-mem=4096]
//        [--fleet=uniform|mixed]
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/random.hpp"
#include "consolidation/consolidation.hpp"
#include "platform/host_class.hpp"

int main(int argc, char** argv) {
  using namespace pas;
  const common::Flags flags{argc, argv};
  const auto vm_count = static_cast<std::size_t>(flags.get_int("vms", 32));
  const auto host_count = static_cast<std::size_t>(flags.get_int("hosts", 16));

  // --fleet=mixed packs against the heterogeneous platform catalog (with
  // NUMA-aware costs); the default is the classic uniform Optiplex fleet.
  const bool mixed = flags.get_or("fleet", "uniform") == "mixed";
  if (mixed && flags.has("host-mem")) {
    std::fprintf(stderr, "consolidation_planner: --host-mem only applies to the uniform "
                         "fleet; the mixed catalog sets memory per class\n");
    return 2;
  }
  platform::HostClass uniform = platform::optiplex_755();
  uniform.memory_mb = flags.get_double("host-mem", 4096.0);
  const auto fleet = mixed ? platform::fleet_specs(platform::mixed_fleet_classes(host_count))
                           : platform::planner_fleet(host_count, uniform);

  // A plausible mixed fleet: web (small mem, modest CPU), app (mid), db
  // (big mem, hungrier CPU), drawn deterministically.
  common::Rng rng{flags.get_int("seed", 42) >= 0
                      ? static_cast<std::uint64_t>(flags.get_int("seed", 42))
                      : 42u};
  std::vector<consolidation::VmSpec> vms;
  for (std::size_t i = 0; i < vm_count; ++i) {
    consolidation::VmSpec v;
    const double kind = rng.next_double();
    if (kind < 0.5) {  // web
      v.memory_mb = 256 + 256 * rng.next_below(3);
      v.credit = 5 + 5 * static_cast<double>(rng.next_below(3));
    } else if (kind < 0.85) {  // app
      v.memory_mb = 768 + 256 * rng.next_below(4);
      v.credit = 10 + 5 * static_cast<double>(rng.next_below(4));
    } else {  // db
      v.memory_mb = 1536 + 512 * rng.next_below(3);
      v.credit = 20 + 10 * static_cast<double>(rng.next_below(3));
    }
    v.cpu_demand_pct = v.credit * rng.uniform(0.4, 1.0);
    v.name = "vm" + std::to_string(i);
    vms.push_back(v);
  }

  const auto placement = consolidation::place_ffd(vms, fleet);
  // A random fleet may genuinely not fit: run the partial plan, but surface
  // the shortfall explicitly below.
  const auto outcome = consolidation::evaluate(placement, vms, fleet,
                                               /*allow_unplaced=*/true);

  std::printf("Consolidation plan: %zu VMs onto %zu hosts.\n\n", vm_count, host_count);
  std::printf("  %-16s %6s %10s %10s %8s %8s %8s\n", "host", "VMs", "mem MB", "credit %",
              "load %", "spills", "P-state");
  for (std::size_t hi = 0; hi < fleet.size(); ++hi) {
    const auto& h = outcome.hosts[hi];
    if (!h.powered_on) continue;
    std::size_t n = 0;
    for (std::size_t vi = 0; vi < vms.size(); ++vi) {
      if (placement.assignment[vi] == hi) ++n;
    }
    std::printf("  %-16s %6zu %10.0f %10.1f %8.1f %8zu %5.0fMHz\n", fleet[hi].name.c_str(),
                n, h.memory_used_mb, h.credit_reserved_pct, h.cpu_load_pct, h.numa_spills,
                fleet[hi].ladder.at(h.freq_index).freq.value());
  }

  std::printf("\n  hosts on: %zu of %zu\n", outcome.hosts_on, host_count);
  if (!outcome.all_placed()) {
    std::printf("  UNPLACED: %zu VM(s) — %.0f MB, %.0f %% credit, %.0f %% demand NOT served:",
                outcome.unplaced_vms.size(), outcome.unplaced_memory_mb,
                outcome.unplaced_credit_pct, outcome.unplaced_demand_pct);
    for (const std::size_t vi : outcome.unplaced_vms) std::printf(" %s", vms[vi].name.c_str());
    std::printf("\n");
  }
  std::printf("  mean active-host CPU load: %.1f %% (memory binds first — §2.3)\n",
              outcome.mean_active_load_pct);
  std::printf("  cluster power, consolidation only:    %8.1f W\n",
              outcome.total_power_max_freq_watts);
  std::printf("  cluster power, consolidation + PAS:   %8.1f W  (saves %.1f W, %.1f %%)\n",
              outcome.total_power_watts, outcome.dvfs_saving_watts(),
              outcome.total_power_max_freq_watts > 0
                  ? 100.0 * outcome.dvfs_saving_watts() / outcome.total_power_max_freq_watts
                  : 0.0);
  return 0;
}
