// Governor shoot-out on a diurnal web workload.
//
// A single web VM receives a day-shaped load (quiet night, morning ramp,
// lunch peak, evening tail) compressed into a configurable simulated span.
// For every governor we report energy, mean response time, p99 latency and
// frequency transitions — the operator's view of §2.2's governor zoo.
//
// The VM's credit defaults to 90 %. Try --credit=70 to watch the paper's
// pathology live: a saturated 70 % cap yields 70 % utilization, which is
// below every governor's up-threshold, so utilization-driven governors park
// at the minimum frequency and the latency explodes — exactly why PAS has
// to reason in *absolute* load.
//
// Run: ./examples/governor_comparison [--span=3600] [--credit=90]
#include <cstdio>
#include <memory>

#include "common/flags.hpp"
#include "core/pas.hpp"

using namespace pas;

namespace {

/// Day curve as a fraction of peak demand, per "hour" bucket (24 entries).
constexpr double kDayShape[24] = {0.15, 0.10, 0.08, 0.08, 0.10, 0.15, 0.25, 0.40,
                                  0.55, 0.65, 0.70, 0.80, 0.95, 0.90, 0.75, 0.70,
                                  0.65, 0.70, 0.80, 0.85, 0.70, 0.50, 0.35, 0.20};

wl::LoadProfile day_profile(common::SimTime span, double peak_demand_pct,
                            common::Work request_cost) {
  std::vector<wl::LoadProfile::Step> steps;
  for (int h = 0; h < 24; ++h) {
    const double demand = kDayShape[h] * peak_demand_pct;
    steps.push_back({common::usec(span.us() * h / 24),
                     wl::WebApp::rate_for_demand(demand, request_cost)});
  }
  return wl::LoadProfile{steps};
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags{argc, argv};
  const auto span = common::seconds(flags.get_int("span", 3600));
  const double credit = flags.get_double("credit", 90.0);

  std::printf("Diurnal web workload (peak 60 %% demand) on a %.0f %%-credit VM, %lld s "
              "compressed day.\n\n",
              credit, static_cast<long long>(span.sec()));
  std::printf("  %-16s %10s %12s %12s %12s %12s %9s\n", "governor", "energy kJ",
              "mean lat ms", "p99-ish ms", "transitions", "req served", "dropped");

  for (const char* name :
       {"performance", "powersave", "ondemand", "stable-ondemand", "conservative"}) {
    hv::HostConfig hc;
    hc.trace_stride = common::SimTime{};
    hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
    host.set_governor(gov::make_governor(name));

    wl::WebAppConfig wc;
    wc.seed = 31;
    wc.queue_capacity = 2000;  // clients time out rather than queue forever
    hv::VmConfig v;
    v.name = "web";
    v.credit = credit;
    auto app = std::make_unique<wl::WebApp>(day_profile(span, 60.0, wc.request_cost), wc);
    const wl::WebApp* web = app.get();
    host.add_vm(v, std::move(app));

    host.run_until(span);

    const auto& lat = web->latency_sec();
    // p99-ish from mean + 2.33 sigma (we keep streaming moments, not a
    // reservoir; good enough for a comparison table).
    const double p99 = lat.mean() + 2.33 * lat.stddev();
    std::printf("  %-16s %10.1f %12.1f %12.1f %12llu %12llu %9llu\n", name,
                host.energy().joules() / 1000.0, lat.mean() * 1000.0, p99 * 1000.0,
                static_cast<unsigned long long>(host.cpufreq().transition_count()),
                static_cast<unsigned long long>(web->completed()),
                static_cast<unsigned long long>(web->dropped()));
  }

  std::printf("\nreading: performance buys the best latency at the highest energy;\n"
              "powersave halves power but latency explodes at the lunch peak;\n"
              "ondemand tracks the curve but thrashes the PLL; stable-ondemand is the\n"
              "sane default; conservative lags the morning ramp.\n");
  return 0;
}
