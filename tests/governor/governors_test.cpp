#include "governor/governors.hpp"

#include <gtest/gtest.h>

namespace pas::gov {
namespace {

const cpu::FrequencyLadder kLadder = cpu::FrequencyLadder::paper_default();

Sample make_sample(double util, std::size_t index, double avg = -1.0) {
  Sample s;
  s.util = util;
  s.avg_util = avg < 0 ? util : avg;
  s.current_index = index;
  return s;
}

TEST(HelperTest, AbsoluteDemand) {
  EXPECT_NEAR(absolute_demand(0.5, kLadder, 4), 0.5, 1e-12);
  EXPECT_NEAR(absolute_demand(0.5, kLadder, 0), 0.5 * 1600 / 2667, 1e-12);
}

TEST(HelperTest, LowestFittingState) {
  // demand 0.2 fits the lowest state (0.6 capacity * 0.8 fill = 0.48).
  EXPECT_EQ(lowest_fitting_state(0.2, 0.8, kLadder), 0u);
  // demand 0.9 fits nothing below max.
  EXPECT_EQ(lowest_fitting_state(0.9, 0.8, kLadder), 4u);
  // demand 0.5: 1600*0.8/2667 = 0.48 < 0.5; 1867*0.8/2667 = 0.56 >= 0.5.
  EXPECT_EQ(lowest_fitting_state(0.5, 0.8, kLadder), 1u);
  // Infeasible demand falls back to max.
  EXPECT_EQ(lowest_fitting_state(5.0, 0.8, kLadder), kLadder.max_index());
}

TEST(PerformanceGovernorTest, AlwaysMax) {
  PerformanceGovernor g;
  EXPECT_EQ(g.decide(make_sample(0.0, 0), kLadder), 4u);
  EXPECT_EQ(g.decide(make_sample(1.0, 2), kLadder), 4u);
  EXPECT_EQ(g.name(), "performance");
}

TEST(PowersaveGovernorTest, AlwaysMin) {
  PowersaveGovernor g;
  EXPECT_EQ(g.decide(make_sample(1.0, 4), kLadder), 0u);
}

TEST(UserspaceGovernorTest, FollowsTarget) {
  UserspaceGovernor g{2};
  EXPECT_EQ(g.decide(make_sample(0.5, 0), kLadder), 2u);
  g.set_target(4);
  EXPECT_EQ(g.decide(make_sample(0.5, 0), kLadder), 4u);
  g.set_target(99);  // clamped
  EXPECT_EQ(g.decide(make_sample(0.5, 0), kLadder), 4u);
}

TEST(OndemandGovernorTest, JumpsToMaxAboveThreshold) {
  OndemandGovernor g;
  EXPECT_EQ(g.decide(make_sample(0.85, 0), kLadder), 4u);
  EXPECT_EQ(g.decide(make_sample(1.0, 2), kLadder), 4u);
}

TEST(OndemandGovernorTest, ScalesStraightDown) {
  OndemandGovernor g;
  // util 0.2 at max -> demand 0.2 -> lowest state fits.
  EXPECT_EQ(g.decide(make_sample(0.2, 4), kLadder), 0u);
}

TEST(OndemandGovernorTest, NoMemoryBetweenSamples) {
  OndemandGovernor g;
  EXPECT_EQ(g.decide(make_sample(1.0, 0), kLadder), 4u);
  EXPECT_EQ(g.decide(make_sample(0.1, 4), kLadder), 0u);
  EXPECT_EQ(g.decide(make_sample(1.0, 0), kLadder), 4u);  // oscillates freely
}

TEST(OndemandGovernorTest, DemandInterpretedAtCurrentFrequency) {
  OndemandGovernor g;
  // util 0.7 at the lowest state is only 0.42 absolute -> stays low-ish:
  // fitting state for 0.42 with fill 0.8 is index 0 (0.48 >= 0.42).
  EXPECT_EQ(g.decide(make_sample(0.7, 0), kLadder), 0u);
}

TEST(OndemandGovernorTest, RejectsBadConfig) {
  OndemandConfig bad;
  bad.up_threshold = 1.5;
  EXPECT_THROW(OndemandGovernor{bad}, std::invalid_argument);
  bad = {};
  bad.sampling_period = common::SimTime{};
  EXPECT_THROW(OndemandGovernor{bad}, std::invalid_argument);
}

TEST(StableOndemandGovernorTest, UsesAveragedLoad) {
  StableOndemandGovernor g;
  // Instantaneous spike but calm average: stays put.
  EXPECT_EQ(g.decide(make_sample(1.0, 0, /*avg=*/0.2), kLadder), 0u);
  // Calm instant but high average: scales up to the minimal fitting state
  // (avg 1.0 at ratio 0.6 = 0.6 absolute; 2133's 0.8*0.8 = 0.64 fits).
  EXPECT_EQ(g.decide(make_sample(0.0, 0, /*avg=*/1.0), kLadder), 2u);
}

TEST(StableOndemandGovernorTest, DownscalingNeedsPatience) {
  StableOndemandConfig cfg;
  cfg.down_patience = 3;
  StableOndemandGovernor g{cfg};
  const Sample low = make_sample(0.05, 4, 0.05);
  EXPECT_EQ(g.decide(low, kLadder), 4u);  // streak 1
  EXPECT_EQ(g.decide(low, kLadder), 4u);  // streak 2
  EXPECT_EQ(g.decide(low, kLadder), 3u);  // streak 3: one step down
  EXPECT_EQ(g.decide(make_sample(0.05, 3, 0.05), kLadder), 3u);
}

TEST(StableOndemandGovernorTest, UpscalingIsImmediate) {
  StableOndemandGovernor g;
  // avg 0.9 at ratio 0.6 = 0.54 absolute -> 1867 (0.56 fill) suffices, and
  // the step happens on the very first sample.
  EXPECT_EQ(g.decide(make_sample(0.9, 0, 0.9), kLadder), 1u);
  // A saturated average from a high state goes straight to max.
  EXPECT_EQ(g.decide(make_sample(1.0, 3, 1.0), kLadder), 4u);
}

TEST(StableOndemandGovernorTest, InterruptedStreakResets) {
  StableOndemandConfig cfg;
  cfg.down_patience = 2;
  StableOndemandGovernor g{cfg};
  const Sample low = make_sample(0.05, 4, 0.05);
  const Sample mid = make_sample(0.75, 4, 0.75);
  EXPECT_EQ(g.decide(low, kLadder), 4u);
  EXPECT_EQ(g.decide(mid, kLadder), 4u);  // resets streak
  EXPECT_EQ(g.decide(low, kLadder), 4u);
  EXPECT_EQ(g.decide(low, kLadder), 3u);
}

TEST(StableOndemandGovernorTest, AtMinStays) {
  StableOndemandGovernor g;
  const Sample low = make_sample(0.01, 0, 0.01);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(g.decide(low, kLadder), 0u);
}

TEST(ConservativeGovernorTest, StepsOneLevelAtATime) {
  ConservativeGovernor g;
  EXPECT_EQ(g.decide(make_sample(0.9, 1), kLadder), 2u);
  EXPECT_EQ(g.decide(make_sample(0.1, 2), kLadder), 1u);
  EXPECT_EQ(g.decide(make_sample(0.5, 2), kLadder), 2u);  // in band
}

TEST(ConservativeGovernorTest, SaturatesAtEnds) {
  ConservativeGovernor g;
  EXPECT_EQ(g.decide(make_sample(0.9, 4), kLadder), 4u);
  EXPECT_EQ(g.decide(make_sample(0.1, 0), kLadder), 0u);
}

TEST(ConservativeGovernorTest, RejectsInvertedThresholds) {
  ConservativeConfig bad;
  bad.up_threshold = 0.2;
  bad.down_threshold = 0.5;
  EXPECT_THROW(ConservativeGovernor{bad}, std::invalid_argument);
}

TEST(MakeGovernorTest, AllNames) {
  for (const char* name : {"performance", "powersave", "userspace", "ondemand",
                           "stable-ondemand", "conservative"}) {
    const auto g = make_governor(name);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->name(), name);
  }
  EXPECT_THROW((void)make_governor("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace pas::gov
