// End-to-end governor behaviour on a live host: the stock ondemand governor
// oscillates on a bursty credit-capped workload (Fig. 3), the paper's
// stable governor does not (Fig. 4).
#include <gtest/gtest.h>

#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/web_app.hpp"

namespace pas::gov {
namespace {

using common::seconds;
using common::SimTime;

std::uint64_t run_and_count_transitions(std::unique_ptr<Governor> governor,
                                        double credit, double demand_pct) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_governor(std::move(governor));
  hv::VmConfig v;
  v.credit = credit;
  wl::WebAppConfig wc;
  wc.seed = 21;
  const double rate = wl::WebApp::rate_for_demand(demand_pct, wc.request_cost);
  host.add_vm(v, std::make_unique<wl::WebApp>(wl::LoadProfile::constant(rate), wc));
  host.run_until(seconds(600));
  return host.cpufreq().transition_count();
}

TEST(GovernorStabilityTest, StockOndemandOscillatesNearSaturation) {
  // Fig. 3's phase 2 regime: demand near the host capacity. The queue
  // drains and refills stochastically; with no hysteresis and a 20 ms
  // sample, every dip scales down and every backlog jumps back to max.
  const auto transitions =
      run_and_count_transitions(std::make_unique<OndemandGovernor>(), 90.0, 85.0);
  EXPECT_GT(transitions, 100u);
}

TEST(GovernorStabilityTest, StableGovernorIsCalmNearSaturation) {
  const auto transitions =
      run_and_count_transitions(std::make_unique<StableOndemandGovernor>(), 90.0, 85.0);
  // Fig. 4: a handful of transitions over the whole run.
  EXPECT_LT(transitions, 20u);
}

TEST(GovernorStabilityTest, StableGovernorIsCalmOnLightLoad) {
  const auto transitions =
      run_and_count_transitions(std::make_unique<StableOndemandGovernor>(), 20.0, 20.0);
  EXPECT_LT(transitions, 20u);
}

TEST(GovernorStabilityTest, StableStillSavesEnergy) {
  // The stable governor must actually reach a low frequency on a light
  // load, not buy stability by pinning max.
  hv::HostConfig hc;
  hc.trace_stride = seconds(10);
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_governor(std::make_unique<StableOndemandGovernor>());
  hv::VmConfig v;
  v.credit = 20.0;
  wl::WebAppConfig wc;
  wc.seed = 22;
  host.add_vm(v, std::make_unique<wl::WebApp>(
                     wl::LoadProfile::constant(wl::WebApp::rate_for_demand(10.0, wc.request_cost)),
                     wc));
  host.run_until(seconds(300));
  EXPECT_EQ(host.cpufreq().current_index(), 0u);
}

TEST(GovernorStabilityTest, PerformanceGovernorNeverMoves) {
  const auto transitions =
      run_and_count_transitions(std::make_unique<PerformanceGovernor>(), 20.0, 20.0);
  EXPECT_EQ(transitions, 0u);
}

TEST(GovernorStabilityTest, PowersaveDropsOnceAndStays) {
  const auto transitions =
      run_and_count_transitions(std::make_unique<PowersaveGovernor>(), 20.0, 20.0);
  EXPECT_EQ(transitions, 1u);
}

TEST(GovernorStabilityTest, HighLoadKeepsStableGovernorAtMax) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_governor(std::make_unique<StableOndemandGovernor>());
  hv::VmConfig v;
  v.credit = 100.0;
  wl::WebAppConfig wc;
  wc.seed = 23;
  host.add_vm(v, std::make_unique<wl::WebApp>(
                     wl::LoadProfile::constant(wl::WebApp::rate_for_demand(95.0, wc.request_cost)),
                     wc));
  host.run_until(seconds(120));
  EXPECT_EQ(host.cpufreq().current_index(), host.cpu().ladder().max_index());
}

}  // namespace
}  // namespace pas::gov
