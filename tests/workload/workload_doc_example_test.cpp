// Compiles and executes the workload-extension example from
// docs/ARCHITECTURE.md ("A new workload") — the ROADMAP "doc-checked
// examples" item. The code inside the DOC SNIPPET markers mirrors the
// fenced block in the doc; if you edit one, edit both (this test is what
// keeps the doc honest). The assertions then prove the example really
// upholds the contract the doc claims it demonstrates: byte-identical
// fast-path and slow-stepped runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/units.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/workload.hpp"

namespace pas {
namespace {

// --- DOC SNIPPET (docs/ARCHITECTURE.md, "A new workload") ---
/// A guest that wakes every `period`, performs `burst` CPU work, and
/// sleeps again. The two contract points every workload must get right:
/// advance_to is a pure function of the crossed instants (coarsened call
/// patterns deliver identically), and next_transition_time is an honest
/// lower bound (here: exact) on the next self-transition.
class Heartbeat final : public wl::Workload {
 public:
  Heartbeat(common::SimTime period, common::Work burst)
      : period_(period), burst_(burst), next_beat_(period) {}

  void advance_to(common::SimTime now) override {
    while (next_beat_ <= now) {  // deliver every beat crossed, timestamps exact
      pending_ += burst_;
      next_beat_ += period_;
    }
  }
  [[nodiscard]] bool runnable() const override { return pending_ > common::Work{}; }
  common::Work consume(common::SimTime /*now*/, common::Work budget) override {
    const common::Work done = std::min(budget, pending_);
    pending_ -= done;  // draining to zero blocks the VM; the host sees it
    return done;
  }
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime /*now*/) override {
    return next_beat_;  // the host may skip idle time up to the next beat
  }

 private:
  common::SimTime period_;
  common::Work burst_;
  common::SimTime next_beat_;
  common::Work pending_{};
};
// --- END DOC SNIPPET ---

std::unique_ptr<hv::Host> build_host(bool fast_path) {
  hv::HostConfig hc;
  hc.event_driven_fast_path = fast_path;
  hc.trace_stride = common::seconds(1);
  auto host = std::make_unique<hv::Host>(hc, std::make_unique<sched::CreditScheduler>());
  hv::VmConfig vc;
  vc.name = "beat";
  vc.credit = 50.0;
  host->add_vm(vc, std::make_unique<Heartbeat>(common::seconds(5),
                                               common::mf_seconds(0.25)));
  return host;
}

TEST(WorkloadDocExampleTest, RunsIdenticalFastAndSlow) {
  auto slow = build_host(false);
  auto fast = build_host(true);
  slow->run_until(common::seconds(100));
  fast->run_until(common::seconds(100));

  ASSERT_EQ(slow->trace().size(), fast->trace().size());
  for (std::size_t i = 0; i < slow->trace().size(); ++i) {
    const auto a = slow->trace().sample(i);
    const auto b = fast->trace().sample(i);
    ASSERT_EQ(a.t, b.t) << i;
    ASSERT_EQ(a.vm_global_pct[0], b.vm_global_pct[0]) << i;
    ASSERT_EQ(a.vm_absolute_pct[0], b.vm_absolute_pct[0]) << i;
  }
  ASSERT_EQ(slow->idle_time(), fast->idle_time());
  ASSERT_EQ(slow->vm(0).total_work, fast->vm(0).total_work);

  // 19 beats crossed in 100 s (t = 5..95), 0.25 mf-s each, all served.
  EXPECT_DOUBLE_EQ(slow->vm(0).total_work.mf_seconds(), 19 * 0.25);
  // The hint worked: the host really skipped the sleep intervals.
  EXPECT_GT(fast->idle_time().sec(), 90.0);
}

TEST(WorkloadDocExampleTest, CoarsenedAdvanceDeliversIdentically) {
  Heartbeat quantum_by_quantum{common::seconds(3), common::mf_seconds(1.0)};
  Heartbeat coarsened{common::seconds(3), common::mf_seconds(1.0)};
  for (int s = 1; s <= 20; ++s) quantum_by_quantum.advance_to(common::seconds(s));
  coarsened.advance_to(common::seconds(20));
  EXPECT_EQ(quantum_by_quantum.runnable(), coarsened.runnable());
  EXPECT_EQ(quantum_by_quantum.next_transition_time(common::seconds(20)),
            coarsened.next_transition_time(common::seconds(20)));
  EXPECT_DOUBLE_EQ(quantum_by_quantum.consume(common::seconds(20), common::mf_seconds(99)).mfus(),
                   coarsened.consume(common::seconds(20), common::mf_seconds(99)).mfus());
}

}  // namespace
}  // namespace pas
