#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

namespace pas::wl {
namespace {

using common::mf_usec;
using common::seconds;
using common::Work;

TEST(BusyLoopTest, AlwaysRunnableAndConsumesAll) {
  BusyLoop w;
  w.advance_to(seconds(1));
  EXPECT_TRUE(w.runnable());
  EXPECT_EQ(w.consume(seconds(1), mf_usec(500)), mf_usec(500));
  EXPECT_EQ(w.total_consumed(), mf_usec(500));
  EXPECT_FALSE(w.finished());
}

TEST(IdleGuestTest, NeverRunnable) {
  IdleGuest w;
  w.advance_to(seconds(100));
  EXPECT_FALSE(w.runnable());
  EXPECT_EQ(w.consume(seconds(100), mf_usec(500)), Work{});
}

TEST(GatedBusyLoopTest, FollowsGateProfile) {
  GatedBusyLoop w{LoadProfile::pulse(seconds(10), seconds(20), 1.0)};
  w.advance_to(seconds(5));
  EXPECT_FALSE(w.runnable());
  w.advance_to(seconds(10));
  EXPECT_TRUE(w.runnable());
  EXPECT_EQ(w.consume(seconds(10), mf_usec(123)), mf_usec(123));
  w.advance_to(seconds(20));
  EXPECT_FALSE(w.runnable());
  EXPECT_EQ(w.total_consumed(), mf_usec(123));
}

TEST(GatedBusyLoopTest, ReactivatesOnMultiStepProfile) {
  GatedBusyLoop w{LoadProfile{{{seconds(1), 1.0},
                               {seconds(2), 0.0},
                               {seconds(3), 1.0},
                               {seconds(4), 0.0}}}};
  w.advance_to(seconds(1));
  EXPECT_TRUE(w.runnable());
  w.advance_to(seconds(2));
  EXPECT_FALSE(w.runnable());
  w.advance_to(seconds(3));
  EXPECT_TRUE(w.runnable());
  w.advance_to(seconds(5));
  EXPECT_FALSE(w.runnable());
}

}  // namespace
}  // namespace pas::wl
