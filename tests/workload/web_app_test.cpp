#include "workload/web_app.hpp"

#include <gtest/gtest.h>

namespace pas::wl {
namespace {

using common::mf_usec;
using common::msec;
using common::seconds;
using common::SimTime;
using common::Work;

WebAppConfig deterministic_config() {
  WebAppConfig c;
  c.poisson = false;
  c.cost_jitter = 0.0;
  c.request_cost = mf_usec(10'000);  // 10 ms per request
  return c;
}

TEST(WebAppTest, RateForDemand) {
  // 20 % of the processor with 10 ms requests = 20 requests/second.
  EXPECT_DOUBLE_EQ(WebApp::rate_for_demand(20.0, mf_usec(10'000)), 20.0);
  EXPECT_DOUBLE_EQ(WebApp::rate_for_demand(100.0, mf_usec(10'000)), 100.0);
  EXPECT_DOUBLE_EQ(WebApp::rate_for_demand(50.0, mf_usec(5'000)), 100.0);
}

TEST(WebAppTest, DeterministicArrivalCount) {
  WebApp app{LoadProfile::constant(10.0), deterministic_config()};
  app.advance_to(seconds(10));
  // 10 req/s for 10 s; off-by-one at the boundary is acceptable.
  EXPECT_NEAR(static_cast<double>(app.arrived()), 100.0, 1.0);
}

TEST(WebAppTest, PoissonArrivalRateConverges) {
  WebAppConfig c = deterministic_config();
  c.poisson = true;
  c.seed = 99;
  WebApp app{LoadProfile::constant(50.0), c};
  app.advance_to(seconds(200));
  EXPECT_NEAR(static_cast<double>(app.arrived()), 10'000.0, 300.0);
}

TEST(WebAppTest, NotRunnableWithoutArrivals) {
  WebApp app{LoadProfile::pulse(seconds(10), seconds(20), 10.0), deterministic_config()};
  app.advance_to(seconds(5));
  EXPECT_FALSE(app.runnable());
  app.advance_to(seconds(11));
  EXPECT_TRUE(app.runnable());
}

TEST(WebAppTest, ArrivalsStopAfterPulse) {
  WebApp app{LoadProfile::pulse(seconds(1), seconds(2), 10.0), deterministic_config()};
  app.advance_to(seconds(100));
  const auto arrived = app.arrived();
  EXPECT_NEAR(static_cast<double>(arrived), 10.0, 1.0);
  app.advance_to(seconds(200));
  EXPECT_EQ(app.arrived(), arrived);
}

TEST(WebAppTest, ConsumeCompletesRequests) {
  WebApp app{LoadProfile::constant(10.0), deterministic_config()};
  app.advance_to(seconds(1));  // ~10 requests queued
  const auto queued = app.queue_depth();
  ASSERT_GT(queued, 0u);
  const Work done = app.consume(seconds(1), mf_usec(25'000));
  EXPECT_DOUBLE_EQ(done.mfus(), 25'000.0);  // 2.5 requests' worth
  EXPECT_EQ(app.completed(), 2u);
  EXPECT_EQ(app.queue_depth(), queued - 2);  // half-done head still queued
}

TEST(WebAppTest, ConsumeReturnsLessWhenQueueDrains) {
  WebApp app{LoadProfile::constant(1.0), deterministic_config()};
  app.advance_to(seconds(1));  // exactly 1 request
  const Work done = app.consume(seconds(1), mf_usec(100'000));
  EXPECT_NEAR(done.mfus(), 10'000.0, 1.0);
  EXPECT_FALSE(app.runnable());
}

TEST(WebAppTest, LatencyMeasured) {
  WebApp app{LoadProfile::constant(10.0), deterministic_config()};
  app.advance_to(seconds(2));
  (void)app.consume(seconds(2), mf_usec(1'000'000));
  ASSERT_GT(app.latency_sec().count(), 0u);
  // The oldest request waited ~2 s; the mean should be around 1 s.
  EXPECT_GT(app.latency_sec().mean(), 0.3);
  EXPECT_LT(app.latency_sec().mean(), 2.5);
}

TEST(WebAppTest, QueueCapacityDrops) {
  WebAppConfig c = deterministic_config();
  c.queue_capacity = 5;
  WebApp app{LoadProfile::constant(100.0), c};
  app.advance_to(seconds(1));  // 100 arrivals into a 5-slot queue
  EXPECT_EQ(app.queue_depth(), 5u);
  EXPECT_GT(app.dropped(), 80u);
  EXPECT_EQ(app.arrived(), app.dropped() + 5u);
}

TEST(WebAppTest, DemandAccounting) {
  WebApp app{LoadProfile::constant(10.0), deterministic_config()};
  app.advance_to(seconds(10));
  EXPECT_NEAR(app.demand_generated().mfus(), 100.0 * 10'000.0, 20'000.0);
  EXPECT_DOUBLE_EQ(app.work_served().mfus(), 0.0);
  (void)app.consume(seconds(10), mf_usec(50'000));
  EXPECT_DOUBLE_EQ(app.work_served().mfus(), 50'000.0);
}

TEST(WebAppTest, CostJitterPreservesMeanDemand) {
  WebAppConfig c;
  c.poisson = false;
  c.cost_jitter = 0.2;
  c.seed = 5;
  WebApp app{LoadProfile::constant(100.0), c};
  app.advance_to(seconds(100));
  // 10k requests at mean 10 ms -> ~100 mf-seconds of demand.
  EXPECT_NEAR(app.demand_generated().mf_seconds(), 100.0, 5.0);
}

TEST(WebAppTest, RateChangeMidRunRespected) {
  WebApp app{LoadProfile{{{SimTime{}, 10.0}, {seconds(10), 50.0}}}, deterministic_config()};
  app.advance_to(seconds(10));
  const auto phase1 = app.arrived();
  EXPECT_NEAR(static_cast<double>(phase1), 100.0, 2.0);
  app.advance_to(seconds(20));
  EXPECT_NEAR(static_cast<double>(app.arrived() - phase1), 500.0, 3.0);
}

}  // namespace
}  // namespace pas::wl
