#include "workload/trace_replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"

namespace pas::wl {
namespace {

using common::mf_usec;
using common::seconds;
using common::SimTime;
using common::usec;
using common::Work;

std::vector<TracePoint> ramp_points() {
  return {{seconds(0), 20.0, 0.0},
          {seconds(10), 50.0, 0.0},
          {seconds(20), 0.0, 0.0},
          {seconds(30), 10.0, 0.0},
          {seconds(40), 0.0, 0.0}};
}

// --- Trace validation -----------------------------------------------------

TEST(TraceTest, ValidatesShape) {
  EXPECT_NO_THROW(Trace{ramp_points()});
  EXPECT_THROW(Trace{std::vector<TracePoint>{}}, std::invalid_argument);
  EXPECT_THROW(Trace({{seconds(0), 5.0, 0.0}}), std::invalid_argument);  // final != 0
  EXPECT_NO_THROW(Trace({{seconds(0), 0.0, 0.0}}));  // single idle point is fine
  EXPECT_THROW(Trace({{seconds(10), 5.0, 0.0}, {seconds(10), 0.0, 0.0}}),
               std::invalid_argument);  // non-increasing
  EXPECT_THROW(Trace({{seconds(10), 5.0, 0.0}, {seconds(5), 0.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(Trace({{usec(-1), 0.0, 0.0}}), std::invalid_argument);  // negative t
  EXPECT_THROW(Trace({{seconds(0), -1.0, 0.0}, {seconds(1), 0.0, 0.0}}),
               std::invalid_argument);  // negative demand
  EXPECT_THROW(Trace({{seconds(0), 1.0, -4.0}, {seconds(1), 0.0, 0.0}}),
               std::invalid_argument);  // negative memory
}

TEST(TraceTest, StepLookupAndIntervalWork) {
  const Trace t{ramp_points()};
  EXPECT_DOUBLE_EQ(t.demand_pct_at(seconds(0)), 20.0);
  EXPECT_DOUBLE_EQ(t.demand_pct_at(seconds(9)), 20.0);
  EXPECT_DOUBLE_EQ(t.demand_pct_at(seconds(10)), 50.0);
  EXPECT_DOUBLE_EQ(t.demand_pct_at(seconds(25)), 0.0);
  EXPECT_DOUBLE_EQ(t.demand_pct_at(seconds(99)), 0.0);
  // 20 % of 10 s = 2 max-frequency seconds.
  EXPECT_DOUBLE_EQ(t.interval_work(0).mf_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.interval_work(1).mf_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(t.interval_work(2).mf_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.interval_work(4).mf_seconds(), 0.0);  // last point
  EXPECT_DOUBLE_EQ(t.total_work().mf_seconds(), 8.0);
  EXPECT_DOUBLE_EQ(t.peak_demand_pct(), 50.0);
  EXPECT_EQ(t.end_time(), seconds(40));
}

// --- Parsing --------------------------------------------------------------

TEST(TraceTest, ParsesCsvWithOptionalMemoryColumn) {
  const Trace t = Trace::parse("t_sec,demand_pct,memory_mb\n0,25,512\n60,0,512\n");
  ASSERT_EQ(t.points().size(), 2u);
  EXPECT_TRUE(t.has_memory());
  EXPECT_DOUBLE_EQ(t.peak_memory_mb(), 512.0);
  EXPECT_EQ(t.points()[1].t, seconds(60));

  const Trace bare = Trace::parse("t_sec,demand_pct\n0,25\n60,0\n");
  EXPECT_FALSE(bare.has_memory());
}

TEST(TraceTest, ParseToleratesCrlfQuotesAndMissingTrailingNewline) {
  const Trace t = Trace::parse("t_sec,demand_pct\r\n\"0\",\"12.5\"\r\n10,0");
  ASSERT_EQ(t.points().size(), 2u);
  EXPECT_DOUBLE_EQ(t.points()[0].demand_pct, 12.5);
}

TEST(TraceTest, ParseErrorsCarryOriginAndLine) {
  try {
    (void)Trace::parse("t_sec,demand_pct\n0,5\n0,0\n", "bad.csv");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("bad.csv:3"), std::string::npos) << e.what();
  }
  try {
    (void)Trace::parse("t_sec,demand_pct\n1,nope\n", "bad2.csv");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("bad2.csv:2"), std::string::npos) << e.what();
  }
  // Missing columns, no data rows, ragged rows: all rejected loudly.
  EXPECT_THROW((void)Trace::parse("time,load\n0,1\n"), std::runtime_error);
  EXPECT_THROW((void)Trace::parse("t_sec,demand_pct\n"), std::runtime_error);
  EXPECT_THROW((void)Trace::parse("t_sec,demand_pct\n0\n"), std::runtime_error);
  // Final demand != 0 is a format error too.
  EXPECT_THROW((void)Trace::parse("t_sec,demand_pct\n0,5\n"), std::runtime_error);
}

TEST(TraceTest, SaveLoadRoundTripsExactly) {
  // Points on the serialization grid (integer microseconds, micro-percent
  // demands) survive save -> load bit for bit — the property the
  // record -> replay loop closure rests on.
  const Trace t{{{usec(0), 12.125, 0.0},
                 {usec(1'500'000), quantize_demand_pct(33.3333337), 0.0},
                 {usec(2'000'001), 0.0, 0.0}},
                "roundtrip"};
  const std::string path = ::testing::TempDir() + "/pas_trace_roundtrip.csv";
  t.save(path);
  const Trace back = Trace::load(path);
  ASSERT_EQ(back.points().size(), t.points().size());
  for (std::size_t i = 0; i < t.points().size(); ++i) {
    EXPECT_EQ(back.points()[i].t, t.points()[i].t) << i;
    EXPECT_EQ(back.points()[i].demand_pct, t.points()[i].demand_pct) << i;
  }
  EXPECT_EQ(back.to_csv(), t.to_csv());
  std::remove(path.c_str());
}

TEST(TraceTest, LoadDirSortsByFilenameAndRejectsEmpty) {
  const std::string dir = ::testing::TempDir() + "/pas_trace_dir";
  std::filesystem::create_directory(dir);
  Trace({{seconds(0), 5.0, 0.0}, {seconds(10), 0.0, 0.0}}, "b").save(dir + "/b.csv");
  Trace({{seconds(0), 7.0, 0.0}, {seconds(10), 0.0, 0.0}}, "a").save(dir + "/a.csv");
  const auto traces = Trace::load_dir(dir);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].name(), "a");
  EXPECT_EQ(traces[1].name(), "b");
  EXPECT_DOUBLE_EQ(traces[0].points()[0].demand_pct, 7.0);
  std::filesystem::remove_all(dir);
  EXPECT_THROW((void)Trace::load_dir(dir), std::runtime_error);
}

// --- TraceReplay semantics ------------------------------------------------

TEST(TraceReplayTest, DeliversIntervalBatchesAndDrains) {
  TraceReplay w{Trace{ramp_points()}};
  EXPECT_FALSE(w.runnable());
  w.advance_to(seconds(0));
  EXPECT_TRUE(w.runnable());
  EXPECT_DOUBLE_EQ(w.pending().mf_seconds(), 2.0);

  // Serve half, then the rest: consume is bounded by pending.
  EXPECT_DOUBLE_EQ(w.consume(seconds(1), common::mf_seconds(1.0)).mf_seconds(), 1.0);
  EXPECT_TRUE(w.runnable());
  EXPECT_DOUBLE_EQ(w.consume(seconds(2), common::mf_seconds(9.0)).mf_seconds(), 1.0);
  EXPECT_FALSE(w.runnable());
  EXPECT_DOUBLE_EQ(w.consume(seconds(3), common::mf_seconds(1.0)).mfus(), 0.0);

  // Crossing several points at once delivers every batch (coarsening).
  w.advance_to(seconds(35));
  EXPECT_DOUBLE_EQ(w.pending().mf_seconds(), 5.0 + 1.0);
  EXPECT_FALSE(w.finished());
  w.advance_to(seconds(40));
  EXPECT_DOUBLE_EQ(w.consume(seconds(40), common::mf_seconds(10.0)).mf_seconds(), 6.0);
  EXPECT_TRUE(w.fully_served());
  EXPECT_TRUE(w.finished());
  EXPECT_DOUBLE_EQ(w.total_consumed().mf_seconds(), 8.0);
  EXPECT_DOUBLE_EQ(w.demand_delivered().mf_seconds(), 8.0);
}

TEST(TraceReplayTest, TransitionHintSkipsZeroDemandGaps) {
  TraceReplay w{Trace{ramp_points()}};
  EXPECT_EQ(w.next_transition_time(usec(0)), seconds(0));
  w.advance_to(seconds(0));
  // Next work-delivering point is t=10 (50 %).
  EXPECT_EQ(w.next_transition_time(seconds(0)), seconds(10));
  w.advance_to(seconds(10));
  // The t=20 point opens a zero-demand gap: the next delivery is t=30.
  EXPECT_EQ(w.next_transition_time(seconds(10)), seconds(30));
  w.advance_to(seconds(30));
  EXPECT_EQ(w.next_transition_time(seconds(30)), kNoTransition);
}

TEST(TraceReplayTest, UnservedDemandAccumulatesAsBacklog) {
  TraceReplay w{Trace{ramp_points()}};
  w.advance_to(seconds(40));  // nothing ever served
  EXPECT_TRUE(w.runnable());
  EXPECT_FALSE(w.fully_served());
  EXPECT_FALSE(w.finished());
  EXPECT_DOUBLE_EQ(w.pending().mf_seconds(), 8.0);
}

// --- On a host: fast path byte-identity (contract 1) ----------------------

hv::HostConfig replay_host_config(bool fast) {
  hv::HostConfig hc;
  hc.monitor_window = seconds(1);
  hc.trace_stride = seconds(1);
  hc.event_driven_fast_path = fast;
  return hc;
}

std::unique_ptr<hv::Host> build_replay_host(bool fast, const Trace& trace) {
  auto host = std::make_unique<hv::Host>(replay_host_config(fast),
                                         std::make_unique<sched::CreditScheduler>());
  hv::VmConfig vc;
  vc.name = "replay";
  vc.credit = 95.0;
  host->add_vm(vc, std::make_unique<TraceReplay>(trace));
  return host;
}

TEST(TraceReplayTest, HostRunsIdenticalFastAndSlow) {
  const Trace trace{ramp_points()};
  auto slow = build_replay_host(false, trace);
  auto fast = build_replay_host(true, trace);
  slow->run_until(seconds(41));
  fast->run_until(seconds(41));

  const auto a = slow->trace().samples();
  const auto b = fast->trace().samples();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].t, b[i].t) << i;
    ASSERT_EQ(a[i].vm_absolute_pct[0], b[i].vm_absolute_pct[0]) << i;
    ASSERT_EQ(a[i].vm_global_pct[0], b[i].vm_global_pct[0]) << i;
  }
  ASSERT_EQ(slow->idle_time(), fast->idle_time());
  ASSERT_EQ(slow->vm(0).total_busy, fast->vm(0).total_busy);
  ASSERT_EQ(slow->vm(0).total_work, fast->vm(0).total_work);
  // The fast path actually skipped the idle tail (vacuity guard: the trace
  // leaves the host idle more than half the run).
  EXPECT_GT(slow->idle_time().sec(), 20.0);
  // With 95 % credit against a peak demand of 50 %, the backlog drains.
  const auto& replay = dynamic_cast<const TraceReplay&>(fast->workload(0));
  EXPECT_TRUE(replay.fully_served());
  EXPECT_EQ(replay.total_consumed(), replay.demand_delivered());
}

}  // namespace
}  // namespace pas::wl
