#include "workload/load_profile.hpp"

#include <gtest/gtest.h>

namespace pas::wl {
namespace {

using common::seconds;
using common::SimTime;

TEST(LoadProfileTest, Constant) {
  const auto p = LoadProfile::constant(5.0);
  EXPECT_DOUBLE_EQ(p.at(SimTime{}), 5.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(1'000'000)), 5.0);
}

TEST(LoadProfileTest, PulseShape) {
  const auto p = LoadProfile::pulse(seconds(10), seconds(20), 3.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(0)), 0.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(9)), 0.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(10)), 3.0);  // inclusive start
  EXPECT_DOUBLE_EQ(p.at(seconds(19)), 3.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(20)), 0.0);  // exclusive end
  EXPECT_DOUBLE_EQ(p.at(seconds(100)), 0.0);
}

TEST(LoadProfileTest, MultiStep) {
  const LoadProfile p{{{seconds(1), 1.0}, {seconds(2), 2.0}, {seconds(3), 0.5}}};
  EXPECT_DOUBLE_EQ(p.at(SimTime{}), 0.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(1)), 1.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(p.at(seconds(5)), 0.5);
}

TEST(LoadProfileTest, NextChangeAfter) {
  const auto p = LoadProfile::pulse(seconds(10), seconds(20), 1.0);
  const SimTime horizon = seconds(100);
  EXPECT_EQ(p.next_change_after(SimTime{}, horizon), seconds(10));
  EXPECT_EQ(p.next_change_after(seconds(10), horizon), seconds(20));
  EXPECT_EQ(p.next_change_after(seconds(20), horizon), horizon);
}

TEST(LoadProfileTest, NextChangeClampedToHorizon) {
  const auto p = LoadProfile::pulse(seconds(10), seconds(20), 1.0);
  EXPECT_EQ(p.next_change_after(SimTime{}, seconds(5)), seconds(5));
}

TEST(LoadProfileTest, RejectsUnorderedSteps) {
  EXPECT_THROW(LoadProfile({{seconds(2), 1.0}, {seconds(1), 2.0}}), std::invalid_argument);
  EXPECT_THROW(LoadProfile({{seconds(1), 1.0}, {seconds(1), 2.0}}), std::invalid_argument);
}

TEST(LoadProfileTest, RejectsNegativeValues) {
  EXPECT_THROW(LoadProfile({{seconds(1), -1.0}}), std::invalid_argument);
}

TEST(LoadProfileTest, RejectsEmptyPulse) {
  EXPECT_THROW(LoadProfile::pulse(seconds(5), seconds(5), 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace pas::wl
