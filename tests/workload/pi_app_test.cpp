#include "workload/pi_app.hpp"

#include <gtest/gtest.h>

namespace pas::wl {
namespace {

using common::mf_usec;
using common::msec;
using common::Work;

TEST(PiAppTest, NotRunnableBeforeStart) {
  PiApp app{mf_usec(100), msec(10)};
  app.advance_to(msec(5));
  EXPECT_FALSE(app.runnable());
  app.advance_to(msec(10));
  EXPECT_TRUE(app.runnable());
}

TEST(PiAppTest, ConsumesUpToRemaining) {
  PiApp app{mf_usec(100)};
  app.advance_to(common::SimTime{});
  EXPECT_EQ(app.consume(common::SimTime{}, mf_usec(60)), mf_usec(60));
  EXPECT_EQ(app.remaining(), mf_usec(40));
  EXPECT_EQ(app.consume(common::SimTime{}, mf_usec(60)), mf_usec(40));
  EXPECT_TRUE(app.finished());
  EXPECT_FALSE(app.runnable());
}

TEST(PiAppTest, RecordsCompletionTime) {
  PiApp app{mf_usec(100)};
  app.advance_to(msec(1));
  (void)app.consume(msec(1), mf_usec(50));
  EXPECT_FALSE(app.completion_time().has_value());
  (void)app.consume(msec(2), mf_usec(50));
  ASSERT_TRUE(app.completion_time().has_value());
  EXPECT_EQ(*app.completion_time(), msec(2));
}

TEST(PiAppTest, ConsumeBeforeStartDoesNothing) {
  PiApp app{mf_usec(100), msec(10)};
  app.advance_to(msec(5));
  EXPECT_EQ(app.consume(msec(5), mf_usec(50)), Work{});
  EXPECT_EQ(app.remaining(), mf_usec(100));
}

TEST(PiAppTest, ConsumeAfterFinishReturnsZero) {
  PiApp app{mf_usec(10)};
  app.advance_to(common::SimTime{});
  (void)app.consume(common::SimTime{}, mf_usec(10));
  EXPECT_EQ(app.consume(msec(1), mf_usec(10)), Work{});
}

TEST(PiAppTest, CompletionTimeStableAfterFinish) {
  PiApp app{mf_usec(10)};
  app.advance_to(common::SimTime{});
  (void)app.consume(msec(3), mf_usec(10));
  (void)app.consume(msec(9), mf_usec(10));
  EXPECT_EQ(*app.completion_time(), msec(3));
}

TEST(PiAppTest, TotalAccessor) {
  PiApp app{mf_usec(123)};
  EXPECT_EQ(app.total(), mf_usec(123));
}

}  // namespace
}  // namespace pas::wl
