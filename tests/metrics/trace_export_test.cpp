// The exporter half of the record→replay pipeline: recorded rows become a
// replayable step-function demand trace, and a recorded host run exported,
// replayed and re-exported reproduces the trace byte for byte (the
// single-host version of the round-trip property; the cluster-scale one
// lives in tests/cluster/cluster_trace_test.cpp).
#include "metrics/trace_export.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/load_profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_replay.hpp"
#include "workload/web_app.hpp"

namespace pas::metrics {
namespace {

using common::seconds;
using common::SimTime;

// Recorder with two VM columns sampled at a fixed stride.
TraceRecorder make_recorder(const std::vector<SimTime>& times,
                            const std::vector<std::vector<double>>& vm_absolute) {
  TraceRecorder rec{vm_absolute.empty() ? 0 : vm_absolute[0].size()};
  for (std::size_t r = 0; r < times.size(); ++r) {
    std::vector<double> zeros(rec.vm_count(), 0.0);
    rec.append(times[r], 2000.0, 0.0, 0.0, zeros, vm_absolute[r], zeros, zeros);
  }
  return rec;
}

TEST(TraceExportTest, RowsBecomeStepsOneStrideBack) {
  const auto rec = make_recorder({seconds(10), seconds(20), seconds(30)},
                                 {{12.5, 0.0}, {40.0, 1.0}, {0.0, 2.0}});
  const wl::Trace t = vm_demand_trace(rec, 0, "vm0");
  ASSERT_EQ(t.points().size(), 4u);
  EXPECT_EQ(t.points()[0].t, seconds(0));
  EXPECT_DOUBLE_EQ(t.points()[0].demand_pct, 12.5);
  EXPECT_EQ(t.points()[1].t, seconds(10));
  EXPECT_DOUBLE_EQ(t.points()[1].demand_pct, 40.0);
  EXPECT_EQ(t.points()[3].t, seconds(30));
  EXPECT_DOUBLE_EQ(t.points()[3].demand_pct, 0.0);

  const wl::Trace u = vm_demand_trace(rec, 1, "vm1");
  EXPECT_DOUBLE_EQ(u.points()[1].demand_pct, 1.0);
  // Column 1 ends with demand 2.0 in its last window; the appended final
  // point still closes the trace at zero.
  EXPECT_DOUBLE_EQ(u.points()[2].demand_pct, 2.0);
  EXPECT_DOUBLE_EQ(u.points()[3].demand_pct, 0.0);
}

TEST(TraceExportTest, RejectsEmptyUnalignedAndUnevenRows) {
  const TraceRecorder empty{1};
  EXPECT_THROW((void)vm_demand_trace(empty, 0), std::invalid_argument);

  const auto rec = make_recorder({seconds(10)}, {{1.0}});
  EXPECT_THROW((void)vm_demand_trace(rec, 5), std::invalid_argument);

  // First row earlier than one stride: windows would start before t = 0.
  const auto skew = make_recorder({seconds(5), seconds(15), seconds(25)},
                                  {{1.0}, {1.0}, {0.0}});
  EXPECT_THROW((void)vm_demand_trace(skew, 0), std::invalid_argument);

  const auto uneven = make_recorder({seconds(10), seconds(20), seconds(35)},
                                    {{1.0}, {1.0}, {0.0}});
  EXPECT_THROW((void)vm_demand_trace(uneven, 0), std::invalid_argument);
}

TEST(TraceExportTest, QuantizesToTheSerializationGrid) {
  const double noisy = 33.0 + 1e-9;  // below the 1e-6 grid
  const auto rec = make_recorder({seconds(10), seconds(20)}, {{noisy}, {0.0}});
  const wl::Trace t = vm_demand_trace(rec, 0);
  EXPECT_DOUBLE_EQ(t.points()[0].demand_pct, 33.0);
}

// --- the round trip, single host ------------------------------------------
//
// Record a synthetic run (web app + gated hog on one host), export each
// VM's demand trace, replay each trace alone on a fresh host with capacity
// headroom, re-export — the CSV must come back byte-identical: demand in
// equals demand out, exactly.

hv::HostConfig recording_config() {
  hv::HostConfig hc;
  hc.monitor_window = seconds(1);
  hc.trace_stride = seconds(1);  // exporter precondition: stride == window
  return hc;
}

TEST(TraceExportTest, RecordReplayReExportIsByteIdentical) {
  const SimTime horizon = seconds(120);

  auto recorded = std::make_unique<hv::Host>(recording_config(),
                                             std::make_unique<sched::CreditScheduler>());
  {
    hv::VmConfig web;
    web.name = "web";
    web.credit = 30.0;
    wl::WebAppConfig wc;
    wc.seed = 42;
    recorded->add_vm(web, std::make_unique<wl::WebApp>(
                              wl::LoadProfile::pulse(
                                  seconds(10), seconds(70),
                                  wl::WebApp::rate_for_demand(20.0, wc.request_cost)),
                              wc));
    hv::VmConfig hog;
    hog.name = "hog";
    hog.credit = 25.0;
    recorded->add_vm(hog, std::make_unique<wl::GatedBusyLoop>(
                              wl::LoadProfile::pulse(seconds(30), seconds(90), 1.0)));
  }
  recorded->run_until(horizon);
  ASSERT_GT(recorded->trace().size(), 100u);

  for (common::VmId vm = 0; vm < recorded->trace().vm_count(); ++vm) {
    const wl::Trace exported = vm_demand_trace(recorded->trace(), vm, "rt");

    auto replay = std::make_unique<hv::Host>(recording_config(),
                                             std::make_unique<sched::CreditScheduler>());
    hv::VmConfig vc;
    vc.name = "replay";
    vc.credit = 95.0;  // headroom: every window's demand must be served
    replay->add_vm(vc, std::make_unique<wl::TraceReplay>(exported));
    replay->run_until(horizon);

    const auto& w = dynamic_cast<const wl::TraceReplay&>(replay->workload(0));
    EXPECT_TRUE(w.fully_served()) << "vm " << vm;

    const wl::Trace re_exported = vm_demand_trace(replay->trace(), 0, "rt");
    EXPECT_EQ(re_exported.to_csv(), exported.to_csv()) << "vm " << vm;
  }
}

}  // namespace
}  // namespace pas::metrics
