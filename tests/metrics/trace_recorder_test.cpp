#include "metrics/trace_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pas::metrics {
namespace {

TraceSample make_sample(double t_sec, double freq, double v0, double v1) {
  TraceSample s;
  s.t = common::seconds(static_cast<std::int64_t>(t_sec));
  s.freq_mhz = freq;
  s.global_load_pct = v0 + v1;
  s.absolute_load_pct = (v0 + v1) * freq / 2667.0;
  s.vm_global_pct = {v0, v1};
  s.vm_absolute_pct = {v0 * freq / 2667.0, v1 * freq / 2667.0};
  s.vm_credit_pct = {20.0, 70.0};
  s.vm_saturated = {1.0, 0.0};
  return s;
}

TEST(TraceRecorderTest, SeriesExtraction) {
  TraceRecorder tr{2};
  tr.add(make_sample(10, 1600, 20, 0));
  tr.add(make_sample(20, 2667, 20, 70));
  EXPECT_EQ(tr.samples().size(), 2u);
  EXPECT_EQ(tr.series_freq(), (std::vector<double>{1600, 2667}));
  EXPECT_EQ(tr.series_vm_global(0), (std::vector<double>{20, 20}));
  EXPECT_EQ(tr.series_vm_global(1), (std::vector<double>{0, 70}));
  EXPECT_EQ(tr.series_time_sec(), (std::vector<double>{10, 20}));
  EXPECT_EQ(tr.series_vm_credit(0), (std::vector<double>{20, 20}));
}

TEST(TraceRecorderTest, EmptyTrace) {
  TraceRecorder tr{1};
  EXPECT_TRUE(tr.empty());
  EXPECT_TRUE(tr.series_freq().empty());
}

TEST(TraceRecorderTest, WriteCsv) {
  TraceRecorder tr{2};
  tr.add(make_sample(10, 1600, 20, 0));
  const std::string path = ::testing::TempDir() + "/pas_trace_test.csv";
  tr.write_csv(path);
  std::ifstream in{path};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "t_sec,freq_mhz,global_pct,absolute_pct,vm0_global_pct,vm1_global_pct,"
            "vm0_absolute_pct,vm1_absolute_pct,vm0_credit_pct,vm1_credit_pct");
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("10,1600"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, AbsoluteSeries) {
  TraceRecorder tr{2};
  tr.add(make_sample(10, 1600, 20, 0));
  const auto abs0 = tr.series_vm_absolute(0);
  ASSERT_EQ(abs0.size(), 1u);
  EXPECT_NEAR(abs0[0], 20.0 * 1600 / 2667, 1e-9);
}

}  // namespace
}  // namespace pas::metrics
