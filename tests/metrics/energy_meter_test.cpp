#include "metrics/energy_meter.hpp"

#include <gtest/gtest.h>

namespace pas::metrics {
namespace {

using common::msec;
using common::seconds;
using common::SimTime;

TEST(EnergyMeterTest, IdleInterval) {
  EnergyMeter m{cpu::PowerModel{40.0, 100.0, 3.0}};
  m.record(seconds(10), 1.0, SimTime{});
  EXPECT_NEAR(m.joules(), 400.0, 1e-9);
  EXPECT_NEAR(m.average_watts(), 40.0, 1e-9);
}

TEST(EnergyMeterTest, BusyInterval) {
  EnergyMeter m{cpu::PowerModel{40.0, 100.0, 3.0}};
  m.record(seconds(10), 1.0, seconds(10));
  EXPECT_NEAR(m.joules(), 1000.0, 1e-9);
}

TEST(EnergyMeterTest, PartialUtilization) {
  EnergyMeter m{cpu::PowerModel{40.0, 100.0, 3.0}};
  m.record(seconds(10), 1.0, seconds(5));
  EXPECT_NEAR(m.joules(), (40.0 + 30.0) * 10, 1e-9);
}

TEST(EnergyMeterTest, LowerFrequencyCheaper) {
  EnergyMeter hi{cpu::PowerModel{40.0, 100.0, 3.0}};
  EnergyMeter lo{cpu::PowerModel{40.0, 100.0, 3.0}};
  hi.record(seconds(10), 1.0, seconds(10));
  lo.record(seconds(10), 0.6, seconds(10));
  EXPECT_LT(lo.joules(), hi.joules());
}

TEST(EnergyMeterTest, AccumulatesAcrossRecords) {
  EnergyMeter m{cpu::PowerModel{40.0, 100.0, 3.0}};
  for (int i = 0; i < 100; ++i) m.record(msec(100), 1.0, msec(50));
  EXPECT_EQ(m.elapsed(), seconds(10));
  EXPECT_NEAR(m.joules(), (40.0 + 30.0) * 10, 1e-6);
  EXPECT_NEAR(m.watt_hours(), m.joules() / 3600.0, 1e-12);
}

TEST(EnergyMeterTest, ZeroIntervalIgnored) {
  EnergyMeter m{cpu::PowerModel::desktop_2008()};
  m.record(SimTime{}, 1.0, SimTime{});
  EXPECT_DOUBLE_EQ(m.joules(), 0.0);
  EXPECT_DOUBLE_EQ(m.average_watts(), 0.0);
}

}  // namespace
}  // namespace pas::metrics
