#include "metrics/load_monitor.hpp"

#include <gtest/gtest.h>

namespace pas::metrics {
namespace {

using common::mf_usec;
using common::msec;
using common::seconds;

struct LoadMonitorTest : ::testing::Test {
  LoadMonitor mon{seconds(1), 3};
  void SetUp() override {
    mon.register_vm(0);
    mon.register_vm(1);
  }
};

TEST_F(LoadMonitorTest, WindowLoads) {
  mon.record_run(0, msec(200), mf_usec(200'000));  // 20 % busy, full speed
  mon.record_run(1, msec(100), mf_usec(60'000));   // 10 % busy at 0.6 speed
  mon.close_window(seconds(1));
  EXPECT_DOUBLE_EQ(mon.vm_global_load_pct(0), 20.0);
  EXPECT_DOUBLE_EQ(mon.vm_global_load_pct(1), 10.0);
  EXPECT_DOUBLE_EQ(mon.vm_absolute_load_pct(0), 20.0);
  EXPECT_DOUBLE_EQ(mon.vm_absolute_load_pct(1), 6.0);
  EXPECT_DOUBLE_EQ(mon.global_load_pct(), 30.0);
  EXPECT_DOUBLE_EQ(mon.absolute_load_pct(), 26.0);
}

TEST_F(LoadMonitorTest, WindowResetsAfterClose) {
  mon.record_run(0, msec(500), mf_usec(500'000));
  mon.close_window(seconds(1));
  mon.close_window(seconds(2));
  EXPECT_DOUBLE_EQ(mon.vm_global_load_pct(0), 0.0);
  EXPECT_DOUBLE_EQ(mon.global_load_pct(), 0.0);
}

TEST_F(LoadMonitorTest, ThreeWindowAverage) {
  mon.record_run(0, msec(100), mf_usec(100'000));
  mon.close_window(seconds(1));  // 10 %
  mon.record_run(0, msec(200), mf_usec(200'000));
  mon.close_window(seconds(2));  // 20 %
  mon.record_run(0, msec(600), mf_usec(600'000));
  mon.close_window(seconds(3));  // 60 %
  EXPECT_DOUBLE_EQ(mon.avg_global_load_pct(), 30.0);
  // A fourth window evicts the first.
  mon.record_run(0, msec(400), mf_usec(400'000));
  mon.close_window(seconds(4));  // 40 %
  EXPECT_DOUBLE_EQ(mon.avg_global_load_pct(), 40.0);
}

TEST_F(LoadMonitorTest, AbsoluteAverageTracksWork) {
  mon.record_run(0, msec(1000), mf_usec(600'000));  // busy 100 % at 0.6 speed
  mon.close_window(seconds(1));
  EXPECT_DOUBLE_EQ(mon.avg_absolute_load_pct(), 60.0);
  EXPECT_DOUBLE_EQ(mon.avg_global_load_pct(), 100.0);
}

TEST_F(LoadMonitorTest, VmLoadRelativeToCredit) {
  mon.record_run(0, msec(200), mf_usec(200'000));
  mon.close_window(seconds(1));
  // V20-style: 20 % of the host on a 20 % credit = 100 % VM load.
  EXPECT_DOUBLE_EQ(mon.vm_load_pct(0, 20.0), 100.0);
  EXPECT_DOUBLE_EQ(mon.vm_load_pct(0, 40.0), 50.0);
  EXPECT_DOUBLE_EQ(mon.vm_load_pct(0, 0.0), 0.0);
}

TEST_F(LoadMonitorTest, CumulativeCounters) {
  mon.record_run(0, msec(100), mf_usec(50'000));
  mon.close_window(seconds(1));
  mon.record_run(1, msec(300), mf_usec(300'000));
  EXPECT_EQ(mon.cumulative_busy(), msec(400));
  EXPECT_EQ(mon.cumulative_busy(0), msec(100));
  EXPECT_EQ(mon.cumulative_busy(1), msec(300));
  EXPECT_DOUBLE_EQ(mon.cumulative_work().mfus(), 350'000.0);
}

TEST_F(LoadMonitorTest, RejectsSparseRegistration) {
  LoadMonitor m{seconds(1)};
  EXPECT_THROW(m.register_vm(5), std::invalid_argument);
}

TEST_F(LoadMonitorTest, RejectsBadWindow) {
  EXPECT_THROW(LoadMonitor(common::SimTime{}, 3), std::invalid_argument);
}

TEST_F(LoadMonitorTest, MultipleRecordsAccumulateWithinWindow) {
  for (int i = 0; i < 10; ++i) mon.record_run(0, msec(10), mf_usec(10'000));
  mon.close_window(seconds(1));
  EXPECT_DOUBLE_EQ(mon.vm_global_load_pct(0), 10.0);
}

}  // namespace
}  // namespace pas::metrics
