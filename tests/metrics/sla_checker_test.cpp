#include "metrics/sla_checker.hpp"

#include <gtest/gtest.h>

namespace pas::metrics {
namespace {

using common::seconds;

struct SlaCheckerTest : ::testing::Test {
  SlaChecker sla{2.0};
  void SetUp() override { sla.register_vm(0, 20.0); }
};

TEST_F(SlaCheckerTest, NoViolationWhenDelivered) {
  sla.record_window(0, seconds(10), 20.0, /*saturated=*/true);
  sla.record_window(0, seconds(10), 19.0, true);  // within tolerance
  EXPECT_EQ(sla.violation_time(0), common::SimTime{});
  EXPECT_DOUBLE_EQ(sla.violation_fraction(0), 0.0);
}

TEST_F(SlaCheckerTest, ViolationWhenShortAndSaturated) {
  sla.record_window(0, seconds(10), 12.0, true);
  EXPECT_EQ(sla.violation_time(0), seconds(10));
  EXPECT_DOUBLE_EQ(sla.violation_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(sla.worst_shortfall_pct(0), 8.0);
}

TEST_F(SlaCheckerTest, UnsaturatedWindowsIgnored) {
  // An idle VM with 0 % absolute load is not a violation.
  sla.record_window(0, seconds(10), 0.0, /*saturated=*/false);
  EXPECT_EQ(sla.observed_time(0), common::SimTime{});
  EXPECT_DOUBLE_EQ(sla.violation_fraction(0), 0.0);
}

TEST_F(SlaCheckerTest, MixedWindows) {
  sla.record_window(0, seconds(10), 12.0, true);   // violated
  sla.record_window(0, seconds(10), 20.0, true);   // fine
  sla.record_window(0, seconds(10), 10.0, false);  // ignored
  sla.record_window(0, seconds(10), 11.0, true);   // violated
  EXPECT_EQ(sla.observed_time(0), seconds(30));
  EXPECT_EQ(sla.violation_time(0), seconds(20));
  EXPECT_NEAR(sla.violation_fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(sla.worst_shortfall_pct(0), 9.0);
}

TEST_F(SlaCheckerTest, OverDeliveryIsFine) {
  sla.record_window(0, seconds(10), 35.0, true);
  EXPECT_DOUBLE_EQ(sla.violation_fraction(0), 0.0);
}

TEST_F(SlaCheckerTest, RejectsSparseRegistration) {
  EXPECT_THROW(sla.register_vm(5, 10.0), std::invalid_argument);
}

TEST_F(SlaCheckerTest, MultipleVms) {
  sla.register_vm(1, 70.0);
  sla.record_window(1, seconds(10), 40.0, true);
  sla.record_window(0, seconds(10), 20.0, true);
  EXPECT_DOUBLE_EQ(sla.violation_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(sla.violation_fraction(1), 1.0);
  EXPECT_DOUBLE_EQ(sla.worst_shortfall_pct(1), 30.0);
}

}  // namespace
}  // namespace pas::metrics
