// Compiles and executes the ARCHITECTURE.md "Control plane" doc example —
// the ROADMAP "doc-checked examples" idiom. The code inside the DOC
// SNIPPET markers mirrors the code block in docs/ARCHITECTURE.md; if you
// edit one, edit both (this test is what keeps the doc honest).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "control/control_plane.hpp"
#include "control/task.hpp"
#include "workload/synthetic.hpp"

namespace pas::cluster {
namespace {

Cluster two_host_cluster() {
  ClusterConfig cc;
  cc.host_count = 2;
  cc.host.trace_stride = common::SimTime{};  // no tracing: pure lifecycle
  return Cluster(cc);
}

TEST(ControlDocExampleTest, MaintenanceSessionRunsAsDocumented) {
  Cluster cluster = two_host_cluster();
  cluster.add_vm(ClusterVmConfig{}, std::make_unique<wl::IdleGuest>(), 0);
  ASSERT_EQ(cluster.residence(0), 0u);

  // --- DOC SNIPPET (docs/ARCHITECTURE.md, Control plane) ---
  // An operator stream: stop a VM for maintenance, resume it on the other
  // host, annotate the shift. Parse is strict against the fleet dims;
  // install before the first run_until; results publish after the run.
  const std::vector<ctl::Task> tasks = ctl::parse_tasks(R"([
{"id": 1, "at_s": 5.0, "task": "stop_vm", "vm": 0},
{"id": 2, "at_s": 20.0, "task": "start_vm", "vm": 0, "host": 1},
{"id": 3, "at_s": 30.0, "task": "annotate", "note": "maintenance done"}
])", "ops.json", {cluster.host_count(), cluster.vm_count()});
  cluster.install_control(std::make_unique<ctl::ControlPlane>(tasks));
  cluster.run_until(common::seconds(60));
  // cluster.control()->result_log() is the deterministic JSON result log;
  // accepted()/rejected()/superseded() count the outcomes.
  // --- END DOC SNIPPET ---

  // The session did what it said: the VM moved administratively.
  EXPECT_EQ(cluster.residence(0), 1u);
  EXPECT_EQ(cluster.vm_state(0), VmState::kRunning);
  EXPECT_EQ(cluster.control()->accepted(), 3u);
  EXPECT_EQ(cluster.control()->rejected(), 0u);
  EXPECT_EQ(cluster.control()->superseded(), 0u);

  // And the published artifact is pinned byte for byte — the determinism
  // claim the doc makes is exactly this string on every engine.
  EXPECT_EQ(cluster.control()->result_log(),
            "[\n"
            "{\"id\": 1, \"at_s\": 5.000000, \"task\": \"stop_vm\", \"status\": \"ok\"},\n"
            "{\"id\": 2, \"at_s\": 20.000000, \"task\": \"start_vm\", \"status\": \"ok\"},\n"
            "{\"id\": 3, \"at_s\": 30.000000, \"task\": \"annotate\", \"status\": \"ok\","
            " \"note\": \"maintenance done\"}\n"
            "]\n");
}

}  // namespace
}  // namespace pas::cluster
