// Control-plane determinism harness: scripted command streams over the
// shared differential corpus (tests/cluster/cluster_fuzz_common.hpp) must
// leave every engine in the same state — reference slow-stepped loop,
// event-driven fast path, and the parallel engine at 2, 4 and hardware
// threads — with byte-identical traces AND byte-identical result logs.
//
// On top of identity, the record→replay loop closes like PR 5's demand
// traces: the recorded result log re-expressed as a no-op annotation
// stream (ctl::results_to_annotations) is re-injected into a fresh run,
// where every annotation must resolve ok (it commands nothing) and the
// re-recorded stream must match byte-exactly — annotate results pass
// their notes through verbatim, so the stream is a fixed point of
// record→re-inject. (The annotated run is NOT compared against a
// command-free one: scheduled events are part of scenario identity — an
// extra segment boundary legitimately re-times intra-window scheduling —
// and the determinism contract is same-events, any-engine.)
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "../cluster/cluster_fuzz_common.hpp"
#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "control/control_plane.hpp"
#include "control/task.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

/// A deterministic operator-traffic stream for `spec`, drawn from the
/// dedicated "ctl" substream so scenario draws are untouched (the fuzz
/// suite asserts that prefix property; here we just rely on it). Ids and
/// targets are always in range; whether each command is ACCEPTED depends
/// on cluster state at fire time, which is exactly what the result log
/// must reproduce byte-for-byte.
std::vector<ctl::Task> draw_commands(const ScenarioSpec& spec, std::uint64_t seed) {
  common::Rng rng = common::substream(seed, "ctl");
  const auto horizon_us = static_cast<std::uint64_t>(spec.horizon.us());
  const std::size_t count = 6 + rng.next_below(6);

  std::vector<std::uint64_t> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Inside (5%, 95%) of the horizon: every command actually fires.
    times.push_back(horizon_us / 20 + rng.next_below(horizon_us * 9 / 10));
  }
  std::sort(times.begin(), times.end());

  std::vector<ctl::Task> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ctl::Task t;
    t.id = i + 1;
    t.at = common::usec(static_cast<std::int64_t>(times[i]));
    const std::uint64_t roll = rng.next_below(10);
    if (roll < 4) {
      t.kind = ctl::TaskKind::kMigrate;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
    } else if (roll < 5) {
      t.kind = ctl::TaskKind::kStopVm;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
    } else if (roll < 6) {
      t.kind = ctl::TaskKind::kStartVm;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
    } else if (roll < 7) {
      t.kind = ctl::TaskKind::kCrashHost;
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
      t.restart = rng.chance(0.75);
    } else if (roll < 8) {
      t.kind = ctl::TaskKind::kRestartVm;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
    } else if (roll < 9) {
      t.kind = ctl::TaskKind::kSetLinkBandwidth;
      t.mb_per_s = rng.uniform(20.0, 200.0);
    } else {
      t.kind = ctl::TaskKind::kAnnotate;
      t.note = "cmd #" + std::to_string(t.id);
    }
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::unique_ptr<Cluster> run_with_commands(const ScenarioSpec& spec,
                                           std::vector<ctl::Task> tasks, bool fast_path,
                                           std::size_t threads = 1) {
  auto cluster = build_cluster(spec, fast_path, threads);
  cluster->install_control(std::make_unique<ctl::ControlPlane>(std::move(tasks)));
  run_spec(*cluster, spec);
  return cluster;
}

/// What a shard exercised — a corpus whose commands were all rejected (or
/// all trivially accepted) would be testing much less than it claims.
struct ControlActivity {
  std::size_t fired = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t superseded = 0;
};

void run_seed_range(std::uint64_t first, std::uint64_t count) {
  ControlActivity activity;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed);
    const std::vector<ctl::Task> commands = draw_commands(spec, seed);

    auto slow = run_with_commands(spec, commands, /*fast_path=*/false);
    const std::string log = slow->control()->result_log();
    ASSERT_EQ(slow->control()->results().size(), commands.size())
        << "seed " << seed << ": a command fell off the queue";

    const std::size_t thread_variants[] = {1, 2, 4,
                                           common::ThreadPool::hardware_threads()};
    for (const std::size_t threads : thread_variants) {
      auto fast = run_with_commands(spec, commands, /*fast_path=*/true, threads);
      const std::string label = "slow vs fast(threads=" + std::to_string(threads) + ")";
      expect_identical(*slow, *fast, seed, label);
      if (::testing::Test::HasFatalFailure()) return;
      // The cluster agreeing is necessary; the published artifact agreeing
      // is the contract: result logs byte-identical across engines.
      EXPECT_EQ(fast->control()->result_log(), log) << "seed " << seed << " " << label;
    }

    // --- record → re-inject → re-record ---------------------------------
    // The recorded outcomes, re-expressed as no-op annotations, re-injected
    // into a fresh run: every annotation resolves ok and the re-export is
    // byte-exact.
    const std::string annotations = ctl::results_to_annotations(slow->control()->results());
    std::vector<ctl::Task> replay = ctl::parse_tasks(
        annotations, "<annotations>", {spec.hosts, spec.vms.size()});

    auto annotated = run_with_commands(spec, std::move(replay), /*fast_path=*/true);
    ASSERT_EQ(annotated->control()->results().size(), slow->control()->results().size())
        << "seed " << seed << ": an annotation fell off the queue";
    for (const ctl::TaskResult& r : annotated->control()->results()) {
      EXPECT_EQ(r.status, ctl::TaskStatus::kOk)
          << "seed " << seed << " id " << r.id << ": an annotation was not a no-op";
    }
    EXPECT_EQ(ctl::results_to_annotations(annotated->control()->results()), annotations)
        << "seed " << seed << ": annotation stream is not a fixed point";

    activity.fired += slow->control()->results().size();
    activity.ok += slow->control()->accepted();
    activity.rejected += slow->control()->rejected();
    activity.superseded += slow->control()->superseded();
  }

  // Vacuity guards: the corpus must actually exercise both sides of the
  // accept/reject split (floors well under the deterministic actuals).
  EXPECT_GT(activity.fired, 0u) << "shard " << first << ": no command ever fired";
  EXPECT_GT(activity.ok, 0u) << "shard " << first << ": no command was ever accepted";
  EXPECT_GT(activity.rejected + activity.superseded, 0u)
      << "shard " << first << ": no command was ever refused";
}

// A 24-seed slice of the shared corpus (each seed runs seven full
// scenarios: slow, four fast variants, plain and annotated), sharded for
// ctest parallelism and narrow failure ranges.
TEST(ControlReplayTest, ReplayIdenticalSeeds0to7) { run_seed_range(0, 8); }
TEST(ControlReplayTest, ReplayIdenticalSeeds8to15) { run_seed_range(8, 8); }
TEST(ControlReplayTest, ReplayIdenticalSeeds16to23) { run_seed_range(16, 8); }

}  // namespace
}  // namespace pas::cluster
