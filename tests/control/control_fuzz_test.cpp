// Control-plane fuzz equivalence: a random external command stream is
// nothing but sugar for raw cluster events. For every corpus seed the same
// stream runs twice —
//
//   run A: ctl::ControlPlane over the drawn tasks (install_control);
//   run B: NO control plane; each task hand-compiled into a
//          Cluster::schedule_at hook that performs the identical operation
//          with the identical admission logic (including
//          ClusterManager::admit_external_migration, so external budget
//          draws match).
//
// Hooks arm after the injector and the (null) control plane, so run B's
// events occupy the exact (time, insertion-seq) queue positions run A's
// ControlPlane::arm gives its tasks — the two runs must agree on every
// observable expect_identical checks.
//
// Both runs carry a seeded fault schedule (the chaos tier's config, slow
// link), and the stream is salted with commands scheduled at the EXACT
// instant of each planned host crash, targeting the crashing host: the
// injector arms before the control plane, so at equal times the crash
// fires first and the racing command deterministically observes the
// post-crash world (refused, mostly superseded — never ok, never a crash,
// conservation intact).
//
// The command stream draws from common::substream(seed, "ctl"), and the
// prefix-preservation contract — drawing it perturbs neither the scenario
// nor the fault plan — is asserted per seed.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "../cluster/cluster_fuzz_common.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/random.hpp"
#include "control/control_plane.hpp"
#include "control/task.hpp"
#include "fault/fault.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

fault::FaultConfig chaos_config() {
  fault::FaultConfig cfg;
  cfg.max_crashes = 2;
  cfg.max_migration_aborts = 2;
  cfg.max_link_degrades = 1;
  cfg.max_brownouts = 1;
  return cfg;
}

struct DrawnStream {
  std::vector<ctl::Task> tasks;
  /// Ids of the commands salted onto planned crash instants.
  std::set<std::uint64_t> raced_ids;
};

/// Random operator traffic from the dedicated "ctl" substream, plus one
/// migrate + one crash_host scheduled at the exact instant of every
/// planned host crash (targeting its victim) — the crash-race probes.
DrawnStream draw_stream(const ScenarioSpec& spec, const fault::FaultPlan& plan,
                        std::uint64_t seed) {
  common::Rng rng = common::substream(seed, "ctl");
  const auto horizon_us = static_cast<std::uint64_t>(spec.horizon.us());
  const std::size_t count = 5 + rng.next_below(6);

  struct Pending {
    ctl::Task task;
    bool raced = false;
  };
  std::vector<Pending> pending;

  for (std::size_t i = 0; i < count; ++i) {
    ctl::Task t;
    t.at = common::usec(
        static_cast<std::int64_t>(horizon_us / 20 + rng.next_below(horizon_us * 9 / 10)));
    const std::uint64_t roll = rng.next_below(10);
    if (roll < 4) {
      t.kind = ctl::TaskKind::kMigrate;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
    } else if (roll < 5) {
      t.kind = ctl::TaskKind::kStopVm;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
    } else if (roll < 6) {
      t.kind = ctl::TaskKind::kStartVm;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
    } else if (roll < 7) {
      t.kind = ctl::TaskKind::kRestartVm;
      t.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
    } else if (roll < 8) {
      t.kind = ctl::TaskKind::kCrashHost;
      t.host = static_cast<std::uint32_t>(rng.next_below(spec.hosts));
      t.restart = rng.chance(0.75);
    } else if (roll < 9) {
      t.kind = ctl::TaskKind::kSetLinkBandwidth;
      t.mb_per_s = rng.uniform(20.0, 200.0);
    } else {
      t.kind = ctl::TaskKind::kAnnotate;
      t.note = "fuzz";
    }
    pending.push_back({std::move(t), false});
  }

  for (const fault::FaultEvent& e : plan.events) {
    if (e.kind != fault::FaultKind::kHostCrash) continue;
    ctl::Task migrate;
    migrate.kind = ctl::TaskKind::kMigrate;
    migrate.at = e.at;  // the exact crash instant: the injector wins the tie
    migrate.vm = static_cast<std::uint32_t>(rng.next_below(spec.vms.size()));
    migrate.host = e.host;
    pending.push_back({std::move(migrate), true});
    ctl::Task crash;
    crash.kind = ctl::TaskKind::kCrashHost;
    crash.at = e.at;
    crash.host = e.host;
    pending.push_back({std::move(crash), true});
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) { return a.task.at < b.task.at; });
  DrawnStream stream;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    pending[i].task.id = i + 1;
    if (pending[i].raced) stream.raced_ids.insert(i + 1);
    stream.tasks.push_back(std::move(pending[i].task));
  }
  return stream;
}

/// The hand-compiled equivalent of ControlPlane::apply — the same cluster
/// calls behind the same guards, minus the result bookkeeping. Any drift
/// between this and control_plane.cpp is exactly what the differential
/// run detects.
void compile_by_hand(Cluster& cluster, const ctl::Task& task, common::SimTime now) {
  using Admission = ClusterManager::ExternalAdmission;
  switch (task.kind) {
    case ctl::TaskKind::kMigrate: {
      if (cluster.vm_state(task.vm) != VmState::kRunning) return;
      if (cluster.crashed(task.host)) return;
      if (cluster.residence(task.vm) == task.host) return;
      if (cluster.migrating(task.vm)) return;
      ClusterManager* mgr = cluster.manager();
      if (mgr != nullptr && mgr->admit_external_migration(now) != Admission::kAdmitted)
        return;
      (void)cluster.migrate(task.vm, task.host);
      return;
    }
    case ctl::TaskKind::kStopVm:
      (void)cluster.stop_vm(task.vm);
      return;
    case ctl::TaskKind::kStartVm:
      if (cluster.vm_state(task.vm) != VmState::kStopped) return;
      if (cluster.crashed(task.host)) return;
      (void)cluster.start_vm(task.vm, task.host);
      return;
    case ctl::TaskKind::kCrashHost:
      if (cluster.crashed(task.host)) return;
      (void)cluster.crash_host(task.host, task.restart);
      return;
    case ctl::TaskKind::kRestartVm:
      if (cluster.vm_state(task.vm) != VmState::kOrphaned) return;
      if (cluster.crashed(task.host)) return;
      (void)cluster.restart_vm(task.vm, task.host);
      return;
    case ctl::TaskKind::kSetLinkBandwidth:
      cluster.set_link_bandwidth(task.mb_per_s);
      return;
    case ctl::TaskKind::kAnnotate:
      return;
  }
}

void check_conservation(const Cluster& cluster, std::uint64_t seed) {
  for (const MigrationRecord& r : cluster.engine().completed()) {
    switch (r.outcome) {
      case MigrationOutcome::kCompleted:
      case MigrationOutcome::kAbortedStopCopy:
        EXPECT_EQ(r.credit_exported, r.credit_imported)
            << "seed " << seed << " vm " << r.vm << ": flight leaked credit";
        break;
      case MigrationOutcome::kAbortedPrecopy:
        EXPECT_EQ(r.credit_exported, common::SimTime{}) << "seed " << seed << " vm " << r.vm;
        EXPECT_EQ(r.credit_imported, common::SimTime{}) << "seed " << seed << " vm " << r.vm;
        break;
      case MigrationOutcome::kLostSourceCrash:
        EXPECT_EQ(r.credit_imported, common::SimTime{}) << "seed " << seed << " vm " << r.vm;
        break;
    }
    EXPECT_GE(r.end, r.start) << "seed " << seed << " vm " << r.vm;
  }
}

/// The fields of draw_scenario's output a perturbed generator would move
/// first — enough to catch any cross-stream RNG bleed.
void expect_same_scenario(const ScenarioSpec& a, const ScenarioSpec& b,
                          std::uint64_t seed) {
  ASSERT_EQ(a.hosts, b.hosts) << "seed " << seed;
  ASSERT_EQ(a.sched, b.sched) << "seed " << seed;
  ASSERT_EQ(a.horizon, b.horizon) << "seed " << seed;
  ASSERT_EQ(a.vms.size(), b.vms.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.vms.size(); ++i) {
    ASSERT_EQ(a.vms[i].kind, b.vms[i].kind) << "seed " << seed << " vm " << i;
    ASSERT_EQ(a.vms[i].credit, b.vms[i].credit) << "seed " << seed << " vm " << i;
    ASSERT_EQ(a.vms[i].home, b.vms[i].home) << "seed " << seed << " vm " << i;
  }
  ASSERT_EQ(a.script.size(), b.script.size()) << "seed " << seed;
}

void run_seed_range(std::uint64_t first, std::uint64_t count) {
  const fault::FaultConfig chaos = chaos_config();
  std::size_t total_ok = 0, total_refused = 0, raced_fired = 0, raced_superseded = 0;
  std::size_t crashes = 0;

  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    ScenarioSpec spec = draw_scenario(seed);
    spec.migration.link_mb_per_s = 25.0;  // crashes must catch flights
    const fault::FaultPlan plan =
        fault::draw_fault_plan(chaos, seed, spec.hosts, spec.horizon);

    const DrawnStream stream = draw_stream(spec, plan, seed);

    // Prefix preservation: the "ctl" substream the stream drew from is
    // independent of the scenario's own generator and of the chaos
    // substreams — re-drawing everything now must reproduce it all.
    {
      ScenarioSpec again = draw_scenario(seed);
      again.migration.link_mb_per_s = 25.0;
      expect_same_scenario(spec, again, seed);
      const fault::FaultPlan plan_again =
          fault::draw_fault_plan(chaos, seed, spec.hosts, spec.horizon);
      ASSERT_EQ(plan.events.size(), plan_again.events.size()) << "seed " << seed;
      const DrawnStream stream_again = draw_stream(spec, plan, seed);
      ASSERT_EQ(stream.tasks.size(), stream_again.tasks.size()) << "seed " << seed;
      for (std::size_t i = 0; i < stream.tasks.size(); ++i) {
        ASSERT_EQ(stream.tasks[i].at, stream_again.tasks[i].at)
            << "seed " << seed << " task " << i;
        ASSERT_EQ(stream.tasks[i].kind, stream_again.tasks[i].kind)
            << "seed " << seed << " task " << i;
      }
    }

    // Run A: the control plane executes the stream.
    auto a = build_cluster(spec, /*fast_path=*/true);
    a->install_faults(std::make_unique<fault::FaultInjector>(plan));
    a->install_control(std::make_unique<ctl::ControlPlane>(stream.tasks));
    run_spec(*a, spec);

    // Run B: the same stream hand-compiled into raw schedule_at hooks.
    auto b = build_cluster(spec, /*fast_path=*/true);
    b->install_faults(std::make_unique<fault::FaultInjector>(plan));
    for (const ctl::Task& task : stream.tasks) {
      b->schedule_at(task.at, [cluster = b.get(), task](common::SimTime now) {
        compile_by_hand(*cluster, task, now);
      });
    }
    run_spec(*b, spec);

    expect_identical(*a, *b, seed, "control plane vs hand-compiled events");
    if (::testing::Test::HasFatalFailure()) return;
    check_conservation(*a, seed);

    // The crash-race probes: scheduled at the exact instant of a planned
    // crash, so they observe the post-crash world — deterministically
    // refused whenever that crash actually fired (a drawn crash can be a
    // no-op on the last live host, in which case the probe may legally
    // succeed — the vacuity guard below keeps the corpus honest).
    for (const ctl::TaskResult& r : a->control()->results()) {
      if (stream.raced_ids.count(r.id) == 0) continue;
      ++raced_fired;
      if (r.status == ctl::TaskStatus::kSuperseded) ++raced_superseded;
    }
    total_ok += a->control()->accepted();
    total_refused += a->control()->rejected() + a->control()->superseded();
    crashes += a->crashed_count();
  }

  // Vacuity guards: the shard must actually exercise acceptance, refusal,
  // real crashes, and crash-race supersessions.
  EXPECT_GT(total_ok, 0u) << "shard " << first << ": no command ever accepted";
  EXPECT_GT(total_refused, 0u) << "shard " << first << ": no command ever refused";
  EXPECT_GT(crashes, 0u) << "shard " << first << ": no host ever crashed";
  EXPECT_GT(raced_fired, 0u) << "shard " << first << ": no crash-race probe fired";
  EXPECT_GT(raced_superseded, 0u)
      << "shard " << first << ": no crash-race probe was superseded";
}

TEST(ControlFuzzTest, EquivalentSeeds0to9) { run_seed_range(0, 10); }
TEST(ControlFuzzTest, EquivalentSeeds10to19) { run_seed_range(10, 10); }
TEST(ControlFuzzTest, EquivalentSeeds20to29) { run_seed_range(20, 10); }

}  // namespace
}  // namespace pas::cluster
