// Rejection corpus for the control plane's strict task parser, in the
// CsvTable hardening style (tests/common/csv_test.cpp): every malformed
// input — truncated JSON, unknown task kind, missing or negative
// timestamps, non-monotone times, out-of-range VM/host ids, duplicate task
// ids, unknown fields — must throw std::runtime_error naming the exact
// `origin:line`, never crash, never silently skip. Plus the positive
// grammar, the deterministic result-log serialization, and the
// annotation-stream fixed point the replay test builds on.
#include "control/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "control/json.hpp"

namespace pas::ctl {
namespace {

// Captures the message of the runtime_error `fn` must throw.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::runtime_error";
  return {};
}

// Parses `text` as "cmd.json" expecting a rejection; returns the message.
std::string reject(const std::string& text, FleetDims dims = {}) {
  return thrown_message([&] { (void)parse_tasks(text, "cmd.json", dims); });
}

void expect_rejection(const std::string& text, const std::string& at,
                      const std::string& what, FleetDims dims = {}) {
  const std::string msg = reject(text, dims);
  EXPECT_NE(msg.find(at), std::string::npos) << msg;
  EXPECT_NE(msg.find(what), std::string::npos) << msg;
}

// --- the positive grammar -------------------------------------------------

TEST(TaskParserTest, ParsesEveryKind) {
  const auto tasks = parse_tasks(
      "[\n"
      "{\"id\": 1, \"at_s\": 10.000000, \"task\": \"migrate\", \"vm\": 3, \"host\": 1},\n"
      "{\"id\": 2, \"at_s\": 12.5, \"task\": \"crash_host\", \"host\": 0, \"restart\": false},\n"
      "{\"id\": 3, \"at_s\": 15.0, \"task\": \"set_link_bandwidth\", \"mb_per_s\": 80.0},\n"
      "{\"id\": 4, \"at_s\": 20.0, \"task\": \"stop_vm\", \"vm\": 2},\n"
      "{\"id\": 5, \"at_s\": 25.0, \"task\": \"start_vm\", \"vm\": 2, \"host\": 1},\n"
      "{\"id\": 6, \"at_s\": 30.0, \"task\": \"restart_vm\", \"vm\": 4, \"host\": 0},\n"
      "{\"id\": 7, \"at_s\": 35.0, \"task\": \"annotate\", \"note\": \"shift change\"}\n"
      "]\n",
      "cmd.json", {2, 5});
  ASSERT_EQ(tasks.size(), 7u);
  EXPECT_EQ(tasks[0].kind, TaskKind::kMigrate);
  EXPECT_EQ(tasks[0].vm, 3u);
  EXPECT_EQ(tasks[0].host, 1u);
  EXPECT_EQ(tasks[0].at, common::seconds(10));
  EXPECT_EQ(tasks[1].kind, TaskKind::kCrashHost);
  EXPECT_FALSE(tasks[1].restart);
  EXPECT_EQ(tasks[1].at, common::msec(12'500));
  EXPECT_EQ(tasks[2].kind, TaskKind::kSetLinkBandwidth);
  EXPECT_DOUBLE_EQ(tasks[2].mb_per_s, 80.0);
  EXPECT_EQ(tasks[3].kind, TaskKind::kStopVm);
  EXPECT_EQ(tasks[4].kind, TaskKind::kStartVm);
  EXPECT_EQ(tasks[5].kind, TaskKind::kRestartVm);
  EXPECT_EQ(tasks[6].kind, TaskKind::kAnnotate);
  EXPECT_EQ(tasks[6].note, "shift change");
}

TEST(TaskParserTest, EmptyStreamIsLegal) {
  EXPECT_TRUE(parse_tasks("[]\n", "cmd.json").empty());
}

TEST(TaskParserTest, EqualTimestampsAreLegal) {
  const auto tasks = parse_tasks(
      "[\n"
      "{\"id\": 1, \"at_s\": 5.0, \"task\": \"annotate\"},\n"
      "{\"id\": 2, \"at_s\": 5.0, \"task\": \"annotate\"}\n"
      "]\n",
      "cmd.json");
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].at, tasks[1].at);
}

TEST(TaskParserTest, CrashRestartDefaultsTrue) {
  const auto tasks = parse_tasks(
      "[{\"id\": 1, \"at_s\": 1.0, \"task\": \"crash_host\", \"host\": 0}]\n",
      "cmd.json");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_TRUE(tasks[0].restart);
}

TEST(TaskParserTest, ZeroDimsSkipTheRangeCheck) {
  // dims = {0, 0}: vm/host ids are taken on faith (the ControlPlane still
  // rejects bad ones at fire time).
  const auto tasks = parse_tasks(
      "[{\"id\": 1, \"at_s\": 1.0, \"task\": \"migrate\", \"vm\": 999, \"host\": 999}]\n",
      "cmd.json");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].vm, 999u);
}

// --- the rejection corpus -------------------------------------------------
// Each case pins the exact origin:line and the diagnostic's key phrase.

TEST(TaskParserTest, EmptyInputRejected) {
  expect_rejection("", "cmd.json:1", "unexpected end of input");
}

TEST(TaskParserTest, TruncatedObjectRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 2.0,", "cmd.json:2",
                   "unexpected end of input in object");
}

TEST(TaskParserTest, TruncatedArrayRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 2.0, \"task\": \"annotate\"}\n",
                   "cmd.json:3", "unexpected end of input in array");
}

TEST(TaskParserTest, TrailingGarbageRejected) {
  expect_rejection("[]\nextra", "cmd.json:2", "trailing garbage");
}

TEST(TaskParserTest, TopLevelObjectRejected) {
  expect_rejection("{\"id\": 1}\n", "cmd.json:1",
                   "top-level value must be an array of tasks");
}

TEST(TaskParserTest, NonObjectTaskRejected) {
  expect_rejection("[\n42\n]\n", "cmd.json:2", "task must be an object");
}

TEST(TaskParserTest, MissingIdRejected) {
  expect_rejection("[\n{\"at_s\": 1.0, \"task\": \"annotate\"}\n]\n",
                   "cmd.json:2", "missing required field \"id\"");
}

TEST(TaskParserTest, NegativeIdRejected) {
  expect_rejection("[\n{\"id\": -1, \"at_s\": 1.0, \"task\": \"annotate\"}\n]\n",
                   "cmd.json:2", "field \"id\" must be non-negative");
}

TEST(TaskParserTest, FractionalIdRejected) {
  expect_rejection("[\n{\"id\": 1.5, \"at_s\": 1.0, \"task\": \"annotate\"}\n]\n",
                   "cmd.json:2", "field \"id\" must be an integer");
}

TEST(TaskParserTest, DuplicateTaskIdRejectedAtTheSecondUse) {
  expect_rejection(
      "[\n"
      "{\"id\": 1, \"at_s\": 1.0, \"task\": \"annotate\"},\n"
      "{\"id\": 1, \"at_s\": 2.0, \"task\": \"annotate\"}\n"
      "]\n",
      "cmd.json:3", "duplicate task id 1");
}

TEST(TaskParserTest, MissingTimestampRejected) {
  expect_rejection("[\n{\"id\": 1, \"task\": \"annotate\"}\n]\n", "cmd.json:2",
                   "missing required field \"at_s\"");
}

TEST(TaskParserTest, NonNumericTimestampRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": \"soon\", \"task\": \"annotate\"}\n]\n",
                   "cmd.json:2", "field \"at_s\" must be a number");
}

TEST(TaskParserTest, NegativeTimestampRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": -0.5, \"task\": \"annotate\"}\n]\n",
                   "cmd.json:2", "field \"at_s\" must be non-negative");
}

TEST(TaskParserTest, NonMonotoneTimestampsRejectedWithBothTimes) {
  expect_rejection(
      "[\n"
      "{\"id\": 1, \"at_s\": 2.0, \"task\": \"annotate\"},\n"
      "{\"id\": 2, \"at_s\": 1.0, \"task\": \"annotate\"}\n"
      "]\n",
      "cmd.json:3",
      "non-monotone at_s: 1.000000 is earlier than the previous task's 2.000000");
}

TEST(TaskParserTest, MissingKindRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 1.0}\n]\n", "cmd.json:2",
                   "missing required field \"task\"");
}

TEST(TaskParserTest, NonStringKindRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 1.0, \"task\": 7}\n]\n",
                   "cmd.json:2", "field \"task\" must be a string");
}

TEST(TaskParserTest, UnknownKindRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"explode\"}\n]\n",
                   "cmd.json:2", "unknown task kind \"explode\"");
}

TEST(TaskParserTest, MigrateWithoutVmRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"migrate\", \"host\": 0}\n]\n",
                   "cmd.json:2", "missing required field \"vm\"");
}

TEST(TaskParserTest, MigrateWithoutHostRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"migrate\", \"vm\": 0}\n]\n",
                   "cmd.json:2", "missing required field \"host\"");
}

TEST(TaskParserTest, OutOfRangeVmRejectedAgainstDims) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"stop_vm\", \"vm\": 64}\n]\n",
      "cmd.json:2", "unknown vm 64 (fleet has 64 VMs)", {8, 64});
}

TEST(TaskParserTest, OutOfRangeHostRejectedAgainstDims) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"crash_host\", \"host\": 8}\n]\n",
      "cmd.json:2", "unknown host 8 (fleet has 8 hosts)", {8, 64});
}

TEST(TaskParserTest, FractionalVmIdRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"stop_vm\", \"vm\": 2.5}\n]\n",
      "cmd.json:2", "field \"vm\" must be an integer");
}

TEST(TaskParserTest, LinkChangeWithoutBandwidthRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"set_link_bandwidth\"}\n]\n",
      "cmd.json:2", "missing required field \"mb_per_s\"");
}

TEST(TaskParserTest, NonPositiveBandwidthRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"set_link_bandwidth\", \"mb_per_s\": 0}\n]\n",
      "cmd.json:2", "field \"mb_per_s\" must be a positive number");
}

TEST(TaskParserTest, NonBooleanRestartRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"crash_host\", \"host\": 0, \"restart\": 1}\n]\n",
      "cmd.json:2", "field \"restart\" must be a boolean");
}

TEST(TaskParserTest, NonStringNoteRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"annotate\", \"note\": 3}\n]\n",
      "cmd.json:2", "field \"note\" must be a string");
}

TEST(TaskParserTest, UnknownFieldRejectedPerKind) {
  // `note` is legal on annotate but not on migrate — field sets are
  // per-kind, not a global union.
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"migrate\", \"vm\": 0, \"host\": 1, "
      "\"note\": \"x\"}\n]\n",
      "cmd.json:2", "unknown field \"note\" for task kind \"migrate\"");
}

TEST(TaskParserTest, StrayHostOnStopVmRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"stop_vm\", \"vm\": 0, \"host\": 1}\n]\n",
      "cmd.json:2", "unknown field \"host\" for task kind \"stop_vm\"");
}

TEST(TaskParserTest, DuplicateJsonKeyRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"id\": 2, \"at_s\": 1.0, \"task\": \"annotate\"}\n]\n",
      "cmd.json:2", "duplicate object key \"id\"");
}

TEST(TaskParserTest, TrailingCommaRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"annotate\"},\n]\n",
      "cmd.json:3", "trailing comma in array");
}

TEST(TaskParserTest, UnterminatedStringRejected) {
  expect_rejection("[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"anno", "cmd.json:2",
                   "unterminated string");
}

TEST(TaskParserTest, InvalidEscapeRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"annotate\", \"note\": \"\\q\"}\n]\n",
      "cmd.json:2", "invalid escape");
}

TEST(TaskParserTest, SurrogateEscapeRejected) {
  expect_rejection(
      "[\n{\"id\": 1, \"at_s\": 1.0, \"task\": \"annotate\", \"note\": \"\\ud800\"}\n]\n",
      "cmd.json:2", "surrogate \\u escape not supported");
}

// --- result-log serialization --------------------------------------------

TEST(TaskResultTest, SerializesDeterministically) {
  std::vector<TaskResult> results;
  results.push_back({1, common::seconds(10), TaskKind::kMigrate, TaskStatus::kOk, "", ""});
  results.push_back({2, common::msec(12'500), TaskKind::kCrashHost,
                     TaskStatus::kRejected, "host 0 is the last live host", ""});
  results.push_back({3, common::seconds(35), TaskKind::kAnnotate, TaskStatus::kOk, "",
                     "shift change"});
  EXPECT_EQ(serialize_results(results),
            "[\n"
            "{\"id\": 1, \"at_s\": 10.000000, \"task\": \"migrate\", \"status\": \"ok\"},\n"
            "{\"id\": 2, \"at_s\": 12.500000, \"task\": \"crash_host\", \"status\": "
            "\"rejected\", \"reason\": \"host 0 is the last live host\"},\n"
            "{\"id\": 3, \"at_s\": 35.000000, \"task\": \"annotate\", \"status\": \"ok\", "
            "\"note\": \"shift change\"}\n"
            "]\n");
}

TEST(TaskResultTest, EmptyLogSerializes) {
  EXPECT_EQ(serialize_results({}), "[\n]\n");
}

TEST(TaskResultTest, AnnotationStreamIsAFixedPoint) {
  // results_to_annotations must emit a PARSEABLE stream whose execution
  // (every annotate passes its note through verbatim) re-records to the
  // same annotation stream — the property the replay test closes over a
  // full cluster run.
  std::vector<TaskResult> results;
  results.push_back({1, common::seconds(10), TaskKind::kMigrate, TaskStatus::kRejected,
                     "vm 3 already in flight", ""});
  results.push_back({2, common::seconds(20), TaskKind::kAnnotate, TaskStatus::kOk, "",
                     "note with \"quotes\" and\nnewline"});
  const std::string stream = results_to_annotations(results);

  const auto tasks = parse_tasks(stream, "<annotations>", {8, 64});
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].kind, TaskKind::kAnnotate);
  EXPECT_EQ(tasks[0].note, "migrate:rejected:vm 3 already in flight");
  EXPECT_EQ(tasks[1].note, "note with \"quotes\" and\nnewline");

  // Execute the annotations (an annotate's result is its note, status ok)
  // and re-record: byte-identical.
  std::vector<TaskResult> rerun;
  for (const Task& t : tasks)
    rerun.push_back({t.id, t.at, TaskKind::kAnnotate, TaskStatus::kOk, "", t.note});
  EXPECT_EQ(results_to_annotations(rerun), stream);
}

TEST(TaskResultTest, EscapeRoundTripsThroughTheParser) {
  const std::string raw = "a\"b\\c\nd\te\rf";
  const std::string text =
      "[{\"id\": 1, \"at_s\": 0.0, \"task\": \"annotate\", \"note\": \"" +
      json::escape(raw) + "\"}]";
  const auto tasks = parse_tasks(text, "esc.json");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].note, raw);
}

}  // namespace
}  // namespace pas::ctl
