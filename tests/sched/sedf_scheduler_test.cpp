#include "sched/sedf_scheduler.hpp"

#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "workload/synthetic.hpp"

namespace pas::sched {
namespace {

using common::kInvalidVm;
using common::msec;
using common::seconds;
using common::SimTime;
using common::VmId;

hv::VmConfig vm_cfg(double credit, bool extra = true,
                    common::SimTime period = msec(100)) {
  hv::VmConfig c;
  c.credit = credit;
  c.sedf_extra = extra;
  c.sedf_period = period;
  return c;
}

TEST(SedfSchedulerTest, SliceDerivedFromCredit) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  EXPECT_EQ(s.remaining_slice(0), msec(20));
  EXPECT_DOUBLE_EQ(s.cap(0), 20.0);
  EXPECT_TRUE(s.work_conserving());
}

TEST(SedfSchedulerTest, EdfPicksEarliestDeadline) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0, true, msec(200)));  // deadline 200 ms
  s.add_vm(1, vm_cfg(20.0, true, msec(100)));  // deadline 100 ms
  const VmId ids[] = {0, 1};
  EXPECT_EQ(s.pick(SimTime{}, ids), 1u);
}

TEST(SedfSchedulerTest, GuaranteedSliceConsumedThenExtra) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  const VmId ids[] = {0};
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
  EXPECT_DOUBLE_EQ(s.work_efficiency(0), 1.0);
  s.charge(0, msec(20));
  EXPECT_EQ(s.remaining_slice(0), SimTime{});
  // Work-conserving: still picked, as extra time.
  EXPECT_EQ(s.pick(msec(20), ids), 0u);
  s.charge(0, msec(10));
  EXPECT_EQ(s.extra_time_granted(), msec(10));
}

TEST(SedfSchedulerTest, ExtraFlagFalseIdlesInstead) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0, /*extra=*/false));
  const VmId ids[] = {0};
  s.charge(0, msec(20));
  EXPECT_EQ(s.pick(msec(20), ids), kInvalidVm);
}

TEST(SedfSchedulerTest, PeriodRolloverRefillsSlice) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.charge(0, msec(20));
  const VmId ids[] = {0};
  (void)s.pick(msec(100), ids);  // next period
  EXPECT_EQ(s.remaining_slice(0), msec(20));
}

TEST(SedfSchedulerTest, LongIdleSkipsPeriodsInConstantTime) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  const VmId ids[] = {0};
  // Ten simulated years of idleness must not loop per period.
  (void)s.pick(seconds(315'000'000), ids);
  EXPECT_EQ(s.remaining_slice(0), msec(20));
}

TEST(SedfSchedulerTest, ExtraWorkEfficiencyReported) {
  SedfSchedulerConfig cfg;
  cfg.extra_work_efficiency = 0.4;
  SedfScheduler s{cfg};
  s.add_vm(0, vm_cfg(20.0));
  const VmId ids[] = {0};
  (void)s.pick(SimTime{}, ids);
  EXPECT_DOUBLE_EQ(s.work_efficiency(0), 1.0);  // guaranteed slice
  s.charge(0, msec(20));
  (void)s.pick(msec(20), ids);
  EXPECT_DOUBLE_EQ(s.work_efficiency(0), 0.4);  // extra time
}

TEST(SedfSchedulerTest, RoundRobinExtraDistribution) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(10.0));
  s.add_vm(1, vm_cfg(10.0));
  s.charge(0, msec(10));
  s.charge(1, msec(10));
  const VmId ids[] = {0, 1};
  const VmId a = s.pick(msec(20), ids);
  s.charge(a, msec(1));
  const VmId b = s.pick(msec(21), ids);
  EXPECT_NE(a, b);
}

TEST(SedfSchedulerTest, SetCapAdjustsCurrentPeriod) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.charge(0, msec(5));
  s.set_cap(0, 40.0);
  // remain was 15 ms; slice delta +20 ms -> 35 ms.
  EXPECT_EQ(s.remaining_slice(0), msec(35));
  EXPECT_DOUBLE_EQ(s.cap(0), 40.0);
}

TEST(SedfSchedulerTest, SetCapReductionFloorsAtZero) {
  SedfScheduler s;
  s.add_vm(0, vm_cfg(50.0));
  s.charge(0, msec(45));
  s.set_cap(0, 10.0);  // remain 5 - 40 -> clamped to 0
  EXPECT_EQ(s.remaining_slice(0), SimTime{});
}

TEST(SedfSchedulerTest, RejectsBadInput) {
  SedfScheduler s;
  EXPECT_THROW(s.add_vm(2, vm_cfg(10.0)), std::invalid_argument);
  SedfSchedulerConfig bad;
  bad.extra_work_efficiency = 0.0;
  EXPECT_THROW(SedfScheduler{bad}, std::invalid_argument);
  bad.extra_work_efficiency = 1.5;
  EXPECT_THROW(SedfScheduler{bad}, std::invalid_argument);
}

TEST(SedfSchedulerTest, GuaranteeUnderContention) {
  // Host-level: V20 guaranteed 20 % even with a 70 % hog and extra demand.
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<SedfScheduler>()};
  host.add_vm(vm_cfg(20.0), std::make_unique<wl::BusyLoop>());
  host.add_vm(vm_cfg(70.0), std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(100));
  // Guaranteed minimums hold; the 10 % slack splits round-robin.
  EXPECT_GT(host.vm(0).total_busy.sec(), 20.0 - 1.0);
  EXPECT_GT(host.vm(1).total_busy.sec(), 70.0 - 1.0);
  EXPECT_NEAR(host.idle_time().sec(), 0.0, 0.5);
}

TEST(SedfSchedulerTest, WorkConservingGivesSlackToActiveVm) {
  // The paper's variable-credit pitch: V20 alone can exceed its 20 %.
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<SedfScheduler>()};
  host.add_vm(vm_cfg(20.0), std::make_unique<wl::BusyLoop>());
  host.add_vm(vm_cfg(70.0), std::make_unique<wl::IdleGuest>());
  host.run_until(seconds(100));
  EXPECT_GT(host.vm(0).total_busy.sec(), 95.0);
}

}  // namespace
}  // namespace pas::sched
