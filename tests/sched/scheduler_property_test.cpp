// Cross-scheduler properties, parameterized over credit splits and
// frequencies:
//   * fixed-credit: a thrashing VM's time share converges to its cap;
//   * SEDF: every VM receives at least its guaranteed slice under full
//     contention;
//   * neither scheduler ever lets total busy time exceed wall time.
#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace pas::sched {
namespace {

using common::seconds;
using common::SimTime;

struct ShareCase {
  double credit_a;
  double credit_b;
  std::size_t freq_index;
};

std::string case_name(const ::testing::TestParamInfo<ShareCase>& info) {
  return "a" + std::to_string(static_cast<int>(info.param.credit_a)) + "_b" +
         std::to_string(static_cast<int>(info.param.credit_b)) + "_f" +
         std::to_string(info.param.freq_index);
}

class CreditShareProperty : public ::testing::TestWithParam<ShareCase> {};

TEST_P(CreditShareProperty, ThrashingVmsGetTheirCapsRegardlessOfFrequency) {
  const auto& p = GetParam();
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<CreditScheduler>()};
  hv::VmConfig a;
  a.credit = p.credit_a;
  host.add_vm(a, std::make_unique<wl::BusyLoop>());
  hv::VmConfig b;
  b.credit = p.credit_b;
  host.add_vm(b, std::make_unique<wl::BusyLoop>());
  host.cpufreq().request(p.freq_index);
  host.run_until(seconds(60));

  // Fixed credit: time share equals cap, at ANY frequency (that is exactly
  // the paper's problem — the time share is preserved, the work is not).
  EXPECT_NEAR(host.vm(0).total_busy.sec(), 60.0 * p.credit_a / 100.0,
              0.02 * 60.0 * p.credit_a / 100.0 + 0.5);
  EXPECT_NEAR(host.vm(1).total_busy.sec(), 60.0 * p.credit_b / 100.0,
              0.02 * 60.0 * p.credit_b / 100.0 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Grid, CreditShareProperty,
                         ::testing::Values(ShareCase{20, 70, 4}, ShareCase{20, 70, 0},
                                           ShareCase{10, 90, 2}, ShareCase{50, 50, 1},
                                           ShareCase{30, 30, 3}, ShareCase{5, 95, 4},
                                           ShareCase{40, 20, 0}),
                         case_name);

class SedfGuaranteeProperty : public ::testing::TestWithParam<ShareCase> {};

TEST_P(SedfGuaranteeProperty, GuaranteedSliceHeldUnderContention) {
  const auto& p = GetParam();
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<SedfScheduler>()};
  hv::VmConfig a;
  a.credit = p.credit_a;
  host.add_vm(a, std::make_unique<wl::BusyLoop>());
  hv::VmConfig b;
  b.credit = p.credit_b;
  host.add_vm(b, std::make_unique<wl::BusyLoop>());
  host.cpufreq().request(p.freq_index);
  host.run_until(seconds(60));

  EXPECT_GE(host.vm(0).total_busy.sec(), 60.0 * p.credit_a / 100.0 - 1.0);
  EXPECT_GE(host.vm(1).total_busy.sec(), 60.0 * p.credit_b / 100.0 - 1.0);
  // Work conserving: no idle while both thrash.
  EXPECT_LT(host.idle_time().sec(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Grid, SedfGuaranteeProperty,
                         ::testing::Values(ShareCase{20, 70, 4}, ShareCase{20, 70, 0},
                                           ShareCase{10, 90, 2}, ShareCase{50, 50, 1},
                                           ShareCase{45, 45, 3}),
                         case_name);

TEST(SchedulerPropertyTest, BusyNeverExceedsWallTime) {
  for (const bool sedf : {false, true}) {
    hv::HostConfig hc;
    hc.trace_stride = SimTime{};
    std::unique_ptr<hv::Scheduler> s;
    if (sedf) {
      s = std::make_unique<SedfScheduler>();
    } else {
      s = std::make_unique<CreditScheduler>();
    }
    hv::Host host{hc, std::move(s)};
    for (int i = 0; i < 4; ++i) {
      hv::VmConfig c;
      c.credit = 25.0;
      host.add_vm(c, std::make_unique<wl::BusyLoop>());
    }
    host.run_until(seconds(30));
    SimTime busy{};
    for (common::VmId i = 0; i < 4; ++i) busy += host.vm(i).total_busy;
    EXPECT_LE(busy.us(), seconds(30).us());
  }
}

}  // namespace
}  // namespace pas::sched
