// Compiles and executes the scheduler-extension example from
// docs/ARCHITECTURE.md ("A new scheduler") — the ROADMAP "doc-checked
// examples" item. The code inside the DOC SNIPPET markers mirrors the
// fenced block in the doc; if you edit one, edit both. The assertions
// prove the example upholds the extension contract it demonstrates: pick
// idempotence, and byte-identical fast-path vs slow-stepped host runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "hypervisor/host.hpp"
#include "hypervisor/scheduler.hpp"
#include "workload/synthetic.hpp"

namespace pas {
namespace {

// --- DOC SNIPPET (docs/ARCHITECTURE.md, "A new scheduler") ---
/// Least-attained-service scheduler: always runs the runnable VM with the
/// least cumulative busy time (ties: lowest id). The contract points:
/// pick() derives its choice purely from scheduler state and `now` —
/// repeating it without an intervening charge/account/set_cap returns the
/// same VM (idempotence) — and it never returns kInvalidVm, so the
/// default rejection_is_stable() is trivially honest.
class FairShareScheduler final : public hv::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "fair-share"; }
  void add_vm(common::VmId id, const hv::VmConfig& config) override {
    if (busy_.size() <= id) busy_.resize(id + 1);
    if (cap_.size() <= id) cap_.resize(id + 1);
    cap_[id] = config.credit;  // caps start at the configured credit
  }
  [[nodiscard]] common::VmId pick(common::SimTime /*now*/,
                                  std::span<const common::VmId> runnable) override {
    common::VmId best = runnable.front();
    for (const common::VmId v : runnable)
      if (busy_[v] < busy_[best]) best = v;  // runnable ascends: ties keep lowest id
    return best;
  }
  void charge(common::VmId vm, common::SimTime busy) override { busy_[vm] += busy; }
  void account(common::SimTime /*now*/) override {}  // nothing refills
  [[nodiscard]] common::SimTime accounting_period() const override {
    return common::seconds(1);
  }
  void set_cap(common::VmId vm, common::Percent cap_pct) override { cap_[vm] = cap_pct; }
  [[nodiscard]] common::Percent cap(common::VmId vm) const override { return cap_[vm]; }
  [[nodiscard]] bool work_conserving() const override { return true; }

 private:
  std::vector<common::SimTime> busy_;
  std::vector<common::Percent> cap_;
};
// --- END DOC SNIPPET ---

TEST(SchedulerDocExampleTest, PickIsIdempotent) {
  FairShareScheduler s;
  for (common::VmId id = 0; id < 3; ++id) s.add_vm(id, hv::VmConfig{});
  s.charge(0, common::seconds(5));
  s.charge(2, common::seconds(1));
  const std::vector<common::VmId> runnable{0, 1, 2};
  const common::VmId first = s.pick(common::seconds(10), runnable);
  EXPECT_EQ(first, 1u);  // least attained service
  // Re-asking later with no charge in between: same answer, same state.
  EXPECT_EQ(s.pick(common::seconds(11), runnable), first);
  EXPECT_EQ(s.pick(common::seconds(12), runnable), first);
  s.charge(1, common::seconds(2));
  EXPECT_EQ(s.pick(common::seconds(13), runnable), 2u);
}

std::unique_ptr<hv::Host> build_host(bool fast_path) {
  hv::HostConfig hc;
  hc.event_driven_fast_path = fast_path;
  hc.trace_stride = common::seconds(1);
  auto host = std::make_unique<hv::Host>(hc, std::make_unique<FairShareScheduler>());
  for (int i = 0; i < 3; ++i) {
    hv::VmConfig vc;
    vc.name = "hog" + std::to_string(i);
    vc.credit = 10.0 * (i + 1);  // fairness here ignores credit by design
    host->add_vm(vc, std::make_unique<wl::BusyLoop>());
  }
  return host;
}

TEST(SchedulerDocExampleTest, HostRunsIdenticalFastAndSlowAndSharesEvenly) {
  auto slow = build_host(false);
  auto fast = build_host(true);
  slow->run_until(common::seconds(60));
  fast->run_until(common::seconds(60));

  ASSERT_EQ(slow->trace().size(), fast->trace().size());
  for (std::size_t i = 0; i < slow->trace().size(); ++i) {
    const auto a = slow->trace().sample(i);
    const auto b = fast->trace().sample(i);
    ASSERT_EQ(a.t, b.t) << i;
    for (std::size_t v = 0; v < 3; ++v)
      ASSERT_EQ(a.vm_global_pct[v], b.vm_global_pct[v]) << i << " vm " << v;
  }
  for (common::VmId v = 0; v < 3; ++v)
    ASSERT_EQ(slow->vm(v).total_busy, fast->vm(v).total_busy) << v;

  // Least-attained-service over identical hogs = equal thirds.
  const double total = common::seconds(60).sec();
  for (common::VmId v = 0; v < 3; ++v)
    EXPECT_NEAR(slow->vm(v).total_busy.sec(), total / 3.0, 0.05) << v;
}

}  // namespace
}  // namespace pas
