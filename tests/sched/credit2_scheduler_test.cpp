#include "sched/credit2_scheduler.hpp"

#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "workload/synthetic.hpp"

namespace pas::sched {
namespace {

using common::msec;
using common::seconds;
using common::SimTime;
using common::VmId;

hv::VmConfig vm_cfg(double credit) {
  hv::VmConfig c;
  c.credit = credit;
  return c;
}

TEST(Credit2SchedulerTest, PicksSmallestVruntime) {
  Credit2Scheduler s;
  s.add_vm(0, vm_cfg(50.0));
  s.add_vm(1, vm_cfg(50.0));
  const VmId ids[] = {0, 1};
  const VmId first = s.pick(SimTime{}, ids);
  s.charge(first, msec(5));
  const VmId second = s.pick(SimTime{}, ids);
  EXPECT_NE(first, second);
}

TEST(Credit2SchedulerTest, VruntimeAdvancesInverselyToWeight) {
  Credit2Scheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.add_vm(1, vm_cfg(80.0));
  s.charge(0, msec(10));
  s.charge(1, msec(10));
  // Equal busy time costs the light VM 4x the virtual time.
  EXPECT_NEAR(s.vruntime(0) / s.vruntime(1), 4.0, 1e-9);
}

TEST(Credit2SchedulerTest, CapBlocksWhenExhausted) {
  Credit2Scheduler s;
  s.add_vm(0, vm_cfg(20.0));
  const VmId ids[] = {0};
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
  s.charge(0, msec(10));  // initial budget is 6 ms
  EXPECT_EQ(s.pick(SimTime{}, ids), common::kInvalidVm);
  s.account(msec(30));
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
}

TEST(Credit2SchedulerTest, NoCapsMeansWorkConserving) {
  Credit2SchedulerConfig cfg;
  cfg.enforce_caps = false;
  Credit2Scheduler s{cfg};
  s.add_vm(0, vm_cfg(20.0));
  const VmId ids[] = {0};
  s.charge(0, msec(100));
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
  EXPECT_TRUE(s.work_conserving());
}

TEST(Credit2SchedulerTest, ZeroCreditVmGetsTokenWeight) {
  Credit2Scheduler s;
  s.add_vm(0, vm_cfg(0.0));
  EXPECT_DOUBLE_EQ(s.weight(0), 1.0);
  const VmId ids[] = {0};
  // Uncapped: may always run.
  s.charge(0, msec(100));
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
}

TEST(Credit2SchedulerTest, WakeupClampPreventsHoarding) {
  Credit2Scheduler s;
  s.add_vm(0, vm_cfg(50.0));
  s.add_vm(1, vm_cfg(50.0));
  // VM 0 runs alone for a long time; VM 1 wakes with vruntime 0 but must
  // not monopolize the CPU to "catch up".
  const VmId only0[] = {0};
  for (int i = 0; i < 100; ++i) {
    (void)s.pick(SimTime{}, only0);
    s.charge(0, msec(10));
    if (i % 3 == 0) s.account(msec(30 * i));
  }
  const VmId both[] = {0, 1};
  (void)s.pick(SimTime{}, both);  // clamps VM 1
  // After the clamp, VM 1 is at most one burst allowance behind.
  EXPECT_GE(s.vruntime(1), s.vruntime(0) - msec(30).us() / 50.0 - 1e-9);
}

TEST(Credit2SchedulerTest, ProportionalShareUnderContention) {
  // Host-level, no caps: 1:4 weights yield a 1:4 time split.
  Credit2SchedulerConfig cfg;
  cfg.enforce_caps = false;
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<Credit2Scheduler>(cfg)};
  host.add_vm(vm_cfg(20.0), std::make_unique<wl::BusyLoop>());
  host.add_vm(vm_cfg(80.0), std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(60));
  EXPECT_NEAR(host.vm(0).total_busy.sec() / host.vm(1).total_busy.sec(), 0.25, 0.02);
  EXPECT_LT(host.idle_time().sec(), 0.5);  // work conserving
}

TEST(Credit2SchedulerTest, CapsEnforcedAtHostLevel) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<Credit2Scheduler>()};
  host.add_vm(vm_cfg(20.0), std::make_unique<wl::BusyLoop>());
  host.add_vm(vm_cfg(70.0), std::make_unique<wl::IdleGuest>());
  host.run_until(seconds(60));
  EXPECT_NEAR(host.vm(0).total_busy.sec(), 12.0, 0.5);  // capped at 20 %
}

TEST(Credit2SchedulerTest, ComposesWithPasStyleSetCap) {
  Credit2Scheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.set_cap(0, 33.3);
  EXPECT_DOUBLE_EQ(s.cap(0), 33.3);
  s.charge(0, msec(6));
  s.account(msec(30));
  // Refill at the compensated rate: ~10 ms per 30 ms.
  const VmId ids[] = {0};
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
}

TEST(Credit2SchedulerTest, RejectsBadInput) {
  Credit2Scheduler s;
  EXPECT_THROW(s.add_vm(2, vm_cfg(10.0)), std::invalid_argument);
  s.add_vm(0, vm_cfg(10.0));
  EXPECT_THROW(s.set_cap(0, -1.0), std::invalid_argument);
  Credit2SchedulerConfig bad;
  bad.accounting_period = SimTime{};
  EXPECT_THROW(Credit2Scheduler{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace pas::sched
