#include "sched/credit_scheduler.hpp"

#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "workload/synthetic.hpp"

namespace pas::sched {
namespace {

using common::kInvalidVm;
using common::msec;
using common::seconds;
using common::SimTime;
using common::VmId;

hv::VmConfig vm_cfg(double credit, int priority = 0) {
  hv::VmConfig c;
  c.credit = credit;
  c.priority = priority;
  return c;
}

TEST(CreditSchedulerTest, InitialBalanceIsOneRefill) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  EXPECT_EQ(s.balance(0), msec(6));  // 20 % of 30 ms
  EXPECT_DOUBLE_EQ(s.cap(0), 20.0);
  EXPECT_FALSE(s.work_conserving());
}

TEST(CreditSchedulerTest, PicksUnderVm) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  const VmId ids[] = {0};
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
}

TEST(CreditSchedulerTest, ExhaustedVmNotPicked) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.charge(0, msec(6));
  const VmId ids[] = {0};
  EXPECT_EQ(s.pick(SimTime{}, ids), kInvalidVm);  // fixed credit: CPU idles
}

TEST(CreditSchedulerTest, AccountRefills) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.charge(0, msec(6));
  s.account(msec(30));
  EXPECT_EQ(s.balance(0), msec(6));
  const VmId ids[] = {0};
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
}

TEST(CreditSchedulerTest, BalanceClampedToBurstLimit) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  for (int i = 0; i < 10; ++i) s.account(msec(30 * i));
  EXPECT_EQ(s.balance(0), msec(9));  // burst_periods = 1.5
}

TEST(CreditSchedulerTest, FractionalLeftoverSurvivesRefill) {
  // A 70 % VM leaves ~1 ms unburned per period when quanta are 10 ms; the
  // clamp must not confiscate it or the VM converges below its cap.
  CreditScheduler s;
  s.add_vm(0, vm_cfg(70.0));
  s.charge(0, msec(20));  // burned 20 of 21
  s.account(msec(30));
  EXPECT_EQ(s.balance(0), msec(22));  // 1 leftover + 21 refill, under 31.5 burst
}

TEST(CreditSchedulerTest, OverdraftCarriesOver) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.charge(0, msec(10));  // overdraw by 4 ms
  s.account(msec(30));
  EXPECT_EQ(s.balance(0), msec(2));
}

TEST(CreditSchedulerTest, PriorityPreempts) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0, 0));
  s.add_vm(1, vm_cfg(10.0, 1));  // Dom0-style
  const VmId ids[] = {0, 1};
  EXPECT_EQ(s.pick(SimTime{}, ids), 1u);
  s.charge(1, msec(3));  // exhaust Dom0
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
}

TEST(CreditSchedulerTest, RoundRobinAmongEqualPriority) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(50.0));
  s.add_vm(1, vm_cfg(50.0));
  const VmId ids[] = {0, 1};
  const VmId first = s.pick(SimTime{}, ids);
  s.charge(first, msec(1));
  const VmId second = s.pick(SimTime{}, ids);
  EXPECT_NE(first, second);
  s.charge(second, msec(1));
  EXPECT_EQ(s.pick(SimTime{}, ids), first);
}

TEST(CreditSchedulerTest, NullCreditRunsOnlyWhenOthersExhausted) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.add_vm(1, vm_cfg(0.0));  // null credit
  const VmId ids[] = {0, 1};
  EXPECT_EQ(s.pick(SimTime{}, ids), 0u);
  s.charge(0, msec(6));
  EXPECT_EQ(s.pick(SimTime{}, ids), 1u);  // soaks slack
  s.charge(1, msec(100));                 // no limit
  EXPECT_EQ(s.pick(SimTime{}, ids), 1u);
}

TEST(CreditSchedulerTest, SetCapChangesRefill) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(20.0));
  s.set_cap(0, 40.0);
  EXPECT_DOUBLE_EQ(s.cap(0), 40.0);
  s.charge(0, msec(6));
  s.account(msec(30));
  EXPECT_EQ(s.balance(0), msec(12));
}

TEST(CreditSchedulerTest, CapReductionClampsHoard) {
  CreditScheduler s;
  s.add_vm(0, vm_cfg(40.0));
  EXPECT_EQ(s.balance(0), msec(12));
  s.set_cap(0, 10.0);
  EXPECT_EQ(s.balance(0), common::usec(4500));  // 1.5 periods at 10 %
}

TEST(CreditSchedulerTest, PasStyleCompensatedCapAboveHundred) {
  // §4.2: at low frequency the sum of caps may exceed 100 %.
  CreditScheduler s;
  s.add_vm(0, vm_cfg(70.0));
  s.charge(0, msec(21));  // burn the initial refill
  s.set_cap(0, 116.7);
  s.account(msec(30));
  // One refill at the compensated cap: 116.7 % of 30 ms.
  EXPECT_NEAR(static_cast<double>(s.balance(0).us()), 35'010.0, 30.0);
}

TEST(CreditSchedulerTest, RejectsBadInput) {
  CreditScheduler s;
  EXPECT_THROW(s.add_vm(3, vm_cfg(10.0)), std::invalid_argument);
  s.add_vm(0, vm_cfg(10.0));
  EXPECT_THROW(s.set_cap(0, -1.0), std::invalid_argument);
  EXPECT_THROW(s.add_vm(1, vm_cfg(-5.0)), std::invalid_argument);
  CreditSchedulerConfig bad;
  bad.accounting_period = SimTime{};
  EXPECT_THROW(CreditScheduler{bad}, std::invalid_argument);
}

TEST(CreditSchedulerTest, LongRunShareMatchesCap) {
  // End-to-end via the host: two thrashing VMs split 20/70 proportionally.
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<CreditScheduler>()};
  host.add_vm(vm_cfg(20.0), std::make_unique<wl::BusyLoop>());
  host.add_vm(vm_cfg(70.0), std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(100));
  EXPECT_NEAR(host.vm(0).total_busy.sec(), 20.0, 1.0);
  EXPECT_NEAR(host.vm(1).total_busy.sec(), 70.0, 1.0);
  EXPECT_NEAR(host.idle_time().sec(), 10.0, 1.0);
}

}  // namespace
}  // namespace pas::sched
