#include "cpu/power_model.hpp"

#include <gtest/gtest.h>

namespace pas::cpu {
namespace {

TEST(PowerModelTest, IdlePowerAtZeroUtil) {
  const PowerModel pm{40.0, 100.0, 3.0};
  EXPECT_DOUBLE_EQ(pm.power_watts(1.0, 0.0), 40.0);
  EXPECT_DOUBLE_EQ(pm.power_watts(0.5, 0.0), 40.0);
}

TEST(PowerModelTest, FullPowerAtMaxFreqFullUtil) {
  const PowerModel pm{40.0, 100.0, 3.0};
  EXPECT_DOUBLE_EQ(pm.power_watts(1.0, 1.0), 100.0);
}

TEST(PowerModelTest, CubicFrequencyScaling) {
  const PowerModel pm{40.0, 100.0, 3.0};
  // At half frequency, dynamic power is (1/2)^3 = 1/8 of 60 W.
  EXPECT_NEAR(pm.power_watts(0.5, 1.0), 40.0 + 60.0 / 8.0, 1e-9);
}

TEST(PowerModelTest, LinearUtilScaling) {
  const PowerModel pm{40.0, 100.0, 3.0};
  EXPECT_NEAR(pm.power_watts(1.0, 0.5), 70.0, 1e-9);
}

TEST(PowerModelTest, EnergyIntegratesPower) {
  const PowerModel pm{40.0, 100.0, 3.0};
  EXPECT_NEAR(pm.energy_joules(common::seconds(10), 1.0, 1.0), 1000.0, 1e-9);
  EXPECT_NEAR(pm.energy_joules(common::msec(500), 1.0, 0.0), 20.0, 1e-9);
}

TEST(PowerModelTest, LowerFrequencySavesEnergyOnFixedUtil) {
  const PowerModel pm = PowerModel::desktop_2008();
  const double high = pm.power_watts(1.0, 0.5);
  const double low = pm.power_watts(0.6, 0.5);
  EXPECT_LT(low, high);
}

TEST(PowerModelTest, Desktop2008Defaults) {
  const PowerModel pm = PowerModel::desktop_2008();
  EXPECT_DOUBLE_EQ(pm.idle_watts(), 45.0);
  EXPECT_DOUBLE_EQ(pm.busy_max_watts(), 105.0);
  EXPECT_DOUBLE_EQ(pm.alpha(), 3.0);
}

}  // namespace
}  // namespace pas::cpu
