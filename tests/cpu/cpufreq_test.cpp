#include "cpu/cpufreq.hpp"

#include <gtest/gtest.h>

namespace pas::cpu {
namespace {

struct CpufreqTest : ::testing::Test {
  CpuModel cpu{FrequencyLadder::paper_default()};
  Cpufreq freq{cpu, common::usec(50)};
};

TEST_F(CpufreqTest, RequestSwitchesState) {
  EXPECT_EQ(freq.request(0), 0u);
  EXPECT_EQ(cpu.current_index(), 0u);
  EXPECT_EQ(freq.current_freq(), common::mhz(1600));
  EXPECT_EQ(freq.transition_count(), 1u);
}

TEST_F(CpufreqTest, NoOpRequestNotCounted) {
  freq.request(cpu.current_index());
  EXPECT_EQ(freq.transition_count(), 0u);
}

TEST_F(CpufreqTest, StolenTimeAccumulates) {
  freq.request(0);
  freq.request(4);
  EXPECT_EQ(freq.transition_count(), 2u);
  EXPECT_EQ(freq.stolen_time(), common::usec(100));
}

TEST_F(CpufreqTest, FloorClampsRequests) {
  freq.set_floor(2);
  EXPECT_EQ(freq.request(0), 2u);
  EXPECT_EQ(cpu.current_index(), 2u);
}

TEST_F(CpufreqTest, SettingFloorAboveCurrentRaisesFrequency) {
  freq.request(0);
  freq.set_floor(3);
  EXPECT_EQ(cpu.current_index(), 3u);
}

TEST_F(CpufreqTest, CeilingClampsRequests) {
  freq.set_ceiling(1);
  EXPECT_EQ(cpu.current_index(), 1u);  // was at max, pulled down
  EXPECT_EQ(freq.request(4), 1u);
}

TEST_F(CpufreqTest, FloorCeilingInteraction) {
  freq.set_floor(2);
  freq.set_ceiling(1);  // ceiling below floor: floor follows down
  EXPECT_EQ(freq.floor(), 1u);
  EXPECT_EQ(freq.ceiling(), 1u);
  EXPECT_EQ(freq.request(4), 1u);
}

TEST_F(CpufreqTest, LadderAccessor) {
  EXPECT_EQ(freq.ladder().size(), 5u);
  EXPECT_EQ(freq.current_index(), 4u);
}

}  // namespace
}  // namespace pas::cpu
