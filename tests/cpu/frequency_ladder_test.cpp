#include "cpu/frequency_ladder.hpp"

#include <gtest/gtest.h>

namespace pas::cpu {
namespace {

TEST(FrequencyLadderTest, PaperDefault) {
  const auto ladder = FrequencyLadder::paper_default();
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_EQ(ladder.min().freq, common::mhz(1600));
  EXPECT_EQ(ladder.max().freq, common::mhz(2667));
  EXPECT_EQ(ladder.max_index(), 4u);
  for (std::size_t i = 0; i < ladder.size(); ++i) EXPECT_DOUBLE_EQ(ladder.at(i).cf, 1.0);
}

TEST(FrequencyLadderTest, Ratio) {
  const auto ladder = FrequencyLadder::paper_default();
  EXPECT_NEAR(ladder.ratio(0), 1600.0 / 2667.0, 1e-12);
  EXPECT_DOUBLE_EQ(ladder.ratio(4), 1.0);
}

TEST(FrequencyLadderTest, CapacityPct) {
  const FrequencyLadder ladder{{PState{common::mhz(1000), 0.9}, PState{common::mhz(2000), 1.0}}};
  EXPECT_NEAR(ladder.capacity_pct(0), 0.5 * 100.0 * 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(ladder.capacity_pct(1), 100.0);
}

TEST(FrequencyLadderTest, IndexOf) {
  const auto ladder = FrequencyLadder::paper_default();
  EXPECT_EQ(ladder.index_of(common::mhz(2133)), 2u);
  EXPECT_THROW((void)ladder.index_of(common::mhz(1)), std::invalid_argument);
}

TEST(FrequencyLadderTest, RejectsEmpty) {
  EXPECT_THROW(FrequencyLadder{std::vector<PState>{}}, std::invalid_argument);
}

TEST(FrequencyLadderTest, RejectsUnordered) {
  EXPECT_THROW(FrequencyLadder({PState{common::mhz(2000), 1.0}, PState{common::mhz(1000), 1.0}}),
               std::invalid_argument);
}

TEST(FrequencyLadderTest, RejectsDuplicates) {
  EXPECT_THROW(FrequencyLadder({PState{common::mhz(1000), 1.0}, PState{common::mhz(1000), 1.0}}),
               std::invalid_argument);
}

TEST(FrequencyLadderTest, RejectsBadCf) {
  EXPECT_THROW(FrequencyLadder({PState{common::mhz(1000), 0.0}}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({PState{common::mhz(1000), -1.0}}), std::invalid_argument);
}

TEST(FrequencyLadderTest, RejectsNonPositiveFrequency) {
  EXPECT_THROW(FrequencyLadder({PState{common::mhz(0), 1.0}}), std::invalid_argument);
}

TEST(FrequencyLadderTest, SingleState) {
  const FrequencyLadder ladder{{PState{common::mhz(2400), 1.0}}};
  EXPECT_EQ(ladder.size(), 1u);
  EXPECT_DOUBLE_EQ(ladder.ratio(0), 1.0);
  EXPECT_EQ(&ladder.min(), &ladder.max());
}

}  // namespace
}  // namespace pas::cpu
