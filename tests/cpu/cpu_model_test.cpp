#include "cpu/cpu_model.hpp"

#include <gtest/gtest.h>

namespace pas::cpu {
namespace {

using common::msec;
using common::usec;

TEST(CpuModelTest, StartsAtMaxState) {
  CpuModel cpu{FrequencyLadder::paper_default()};
  EXPECT_EQ(cpu.current_index(), 4u);
  EXPECT_EQ(cpu.current_freq(), common::mhz(2667));
  EXPECT_DOUBLE_EQ(cpu.speed(), 1.0);
}

TEST(CpuModelTest, SpeedFollowsRatioAndCf) {
  CpuModel cpu{FrequencyLadder{{PState{common::mhz(1500), 0.9}, PState{common::mhz(3000), 1.0}}}};
  cpu.set_index(0);
  EXPECT_NEAR(cpu.speed(), 0.5 * 0.9, 1e-12);
  EXPECT_NEAR(cpu.current_ratio(), 0.5, 1e-12);
  EXPECT_NEAR(cpu.current_cf(), 0.9, 1e-12);
}

TEST(CpuModelTest, WorkForScalesWithSpeed) {
  CpuModel cpu{FrequencyLadder::uniform({1500, 3000})};
  EXPECT_DOUBLE_EQ(cpu.work_for(msec(10)).mfus(), 10'000.0);
  cpu.set_index(0);
  EXPECT_DOUBLE_EQ(cpu.work_for(msec(10)).mfus(), 5'000.0);
}

TEST(CpuModelTest, TimeForInvertsWorkFor) {
  CpuModel cpu{FrequencyLadder::uniform({1500, 3000})};
  cpu.set_index(0);
  const common::Work w = cpu.work_for(msec(10));
  EXPECT_EQ(cpu.time_for(w), msec(10));
}

TEST(CpuModelTest, TimeForRoundsUp) {
  CpuModel cpu{FrequencyLadder::uniform({3000})};
  // 1.5 us of work at speed 1 -> 2 us (never under-charge busy time).
  EXPECT_EQ(cpu.time_for(common::mf_usec(1.5)), usec(2));
  EXPECT_EQ(cpu.time_for(common::Work{}), usec(0));
}

TEST(CpuModelTest, SpeedOverrideWins) {
  CpuModel cpu{FrequencyLadder::uniform({1500, 3000})};
  cpu.set_speed_override([](std::size_t i) { return i == 1 ? 1.0 : 0.4; });
  cpu.set_index(0);
  EXPECT_DOUBLE_EQ(cpu.speed(), 0.4);
  EXPECT_DOUBLE_EQ(cpu.work_for(msec(10)).mfus(), 4000.0);
  cpu.set_index(1);
  EXPECT_DOUBLE_EQ(cpu.speed(), 1.0);
}

TEST(CpuModelTest, RoundTripAcrossAllPaperStates) {
  CpuModel cpu{FrequencyLadder::paper_default()};
  for (std::size_t i = 0; i < cpu.ladder().size(); ++i) {
    cpu.set_index(i);
    const common::Work w = cpu.work_for(common::seconds(1));
    const common::SimTime t = cpu.time_for(w);
    EXPECT_NEAR(static_cast<double>(t.us()), 1e6, 2.0) << "state " << i;
  }
}

}  // namespace
}  // namespace pas::cpu
