// Randomized differential test: the cluster layer must keep PR 1's
// fast-path equivalence guarantee as scenarios grow hosts, migrations and
// an online manager. Each seeded scenario is built twice — once with the
// event-driven fast path, once with the reference slow-stepped loop — and
// every observable must match byte for byte: per-host traces (every row,
// every column), integer accounting (busy/work/wanting per slot, idle
// time, frequency transitions), migration records (timelines, rounds,
// credit carried), residencies and cluster SLA counters. Scenario shapes
// cover random VM counts and workload mixes, random migration cadences
// (manager-driven and scripted), off-grid monitor/trace/manager periods,
// and all three schedulers.
//
// The scenario generator and comparison live in cluster_fuzz_common.hpp,
// shared with cluster_parallel_test.cpp (parallel ≡ serial over the same
// seeds).
#include <gtest/gtest.h>

#include "cluster_fuzz_common.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

void run_seed_range(std::uint64_t first, std::uint64_t count) {
  std::size_t total_migrations = 0;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed);
    auto slow = build_cluster(spec, /*fast_path=*/false);
    auto fast = build_cluster(spec, /*fast_path=*/true);
    run_spec(*slow, spec);
    run_spec(*fast, spec);
    expect_identical(*slow, *fast, seed, "slow vs fast");
    if (::testing::Test::HasFatalFailure()) return;
    total_migrations += slow->migrations().size();
  }
  // Guard against a vacuous shard: the random scenarios must actually
  // exercise the machinery under test.
  EXPECT_GT(total_migrations, count / 2) << "too few migrations across seeds";
}

// 100 scenarios, sharded so a failure names a narrow seed range and ctest
// can parallelize the work.
TEST(ClusterFuzzTest, FastPathIdenticalSeeds0to24) { run_seed_range(0, 25); }
TEST(ClusterFuzzTest, FastPathIdenticalSeeds25to49) { run_seed_range(25, 25); }
TEST(ClusterFuzzTest, FastPathIdenticalSeeds50to74) { run_seed_range(50, 25); }
TEST(ClusterFuzzTest, FastPathIdenticalSeeds75to99) { run_seed_range(75, 25); }

}  // namespace
}  // namespace pas::cluster
