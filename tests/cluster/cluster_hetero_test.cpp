// Heterogeneous-fleet determinism: mixed platform classes (different
// ladders, power models, memory sizes, NUMA layouts per host) must not
// cost a single byte of reproducibility. Same harness as the uniform
// suites, with draw_scenario(seed, /*hetero=*/true) assigning each host a
// class from the platform catalog:
//
//   * parallel ≡ serial at threads in {1, 2, 4, hardware} (contract 3),
//   * fast path ≡ reference slow-stepped loop (contract 1),
//
// both swept over seeded random mixed fleets with managers (efficient-
// first FFD against per-class HostSpecs), live migrations between hosts of
// DIFFERENT classes, VOVO and per-host PAS on per-class ladders — the xeon
// class's cf < 1 states included.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cluster_fuzz_common.hpp"
#include "common/thread_pool.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

std::vector<std::size_t> sweep_thread_counts() {
  std::vector<std::size_t> counts{2, 4, common::ThreadPool::hardware_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  counts.erase(std::remove(counts.begin(), counts.end(), std::size_t{1}), counts.end());
  return counts;
}

void run_seed_range(std::uint64_t first, std::uint64_t count) {
  const std::vector<std::size_t> thread_counts = sweep_thread_counts();
  std::size_t total_migrations = 0;
  std::size_t mixed_scenarios = 0;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed, /*hetero=*/true);
    ASSERT_EQ(spec.classes.size(), spec.hosts) << "seed " << seed;
    std::set<std::string> class_names;
    for (const auto& c : spec.classes) class_names.insert(c.name);
    if (class_names.size() > 1) ++mixed_scenarios;

    auto serial = build_cluster(spec, /*fast_path=*/true, /*threads=*/1);
    run_spec(*serial, spec);
    for (const std::size_t threads : thread_counts) {
      auto parallel = build_cluster(spec, /*fast_path=*/true, threads);
      run_spec(*parallel, spec);
      expect_identical(*serial, *parallel, seed,
                       "hetero serial vs " + std::to_string(threads) + " threads");
      if (::testing::Test::HasFatalFailure()) return;
    }
    total_migrations += serial->migrations().size();
  }
  // Vacuity guards: the sweep must exercise genuinely mixed fleets with
  // real migrations, not uniform or idle ones.
  EXPECT_GT(mixed_scenarios, count / 2) << "catalog draws barely mixed the fleets";
  EXPECT_GT(total_migrations, count / 2) << "too few migrations across seeds";
}

TEST(ClusterHeteroTest, ParallelIdenticalSeeds0to24) { run_seed_range(0, 25); }
TEST(ClusterHeteroTest, ParallelIdenticalSeeds25to49) { run_seed_range(25, 25); }

// Contract 1 on mixed fleets: the event-driven fast path reproduces the
// reference slow-stepped loop byte for byte when every host is a
// different machine.
TEST(ClusterHeteroTest, FastPathIdenticalSeeds0to14) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed, /*hetero=*/true);
    auto slow = build_cluster(spec, /*fast_path=*/false, /*threads=*/1);
    auto fast = build_cluster(spec, /*fast_path=*/true, /*threads=*/1);
    run_spec(*slow, spec);
    run_spec(*fast, spec);
    expect_identical(*slow, *fast, seed, "hetero slow vs fast");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A class list and a uniform scalar must not silently contradict each
// other: whichever one the caller did NOT mean loses loudly.
TEST(ClusterHeteroTest, RejectsContradictoryUniformScalars) {
  {
    ClusterConfig cc;
    cc.host_classes = platform::mixed_fleet_classes(3);
    cc.host_count = 2;  // disagrees with the 3-entry list
    EXPECT_THROW((void)Cluster{std::move(cc)}, std::invalid_argument);
  }
  {
    ClusterConfig cc;
    cc.host_classes = platform::mixed_fleet_classes(3);
    cc.host_memory_mb = 8192.0;  // memory belongs to the classes
    EXPECT_THROW((void)Cluster{std::move(cc)}, std::invalid_argument);
  }
  {
    ClusterConfig cc;  // neither classes nor a host count
    EXPECT_THROW((void)Cluster{std::move(cc)}, std::invalid_argument);
  }
  {
    ClusterConfig cc;  // consistent: count matches the list
    cc.host_classes = platform::mixed_fleet_classes(3);
    cc.host_count = 3;
    EXPECT_NO_THROW((void)Cluster{std::move(cc)});
  }
}

// The per-host classes really land on the hosts: ladders and memory match
// the drawn class, and the manager's planner sees the per-class memory
// (cluster.host_memory_mb) rather than one template scalar.
TEST(ClusterHeteroTest, HostsBuiltFromTheirClasses) {
  const ScenarioSpec spec = draw_scenario(7, /*hetero=*/true);
  auto cluster = build_cluster(spec, /*fast_path=*/true, /*threads=*/1);
  for (HostId h = 0; h < cluster->host_count(); ++h) {
    const platform::HostClass& cls = cluster->host_class(h);
    EXPECT_EQ(cls.name, spec.classes[h].name) << "host " << h;
    ASSERT_EQ(cluster->host(h).cpu().ladder().size(), cls.ladder.size()) << "host " << h;
    for (std::size_t i = 0; i < cls.ladder.size(); ++i) {
      EXPECT_EQ(cluster->host(h).cpu().ladder().at(i).freq, cls.ladder.at(i).freq)
          << "host " << h << " state " << i;
      EXPECT_EQ(cluster->host(h).cpu().ladder().at(i).cf, cls.ladder.at(i).cf)
          << "host " << h << " state " << i;
    }
    EXPECT_EQ(cluster->host_memory_mb(h), cls.memory_mb) << "host " << h;
  }
}

}  // namespace
}  // namespace pas::cluster
