// Unit tests for summarize_recoveries — the crash-recovery SLO aggregation
// (orphan → running latency) behind the chaos bench's recovery_latency_*
// fields. The p50 is the lower-median nearest-rank percentile: always an
// actually-occurred latency, byte-stable for the bench's JSON, never an
// interpolated average.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"

namespace pas::cluster {
namespace {

using common::msec;
using common::seconds;
using common::SimTime;

VmRecovery rec(GlobalVmId vm, SimTime crashed_at, SimTime restarted_at) {
  return VmRecovery{vm, crashed_at, restarted_at};
}

TEST(RecoveryStatsTest, EmptyIsAllZero) {
  const RecoveryStats s = summarize_recoveries({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, SimTime{});
  EXPECT_EQ(s.max, SimTime{});
  EXPECT_DOUBLE_EQ(s.mean_s, 0.0);
}

TEST(RecoveryStatsTest, SingleRecoveryIsItsOwnEverything) {
  const RecoveryStats s = summarize_recoveries({rec(3, seconds(10), seconds(14))});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.p50, seconds(4));
  EXPECT_EQ(s.max, seconds(4));
  EXPECT_DOUBLE_EQ(s.mean_s, 4.0);
}

TEST(RecoveryStatsTest, OddCountPicksTheMiddleLatency) {
  // Latencies 2s, 6s, 10s -> p50 is the middle one, not the 6s mean trap.
  const RecoveryStats s = summarize_recoveries({
      rec(0, seconds(10), seconds(12)),
      rec(1, seconds(20), seconds(26)),
      rec(2, seconds(30), seconds(40)),
  });
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.p50, seconds(6));
  EXPECT_EQ(s.max, seconds(10));
  EXPECT_DOUBLE_EQ(s.mean_s, 6.0);
}

TEST(RecoveryStatsTest, EvenCountTakesTheLowerMedian) {
  // Latencies 1s, 3s, 5s, 7s -> nearest-rank lower median is 3s (an
  // occurred value), NOT the interpolated 4s.
  const RecoveryStats s = summarize_recoveries({
      rec(0, seconds(0), seconds(1)),
      rec(1, seconds(0), seconds(3)),
      rec(2, seconds(0), seconds(5)),
      rec(3, seconds(0), seconds(7)),
  });
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.p50, seconds(3));
  EXPECT_EQ(s.max, seconds(7));
  EXPECT_DOUBLE_EQ(s.mean_s, 4.0);
}

TEST(RecoveryStatsTest, UnsortedInputIsSortedByLatency) {
  // Records arrive in recovery order, not latency order; the summary must
  // sort by latency, not trust the input.
  const RecoveryStats s = summarize_recoveries({
      rec(0, seconds(10), seconds(19)),  // 9s
      rec(1, seconds(20), seconds(21)),  // 1s
      rec(2, seconds(30), seconds(35)),  // 5s
  });
  EXPECT_EQ(s.p50, seconds(5));
  EXPECT_EQ(s.max, seconds(9));
  EXPECT_DOUBLE_EQ(s.mean_s, 5.0);
}

TEST(RecoveryStatsTest, SubSecondLatenciesKeepMicrosecondResolution) {
  const RecoveryStats s = summarize_recoveries({
      rec(0, msec(1'000), msec(1'250)),
      rec(1, msec(2'000), msec(2'750)),
      rec(2, msec(3'000), msec(3'500)),
  });
  EXPECT_EQ(s.p50, msec(500));
  EXPECT_EQ(s.max, msec(750));
  EXPECT_DOUBLE_EQ(s.mean_s, 0.5);
}

}  // namespace
}  // namespace pas::cluster
