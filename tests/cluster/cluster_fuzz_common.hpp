// Shared machinery for the cluster differential tests: seeded random
// scenario generation (draw_scenario), cluster construction from a spec
// (build_cluster — fast path and executor-thread count are the knobs the
// tests sweep), scripted execution (run_spec) and the byte-for-byte
// observable comparison (expect_identical).
//
// Used by cluster_fuzz_test.cpp (fast path vs reference loop),
// cluster_parallel_test.cpp (parallel engine vs serial engine, threads in
// {1, 2, 4, hardware}), cluster_hetero_test.cpp (both sweeps over
// mixed-class fleets, draw_scenario(seed, /*hetero=*/true)) and
// cluster_trace_test.cpp (both sweeps with a trace-replay VM mix,
// draw_scenario(seed, hetero, /*trace_mix=*/true)) so the suites pin
// their guarantee over the SAME scenario seeds.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/random.hpp"
#include "platform/host_class.hpp"
#include "sched/credit2_scheduler.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/load_profile.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_replay.hpp"
#include "workload/web_app.hpp"

namespace pas::cluster::fuzz {

/// kTrace is never drawn by the shared prefix (next_below(5) spans the
/// first five) — only the trace_mix re-roll assigns it.
enum class WlKind { kWeb, kHog, kBatch, kIdle, kBusy, kTrace };

struct VmSpecF {
  WlKind kind = WlKind::kIdle;
  double credit = 5.0;
  double memory_mb = 256.0;
  double dirty_mb_per_s = 30.0;
  HostId home = 0;
  // web
  std::uint64_t seed = 1;
  double rate = 1.0;
  bool poisson = true;
  // pulse (web/hog)
  common::SimTime from{}, until{};
  // batch
  common::Work pi_work{};
  common::SimTime pi_start{};
  // trace replay (kind == kTrace only)
  std::vector<wl::TracePoint> trace_points;
};

struct ScriptedMove {
  common::SimTime at{};
  GlobalVmId vm = 0;
  HostId to = 0;
};

struct ScenarioSpec {
  std::size_t hosts = 2;
  int sched = 0;  // 0 credit, 1 credit2, 2 sedf
  /// Migration model knobs (defaults = the production config). Never drawn
  /// by draw_scenario — historical seeds are untouched — but the chaos
  /// suite overrides the link bandwidth downward so migrations stay in
  /// flight long enough for injected faults to catch them mid-phase.
  MigrationConfig migration;
  common::SimTime horizon{};
  common::SimTime trace_stride{};
  common::SimTime monitor_window{};
  /// Per-host platform classes; empty = the uniform template fleet. Only
  /// populated by draw_scenario(seed, /*hetero=*/true).
  std::vector<platform::HostClass> classes;
  std::vector<VmSpecF> vms;
  bool use_manager = false;
  ClusterManagerConfig mgr;
  std::vector<ScriptedMove> script;
};

/// Size knob for draw_scenario: extra hosts and VMs appended on top of the
/// historical 2..4-host / 3..10-VM draw. All extension draws happen after
/// EVERY historical draw, so for any (seed, hetero, trace_mix) the sized
/// scenario extends the unsized one — same hosts prefix, same classes
/// prefix, same VMs prefix, same manager and script — a property
/// ClusterScaleTest.SizeKnobPreservesHistoricalPrefix pins.
struct ScenarioSize {
  std::size_t hosts = 0;  ///< hosts appended beyond the drawn base fleet
  std::size_t vms = 0;    ///< VMs appended, homed across the FULL fleet
};

/// `hetero` additionally draws each host's platform class from the fleet
/// catalog (ladders, power models, memory and NUMA layout all mixed). The
/// extra draws happen after the shared prefix, so hetero=false reproduces
/// the historical scenarios bit for bit. `trace_mix` re-rolls about half
/// the VMs into wl::TraceReplay over random step-function demand series;
/// those draws are appended after EVERYTHING else (including the hetero
/// block and the migration script), so the historical seeds are again
/// unchanged. `size` scales the fleet afterwards (see ScenarioSize).
inline ScenarioSpec draw_scenario(std::uint64_t seed, bool hetero = false,
                                  bool trace_mix = false,
                                  const ScenarioSize& size = {}) {
  using common::msec;
  using common::seconds;
  using common::SimTime;
  common::Rng rng{seed};
  ScenarioSpec s;
  s.hosts = 2 + rng.next_below(3);                      // 2..4
  s.sched = static_cast<int>(rng.next_below(3));
  if (hetero) {
    const std::vector<platform::HostClass> catalog = platform::fleet_catalog();
    for (std::size_t h = 0; h < s.hosts; ++h)
      s.classes.push_back(catalog[rng.next_below(catalog.size())]);
  }
  const std::int64_t horizon_s = 120 + static_cast<std::int64_t>(rng.next_below(120));
  s.horizon = seconds(horizon_s);
  s.trace_stride = std::vector<SimTime>{seconds(1), msec(1500), seconds(5)}[rng.next_below(3)];
  s.monitor_window = std::vector<SimTime>{seconds(1), msec(730), msec(500)}[rng.next_below(3)];

  const std::size_t vm_count = 3 + rng.next_below(8);   // 3..10
  for (std::size_t i = 0; i < vm_count; ++i) {
    VmSpecF v;
    v.kind = static_cast<WlKind>(rng.next_below(5));
    v.credit = 2.0 + 3.0 * static_cast<double>(rng.next_below(10));  // 2..29
    v.memory_mb = 128.0 * static_cast<double>(1 + rng.next_below(8));
    v.dirty_mb_per_s = 10.0 + 20.0 * static_cast<double>(rng.next_below(10));
    v.home = static_cast<HostId>(rng.next_below(s.hosts));
    v.seed = seed * 131 + i;
    v.poisson = rng.chance(0.5);
    const auto from_s = static_cast<std::int64_t>(rng.next_below(horizon_s / 2));
    const auto len_s = 10 + static_cast<std::int64_t>(rng.next_below(horizon_s / 2));
    v.from = seconds(from_s);
    v.until = seconds(from_s + len_s);
    v.rate = wl::WebApp::rate_for_demand(std::min(v.credit, 15.0),
                                         common::mf_usec(10'000)) *
             rng.uniform(0.5, 1.5);
    v.pi_work = common::mf_seconds(rng.uniform(0.5, 4.0));
    v.pi_start = seconds(static_cast<std::int64_t>(rng.next_below(horizon_s / 2)));
    s.vms.push_back(v);
  }

  s.use_manager = rng.chance(0.7);
  if (s.use_manager) {
    s.mgr.period = std::vector<SimTime>{seconds(10), msec(7300), seconds(25)}[rng.next_below(3)];
    s.mgr.max_migrations_per_tick = 1 + rng.next_below(4);
    s.mgr.dvfs = rng.chance(0.7) ? ClusterManagerConfig::Dvfs::kPas
                                 : ClusterManagerConfig::Dvfs::kPinnedMax;
    s.mgr.vovo = rng.chance(0.8);
  }
  // Scripted migrations on top (or instead) of the manager's: random VMs
  // to random hosts at random instants.
  const std::size_t moves = rng.next_below(4) + (s.use_manager ? 0 : 1);
  for (std::size_t m = 0; m < moves; ++m) {
    ScriptedMove mv;
    mv.at = seconds(5 + static_cast<std::int64_t>(rng.next_below(horizon_s - 10)));
    mv.vm = static_cast<GlobalVmId>(rng.next_below(vm_count));
    mv.to = static_cast<HostId>(rng.next_below(s.hosts));
    s.script.push_back(mv);
  }
  std::sort(s.script.begin(), s.script.end(),
            [](const ScriptedMove& a, const ScriptedMove& b) { return a.at < b.at; });

  if (trace_mix) {
    for (VmSpecF& v : s.vms) {
      if (!rng.chance(0.5)) continue;
      v.kind = WlKind::kTrace;
      // A random step series: 2..7 demand intervals with off-grid
      // timestamps (microsecond jitter — trace points owe the quantum
      // grid nothing), zero-demand gaps mixed in, closed by a final
      // demand-0 point. Some series intentionally run past the horizon.
      const std::size_t intervals = 2 + rng.next_below(6);
      std::int64_t t_us = static_cast<std::int64_t>(rng.next_below(
                              static_cast<std::uint64_t>(horizon_s / 3))) *
                              1'000'000 +
                          static_cast<std::int64_t>(rng.next_below(1'000'000));
      v.trace_points.clear();
      for (std::size_t p = 0; p < intervals; ++p) {
        const double demand = rng.chance(0.3) ? 0.0 : rng.uniform(1.0, 60.0);
        v.trace_points.push_back({common::usec(t_us), demand, 0.0});
        t_us += 1'000'000 +
                static_cast<std::int64_t>(rng.next_below(
                    static_cast<std::uint64_t>(horizon_s) * 1'000'000 / 4));
      }
      v.trace_points.push_back({common::usec(t_us), 0.0, 0.0});
    }
  }

  if (size.hosts > 0 || size.vms > 0) {
    // Scale extension: appended after the whole historical sequence
    // (including the trace_mix re-roll) so pinned seeds stay bit-identical
    // as a prefix of the sized scenario.
    const std::size_t first_extra = s.hosts;
    s.hosts += size.hosts;
    if (hetero) {
      const std::vector<platform::HostClass> catalog = platform::fleet_catalog();
      for (std::size_t h = first_extra; h < s.hosts; ++h)
        s.classes.push_back(catalog[rng.next_below(catalog.size())]);
    }
    for (std::size_t i = 0; i < size.vms; ++i) {
      VmSpecF v;
      v.kind = static_cast<WlKind>(rng.next_below(5));
      v.credit = 2.0 + 3.0 * static_cast<double>(rng.next_below(10));
      v.memory_mb = 128.0 * static_cast<double>(1 + rng.next_below(8));
      v.dirty_mb_per_s = 10.0 + 20.0 * static_cast<double>(rng.next_below(10));
      v.home = static_cast<HostId>(rng.next_below(s.hosts));  // full fleet
      v.seed = seed * 131 + s.vms.size();
      v.poisson = rng.chance(0.5);
      const auto from_s = static_cast<std::int64_t>(rng.next_below(horizon_s / 2));
      const auto len_s = 10 + static_cast<std::int64_t>(rng.next_below(horizon_s / 2));
      v.from = seconds(from_s);
      v.until = seconds(from_s + len_s);
      v.rate = wl::WebApp::rate_for_demand(std::min(v.credit, 15.0),
                                           common::mf_usec(10'000)) *
               rng.uniform(0.5, 1.5);
      v.pi_work = common::mf_seconds(rng.uniform(0.5, 4.0));
      v.pi_start = seconds(static_cast<std::int64_t>(rng.next_below(horizon_s / 2)));
      s.vms.push_back(v);
    }
  }
  return s;
}

/// `threads` feeds cluster::ExecutionPolicy: 1 = serial driver, >1 = the
/// pooled parallel driver (0 = hardware concurrency).
inline std::unique_ptr<Cluster> build_cluster(const ScenarioSpec& s, bool fast_path,
                                              std::size_t threads = 1) {
  ClusterConfig cc;
  if (s.classes.empty())
    cc.host_count = s.hosts;
  else
    cc.host_classes = s.classes;
  cc.host.trace_stride = s.trace_stride;
  cc.host.monitor_window = s.monitor_window;
  cc.host.event_driven_fast_path = fast_path;
  cc.execution.threads = threads;
  cc.migration = s.migration;
  cc.make_scheduler = [kind = s.sched]() -> std::unique_ptr<hv::Scheduler> {
    switch (kind) {
      case 1: return std::make_unique<sched::Credit2Scheduler>();
      case 2: return std::make_unique<sched::SedfScheduler>();
      default: return std::make_unique<sched::CreditScheduler>();
    }
  };
  auto cluster = std::make_unique<Cluster>(std::move(cc));

  for (std::size_t i = 0; i < s.vms.size(); ++i) {
    const VmSpecF& v = s.vms[i];
    ClusterVmConfig vc;
    vc.vm.name = "vm" + std::to_string(i);
    vc.vm.credit = v.credit;
    vc.memory_mb = v.memory_mb;
    vc.dirty_mb_per_s = v.dirty_mb_per_s;
    std::unique_ptr<wl::Workload> workload;
    switch (v.kind) {
      case WlKind::kWeb: {
        wl::WebAppConfig wc;
        wc.seed = v.seed;
        wc.poisson = v.poisson;
        wc.queue_capacity = 300;
        workload = std::make_unique<wl::WebApp>(
            wl::LoadProfile::pulse(v.from, v.until, v.rate), wc);
        break;
      }
      case WlKind::kHog:
        workload = std::make_unique<wl::GatedBusyLoop>(
            wl::LoadProfile::pulse(v.from, v.until, 1.0));
        break;
      case WlKind::kBatch:
        workload = std::make_unique<wl::PiApp>(v.pi_work, v.pi_start);
        break;
      case WlKind::kBusy:
        workload = std::make_unique<wl::BusyLoop>();
        break;
      case WlKind::kIdle:
        workload = std::make_unique<wl::IdleGuest>();
        break;
      case WlKind::kTrace:
        workload = std::make_unique<wl::TraceReplay>(
            wl::Trace{v.trace_points, "fuzz" + std::to_string(i)});
        break;
    }
    cluster->add_vm(std::move(vc), std::move(workload), v.home);
  }
  if (s.use_manager)
    cluster->install_manager(std::make_unique<ClusterManager>(s.mgr));
  return cluster;
}

inline void run_spec(Cluster& cluster, const ScenarioSpec& s) {
  for (const ScriptedMove& mv : s.script) {
    cluster.run_until(mv.at);
    (void)cluster.migrate(mv.vm, mv.to);  // may be refused; identically so
  }
  cluster.run_until(s.horizon);
}

/// Asserts every observable of `b` matches `a` byte for byte: per-host
/// traces (every row, every column), integer accounting, frequency
/// transitions, migration records, residencies, SLA counters, power
/// states, energy. `label` names the comparison in failure messages.
inline void expect_identical(Cluster& a, Cluster& b, std::uint64_t seed,
                             const std::string& label = {}) {
  const std::string ctx = "seed " + std::to_string(seed) + (label.empty() ? "" : " " + label);
  for (HostId h = 0; h < a.host_count(); ++h) {
    hv::Host& ha = a.host(h);
    hv::Host& hb = b.host(h);
    const auto sa = ha.trace().samples();
    const auto sb = hb.trace().samples();
    ASSERT_EQ(sa.size(), sb.size()) << ctx << " host " << h;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const auto ra = sa[i];
      const auto rb = sb[i];
      ASSERT_EQ(ra.t, rb.t) << ctx << " host " << h << " row " << i;
      ASSERT_EQ(ra.freq_mhz, rb.freq_mhz) << ctx << " host " << h << " row " << i;
      ASSERT_EQ(ra.global_load_pct, rb.global_load_pct)
          << ctx << " host " << h << " row " << i;
      ASSERT_EQ(ra.absolute_load_pct, rb.absolute_load_pct)
          << ctx << " host " << h << " row " << i;
      for (std::size_t v = 0; v < ha.vm_count(); ++v) {
        ASSERT_EQ(ra.vm_global_pct[v], rb.vm_global_pct[v])
            << ctx << " host " << h << " row " << i << " vm " << v;
        ASSERT_EQ(ra.vm_absolute_pct[v], rb.vm_absolute_pct[v])
            << ctx << " host " << h << " row " << i << " vm " << v;
        ASSERT_EQ(ra.vm_credit_pct[v], rb.vm_credit_pct[v])
            << ctx << " host " << h << " row " << i << " vm " << v;
        ASSERT_EQ(ra.vm_saturated[v], rb.vm_saturated[v])
            << ctx << " host " << h << " row " << i << " vm " << v;
      }
    }
    ASSERT_EQ(ha.idle_time(), hb.idle_time()) << ctx << " host " << h;
    ASSERT_EQ(ha.cpufreq().transition_count(), hb.cpufreq().transition_count())
        << ctx << " host " << h;
    for (common::VmId v = 0; v < ha.vm_count(); ++v) {
      ASSERT_EQ(ha.vm(v).total_busy, hb.vm(v).total_busy)
          << ctx << " host " << h << " vm " << v;
      ASSERT_EQ(ha.vm(v).total_work, hb.vm(v).total_work)
          << ctx << " host " << h << " vm " << v;
      ASSERT_EQ(ha.vm(v).window_wanting, hb.vm(v).window_wanting)
          << ctx << " host " << h << " vm " << v;
    }
    ASSERT_NEAR(ha.energy().joules(), hb.energy().joules(),
                1e-9 * (ha.energy().joules() + 1.0))
        << ctx << " host " << h;
  }

  // Cluster-level observables: migrations happened at the same instants
  // with the same cost structure, residencies and SLA counters agree.
  const auto& ma = a.migrations();
  const auto& mb = b.migrations();
  ASSERT_EQ(ma.size(), mb.size()) << ctx;
  for (std::size_t i = 0; i < ma.size(); ++i) {
    ASSERT_EQ(ma[i].vm, mb[i].vm) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].from, mb[i].from) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].to, mb[i].to) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].start, mb[i].start) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].stop, mb[i].stop) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].end, mb[i].end) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].rounds, mb[i].rounds) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].transferred_mb, mb[i].transferred_mb) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].downtime, mb[i].downtime) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].outcome, mb[i].outcome) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].credit_exported, mb[i].credit_exported) << ctx << " migration " << i;
    ASSERT_EQ(ma[i].credit_imported, mb[i].credit_imported) << ctx << " migration " << i;
  }
  // Fault-path observables: crash states, VM lifecycle and recovery events
  // must replay identically too (all zero/empty in fault-free scenarios).
  const auto& ra = a.recoveries();
  const auto& rb = b.recoveries();
  ASSERT_EQ(ra.size(), rb.size()) << ctx;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].vm, rb[i].vm) << ctx << " recovery " << i;
    ASSERT_EQ(ra[i].crashed_at, rb[i].crashed_at) << ctx << " recovery " << i;
    ASSERT_EQ(ra[i].restarted_at, rb[i].restarted_at) << ctx << " recovery " << i;
  }
  for (GlobalVmId gid = 0; gid < a.vm_count(); ++gid) {
    ASSERT_EQ(a.vm_state(gid), b.vm_state(gid)) << ctx << " vm " << gid;
    ASSERT_EQ(a.residence(gid), b.residence(gid)) << ctx << " vm " << gid;
    ASSERT_EQ(a.sla().violation_time(gid), b.sla().violation_time(gid))
        << ctx << " vm " << gid;
    ASSERT_EQ(a.sla().observed_time(gid), b.sla().observed_time(gid))
        << ctx << " vm " << gid;
    ASSERT_EQ(a.vm_stats(gid).downtime, b.vm_stats(gid).downtime)
        << ctx << " vm " << gid;
  }
  for (HostId h = 0; h < a.host_count(); ++h) {
    ASSERT_EQ(a.powered_on(h), b.powered_on(h)) << ctx << " host " << h;
    ASSERT_EQ(a.crashed(h), b.crashed(h)) << ctx << " host " << h;
  }
  ASSERT_NEAR(a.energy_joules(), b.energy_joules(), 1e-9 * (a.energy_joules() + 1.0))
      << ctx;
}

}  // namespace pas::cluster::fuzz
