// Regression suite for delta-driven planning (ClusterManagerConfig::
// incremental): the persistent HostBook plus the unchanged-tick early-out
// must be pure optimizations — every cluster observable (migration
// records, traces, SLA counters, energy) byte-identical to the legacy
// from-scratch replan, while the diagnostics prove the cheap paths
// actually ran (plans skipped, cached/delta plans served, full rebuilds
// confined to host-set changes).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster_fuzz_common.hpp"
#include "platform/host_class.hpp"
#include "workload/synthetic.hpp"

namespace pas::cluster {
namespace {

using common::seconds;
using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

TEST(ClusterIncrementalTest, IncrementalMatchesLegacyAcrossFuzzSeeds) {
  std::size_t total_migrations = 0;
  std::size_t total_skipped = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ScenarioSpec s = draw_scenario(seed, /*hetero=*/seed % 2 == 0);
    if (!s.use_manager) {
      s.use_manager = true;  // the comparison is about the manager
      s.mgr = ClusterManagerConfig{};
      s.mgr.period = seconds(15);
    }
    ScenarioSpec inc = s;
    inc.mgr.incremental = true;
    ScenarioSpec leg = s;
    leg.mgr.incremental = false;

    auto a = build_cluster(inc, /*fast_path=*/true);
    run_spec(*a, inc);
    auto b = build_cluster(leg, /*fast_path=*/true);
    run_spec(*b, leg);
    expect_identical(*a, *b, seed, "incremental vs legacy");
    if (::testing::Test::HasFatalFailure()) return;

    total_migrations += a->manager()->migrations_issued();
    total_skipped += a->manager()->plans_skipped();
    // The legacy manager plans on every tick by definition.
    EXPECT_EQ(b->manager()->plans_skipped(), 0u) << "seed " << seed;
  }
  // Vacuity guards: the sweep exercised real consolidation AND the
  // early-out earned its keep somewhere.
  EXPECT_GT(total_migrations, 10u);
  EXPECT_GT(total_skipped, 0u);
}

TEST(ClusterIncrementalTest, UnchangedTicksSkipThePlannerAndChangeNothing) {
  // Regression for the per-tick full replan: once the fleet matches the
  // plan and nothing moves, consolidation passes must be skipped outright
  // — and skipping must be invisible in every observable. The
  // replan_every_tick debug knob is the control group.
  ScenarioSpec s = draw_scenario(11);
  s.use_manager = true;
  s.mgr = ClusterManagerConfig{};
  s.mgr.period = seconds(10);
  s.script.clear();  // manager-only: every migration is the planner's
  ScenarioSpec dbg = s;
  dbg.mgr.replan_every_tick = true;

  auto skipping = build_cluster(s, /*fast_path=*/true);
  run_spec(*skipping, s);
  auto replanning = build_cluster(dbg, /*fast_path=*/true);
  run_spec(*replanning, dbg);

  expect_identical(*skipping, *replanning, 11, "early-out vs replan-every-tick");
  const ClusterManager& m = *skipping->manager();
  EXPECT_GT(m.plans_skipped(), 0u);
  EXPECT_EQ(replanning->manager()->plans_skipped(), 0u);
  // Skipped + planned covers exactly the ticks the control group planned.
  EXPECT_EQ(m.plans_skipped() + m.planning_ticks(),
            replanning->manager()->planning_ticks());
  // The early-out is strictly cheaper, not just equal.
  EXPECT_LT(m.planning_ticks(), replanning->manager()->planning_ticks());
}

TEST(ClusterIncrementalTest, CrashAndRecoveryDriveFallbackAndDeltaPaths) {
  // A host crash must fall the book back to a full rebuild (the host set
  // changed); a later successful restart is a pure VM-membership change
  // and must be served by the delta merge walk. Timeline engineering: the
  // tick-5 plan consolidates midB onto host 1 over a slow link (100 MB/s →
  // ~6 s in flight), host 0 crashes at t=7, so at the tick-10 crash
  // fallback no host has 1800 MB free (midB still counts on host 2 until
  // its attach at ~11 s) and the orphan's first restart attempt fails. The
  // backoff retry at t=15 lands on the now-empty host 2 — a VM-only
  // mutation on a tick with no host changes, i.e. the delta path.
  platform::HostClass small = platform::optiplex_755();
  small.memory_mb = 2048.0;

  const auto build = [&](bool incremental) {
    ClusterConfig cc;
    cc.host_classes = {small, small, small};
    cc.migration.link_mb_per_s = 100.0;
    ClusterVmConfig giant;
    giant.vm.name = "giant";
    giant.vm.credit = 10.0;
    giant.memory_mb = 1800.0;
    giant.dirty_mb_per_s = 1.0;
    ClusterVmConfig mid = giant;
    mid.vm.name = "mid";
    mid.memory_mb = 600.0;
    auto cluster = std::make_unique<Cluster>(std::move(cc));
    cluster->add_vm(giant, std::make_unique<wl::IdleGuest>(), 0);
    cluster->add_vm(mid, std::make_unique<wl::IdleGuest>(), 1);
    cluster->add_vm(mid, std::make_unique<wl::IdleGuest>(), 2);
    ClusterManagerConfig mc;
    mc.period = seconds(5);
    mc.max_restart_attempts = 3;
    mc.restart_backoff = seconds(5);
    mc.incremental = incremental;
    cluster->install_manager(std::make_unique<ClusterManager>(mc));
    return cluster;
  };

  auto inc = build(true);
  auto leg = build(false);
  for (Cluster* c : {inc.get(), leg.get()}) {
    c->run_until(seconds(7));
    ASSERT_TRUE(c->crash_host(0, /*restart_orphans=*/true));
    c->run_until(seconds(60));
  }
  expect_identical(*inc, *leg, 0, "crash recovery: incremental vs legacy");

  // The recovery actually happened (on both, per the identity above).
  ASSERT_EQ(inc->recoveries().size(), 1u);
  EXPECT_EQ(inc->vm_state(0), VmState::kRunning);

  const consolidation::HostBookStats& st = inc->manager()->book_stats();
  EXPECT_GE(st.full_rebuilds, 2u) << "seed plan + the crash fallback";
  EXPECT_GE(st.delta_plans, 1u) << "the restart tick must delta-plan";
  EXPECT_GT(inc->manager()->plans_skipped(), 0u) << "quiet tail must skip";
}

}  // namespace
}  // namespace pas::cluster
