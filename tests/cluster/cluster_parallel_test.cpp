// The parallel ≡ serial determinism harness: the pooled cluster driver
// (ExecutionPolicy::threads > 1) must be byte-identical to the serial
// engine — traces, migration records, SLA counters, energy totals — at
// ANY thread count, because worker threads only change *where* a host
// segment executes, never *what* it computes (the no-shared-state
// contract hv::Host enforces).
//
// Sweep: the same 100 seeded fuzz scenarios as cluster_fuzz_test.cpp, each
// run on the serial driver (threads = 1, the reference) and re-run with
// threads in {2, 4, hardware}, deduplicated. Together with the fuzz test
// (slow ≡ fast at threads = 1) this closes the square: every (fast-path,
// thread-count) combination produces the one canonical result.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster_fuzz_common.hpp"
#include "common/thread_pool.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

/// {2, 4, hardware} with duplicates and the serial case removed (on a
/// 2-core box hardware == 2; threads == 1 IS the reference run).
std::vector<std::size_t> sweep_thread_counts() {
  std::vector<std::size_t> counts{2, 4, common::ThreadPool::hardware_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  counts.erase(std::remove(counts.begin(), counts.end(), std::size_t{1}), counts.end());
  return counts;
}

void run_seed_range(std::uint64_t first, std::uint64_t count) {
  const std::vector<std::size_t> thread_counts = sweep_thread_counts();
  std::size_t total_migrations = 0;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed);
    auto serial = build_cluster(spec, /*fast_path=*/true, /*threads=*/1);
    run_spec(*serial, spec);
    for (const std::size_t threads : thread_counts) {
      auto parallel = build_cluster(spec, /*fast_path=*/true, threads);
      run_spec(*parallel, spec);
      expect_identical(*serial, *parallel, seed,
                       "serial vs " + std::to_string(threads) + " threads");
      if (::testing::Test::HasFatalFailure()) return;
    }
    total_migrations += serial->migrations().size();
  }
  // Same vacuity guard as the fuzz test: the sweep must see real
  // migrations, manager ticks and SLA traffic, not idle fleets.
  EXPECT_GT(total_migrations, count / 2) << "too few migrations across seeds";
}

TEST(ClusterParallelTest, ParallelIdenticalSeeds0to24) { run_seed_range(0, 25); }
TEST(ClusterParallelTest, ParallelIdenticalSeeds25to49) { run_seed_range(25, 25); }
TEST(ClusterParallelTest, ParallelIdenticalSeeds50to74) { run_seed_range(50, 25); }
TEST(ClusterParallelTest, ParallelIdenticalSeeds75to99) { run_seed_range(75, 25); }

// The parallel driver also reproduces the reference slow-stepped loop:
// fast path off + 4 threads vs the fuzz test's canonical slow serial run.
// A narrower sweep (first 10 seeds) — the full slow runs are the pricey
// side, and the fast-path equivalence is already pinned above.
TEST(ClusterParallelTest, SlowLoopParallelIdenticalSeeds0to9) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed);
    auto serial = build_cluster(spec, /*fast_path=*/false, /*threads=*/1);
    auto parallel = build_cluster(spec, /*fast_path=*/false, /*threads=*/4);
    run_spec(*serial, spec);
    run_spec(*parallel, spec);
    expect_identical(*serial, *parallel, seed, "slow serial vs slow 4-thread");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace pas::cluster
