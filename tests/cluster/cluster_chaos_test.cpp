// Chaos fuzz tier: the standing byte-identity guarantee must survive
// injected faults. Every scenario seed of the shared corpus gets a fault
// schedule drawn from the same seed (host crashes, migration aborts, link
// degradation, planner brownouts — fault::draw_fault_plan) and is then run
// five ways: reference slow-stepped loop, event-driven fast path, and the
// parallel engine at 2, 4 and hardware threads. All five must agree on
// every observable expect_identical checks — including the new fault-path
// ones (migration outcomes, VM lifecycle states, crash flags, recovery
// events).
//
// On top of identity, every migration record is held to the conservation
// contract per outcome:
//   kCompleted / kAbortedStopCopy — exported == imported (the balance
//     landed on the destination, or rolled back onto the source);
//   kAbortedPrecopy — nothing ever moved: both zero;
//   kLostSourceCrash — imported stays zero; the record is the explicit
//     acknowledgment that the crash (not the engine) destroyed the balance.
//
// The scenarios run with the migration link slowed to 25 MB/s (a knob the
// chaos suite alone overrides — scenario draws are byte-unchanged): guest
// memories of 128..1024 MB then spend seconds to minutes in flight, so
// abort instants actually catch pre-copies, crash instants actually catch
// stop-and-copy pauses (exercising kLostSourceCrash), and degraded-link
// windows actually re-plan live rounds. Per-shard vacuity guards assert
// the corpus really exercised each fault path.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>

#include "cluster_fuzz_common.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;

fault::FaultConfig chaos_config() {
  fault::FaultConfig cfg;
  cfg.max_crashes = 2;  // capped at hosts − 1 by draw_fault_plan
  cfg.max_migration_aborts = 2;
  cfg.max_link_degrades = 2;
  cfg.max_brownouts = 1;
  cfg.restart_probability = 0.75;
  return cfg;
}

/// What a shard saw across its seeds — for the vacuity guards.
struct ChaosActivity {
  std::size_t crashes = 0;
  std::size_t aborts_precopy = 0;
  std::size_t aborts_stopcopy = 0;
  std::size_t lost_in_flight = 0;
  std::size_t degrades = 0;
  std::size_t brownout_ticks = 0;
  std::size_t recoveries = 0;
  std::size_t completed = 0;
};

void check_conservation(const Cluster& cluster, std::uint64_t seed,
                        ChaosActivity& activity) {
  for (const MigrationRecord& r : cluster.engine().completed()) {
    switch (r.outcome) {
      case MigrationOutcome::kCompleted:
        ++activity.completed;
        EXPECT_EQ(r.credit_exported, r.credit_imported)
            << "seed " << seed << " vm " << r.vm << ": completed flight leaked credit";
        break;
      case MigrationOutcome::kAbortedStopCopy:
        ++activity.aborts_stopcopy;
        EXPECT_EQ(r.credit_exported, r.credit_imported)
            << "seed " << seed << " vm " << r.vm << ": rollback leaked credit";
        break;
      case MigrationOutcome::kAbortedPrecopy:
        ++activity.aborts_precopy;
        EXPECT_EQ(r.credit_exported, common::SimTime{})
            << "seed " << seed << " vm " << r.vm << ": pre-copy abort exported credit";
        EXPECT_EQ(r.credit_imported, common::SimTime{})
            << "seed " << seed << " vm " << r.vm << ": pre-copy abort imported credit";
        EXPECT_EQ(r.downtime, common::SimTime{})
            << "seed " << seed << " vm " << r.vm << ": pre-copy abort charged downtime";
        break;
      case MigrationOutcome::kLostSourceCrash:
        ++activity.lost_in_flight;
        EXPECT_EQ(r.credit_imported, common::SimTime{})
            << "seed " << seed << " vm " << r.vm << ": lost guest imported credit";
        EXPECT_EQ(cluster.vm_state(r.vm), VmState::kLost)
            << "seed " << seed << " vm " << r.vm << ": lost record but VM not kLost";
        break;
    }
    EXPECT_GE(r.end, r.start) << "seed " << seed << " vm " << r.vm;
  }
}

void run_seed_range(std::uint64_t first, std::uint64_t count) {
  const fault::FaultConfig chaos = chaos_config();
  ChaosActivity activity;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    ScenarioSpec spec = draw_scenario(seed);
    // Slow link (see the file header): faults must catch migrations in
    // flight, not in the gaps between them.
    spec.migration.link_mb_per_s = 25.0;
    const fault::FaultPlan plan =
        fault::draw_fault_plan(chaos, seed, spec.hosts, spec.horizon);

    auto slow = build_cluster(spec, /*fast_path=*/false);
    slow->install_faults(std::make_unique<fault::FaultInjector>(plan));
    run_spec(*slow, spec);

    const std::size_t thread_variants[] = {1, 2, 4,
                                           common::ThreadPool::hardware_threads()};
    for (const std::size_t threads : thread_variants) {
      auto fast = build_cluster(spec, /*fast_path=*/true, threads);
      fast->install_faults(std::make_unique<fault::FaultInjector>(plan));
      run_spec(*fast, spec);
      expect_identical(*slow, *fast, seed,
                       "slow vs fast(threads=" + std::to_string(threads) + ")");
      if (::testing::Test::HasFatalFailure()) return;
    }

    check_conservation(*slow, seed, activity);
    activity.crashes += slow->crashed_count();
    activity.recoveries += slow->recoveries().size();
    if (slow->faults() != nullptr)
      activity.degrades += slow->faults()->link_degrades_fired();
    if (slow->manager() != nullptr)
      activity.brownout_ticks += slow->manager()->ticks_skipped();
  }

  // Vacuity guards: a chaos tier that never crashes a host, never catches
  // a migration mid-flight and never recovers a VM is testing nothing.
  // Thresholds are per-shard floors well under the deterministic actuals.
  EXPECT_GT(activity.crashes, 0u) << "shard " << first << ": no host ever crashed";
  EXPECT_GT(activity.aborts_precopy + activity.aborts_stopcopy + activity.lost_in_flight,
            0u)
      << "shard " << first << ": no migration was ever interrupted";
  EXPECT_GT(activity.degrades, 0u) << "shard " << first << ": no link ever degraded";
  EXPECT_GT(activity.recoveries, 0u) << "shard " << first << ": no VM ever recovered";
  EXPECT_GT(activity.completed, 0u)
      << "shard " << first << ": no migration ever completed under chaos";
}

// The same 100-seed corpus as the other differential suites, sharded for
// ctest parallelism and narrow failure ranges.
TEST(ClusterChaosTest, FaultsIdenticalSeeds0to24) { run_seed_range(0, 25); }
TEST(ClusterChaosTest, FaultsIdenticalSeeds25to49) { run_seed_range(25, 25); }
TEST(ClusterChaosTest, FaultsIdenticalSeeds50to74) { run_seed_range(50, 25); }
TEST(ClusterChaosTest, FaultsIdenticalSeeds75to99) { run_seed_range(75, 25); }

}  // namespace
}  // namespace pas::cluster
