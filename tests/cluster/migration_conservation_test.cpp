// Conservation across live migration: the guest's consumed CPU work, its
// purchased credit balance, and the cluster's accumulated energy must be
// neither double-counted nor lost while state crosses host boundaries —
// including through the stop-and-copy pause, when the workload object
// exists on no host's schedule at all.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "cluster/migration.hpp"
#include "core/compensation.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::cluster {
namespace {

using common::msec;
using common::seconds;
using common::SimTime;

ClusterConfig two_host_config() {
  ClusterConfig cc;
  cc.host_count = 2;
  cc.host.trace_stride = SimTime{};  // no tracing: pure accounting
  return cc;
}

ClusterVmConfig hog_vm(const char* name, double credit, double memory_mb) {
  ClusterVmConfig vc;
  vc.vm.name = name;
  vc.vm.credit = credit;
  vc.memory_mb = memory_mb;
  vc.dirty_mb_per_s = 50.0;
  return vc;
}

TEST(MigrationPlanTest, ConvergentGuestStopsEarly) {
  MigrationConfig cfg;  // 1000 MB/s link, 32 MB threshold
  const MigrationPlan plan = plan_migration(512.0, 50.0, cfg);
  // Round 0 pushes 512 MB in 0.512 s; the guest redirties 25.6 MB — under
  // the threshold, so stop-and-copy follows immediately.
  ASSERT_EQ(plan.round_mb.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.round_mb[0], 512.0);
  EXPECT_NEAR(plan.stop_copy_mb, 25.6, 1e-9);
  EXPECT_EQ(plan.precopy_duration, common::usec(512'000));
  EXPECT_EQ(plan.downtime, common::usec(25'600) + cfg.switch_latency);
  EXPECT_NEAR(plan.transferred_mb(), 537.6, 1e-9);
}

TEST(MigrationPlanTest, FastDirtierNeedsMoreRounds) {
  MigrationConfig cfg;
  const MigrationPlan slow_dirtier = plan_migration(1024.0, 50.0, cfg);
  const MigrationPlan fast_dirtier = plan_migration(1024.0, 400.0, cfg);
  EXPECT_GT(fast_dirtier.round_mb.size(), slow_dirtier.round_mb.size());
  EXPECT_GT(fast_dirtier.transferred_mb(), slow_dirtier.transferred_mb());
}

TEST(MigrationPlanTest, NonConvergentGuestHitsRoundBudget) {
  MigrationConfig cfg;
  // Dirtying faster than the link: rounds never shrink.
  const MigrationPlan plan = plan_migration(1024.0, 2000.0, cfg);
  EXPECT_EQ(plan.round_mb.size(), cfg.max_precopy_rounds);
  // The residue is the whole memory: downtime is a full-memory push.
  EXPECT_NEAR(plan.stop_copy_mb, 1024.0, 1e-9);
  EXPECT_EQ(plan.downtime, common::usec(1'024'000) + cfg.switch_latency);
}

TEST(MigrationPlanTest, RejectsBadInputs) {
  MigrationConfig cfg;
  EXPECT_THROW((void)plan_migration(0.0, 50.0, cfg), std::invalid_argument);
  EXPECT_THROW((void)plan_migration(512.0, -1.0, cfg), std::invalid_argument);
  cfg.link_mb_per_s = 0.0;
  EXPECT_THROW((void)plan_migration(512.0, 50.0, cfg), std::invalid_argument);
}

TEST(MigrationConservationTest, WorkCreditAndEnergyConserved) {
  Cluster cluster{two_host_config()};
  auto hog = std::make_unique<wl::BusyLoop>();
  const wl::BusyLoop* hog_ptr = hog.get();
  const GlobalVmId vm = cluster.add_vm(hog_vm("hog", 20.0, 512.0), std::move(hog), 0);
  const common::VmId s = Cluster::slot(vm);

  cluster.run_until(seconds(10));
  EXPECT_EQ(cluster.residence(vm), 0u);
  const common::Work work_on_source_before = cluster.host(0).vm(s).total_work;
  EXPECT_GT(work_on_source_before, common::Work{});
  EXPECT_EQ(cluster.host(1).vm(s).total_work, common::Work{});

  ASSERT_TRUE(cluster.migrate(vm, 1));
  EXPECT_TRUE(cluster.migrating(vm));
  EXPECT_FALSE(cluster.migrate(vm, 1)) << "double-migrate must be refused";

  // Compute the expected timeline from the pure cost model and stop the
  // simulation at each phase edge.
  const MigrationPlan plan =
      plan_migration(512.0, 50.0, cluster.config().migration);
  const SimTime stop = seconds(10) + plan.precopy_duration;
  const SimTime end = stop + plan.downtime;

  // Pre-copy: the guest keeps running on the source.
  cluster.run_until(stop);
  const common::Work work_at_stop = cluster.host(0).vm(s).total_work;
  EXPECT_GT(work_at_stop, work_on_source_before);
  EXPECT_EQ(cluster.residence(vm), 0u);

  // Stop-and-copy: the guest runs nowhere; no work may appear anywhere.
  cluster.run_until(end);
  EXPECT_EQ(cluster.host(0).vm(s).total_work, work_at_stop);
  EXPECT_EQ(cluster.host(1).vm(s).total_work, common::Work{});
  EXPECT_EQ(cluster.residence(vm), 1u);  // attach fired exactly at `end`

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  EXPECT_EQ(rec.vm, vm);
  EXPECT_EQ(rec.from, 0u);
  EXPECT_EQ(rec.to, 1u);
  EXPECT_EQ(rec.start, seconds(10));
  EXPECT_EQ(rec.stop, stop);
  EXPECT_EQ(rec.end, end);
  EXPECT_EQ(rec.downtime, plan.downtime);

  // Credit conservation: what left the source arrived at the destination,
  // exactly, and the source slot was drained.
  EXPECT_EQ(rec.credit_exported, rec.credit_imported);
  auto& src_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(0).scheduler());
  auto& dst_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(1).scheduler());
  EXPECT_EQ(src_sched.balance(s), SimTime{});
  EXPECT_EQ(dst_sched.balance(s), rec.credit_exported);

  // Destination takes over; total work across the fleet equals what the
  // (single, moved) workload object consumed — nothing doubled or lost.
  cluster.run_until(seconds(30));
  EXPECT_GT(cluster.host(1).vm(s).total_work, common::Work{});
  EXPECT_EQ(cluster.host(0).vm(s).total_work, work_at_stop);
  const ClusterVmStats stats = cluster.vm_stats(vm);
  EXPECT_EQ(stats.total_work,
            cluster.host(0).vm(s).total_work + cluster.host(1).vm(s).total_work);
  EXPECT_EQ(stats.total_work, hog_ptr->total_consumed());
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.downtime, plan.downtime);

  // Energy: with every host powered on, the cluster meter is exactly the
  // sum of the per-host meters.
  EXPECT_DOUBLE_EQ(cluster.energy_joules(),
                   cluster.host(0).energy().joules() + cluster.host(1).energy().joules());
}

TEST(MigrationConservationTest, DowntimeChargedToSla) {
  Cluster cluster{two_host_config()};
  // An idle guest: its regular windows are never saturated, so the ONLY
  // SLA-visible time is the migration pause — which must be charged in
  // full, idle or not (the customer could not have used what they bought).
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("sleeper", 15.0, 256.0), std::make_unique<wl::IdleGuest>(), 0);
  cluster.run_until(seconds(5));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(20));

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const SimTime downtime = cluster.migrations().front().downtime;
  EXPECT_GT(downtime, SimTime{});
  EXPECT_EQ(cluster.sla().violation_time(vm), downtime);
  EXPECT_EQ(cluster.sla().observed_time(vm), downtime);
  EXPECT_DOUBLE_EQ(cluster.sla().worst_shortfall_pct(vm), 15.0);
}

TEST(MigrationConservationTest, HypervisorOverheadChargedToBothAgents) {
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 10.0, 512.0), std::make_unique<wl::BusyLoop>(), 0);
  cluster.run_until(seconds(5));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(20));

  const MigrationConfig& mc = cluster.config().migration;
  const double mb = cluster.migrations().front().transferred_mb;
  // Every transferred MB cost both hypervisors CPU; by t=20 the agents had
  // ample credit to absorb it all.
  EXPECT_DOUBLE_EQ(cluster.agent(0).total_performed().mfus(), mb * mc.source_cpu_us_per_mb);
  EXPECT_DOUBLE_EQ(cluster.agent(1).total_performed().mfus(), mb * mc.dest_cpu_us_per_mb);
  EXPECT_GT(cluster.host(0).vm(0).total_busy, SimTime{});
  EXPECT_GT(cluster.host(1).vm(0).total_busy, SimTime{});
}

TEST(MigrationConservationTest, VovoGatesEnergyExactly) {
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 20.0, 256.0), std::make_unique<wl::BusyLoop>(), 0);
  cluster.run_until(seconds(4));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(8));
  ASSERT_EQ(cluster.residence(vm), 1u);

  // Host 0 is empty now; powering it off freezes its cluster-counted
  // energy while its own meter keeps running (the host still follows the
  // clock).
  EXPECT_FALSE(cluster.set_powered(1, false)) << "must refuse: host 1 has a resident";
  ASSERT_TRUE(cluster.set_powered(0, false));
  const double host0_at_off = cluster.host(0).energy().joules();
  cluster.run_until(seconds(16));
  EXPECT_GT(cluster.host(0).energy().joules(), host0_at_off) << "host meter keeps running";
  EXPECT_DOUBLE_EQ(cluster.energy_joules(),
                   host0_at_off + cluster.host(1).energy().joules());

  // Power back on: growth counts again, the off-interval stays excluded.
  const double host0_at_on = cluster.host(0).energy().joules();
  ASSERT_TRUE(cluster.set_powered(0, true));
  cluster.run_until(seconds(20));
  EXPECT_DOUBLE_EQ(cluster.energy_joules(),
                   host0_at_off + (cluster.host(0).energy().joules() - host0_at_on) +
                       cluster.host(1).energy().joules());
}

TEST(MigrationConservationTest, ManagerTickDuringPauseDoesNotMintCredit) {
  // Regression: a manager pass landing inside the stop-and-copy pause must
  // not re-cap the drained source slot — that would let accounting refills
  // mint credit into a slot whose VM is in flight (credit existing in two
  // places once the attach imports the exported balance).
  Cluster cluster{two_host_config()};
  ClusterManagerConfig mc;
  mc.period = msec(200);      // many ticks inside the pause
  mc.consolidate = false;     // the migration below is scripted
  mc.vovo = false;
  cluster.install_manager(std::make_unique<ClusterManager>(mc));
  // Non-convergent dirtier: 8 rounds of 1024 MB, then a ~1.044 s pause.
  ClusterVmConfig vc = hog_vm("dirtier", 20.0, 1024.0);
  vc.dirty_mb_per_s = 2000.0;
  const GlobalVmId vm = cluster.add_vm(std::move(vc), std::make_unique<wl::BusyLoop>(), 0);
  const common::VmId s = Cluster::slot(vm);

  cluster.run_until(seconds(2));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  const MigrationPlan plan =
      plan_migration(1024.0, 2000.0, cluster.config().migration);
  const SimTime stop = seconds(2) + plan.precopy_duration;
  ASSERT_GT(plan.downtime, msec(1000)) << "pause must span manager ticks";

  // Mid-pause, after at least one manager tick: the source slot stays
  // fully drained.
  cluster.run_until(stop + msec(500));
  auto& src_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(0).scheduler());
  EXPECT_DOUBLE_EQ(src_sched.cap(s), 0.0);
  EXPECT_EQ(src_sched.balance(s), SimTime{});

  cluster.run_until(stop + plan.downtime);
  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  auto& dst_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(1).scheduler());
  EXPECT_EQ(dst_sched.balance(s), rec.credit_exported);
  EXPECT_EQ(rec.credit_exported, rec.credit_imported);
}

TEST(MigrationConservationTest, AttachCompensatesForDestinationFrequency) {
  // A VM landing on a down-scaled host must resume at the eq.-4
  // compensated cap, not the raw purchased credit — otherwise the move
  // silently shrinks what the customer bought until the next manager pass.
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 20.0, 256.0), std::make_unique<wl::BusyLoop>(), 0);
  cluster.host(1).cpufreq().request(0);  // destination parked at the lowest P-state
  cluster.run_until(seconds(2));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(6));
  ASSERT_EQ(cluster.residence(vm), 1u);
  const cpu::FrequencyLadder& ladder = cluster.host(1).cpu().ladder();
  EXPECT_DOUBLE_EQ(cluster.host(1).scheduler().cap(Cluster::slot(vm)),
                   core::compensated_credit(20.0, ladder, 0));
  EXPECT_GT(cluster.host(1).scheduler().cap(Cluster::slot(vm)), 20.0);
}

TEST(MigrationConservationTest, OpenLoopArrivalsSurviveTheMove) {
  // A web tenant's open-loop injector keeps generating demand while the VM
  // is paused; every request must be delivered (queued) after attach, none
  // lost — the advance_to coarsening contract across the handoff.
  Cluster cluster{two_host_config()};
  ClusterVmConfig vc = hog_vm("web", 10.0, 512.0);
  wl::WebAppConfig wc;
  wc.seed = 99;
  const double rate = wl::WebApp::rate_for_demand(8.0, wc.request_cost);
  auto web = std::make_unique<wl::WebApp>(wl::LoadProfile::constant(rate), wc);
  const wl::WebApp* web_ptr = web.get();
  const GlobalVmId vm = cluster.add_vm(std::move(vc), std::move(web), 0);

  cluster.run_until(seconds(10));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(30));

  // ~8 req/s for 30 s minus boundary effects; served work equals the
  // fleet-wide accounting for the slot.
  EXPECT_NEAR(static_cast<double>(web_ptr->arrived()),
              rate * 30.0, rate * 1.0);
  EXPECT_EQ(web_ptr->dropped(), 0u);
  // Per-host accumulators sum in a different order than the workload's own
  // counter; equality holds up to floating-point associativity.
  EXPECT_NEAR(cluster.vm_stats(vm).total_work.mfus(), web_ptr->work_served().mfus(),
              1e-9 * web_ptr->work_served().mfus());
}

}  // namespace
}  // namespace pas::cluster
