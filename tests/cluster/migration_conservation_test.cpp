// Conservation across live migration: the guest's consumed CPU work, its
// purchased credit balance, and the cluster's accumulated energy must be
// neither double-counted nor lost while state crosses host boundaries —
// including through the stop-and-copy pause, when the workload object
// exists on no host's schedule at all.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "cluster/migration.hpp"
#include "core/compensation.hpp"
#include "platform/host_class.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::cluster {
namespace {

using common::msec;
using common::seconds;
using common::SimTime;

ClusterConfig two_host_config() {
  ClusterConfig cc;
  cc.host_count = 2;
  cc.host.trace_stride = SimTime{};  // no tracing: pure accounting
  return cc;
}

ClusterVmConfig hog_vm(const char* name, double credit, double memory_mb) {
  ClusterVmConfig vc;
  vc.vm.name = name;
  vc.vm.credit = credit;
  vc.memory_mb = memory_mb;
  vc.dirty_mb_per_s = 50.0;
  return vc;
}

TEST(MigrationPlanTest, ConvergentGuestStopsEarly) {
  MigrationConfig cfg;  // 1000 MB/s link, 32 MB threshold
  const MigrationPlan plan = plan_migration(512.0, 50.0, cfg);
  // Round 0 pushes 512 MB in 0.512 s; the guest redirties 25.6 MB — under
  // the threshold, so stop-and-copy follows immediately.
  ASSERT_EQ(plan.round_mb.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.round_mb[0], 512.0);
  EXPECT_NEAR(plan.stop_copy_mb, 25.6, 1e-9);
  EXPECT_EQ(plan.precopy_duration, common::usec(512'000));
  EXPECT_EQ(plan.downtime, common::usec(25'600) + cfg.switch_latency);
  EXPECT_NEAR(plan.transferred_mb(), 537.6, 1e-9);
}

TEST(MigrationPlanTest, FastDirtierNeedsMoreRounds) {
  MigrationConfig cfg;
  const MigrationPlan slow_dirtier = plan_migration(1024.0, 50.0, cfg);
  const MigrationPlan fast_dirtier = plan_migration(1024.0, 400.0, cfg);
  EXPECT_GT(fast_dirtier.round_mb.size(), slow_dirtier.round_mb.size());
  EXPECT_GT(fast_dirtier.transferred_mb(), slow_dirtier.transferred_mb());
}

TEST(MigrationPlanTest, NonConvergentGuestHitsRoundBudget) {
  MigrationConfig cfg;
  // Dirtying faster than the link: rounds never shrink.
  const MigrationPlan plan = plan_migration(1024.0, 2000.0, cfg);
  EXPECT_EQ(plan.round_mb.size(), cfg.max_precopy_rounds);
  // The residue is the whole memory: downtime is a full-memory push.
  EXPECT_NEAR(plan.stop_copy_mb, 1024.0, 1e-9);
  EXPECT_EQ(plan.downtime, common::usec(1'024'000) + cfg.switch_latency);
}

TEST(MigrationPlanTest, DirtyRateAtLinkBandwidthNeverShrinks) {
  MigrationConfig cfg;
  // Exactly at the link rate: every round redirties exactly what it pushed,
  // so rounds never shrink and the budget is the only thing that stops the
  // loop — the boundary case between convergent and non-convergent guests.
  const MigrationPlan plan = plan_migration(1024.0, cfg.link_mb_per_s, cfg);
  ASSERT_EQ(plan.round_mb.size(), cfg.max_precopy_rounds);
  for (const double mb : plan.round_mb) EXPECT_DOUBLE_EQ(mb, 1024.0);
  EXPECT_NEAR(plan.stop_copy_mb, 1024.0, 1e-9);
}

TEST(MigrationPlanTest, ZeroDirtyRateHasSwitchOnlyDowntime) {
  MigrationConfig cfg;
  // An idle guest redirties nothing: one full-memory round, an empty
  // residue, and a pause that is pure switch latency (the zero-residue
  // branch must not charge a minimum transfer quantum).
  const MigrationPlan plan = plan_migration(512.0, 0.0, cfg);
  ASSERT_EQ(plan.round_mb.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stop_copy_mb, 0.0);
  EXPECT_EQ(plan.downtime, cfg.switch_latency);
  EXPECT_DOUBLE_EQ(plan.transferred_mb(), 512.0);
}

TEST(MigrationPlanTest, ThresholdAboveMemoryStillPushesFirstRound) {
  MigrationConfig cfg;
  cfg.stop_copy_threshold_mb = 2048.0;  // larger than the guest itself
  // Round 0 is unconditional — pre-copy always ships the full image once —
  // and the redirtied set then trivially clears the oversized threshold.
  const MigrationPlan plan = plan_migration(512.0, 100.0, cfg);
  ASSERT_EQ(plan.round_mb.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.round_mb[0], 512.0);
  EXPECT_NEAR(plan.stop_copy_mb, 51.2, 1e-9);
  EXPECT_EQ(plan.downtime, common::usec(51'200) + cfg.switch_latency);
}

TEST(MigrationPlanTest, RejectsBadInputs) {
  MigrationConfig cfg;
  EXPECT_THROW((void)plan_migration(0.0, 50.0, cfg), std::invalid_argument);
  EXPECT_THROW((void)plan_migration(512.0, -1.0, cfg), std::invalid_argument);
  cfg.link_mb_per_s = 0.0;
  EXPECT_THROW((void)plan_migration(512.0, 50.0, cfg), std::invalid_argument);
}

TEST(MigrationConservationTest, WorkCreditAndEnergyConserved) {
  Cluster cluster{two_host_config()};
  auto hog = std::make_unique<wl::BusyLoop>();
  const wl::BusyLoop* hog_ptr = hog.get();
  const GlobalVmId vm = cluster.add_vm(hog_vm("hog", 20.0, 512.0), std::move(hog), 0);
  const common::VmId s = cluster.home_slot(vm);

  cluster.run_until(seconds(10));
  EXPECT_EQ(cluster.residence(vm), 0u);
  const common::Work work_on_source_before = cluster.host(0).vm(s).total_work;
  EXPECT_GT(work_on_source_before, common::Work{});
  EXPECT_FALSE(cluster.has_slot(1, vm)) << "slots are lazy: none until a migration";

  ASSERT_TRUE(cluster.migrate(vm, 1));
  EXPECT_TRUE(cluster.migrating(vm));
  EXPECT_FALSE(cluster.migrate(vm, 1)) << "double-migrate must be refused";
  const common::VmId d = cluster.slot_on(1, vm);  // created by the migrate

  // Compute the expected timeline from the pure cost model and stop the
  // simulation at each phase edge.
  const MigrationPlan plan =
      plan_migration(512.0, 50.0, cluster.config().migration);
  const SimTime stop = seconds(10) + plan.precopy_duration;
  const SimTime end = stop + plan.downtime;

  // Pre-copy: the guest keeps running on the source.
  cluster.run_until(stop);
  const common::Work work_at_stop = cluster.host(0).vm(s).total_work;
  EXPECT_GT(work_at_stop, work_on_source_before);
  EXPECT_EQ(cluster.residence(vm), 0u);

  // Stop-and-copy: the guest runs nowhere; no work may appear anywhere.
  cluster.run_until(end);
  EXPECT_EQ(cluster.host(0).vm(s).total_work, work_at_stop);
  EXPECT_EQ(cluster.host(1).vm(d).total_work, common::Work{});
  EXPECT_EQ(cluster.residence(vm), 1u);  // attach fired exactly at `end`

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  EXPECT_EQ(rec.vm, vm);
  EXPECT_EQ(rec.from, 0u);
  EXPECT_EQ(rec.to, 1u);
  EXPECT_EQ(rec.start, seconds(10));
  EXPECT_EQ(rec.stop, stop);
  EXPECT_EQ(rec.end, end);
  EXPECT_EQ(rec.downtime, plan.downtime);

  // Credit conservation: what left the source arrived at the destination,
  // exactly, and the source slot was drained.
  EXPECT_EQ(rec.credit_exported, rec.credit_imported);
  auto& src_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(0).scheduler());
  auto& dst_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(1).scheduler());
  EXPECT_EQ(src_sched.balance(s), SimTime{});
  EXPECT_EQ(dst_sched.balance(d), rec.credit_exported);

  // Destination takes over; total work across the fleet equals what the
  // (single, moved) workload object consumed — nothing doubled or lost.
  cluster.run_until(seconds(30));
  EXPECT_GT(cluster.host(1).vm(d).total_work, common::Work{});
  EXPECT_EQ(cluster.host(0).vm(s).total_work, work_at_stop);
  const ClusterVmStats stats = cluster.vm_stats(vm);
  EXPECT_EQ(stats.total_work,
            cluster.host(0).vm(s).total_work + cluster.host(1).vm(d).total_work);
  EXPECT_EQ(stats.total_work, hog_ptr->total_consumed());
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.downtime, plan.downtime);

  // Energy: with every host powered on, the cluster meter is exactly the
  // sum of the per-host meters.
  EXPECT_DOUBLE_EQ(cluster.energy_joules(),
                   cluster.host(0).energy().joules() + cluster.host(1).energy().joules());
}

TEST(MigrationConservationTest, DowntimeChargedToSla) {
  Cluster cluster{two_host_config()};
  // An idle guest: its regular windows are never saturated, so the ONLY
  // SLA-visible time is the migration pause — which must be charged in
  // full, idle or not (the customer could not have used what they bought).
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("sleeper", 15.0, 256.0), std::make_unique<wl::IdleGuest>(), 0);
  cluster.run_until(seconds(5));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(20));

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const SimTime downtime = cluster.migrations().front().downtime;
  EXPECT_GT(downtime, SimTime{});
  EXPECT_EQ(cluster.sla().violation_time(vm), downtime);
  EXPECT_EQ(cluster.sla().observed_time(vm), downtime);
  EXPECT_DOUBLE_EQ(cluster.sla().worst_shortfall_pct(vm), 15.0);
}

TEST(MigrationConservationTest, HypervisorOverheadChargedToBothAgents) {
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 10.0, 512.0), std::make_unique<wl::BusyLoop>(), 0);
  cluster.run_until(seconds(5));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(20));

  const MigrationConfig& mc = cluster.config().migration;
  const double mb = cluster.migrations().front().transferred_mb;
  // Every transferred MB cost both hypervisors CPU; by t=20 the agents had
  // ample credit to absorb it all.
  EXPECT_DOUBLE_EQ(cluster.agent(0).total_performed().mfus(), mb * mc.source_cpu_us_per_mb);
  EXPECT_DOUBLE_EQ(cluster.agent(1).total_performed().mfus(), mb * mc.dest_cpu_us_per_mb);
  EXPECT_GT(cluster.host(0).vm(0).total_busy, SimTime{});
  EXPECT_GT(cluster.host(1).vm(0).total_busy, SimTime{});
}

TEST(MigrationConservationTest, VovoGatesEnergyExactly) {
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 20.0, 256.0), std::make_unique<wl::BusyLoop>(), 0);
  cluster.run_until(seconds(4));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(8));
  ASSERT_EQ(cluster.residence(vm), 1u);

  // Host 0 is empty now; powering it off freezes its cluster-counted
  // energy while its own meter keeps running (the host still follows the
  // clock).
  EXPECT_FALSE(cluster.set_powered(1, false)) << "must refuse: host 1 has a resident";
  ASSERT_TRUE(cluster.set_powered(0, false));
  const double host0_at_off = cluster.host(0).energy().joules();
  cluster.run_until(seconds(16));
  EXPECT_GT(cluster.host(0).energy().joules(), host0_at_off) << "host meter keeps running";
  EXPECT_DOUBLE_EQ(cluster.energy_joules(),
                   host0_at_off + cluster.host(1).energy().joules());

  // Power back on: growth counts again, the off-interval stays excluded.
  const double host0_at_on = cluster.host(0).energy().joules();
  ASSERT_TRUE(cluster.set_powered(0, true));
  cluster.run_until(seconds(20));
  EXPECT_DOUBLE_EQ(cluster.energy_joules(),
                   host0_at_off + (cluster.host(0).energy().joules() - host0_at_on) +
                       cluster.host(1).energy().joules());
}

TEST(MigrationConservationTest, ManagerTickDuringPauseDoesNotMintCredit) {
  // Regression: a manager pass landing inside the stop-and-copy pause must
  // not re-cap the drained source slot — that would let accounting refills
  // mint credit into a slot whose VM is in flight (credit existing in two
  // places once the attach imports the exported balance).
  Cluster cluster{two_host_config()};
  ClusterManagerConfig mc;
  mc.period = msec(200);      // many ticks inside the pause
  mc.consolidate = false;     // the migration below is scripted
  mc.vovo = false;
  cluster.install_manager(std::make_unique<ClusterManager>(mc));
  // Non-convergent dirtier: 8 rounds of 1024 MB, then a ~1.044 s pause.
  ClusterVmConfig vc = hog_vm("dirtier", 20.0, 1024.0);
  vc.dirty_mb_per_s = 2000.0;
  const GlobalVmId vm = cluster.add_vm(std::move(vc), std::make_unique<wl::BusyLoop>(), 0);
  const common::VmId s = cluster.home_slot(vm);

  cluster.run_until(seconds(2));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  const MigrationPlan plan =
      plan_migration(1024.0, 2000.0, cluster.config().migration);
  const SimTime stop = seconds(2) + plan.precopy_duration;
  ASSERT_GT(plan.downtime, msec(1000)) << "pause must span manager ticks";

  // Mid-pause, after at least one manager tick: the source slot stays
  // fully drained.
  cluster.run_until(stop + msec(500));
  auto& src_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(0).scheduler());
  EXPECT_DOUBLE_EQ(src_sched.cap(s), 0.0);
  EXPECT_EQ(src_sched.balance(s), SimTime{});

  cluster.run_until(stop + plan.downtime);
  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  auto& dst_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(1).scheduler());
  EXPECT_EQ(dst_sched.balance(s), rec.credit_exported);
  EXPECT_EQ(rec.credit_exported, rec.credit_imported);
}

TEST(MigrationConservationTest, AttachCompensatesForDestinationFrequency) {
  // A VM landing on a down-scaled host must resume at the eq.-4
  // compensated cap, not the raw purchased credit — otherwise the move
  // silently shrinks what the customer bought until the next manager pass.
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 20.0, 256.0), std::make_unique<wl::BusyLoop>(), 0);
  cluster.host(1).cpufreq().request(0);  // destination parked at the lowest P-state
  cluster.run_until(seconds(2));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(6));
  ASSERT_EQ(cluster.residence(vm), 1u);
  const cpu::FrequencyLadder& ladder = cluster.host(1).cpu().ladder();
  EXPECT_DOUBLE_EQ(cluster.host(1).scheduler().cap(cluster.slot_on(1, vm)),
                   core::compensated_credit(20.0, ladder, 0));
  EXPECT_GT(cluster.host(1).scheduler().cap(cluster.slot_on(1, vm)), 20.0);
}

TEST(MigrationConservationTest, OpenLoopArrivalsSurviveTheMove) {
  // A web tenant's open-loop injector keeps generating demand while the VM
  // is paused; every request must be delivered (queued) after attach, none
  // lost — the advance_to coarsening contract across the handoff.
  Cluster cluster{two_host_config()};
  ClusterVmConfig vc = hog_vm("web", 10.0, 512.0);
  wl::WebAppConfig wc;
  wc.seed = 99;
  const double rate = wl::WebApp::rate_for_demand(8.0, wc.request_cost);
  auto web = std::make_unique<wl::WebApp>(wl::LoadProfile::constant(rate), wc);
  const wl::WebApp* web_ptr = web.get();
  const GlobalVmId vm = cluster.add_vm(std::move(vc), std::move(web), 0);

  cluster.run_until(seconds(10));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  cluster.run_until(seconds(30));

  // ~8 req/s for 30 s minus boundary effects; served work equals the
  // fleet-wide accounting for the slot.
  EXPECT_NEAR(static_cast<double>(web_ptr->arrived()),
              rate * 30.0, rate * 1.0);
  EXPECT_EQ(web_ptr->dropped(), 0u);
  // Per-host accumulators sum in a different order than the workload's own
  // counter; equality holds up to floating-point associativity.
  EXPECT_NEAR(cluster.vm_stats(vm).total_work.mfus(), web_ptr->work_served().mfus(),
              1e-9 * web_ptr->work_served().mfus());
}

TEST(MigrationEngineTest, BeginRefusesDoubleFlightNamingTheVm) {
  // Engine-level precondition (the cluster's migrate() refuses politely
  // before ever reaching it): a second begin() for an in-flight VM is a
  // programming error, and the exception names the culprit.
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 10.0, 256.0), std::make_unique<wl::IdleGuest>(), 0);
  sim::EventQueue queue;
  MigrationEngine engine{MigrationConfig{}, queue};
  // Engine-level test below the Cluster API: no destination slot exists
  // (slots are lazy) and none is needed — begin() only schedules events,
  // and this test never advances the queue.
  const MigrationEngine::Endpoint src{&cluster.host(0), cluster.home_slot(vm),
                                      &cluster.agent(0), 0};
  const MigrationEngine::Endpoint dst{&cluster.host(1), cluster.home_slot(vm),
                                      &cluster.agent(1), 0};
  const auto noop = [](const MigrationRecord&) {};
  (void)engine.begin(vm, 0, 1, src, dst, 256.0, 10.0, 10.0, SimTime{}, noop);
  try {
    (void)engine.begin(vm, 0, 1, src, dst, 256.0, 10.0, 10.0, SimTime{}, noop);
    FAIL() << "double begin must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string{e.what()}.find("VM " + std::to_string(vm)), std::string::npos)
        << e.what();
  }
}

TEST(MigrationFaultTest, AbortMidPrecopyRollsBackCleanly) {
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 20.0, 512.0), std::make_unique<wl::BusyLoop>(), 0);
  const common::VmId s = cluster.home_slot(vm);

  cluster.run_until(seconds(5));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  // 512 MB at 1000 MB/s: round 0 runs until t = 5.512 s. Abort inside it.
  cluster.run_until(seconds(5) + msec(200));
  ASSERT_TRUE(cluster.abort_migration(vm));
  EXPECT_FALSE(cluster.migrating(vm));
  EXPECT_FALSE(cluster.abort_migration(vm)) << "nothing left to abort";

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  EXPECT_EQ(rec.outcome, MigrationOutcome::kAbortedPrecopy);
  EXPECT_TRUE(rec.aborted());
  EXPECT_EQ(rec.end, seconds(5) + msec(200));
  EXPECT_EQ(rec.downtime, SimTime{});
  // The guest never stopped; no credit ever moved.
  EXPECT_EQ(rec.credit_exported, SimTime{});
  EXPECT_EQ(rec.credit_imported, SimTime{});
  // Round 0 was already on the wire: its bytes (and agent overhead) stand.
  EXPECT_EQ(rec.rounds, 1u);
  EXPECT_DOUBLE_EQ(rec.transferred_mb, 512.0);
  EXPECT_EQ(cluster.residence(vm), 0u);
  EXPECT_EQ(cluster.vm_state(vm), VmState::kRunning);
  // No pause happened, so no SLA charge beyond the guest's own behavior —
  // and crucially the VM is still migratable.
  EXPECT_EQ(cluster.vm_stats(vm).downtime, SimTime{});

  const common::Work work_after_abort = cluster.host(0).vm(s).total_work;
  cluster.run_until(seconds(8));
  EXPECT_GT(cluster.host(0).vm(s).total_work, work_after_abort)
      << "guest must keep running on the source";

  ASSERT_TRUE(cluster.migrate(vm, 1)) << "aborted VM must be migratable again";
  cluster.run_until(seconds(20));
  ASSERT_EQ(cluster.migrations().size(), 2u);
  const MigrationRecord& redo = cluster.migrations().back();
  EXPECT_EQ(redo.outcome, MigrationOutcome::kCompleted);
  EXPECT_EQ(redo.credit_exported, redo.credit_imported);
  EXPECT_EQ(cluster.residence(vm), 1u);
}

TEST(MigrationFaultTest, AbortDuringPauseRollsBackWithCreditConserved) {
  Cluster cluster{two_host_config()};
  // Non-convergent dirtier: 8 rounds of 1024 MB (stop at t = 2 + 8.192 s),
  // then a 1.044 s pause — plenty of room to abort mid-pause.
  ClusterVmConfig vc = hog_vm("dirtier", 20.0, 1024.0);
  vc.dirty_mb_per_s = 2000.0;
  const GlobalVmId vm = cluster.add_vm(std::move(vc), std::make_unique<wl::BusyLoop>(), 0);
  const common::VmId s = cluster.home_slot(vm);

  cluster.run_until(seconds(2));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  const MigrationPlan plan = plan_migration(1024.0, 2000.0, cluster.config().migration);
  const SimTime stop = seconds(2) + plan.precopy_duration;
  const SimTime abort_at = stop + msec(300);
  ASSERT_LT(abort_at, stop + plan.downtime) << "abort instant must land inside the pause";

  cluster.run_until(abort_at);
  ASSERT_TRUE(cluster.engine().detached(vm)) << "guest must be in its pause";
  ASSERT_TRUE(cluster.abort_migration(vm));

  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  EXPECT_EQ(rec.outcome, MigrationOutcome::kAbortedStopCopy);
  EXPECT_EQ(rec.stop, stop);
  EXPECT_EQ(rec.end, abort_at);
  EXPECT_EQ(rec.downtime, msec(300)) << "record carries the pause actually experienced";
  // Rollback conservation: the exported balance landed back on the SOURCE.
  EXPECT_EQ(rec.credit_exported, rec.credit_imported);
  auto& src_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(0).scheduler());
  EXPECT_EQ(src_sched.balance(s), rec.credit_exported);
  // Cap re-established at the source's current P-state (max here, so the
  // compensated cap equals the purchased credit).
  EXPECT_DOUBLE_EQ(src_sched.cap(s), 20.0);
  EXPECT_EQ(cluster.residence(vm), 0u);
  EXPECT_EQ(cluster.vm_state(vm), VmState::kRunning);
  // The truncated pause is still real downtime: charged to the VM and SLA.
  EXPECT_EQ(cluster.vm_stats(vm).downtime, msec(300));
  EXPECT_GE(cluster.sla().violation_time(vm), msec(300));

  const common::Work work_at_abort = cluster.host(0).vm(s).total_work;
  cluster.run_until(seconds(15));
  EXPECT_GT(cluster.host(0).vm(s).total_work, work_at_abort)
      << "rolled-back guest must resume on the source";
  EXPECT_EQ(cluster.host(1).vm(cluster.slot_on(1, vm)).total_work, common::Work{});
}

TEST(MigrationFaultTest, CrashDuringPauseLosesGuest) {
  Cluster cluster{two_host_config()};
  ClusterVmConfig vc = hog_vm("dirtier", 20.0, 1024.0);
  vc.dirty_mb_per_s = 2000.0;
  const GlobalVmId vm = cluster.add_vm(std::move(vc), std::make_unique<wl::BusyLoop>(), 0);

  cluster.run_until(seconds(2));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  const MigrationPlan plan = plan_migration(1024.0, 2000.0, cluster.config().migration);
  const SimTime mid_pause = seconds(2) + plan.precopy_duration + msec(300);
  cluster.run_until(mid_pause);
  ASSERT_TRUE(cluster.engine().detached(vm));

  // Source crashes while the guest exists only in transit: the one
  // unrecoverable case — restart_orphans cannot save what no host holds.
  ASSERT_TRUE(cluster.crash_host(0, /*restart_orphans=*/true));
  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  EXPECT_EQ(rec.outcome, MigrationOutcome::kLostSourceCrash);
  EXPECT_EQ(rec.end, mid_pause);
  EXPECT_EQ(rec.credit_imported, SimTime{}) << "the crash broke conservation, on record";
  EXPECT_EQ(cluster.vm_state(vm), VmState::kLost);
  EXPECT_EQ(cluster.lost_vm_count(), 1u);
  EXPECT_EQ(cluster.running_vm_count(), 0u);
  EXPECT_TRUE(cluster.orphaned_vms().empty()) << "lost, not orphaned: nothing to recover";
  EXPECT_TRUE(cluster.crashed(0));
  EXPECT_FALSE(cluster.powered_on(0));
  EXPECT_FALSE(cluster.crash_host(1, true)) << "must refuse to crash the last live host";

  // The fleet keeps following the clock; a lost VM accrues nothing further.
  const SimTime observed = cluster.sla().observed_time(vm);
  cluster.run_until(seconds(20));
  EXPECT_EQ(cluster.sla().observed_time(vm), observed);
}

TEST(MigrationFaultTest, CrashWithRestartOrphansAndManagerRecovers) {
  Cluster cluster{two_host_config()};
  ClusterManagerConfig mc;
  mc.period = seconds(5);
  mc.consolidate = false;  // isolate the recovery path
  mc.vovo = false;
  mc.dvfs = ClusterManagerConfig::Dvfs::kPinnedMax;
  cluster.install_manager(std::make_unique<ClusterManager>(mc));
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 10.0, 512.0), std::make_unique<wl::BusyLoop>(), 0);

  cluster.run_until(seconds(12));
  ASSERT_TRUE(cluster.crash_host(0, /*restart_orphans=*/true));
  EXPECT_EQ(cluster.vm_state(vm), VmState::kOrphaned);
  ASSERT_EQ(cluster.orphaned_vms().size(), 1u);
  EXPECT_EQ(cluster.orphaned_vms().front(), vm);
  EXPECT_FALSE(cluster.migrate(vm, 1)) << "an orphan cannot be live-migrated";

  cluster.run_until(seconds(30));  // manager tick at t=15 runs the recovery pass
  EXPECT_EQ(cluster.vm_state(vm), VmState::kRunning);
  EXPECT_EQ(cluster.residence(vm), 1u);
  ASSERT_EQ(cluster.recoveries().size(), 1u);
  const VmRecovery& rec = cluster.recoveries().front();
  EXPECT_EQ(rec.vm, vm);
  EXPECT_EQ(rec.crashed_at, seconds(12));
  EXPECT_EQ(rec.restarted_at, seconds(15));
  EXPECT_EQ(rec.latency(), seconds(3));
  EXPECT_EQ(cluster.manager()->restarts_issued(), 1u);
  EXPECT_EQ(cluster.manager()->restarts_abandoned(), 0u);

  // Restart contract: purchased cap back (max frequency → uncompensated),
  // balance empty — the crash burned whatever the dead slot held — and the
  // outage SLA-charged in full.
  auto& dst_sched = dynamic_cast<sched::CreditScheduler&>(cluster.host(1).scheduler());
  const common::VmId s = cluster.slot_on(1, vm);  // created by the restart
  EXPECT_DOUBLE_EQ(dst_sched.cap(s), 10.0);
  EXPECT_GE(cluster.sla().violation_time(vm), seconds(3));
  EXPECT_GT(cluster.host(1).vm(s).total_work, common::Work{})
      << "recovered guest must actually run";
}

TEST(MigrationFaultTest, RestartBackoffGivesUp) {
  // The only live host is too small for the orphan: every recovery attempt
  // fails placement, the backoff doubles, and after max_restart_attempts
  // the VM is abandoned as lost — recovery must terminate, not spin.
  ClusterConfig cc;
  cc.host.trace_stride = SimTime{};
  platform::HostClass big;
  big.name = "big";
  big.memory_mb = 8192.0;
  platform::HostClass small;
  small.name = "small";
  small.memory_mb = 256.0;  // < the orphan's 512 MB reservation
  cc.host_classes = {big, small};
  Cluster cluster{std::move(cc)};
  ClusterManagerConfig mc;
  mc.period = seconds(5);
  mc.consolidate = false;
  mc.vovo = false;
  mc.dvfs = ClusterManagerConfig::Dvfs::kPinnedMax;
  mc.max_restart_attempts = 2;
  mc.restart_backoff = seconds(5);
  cluster.install_manager(std::make_unique<ClusterManager>(mc));
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 10.0, 512.0), std::make_unique<wl::BusyLoop>(), 0);

  cluster.run_until(seconds(12));
  ASSERT_TRUE(cluster.crash_host(0, /*restart_orphans=*/true));
  // Tick t=15: attempt 1 fails, next retry at t=20. Tick t=20: attempt 2
  // fails and exhausts the budget.
  cluster.run_until(seconds(40));
  EXPECT_EQ(cluster.vm_state(vm), VmState::kLost);
  EXPECT_EQ(cluster.lost_vm_count(), 1u);
  EXPECT_TRUE(cluster.recoveries().empty());
  EXPECT_EQ(cluster.manager()->restarts_issued(), 0u);
  EXPECT_EQ(cluster.manager()->restarts_abandoned(), 1u);
}

TEST(MigrationFaultTest, BrownoutSkipsTicksAndRecovers) {
  Cluster cluster{two_host_config()};
  ClusterManagerConfig mc;
  mc.period = seconds(10);
  mc.dvfs = ClusterManagerConfig::Dvfs::kPinnedMax;
  cluster.install_manager(std::make_unique<ClusterManager>(mc));
  const GlobalVmId vm0 =
      cluster.add_vm(hog_vm("a", 10.0, 512.0), std::make_unique<wl::IdleGuest>(), 0);
  const GlobalVmId vm1 =
      cluster.add_vm(hog_vm("b", 10.0, 512.0), std::make_unique<wl::IdleGuest>(), 1);
  // Planner browned out for [15 s, 35 s): the ticks at 20 and 30 vanish.
  cluster.manager()->add_brownout(seconds(15), seconds(35));

  // Tick t=10 consolidates the spread pair onto one host. Then, inside the
  // blackout, un-consolidate by hand: the drift the absent planner cannot
  // correct until the window ends.
  cluster.run_until(seconds(25));
  EXPECT_EQ(cluster.residence(vm0), cluster.residence(vm1)) << "t=10 tick consolidated";
  const HostId packed = cluster.residence(vm1);
  const HostId other = packed == 0 ? 1 : 0;
  ASSERT_TRUE(cluster.migrate(vm1, other));
  cluster.run_until(seconds(33));
  EXPECT_NE(cluster.residence(vm0), cluster.residence(vm1))
      << "no tick inside the brownout undoes the drift";

  // First live tick (t=40) re-plans from the drifted state and re-packs.
  cluster.run_until(seconds(60));
  EXPECT_EQ(cluster.residence(vm0), cluster.residence(vm1));
  EXPECT_EQ(cluster.manager()->ticks_skipped(), 2u);  // t=20, t=30
  EXPECT_EQ(cluster.manager()->ticks(), 4u);          // t=10, 40, 50, 60
  EXPECT_GE(cluster.manager()->migrations_issued(), 2u);
}

TEST(MigrationFaultTest, LinkDegradeExtendsInFlightMigration) {
  Cluster cluster{two_host_config()};
  const GlobalVmId vm =
      cluster.add_vm(hog_vm("hog", 20.0, 1024.0), std::make_unique<wl::BusyLoop>(), 0);

  cluster.run_until(seconds(5));
  ASSERT_TRUE(cluster.migrate(vm, 1));
  const MigrationPlan orig = plan_migration(1024.0, 50.0, cluster.config().migration);
  const SimTime orig_end = seconds(5) + orig.precopy_duration + orig.downtime;

  // Degrade the link 10× mid round 0 (the 1024 MB push spans [5, 6.024]).
  cluster.run_until(seconds(5) + msec(500));
  cluster.set_link_bandwidth(100.0);
  EXPECT_DOUBLE_EQ(cluster.link_bandwidth(), 100.0);

  cluster.run_until(seconds(60));
  ASSERT_EQ(cluster.migrations().size(), 1u);
  const MigrationRecord& rec = cluster.migrations().front();
  EXPECT_EQ(rec.outcome, MigrationOutcome::kCompleted);
  EXPECT_GT(rec.end, orig_end) << "a slower link must lengthen the migration";
  // Committed-round rule, exactly: round 0 finishes on its old schedule at
  // t=6.024; its 51.2 MB redirt pushes at 100 MB/s until t=6.536 (the
  // 25.6 MB redirt then clears the threshold), and the pause is
  // 25.6/100 s + 20 ms.
  EXPECT_EQ(rec.rounds, 2u);
  EXPECT_EQ(rec.stop, seconds(6) + common::usec(536'000));
  EXPECT_EQ(rec.downtime, msec(276));
  EXPECT_EQ(rec.end, seconds(6) + common::usec(812'000));
  EXPECT_NEAR(rec.transferred_mb, 1024.0 + 51.2 + 25.6, 1e-9);
  EXPECT_EQ(rec.credit_exported, rec.credit_imported);
  EXPECT_EQ(cluster.residence(vm), 1u);
  EXPECT_EQ(cluster.vm_state(vm), VmState::kRunning);
}

}  // namespace
}  // namespace pas::cluster
