// Trace-replay determinism + the record→replay round trip at cluster
// scale.
//
// Identity: draw_scenario(seed, hetero, /*trace_mix=*/true) re-rolls about
// half of each scenario's VMs into wl::TraceReplay over random step-series
// (off-grid timestamps, zero-demand gaps, series past the horizon), and
// the two engine contracts must hold bytes-for-bytes with those tenants in
// the mix: fast path ≡ reference loop (contract 1) and parallel ≡ serial
// at threads ∈ {1, 2, 4, hardware} (contract 3), migrations of replaying
// VMs included.
//
// Round trip (the ISSUE's loop closure): a synthetic hosting-cluster run
// recorded at trace_stride == monitor_window, exported per VM column
// through metrics::vm_demand_trace, replayed alone on a fresh host with
// capacity headroom and re-exported, reproduces each demand series CSV
// byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster_fuzz_common.hpp"
#include "common/thread_pool.hpp"
#include "metrics/trace_export.hpp"
#include "scenario/hosting_cluster.hpp"
#include "sched/credit_scheduler.hpp"

namespace pas::cluster {
namespace {

using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSpec;
using fuzz::WlKind;

std::size_t trace_vm_count(const ScenarioSpec& spec) {
  return static_cast<std::size_t>(
      std::count_if(spec.vms.begin(), spec.vms.end(),
                    [](const fuzz::VmSpecF& v) { return v.kind == WlKind::kTrace; }));
}

// The shared prefix really is shared: trace_mix must not disturb the
// historical draws (hosts, scheduler, the untouched VMs, the script).
TEST(ClusterTraceTest, TraceMixAppendsAfterTheSharedPrefix) {
  std::size_t converted = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ScenarioSpec plain = draw_scenario(seed);
    const ScenarioSpec mixed = draw_scenario(seed, /*hetero=*/false, /*trace_mix=*/true);
    ASSERT_EQ(plain.hosts, mixed.hosts) << seed;
    ASSERT_EQ(plain.sched, mixed.sched) << seed;
    ASSERT_EQ(plain.horizon, mixed.horizon) << seed;
    ASSERT_EQ(plain.vms.size(), mixed.vms.size()) << seed;
    ASSERT_EQ(plain.script.size(), mixed.script.size()) << seed;
    for (std::size_t i = 0; i < plain.script.size(); ++i) {
      ASSERT_EQ(plain.script[i].at, mixed.script[i].at) << seed;
      ASSERT_EQ(plain.script[i].vm, mixed.script[i].vm) << seed;
    }
    for (std::size_t i = 0; i < plain.vms.size(); ++i) {
      if (mixed.vms[i].kind == WlKind::kTrace) {
        ++converted;
        ASSERT_GE(mixed.vms[i].trace_points.size(), 3u) << seed;
      } else {
        ASSERT_EQ(plain.vms[i].kind, mixed.vms[i].kind) << seed << " vm " << i;
      }
      ASSERT_EQ(plain.vms[i].credit, mixed.vms[i].credit) << seed << " vm " << i;
      ASSERT_EQ(plain.vms[i].home, mixed.vms[i].home) << seed << " vm " << i;
    }
  }
  EXPECT_GT(converted, 20u);  // ~half of ~6.5 VMs over 20 seeds
}

// Contract 1 with replaying tenants: fast path ≡ reference loop.
TEST(ClusterTraceTest, FastPathIdenticalSeeds0to14) {
  std::size_t replaying = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed, /*hetero=*/false, /*trace_mix=*/true);
    replaying += trace_vm_count(spec);
    auto slow = build_cluster(spec, /*fast_path=*/false, /*threads=*/1);
    auto fast = build_cluster(spec, /*fast_path=*/true, /*threads=*/1);
    run_spec(*slow, spec);
    run_spec(*fast, spec);
    expect_identical(*slow, *fast, seed, "trace-mix slow vs fast");
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(replaying, 15u);  // vacuity: the sweep replayed real traces
}

// Contract 3 with replaying tenants, over mixed-class fleets too.
void run_parallel_seed_range(std::uint64_t first, std::uint64_t count, bool hetero) {
  std::vector<std::size_t> threads{2, 4, common::ThreadPool::hardware_threads()};
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  threads.erase(std::remove(threads.begin(), threads.end(), std::size_t{1}),
                threads.end());

  std::size_t replaying = 0;
  std::size_t migrations = 0;
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    const ScenarioSpec spec = draw_scenario(seed, hetero, /*trace_mix=*/true);
    replaying += trace_vm_count(spec);
    auto serial = build_cluster(spec, /*fast_path=*/true, /*threads=*/1);
    run_spec(*serial, spec);
    migrations += serial->migrations().size();
    for (const std::size_t t : threads) {
      auto parallel = build_cluster(spec, /*fast_path=*/true, t);
      run_spec(*parallel, spec);
      expect_identical(*serial, *parallel, seed,
                       std::string{hetero ? "hetero " : ""} + "trace-mix serial vs " +
                           std::to_string(t) + " threads");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(replaying, count) << "too few trace VMs across seeds";
  EXPECT_GT(migrations, count / 2) << "too few migrations across seeds";
}

TEST(ClusterTraceTest, ParallelIdenticalSeeds0to14) {
  run_parallel_seed_range(0, 15, /*hetero=*/false);
}
TEST(ClusterTraceTest, ParallelIdenticalHeteroSeeds0to14) {
  run_parallel_seed_range(0, 15, /*hetero=*/true);
}

// --- the round trip at cluster scale --------------------------------------

TEST(ClusterTraceTest, RecordedClusterRunReplaysByteIdentical) {
  scenario::HostingClusterConfig cfg;
  cfg.hosts = 2;
  cfg.vms = 8;
  cfg.horizon = common::seconds(120);
  cfg.trace_stride = common::seconds(1);  // == monitor window: rows tile time
  cfg.install_manager = false;            // static fleet; demand is the story
  auto recorded = scenario::build_hosting_cluster(cfg);
  recorded->run_until(cfg.horizon);

  std::size_t live_columns = 0;
  for (HostId h = 0; h < recorded->host_count(); ++h) {
    const metrics::TraceRecorder& rec = recorded->host(h).trace();
    ASSERT_GT(rec.size(), 100u);
    for (common::VmId slot = 0; slot < rec.vm_count(); ++slot) {
      const wl::Trace exported = metrics::vm_demand_trace(rec, slot, "rt");
      if (exported.total_work() > common::Work{}) ++live_columns;

      hv::HostConfig hc;
      hc.monitor_window = common::seconds(1);
      hc.trace_stride = common::seconds(1);
      hv::Host replay{hc, std::make_unique<sched::CreditScheduler>()};
      hv::VmConfig vc;
      vc.name = "replay";
      vc.credit = 95.0;
      replay.add_vm(vc, std::make_unique<wl::TraceReplay>(exported));
      replay.run_until(cfg.horizon);

      const auto& w = dynamic_cast<const wl::TraceReplay&>(replay.workload(0));
      EXPECT_TRUE(w.fully_served()) << "host " << h << " slot " << slot;
      const wl::Trace re_exported = metrics::vm_demand_trace(replay.trace(), 0, "rt");
      ASSERT_EQ(re_exported.to_csv(), exported.to_csv())
          << "host " << h << " slot " << slot;
    }
  }
  // Vacuity: the run must have produced real demand to replay (web + hog +
  // batch tenants across both hosts).
  EXPECT_GE(live_columns, 6u);
}

// The scenario preset behind the bench's --trace flag: deterministic
// assignment, and the same build twice is byte-identical run-for-run.
TEST(ClusterTraceTest, TracePresetIsDeterministic) {
  const auto traces = wl::Trace::load_dir(std::string{PAS_SOURCE_DIR} + "/examples/traces");
  ASSERT_EQ(traces.size(), 3u);

  scenario::HostingClusterConfig cfg;
  cfg.hosts = 4;
  cfg.vms = 16;
  cfg.horizon = common::seconds(400);
  cfg.workload = scenario::WorkloadPreset::kTrace;
  cfg.traces = traces;

  auto a = scenario::build_hosting_cluster(cfg);
  auto b = scenario::build_hosting_cluster(cfg);
  a->run_until(cfg.horizon);
  b->run_until(cfg.horizon);
  expect_identical(*a, *b, 0, "trace preset build A vs build B");

  // Missing traces fail loudly, not silently as an idle fleet.
  scenario::HostingClusterConfig empty = cfg;
  empty.traces.clear();
  EXPECT_THROW((void)scenario::build_hosting_cluster(empty), std::invalid_argument);
}

}  // namespace
}  // namespace pas::cluster
