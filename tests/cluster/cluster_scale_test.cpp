// Scale differential tests: the determinism guarantees the small-fleet
// fuzz suites pin (fast path ≡ reference loop, parallel ≡ serial at any
// thread count) must survive a fleet two orders of magnitude larger —
// 512 hosts — where the lazy-slot topology and the incremental planner
// actually carry the load. One seeded scenario, sized up through the
// draw_scenario size knob, run once per configuration and compared byte
// for byte.
//
// Registered with the "slow" ctest label (ctest -L slow) — these runs
// dominate the suite's wall time by design.
#include <gtest/gtest.h>

#include <string>

#include "cluster_fuzz_common.hpp"

namespace pas::cluster {
namespace {

using common::seconds;
using fuzz::build_cluster;
using fuzz::draw_scenario;
using fuzz::expect_identical;
using fuzz::run_spec;
using fuzz::ScenarioSize;
using fuzz::ScenarioSpec;

/// The shared 512-host scenario: a hetero fleet (the catalog mixes memory
/// sizes and power models, so efficient-first packing has real work to do)
/// with ~3 VMs per host and a short horizon — the scale is the point, not
/// the duration.
ScenarioSpec scale_spec(std::uint64_t seed) {
  ScenarioSize size;
  size.hosts = 512;
  size.vms = 1536;
  ScenarioSpec s = draw_scenario(seed, /*hetero=*/true, /*trace_mix=*/false, size);
  s.horizon = seconds(20);
  s.trace_stride = seconds(5);
  s.use_manager = true;
  s.mgr = ClusterManagerConfig{};
  s.mgr.period = seconds(5);
  s.mgr.max_migrations_per_tick = 8;
  return s;
}

TEST(ClusterScaleTest, SizeKnobPreservesHistoricalPrefix) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const bool hetero : {false, true}) {
      const ScenarioSpec base = draw_scenario(seed, hetero, /*trace_mix=*/true);
      ScenarioSize size;
      size.hosts = 64;
      size.vms = 100;
      const ScenarioSpec big = draw_scenario(seed, hetero, /*trace_mix=*/true, size);
      const std::string ctx =
          "seed " + std::to_string(seed) + (hetero ? " hetero" : "");

      ASSERT_EQ(big.hosts, base.hosts + size.hosts) << ctx;
      ASSERT_EQ(big.vms.size(), base.vms.size() + size.vms) << ctx;
      ASSERT_EQ(big.sched, base.sched) << ctx;
      ASSERT_EQ(big.horizon, base.horizon) << ctx;
      ASSERT_EQ(big.use_manager, base.use_manager) << ctx;
      ASSERT_EQ(big.mgr.period, base.mgr.period) << ctx;
      ASSERT_EQ(big.script.size(), base.script.size()) << ctx;
      for (std::size_t i = 0; i < base.script.size(); ++i) {
        ASSERT_EQ(big.script[i].at, base.script[i].at) << ctx << " move " << i;
        ASSERT_EQ(big.script[i].vm, base.script[i].vm) << ctx << " move " << i;
        ASSERT_EQ(big.script[i].to, base.script[i].to) << ctx << " move " << i;
      }
      ASSERT_EQ(big.classes.size(), hetero ? big.hosts : 0u) << ctx;
      for (std::size_t h = 0; h < base.classes.size(); ++h)
        ASSERT_EQ(big.classes[h].name, base.classes[h].name) << ctx << " host " << h;
      for (std::size_t i = 0; i < base.vms.size(); ++i) {
        ASSERT_EQ(big.vms[i].kind, base.vms[i].kind) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].credit, base.vms[i].credit) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].memory_mb, base.vms[i].memory_mb) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].home, base.vms[i].home) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].seed, base.vms[i].seed) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].from, base.vms[i].from) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].until, base.vms[i].until) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].rate, base.vms[i].rate) << ctx << " vm " << i;
        ASSERT_EQ(big.vms[i].trace_points.size(), base.vms[i].trace_points.size())
            << ctx << " vm " << i;
      }
      // Extension VMs may home anywhere in the enlarged fleet.
      for (std::size_t i = base.vms.size(); i < big.vms.size(); ++i)
        ASSERT_LT(big.vms[i].home, big.hosts) << ctx << " vm " << i;
    }
  }
}

TEST(ClusterScaleTest, FastPathMatchesReferenceAt512Hosts) {
  const ScenarioSpec s = scale_spec(3);
  auto fast = build_cluster(s, /*fast_path=*/true);
  auto reference = build_cluster(s, /*fast_path=*/false);
  run_spec(*fast, s);
  run_spec(*reference, s);
  expect_identical(*fast, *reference, 3, "fast vs reference @512 hosts");

  // Vacuity guard: the manager must have actually consolidated the fleet.
  ASSERT_NE(fast->manager(), nullptr);
  EXPECT_GT(fast->manager()->migrations_issued(), 0u);
  EXPECT_GT(fast->manager()->book_stats().plans, 0u);
}

TEST(ClusterScaleTest, ParallelDriversMatchSerialAt512Hosts) {
  const ScenarioSpec s = scale_spec(3);
  auto serial = build_cluster(s, /*fast_path=*/true, /*threads=*/1);
  run_spec(*serial, s);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    auto parallel = build_cluster(s, /*fast_path=*/true, threads);
    run_spec(*parallel, s);
    expect_identical(*serial, *parallel, 3,
                     "serial vs " + std::to_string(threads) + " threads @512 hosts");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace pas::cluster
