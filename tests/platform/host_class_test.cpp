// The platform-class catalog: stock classes stay distinct and physically
// sane, fleet mixing is deterministic, and the planner bridge carries
// every field.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "platform/host_class.hpp"

namespace pas::platform {
namespace {

TEST(HostClassTest, CatalogClassesAreDistinctAndSane) {
  const auto catalog = fleet_catalog();
  ASSERT_EQ(catalog.size(), 3u);
  std::set<std::string> names;
  for (const auto& c : catalog) {
    names.insert(c.name);
    EXPECT_GT(c.memory_mb, 0.0) << c.name;
    EXPECT_GE(c.numa_nodes, 1u) << c.name;
    EXPECT_GE(c.numa_spill_penalty, 0.0) << c.name;
    EXPECT_GT(c.power.idle_watts(), 0.0) << c.name;
    EXPECT_GT(c.power.busy_max_watts(), c.power.idle_watts()) << c.name;
    EXPECT_GE(c.ladder.size(), 2u) << c.name;
  }
  EXPECT_EQ(names.size(), catalog.size()) << "duplicate class names";
}

TEST(HostClassTest, XeonModelsTable1) {
  const HostClass xeon = xeon_e5_2620();
  // Table 1's cf_min ~ 0.80: lower states under-deliver relative to the
  // silently-turboing top state.
  EXPECT_NEAR(xeon.ladder.at(0).cf, 0.803, 1e-9);
  EXPECT_DOUBLE_EQ(xeon.ladder.max().cf, 1.0);
  EXPECT_EQ(xeon.numa_nodes, 2u);
  EXPECT_GT(xeon.numa_spill_penalty, 0.0);
}

TEST(HostClassTest, MixedFleetRoundRobinPreset) {
  const auto fleet = mixed_fleet_classes(7);  // seed 0: round-robin
  const auto catalog = fleet_catalog();
  ASSERT_EQ(fleet.size(), 7u);
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_EQ(fleet[i].name, catalog[i % catalog.size()].name) << "host " << i;
}

TEST(HostClassTest, MixedFleetSeededIsDeterministic) {
  const auto a = mixed_fleet_classes(16, 42);
  const auto b = mixed_fleet_classes(16, 42);
  const auto c = mixed_fleet_classes(16, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].name, b[i].name);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i].name != c[i].name;
  EXPECT_TRUE(any_diff) << "different seeds drew identical 16-host fleets";
}

TEST(HostClassTest, ToHostSpecCarriesEveryField) {
  const HostClass xeon = xeon_e5_2620();
  const consolidation::HostSpec spec = to_host_spec(xeon);
  EXPECT_EQ(spec.name, xeon.name);
  EXPECT_DOUBLE_EQ(spec.cpu_capacity_pct, xeon.cpu_capacity_pct);
  EXPECT_DOUBLE_EQ(spec.memory_mb, xeon.memory_mb);
  EXPECT_EQ(spec.numa_nodes, xeon.numa_nodes);
  EXPECT_DOUBLE_EQ(spec.numa_spill_penalty, xeon.numa_spill_penalty);
  EXPECT_DOUBLE_EQ(spec.power.idle_watts(), xeon.power.idle_watts());
  ASSERT_EQ(spec.ladder.size(), xeon.ladder.size());
  EXPECT_EQ(spec.ladder.at(0).freq, xeon.ladder.at(0).freq);

  const auto specs = fleet_specs({optiplex_755(), elite_8300()});
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "optiplex-755-0");
  EXPECT_EQ(specs[1].name, "elite-8300-1");
}

}  // namespace
}  // namespace pas::platform
