#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pas::sim {
namespace {

using common::msec;
using common::SimTime;

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(msec(30), [&](SimTime) { order.push_back(3); });
  q.schedule(msec(10), [&](SimTime) { order.push_back(1); });
  q.schedule(msec(20), [&](SimTime) { order.push_back(2); });
  q.run_until(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreaksByInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(msec(10), [&](SimTime) { order.push_back(1); });
  q.schedule(msec(10), [&](SimTime) { order.push_back(2); });
  q.schedule(msec(10), [&](SimTime) { order.push_back(3); });
  q.run_until(msec(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, RespectsUntilBoundInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule(msec(10), [&](SimTime) { ++fired; });
  q.schedule(msec(11), [&](SimTime) { ++fired; });
  q.run_until(msec(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(msec(11));
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EventsMaySchedule) {
  EventQueue q;
  std::vector<SimTime> fired_at;
  q.schedule(msec(5), [&](SimTime now) {
    fired_at.push_back(now);
    q.schedule(now + msec(5), [&](SimTime n2) { fired_at.push_back(n2); });
  });
  q.run_until(msec(20));
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], msec(5));
  EXPECT_EQ(fired_at[1], msec(10));
}

TEST(EventQueueTest, ChainedEventsPastBoundWait) {
  EventQueue q;
  int fired = 0;
  q.schedule(msec(5), [&](SimTime now) {
    ++fired;
    q.schedule(now + msec(100), [&](SimTime) { ++fired; });
  });
  q.run_until(msec(50));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, Cancel) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(msec(10), [&](SimTime) { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_until(msec(100));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(msec(1), [](SimTime) {});
  q.run_until(msec(1));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, NextEventTime) {
  EventQueue q;
  EXPECT_EQ(q.next_event_time(msec(99)), msec(99));
  q.schedule(msec(42), [](SimTime) {});
  EXPECT_EQ(q.next_event_time(msec(99)), msec(42));
}

TEST(EventQueueTest, PastEventsFireAtNextDispatch) {
  EventQueue q;
  int fired = 0;
  q.schedule(msec(1), [&](SimTime) { ++fired; });
  q.run_until(msec(50));
  q.schedule(msec(10), [&](SimTime) { ++fired; });  // "past" by wall clock
  q.run_until(msec(50));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelTopExposesNextEventTime) {
  // cancel() removes the heap entry eagerly, so next_event_time() must not
  // report the cancelled instant.
  EventQueue q;
  const EventId top = q.schedule(msec(5), [](SimTime) {});
  q.schedule(msec(40), [](SimTime) {});
  EXPECT_EQ(q.next_event_time(msec(99)), msec(5));
  EXPECT_TRUE(q.cancel(top));
  EXPECT_EQ(q.next_event_time(msec(99)), msec(40));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, CancelMiddlePreservesOrdering) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(msec(10), [&](SimTime) { order.push_back(1); });
  const EventId mid = q.schedule(msec(20), [&](SimTime) { order.push_back(2); });
  q.schedule(msec(30), [&](SimTime) { order.push_back(3); });
  q.schedule(msec(40), [&](SimTime) { order.push_back(4); });
  EXPECT_TRUE(q.cancel(mid));
  q.run_until(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  // After an event fires, its slot is recycled; the old id must not be able
  // to cancel the slot's new tenant.
  EventQueue q;
  const EventId old_id = q.schedule(msec(1), [](SimTime) {});
  q.run_until(msec(1));
  int fired = 0;
  q.schedule(msec(10), [&](SimTime) { ++fired; });  // likely reuses the slot
  EXPECT_FALSE(q.cancel(old_id));
  q.run_until(msec(10));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, HandlerMayCancelPendingEvent) {
  EventQueue q;
  int fired = 0;
  const EventId victim = q.schedule(msec(20), [&](SimTime) { ++fired; });
  q.schedule(msec(10), [&](SimTime) { EXPECT_TRUE(q.cancel(victim)); });
  q.run_until(msec(100));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InterleavedScheduleCancelStress) {
  // Deterministic schedule/cancel interleaving checked against a simple
  // reference model of which events must survive.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  std::vector<int> expected;
  for (int i = 0; i < 500; ++i) {
    const int when_ms = (i * 7919) % 1000;  // deterministic scatter
    ids.push_back(q.schedule(msec(when_ms), [&fired, i](SimTime) { fired.push_back(i); }));
    if (i % 3 == 2) {
      EXPECT_TRUE(q.cancel(ids[i - 1]));
      ids[i - 1] = kInvalidEvent;
    }
  }
  for (int i = 0; i < 500; ++i)
    if (ids[i] != kInvalidEvent) expected.push_back(i);
  q.run_until(msec(1000));
  ASSERT_EQ(fired.size(), expected.size());
  // Every surviving event fired exactly once; verify (time, insertion) order.
  std::vector<int> sorted = expected;
  std::stable_sort(sorted.begin(), sorted.end(), [](int a, int b) {
    return (a * 7919) % 1000 < (b * 7919) % 1000;
  });
  EXPECT_EQ(fired, sorted);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> fired;
  for (int i = 999; i >= 0; --i) {
    q.schedule(msec(i), [&fired](SimTime now) { fired.push_back(now.us()); });
  }
  q.run_until(msec(1000));
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace pas::sim
