#include "sim/periodic.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pas::sim {
namespace {

using common::msec;
using common::SimTime;

TEST(PeriodicTaskTest, FiresEveryPeriod) {
  EventQueue q;
  std::vector<SimTime> fired;
  PeriodicTask task{q, msec(10), msec(10), [&](SimTime t) { fired.push_back(t); }};
  q.run_until(msec(55));
  ASSERT_EQ(fired.size(), 5u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], msec(10) * static_cast<std::int64_t>(i + 1));
  }
}

TEST(PeriodicTaskTest, FirstFiringOffset) {
  EventQueue q;
  std::vector<SimTime> fired;
  PeriodicTask task{q, msec(5), msec(20), [&](SimTime t) { fired.push_back(t); }};
  q.run_until(msec(50));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], msec(5));
  EXPECT_EQ(fired[1], msec(25));
  EXPECT_EQ(fired[2], msec(45));
}

TEST(PeriodicTaskTest, StopCancelsFutureFirings) {
  EventQueue q;
  int fired = 0;
  PeriodicTask task{q, msec(10), msec(10), [&](SimTime) { ++fired; }};
  q.run_until(msec(25));
  EXPECT_EQ(fired, 2);
  task.stop();
  q.run_until(msec(100));
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTaskTest, DestructionCancels) {
  EventQueue q;
  int fired = 0;
  {
    PeriodicTask task{q, msec(10), msec(10), [&](SimTime) { ++fired; }};
    q.run_until(msec(10));
  }
  q.run_until(msec(100));
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTaskTest, TwoTasksInterleave) {
  EventQueue q;
  std::vector<int> order;
  PeriodicTask a{q, msec(10), msec(10), [&](SimTime) { order.push_back(1); }};
  PeriodicTask b{q, msec(15), msec(15), [&](SimTime) { order.push_back(2); }};
  q.run_until(msec(30));
  // t=10:a, t=15:b, t=20:a, t=30: b then a (b re-armed at t=15, so its
  // pending event has the smaller insertion id and wins the tie).
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1}));
}

}  // namespace
}  // namespace pas::sim
