#include "hypervisor/host.hpp"

#include <gtest/gtest.h>

#include "sched/credit_scheduler.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"

namespace pas::hv {
namespace {

using common::mf_seconds;
using common::seconds;

HostConfig quiet_config() {
  HostConfig hc;
  hc.trace_stride = seconds(1);
  return hc;
}

TEST(HostTest, RequiresScheduler) {
  EXPECT_THROW(Host(quiet_config(), nullptr), std::invalid_argument);
}

TEST(HostTest, SingleBusyVmUsesFullCpu) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.name = "hog";
  cfg.credit = 100.0;
  const auto id = host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(10));
  // 100 % credit, always runnable, max frequency: ~10 s busy, ~10 mf-s work.
  EXPECT_NEAR(host.vm(id).total_busy.sec(), 10.0, 0.05);
  EXPECT_NEAR(host.vm(id).total_work.mf_seconds(), 10.0, 0.05);
  EXPECT_NEAR(host.idle_time().sec(), 0.0, 0.05);
}

TEST(HostTest, CreditCapEnforced) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.name = "v20";
  cfg.credit = 20.0;
  const auto id = host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(100));
  EXPECT_NEAR(host.vm(id).total_busy.sec(), 20.0, 0.5);
  EXPECT_NEAR(host.idle_time().sec(), 80.0, 0.5);
}

TEST(HostTest, IdleGuestNeverRuns) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 50.0;
  const auto id = host.add_vm(cfg, std::make_unique<wl::IdleGuest>());
  host.run_until(seconds(5));
  EXPECT_EQ(host.vm(id).total_busy, common::SimTime{});
  EXPECT_NEAR(host.idle_time().sec(), 5.0, 0.01);
}

TEST(HostTest, PiAppCompletesAtExpectedTime) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 100.0;
  auto app = std::make_unique<wl::PiApp>(mf_seconds(5.0));
  const wl::PiApp* pi = app.get();
  host.add_vm(cfg, std::move(app));
  host.run_until(seconds(10));
  ASSERT_TRUE(pi->completion_time().has_value());
  EXPECT_NEAR(pi->completion_time()->sec(), 5.0, 0.05);
}

TEST(HostTest, LowerFrequencySlowsPiApp) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 100.0;
  auto app = std::make_unique<wl::PiApp>(mf_seconds(5.0));
  const wl::PiApp* pi = app.get();
  host.add_vm(cfg, std::move(app));
  host.cpufreq().request(0);  // 1600/2667 = 0.6 speed
  host.run_until(seconds(20));
  ASSERT_TRUE(pi->completion_time().has_value());
  EXPECT_NEAR(pi->completion_time()->sec(), 5.0 / (1600.0 / 2667.0), 0.2);
}

TEST(HostTest, TraceSamplesRecorded) {
  HostConfig hc = quiet_config();
  hc.trace_stride = seconds(2);
  Host host{hc, std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 100.0;
  host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(10));
  EXPECT_EQ(host.trace().samples().size(), 5u);
  EXPECT_DOUBLE_EQ(host.trace().samples().front().freq_mhz, 2667.0);
  EXPECT_NEAR(host.trace().samples().back().vm_global_pct[0], 100.0, 1.0);
}

TEST(HostTest, AddVmBetweenSegmentsJoinsTheRun) {
  // Mid-run add_vm is a segment-boundary operation (a cluster creating a
  // migration slot lazily): the new VM joins scheduling, its trace history
  // pads with zeros, and earlier residents are unaffected.
  HostConfig hc = quiet_config();
  hc.trace_stride = seconds(1);
  Host host{hc, std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 40.0;
  const auto first = host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(2));
  const auto late = host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(4));

  EXPECT_GT(host.vm(late).total_work, common::Work{});
  EXPECT_GT(host.vm(first).total_work, host.vm(late).total_work);
  // Every trace row spans the final VM count; rows before the add are
  // zero-padded for the late slot.
  for (const auto& sample : host.trace().samples())
    ASSERT_EQ(sample.vm_global_pct.size(), 2u);
  EXPECT_DOUBLE_EQ(host.trace().samples().front().vm_global_pct[late], 0.0);
}

TEST(HostTest, SaturationDetection) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig hog;
  hog.credit = 20.0;
  const auto hog_id = host.add_vm(hog, std::make_unique<wl::BusyLoop>());
  VmConfig lazy;
  lazy.credit = 70.0;
  const auto lazy_id = host.add_vm(lazy, std::make_unique<wl::IdleGuest>());
  host.run_until(seconds(5));
  EXPECT_TRUE(host.vm_saturated_last_window(hog_id));
  EXPECT_FALSE(host.vm_saturated_last_window(lazy_id));
}

TEST(HostTest, EnergyAccountedForWholeRun) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 50.0;
  host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(10));
  EXPECT_NEAR(host.energy().elapsed().sec(), 10.0, 0.01);
  // Between pure idle and pure busy at max frequency.
  EXPECT_GT(host.energy().joules(), 45.0 * 10 * 0.99);
  EXPECT_LT(host.energy().joules(), 105.0 * 10 * 1.01);
}

TEST(HostTest, WorkloadAccessor) {
  Host host{quiet_config(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 100.0;
  const auto id = host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(2));
  auto& wlr = dynamic_cast<wl::BusyLoop&>(host.workload(id));
  EXPECT_GT(wlr.total_consumed().mf_seconds(), 1.0);
}

}  // namespace
}  // namespace pas::hv
