// Fast-path regression tests: the event-driven loop (time skipping +
// incremental runnable tracking) must reproduce the slow-stepped reference
// loop exactly, and the quantum loop's edge paths (spurious wakeups,
// all-over-cap idling) must behave identically in both modes.
#include <gtest/gtest.h>

#include <memory>

#include "core/pas_controller.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit2_scheduler.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/scheduler_factory.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/load_profile.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::hv {
namespace {

using common::mf_seconds;
using common::seconds;
using common::SimTime;

/// Claims to be runnable but never performs work — the spurious-wakeup
/// path (`done <= 0`, `busy == 0`). Uses the default "unknown" transition
/// hint, so it also exercises the poll-every-quantum fallback.
class SpuriousWorkload final : public wl::Workload {
 public:
  void advance_to(SimTime now) override { now_ = now; }
  [[nodiscard]] bool runnable() const override { return true; }
  common::Work consume(SimTime /*now*/, common::Work /*budget*/) override {
    ++consume_calls_;
    return common::Work{};
  }
  [[nodiscard]] std::uint64_t consume_calls() const { return consume_calls_; }

 private:
  SimTime now_{};
  std::uint64_t consume_calls_ = 0;
};

enum class Sched { kCredit, kSedf, kCredit2 };

std::unique_ptr<Scheduler> make_sched(Sched kind) {
  switch (kind) {
    case Sched::kCredit:
      return std::make_unique<sched::CreditScheduler>();
    case Sched::kSedf:
      return std::make_unique<sched::SedfScheduler>();
    case Sched::kCredit2:
      return std::make_unique<sched::Credit2Scheduler>();
  }
  return nullptr;
}

/// A small hosting mix that exercises every workload kind and both idle
/// tails (no-runnable stretches and over-cap stretches).
std::unique_ptr<Host> build_mixed_host(bool fast_path, Sched kind, bool controller) {
  HostConfig hc;
  hc.trace_stride = seconds(1);
  hc.event_driven_fast_path = fast_path;
  auto host = std::make_unique<Host>(hc, make_sched(kind));
  host->set_governor(gov::make_governor("stable-ondemand"));
  if (controller) host->set_controller(std::make_unique<core::PasController>());

  {
    VmConfig cfg;
    cfg.name = "web";
    cfg.credit = 10.0;
    wl::WebAppConfig wc;
    wc.queue_capacity = 200;
    wc.seed = 42;
    const double rate = wl::WebApp::rate_for_demand(10.0, wc.request_cost);
    host->add_vm(cfg, std::make_unique<wl::WebApp>(
                          wl::LoadProfile::pulse(seconds(10), seconds(70), rate), wc));
  }
  {
    VmConfig cfg;
    cfg.name = "hog";
    cfg.credit = 15.0;
    host->add_vm(cfg, std::make_unique<wl::GatedBusyLoop>(
                          wl::LoadProfile::pulse(seconds(30), seconds(90), 1.0)));
  }
  {
    VmConfig cfg;
    cfg.name = "batch";
    cfg.credit = 20.0;
    host->add_vm(cfg, std::make_unique<wl::PiApp>(mf_seconds(3.0), seconds(40)));
  }
  {
    VmConfig cfg;
    cfg.name = "idle";
    cfg.credit = 10.0;
    host->add_vm(cfg, std::make_unique<wl::IdleGuest>());
  }
  return host;
}

void expect_identical_runs(Sched kind, bool controller) {
  auto slow = build_mixed_host(/*fast_path=*/false, kind, controller);
  auto fast = build_mixed_host(/*fast_path=*/true, kind, controller);
  slow->run_until(seconds(120));
  fast->run_until(seconds(120));

  // Byte-identical trace: every sampled quantity, every row.
  const auto sa = slow->trace().samples();
  const auto sb = fast->trace().samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    const auto ra = sa[i];
    const auto rb = sb[i];
    EXPECT_EQ(ra.t, rb.t) << "row " << i;
    EXPECT_EQ(ra.freq_mhz, rb.freq_mhz) << "row " << i;
    EXPECT_EQ(ra.global_load_pct, rb.global_load_pct) << "row " << i;
    EXPECT_EQ(ra.absolute_load_pct, rb.absolute_load_pct) << "row " << i;
    for (std::size_t v = 0; v < slow->vm_count(); ++v) {
      EXPECT_EQ(ra.vm_global_pct[v], rb.vm_global_pct[v]) << "row " << i << " vm " << v;
      EXPECT_EQ(ra.vm_absolute_pct[v], rb.vm_absolute_pct[v]) << "row " << i << " vm " << v;
      EXPECT_EQ(ra.vm_credit_pct[v], rb.vm_credit_pct[v]) << "row " << i << " vm " << v;
      EXPECT_EQ(ra.vm_saturated[v], rb.vm_saturated[v]) << "row " << i << " vm " << v;
    }
  }
  // Integer accounting is exactly equal; energy may differ only by
  // floating-point summation order across idle chunks.
  EXPECT_EQ(slow->idle_time(), fast->idle_time());
  EXPECT_EQ(slow->cpufreq().transition_count(), fast->cpufreq().transition_count());
  for (common::VmId v = 0; v < slow->vm_count(); ++v) {
    EXPECT_EQ(slow->vm(v).total_busy, fast->vm(v).total_busy) << "vm " << v;
    EXPECT_EQ(slow->vm(v).total_work, fast->vm(v).total_work) << "vm " << v;
    EXPECT_EQ(slow->vm(v).window_wanting, fast->vm(v).window_wanting) << "vm " << v;
  }
  EXPECT_NEAR(slow->energy().joules(), fast->energy().joules(),
              1e-6 * slow->energy().joules());
}

TEST(HostFastPathTest, TraceIdenticalToSlowLoopCredit) {
  expect_identical_runs(Sched::kCredit, /*controller=*/false);
}

TEST(HostFastPathTest, TraceIdenticalToSlowLoopCreditWithPasController) {
  expect_identical_runs(Sched::kCredit, /*controller=*/true);
}

TEST(HostFastPathTest, TraceIdenticalToSlowLoopSedf) {
  expect_identical_runs(Sched::kSedf, /*controller=*/false);
}

TEST(HostFastPathTest, TraceIdenticalToSlowLoopCredit2) {
  expect_identical_runs(Sched::kCredit2, /*controller=*/false);
}

TEST(HostFastPathTest, BulkIdleSkipMatchesSteppedRun) {
  // The cluster's sparse driver replaces run_until(target) with
  // skip_idle_to(target) whenever the quiescence certificate covers the
  // segment. The two must be byte-identical — trace rows, idle time,
  // energy down to the exact double — both across the skipped stretch and
  // after the host wakes back up.
  auto build = [] {
    HostConfig hc;
    hc.trace_stride = seconds(1);
    hc.event_driven_fast_path = true;
    auto host = std::make_unique<Host>(hc, std::make_unique<sched::CreditScheduler>());
    VmConfig cfg;
    cfg.name = "gated";
    cfg.credit = 20.0;
    host->add_vm(cfg, std::make_unique<wl::GatedBusyLoop>(wl::LoadProfile{{
                          {seconds(2), 1.0},
                          {seconds(5), 0.0},
                          {seconds(40), 1.0},
                          {seconds(45), 0.0},
                      }}));
    VmConfig idle;
    idle.name = "idle";
    idle.credit = 10.0;
    host->add_vm(idle, std::make_unique<wl::IdleGuest>());
    return host;
  };
  auto skipped = build();
  auto stepped = build();

  auto expect_equal = [&](const char* where) {
    ASSERT_EQ(skipped->now(), stepped->now()) << where;
    EXPECT_EQ(skipped->idle_time(), stepped->idle_time()) << where;
    EXPECT_EQ(skipped->energy().joules(), stepped->energy().joules()) << where;
    for (common::VmId v = 0; v < skipped->vm_count(); ++v) {
      EXPECT_EQ(skipped->vm(v).total_busy, stepped->vm(v).total_busy)
          << where << " vm " << v;
      EXPECT_EQ(skipped->vm(v).window_wanting, stepped->vm(v).window_wanting)
          << where << " vm " << v;
    }
    const auto sa = skipped->trace().samples();
    const auto sb = stepped->trace().samples();
    ASSERT_EQ(sa.size(), sb.size()) << where;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const auto ra = sa[i];
      const auto rb = sb[i];
      EXPECT_EQ(ra.t, rb.t) << where << " row " << i;
      EXPECT_EQ(ra.freq_mhz, rb.freq_mhz) << where << " row " << i;
      EXPECT_EQ(ra.global_load_pct, rb.global_load_pct) << where << " row " << i;
      EXPECT_EQ(ra.absolute_load_pct, rb.absolute_load_pct) << where << " row " << i;
      for (std::size_t v = 0; v < skipped->vm_count(); ++v) {
        EXPECT_EQ(ra.vm_global_pct[v], rb.vm_global_pct[v])
            << where << " row " << i << " vm " << v;
        EXPECT_EQ(ra.vm_credit_pct[v], rb.vm_credit_pct[v])
            << where << " row " << i << " vm " << v;
        EXPECT_EQ(ra.vm_saturated[v], rb.vm_saturated[v])
            << where << " row " << i << " vm " << v;
      }
    }
  };

  // Phase 1: run both through the busy pulse into the idle stretch.
  skipped->run_until(seconds(10));
  stepped->run_until(seconds(10));
  expect_equal("after pulse");

  // Phase 2: the certificate must cover the idle stretch (next real
  // activity is the 40 s profile edge); bulk-skip one host, step the other.
  ASSERT_GE(skipped->next_activity_time(), seconds(30));
  skipped->skip_idle_to(seconds(30));
  stepped->run_until(seconds(30));
  expect_equal("after skip");

  // Phase 3: both continue through the wake-up pulse — the skip must have
  // left every piece of state (periodic phases, monitor windows, credit
  // refill) exactly where the stepped run put it.
  skipped->run_until(seconds(60));
  stepped->run_until(seconds(60));
  // The 40-45 s pulse ran (capped at 20 % credit, so ~1.6 s total busy
  // across both pulses — well above the ~0.6 s of the first alone).
  EXPECT_GT(skipped->vm(0).total_busy, seconds(1));
  expect_equal("after wake-up");
}

TEST(HostFastPathTest, OffGridEventPeriodsStayIdentical) {
  // Periodic events whose period is not a multiple of the quantum cut the
  // reference loop's slices short and shift every later quantum boundary.
  // The no-runnable skip crosses such events, so its hint wake-up boundary
  // must be recomputed on the re-anchored grid — regression for a bug where
  // it kept the grid of the skip's start and woke one quantum off.
  auto build = [](bool fast) {
    HostConfig hc;
    hc.trace_stride = common::msec(15);    // off the 10 ms quantum grid
    hc.monitor_window = common::msec(730);  // also off-grid
    hc.event_driven_fast_path = fast;
    auto host = std::make_unique<Host>(hc, std::make_unique<sched::CreditScheduler>());
    VmConfig cfg;
    cfg.name = "web";
    cfg.credit = 5.0;
    wl::WebAppConfig wc;
    wc.seed = 7;
    const double rate = wl::WebApp::rate_for_demand(5.0, wc.request_cost);
    host->add_vm(cfg, std::make_unique<wl::WebApp>(
                          wl::LoadProfile::pulse(seconds(3), seconds(6), rate), wc));
    return host;
  };
  auto slow = build(false);
  auto fast = build(true);
  slow->run_until(seconds(20));
  fast->run_until(seconds(20));
  EXPECT_EQ(slow->idle_time(), fast->idle_time());
  EXPECT_EQ(slow->vm(0).total_busy, fast->vm(0).total_busy);
  const auto& web_slow = dynamic_cast<const wl::WebApp&>(slow->workload(0));
  const auto& web_fast = dynamic_cast<const wl::WebApp&>(fast->workload(0));
  EXPECT_EQ(web_slow.completed(), web_fast.completed());
  EXPECT_EQ(web_slow.latency_sec().mean(), web_fast.latency_sec().mean());
  ASSERT_EQ(slow->trace().size(), fast->trace().size());
  for (std::size_t i = 0; i < slow->trace().size(); ++i) {
    EXPECT_EQ(slow->trace().sample(i).vm_global_pct[0],
              fast->trace().sample(i).vm_global_pct[0])
        << "row " << i;
  }
}

TEST(HostFastPathTest, SpuriousWakeupRetriesOthers) {
  // A workload that claims runnable but consumes nothing must not absorb
  // the quantum: the scheduler retries and the real hog gets the CPU.
  for (const bool fast : {false, true}) {
    HostConfig hc;
    hc.trace_stride = SimTime{};
    hc.event_driven_fast_path = fast;
    Host host{hc, std::make_unique<sched::CreditScheduler>()};
    VmConfig ghost;
    ghost.name = "ghost";
    ghost.credit = 50.0;
    auto spurious = std::make_unique<SpuriousWorkload>();
    const auto* sp = spurious.get();
    const auto ghost_id = host.add_vm(ghost, std::move(spurious));
    VmConfig hog;
    hog.name = "hog";
    hog.credit = 30.0;
    const auto hog_id = host.add_vm(hog, std::make_unique<wl::BusyLoop>());
    host.run_until(seconds(10));
    EXPECT_EQ(host.vm(ghost_id).total_busy, SimTime{}) << "fast=" << fast;
    EXPECT_GT(sp->consume_calls(), 100u) << "fast=" << fast;
    EXPECT_NEAR(host.vm(hog_id).total_busy.sec(), 3.0, 0.1) << "fast=" << fast;
    // Once a spurious wakeup blocks the VM for the slice it no longer
    // counts as "wanting" the CPU, so it must NOT read as saturated.
    EXPECT_FALSE(host.vm_saturated_last_window(ghost_id)) << "fast=" << fast;
  }
}

TEST(HostFastPathTest, SpuriousOnlyVmDoesNotHang) {
  HostConfig hc;
  hc.trace_stride = SimTime{};
  Host host{hc, std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 50.0;
  host.add_vm(cfg, std::make_unique<SpuriousWorkload>());
  host.run_until(seconds(5));
  EXPECT_EQ(host.now(), seconds(5));
  EXPECT_EQ(host.idle_time(), seconds(5));
}

TEST(HostFastPathTest, AllOverCapIdleAccruesWanting) {
  // A single capped hog: the CPU idles 80 % of the time while the VM keeps
  // wanting it — the saturation signal the monitor feeds the controllers.
  for (const bool fast : {false, true}) {
    HostConfig hc;
    hc.trace_stride = SimTime{};
    hc.event_driven_fast_path = fast;
    Host host{hc, std::make_unique<sched::CreditScheduler>()};
    VmConfig cfg;
    cfg.name = "v20";
    cfg.credit = 20.0;
    const auto id = host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
    // Stop just shy of the window close so window_wanting is observable.
    host.run_until(common::msec(990));
    EXPECT_NEAR(host.window_wanting_fraction(id), 0.99, 0.011) << "fast=" << fast;
    host.run_until(seconds(10));
    EXPECT_TRUE(host.vm_saturated_last_window(id)) << "fast=" << fast;
    EXPECT_NEAR(host.vm(id).total_busy.sec(), 2.0, 0.1) << "fast=" << fast;
    EXPECT_NEAR(host.idle_time().sec(), 8.0, 0.1) << "fast=" << fast;
  }
}

TEST(HostFastPathTest, OverCapIdleIdenticalAcrossModes) {
  // Over-cap idling down to the microsecond: both modes agree on the
  // wanting accrual, busy time and idle time.
  Host slow{[] {
              HostConfig hc;
              hc.trace_stride = SimTime{};
              hc.event_driven_fast_path = false;
              return hc;
            }(),
            std::make_unique<sched::CreditScheduler>()};
  Host fast{[] {
              HostConfig hc;
              hc.trace_stride = SimTime{};
              hc.event_driven_fast_path = true;
              return hc;
            }(),
            std::make_unique<sched::CreditScheduler>()};
  for (Host* h : {&slow, &fast}) {
    VmConfig a;
    a.credit = 15.0;
    h->add_vm(a, std::make_unique<wl::BusyLoop>());
    VmConfig b;
    b.credit = 25.0;
    h->add_vm(b, std::make_unique<wl::GatedBusyLoop>(
                     wl::LoadProfile::pulse(seconds(2), seconds(7), 1.0)));
    h->run_until(common::msec(8765));
  }
  EXPECT_EQ(slow.idle_time(), fast.idle_time());
  for (common::VmId v = 0; v < 2; ++v) {
    EXPECT_EQ(slow.vm(v).total_busy, fast.vm(v).total_busy);
    EXPECT_EQ(slow.vm(v).window_wanting, fast.vm(v).window_wanting);
  }
}

}  // namespace
}  // namespace pas::hv
