// Conservation properties of the host loop: busy + idle = wall time, work
// done = busy * speed, across schedulers, frequencies and workload mixes.
// These invariants are what make every load figure in the paper meaningful.
#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/scheduler_factory.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::hv {
namespace {

using common::seconds;
using common::SimTime;

struct ConservationCase {
  sched::SchedulerKind scheduler;
  std::size_t freq_index;
  double credit_a;
  double credit_b;
};

class ConservationTest : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(ConservationTest, BusyPlusIdleEqualsWallTime) {
  const auto& p = GetParam();
  HostConfig hc;
  hc.trace_stride = SimTime{};
  Host host{hc, sched::make_scheduler(p.scheduler)};

  VmConfig a;
  a.name = "a";
  a.credit = p.credit_a;
  host.add_vm(a, std::make_unique<wl::BusyLoop>());

  VmConfig b;
  b.name = "b";
  b.credit = p.credit_b;
  wl::WebAppConfig wc;
  wc.seed = 3;
  host.add_vm(b, std::make_unique<wl::WebApp>(
                     wl::LoadProfile::constant(wl::WebApp::rate_for_demand(
                         p.credit_b * 0.5, wc.request_cost)),
                     wc));

  host.cpufreq().request(p.freq_index);
  const SimTime total = seconds(50);
  host.run_until(total);

  const SimTime busy = host.vm(0).total_busy + host.vm(1).total_busy;
  EXPECT_EQ((busy + host.idle_time()).us(), total.us());

  // Work performed never exceeds busy * speed at the *fastest* state used.
  const double speed = host.cpu().ladder().ratio(p.freq_index);
  const double work = host.vm(0).total_work.mf_seconds() + host.vm(1).total_work.mf_seconds();
  EXPECT_LE(work, busy.sec() * speed + 1e-6);
  // And the busy hog should have converted all its busy time into work.
  EXPECT_NEAR(host.vm(0).total_work.mf_seconds(), host.vm(0).total_busy.sec() * speed,
              0.01 * host.vm(0).total_busy.sec() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationTest,
    ::testing::Values(
        ConservationCase{sched::SchedulerKind::kCredit, 4, 20.0, 70.0},
        ConservationCase{sched::SchedulerKind::kCredit, 0, 20.0, 70.0},
        ConservationCase{sched::SchedulerKind::kCredit, 2, 50.0, 50.0},
        ConservationCase{sched::SchedulerKind::kCredit, 4, 100.0, 0.0},
        ConservationCase{sched::SchedulerKind::kSedf, 4, 20.0, 70.0},
        ConservationCase{sched::SchedulerKind::kSedf, 0, 20.0, 70.0},
        ConservationCase{sched::SchedulerKind::kSedf, 2, 40.0, 40.0},
        ConservationCase{sched::SchedulerKind::kSedf, 1, 90.0, 10.0}));

TEST(ConservationTest, MonitorWindowsSumToCumulative) {
  HostConfig hc;
  hc.trace_stride = seconds(1);
  Host host{hc, std::make_unique<sched::CreditScheduler>()};
  VmConfig a;
  a.credit = 30.0;
  host.add_vm(a, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(20));
  // Mean of per-window global loads equals the cumulative busy fraction.
  double sum = 0.0;
  for (const auto& s : host.trace().samples()) sum += s.vm_global_pct[0];
  const double mean_windows = sum / static_cast<double>(host.trace().samples().size());
  const double cumulative =
      100.0 * host.vm(0).total_busy.sec() / host.now().sec();
  EXPECT_NEAR(mean_windows, cumulative, 1.5);
}

TEST(ConservationTest, FrequencyChangeMidRunKeepsAccounting) {
  HostConfig hc;
  hc.trace_stride = SimTime{};
  Host host{hc, std::make_unique<sched::CreditScheduler>()};
  VmConfig a;
  a.credit = 100.0;
  host.add_vm(a, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(10));
  host.cpufreq().request(0);
  host.run_until(seconds(20));
  const double expected_work = 10.0 * 1.0 + 10.0 * (1600.0 / 2667.0);
  EXPECT_NEAR(host.vm(0).total_work.mf_seconds(), expected_work, 0.1);
  EXPECT_NEAR(host.vm(0).total_busy.sec(), 20.0, 0.05);
}

}  // namespace
}  // namespace pas::hv
