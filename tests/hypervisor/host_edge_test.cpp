// Host edge cases and failure injection.
#include <gtest/gtest.h>

#include "core/pas_controller.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::hv {
namespace {

using common::seconds;
using common::SimTime;

HostConfig quiet() {
  HostConfig hc;
  hc.trace_stride = SimTime{};
  return hc;
}

TEST(HostEdgeTest, NoVmsRunsIdle) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  host.run_until(seconds(5));
  EXPECT_EQ(host.idle_time(), seconds(5));
  EXPECT_NEAR(host.energy().average_watts(), 45.0, 0.5);  // idle power
}

TEST(HostEdgeTest, NullWorkloadRejected) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 10.0;
  EXPECT_THROW(host.add_vm(cfg, nullptr), std::invalid_argument);
}

TEST(HostEdgeTest, SetGovernorAfterRunThrows) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 10.0;
  host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(1));
  EXPECT_THROW(host.set_governor(std::make_unique<gov::PerformanceGovernor>()),
               std::logic_error);
  EXPECT_THROW(host.set_controller(std::make_unique<core::PasController>()),
               std::logic_error);
}

TEST(HostEdgeTest, RepeatedRunUntilIsIncremental) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 100.0;
  host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  for (int i = 1; i <= 10; ++i) host.run_until(seconds(i));
  EXPECT_EQ(host.now(), seconds(10));
  EXPECT_NEAR(host.vm(0).total_busy.sec(), 10.0, 0.05);
}

TEST(HostEdgeTest, RunUntilPastTimeIsNoOp) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 100.0;
  host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(5));
  host.run_until(seconds(3));  // in the past
  EXPECT_EQ(host.now(), seconds(5));
}

TEST(HostEdgeTest, GovernorFloorConstrainsPas) {
  // A platform power-policy floor must win over the PAS choice: PAS asks
  // for state 0, cpufreq clamps to the floor, and compensation then runs
  // against the *actual* frequency... PAS recomputes caps for its target,
  // so the VM is over-compensated at the floor — it must still receive AT
  // LEAST its SLA (never less).
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<core::PasController>());
  host.cpufreq().set_floor(2);  // never below 2133 MHz
  VmConfig cfg;
  cfg.credit = 20.0;
  host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(120));
  EXPECT_EQ(host.cpufreq().current_index(), 2u);
  const double delivered = 100.0 * host.vm(0).total_work.mf_seconds() / host.now().sec();
  EXPECT_GE(delivered, 19.0);
}

TEST(HostEdgeTest, ManyVmsShareFairly) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  constexpr int kN = 20;
  for (int i = 0; i < kN; ++i) {
    VmConfig cfg;
    cfg.credit = 100.0 / kN;
    host.add_vm(cfg, std::make_unique<wl::BusyLoop>());
  }
  host.run_until(seconds(60));
  for (common::VmId i = 0; i < kN; ++i) {
    EXPECT_NEAR(host.vm(i).total_busy.sec(), 3.0, 0.4) << "vm " << i;
  }
}

TEST(HostEdgeTest, WebQueueOverflowUnderStarvation) {
  // Failure injection: a starved web VM must shed load (drops), not grow
  // without bound.
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  VmConfig cfg;
  cfg.credit = 5.0;  // starved
  wl::WebAppConfig wc;
  wc.queue_capacity = 100;
  wc.seed = 17;
  const double rate = wl::WebApp::rate_for_demand(50.0, wc.request_cost);
  host.add_vm(cfg, std::make_unique<wl::WebApp>(wl::LoadProfile::constant(rate), wc));
  host.run_until(seconds(60));
  const auto& web = dynamic_cast<const wl::WebApp&>(host.workload(0));
  EXPECT_LE(web.queue_depth(), 100u);
  EXPECT_GT(web.dropped(), 1000u);
}

TEST(HostEdgeTest, PiAppThenIdleFreesCpu) {
  Host host{quiet(), std::make_unique<sched::CreditScheduler>()};
  VmConfig a;
  a.credit = 50.0;
  auto pi = std::make_unique<wl::PiApp>(common::mf_seconds(2.0));
  host.add_vm(a, std::move(pi));
  VmConfig b;
  b.credit = 0.0;  // null credit: soaks slack
  host.add_vm(b, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(20));
  // pi-app: 2 mf-s of work = 2 s of busy time (spread over ~4 s of wall
  // time at 50 %); the null-credit VM soaks everything else.
  EXPECT_NEAR(host.vm(0).total_busy.sec(), 2.0, 0.1);
  EXPECT_NEAR(host.vm(1).total_busy.sec(), 18.0, 0.4);
  const auto& pi_done = dynamic_cast<const wl::PiApp&>(host.workload(0));
  ASSERT_TRUE(pi_done.completion_time().has_value());
  EXPECT_NEAR(pi_done.completion_time()->sec(), 4.0, 0.3);
}

TEST(HostEdgeTest, QuantumMustBePositive) {
  HostConfig hc = quiet();
  hc.quantum = SimTime{};
  EXPECT_THROW(Host(hc, std::make_unique<sched::CreditScheduler>()), std::invalid_argument);
}

}  // namespace
}  // namespace pas::hv
