#include "calibration/machine_model.hpp"

#include <gtest/gtest.h>

namespace pas::calib {
namespace {

TEST(MachineModelTest, CatalogHasFiveMachines) {
  const auto machines = table1_machines();
  ASSERT_EQ(machines.size(), 5u);
  EXPECT_EQ(machines[0].name, "Intel Xeon X3440");
  EXPECT_EQ(machines[4].name, "Intel Core i7-3770");
}

TEST(MachineModelTest, ExpectedCfMatchesPaperTable1) {
  // The model parameters were chosen so ground truth lands on the measured
  // row of Table 1 within a fraction of a percent.
  const double paper[] = {0.94867, 0.99903, 0.80338, 0.99508, 0.86206};
  const auto machines = table1_machines();
  for (std::size_t i = 0; i < machines.size(); ++i) {
    EXPECT_NEAR(expected_cf_min(machines[i]), paper[i], 0.005) << machines[i].name;
  }
}

TEST(MachineModelTest, NoTurboMeansCfNearOne) {
  MachineSpec spec{"flat", {1000, 2000}, 0.0, 1.0, 1};
  EXPECT_DOUBLE_EQ(expected_cf_min(spec), 1.0);
}

TEST(MachineModelTest, TurboLowersCf) {
  MachineSpec spec{"turbo", {1000, 2000}, 2500.0, 1.0, 1};
  EXPECT_DOUBLE_EQ(expected_cf_min(spec), 0.8);
}

TEST(MachineModelTest, SpeedFnTopStateIsFullSpeed) {
  MachineSpec spec{"turbo", {1000, 2000}, 2500.0, 1.0, 1};
  const auto fn = speed_fn(spec);
  EXPECT_DOUBLE_EQ(fn(1), 1.0);
  // Lower state: 1000 MHz of a 2500 MHz-effective machine.
  EXPECT_DOUBLE_EQ(fn(0), 0.4);
}

TEST(MachineModelTest, LowStateEfficiencyApplies) {
  MachineSpec spec{"drift", {1000, 2000}, 0.0, 0.99, 1};
  const auto fn = speed_fn(spec);
  EXPECT_DOUBLE_EQ(fn(0), 0.5 * 0.99);
  EXPECT_DOUBLE_EQ(fn(1), 1.0);
}

TEST(MachineModelTest, NominalLadderHasUnitCf) {
  const auto spec = table1_machines()[2];  // E5-2620
  const auto ladder = nominal_ladder(spec);
  ASSERT_EQ(ladder.size(), spec.nominal_mhz.size());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_DOUBLE_EQ(ladder.at(i).cf, 1.0);
    EXPECT_DOUBLE_EQ(ladder.at(i).freq.value(), spec.nominal_mhz[i]);
  }
}

TEST(MachineModelTest, MakeCpuModelInstallsOverride) {
  const MachineSpec spec{"turbo", {1000, 2000}, 2500.0, 1.0, 1};
  auto cpu = make_cpu_model(spec);
  cpu.set_index(0);
  EXPECT_DOUBLE_EQ(cpu.speed(), 0.4);  // true speed, not the nominal 0.5
  cpu.set_index(1);
  EXPECT_DOUBLE_EQ(cpu.speed(), 1.0);
}

TEST(MachineModelTest, RejectsEmptyLadder) {
  const MachineSpec spec{"empty", {}, 0.0, 1.0, 1};
  EXPECT_THROW((void)nominal_ladder(spec), std::invalid_argument);
}

}  // namespace
}  // namespace pas::calib
