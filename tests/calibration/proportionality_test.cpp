// §5.2's assumption checks, run against the simulated substrate. On a
// ladder with cf = 1 everywhere, all implied cf values must come out ≈ 1
// and the time/credit ratios must track the paper's equations.
#include "calibration/proportionality.hpp"

#include <gtest/gtest.h>

namespace pas::calib {
namespace {

const cpu::FrequencyLadder kLadder = cpu::FrequencyLadder::paper_default();

TEST(ProportionalityTest, Eq1LoadScalesWithFrequency) {
  const auto rows =
      verify_eq1_frequency_load(kLadder, {15.0}, common::seconds(40));
  ASSERT_EQ(rows.size(), kLadder.size());
  for (const auto& r : rows) {
    EXPECT_NEAR(r.implied_cf, 1.0, 0.05) << "state " << r.state_index;
    // The measured load itself: demand / ratio.
    EXPECT_NEAR(r.load_pct, 15.0 / r.ratio, 1.5) << "state " << r.state_index;
  }
}

TEST(ProportionalityTest, Eq2TimeScalesWithFrequency) {
  const auto rows = verify_eq2_frequency_time(kLadder, common::mf_seconds(20));
  ASSERT_EQ(rows.size(), kLadder.size());
  for (const auto& r : rows) {
    EXPECT_NEAR(r.implied_cf, 1.0, 0.02) << "state " << r.state_index;
    EXPECT_NEAR(r.exec_time_sec, 20.0 / r.ratio, 0.5) << "state " << r.state_index;
  }
}

TEST(ProportionalityTest, Eq3TimeScalesWithCredit) {
  const auto rows =
      verify_eq3_credit_time(kLadder, {10, 20, 40, 80}, common::mf_seconds(10));
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    // time_ratio (T_init/T_j) must equal credit_ratio (C_j/C_init).
    EXPECT_NEAR(r.time_ratio, r.credit_ratio, 0.05 * r.credit_ratio) << r.credit;
  }
  EXPECT_NEAR(rows[0].exec_time_sec, 100.0, 2.0);  // 10 mf-s at 10 %
  EXPECT_NEAR(rows[3].exec_time_sec, 12.5, 1.0);   // 10 mf-s at 80 %
}

TEST(ProportionalityTest, MeasurePiTimeMatchesTheory) {
  EXPECT_NEAR(measure_pi_time_sec(kLadder, kLadder.max_index(), 100.0,
                                  common::mf_seconds(5)),
              5.0, 0.1);
  EXPECT_NEAR(measure_pi_time_sec(kLadder, 0, 100.0, common::mf_seconds(5)),
              5.0 / (1600.0 / 2667.0), 0.2);
  EXPECT_NEAR(measure_pi_time_sec(kLadder, kLadder.max_index(), 50.0,
                                  common::mf_seconds(5)),
              10.0, 0.2);
}

TEST(ProportionalityTest, MeasurePiTimeRejectsZeroCredit) {
  EXPECT_THROW((void)measure_pi_time_sec(kLadder, 0, 0.0, common::mf_seconds(1)),
               std::invalid_argument);
}

TEST(ProportionalityTest, Eq2OnCfLadderReflectsCf) {
  // With cf = 0.8 installed at the low state, the implied cf measured from
  // execution times must recover ≈ 0.8.
  const cpu::FrequencyLadder ladder{
      {cpu::PState{common::mhz(1600), 0.8}, cpu::PState{common::mhz(2667), 1.0}}};
  const auto rows = verify_eq2_frequency_time(ladder, common::mf_seconds(10));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(rows[0].implied_cf, 0.8, 0.03);
}

}  // namespace
}  // namespace pas::calib
