#include "calibration/cf_calibrator.hpp"

#include <gtest/gtest.h>

namespace pas::calib {
namespace {

CfCalibratorConfig fast_config() {
  CfCalibratorConfig c;
  c.demand_levels_pct = {15.0, 25.0};
  c.measure_time = common::seconds(40);
  c.warmup = common::seconds(5);
  return c;
}

TEST(CfCalibratorTest, RecoversTurboCf) {
  // E5-2620-style machine: ground truth cf_min ≈ 0.803.
  const auto spec = table1_machines()[2];
  const CfReport report = calibrate(spec, fast_config());
  ASSERT_EQ(report.states.size(), spec.nominal_mhz.size());
  EXPECT_NEAR(report.cf_min, expected_cf_min(spec), 0.03);
  // cf is (approximately) constant across states — what the paper observed.
  for (const auto& m : report.states) {
    if (m.state_index == report.states.size() - 1) continue;  // top is 1 by construction
    EXPECT_NEAR(m.cf, expected_cf_min(spec), 0.04) << "state " << m.state_index;
  }
}

TEST(CfCalibratorTest, FlatMachineCalibratesToOne) {
  const MachineSpec flat{"flat", {1200, 1800, 2400}, 0.0, 1.0, 7};
  const CfReport report = calibrate(flat, fast_config());
  EXPECT_NEAR(report.cf_min, 1.0, 0.03);
}

TEST(CfCalibratorTest, MeasuredLoadScalesInverselyWithSpeed) {
  const MachineSpec spec{"turbo", {1000, 2000}, 2500.0, 1.0, 3};
  const CfReport report = calibrate(spec, fast_config());
  // Low state true speed 0.4 vs top 1.0: same demand -> 2.5x the load.
  ASSERT_EQ(report.states.size(), 2u);
  EXPECT_NEAR(report.states[0].mean_load_pct / report.states[1].mean_load_pct, 2.5, 0.2);
}

TEST(CfCalibratorTest, CalibratedLadderCarriesCf) {
  const auto spec = table1_machines()[2];
  const CfReport report = calibrate(spec, fast_config());
  const auto ladder = calibrated_ladder(report, spec);
  ASSERT_EQ(ladder.size(), spec.nominal_mhz.size());
  EXPECT_NEAR(ladder.at(0).cf, report.cf_min, 1e-12);
  EXPECT_DOUBLE_EQ(ladder.max().freq.value(), spec.nominal_mhz.back());
}

TEST(CfCalibratorTest, RejectsEmptyDemands) {
  CfCalibratorConfig c = fast_config();
  c.demand_levels_pct.clear();
  EXPECT_THROW((void)calibrate(table1_machines()[1], c), std::invalid_argument);
}

TEST(CfCalibratorTest, MismatchedLadderRejected) {
  const auto spec_a = table1_machines()[0];
  const auto spec_b = table1_machines()[1];
  const CfReport report = calibrate(spec_b, fast_config());
  EXPECT_THROW((void)calibrated_ladder(report, spec_a), std::invalid_argument);
}

}  // namespace
}  // namespace pas::calib
