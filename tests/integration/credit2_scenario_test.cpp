// Credit2 in the paper's scenario: with caps it exhibits the same Fig. 5
// pathology as the credit scheduler, and PAS fixes it the same way —
// showing the contribution generalizes across cap-enforcing schedulers.
#include <gtest/gtest.h>

#include "scenario/two_vm.hpp"

namespace pas::scenario {
namespace {

using common::seconds;

TwoVmConfig short_profile() {
  TwoVmConfig cfg;
  cfg.scheduler = sched::SchedulerKind::kCredit2;
  cfg.total = seconds(2000);
  cfg.v20_from = seconds(100);
  cfg.v20_until = seconds(1700);
  cfg.v70_from = seconds(600);
  cfg.v70_until = seconds(1300);
  cfg.trace_stride = seconds(5);
  return cfg;
}

TEST(Credit2Scenario, ExhibitsFig5PathologyWithGovernor) {
  TwoVmConfig cfg = short_profile();
  cfg.governor = "stable-ondemand";
  cfg.load = LoadKind::kExact;
  const TwoVmResult r = run_two_vm(cfg);
  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 1600.0, 40.0);
  EXPECT_NEAR(r.phases[1].v20_absolute_pct, 12.0, 2.0);  // starved, like Fig. 5
  EXPECT_GT(r.v20_sla_violation, 0.4);
}

TEST(Credit2Scenario, PasFixesIt) {
  TwoVmConfig cfg = short_profile();
  cfg.governor = "";
  cfg.controller = ControllerKind::kPas;
  cfg.load = LoadKind::kThrashing;
  cfg.dom0_demand = 10.0;
  const TwoVmResult r = run_two_vm(cfg);
  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 1600.0, 40.0);
  EXPECT_NEAR(r.phases[1].v20_absolute_pct, 20.0, 1.5);
  EXPECT_NEAR(r.phases[2].v70_absolute_pct, 70.0, 5.0);
  EXPECT_LT(r.v20_sla_violation, 0.1);
}

TEST(Credit2Scenario, ContentionSplitsByWeightWithinCaps) {
  TwoVmConfig cfg = short_profile();
  cfg.governor = "performance";
  cfg.load = LoadKind::kThrashing;
  const TwoVmResult r = run_two_vm(cfg);
  // Caps bind: 20/70 at max frequency, same as the credit scheduler.
  EXPECT_NEAR(r.phases[2].v20_global_pct, 20.0, 2.5);
  EXPECT_NEAR(r.phases[2].v70_global_pct, 70.0, 3.0);
}

}  // namespace
}  // namespace pas::scenario
