// Integration tests: each test pins the qualitative shape of one of the
// paper's figures, on a shortened (2000 s) version of the §5.3 profile.
// Phase indices into TwoVmResult::phases: 0 warmup, 1 V20-only, 2 V20+V70,
// 3 V20-only, 4 idle tail.
#include <gtest/gtest.h>

#include "scenario/two_vm.hpp"

namespace pas::scenario {
namespace {

using common::seconds;

TwoVmConfig short_profile() {
  TwoVmConfig cfg;
  cfg.total = seconds(2000);
  cfg.v20_from = seconds(100);
  cfg.v20_until = seconds(1700);
  cfg.v70_from = seconds(600);
  cfg.v70_until = seconds(1300);
  cfg.trace_stride = seconds(5);
  return cfg;
}

// --- Fig. 2: credit scheduler at pinned max frequency (performance) ---
TEST(FigureShapes, Fig2ReferenceProfileAtMaxFrequency) {
  TwoVmConfig cfg = short_profile();
  cfg.scheduler = sched::SchedulerKind::kCredit;
  cfg.governor = "performance";
  cfg.load = LoadKind::kExact;
  const TwoVmResult r = run_two_vm(cfg);

  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 2667.0, 1.0);
  EXPECT_NEAR(r.phases[1].v20_global_pct, 20.0, 2.5);
  EXPECT_NEAR(r.phases[2].v20_global_pct, 20.0, 2.5);
  EXPECT_NEAR(r.phases[2].v70_global_pct, 70.0, 5.0);
  EXPECT_LT(r.phases[4].mean_global_pct, 3.0);  // idle tail
  // At max frequency global == absolute.
  EXPECT_NEAR(r.phases[1].v20_global_pct, r.phases[1].v20_absolute_pct, 0.5);
}

// --- Fig. 4/5: credit scheduler + (stable) ondemand, exact load. THE
// problem figure: V20's absolute load collapses to ~12 % in the V20-only
// phases because the frequency was lowered, and recovers only while V70 is
// active. ---
TEST(FigureShapes, Fig5CreditSchedulerPenalizesV20AtLowFrequency) {
  TwoVmConfig cfg = short_profile();
  cfg.scheduler = sched::SchedulerKind::kCredit;
  cfg.governor = "stable-ondemand";
  cfg.load = LoadKind::kExact;
  const TwoVmResult r = run_two_vm(cfg);

  // Phase 1: host underloaded -> lowest frequency -> V20 starved.
  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 1600.0, 30.0);
  EXPECT_NEAR(r.phases[1].v20_global_pct, 20.0, 2.5);  // time share intact
  EXPECT_NEAR(r.phases[1].v20_absolute_pct, 20.0 * 1600 / 2667, 2.0);  // ~12 %
  // Phase 2: V70 wakes, frequency climbs to max, V20 recovers its 20 %.
  EXPECT_NEAR(r.phases[2].mean_freq_mhz, 2667.0, 60.0);
  EXPECT_GT(r.phases[2].v20_absolute_pct, 17.0);
  // Phase 3: V70 sleeps again, the penalty returns.
  EXPECT_LT(r.phases[3].v20_absolute_pct, 15.0);
  // The SLA violation is substantial (most of phases 1 and 3).
  EXPECT_GT(r.v20_sla_violation, 0.4);
}

// --- Fig. 3 vs Fig. 4: stock ondemand oscillates, stable does not ---
TEST(FigureShapes, Fig3OndemandOscillatesFig4StableDoesNot) {
  TwoVmConfig cfg = short_profile();
  cfg.scheduler = sched::SchedulerKind::kCredit;
  cfg.load = LoadKind::kExact;

  cfg.governor = "ondemand";
  const TwoVmResult unstable = run_two_vm(cfg);
  cfg.governor = "stable-ondemand";
  const TwoVmResult stable = run_two_vm(cfg);

  EXPECT_GT(unstable.freq_transitions, 10 * stable.freq_transitions);
  EXPECT_LT(stable.freq_transitions, 40u);
}

// --- Fig. 6/7: SEDF with exact load solves the QoS problem ---
TEST(FigureShapes, Fig7SedfDeliversAbsoluteCreditAtLowFrequency) {
  TwoVmConfig cfg = short_profile();
  cfg.scheduler = sched::SchedulerKind::kSedf;
  cfg.governor = "stable-ondemand";
  cfg.load = LoadKind::kExact;
  const TwoVmResult r = run_two_vm(cfg);

  // Phase 1: frequency still low, but V20 gets extra slices: global ≈ 33 %,
  // absolute ≈ 20 % (Fig. 6's 35 % plateau / Fig. 7's flat 20 %).
  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 1600.0, 40.0);
  EXPECT_NEAR(r.phases[1].v20_global_pct, 33.0, 4.0);
  EXPECT_NEAR(r.phases[1].v20_absolute_pct, 20.0, 2.0);
  EXPECT_NEAR(r.phases[2].v20_absolute_pct, 20.0, 2.5);
  EXPECT_LT(r.v20_sla_violation, 0.15);
}

// --- Fig. 8: SEDF with thrashing load betrays the provider ---
TEST(FigureShapes, Fig8SedfThrashingConsumesHostAndPinsMaxFrequency) {
  TwoVmConfig cfg = short_profile();
  cfg.scheduler = sched::SchedulerKind::kSedf;
  cfg.governor = "stable-ondemand";
  cfg.load = LoadKind::kThrashing;
  cfg.dom0_demand = 10.0;  // thrashing web traffic loads the Dom0 backend
  const TwoVmResult r = run_two_vm(cfg);

  // V20 grabs far more than its 20 % and the frequency never drops.
  EXPECT_GT(r.phases[1].v20_global_pct, 75.0);
  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 2667.0, 30.0);
  EXPECT_NEAR(r.phases[3].mean_freq_mhz, 2667.0, 30.0);
}

// --- Fig. 9/10: PAS both saves energy and honors the SLA ---
TEST(FigureShapes, Fig9And10PasCompensatesUnderThrashing) {
  TwoVmConfig cfg = short_profile();
  cfg.scheduler = sched::SchedulerKind::kCredit;
  cfg.governor = "";  // PAS owns DVFS
  cfg.controller = ControllerKind::kPas;
  cfg.load = LoadKind::kThrashing;
  cfg.dom0_demand = 10.0;
  const TwoVmResult r = run_two_vm(cfg);

  // Phase 1: lowest frequency, V20's cap compensated to ~33 %, absolute 20.
  EXPECT_NEAR(r.phases[1].mean_freq_mhz, 1600.0, 40.0);
  EXPECT_NEAR(r.phases[1].v20_credit_pct, 33.3, 1.5);
  EXPECT_NEAR(r.phases[1].v20_global_pct, 33.3, 3.0);
  EXPECT_NEAR(r.phases[1].v20_absolute_pct, 20.0, 1.5);
  // Phase 2: full demand, max frequency, caps back to 20/70.
  EXPECT_NEAR(r.phases[2].mean_freq_mhz, 2667.0, 60.0);
  EXPECT_NEAR(r.phases[2].v20_credit_pct, 20.0, 1.5);
  EXPECT_NEAR(r.phases[2].v20_absolute_pct, 20.0, 2.0);
  EXPECT_NEAR(r.phases[2].v70_absolute_pct, 70.0, 5.0);
  // Unlike SEDF (Fig. 8), V20 never exceeds its paid capacity...
  EXPECT_LT(r.phases[1].v20_absolute_pct, 22.5);
  // ...and unlike plain credit (Fig. 5), the SLA holds.
  EXPECT_LT(r.v20_sla_violation, 0.1);
}

// PAS also saves energy relative to SEDF under thrashing (the provider-side
// argument of §3.2 scenario 2).
TEST(FigureShapes, PasUsesLessEnergyThanSedfUnderThrashing) {
  TwoVmConfig pas_cfg = short_profile();
  pas_cfg.scheduler = sched::SchedulerKind::kCredit;
  pas_cfg.governor = "";
  pas_cfg.controller = ControllerKind::kPas;
  pas_cfg.load = LoadKind::kThrashing;
  pas_cfg.dom0_demand = 10.0;

  TwoVmConfig sedf_cfg = pas_cfg;
  sedf_cfg.scheduler = sched::SchedulerKind::kSedf;
  sedf_cfg.governor = "stable-ondemand";
  sedf_cfg.controller = ControllerKind::kNone;

  const TwoVmResult pas = run_two_vm(pas_cfg);
  const TwoVmResult sedf = run_two_vm(sedf_cfg);
  EXPECT_LT(pas.energy_joules, sedf.energy_joules * 0.95);
}

}  // namespace
}  // namespace pas::scenario
