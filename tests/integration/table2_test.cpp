// Table 2 shape assertions: who degrades under OnDemand and by how much.
#include <gtest/gtest.h>

#include "platform/catalog.hpp"

namespace pas::platform {
namespace {

Table2Config fast_config() {
  Table2Config c;
  c.pi_work = common::mf_seconds(40.0);  // scaled down 8x; ratios unchanged
  return c;
}

class Table2Fixture : public ::testing::Test {
 protected:
  static const std::vector<Table2Row>& rows() {
    static const std::vector<Table2Row> r = run_table2(fast_config());
    return r;
  }
  static const Table2Row& row(const std::string& name) {
    for (const auto& r : rows()) {
      if (r.name == name) return r;
    }
    throw std::runtime_error("row not found: " + name);
  }
};

TEST_F(Table2Fixture, SevenPlatforms) { EXPECT_EQ(rows().size(), 7u); }

TEST_F(Table2Fixture, FixedCreditDegradationsMatchPaper) {
  // Paper: 50 / 27 / 40 %.
  EXPECT_NEAR(row("Hyper-V Server 2012").degradation_pct, 50.0, 4.0);
  EXPECT_NEAR(row("VMware ESXi 5").degradation_pct, 27.0, 4.0);
  EXPECT_NEAR(row("Xen/credit").degradation_pct, 40.0, 4.0);
}

TEST_F(Table2Fixture, PasCancelsDegradation) {
  EXPECT_NEAR(row("Xen/PAS").degradation_pct, 0.0, 2.0);
  // And PAS's absolute time matches the fixed-credit Performance rows.
  EXPECT_NEAR(row("Xen/PAS").t_performance_sec, row("Xen/credit").t_performance_sec,
              0.05 * row("Xen/credit").t_performance_sec);
}

TEST_F(Table2Fixture, VariableCreditPlatformsDoNotDegrade) {
  for (const char* name : {"Xen/SEDF", "KVM", "VirtualBox"}) {
    EXPECT_NEAR(row(name).degradation_pct, 0.0, 2.0) << name;
  }
}

TEST_F(Table2Fixture, VariableCreditMuchFasterThanFixed) {
  // Paper: ~616 vs ~1559 s — about 2.5x.
  const double fixed = row("Xen/credit").t_performance_sec;
  const double variable = row("Xen/SEDF").t_performance_sec;
  EXPECT_NEAR(fixed / variable, 2.53, 0.25);
}

TEST_F(Table2Fixture, RelativeTimesMatchPaperColumns) {
  // Performance column ratios (paper: 1601/1550/1559/1559/616/599/625).
  const double base = row("Xen/credit").t_performance_sec;
  EXPECT_NEAR(row("Xen/SEDF").t_performance_sec / base, 616.0 / 1559.0, 0.03);
  EXPECT_NEAR(row("KVM").t_performance_sec / base, 599.0 / 1559.0, 0.03);
  EXPECT_NEAR(row("VirtualBox").t_performance_sec / base, 625.0 / 1559.0, 0.03);
  // OnDemand column ratios (paper: 3212/2132/2599 for the degraded rows).
  EXPECT_NEAR(row("Hyper-V Server 2012").t_ondemand_sec / base, 3212.0 / 1559.0, 0.10);
  EXPECT_NEAR(row("VMware ESXi 5").t_ondemand_sec / base, 2132.0 / 1559.0, 0.08);
  EXPECT_NEAR(row("Xen/credit").t_ondemand_sec / base, 2599.0 / 1559.0, 0.08);
}

TEST_F(Table2Fixture, LadderMatchesDocumentedFloors) {
  const auto ladder = table2_ladder();
  EXPECT_NEAR(ladder.ratio(0), 0.50, 0.001);
  EXPECT_NEAR(ladder.ratio(1), 0.60, 0.001);
  EXPECT_NEAR(ladder.ratio(2), 0.7273, 0.001);
}

}  // namespace
}  // namespace pas::platform
