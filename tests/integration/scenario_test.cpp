// Harness-level tests of scenario::run_two_vm itself.
#include <gtest/gtest.h>

#include "scenario/two_vm.hpp"

namespace pas::scenario {
namespace {

using common::seconds;

TwoVmConfig tiny() {
  TwoVmConfig cfg;
  cfg.total = seconds(800);
  cfg.v20_from = seconds(50);
  cfg.v20_until = seconds(700);
  cfg.v70_from = seconds(250);
  cfg.v70_until = seconds(500);
  cfg.trace_stride = seconds(5);
  return cfg;
}

TEST(ScenarioTest, ProducesFivePhases) {
  const TwoVmResult r = run_two_vm(tiny());
  ASSERT_EQ(r.phases.size(), 5u);
  EXPECT_EQ(r.phases[0].name, "warmup (idle)");
  EXPECT_EQ(r.phases[2].name, "phase2 V20+V70");
  EXPECT_EQ(r.phases[4].name, "tail (idle)");
}

TEST(ScenarioTest, TraceCoversWholeRun) {
  const TwoVmResult r = run_two_vm(tiny());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.samples().size(), 160u);  // 800 s / 5 s
  EXPECT_NEAR(r.trace.samples().back().t.sec(), 800.0, 5.1);
}

TEST(ScenarioTest, EnergyAndTransitionsPopulated) {
  const TwoVmResult r = run_two_vm(tiny());
  EXPECT_GT(r.energy_joules, 0.0);
  EXPECT_GT(r.average_watts, 40.0);
  EXPECT_LT(r.average_watts, 110.0);
}

TEST(ScenarioTest, RejectsNonNestedPhases) {
  TwoVmConfig cfg = tiny();
  cfg.v70_until = seconds(750);  // V70 outlives V20: not the paper profile
  EXPECT_THROW((void)run_two_vm(cfg), std::invalid_argument);
}

TEST(ScenarioTest, RenderChartsNonEmpty) {
  const TwoVmResult r = run_two_vm(tiny());
  const std::string global = render_loads_chart(r, /*absolute=*/false, "global");
  const std::string abs = render_loads_chart(r, /*absolute=*/true, "absolute");
  EXPECT_NE(global.find("V20"), std::string::npos);
  EXPECT_NE(global.find("legend"), std::string::npos);
  EXPECT_NE(abs.find("absolute load %"), std::string::npos);
  const std::string table = render_phase_table(r);
  EXPECT_NE(table.find("phase2 V20+V70"), std::string::npos);
  EXPECT_NE(table.find("SLA violations"), std::string::npos);
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
  const TwoVmResult a = run_two_vm(tiny());
  const TwoVmResult b = run_two_vm(tiny());
  ASSERT_EQ(a.trace.samples().size(), b.trace.samples().size());
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.freq_transitions, b.freq_transitions);
  for (std::size_t i = 0; i < a.trace.samples().size(); i += 13) {
    EXPECT_DOUBLE_EQ(a.trace.samples()[i].vm_global_pct[1],
                     b.trace.samples()[i].vm_global_pct[1]);
  }
}

TEST(ScenarioTest, SeedChangesStochasticDetails) {
  TwoVmConfig cfg = tiny();
  const TwoVmResult a = run_two_vm(cfg);
  cfg.seed = 1234;
  const TwoVmResult b = run_two_vm(cfg);
  // Same physics, different Poisson arrivals: energies differ slightly.
  EXPECT_NE(a.energy_joules, b.energy_joules);
  EXPECT_NEAR(a.energy_joules, b.energy_joules, 0.05 * a.energy_joules);
}

TEST(ScenarioTest, ControllerVariantsRun) {
  for (const ControllerKind kind :
       {ControllerKind::kUserLevelCredit, ControllerKind::kUserLevelDvfsCredit}) {
    TwoVmConfig cfg = tiny();
    cfg.controller = kind;
    cfg.governor = kind == ControllerKind::kUserLevelCredit ? "stable-ondemand" : "";
    cfg.load = LoadKind::kThrashing;
    const TwoVmResult r = run_two_vm(cfg);
    // Both user-level designs must roughly deliver the SLA on steady phases.
    EXPECT_NEAR(r.phases[1].v20_absolute_pct, 20.0, 3.0);
  }
}

}  // namespace
}  // namespace pas::scenario
