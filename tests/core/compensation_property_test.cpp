// Property sweeps over the compensation math: for every (state, credit, cf)
// combination, the compensated credit must make capacity invariant — the
// core correctness claim of eq. 4.
#include <gtest/gtest.h>

#include "core/compensation.hpp"

namespace pas::core {
namespace {

struct CompCase {
  double freq_mhz;
  double cf;
  double credit;
};

class CompensationInvariant : public ::testing::TestWithParam<CompCase> {};

TEST_P(CompensationInvariant, CapacityPreserved) {
  const auto& p = GetParam();
  const double ratio = p.freq_mhz / 2667.0;
  const double new_credit = compensated_credit(p.credit, ratio, p.cf);
  // Computing capacity = credit (time share) * speed (ratio * cf). The
  // compensated credit at the new state buys the initial capacity.
  const double capacity_at_max = p.credit * 1.0;
  const double capacity_at_state = new_credit * ratio * p.cf;
  EXPECT_NEAR(capacity_at_state, capacity_at_max, 1e-9);
}

TEST_P(CompensationInvariant, RoundTripThroughEq3) {
  const auto& p = GetParam();
  const double ratio = p.freq_mhz / 2667.0;
  const double new_credit = compensated_credit(p.credit, ratio, p.cf);
  // T(new_credit at state) == T(init credit at max):
  // eq. 2 gives T_state = T_max/(ratio*cf) at equal credit; eq. 3 scales by
  // credit ratio.
  const double t_max_initial = 100.0;
  const double t_state_initial = predicted_time_at_state(t_max_initial, ratio, p.cf);
  const double t_state_compensated =
      predicted_time_for_credit(t_state_initial, p.credit, new_credit);
  EXPECT_NEAR(t_state_compensated, t_max_initial, 1e-6);
}

TEST_P(CompensationInvariant, CreditNeverBelowInitial) {
  const auto& p = GetParam();
  const double ratio = p.freq_mhz / 2667.0;
  // cf <= 1 and ratio <= 1 imply compensation only ever raises credits.
  EXPECT_GE(compensated_credit(p.credit, ratio, p.cf), p.credit - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompensationInvariant,
    ::testing::ValuesIn([] {
      std::vector<CompCase> cases;
      for (double f : {1600.0, 1867.0, 2133.0, 2400.0, 2667.0}) {
        for (double cf : {0.80338, 0.86206, 0.94867, 1.0}) {
          for (double c : {5.0, 10.0, 20.0, 50.0, 70.0, 100.0}) {
            cases.push_back({f, cf, c});
          }
        }
      }
      return cases;
    }()));

class FreqPickProperty : public ::testing::TestWithParam<double> {};

TEST_P(FreqPickProperty, ChosenStateAlwaysAbsorbsTheLoad) {
  const double absolute = GetParam();
  const auto ladder = cpu::FrequencyLadder::paper_default();
  const std::size_t idx = compute_new_freq_index(ladder, absolute);
  if (absolute < ladder.capacity_pct(ladder.max_index())) {
    EXPECT_GT(ladder.capacity_pct(idx), absolute);
  } else {
    EXPECT_EQ(idx, ladder.max_index());
  }
  // Minimality: no lower state would do.
  if (idx > 0) {
    EXPECT_LE(ladder.capacity_pct(idx - 1), absolute);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FreqPickProperty,
                         ::testing::Values(0.0, 5.0, 19.9, 20.0, 45.0, 59.9, 60.0, 61.0,
                                           69.9, 70.0, 79.0, 80.0, 89.0, 90.0, 99.0,
                                           100.0, 120.0));

}  // namespace
}  // namespace pas::core
