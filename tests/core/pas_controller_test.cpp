#include "core/pas_controller.hpp"

#include <gtest/gtest.h>

#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/synthetic.hpp"
#include "workload/web_app.hpp"

namespace pas::core {
namespace {

using common::seconds;
using common::SimTime;

// V20-style thrashing VM alone on a PAS host: the controller must settle at
// the lowest frequency with a compensated ~33 % cap, and V20's absolute
// capacity must equal its 20 % SLA.
TEST(PasControllerTest, CompensatesThrashingVmAtLowFrequency) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<PasController>());
  hv::VmConfig v;
  v.name = "V20";
  v.credit = 20.0;
  const auto id = host.add_vm(v, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(120));

  EXPECT_EQ(host.cpufreq().current_index(), 0u);  // 1600 MHz
  EXPECT_NEAR(host.scheduler().cap(id), 20.0 / (1600.0 / 2667.0), 0.1);
  // Absolute capacity over the (steady) second minute.
  const double work0 = host.vm(id).total_work.mf_seconds();
  host.run_until(seconds(240));
  const double work = host.vm(id).total_work.mf_seconds() - work0;
  EXPECT_NEAR(work / 120.0, 0.20, 0.01);
}

TEST(PasControllerTest, HighDemandRestoresMaxFrequencyAndBaseCredits) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<PasController>());
  hv::VmConfig a;
  a.credit = 20.0;
  host.add_vm(a, std::make_unique<wl::BusyLoop>());
  hv::VmConfig b;
  b.credit = 70.0;
  host.add_vm(b, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(120));

  EXPECT_EQ(host.cpufreq().current_index(), host.cpu().ladder().max_index());
  EXPECT_NEAR(host.scheduler().cap(0), 20.0, 0.1);
  EXPECT_NEAR(host.scheduler().cap(1), 70.0, 0.1);
}

TEST(PasControllerTest, IdleHostParksAtMinimumWithRaisedCaps) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<PasController>());
  hv::VmConfig v;
  v.credit = 20.0;
  const auto id = host.add_vm(v, std::make_unique<wl::IdleGuest>());
  host.run_until(seconds(30));
  EXPECT_EQ(host.cpufreq().current_index(), 0u);
  // The cap is raised for the lazy VM too — "for lazy VM, this new limit is
  // meaningless as it will not be reached" (§4.2).
  EXPECT_GT(host.scheduler().cap(id), 20.0);
}

TEST(PasControllerTest, UncappedVmLeftAlone) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<PasController>());
  hv::VmConfig v;
  v.credit = 0.0;  // null credit
  const auto id = host.add_vm(v, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(30));
  EXPECT_DOUBLE_EQ(host.scheduler().cap(id), 0.0);
}

TEST(PasControllerTest, ReactsWithinSeconds) {
  // Step load: idle -> thrash at t=60 s. PAS must raise the frequency and
  // rescale credits quickly (its tick is the 30 ms accounting period, but
  // the load signal is smoothed over 3 one-second windows).
  hv::HostConfig hc;
  hc.trace_stride = seconds(1);
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<PasController>());
  hv::VmConfig a;
  a.credit = 90.0;
  host.add_vm(a, std::make_unique<wl::GatedBusyLoop>(
                     wl::LoadProfile::pulse(seconds(60), seconds(120), 1.0)));
  host.run_until(seconds(59));
  EXPECT_EQ(host.cpufreq().current_index(), 0u);
  host.run_until(seconds(70));
  EXPECT_EQ(host.cpufreq().current_index(), host.cpu().ladder().max_index());
}

TEST(PasControllerTest, TracksCfInLadder) {
  // On a machine with cf = 0.8 at the low state, compensation must use it.
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hc.ladder = cpu::FrequencyLadder{
      {cpu::PState{common::mhz(1600), 0.8}, cpu::PState{common::mhz(2667), 1.0}}};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<PasController>());
  hv::VmConfig v;
  v.credit = 20.0;
  const auto id = host.add_vm(v, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(120));
  ASSERT_EQ(host.cpufreq().current_index(), 0u);
  EXPECT_NEAR(host.scheduler().cap(id), 20.0 / (1600.0 / 2667.0 * 0.8), 0.2);
}

TEST(PasControllerTest, TickCountAdvances) {
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  auto ctrl = std::make_unique<PasController>();
  const PasController* pas = ctrl.get();
  host.set_controller(std::move(ctrl));
  hv::VmConfig v;
  v.credit = 50.0;
  host.add_vm(v, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(3));
  // 30 ms period -> 100 ticks over 3 s.
  EXPECT_NEAR(static_cast<double>(pas->tick_count()), 100.0, 2.0);
}

}  // namespace
}  // namespace pas::core
