#include "core/compensation.hpp"

#include <gtest/gtest.h>

namespace pas::core {
namespace {

const cpu::FrequencyLadder kLadder = cpu::FrequencyLadder::paper_default();

TEST(CompensationTest, AbsoluteLoadDefinition) {
  // §4: V20 loaded at 33 % of time at ratio 0.6 is 20 % absolute.
  EXPECT_NEAR(absolute_load_pct(33.33, 0.6, 1.0), 20.0, 0.01);
  EXPECT_DOUBLE_EQ(absolute_load_pct(50.0, 1.0, 1.0), 50.0);
  EXPECT_NEAR(absolute_load_pct(50.0, 0.8, 0.9), 36.0, 1e-9);
}

TEST(CompensationTest, LoadAtStateInvertsAbsolute) {
  const double absolute = 20.0;
  const double load = load_at_state_pct(absolute, 0.6, 1.0);
  EXPECT_NEAR(load, 33.333, 0.001);
  EXPECT_NEAR(absolute_load_pct(load, 0.6, 1.0), absolute, 1e-9);
}

TEST(CompensationTest, PaperRunningExample) {
  // §3.2: halving the frequency doubles V20's 20 % credit to 40 %.
  EXPECT_DOUBLE_EQ(compensated_credit(20.0, 0.5, 1.0), 40.0);
  // §5.7: at 1600 MHz, V20 should be granted ~33 %.
  EXPECT_NEAR(compensated_credit(20.0, 1600.0 / 2667.0, 1.0), 33.34, 0.01);
}

TEST(CompensationTest, Fig1CreditRow) {
  // Fig. 1's top axis: initial credits 10..100 at 2133 MHz become
  // 13/25/38/50/63/75/88/100/113/125 (paper rounds to integers).
  const double ratio = 2133.0 / 2667.0;
  const double expected[] = {12.5, 25.0, 37.5, 50.0, 62.6, 75.1, 87.6, 100.1, 112.6, 125.1};
  for (int i = 0; i < 10; ++i) {
    const double init = 10.0 * (i + 1);
    EXPECT_NEAR(compensated_credit(init, ratio, 1.0), expected[i], 0.1) << init;
  }
}

TEST(CompensationTest, CfBelowOneRaisesCredit) {
  // A machine where the low state underdelivers (cf = 0.8) needs extra
  // credit beyond the pure frequency ratio.
  EXPECT_GT(compensated_credit(20.0, 0.6, 0.8), compensated_credit(20.0, 0.6, 1.0));
  EXPECT_NEAR(compensated_credit(20.0, 0.6, 0.8), 20.0 / 0.48, 1e-9);
}

TEST(CompensationTest, MaxFrequencyIsIdentity) {
  for (double c : {10.0, 20.0, 70.0, 100.0}) {
    EXPECT_DOUBLE_EQ(compensated_credit(c, kLadder, kLadder.max_index()), c);
  }
}

TEST(CompensationTest, PredictedTimeAtState) {
  // Eq. 2: T_i = T_max / (ratio * cf).
  EXPECT_DOUBLE_EQ(predicted_time_at_state(100.0, 0.5, 1.0), 200.0);
  EXPECT_NEAR(predicted_time_at_state(100.0, 0.8, 0.9), 100.0 / 0.72, 1e-9);
}

TEST(CompensationTest, PredictedTimeForCredit) {
  // Eq. 3: doubling credit halves time.
  EXPECT_DOUBLE_EQ(predicted_time_for_credit(100.0, 10.0, 20.0), 50.0);
  EXPECT_DOUBLE_EQ(predicted_time_for_credit(50.0, 20.0, 10.0), 100.0);
  EXPECT_THROW((void)predicted_time_for_credit(1.0, 0.0, 10.0), std::invalid_argument);
}

TEST(CompensationTest, ComputeNewFreqListing11) {
  // Listing 1.1 on the paper ladder (capacities 60/70/80/90/100):
  EXPECT_EQ(compute_new_freq_index(kLadder, 0.0), 0u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 20.0), 0u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 59.9), 0u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 60.0), 1u);  // strict >
  EXPECT_EQ(compute_new_freq_index(kLadder, 65.0), 1u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 75.0), 2u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 85.0), 3u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 95.0), 4u);
  EXPECT_EQ(compute_new_freq_index(kLadder, 150.0), 4u);  // infeasible -> max
}

TEST(CompensationTest, ComputeNewFreqHonorsCf) {
  // With cf = 0.8 on the low state its capacity is 48, not 60.
  const cpu::FrequencyLadder ladder{
      {cpu::PState{common::mhz(1600), 0.8}, cpu::PState{common::mhz(2667), 1.0}}};
  EXPECT_EQ(compute_new_freq_index(ladder, 47.0), 0u);
  EXPECT_EQ(compute_new_freq_index(ladder, 50.0), 1u);
}

TEST(CompensationTest, RejectsNonPositiveRatioOrCf) {
  EXPECT_THROW((void)compensated_credit(20.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)compensated_credit(20.0, 0.5, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace pas::core
