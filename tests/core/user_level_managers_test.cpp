#include "core/user_level_managers.hpp"

#include <gtest/gtest.h>

#include "core/pas_controller.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/synthetic.hpp"

namespace pas::core {
namespace {

using common::seconds;
using common::SimTime;

TEST(UserLevelCreditManagerTest, CompensatesGovernorsFrequencyChoice) {
  // Design 1: stable-ondemand owns DVFS; the daemon fixes credits.
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_governor(std::make_unique<gov::StableOndemandGovernor>());
  host.set_controller(std::make_unique<UserLevelCreditManager>());
  hv::VmConfig v;
  v.credit = 20.0;
  const auto id = host.add_vm(v, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(120));

  // The governor settled low (20 % load), and the daemon compensated.
  ASSERT_EQ(host.cpufreq().current_index(), 0u);
  EXPECT_NEAR(host.scheduler().cap(id), 20.0 / (1600.0 / 2667.0), 0.5);
}

TEST(UserLevelDvfsCreditManagerTest, OwnsBothDecisions) {
  // Design 2: no governor at all; the daemon sets frequency and credits.
  hv::HostConfig hc;
  hc.trace_stride = SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
  host.set_controller(std::make_unique<UserLevelDvfsCreditManager>());
  hv::VmConfig v;
  v.credit = 20.0;
  const auto id = host.add_vm(v, std::make_unique<wl::BusyLoop>());
  host.run_until(seconds(120));

  EXPECT_EQ(host.cpufreq().current_index(), 0u);
  EXPECT_NEAR(host.scheduler().cap(id), 20.0 / (1600.0 / 2667.0), 0.5);
}

TEST(UserLevelManagersTest, SlowerReactionThanInHypervisorPas) {
  // After a step from idle to thrash, measure how long until the cap is
  // rescaled to the high-frequency value. PAS reacts within a tick of the
  // smoothed signal; the 2 s daemons lag further behind.
  auto time_to_recover = [](std::unique_ptr<hv::Controller> ctrl) {
    hv::HostConfig hc;
    hc.trace_stride = SimTime{};
    hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
    host.set_controller(std::move(ctrl));
    hv::VmConfig a;
    a.credit = 90.0;
    host.add_vm(a, std::make_unique<wl::GatedBusyLoop>(
                       wl::LoadProfile::pulse(seconds(60), seconds(300), 1.0)));
    host.run_until(seconds(60));
    // Step begins; poll in 100 ms slices until the cap returns to ~90.
    while (host.now() < seconds(300)) {
      host.run_until(host.now() + common::msec(100));
      if (host.scheduler().cap(0) < 95.0) break;
    }
    return (host.now() - seconds(60)).sec();
  };

  const double t_pas = time_to_recover(std::make_unique<PasController>());
  const double t_daemon = time_to_recover(std::make_unique<UserLevelDvfsCreditManager>());
  EXPECT_LT(t_pas, t_daemon + 1e-9);
  EXPECT_LT(t_pas, 10.0);
}

TEST(UserLevelManagersTest, Names) {
  EXPECT_EQ(UserLevelCreditManager{}.name(), "userlevel-credit");
  EXPECT_EQ(UserLevelDvfsCreditManager{}.name(), "userlevel-dvfs-credit");
  EXPECT_EQ(UserLevelCreditManager{}.period(), seconds(2));
}

}  // namespace
}  // namespace pas::core
