// Tests for the stability-amended frequency chooser
// (compute_new_freq_index_saturating) — the documented deviations from
// Listing 1.1 (DESIGN.md §6b).
#include <gtest/gtest.h>

#include "core/compensation.hpp"

namespace pas::core {
namespace {

const cpu::FrequencyLadder kLadder = cpu::FrequencyLadder::paper_default();
// Capacities: 60.0 / 70.0 / 80.0 / 90.0 / 100.0 (approximately).

TEST(FreqChooserTest, MatchesListing11WhenUnsaturated) {
  for (double absolute : {0.0, 20.0, 45.0, 66.0, 85.0, 120.0}) {
    EXPECT_EQ(compute_new_freq_index_saturating(kLadder, absolute, /*global=*/50.0,
                                                /*current=*/4),
              compute_new_freq_index(kLadder, absolute))
        << absolute;
  }
}

TEST(FreqChooserTest, SaturationForcesOneStepUp) {
  // Saturated at state 1: measured absolute equals its capacity; the plain
  // algorithm would stay (70.004 > 70.0), escalation must move up.
  const double absolute = kLadder.capacity_pct(1) - 0.01;
  EXPECT_EQ(compute_new_freq_index(kLadder, absolute), 1u);
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, absolute, 100.0, 1), 2u);
}

TEST(FreqChooserTest, SaturationAtMaxStays) {
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 99.0, 100.0, 4), 4u);
}

TEST(FreqChooserTest, RepeatedEscalationClimbsToMax) {
  std::size_t cur = 0;
  for (int i = 0; i < 10; ++i) {
    // Host stays saturated: measured absolute = current capacity.
    cur = compute_new_freq_index_saturating(kLadder, kLadder.capacity_pct(cur), 100.0, cur);
  }
  EXPECT_EQ(cur, kLadder.max_index());
}

TEST(FreqChooserTest, DownMoveRequiresHeadroom) {
  // absolute 88 from max: Listing 1.1 says state 3 (90 > 88), but the 3 %
  // headroom rule rejects it (90 <= 91) and keeps max.
  EXPECT_EQ(compute_new_freq_index(kLadder, 88.0), 3u);
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 88.0, 88.0, 4), 4u);
  // With comfortable headroom the down move happens.
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 50.0, 50.0, 4), 0u);
}

TEST(FreqChooserTest, HeadroomWalksUpToFirstComfortableState) {
  // absolute 58 from max: state 0 (60) has no headroom, state 1 (70) does.
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 58.0, 58.0, 4), 1u);
}

TEST(FreqChooserTest, UpMovesNeverDelayed) {
  // From state 0 with absolute 75: straight to state 2 regardless of
  // saturation or headroom.
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 75.0, 75.0, 0), 2u);
}

TEST(FreqChooserTest, CustomThresholds) {
  // Lower saturation threshold triggers earlier; zero headroom reduces to
  // Listing 1.1 for down moves.
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 59.0, 90.0, 0, /*sat=*/85.0), 1u);
  EXPECT_EQ(compute_new_freq_index_saturating(kLadder, 88.0, 50.0, 4, 98.0,
                                              /*headroom=*/0.0),
            3u);
}

}  // namespace
}  // namespace pas::core
