// Compiles and executes the consolidation::evaluate doc example — the
// ROADMAP "doc-checked examples" item. The code inside the DOC SNIPPET
// markers mirrors the comment block above evaluate() in
// src/consolidation/consolidation.hpp; if you edit one, edit both (this
// test is what keeps the comment honest).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "consolidation/consolidation.hpp"

namespace pas::consolidation {
namespace {

std::vector<std::string> alerted;
void alert_capacity_shortfall(const std::string& name) { alerted.push_back(name); }

double reported_watts = -1.0;
double reported_saving = -1.0;
void report(double watts, double saving) {
  reported_watts = watts;
  reported_saving = saving;
}

TEST(ConsolidationDocExampleTest, ShortfallBranchRunsAsDocumented) {
  alerted.clear();
  // One 4 GB host, two VMs of which one cannot fit anywhere.
  std::vector<HostSpec> hosts(1);
  std::vector<VmSpec> vms(2);
  vms[0].name = "whale";
  vms[0].credit = 10.0;
  vms[0].memory_mb = 8192.0;
  vms[1].name = "minnow";
  vms[1].credit = 10.0;
  vms[1].memory_mb = 512.0;
  vms[1].cpu_demand_pct = 10.0;

  // --- DOC SNIPPET (consolidation.hpp, evaluate) ---
  auto placement = place_ffd(vms, hosts);
  if (placement.unplaced > 0) {
    // evaluate(placement, vms, hosts) would throw here.
    auto out = evaluate(placement, vms, hosts, /*allow_unplaced=*/true);
    for (std::size_t vi : out.unplaced_vms)
      alert_capacity_shortfall(vms[vi].name);
    // out.unplaced_credit_pct / unplaced_memory_mb quantify what the
    // cluster is not providing; out.total_power_watts covers only
    // the placed VMs.
  } else {
    auto out = evaluate(placement, vms, hosts);  // all placed: strict
    report(out.total_power_watts, out.dvfs_saving_watts());
  }
  // --- END DOC SNIPPET ---

  ASSERT_EQ(placement.unplaced, 1u);
  EXPECT_THROW((void)evaluate(placement, vms, hosts), std::invalid_argument);
  ASSERT_EQ(alerted.size(), 1u);
  EXPECT_EQ(alerted[0], "whale");
}

TEST(ConsolidationDocExampleTest, AllPlacedBranchRunsAsDocumented) {
  reported_watts = reported_saving = -1.0;
  std::vector<HostSpec> hosts(2);
  std::vector<VmSpec> vms(1);
  vms[0].name = "tenant";
  vms[0].credit = 20.0;
  vms[0].memory_mb = 512.0;
  vms[0].cpu_demand_pct = 20.0;

  // --- DOC SNIPPET (consolidation.hpp, evaluate) ---
  auto placement = place_ffd(vms, hosts);
  if (placement.unplaced > 0) {
    auto out = evaluate(placement, vms, hosts, /*allow_unplaced=*/true);
    for (std::size_t vi : out.unplaced_vms)
      alert_capacity_shortfall(vms[vi].name);
  } else {
    auto out = evaluate(placement, vms, hosts);  // all placed: strict
    report(out.total_power_watts, out.dvfs_saving_watts());
  }
  // --- END DOC SNIPPET ---

  EXPECT_GT(reported_watts, 0.0);
  EXPECT_GT(reported_saving, 0.0);  // 20 % load: PAS picks a low state
}

}  // namespace
}  // namespace pas::consolidation
