// The FFD heterogeneity cost term: efficient-first host ordering, the NUMA
// spill penalty, and — the load-bearing property — exact equivalence with
// classic index-order FFD on uniform fleets.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "consolidation/consolidation.hpp"
#include "platform/host_class.hpp"

namespace pas::consolidation {
namespace {

HostSpec host(double idle_w, double busy_w, double mem,
              std::size_t nodes = 1, double penalty = 0.0) {
  HostSpec h;
  h.name = "host";
  h.memory_mb = mem;
  h.power = cpu::PowerModel{idle_w, busy_w, 3.0};
  h.numa_nodes = nodes;
  h.numa_spill_penalty = penalty;
  return h;
}

VmSpec vm(double credit, double mem, double demand) {
  VmSpec v;
  v.name = "vm";
  v.credit = credit;
  v.memory_mb = mem;
  v.cpu_demand_pct = demand;
  return v;
}

TEST(PackingCostTest, IdleWattsPerMemory) {
  EXPECT_DOUBLE_EQ(packing_cost(host(45, 105, 4096)), 45.0 / 4096.0);
  // Memory density amortizes standby power: a 120 W / 16 GB server beats a
  // 45 W / 4 GB desktop per MB.
  EXPECT_LT(packing_cost(host(120, 235, 16384)), packing_cost(host(45, 105, 4096)));
}

TEST(EfficientFirstTest, PrefersCheapStandbyPower) {
  // Host 0 is the power hog; efficient-first must land the VM on host 1.
  const std::vector<HostSpec> hosts{host(120, 235, 4096), host(30, 90, 4096)};
  const std::vector<VmSpec> vms{vm(10, 512, 10)};
  const Placement efficient = place_ffd(vms, hosts);  // default option
  EXPECT_EQ(efficient.assignment[0], 1u);
  FfdOptions naive;
  naive.efficient_first = false;
  const Placement indexed = place_ffd(vms, hosts, naive);
  EXPECT_EQ(indexed.assignment[0], 0u);
}

TEST(EfficientFirstTest, OverflowsUpTheCostOrder) {
  // Two VMs that cannot share the efficient host: the second lands on the
  // next-cheapest, not on index order.
  const std::vector<HostSpec> hosts{host(120, 235, 4096), host(45, 105, 4096),
                                    host(30, 90, 4096)};
  const std::vector<VmSpec> vms{vm(10, 3000, 10), vm(10, 3000, 10)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_EQ(p.assignment[0], 2u);  // cheapest standby W/MB
  EXPECT_EQ(p.assignment[1], 1u);  // runner-up
}

TEST(EfficientFirstTest, UniformFleetDegradesToIndexOrder) {
  // On a uniform fleet the cost term must be a no-op: efficient-first and
  // naive index order produce the same placement, for a spread of seeded
  // random tenant books.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    common::Rng rng{seed};
    const auto hosts = uniform_fleet(4, host(45, 105, 4096));
    std::vector<VmSpec> vms;
    const std::size_t n = 4 + rng.next_below(12);
    for (std::size_t i = 0; i < n; ++i)
      vms.push_back(vm(2.0 + static_cast<double>(rng.next_below(30)),
                       128.0 * static_cast<double>(1 + rng.next_below(16)),
                       static_cast<double>(rng.next_below(20))));
    const Placement a = place_ffd(vms, hosts);
    FfdOptions naive;
    naive.efficient_first = false;
    const Placement b = place_ffd(vms, hosts, naive);
    ASSERT_EQ(a.assignment, b.assignment) << "seed " << seed;
    EXPECT_EQ(a.hosts_used, b.hosts_used) << "seed " << seed;
    EXPECT_EQ(a.unplaced, b.unplaced) << "seed " << seed;
  }
}

TEST(NumaSpillTest, SpillsOnlyPastNodeCapacity) {
  const HostSpec uma = host(45, 105, 4096);
  const HostSpec numa = host(45, 105, 4096, 2, 0.2);  // 2 x 2048 MB nodes
  EXPECT_FALSE(numa_spills(vm(10, 2048, 10), numa));  // fits one node exactly
  EXPECT_TRUE(numa_spills(vm(10, 2049, 10), numa));
  // UMA hosts never spill, whatever the footprint.
  EXPECT_FALSE(numa_spills(vm(10, 4096, 10), uma));
  EXPECT_DOUBLE_EQ(effective_credit_pct(vm(10, 2049, 10), numa), 12.0);
  EXPECT_DOUBLE_EQ(effective_credit_pct(vm(10, 2048, 10), numa), 10.0);
}

TEST(NumaSpillTest, PenaltyReservedInPlacement) {
  // Capacity 100: two 40 %-credit VMs fit a UMA host with 20 % to spare,
  // but on a 4-node host (2048 MB nodes) a 3000 MB footprint spills, and
  // at 30 % penalty (2 x 52 = 104) the second VM must overflow to the next
  // host even though the memory fits.
  const std::vector<HostSpec> hosts{host(45, 105, 8192, 4, 0.3),
                                    host(45, 105, 8192, 4, 0.3)};
  const std::vector<VmSpec> vms{vm(40, 3000, 10), vm(40, 3000, 10)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_EQ(p.unplaced, 0u);
  EXPECT_NE(p.assignment[0], p.assignment[1]);
  EXPECT_EQ(p.hosts_used, 2u);

  // Without node structure the same book shares one host (80 % credit,
  // 6000 MB of 8192).
  const std::vector<HostSpec> uma{host(45, 105, 8192), host(45, 105, 8192)};
  const Placement q = place_ffd(vms, uma);
  EXPECT_EQ(q.assignment[0], q.assignment[1]);
  EXPECT_EQ(q.hosts_used, 1u);
}

TEST(NumaSpillTest, EvaluateChargesThePenalty) {
  const std::vector<HostSpec> hosts{host(45, 105, 8192, 2, 0.25)};
  const std::vector<VmSpec> vms{vm(40, 5000, 40), vm(10, 1000, 10)};
  const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
  ASSERT_EQ(outcome.hosts_on, 1u);
  EXPECT_EQ(outcome.hosts[0].numa_spills, 1u);
  EXPECT_EQ(outcome.numa_spills, 1u);
  // Spilled VM: demand 40 -> 50, credit 40 -> 50; the node-local VM pays
  // nothing extra.
  EXPECT_DOUBLE_EQ(outcome.hosts[0].cpu_load_pct, 50.0 + 10.0);
  EXPECT_DOUBLE_EQ(outcome.hosts[0].credit_reserved_pct, 50.0 + 10.0);
}

TEST(NumaSpillTest, RejectsBadNumaSpecs) {
  HostSpec zero_nodes = host(45, 105, 4096);
  zero_nodes.numa_nodes = 0;
  EXPECT_THROW((void)place_ffd({vm(10, 512, 5)}, {zero_nodes}), std::invalid_argument);
  HostSpec negative = host(45, 105, 4096, 2, -0.1);
  EXPECT_THROW((void)place_ffd({vm(10, 512, 5)}, {negative}), std::invalid_argument);
}

TEST(FleetFromClassesTest, RoundRobinsAndNames) {
  const std::vector<HostSpec> classes{host(120, 235, 16384), host(30, 90, 8192)};
  auto a = classes[0];
  a.name = "big";
  auto b = classes[1];
  b.name = "small";
  const auto fleet = fleet_from_classes(5, {a, b});
  ASSERT_EQ(fleet.size(), 5u);
  EXPECT_EQ(fleet[0].name, "big-0");
  EXPECT_EQ(fleet[1].name, "small-1");
  EXPECT_EQ(fleet[4].name, "big-4");
  EXPECT_DOUBLE_EQ(fleet[2].memory_mb, 16384.0);
  EXPECT_THROW((void)fleet_from_classes(3, {}), std::invalid_argument);
}

TEST(FleetFromClassesTest, PlannerFleetMatchesUniformFleet) {
  // The shared platform helper and the classic uniform_fleet agree: the
  // example/bench de-dup changed spelling, not fleets.
  const auto via_platform = platform::planner_fleet(3, platform::optiplex_755());
  auto spec = platform::to_host_spec(platform::optiplex_755());
  const auto via_uniform = uniform_fleet(3, spec);
  ASSERT_EQ(via_platform.size(), via_uniform.size());
  for (std::size_t i = 0; i < via_platform.size(); ++i) {
    EXPECT_EQ(via_platform[i].name, via_uniform[i].name);
    EXPECT_DOUBLE_EQ(via_platform[i].memory_mb, via_uniform[i].memory_mb);
    EXPECT_DOUBLE_EQ(via_platform[i].cpu_capacity_pct, via_uniform[i].cpu_capacity_pct);
  }
}

}  // namespace
}  // namespace pas::consolidation
