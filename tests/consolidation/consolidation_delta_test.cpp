// Differential-equivalence suite for the delta-driven planner.
//
// The HostBook's contract is structural: plan() must be BYTE-identical to a
// from-scratch place_ffd over the same dense inputs, whichever internal
// path (cached / delta merge-walk / full-rebuild fallback) served it. This
// suite replays seeded mutation sequences — add/remove/resize VM, crash and
// restore host, class flips — against a HostBook and a shadow spec map,
// asserting exact equality with the oracle after EVERY step, over uniform
// and heterogeneous fleets and with efficient-first packing both on and
// off. The corpus is 120 sequences (≥100 per the issue), plus targeted
// tests for the cached path, the fallback triggers and validation.

#include "consolidation/host_book.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "consolidation/consolidation.hpp"
#include "platform/host_class.hpp"

namespace pas::consolidation {
namespace {

VmSpec make_vm(std::mt19937& rng) {
  static const double kMems[] = {128, 256, 512, 512, 1024, 1024, 2048, 3072, 4096, 6144};
  VmSpec v;
  v.name = "vm";
  v.memory_mb = kMems[rng() % (sizeof(kMems) / sizeof(kMems[0]))];
  v.credit = 5.0 + static_cast<double>(rng() % 16) * 5.0;
  v.cpu_demand_pct = v.credit * 0.5;
  return v;
}

HostSpec make_host(std::mt19937& rng, bool hetero) {
  if (!hetero) return platform::to_host_spec(platform::optiplex_755());
  const auto catalog = platform::fleet_catalog();
  return platform::to_host_spec(catalog[rng() % catalog.size()]);
}

/// The oracle: dense spec lists in ascending-id order, planned from
/// scratch. Asserts assignment, hosts_used and unplaced are exactly equal,
/// and that the book's dense maps are the ascending active ids.
void expect_matches_full(HostBook& book, const std::map<std::size_t, VmSpec>& vms,
                         const std::map<std::size_t, HostSpec>& hosts,
                         const FfdOptions& opt) {
  std::vector<VmSpec> dense_vms;
  std::vector<HostSpec> dense_hosts;
  std::vector<std::size_t> vm_ids;
  std::vector<std::size_t> host_ids;
  for (const auto& [id, spec] : vms) {
    vm_ids.push_back(id);
    dense_vms.push_back(spec);
  }
  for (const auto& [id, spec] : hosts) {
    host_ids.push_back(id);
    dense_hosts.push_back(spec);
  }
  const Placement want = place_ffd(dense_vms, dense_hosts, opt);
  const Placement& got = book.plan();
  ASSERT_EQ(got.assignment, want.assignment);
  ASSERT_EQ(got.hosts_used, want.hosts_used);
  ASSERT_EQ(got.unplaced, want.unplaced);
  ASSERT_EQ(book.planned_vms(), vm_ids);
  ASSERT_EQ(book.planned_hosts(), host_ids);
}

struct SequenceTally {
  std::size_t delta_plans = 0;
  std::size_t full_rebuilds = 0;
  std::size_t cached_plans = 0;
};

SequenceTally run_sequence(std::uint32_t seed, bool hetero, bool efficient_first) {
  std::mt19937 rng(seed);
  FfdOptions opt;
  opt.efficient_first = efficient_first;
  HostBook book(opt);
  std::map<std::size_t, VmSpec> vms;
  std::map<std::size_t, HostSpec> hosts;
  std::map<std::size_t, HostSpec> crashed;  // removed hosts, restorable
  std::size_t next_vm = 0;
  std::size_t next_host = 0;

  const std::size_t host_n = 6 + rng() % 7;
  const std::size_t vm_n = 15 + rng() % 26;
  for (std::size_t i = 0; i < host_n; ++i) {
    const HostSpec spec = make_host(rng, hetero);
    hosts.emplace(next_host, spec);
    book.add_host(next_host, spec);
    ++next_host;
  }
  for (std::size_t i = 0; i < vm_n; ++i) {
    const VmSpec spec = make_vm(rng);
    vms.emplace(next_vm, spec);
    book.add_vm(next_vm, spec);
    ++next_vm;
  }
  expect_matches_full(book, vms, hosts, opt);

  auto random_live = [&](const auto& live) {
    auto it = live.begin();
    std::advance(it, rng() % live.size());
    return it->first;
  };
  auto mutate_vm_once = [&] {
    const std::uint32_t op = rng() % 3;
    if (op == 0 || vms.empty()) {
      const VmSpec spec = make_vm(rng);
      vms.emplace(next_vm, spec);
      book.add_vm(next_vm, spec);
      ++next_vm;
    } else if (op == 1) {
      const std::size_t id = random_live(vms);
      vms.erase(id);
      book.remove_vm(id);
    } else {
      const std::size_t id = random_live(vms);
      // Resize; occasionally to the identical spec (dirty but unchanged).
      const VmSpec spec = (rng() % 5 == 0) ? vms.at(id) : make_vm(rng);
      vms.at(id) = spec;
      book.update_vm(id, spec);
    }
  };

  for (std::size_t step = 0; step < 32; ++step) {
    const std::uint32_t roll = rng() % 100;
    if (roll < 55) {
      mutate_vm_once();
    } else if (roll < 70) {
      // A burst of VM churn between plans: dirty marks must coalesce and
      // the single delta walk must absorb them all.
      const std::size_t burst = 2 + rng() % 3;
      for (std::size_t k = 0; k < burst; ++k) mutate_vm_once();
    } else if (roll < 78) {
      // Crash a host (forces the full-rebuild fallback next plan).
      if (hosts.size() > 1) {
        const std::size_t id = random_live(hosts);
        crashed.emplace(id, hosts.at(id));
        hosts.erase(id);
        book.remove_host(id);
      }
    } else if (roll < 86) {
      // Restore a crashed host, or grow the fleet.
      if (!crashed.empty()) {
        const std::size_t id = random_live(crashed);
        hosts.emplace(id, crashed.at(id));
        book.add_host(id, crashed.at(id));
        crashed.erase(id);
      } else {
        const HostSpec spec = make_host(rng, hetero);
        hosts.emplace(next_host, spec);
        book.add_host(next_host, spec);
        ++next_host;
      }
    } else if (roll < 92) {
      // Class flip: re-spec a live host in place.
      const std::size_t id = random_live(hosts);
      const HostSpec spec = make_host(rng, hetero);
      hosts.at(id) = spec;
      book.update_host(id, spec);
    }
    // else: no mutation — the plan below must come from the cache.
    expect_matches_full(book, vms, hosts, opt);
  }
  const HostBookStats& st = book.stats();
  return {st.delta_plans, st.full_rebuilds, st.cached_plans};
}

TEST(ConsolidationDeltaTest, UniformCorpus) {
  SequenceTally total;
  for (std::uint32_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE(seed);
    const SequenceTally t = run_sequence(seed, /*hetero=*/false,
                                         /*efficient_first=*/seed % 4 != 0);
    total.delta_plans += t.delta_plans;
    total.full_rebuilds += t.full_rebuilds;
    total.cached_plans += t.cached_plans;
  }
  // The corpus must have exercised every plan path, or the equivalence
  // claim is vacuous.
  EXPECT_GT(total.delta_plans, 0u);
  EXPECT_GT(total.full_rebuilds, 0u);
  EXPECT_GT(total.cached_plans, 0u);
}

TEST(ConsolidationDeltaTest, HeteroCorpus) {
  SequenceTally total;
  for (std::uint32_t seed = 61; seed <= 120; ++seed) {
    SCOPED_TRACE(seed);
    const SequenceTally t = run_sequence(seed, /*hetero=*/true,
                                         /*efficient_first=*/seed % 4 != 0);
    total.delta_plans += t.delta_plans;
    total.full_rebuilds += t.full_rebuilds;
    total.cached_plans += t.cached_plans;
  }
  EXPECT_GT(total.delta_plans, 0u);
  EXPECT_GT(total.full_rebuilds, 0u);
  EXPECT_GT(total.cached_plans, 0u);
}

TEST(ConsolidationDeltaTest, CachedPlanIsVerbatim) {
  HostBook book;
  book.add_host(0, platform::to_host_spec(platform::optiplex_755()));
  VmSpec v;
  v.credit = 10;
  v.memory_mb = 512;
  book.add_vm(0, v);
  const Placement first = book.plan();
  const Placement& again = book.plan();
  EXPECT_EQ(again.assignment, first.assignment);
  EXPECT_EQ(book.stats().cached_plans, 1u);
  EXPECT_EQ(book.stats().full_rebuilds, 1u);
}

TEST(ConsolidationDeltaTest, HostMutationFallsBackToFullRebuild) {
  HostBook book;
  const HostSpec h = platform::to_host_spec(platform::optiplex_755());
  book.add_host(0, h);
  book.add_host(1, h);
  VmSpec v;
  v.credit = 10;
  v.memory_mb = 512;
  book.add_vm(0, v);
  (void)book.plan();
  ASSERT_EQ(book.stats().full_rebuilds, 1u);

  book.add_vm(1, v);
  (void)book.plan();
  EXPECT_EQ(book.stats().delta_plans, 1u);  // VM-only change: delta path

  book.update_host(1, platform::to_host_spec(platform::xeon_e5_2620()));
  (void)book.plan();
  EXPECT_EQ(book.stats().full_rebuilds, 2u);  // class flip: fallback
}

TEST(ConsolidationDeltaTest, BurstOfMarksCoalesces) {
  HostBook book;
  book.add_host(0, platform::to_host_spec(platform::optiplex_755()));
  VmSpec v;
  v.credit = 10;
  v.memory_mb = 512;
  book.add_vm(0, v);
  (void)book.plan();
  v.memory_mb = 640;
  book.update_vm(0, v);
  v.memory_mb = 768;
  book.update_vm(0, v);  // second mark on the same pending VM
  EXPECT_EQ(book.stats().coalesced_marks, 1u);
}

TEST(ConsolidationDeltaTest, ValidationMirrorsPlaceFfd) {
  HostBook book;
  HostSpec bad_host;
  bad_host.numa_nodes = 0;
  EXPECT_THROW(book.add_host(0, bad_host), std::invalid_argument);
  bad_host.numa_nodes = 2;
  bad_host.numa_spill_penalty = -0.1;
  EXPECT_THROW(book.add_host(0, bad_host), std::invalid_argument);
  VmSpec bad_vm;
  bad_vm.memory_mb = -1;
  EXPECT_THROW(book.add_vm(0, bad_vm), std::invalid_argument);
  EXPECT_THROW(book.remove_vm(7), std::invalid_argument);
  EXPECT_THROW(book.remove_host(7), std::invalid_argument);
  book.add_host(3, platform::to_host_spec(platform::optiplex_755()));
  EXPECT_THROW(book.add_host(3, platform::to_host_spec(platform::optiplex_755())),
               std::invalid_argument);
}

}  // namespace
}  // namespace pas::consolidation
