#include "consolidation/consolidation.hpp"

#include <gtest/gtest.h>

namespace pas::consolidation {
namespace {

HostSpec host_4g() {
  HostSpec h;
  h.name = "host";
  h.memory_mb = 4096;
  h.cpu_capacity_pct = 100.0;
  return h;
}

VmSpec vm(double credit, double mem, double demand) {
  VmSpec v;
  v.name = "vm";
  v.credit = credit;
  v.memory_mb = mem;
  v.cpu_demand_pct = demand;
  return v;
}

TEST(PlacementTest, SingleVmSingleHost) {
  const auto hosts = uniform_fleet(3, host_4g());
  const std::vector<VmSpec> vms{vm(20, 512, 10)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_EQ(p.assignment[0], 0u);
  EXPECT_EQ(p.hosts_used, 1u);
  EXPECT_EQ(p.unplaced, 0u);
}

TEST(PlacementTest, MemoryBindsBeforeCpu) {
  // Four 2 GB VMs at 10 % credit each: CPU-wise they all fit one host,
  // memory forces two hosts — the §2.3 scenario.
  const auto hosts = uniform_fleet(4, host_4g());
  const std::vector<VmSpec> vms{vm(10, 2048, 10), vm(10, 2048, 10), vm(10, 2048, 10),
                                vm(10, 2048, 10)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_EQ(p.hosts_used, 2u);
  EXPECT_EQ(p.unplaced, 0u);
}

TEST(PlacementTest, CreditReservationRespected) {
  // Credits must fit even when demands are tiny: SLAs are honorable.
  const auto hosts = uniform_fleet(2, host_4g());
  const std::vector<VmSpec> vms{vm(60, 256, 5), vm(60, 256, 5)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_NE(p.assignment[0], p.assignment[1]);
  EXPECT_EQ(p.hosts_used, 2u);
}

TEST(PlacementTest, DecreasingOrderPacksBetter) {
  // FFD: 3+3+2+2 GB into 2 hosts of 5 GB requires pairing large with small.
  HostSpec h = host_4g();
  h.memory_mb = 5120;
  const auto hosts = uniform_fleet(2, h);
  const std::vector<VmSpec> vms{vm(5, 2048, 5), vm(5, 3072, 5), vm(5, 2048, 5),
                                vm(5, 3072, 5)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_EQ(p.unplaced, 0u);
  EXPECT_EQ(p.hosts_used, 2u);
}

TEST(PlacementTest, UnplaceableVmCounted) {
  const auto hosts = uniform_fleet(1, host_4g());
  const std::vector<VmSpec> vms{vm(10, 8192, 5)};
  const Placement p = place_ffd(vms, hosts);
  EXPECT_EQ(p.assignment[0], kUnplaced);
  EXPECT_EQ(p.unplaced, 1u);
  EXPECT_EQ(p.hosts_used, 0u);
}

TEST(PlacementTest, RejectsNegativeResources) {
  const auto hosts = uniform_fleet(1, host_4g());
  EXPECT_THROW((void)place_ffd({vm(-1, 512, 5)}, hosts), std::invalid_argument);
}

TEST(EvaluateTest, PoweredOffHostsDrawNothing) {
  const auto hosts = uniform_fleet(3, host_4g());
  const std::vector<VmSpec> vms{vm(20, 512, 20)};
  const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
  EXPECT_EQ(outcome.hosts_on, 1u);
  EXPECT_FALSE(outcome.hosts[1].powered_on);
  EXPECT_DOUBLE_EQ(outcome.hosts[1].power_watts, 0.0);
  EXPECT_GT(outcome.total_power_watts, 0.0);
}

TEST(EvaluateTest, DvfsSavingPositiveWhenUnderloaded) {
  const auto hosts = uniform_fleet(1, host_4g());
  const std::vector<VmSpec> vms{vm(20, 512, 20)};
  const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
  // Load 20 % -> PAS picks 1600 MHz -> cheaper than pinning max.
  EXPECT_EQ(outcome.hosts[0].freq_index, 0u);
  EXPECT_GT(outcome.dvfs_saving_watts(), 0.0);
}

TEST(EvaluateTest, DvfsUselessOnFullHost) {
  const auto hosts = uniform_fleet(1, host_4g());
  const std::vector<VmSpec> vms{vm(95, 512, 95)};
  const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
  EXPECT_EQ(outcome.hosts[0].freq_index, hosts[0].ladder.max_index());
  EXPECT_NEAR(outcome.dvfs_saving_watts(), 0.0, 1e-9);
}

TEST(EvaluateTest, MeanActiveLoad) {
  const auto hosts = uniform_fleet(2, host_4g());
  const std::vector<VmSpec> vms{vm(30, 3000, 30), vm(50, 3000, 50)};
  const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
  ASSERT_EQ(outcome.hosts_on, 2u);
  EXPECT_NEAR(outcome.mean_active_load_pct, 40.0, 1e-9);
}

TEST(EvaluateTest, MemoryPressureIncreasesDvfsValue) {
  // The paper's §2.3 claim as a property: growing memory-per-VM (same CPU
  // demand) spreads VMs across more hosts, lowers per-host load, and grows
  // the DVFS saving.
  const auto hosts = uniform_fleet(16, host_4g());
  double last_saving = -1.0;
  std::size_t last_hosts = 0;
  for (const double mem : {256.0, 1024.0, 2048.0}) {
    std::vector<VmSpec> vms;
    for (int i = 0; i < 8; ++i) vms.push_back(vm(12, mem, 12));
    const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
    EXPECT_GE(outcome.hosts_on, last_hosts);
    EXPECT_GT(outcome.dvfs_saving_watts(), last_saving * 0.999);
    last_saving = outcome.dvfs_saving_watts();
    last_hosts = outcome.hosts_on;
  }
  EXPECT_EQ(last_hosts, 4u);  // 2 GB VMs: two per 4 GB host
}

TEST(EvaluateTest, ThrowsOnUnplacedByDefault) {
  // Unplaced VMs are unserved demand, not free capacity: a caller that does
  // not opt into partial placements must not get a silently smaller bill.
  const auto hosts = uniform_fleet(1, host_4g());
  const std::vector<VmSpec> vms{vm(10, 8192, 5), vm(10, 512, 10)};
  const Placement p = place_ffd(vms, hosts);
  ASSERT_EQ(p.unplaced, 1u);
  EXPECT_THROW((void)evaluate(p, vms, hosts), std::invalid_argument);
}

TEST(EvaluateTest, UnplacedExplicitWhenAllowed) {
  const auto hosts = uniform_fleet(1, host_4g());
  const std::vector<VmSpec> vms{vm(10, 8192, 5), vm(10, 512, 10)};
  const Placement p = place_ffd(vms, hosts);
  const auto outcome = evaluate(p, vms, hosts, /*allow_unplaced=*/true);
  EXPECT_FALSE(outcome.all_placed());
  ASSERT_EQ(outcome.unplaced_vms.size(), 1u);
  EXPECT_EQ(outcome.unplaced_vms[0], 0u);
  EXPECT_DOUBLE_EQ(outcome.unplaced_credit_pct, 10.0);
  EXPECT_DOUBLE_EQ(outcome.unplaced_demand_pct, 5.0);
  EXPECT_DOUBLE_EQ(outcome.unplaced_memory_mb, 8192.0);
  // The placed VM is still evaluated normally.
  EXPECT_EQ(outcome.hosts_on, 1u);
  EXPECT_DOUBLE_EQ(outcome.hosts[0].cpu_load_pct, 10.0);
}

TEST(EvaluateTest, FullyPlacedReportsAllPlaced) {
  const auto hosts = uniform_fleet(1, host_4g());
  const std::vector<VmSpec> vms{vm(10, 512, 10)};
  const auto outcome = evaluate(place_ffd(vms, hosts), vms, hosts);
  EXPECT_TRUE(outcome.all_placed());
  EXPECT_DOUBLE_EQ(outcome.unplaced_credit_pct, 0.0);
}

TEST(EvaluateTest, RejectsMismatchedPlacement) {
  const auto hosts = uniform_fleet(1, host_4g());
  Placement p;
  p.assignment = {0, 0};
  EXPECT_THROW((void)evaluate(p, {vm(10, 256, 5)}, hosts), std::invalid_argument);
}

TEST(UniformFleetTest, NamesAreDistinct) {
  const auto fleet = uniform_fleet(3, host_4g());
  EXPECT_EQ(fleet[0].name, "host-0");
  EXPECT_EQ(fleet[2].name, "host-2");
}

}  // namespace
}  // namespace pas::consolidation
