// Property test for the HostBook's packing-order index: random
// interleavings of host insert/erase/update checked after every mutation
// against a naive oracle that re-sorts a plain vector. The documented
// deterministic order is ascending packing_cost() with ties broken by
// ascending host id — the ties matter (a uniform fleet ties everywhere),
// so the spec generator deliberately reuses a handful of identical specs.

#include "consolidation/host_book.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "consolidation/consolidation.hpp"
#include "platform/host_class.hpp"

namespace pas::consolidation {
namespace {

std::vector<HostSpec> spec_pool() {
  std::vector<HostSpec> pool;
  for (const auto& cls : platform::fleet_catalog())
    pool.push_back(platform::to_host_spec(cls));
  // Extra memory variants of the default spec: distinct costs from one
  // power model, plus exact duplicates to force packing_cost ties.
  for (const double mem : {2048.0, 4096.0, 4096.0, 8192.0}) {
    HostSpec h;
    h.memory_mb = mem;
    pool.push_back(h);
  }
  return pool;
}

std::vector<std::size_t> oracle_order(const std::map<std::size_t, HostSpec>& hosts) {
  std::vector<std::size_t> ids;
  ids.reserve(hosts.size());
  for (const auto& [id, spec] : hosts) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
    const double ca = packing_cost(hosts.at(a));
    const double cb = packing_cost(hosts.at(b));
    if (ca != cb) return ca < cb;
    return a < b;  // the documented deterministic tie-break
  });
  return ids;
}

TEST(HostBookPropertyTest, PackingOrderMatchesResortedOracle) {
  const std::vector<HostSpec> pool = spec_pool();
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE(seed);
    std::mt19937 rng(seed);
    HostBook book;
    std::map<std::size_t, HostSpec> hosts;
    std::size_t next_id = 0;
    for (std::size_t step = 0; step < 64; ++step) {
      const std::uint32_t op = rng() % 3;
      if (op == 0 || hosts.empty()) {
        const HostSpec& spec = pool[rng() % pool.size()];
        hosts.emplace(next_id, spec);
        book.add_host(next_id, spec);
        ++next_id;
      } else if (op == 1) {
        auto it = hosts.begin();
        std::advance(it, rng() % hosts.size());
        book.remove_host(it->first);
        hosts.erase(it);
      } else {
        auto it = hosts.begin();
        std::advance(it, rng() % hosts.size());
        const HostSpec& spec = pool[rng() % pool.size()];
        it->second = spec;
        book.update_host(it->first, spec);
      }
      ASSERT_EQ(book.packing_order(), oracle_order(hosts));
      ASSERT_EQ(book.host_count(), hosts.size());
    }
  }
}

TEST(HostBookPropertyTest, TiesBreakByAscendingId) {
  // Identical specs everywhere: cost ties on every pair, so the order must
  // be exactly ascending id — including after an out-of-order insert.
  HostBook book;
  HostSpec h;
  book.add_host(5, h);
  book.add_host(1, h);
  book.add_host(3, h);
  EXPECT_EQ(book.packing_order(), (std::vector<std::size_t>{1, 3, 5}));
  book.remove_host(3);
  book.add_host(0, h);
  EXPECT_EQ(book.packing_order(), (std::vector<std::size_t>{0, 1, 5}));
}

TEST(HostBookPropertyTest, IdReuseAfterRemoveIsAllowed) {
  HostBook book;
  HostSpec h;
  book.add_host(0, h);
  book.remove_host(0);
  book.add_host(0, h);
  EXPECT_TRUE(book.has_host(0));
  EXPECT_EQ(book.packing_order(), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace pas::consolidation
