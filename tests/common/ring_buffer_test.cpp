#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace pas::common {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb{3};
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 3u);
  EXPECT_FALSE(rb.full());
}

TEST(RingBufferTest, PushUntilFull) {
  RingBuffer<int> rb{3};
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.at(0), 1);
  EXPECT_EQ(rb.at(1), 2);
  EXPECT_EQ(rb.at(2), 3);
  EXPECT_EQ(rb.back(), 3);
}

TEST(RingBufferTest, EvictsOldest) {
  RingBuffer<int> rb{3};
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.at(0), 3);
  EXPECT_EQ(rb.at(1), 4);
  EXPECT_EQ(rb.at(2), 5);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBufferTest, WrapsManyTimes) {
  RingBuffer<int> rb{4};
  for (int i = 0; i < 103; ++i) rb.push(i);
  EXPECT_EQ(rb.at(0), 99);
  EXPECT_EQ(rb.at(3), 102);
}

TEST(RingBufferTest, Clear) {
  RingBuffer<int> rb{2};
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb.back(), 7);
  EXPECT_EQ(rb.at(0), 7);
}

TEST(RingBufferTest, ForEachVisitsOldestToNewest) {
  RingBuffer<int> rb{3};
  for (int i = 1; i <= 4; ++i) rb.push(i);
  std::vector<int> seen;
  rb.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{2, 3, 4}));
}

TEST(RingBufferTest, MeanOf) {
  RingBuffer<double> rb{3};
  EXPECT_DOUBLE_EQ(mean_of(rb), 0.0);
  rb.push(10.0);
  EXPECT_DOUBLE_EQ(mean_of(rb), 10.0);
  rb.push(20.0);
  rb.push(30.0);
  EXPECT_DOUBLE_EQ(mean_of(rb), 20.0);
  rb.push(40.0);  // evicts 10
  EXPECT_DOUBLE_EQ(mean_of(rb), 30.0);
}

TEST(RingBufferTest, CapacityOne) {
  RingBuffer<int> rb{1};
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.back(), 2);
}

}  // namespace
}  // namespace pas::common
