#include "common/units.hpp"

#include <gtest/gtest.h>

namespace pas::common {
namespace {

TEST(SimTimeTest, ConstructorsAndAccessors) {
  EXPECT_EQ(usec(1).us(), 1);
  EXPECT_EQ(msec(1).us(), 1000);
  EXPECT_EQ(seconds(1).us(), 1'000'000);
  EXPECT_DOUBLE_EQ(seconds(2).sec(), 2.0);
  EXPECT_DOUBLE_EQ(msec(1500).ms(), 1500.0);
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ((msec(10) + msec(20)).us(), 30'000);
  EXPECT_EQ((msec(30) - msec(10)).us(), 20'000);
  EXPECT_EQ((msec(10) * 3).us(), 30'000);
  EXPECT_EQ(3 * msec(10), msec(30));
  EXPECT_EQ(seconds(1) / msec(100), 10);
  EXPECT_EQ(msec(105) % msec(100), msec(5));
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = msec(5);
  t += msec(5);
  EXPECT_EQ(t, msec(10));
  t -= msec(3);
  EXPECT_EQ(t, msec(7));
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(msec(1), msec(2));
  EXPECT_LE(msec(2), msec(2));
  EXPECT_GT(seconds(1), msec(999));
  EXPECT_EQ(msec(1000), seconds(1));
}

TEST(SimTimeTest, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.us(), 0);
}

TEST(SimTimeTest, ToString) {
  EXPECT_EQ(to_string(seconds(2)), "2.000s");
  EXPECT_EQ(to_string(msec(1500)), "1.500s");
}

TEST(MhzTest, RatioIsDimensionless) {
  EXPECT_DOUBLE_EQ(mhz(1600) / mhz(2667), 1600.0 / 2667.0);
  EXPECT_DOUBLE_EQ(mhz(2667) / mhz(2667), 1.0);
}

TEST(MhzTest, Ordering) {
  EXPECT_LT(mhz(1600), mhz(1867));
  EXPECT_EQ(mhz(2400), mhz(2400));
}

TEST(WorkTest, Arithmetic) {
  EXPECT_DOUBLE_EQ((mf_usec(100) + mf_usec(50)).mfus(), 150.0);
  EXPECT_DOUBLE_EQ((mf_usec(100) - mf_usec(50)).mfus(), 50.0);
  EXPECT_DOUBLE_EQ((mf_usec(100) * 0.5).mfus(), 50.0);
  EXPECT_DOUBLE_EQ((0.25 * mf_usec(100)).mfus(), 25.0);
}

TEST(WorkTest, SecondsConversion) {
  EXPECT_DOUBLE_EQ(mf_seconds(2.0).mfus(), 2e6);
  EXPECT_DOUBLE_EQ(mf_seconds(2.0).mf_seconds(), 2.0);
}

TEST(WorkTest, CompoundAssignment) {
  Work w = mf_usec(10);
  w += mf_usec(5);
  EXPECT_DOUBLE_EQ(w.mfus(), 15.0);
  w -= mf_usec(10);
  EXPECT_DOUBLE_EQ(w.mfus(), 5.0);
}

TEST(WorkTest, Ordering) {
  EXPECT_LT(mf_usec(1), mf_usec(2));
  EXPECT_GE(mf_usec(2), mf_usec(2));
}

}  // namespace
}  // namespace pas::common
