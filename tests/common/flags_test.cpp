#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace pas::common {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return Flags{static_cast<int>(v.size()), v.data()};
}

TEST(FlagsTest, KeyValue) {
  const Flags f = make({"--csv=out.csv", "--n=5"});
  EXPECT_EQ(f.get_or("csv", ""), "out.csv");
  EXPECT_EQ(f.get_int("n", 0), 5);
}

TEST(FlagsTest, BareSwitch) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("quiet"));
  EXPECT_EQ(f.get("verbose").value(), "");
}

TEST(FlagsTest, Positionals) {
  const Flags f = make({"alpha", "--x=1", "beta"});
  ASSERT_EQ(f.positionals().size(), 2u);
  EXPECT_EQ(f.positionals()[0], "alpha");
  EXPECT_EQ(f.positionals()[1], "beta");
}

TEST(FlagsTest, Defaults) {
  const Flags f = make({});
  EXPECT_EQ(f.get_or("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get_int("missing", -3), -3);
  EXPECT_FALSE(f.get("missing").has_value());
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = make({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 0.75);
}

TEST(FlagsTest, ValueWithEquals) {
  const Flags f = make({"--expr=a=b"});
  EXPECT_EQ(f.get_or("expr", ""), "a=b");
}

}  // namespace
}  // namespace pas::common
