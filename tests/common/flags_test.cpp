#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace pas::common {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return Flags{static_cast<int>(v.size()), v.data()};
}

TEST(FlagsTest, KeyValue) {
  const Flags f = make({"--csv=out.csv", "--n=5"});
  EXPECT_EQ(f.get_or("csv", ""), "out.csv");
  EXPECT_EQ(f.get_int("n", 0), 5);
}

TEST(FlagsTest, BareSwitch) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("quiet"));
  EXPECT_EQ(f.get("verbose").value(), "");
}

TEST(FlagsTest, Positionals) {
  const Flags f = make({"alpha", "--x=1", "beta"});
  ASSERT_EQ(f.positionals().size(), 2u);
  EXPECT_EQ(f.positionals()[0], "alpha");
  EXPECT_EQ(f.positionals()[1], "beta");
}

TEST(FlagsTest, Defaults) {
  const Flags f = make({});
  EXPECT_EQ(f.get_or("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get_int("missing", -3), -3);
  EXPECT_FALSE(f.get("missing").has_value());
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = make({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 0.75);
}

TEST(FlagsTest, ValueWithEquals) {
  const Flags f = make({"--expr=a=b"});
  EXPECT_EQ(f.get_or("expr", ""), "a=b");
}

// Strict numeric parsing: a present flag must be a fully-formed number.
// `--threads=4x` used to silently parse as 4 (strtod/strtol with a null
// endptr); now it throws with the offending flag spelled back.

TEST(FlagsTest, RejectsTrailingJunkInt) {
  const Flags f = make({"--threads=4x"});
  try {
    (void)f.get_int("threads", 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("--threads=4x"), std::string::npos);
  }
}

TEST(FlagsTest, RejectsTrailingJunkDouble) {
  const Flags f = make({"--rate=2.5GB"});
  EXPECT_THROW((void)f.get_double("rate", 0.0), std::runtime_error);
}

TEST(FlagsTest, RejectsEmptyNumericValue) {
  // `--scale-hosts=` and a bare `--scale-hosts` both carry an empty value:
  // fine for has(), an error for a numeric getter (the old code silently
  // returned the default, letting a typo disable a CI gate).
  const Flags eq = make({"--scale-hosts="});
  EXPECT_THROW((void)eq.get_int("scale-hosts", 0), std::runtime_error);
  const Flags bare = make({"--scale-hosts"});
  EXPECT_TRUE(bare.has("scale-hosts"));
  EXPECT_THROW((void)bare.get_int("scale-hosts", 0), std::runtime_error);
  EXPECT_THROW((void)bare.get_double("scale-hosts", 0.0), std::runtime_error);
}

TEST(FlagsTest, RejectsNonNumber) {
  const Flags f = make({"--n=abc"});
  EXPECT_THROW((void)f.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)f.get_double("n", 0.0), std::runtime_error);
}

TEST(FlagsTest, AcceptsWellFormedNumbers) {
  const Flags f = make({"--a=-12", "--b=1e3", "--c=0.5", "--d=+7"});
  EXPECT_EQ(f.get_int("a", 0), -12);
  EXPECT_DOUBLE_EQ(f.get_double("b", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(f.get_double("c", 0.0), 0.5);
  EXPECT_EQ(f.get_int("d", 0), 7);
  // Missing flags still fall back to the default without throwing.
  EXPECT_EQ(f.get_int("absent", 9), 9);
}

}  // namespace
}  // namespace pas::common
