#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/cluster.hpp"  // summarize_recoveries divergence pin

namespace pas::common {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStatsTest, MergeMatchesPooled) {
  RunningStats a, b, pooled;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    if (i % 2 == 0) a.add(x); else b.add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SummarizeTest, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(SummarizeTest, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(PercentileTest, Bounds) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, -1.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 2.0), 3.0);   // clamped
}

// Edge cases pinned so the interpolated definition cannot silently change:
// n=1, q in {0, 1}, and the even-n midpoint (the case where interpolation
// and nearest rank genuinely differ).

TEST(PercentileTest, SingleSampleIsAlwaysThatSample) {
  const std::vector<double> xs{42.0};
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(xs, q), 42.0) << "q=" << q;
  }
}

TEST(PercentileTest, EvenCountInterpolatesMiddlePair) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 2.5);  // (2+3)/2 — R type-7
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 4.0);
  // Quarter position lands between sorted[0] and sorted[1]: 1 + 0.75.
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.25), 1.75);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

// The recovery-latency p50 (cluster::summarize_recoveries) is deliberately
// the LOWER-MEDIAN NEAREST RANK, not this interpolation: for an even
// sample it reports a latency that actually occurred, byte-stable in
// integer microseconds. Document the divergence by computing both on the
// same even-count sample.
TEST(PercentileTest, NearestRankLowerMedianDivergesOnEvenCount) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  const double interpolated = percentile_sorted(sorted, 0.5);
  const double nearest_rank = sorted[(sorted.size() - 1) / 2];  // cluster's rule
  EXPECT_DOUBLE_EQ(interpolated, 2.5);
  EXPECT_DOUBLE_EQ(nearest_rank, 2.0);
  // Odd counts agree:
  const std::vector<double> odd{1.0, 2.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(odd, 0.5), odd[(odd.size() - 1) / 2]);
}

// And pin the real implementation, not a transcription of its rule: an
// even-count recovery sample must report the lower middle latency.
TEST(PercentileTest, SummarizeRecoveriesUsesLowerMedianNearestRank) {
  using pas::cluster::VmRecovery;
  std::vector<VmRecovery> recs;
  for (long s : {4, 1, 3, 2}) {  // unsorted on purpose
    recs.push_back({0, common::SimTime{}, common::seconds(s)});
  }
  const auto stats = pas::cluster::summarize_recoveries(recs);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_EQ(stats.p50, common::seconds(2));  // lower median, not 2.5 s
  EXPECT_EQ(stats.max, common::seconds(4));
  EXPECT_DOUBLE_EQ(stats.mean_s, 2.5);

  recs.resize(1);  // n=1: the only latency is every percentile
  const auto one = pas::cluster::summarize_recoveries(recs);
  EXPECT_EQ(one.p50, common::seconds(4));
  EXPECT_EQ(one.max, common::seconds(4));
}

TEST(LinearFitTest, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, DegenerateInput) {
  const LinearFit f = fit_linear(std::vector<double>{1.0}, std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  const std::vector<double> same_x{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(fit_linear(same_x, ys).slope, 0.0);
}

}  // namespace
}  // namespace pas::common
