// common::ThreadPool: the fork-join pool under the cluster's parallel
// driver. Pinned here: every index runs exactly once, parallel_for is a
// true barrier (reusable back to back), exception propagation picks the
// LOWEST-index error deterministically, and shutdown is clean whether or
// not any work was ever issued.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace pas::common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);

  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, EveryGrainCoversEveryIndexExactlyOnce) {
  // Chunked hand-out property: whatever the grain (including grain > n,
  // grain == n, and the 0 -> 1 normalization), every index in [0, n) runs
  // exactly once — chunking affects scheduling only, never coverage.
  ThreadPool pool{4};
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                  std::size_t{8}, std::size_t{64}}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " n " << n << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ResultsIndependentOfGrain) {
  // Same pure-function-of-i check as the thread-assignment test, but
  // across grains: the output vector must not depend on the chunk size.
  constexpr std::size_t kN = 257;
  ThreadPool pool{4};
  auto run = [&](std::size_t grain) {
    std::vector<std::uint64_t> out(kN, 0);
    pool.parallel_for(kN, [&](std::size_t i) { out[i] = i * i + 7 * i + 3; }, grain);
    return out;
  };
  const auto baseline = run(1);
  EXPECT_EQ(baseline, run(2));
  EXPECT_EQ(baseline, run(8));
  EXPECT_EQ(baseline, run(64));
  EXPECT_EQ(baseline, run(1000));  // one chunk swallows the whole range
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadAssignment) {
  // body(i) writes a pure function of i into slot i — the result vector
  // must come out identical however the pool interleaved the work, and
  // identical to the single-threaded pool.
  constexpr std::size_t kN = 257;  // not a multiple of the thread count
  auto run = [](std::size_t threads) {
    ThreadPool pool{threads};
    std::vector<std::uint64_t> out(kN, 0);
    pool.parallel_for(kN, [&](std::size_t i) { out[i] = i * i + 7 * i + 3; });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(0));  // hardware concurrency
}

TEST(ThreadPoolTest, BarrierAllowsImmediateReuse) {
  // Consecutive parallel_for calls share the job slots; the per-call
  // barrier must keep generation k's stragglers out of generation k+1.
  ThreadPool pool{4};
  std::vector<int> data(64, 0);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(data.size(), [&](std::size_t i) { ++data[i]; });
  }
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], 200) << "index " << i;
}

TEST(ThreadPoolTest, FewerTasksThanThreads) {
  ThreadPool pool{8};
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, PropagatesLowestIndexException) {
  ThreadPool pool{4};
  // Indices 10, 100 and 500 all throw; whatever thread got there first,
  // the caller must see index 10 — the deterministic choice.
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      pool.parallel_for(1000, [](std::size_t i) {
        if (i == 10 || i == 100 || i == 500)
          throw std::runtime_error("boom at " + std::to_string(i));
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 10");
    }
  }
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsAtEveryGrain) {
  // The deterministic-error contract must hold however indices are
  // chunked: two throwers land in the same chunk at large grains, in
  // different chunks at small ones — index 17 must surface either way.
  ThreadPool pool{4};
  for (const std::size_t grain : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                                  std::size_t{64}}) {
    try {
      pool.parallel_for(200, [](std::size_t i) {
        if (i == 17 || i == 18 || i == 150)
          throw std::runtime_error("boom at " + std::to_string(i));
      }, grain);
      FAIL() << "parallel_for swallowed the exception at grain " << grain;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 17") << "grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, ExceptionDoesNotSkipOtherIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(100);
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 0) throw std::runtime_error("first index failed");
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error&) {
  }
  // The failure surfaced after the barrier, so every other index still ran.
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, InlinePathKeepsExceptionContract) {
  // The single-thread (inline) configuration must honor the same
  // semantics as the pooled one: all indices run, lowest index surfaces.
  ThreadPool pool{1};
  std::vector<int> hits(50, 0);
  try {
    pool.parallel_for(50, [&](std::size_t i) {
      ++hits[i];
      if (i == 3 || i == 40) throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 3");
  }
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, PoolStaysUsableAfterException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ZeroTaskCallAndIdleShutdown) {
  {
    ThreadPool pool{4};
    pool.parallel_for(0, [](std::size_t) { FAIL() << "body ran for n = 0"; });
  }  // destructor with zero tasks ever run must not hang
  {
    ThreadPool idle{8};  // never used at all
  }
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareThreads) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace pas::common
