#include "common/random.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace pas::common {
namespace {

TEST(RngTest, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng r{9};
  RunningStats s;
  for (int i = 0; i < 20'000; ++i) {
    const double x = r.uniform(5.0, 15.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 15.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng r{11};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 4000);
    EXPECT_LT(c, 6000);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng r{13};
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.exponential(0.05));
  EXPECT_NEAR(s.mean(), 0.05, 0.002);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng r{17};
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.normal(3.0, 0.5));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_NEAR(s.stddev(), 0.5, 0.02);
}

TEST(RngTest, ChanceProbability) {
  Rng r{19};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent{23};
  Rng child = parent.split();
  // The child stream must not replay the parent's output.
  Rng parent2{23};
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace pas::common
