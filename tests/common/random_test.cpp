#include "common/random.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace pas::common {
namespace {

TEST(RngTest, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng r{9};
  RunningStats s;
  for (int i = 0; i < 20'000; ++i) {
    const double x = r.uniform(5.0, 15.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 15.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng r{11};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 4000);
    EXPECT_LT(c, 6000);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng r{13};
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.exponential(0.05));
  EXPECT_NEAR(s.mean(), 0.05, 0.002);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng r{17};
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(r.normal(3.0, 0.5));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_NEAR(s.stddev(), 0.5, 0.02);
}

TEST(RngTest, ChanceProbability) {
  Rng r{19};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent{23};
  Rng child = parent.split();
  // The child stream must not replay the parent's output.
  Rng parent2{23};
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SubstreamTest, Deterministic) {
  Rng a = substream(101, "chaos");
  Rng b = substream(101, "chaos");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SubstreamTest, TagsAreIndependent) {
  // Different tags under the same seed — and the same tag under different
  // seeds — must produce unrelated streams.
  Rng chaos = substream(101, "chaos");
  Rng fleet = substream(101, "fleet");
  Rng other_seed = substream(102, "chaos");
  int same_tagwise = 0, same_seedwise = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t c = chaos.next_u64();
    if (c == fleet.next_u64()) ++same_tagwise;
    if (c == other_seed.next_u64()) ++same_seedwise;
  }
  EXPECT_LT(same_tagwise, 2);
  EXPECT_LT(same_seedwise, 2);
}

TEST(SubstreamTest, DoesNotPerturbTheBaseStream) {
  // Prefix preservation — the property every scenario generator leans on: a
  // feature drawing from substream(seed, tag) leaves Rng{seed}'s sequence
  // untouched, so historical seeded scenarios replay byte-identically.
  Rng base{17};
  std::vector<std::uint64_t> before;
  for (int i = 0; i < 64; ++i) before.push_back(base.next_u64());

  Rng derived = substream(17, "chaos");
  for (int i = 0; i < 1000; ++i) (void)derived.next_u64();

  Rng replay{17};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(replay.next_u64(), before[i]);
  // And the derived stream is not a delayed replay of the base either.
  Rng derived2 = substream(17, "chaos");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (derived2.next_u64() == before[i]) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SubstreamTest, GoldenValuesPinTheDerivation) {
  // The derivation (splitmix64(seed) ^ FNV-1a-64(tag), fed to the Rng
  // seeder) is part of every seeded experiment's identity: changing it
  // would silently rename all of them. These constants are the first two
  // outputs of four (seed, tag) pairs under the current derivation — if
  // this test fails, the derivation changed, and every recorded chaos seed
  // in BENCHMARKS.md and CI is invalid.
  struct Golden {
    std::uint64_t seed;
    const char* tag;
    std::uint64_t first, second;
  };
  const Golden golden[] = {
      {17, "chaos", 0xA89567755FE8D79AULL, 0xC503AEB7E43EA080ULL},
      {17, "crash", 0x4B2164F9D4BDE095ULL, 0x6ABB96440963CDA2ULL},
      {0, "chaos", 0x36AE9370D8659417ULL, 0x24B2D116A8634061ULL},
      {42, "link", 0xFC6ABBF960BCF3ABULL, 0x1C95DA085492FD8EULL},
  };
  for (const Golden& g : golden) {
    Rng r = substream(g.seed, g.tag);
    EXPECT_EQ(r.next_u64(), g.first) << g.seed << " \"" << g.tag << "\"";
    EXPECT_EQ(r.next_u64(), g.second) << g.seed << " \"" << g.tag << "\"";
  }
}

}  // namespace
}  // namespace pas::common
