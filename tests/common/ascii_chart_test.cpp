#include "common/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace pas::common {
namespace {

TEST(AsciiChartTest, RendersTitleAxisAndLegend) {
  ChartSeries s{"load", '*', {0, 25, 50, 75, 100}};
  ChartOptions opt;
  opt.title = "My Chart";
  opt.width = 20;
  opt.height = 5;
  const std::string out = render_chart(std::vector<ChartSeries>{s}, opt);
  EXPECT_NE(out.find("My Chart"), std::string::npos);
  EXPECT_NE(out.find("legend: *=load"), std::string::npos);
  EXPECT_NE(out.find("100.0 |"), std::string::npos);
  EXPECT_NE(out.find("0.0 |"), std::string::npos);
}

// Plot area only: everything before the legend line.
std::string plot_area(const std::string& out) {
  return out.substr(0, out.find("legend"));
}

TEST(AsciiChartTest, ConstantSeriesDrawsFlatLine) {
  ChartSeries s{"c", '#', std::vector<double>(50, 50.0)};
  ChartOptions opt;
  opt.width = 10;
  opt.height = 5;
  const std::string out = plot_area(render_chart(std::vector<ChartSeries>{s}, opt));
  // Mid row (value 50 of 0..100 over 5 rows -> row index 2 from top).
  std::size_t hashes = 0;
  for (char c : out) {
    if (c == '#') ++hashes;
  }
  EXPECT_EQ(hashes, 10u);
}

TEST(AsciiChartTest, LaterSeriesOverwrites) {
  ChartSeries a{"a", 'a', std::vector<double>(10, 50.0)};
  ChartSeries b{"b", 'b', std::vector<double>(10, 50.0)};
  ChartOptions opt;
  opt.width = 10;
  opt.height = 5;
  const std::string out = plot_area(render_chart(std::vector<ChartSeries>{a, b}, opt));
  // Both map to the same cells; 'b' drawn last wins everywhere.
  EXPECT_EQ(out.find('a'), std::string::npos);
  std::size_t bs = 0;
  for (char c : out) {
    if (c == 'b') ++bs;
  }
  EXPECT_EQ(bs, 10u);
}

TEST(AsciiChartTest, ClampsOutOfRangeValues) {
  ChartSeries s{"s", '*', {-50.0, 250.0}};
  ChartOptions opt;
  opt.width = 10;
  opt.height = 4;
  // Should not crash and should draw within bounds.
  const std::string out = render_chart(std::vector<ChartSeries>{s}, opt);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChartTest, EmptySeries) {
  ChartSeries s{"empty", '*', {}};
  ChartOptions opt;
  const std::string out = render_chart(std::vector<ChartSeries>{s}, opt);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(AsciiChartTest, ResamplingPreservesPlateauMean) {
  // 100 samples: first half 20, second half 80; resampled to 10 buckets the
  // first 5 buckets must be 20 and the last 5 must be 80.
  std::vector<double> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i < 50 ? 20.0 : 80.0;
  ChartSeries s{"s", '*', v};
  ChartOptions opt;
  opt.width = 10;
  opt.height = 11;  // 0..100 in steps of 10
  const std::string out = plot_area(render_chart(std::vector<ChartSeries>{s}, opt));
  // Row for 20 and row for 80 each contain 5 stars.
  std::size_t stars = 0;
  for (char c : out) {
    if (c == '*') ++stars;
  }
  EXPECT_EQ(stars, 10u);
}

TEST(RenderBarsTest, Basic) {
  std::vector<Bar> bars{{"short", 10.0}, {"long", 100.0}};
  const std::string out = render_bars(bars, 100.0, "s", 20);
  EXPECT_NE(out.find("short"), std::string::npos);
  EXPECT_NE(out.find("long"), std::string::npos);
  // The long bar has 20 hashes, the short one 2.
  EXPECT_NE(out.find("####################"), std::string::npos);
}

TEST(RenderBarsTest, ZeroMaxDoesNotDivideByZero) {
  std::vector<Bar> bars{{"x", 0.0}};
  EXPECT_FALSE(render_bars(bars, 0.0, "J").empty());
}

}  // namespace
}  // namespace pas::common
