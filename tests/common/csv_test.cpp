#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pas::common {
namespace {

TEST(CsvTest, EscapePlainField) { EXPECT_EQ(CsvWriter::escape("abc"), "abc"); }

TEST(CsvTest, EscapeComma) { EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\""); }

TEST(CsvTest, EscapeQuote) { EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\""); }

TEST(CsvTest, EscapeNewline) { EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\""); }

TEST(CsvTest, InMemoryRows) {
  CsvWriter w;
  w.header({"t", "x"});
  w.row({1.0, 2.5});
  w.row({2.0, 3.5});
  EXPECT_EQ(w.str(), "t,x\n1,2.5\n2,3.5\n");
}

TEST(CsvTest, LabeledRow) {
  CsvWriter w;
  w.labeled_row("xen,credit", std::vector<double>{1.0});
  EXPECT_EQ(w.str(), "\"xen,credit\",1\n");
}

TEST(CsvTest, RawLine) {
  CsvWriter w;
  w.raw_line("a,b,c");
  EXPECT_EQ(w.str(), "a,b,c\n");
}

TEST(CsvTest, FormatNumber) {
  EXPECT_EQ(format_number(12.345), "12.345");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(0.5), "0.5");
}

TEST(CsvTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/pas_csv_test.csv";
  {
    CsvWriter w{path};
    w.header({"a", "b"});
    w.row({1.0, 2.0});
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter{"/nonexistent-dir-xyz/file.csv"}, std::runtime_error);
}

// --- CsvTable (the strict reader) ---

// Captures the message of the runtime_error `fn` must throw.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::runtime_error";
  return {};
}

TEST(CsvTableTest, ParsesPlainTable) {
  const auto t = CsvTable::parse("t,x\n1,2.5\n2,3.5\n");
  ASSERT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.header()[0], "t");
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "3.5");
  EXPECT_DOUBLE_EQ(t.number(1, 1), 3.5);
  EXPECT_EQ(t.line(0), 2u);
  EXPECT_EQ(t.line(1), 3u);
}

TEST(CsvTableTest, MissingTrailingNewlineIsTolerated) {
  const auto t = CsvTable::parse("a,b\n1,2");
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(CsvTableTest, TrailingNewlineAddsNoPhantomRow) {
  EXPECT_EQ(CsvTable::parse("a,b\n1,2\n").rows(), 1u);
}

TEST(CsvTableTest, CrlfLineEndingsAreTolerated) {
  const auto t = CsvTable::parse("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "1");
  EXPECT_EQ(t.cell(1, 1), "4");
}

TEST(CsvTableTest, QuotedFieldsWithCommasQuotesAndNewlines) {
  const auto t = CsvTable::parse("name,v\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n\"l1\nl2\",3\n");
  ASSERT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cell(0, 0), "a,b");
  EXPECT_EQ(t.cell(1, 0), "say \"hi\"");
  EXPECT_EQ(t.cell(2, 0), "l1\nl2");
  // The embedded newline shifts physical lines: row 2 starts on line 4 but
  // a row after it would start on line 6.
  EXPECT_EQ(t.line(2), 4u);
}

TEST(CsvTableTest, RoundTripsWriterEscapes) {
  CsvWriter w;
  w.header({"label", "x"});
  w.labeled_row("a,\"b\"\nc", std::vector<double>{1.5});
  const auto t = CsvTable::parse(w.str());
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "a,\"b\"\nc");
  EXPECT_DOUBLE_EQ(t.number(0, 1), 1.5);
}

TEST(CsvTableTest, EmptyInputRejected) {
  EXPECT_THROW((void)CsvTable::parse(""), std::runtime_error);
  EXPECT_THROW((void)CsvTable::parse("\n"), std::runtime_error);
}

TEST(CsvTableTest, RaggedRowRejectedWithLineNumber) {
  const std::string msg = thrown_message(
      [] { (void)CsvTable::parse("a,b\n1,2\n3\n", "trace.csv"); });
  EXPECT_NE(msg.find("trace.csv:3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ragged"), std::string::npos) << msg;
}

TEST(CsvTableTest, BlankInteriorLineIsARaggedRow) {
  EXPECT_THROW((void)CsvTable::parse("a,b\n1,2\n\n3,4\n"), std::runtime_error);
}

TEST(CsvTableTest, UnterminatedQuoteRejected) {
  const std::string msg =
      thrown_message([] { (void)CsvTable::parse("a\n\"open\n", "t.csv"); });
  EXPECT_NE(msg.find("unterminated"), std::string::npos) << msg;
}

TEST(CsvTableTest, NonNumericCellRejectedWithLineAndColumn) {
  const auto t = CsvTable::parse("t,demand\n1,5\n2,oops\n", "demo.csv");
  EXPECT_DOUBLE_EQ(t.number(0, 1), 5.0);
  const std::string msg = thrown_message([&] { (void)t.number(1, 1); });
  EXPECT_NE(msg.find("demo.csv:3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
  EXPECT_NE(msg.find("demand"), std::string::npos) << msg;
}

TEST(CsvTableTest, NanInfHexAndPaddedCellsRejected) {
  // strtod would accept all of these; the strict grammar must not.
  for (const char* cell : {"nan", "inf", "-inf", "0x10", " 1", "1 ", "\t2"}) {
    const auto t = CsvTable::parse(std::string{"x\n\""} + cell + "\"\n");
    EXPECT_THROW((void)t.number(0, 0), std::runtime_error) << cell;
  }
  // The plain grammar still covers everything the writers emit.
  const auto ok = CsvTable::parse("x\n-1.5e-3\n");
  EXPECT_DOUBLE_EQ(ok.number(0, 0), -1.5e-3);
}

TEST(CsvTableTest, BareCrIsFieldContentEvenAtEof) {
  // A bare CR (no LF) is field content, and a final line holding only one
  // must surface as a row — a one-cell row here — not vanish silently.
  const auto t = CsvTable::parse("x\n\r");
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "\r");
  EXPECT_THROW((void)t.number(0, 0), std::runtime_error);
}

TEST(CsvTableTest, TextAfterClosingQuoteRejected) {
  EXPECT_THROW((void)CsvTable::parse("a\n\"12\"3\n"), std::runtime_error);
  const std::string msg =
      thrown_message([] { (void)CsvTable::parse("a\n\"12\"3\n", "q.csv"); });
  EXPECT_NE(msg.find("q.csv:2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("after closing quote"), std::string::npos) << msg;
  // A quoted field followed by a separator stays legal.
  const auto ok = CsvTable::parse("a,b\n\"1\",\"2\"\n");
  EXPECT_EQ(ok.cell(0, 1), "2");
}

TEST(CsvTableTest, EmptyAndPartiallyNumericCellsRejected) {
  const auto t = CsvTable::parse("x\n\n", "p.csv");  // row is the empty cell
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_THROW((void)t.number(0, 0), std::runtime_error);
  const auto u = CsvTable::parse("x\n12abc\n");
  EXPECT_THROW((void)u.number(0, 0), std::runtime_error);
}

TEST(CsvTableTest, ColumnLookup) {
  const auto t = CsvTable::parse("t_sec,demand_pct\n0,1\n");
  ASSERT_TRUE(t.column("demand_pct").has_value());
  EXPECT_EQ(*t.column("demand_pct"), 1u);
  EXPECT_FALSE(t.column("absent").has_value());
}

TEST(CsvTableTest, LoadsFileAndUsesPathInErrors) {
  const std::string path = ::testing::TempDir() + "/pas_csv_table_test.csv";
  {
    std::ofstream out{path};
    out << "a,b\n1,nope\n";
  }
  const auto t = CsvTable::load(path);
  const std::string msg = thrown_message([&] { (void)t.number(0, 1); });
  EXPECT_NE(msg.find(path + ":2"), std::string::npos) << msg;
  std::remove(path.c_str());
  EXPECT_THROW((void)CsvTable::load("/nonexistent-dir-xyz/t.csv"), std::runtime_error);
}

}  // namespace
}  // namespace pas::common
