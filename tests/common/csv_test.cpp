#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pas::common {
namespace {

TEST(CsvTest, EscapePlainField) { EXPECT_EQ(CsvWriter::escape("abc"), "abc"); }

TEST(CsvTest, EscapeComma) { EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\""); }

TEST(CsvTest, EscapeQuote) { EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\""); }

TEST(CsvTest, EscapeNewline) { EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\""); }

TEST(CsvTest, InMemoryRows) {
  CsvWriter w;
  w.header({"t", "x"});
  w.row({1.0, 2.5});
  w.row({2.0, 3.5});
  EXPECT_EQ(w.str(), "t,x\n1,2.5\n2,3.5\n");
}

TEST(CsvTest, LabeledRow) {
  CsvWriter w;
  w.labeled_row("xen,credit", std::vector<double>{1.0});
  EXPECT_EQ(w.str(), "\"xen,credit\",1\n");
}

TEST(CsvTest, RawLine) {
  CsvWriter w;
  w.raw_line("a,b,c");
  EXPECT_EQ(w.str(), "a,b,c\n");
}

TEST(CsvTest, FormatNumber) {
  EXPECT_EQ(format_number(12.345), "12.345");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(0.5), "0.5");
}

TEST(CsvTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/pas_csv_test.csv";
  {
    CsvWriter w{path};
    w.header({"a", "b"});
    w.row({1.0, 2.0});
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter{"/nonexistent-dir-xyz/file.csv"}, std::runtime_error);
}

}  // namespace
}  // namespace pas::common
