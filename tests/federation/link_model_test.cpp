// Per-link migration pricing: the federation's LinkModel tiers must order
// costs the way the hardware does (intra-rack < cross-rack < WAN), apply
// the class-aware surcharges only to cross-class flights, and keep a
// runtime bandwidth change scoped to ONE link — each link owns its own
// MigrationEngine, so a degraded WAN circuit must never re-plan a flight
// on a different pair's link.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/migration.hpp"
#include "common/units.hpp"
#include "federation/federation.hpp"
#include "federation/link_model.hpp"
#include "platform/host_class.hpp"
#include "workload/synthetic.hpp"

namespace pas::fed {
namespace {

using common::seconds;
using common::SimTime;

TEST(LinkModelTest, ToStringNamesEveryKind) {
  EXPECT_STREQ(to_string(LinkKind::kIntraRack), "intra_rack");
  EXPECT_STREQ(to_string(LinkKind::kCrossRack), "cross_rack");
  EXPECT_STREQ(to_string(LinkKind::kWan), "wan");
}

TEST(LinkModelTest, PresetsPriceTiersInOrder) {
  // The same guest costs strictly more on each slower tier — both phases.
  const cluster::MigrationPlan intra =
      cluster::plan_migration(1024.0, 40.0, intra_rack_link().migration);
  const cluster::MigrationPlan cross =
      cluster::plan_migration(1024.0, 40.0, cross_rack_link().migration);
  const cluster::MigrationPlan wan =
      cluster::plan_migration(1024.0, 40.0, wan_link().migration);
  EXPECT_LT(intra.precopy_duration, cross.precopy_duration);
  EXPECT_LT(cross.precopy_duration, wan.precopy_duration);
  EXPECT_LT(intra.downtime, cross.downtime);
  EXPECT_LT(cross.downtime, wan.downtime);
}

TEST(LinkModelTest, ClassSurchargesApplyOnlyAcrossClasses) {
  platform::HostClass xeon;
  xeon.name = "xeon";
  platform::HostClass optiplex;
  optiplex.name = "optiplex";
  const LinkModel wan = wan_link();
  EXPECT_DOUBLE_EQ(wan.dirty_factor(xeon, xeon), 1.0);
  EXPECT_EQ(wan.switch_penalty(xeon, xeon), SimTime{});
  EXPECT_DOUBLE_EQ(wan.dirty_factor(xeon, optiplex), wan.cross_class_dirty_factor);
  EXPECT_EQ(wan.switch_penalty(xeon, optiplex), wan.cross_class_switch_latency);
  // Direction-blind: the surcharge models crossing classes, not which way.
  EXPECT_DOUBLE_EQ(wan.dirty_factor(optiplex, xeon), wan.cross_class_dirty_factor);
}

// --- federation-level flight pricing -----------------------------------

/// A minimal shard: two hosts of one class, one idle 512 MB guest homed on
/// host 0, no manager — every flight below is scripted, so the recorded
/// schedule is exactly the pure cost model's.
std::unique_ptr<cluster::Cluster> mini_shard(const char* class_name) {
  cluster::ClusterConfig cc;
  platform::HostClass hc;
  hc.name = class_name;
  hc.memory_mb = 8192.0;
  cc.host_classes = {hc, hc};
  cc.host.trace_stride = SimTime{};  // pure accounting
  auto shard = std::make_unique<cluster::Cluster>(std::move(cc));
  cluster::ClusterVmConfig vc;
  vc.vm.name = "guest";
  vc.vm.credit = 10.0;
  vc.memory_mb = 512.0;
  vc.dirty_mb_per_s = 30.0;
  shard->add_vm(std::move(vc), std::make_unique<wl::IdleGuest>(), 0);
  return shard;
}

Federation two_shard_fed(const char* class_a, const char* class_b) {
  std::vector<std::unique_ptr<cluster::Cluster>> shards;
  shards.push_back(mini_shard(class_a));
  shards.push_back(mini_shard(class_b));
  return Federation{FederationConfig{}, std::move(shards)};
}

TEST(FederationLinkTest, SameClassWanFlightMatchesPurePlan) {
  Federation fed = two_shard_fed("host", "host");
  EXPECT_EQ(fed.link(0, 1).kind, LinkKind::kWan) << "empty racks = all-WAN";
  fed.run_until(seconds(5));
  ASSERT_TRUE(fed.migrate(0, 0, 1, 1));
  EXPECT_TRUE(fed.in_cross_shard_flight(0));
  fed.run_until(seconds(60));

  const cluster::MigrationPlan plan =
      cluster::plan_migration(512.0, 30.0, wan_link().migration);
  ASSERT_EQ(fed.cross_shard_records().size(), 1u);
  const FedMigrationRecord& rec = fed.cross_shard_records().front();
  EXPECT_EQ(rec.link, LinkKind::kWan);
  EXPECT_EQ(rec.from_shard, 0u);
  EXPECT_EQ(rec.to_shard, 1u);
  EXPECT_EQ(rec.record.start, seconds(5));
  EXPECT_EQ(rec.record.stop, seconds(5) + plan.precopy_duration);
  // Same platform class on both ends: the pure plan, no surcharge.
  EXPECT_EQ(rec.record.downtime, plan.downtime);
  EXPECT_EQ(rec.record.end, rec.record.stop + plan.downtime);
  EXPECT_EQ(rec.record.outcome, cluster::MigrationOutcome::kCompleted);
  // Global host ids on the record: shard 1's host 1 is federation host 3.
  EXPECT_EQ(rec.record.from, fed.global_host_id(0, 0));
  EXPECT_EQ(rec.record.to, fed.global_host_id(1, 1));

  // The guest actually moved: departed at the source, running at the
  // destination, the registry pointing at its new shard, and the pause
  // charged to the destination's SLA.
  EXPECT_EQ(fed.shard(0).vm_state(0), cluster::VmState::kDeparted);
  const FedVmRef loc = fed.locate(0);
  EXPECT_EQ(loc.shard, 1u);
  EXPECT_EQ(fed.shard(1).vm_state(loc.vm), cluster::VmState::kRunning);
  EXPECT_EQ(fed.shard(1).residence(loc.vm), 1u);
  EXPECT_EQ(fed.shard(1).sla().violation_time(loc.vm), plan.downtime);
  EXPECT_FALSE(fed.in_cross_shard_flight(0));
}

TEST(FederationLinkTest, CrossClassFlightPaysDirtyAndSwitchSurcharge) {
  Federation fed = two_shard_fed("xeon", "optiplex");
  const LinkModel& wan = fed.link(0, 1);
  fed.run_until(seconds(5));
  ASSERT_TRUE(fed.migrate(0, 0, 1, 1));
  fed.run_until(seconds(60));

  // The engine saw the stretched dirty rate AND the extra switch pause.
  const cluster::MigrationPlan plan = cluster::plan_migration(
      512.0, 30.0 * wan.cross_class_dirty_factor, wan.migration);
  ASSERT_EQ(fed.cross_shard_records().size(), 1u);
  const cluster::MigrationRecord& rec = fed.cross_shard_records().front().record;
  EXPECT_EQ(rec.stop, seconds(5) + plan.precopy_duration);
  EXPECT_EQ(rec.downtime, plan.downtime + wan.cross_class_switch_latency);
  EXPECT_EQ(rec.end, rec.stop + rec.downtime);

  // Strictly dearer than the same move between same-class shards: more
  // bytes on the wire and a later hand-over. (Downtime alone is NOT
  // monotone in the dirty rate — an extra pre-copy round can shrink the
  // residue — so the cost claim is total transfer and completion time.)
  Federation same = two_shard_fed("xeon", "xeon");
  same.run_until(seconds(5));
  ASSERT_TRUE(same.migrate(0, 0, 1, 1));
  same.run_until(seconds(60));
  ASSERT_EQ(same.cross_shard_records().size(), 1u);
  const cluster::MigrationRecord& cheap = same.cross_shard_records().front().record;
  EXPECT_GT(rec.transferred_mb, cheap.transferred_mb);
  EXPECT_GT(rec.end, cheap.end);
}

TEST(FederationLinkTest, RacksSelectCrossRackVersusWan) {
  std::vector<std::unique_ptr<cluster::Cluster>> shards;
  shards.push_back(mini_shard("host"));
  shards.push_back(mini_shard("host"));
  shards.push_back(mini_shard("host"));
  FederationConfig cfg;
  cfg.racks = {0, 0, 1};  // shards 0 and 1 share a rack; shard 2 is remote
  Federation fed{cfg, std::move(shards)};
  EXPECT_EQ(fed.link(0, 1).kind, LinkKind::kCrossRack);
  EXPECT_EQ(fed.link(0, 2).kind, LinkKind::kWan);
  EXPECT_EQ(fed.link(2, 1).kind, LinkKind::kWan) << "order must not matter";
  EXPECT_THROW((void)fed.link(1, 1), std::invalid_argument);
}

TEST(FederationLinkTest, BandwidthChangeIsScopedToOneLink) {
  // Two concurrent WAN flights out of shard 0, one per link. Degrading
  // link (0,1) mid-flight must lengthen ITS flight and leave the (0,2)
  // flight byte-identical to an undisturbed control federation.
  const auto build = [] {
    std::vector<std::unique_ptr<cluster::Cluster>> shards;
    shards.push_back(mini_shard("host"));
    shards.push_back(mini_shard("host"));
    shards.push_back(mini_shard("host"));
    // A second guest on shard 0 so both flights share a source shard.
    cluster::ClusterVmConfig vc;
    vc.vm.name = "guest2";
    vc.vm.credit = 10.0;
    vc.memory_mb = 512.0;
    vc.dirty_mb_per_s = 30.0;
    shards[0]->add_vm(std::move(vc), std::make_unique<wl::IdleGuest>(), 1);
    return Federation{FederationConfig{}, std::move(shards)};
  };

  Federation degraded = build();
  Federation control = build();
  for (Federation* fed : {&degraded, &control}) {
    fed->run_until(seconds(5));
    ASSERT_TRUE(fed->migrate(0, 0, 1, 0));  // guest 0 over link (0,1)
    ASSERT_TRUE(fed->migrate(0, 1, 2, 0));  // guest 1 over link (0,2)
    fed->run_until(seconds(6));
  }
  // Mid pre-copy (512 MB at 100 MB/s spans [5, 10.12]): halve ONE link.
  degraded.set_link_bandwidth(0, 1, 50.0);
  degraded.run_until(seconds(120));
  control.run_until(seconds(120));

  ASSERT_EQ(degraded.cross_shard_records().size(), 2u);
  ASSERT_EQ(control.cross_shard_records().size(), 2u);
  const auto find = [](const Federation& fed, ShardId to) {
    for (const FedMigrationRecord& r : fed.cross_shard_records())
      if (r.to_shard == to) return r;
    throw std::logic_error("record not found");
  };
  // The degraded link's flight stretched…
  EXPECT_GT(find(degraded, 1).record.end, find(control, 1).record.end);
  // …and the other link's flight did not move by a single microsecond.
  const cluster::MigrationRecord& a = find(degraded, 2).record;
  const cluster::MigrationRecord& b = find(control, 2).record;
  EXPECT_EQ(a.stop, b.stop);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.downtime, b.downtime);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_DOUBLE_EQ(a.transferred_mb, b.transferred_mb);
}

TEST(FederationLinkTest, SelfLinkBandwidthReachesTheShardEngine) {
  Federation fed = two_shard_fed("host", "host");
  fed.set_link_bandwidth(0, 0, 123.0);
  EXPECT_DOUBLE_EQ(fed.shard(0).link_bandwidth(), 123.0);
  EXPECT_DOUBLE_EQ(fed.shard(1).link_bandwidth(),
                   cluster::MigrationConfig{}.link_mb_per_s)
      << "the other shard's internal link is untouched";
}

TEST(FederationLinkTest, FlightGuardsRefuseConflictingMoves) {
  Federation fed = two_shard_fed("host", "host");
  fed.run_until(seconds(5));
  ASSERT_TRUE(fed.migrate(0, 0, 1, 1));
  // In flight: neither tier may touch the VM until the link is done.
  EXPECT_FALSE(fed.migrate(0, 0, 1, 0)) << "double cross-shard move";
  EXPECT_FALSE(fed.shard(0).migrate(0, 1)) << "shard-local move of a fed-locked VM";
  EXPECT_TRUE(fed.shard(0).federation_locked(0));
  fed.run_until(seconds(60));
  // Completed: the source-side id is departed — also not migratable.
  EXPECT_FALSE(fed.migrate(0, 0, 1, 0));
}

}  // namespace
}  // namespace pas::fed
