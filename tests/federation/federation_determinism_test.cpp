// Federation determinism suite: the cluster's byte-identity contract,
// lifted to the sharded tier. A federated run must be byte-identical
// across the fast/slow host paths and every executor thread count (the
// coordinator serializes all cross-shard state; threads are wall-clock
// only), and a single-shard federation must degrade to EXACTLY the bare
// hosting cluster — same trace rows, same energy bits — because it
// schedules no federation events at all.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../cluster/cluster_fuzz_common.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "federation/federation.hpp"
#include "scenario/federation_scenario.hpp"
#include "scenario/hosting_cluster.hpp"

namespace pas::fed {
namespace {

using common::seconds;

scenario::FederationScenarioConfig fed_config(std::size_t shards, bool fast_path,
                                              std::size_t threads) {
  scenario::FederationScenarioConfig cfg;
  // 24 VMs: the quarter-skew (6 tenants) opens a ~0.2 reserved-memory
  // utilization gap — comfortably above the planner's 0.10 threshold, so
  // the multi-shard suites exercise real cross-shard flights. (16 VMs
  // would leave the gap at ~0.094: a federation that never migrates.)
  cfg.base.hosts = 4;
  cfg.base.vms = 24;
  cfg.base.horizon = seconds(600);
  cfg.base.seed = 17;
  cfg.base.fast_path = fast_path;
  cfg.base.threads = threads;
  cfg.shards = shards;
  return cfg;
}

/// Byte-compare two federations: every shard pair via the cluster suite's
/// expect_identical, plus the cross-shard ledger (records, registry,
/// counters) field by field.
void expect_fed_identical(Federation& a, Federation& b, const std::string& label) {
  ASSERT_EQ(a.shard_count(), b.shard_count()) << label;
  for (ShardId s = 0; s < a.shard_count(); ++s)
    cluster::fuzz::expect_identical(a.shard(s), b.shard(s), 17,
                                    label + " shard " + std::to_string(s));
  ASSERT_EQ(a.planner_ticks(), b.planner_ticks()) << label;
  ASSERT_EQ(a.moves_issued(), b.moves_issued()) << label;
  ASSERT_EQ(a.cross_shard_in_flight(), b.cross_shard_in_flight()) << label;
  const auto& ra = a.cross_shard_records();
  const auto& rb = b.cross_shard_records();
  ASSERT_EQ(ra.size(), rb.size()) << label;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const std::string ctx = label + " fed migration " + std::to_string(i);
    ASSERT_EQ(ra[i].vm, rb[i].vm) << ctx;
    ASSERT_EQ(ra[i].from_shard, rb[i].from_shard) << ctx;
    ASSERT_EQ(ra[i].to_shard, rb[i].to_shard) << ctx;
    ASSERT_EQ(ra[i].from_host, rb[i].from_host) << ctx;
    ASSERT_EQ(ra[i].to_host, rb[i].to_host) << ctx;
    ASSERT_EQ(ra[i].src_vm, rb[i].src_vm) << ctx;
    ASSERT_EQ(ra[i].dst_vm, rb[i].dst_vm) << ctx;
    ASSERT_EQ(ra[i].link, rb[i].link) << ctx;
    ASSERT_EQ(ra[i].record.start, rb[i].record.start) << ctx;
    ASSERT_EQ(ra[i].record.stop, rb[i].record.stop) << ctx;
    ASSERT_EQ(ra[i].record.end, rb[i].record.end) << ctx;
    ASSERT_EQ(ra[i].record.rounds, rb[i].record.rounds) << ctx;
    ASSERT_EQ(ra[i].record.transferred_mb, rb[i].record.transferred_mb) << ctx;
    ASSERT_EQ(ra[i].record.downtime, rb[i].record.downtime) << ctx;
    ASSERT_EQ(ra[i].record.outcome, rb[i].record.outcome) << ctx;
  }
  ASSERT_EQ(a.vm_count(), b.vm_count()) << label;
  for (FedVmId v = 0; v < a.vm_count(); ++v) {
    ASSERT_EQ(a.locate(v).shard, b.locate(v).shard) << label << " vm " << v;
    ASSERT_EQ(a.locate(v).vm, b.locate(v).vm) << label << " vm " << v;
  }
}

TEST(FederationDeterminismTest, SingleShardDegradesToBareCluster) {
  // K = 1: the federation schedules nothing, so the run IS the bare
  // cluster's run — byte for byte, energy bits included.
  const scenario::FederationScenarioConfig cfg = fed_config(1, true, 1);
  std::unique_ptr<cluster::Cluster> bare = scenario::build_hosting_cluster(cfg.base);
  std::unique_ptr<Federation> fed = scenario::build_federation(cfg);
  bare->run_until(cfg.base.horizon);
  fed->run_until(cfg.base.horizon);
  EXPECT_EQ(fed->planner_ticks(), 0u);
  EXPECT_TRUE(fed->cross_shard_records().empty());
  cluster::fuzz::expect_identical(*bare, fed->shard(0), cfg.base.seed, "K=1 vs bare");
}

TEST(FederationDeterminismTest, ByteIdenticalAcrossPathsAndThreads) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::unique_ptr<Federation> ref =
        scenario::build_federation(fed_config(shards, true, 1));
    ref->run_until(seconds(600));
    struct Variant {
      bool fast_path;
      std::size_t threads;
      const char* name;
    };
    for (const Variant v : {Variant{false, 1, "slow-path"}, Variant{true, 2, "2-thread"},
                            Variant{true, 4, "4-thread"}}) {
      std::unique_ptr<Federation> run =
          scenario::build_federation(fed_config(shards, v.fast_path, v.threads));
      run->run_until(seconds(600));
      expect_fed_identical(*ref, *run,
                           "K=" + std::to_string(shards) + " " + v.name);
    }
  }
}

TEST(FederationDeterminismTest, SkewedFederationActuallyCrossesLinks) {
  // The scenario exists to exercise the global tier: a federation bench or
  // suite whose census is zero pins nothing. Guard the skew keeps working.
  std::unique_ptr<Federation> fed = scenario::build_federation(fed_config(2, true, 1));
  fed->run_until(seconds(600));
  EXPECT_GE(fed->planner_ticks(), 4u);  // 120 s period over a 600 s horizon
  ASSERT_GE(fed->cross_shard_records().size(), 1u);
  EXPECT_GE(fed->moves_issued(), fed->cross_shard_records().size());
  for (const FedMigrationRecord& rec : fed->cross_shard_records()) {
    EXPECT_EQ(rec.link, LinkKind::kWan) << "empty racks = every pair is WAN";
    EXPECT_EQ(rec.record.outcome, cluster::MigrationOutcome::kCompleted);
    EXPECT_GT(rec.record.downtime, common::SimTime{});
    // Source-side ghost and destination-side guest agree with the ledger
    // (the destination id may itself have departed on a later hop).
    EXPECT_EQ(fed->shard(rec.from_shard).vm_state(rec.src_vm),
              cluster::VmState::kDeparted);
    const cluster::VmState dst_state = fed->shard(rec.to_shard).vm_state(rec.dst_vm);
    EXPECT_TRUE(dst_state == cluster::VmState::kRunning ||
                dst_state == cluster::VmState::kDeparted);
  }
  // The planner moved load from the skewed shard toward the empty one.
  const Federation::ShardLoad l0 = fed->shard_load(0);
  const Federation::ShardLoad l1 = fed->shard_load(1);
  EXPECT_LT(l0.utilization() - l1.utilization(), 0.30)
      << "gap should have narrowed from the skewed start";
}

}  // namespace
}  // namespace pas::fed
