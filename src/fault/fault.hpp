// Seeded fault injection: a deterministic chaos schedule for the cluster.
//
// The design splits "what goes wrong" from "how it happens". A FaultPlan is
// pure data — a time-sorted list of fault events drawn from a dedicated
// chaos seed — and the FaultInjector compiles it into ordinary cluster
// events at arm time. Faults therefore ride the same (time, insertion-seq)
// ordered queue as manager ticks and migration phases, which is the whole
// determinism story: an injected crash is just one more cluster event, so
// fast-path, reference and parallel runs replay it identically (the chaos
// fuzz tier pins byte-identity across all of them).
//
// Seeding discipline: every fault category draws from its own named
// substream of the chaos seed (common::substream(chaos_seed, "crash"),
// "abort", "link", "brownout"), and the chaos seed is a separate knob from
// the scenario seed. Two consequences, both load-bearing:
//   * chaos_seed = 0 (or an all-zero FaultConfig) injects nothing, and
//     every pre-existing scenario seed reproduces byte-identically — chaos
//     is strictly additive;
//   * adding a new fault category later consumes a new substream, leaving
//     every historical (chaos_seed → fault plan) mapping intact — the same
//     prefix-preservation contract the scenario generators follow.
//
// What each fault does when it fires (the cluster-side semantics live in
// Cluster / MigrationEngine / ClusterManager; see docs/ARCHITECTURE.md
// "Faults & recovery"):
//   kHostCrash      — Cluster::crash_host: in-flight migrations touching
//                     the host abort first, residents orphan (manager
//                     recovery with bounded retry/backoff) or die.
//   kMigrationAbort — Cluster::abort_oldest_migration: the longest-
//                     in-flight migration cancels (pre-copy abandon or
//                     stop-and-copy rollback, whichever phase it is in).
//                     A no-op if nothing is in flight at that instant.
//   kLinkDegrade    — migration link drops to bandwidth_factor × base for
//                     [at, until); in-flight pre-copies re-plan their
//                     remaining rounds at each edge.
//   kBrownout       — ClusterManager ticks inside [at, until) are skipped;
//                     the first tick after re-plans from the drifted state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/migration.hpp"
#include "common/units.hpp"

namespace pas::sim {
class EventQueue;
}  // namespace pas::sim

namespace pas::cluster {
class Cluster;
}  // namespace pas::cluster

namespace pas::fault {

enum class FaultKind : std::uint8_t {
  kHostCrash = 0,
  kMigrationAbort,
  kLinkDegrade,
  kBrownout,
};

/// One scheduled fault. Which fields matter depends on `kind`; unused ones
/// keep their defaults so plans compare and print cleanly.
struct FaultEvent {
  FaultKind kind = FaultKind::kHostCrash;
  common::SimTime at{};
  /// kHostCrash: the victim.
  cluster::HostId host = 0;
  /// kHostCrash: orphan residents for recovery (true) or lose them (false).
  bool restart = true;
  /// kLinkDegrade: surviving fraction of the base bandwidth, in (0, 1).
  double bandwidth_factor = 1.0;
  /// kLinkDegrade / kBrownout: end of the degraded window (exclusive).
  common::SimTime until{};
};

/// A complete chaos schedule, sorted by time (ties keep draw order).
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] std::size_t count(FaultKind kind) const {
    std::size_t n = 0;
    for (const auto& e : events)
      if (e.kind == kind) ++n;
    return n;
  }
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// How much chaos to draw. Counts are maxima: each category draws
/// uniformly in [0, max]; crashes are additionally capped at hosts − 1
/// (the cluster refuses to crash its last live host).
struct FaultConfig {
  std::size_t max_crashes = 1;
  std::size_t max_migration_aborts = 2;
  std::size_t max_link_degrades = 1;
  std::size_t max_brownouts = 1;
  /// Probability a crash orphans its residents for recovery rather than
  /// losing them outright.
  double restart_probability = 0.75;

  [[nodiscard]] bool any() const {
    return max_crashes + max_migration_aborts + max_link_degrades + max_brownouts > 0;
  }
};

/// Draws a chaos schedule for a cluster of `hosts` hosts over [0, horizon).
/// Deterministic in (config, chaos_seed, hosts, horizon); every category
/// uses its own named substream (see the header comment). Fault times land
/// in the middle ~[5%, 90%] of the horizon so they interleave with real
/// cluster activity rather than firing before warm-up or after the run.
[[nodiscard]] FaultPlan draw_fault_plan(const FaultConfig& config,
                                        std::uint64_t chaos_seed, std::size_t hosts,
                                        common::SimTime horizon);

/// Compiles a FaultPlan into cluster events. Install on the cluster via
/// Cluster::install_faults before the first run_until; the cluster calls
/// arm() exactly once when the run starts.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Schedules every fault in the plan onto `events` against `cluster`.
  /// Called by Cluster::run_until at run start; the injector must outlive
  /// the run (the cluster owns it).
  void arm(cluster::Cluster& cluster, sim::EventQueue& events);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // --- what actually happened (a drawn fault can be a no-op: a crash on
  // the last live host, an abort with nothing in flight) ---
  [[nodiscard]] std::size_t crashes_fired() const { return crashes_fired_; }
  [[nodiscard]] std::size_t aborts_fired() const { return aborts_fired_; }
  [[nodiscard]] std::size_t link_degrades_fired() const { return link_degrades_fired_; }

 private:
  FaultPlan plan_;
  std::size_t crashes_fired_ = 0;
  std::size_t aborts_fired_ = 0;
  std::size_t link_degrades_fired_ = 0;
};

}  // namespace pas::fault
