#include "fault/fault.hpp"

#include <algorithm>
#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/cluster_manager.hpp"
#include "common/random.hpp"
#include "sim/event_queue.hpp"

namespace pas::fault {

namespace {

/// Uniform instant in the middle ~[5%, 90%] of the horizon — late enough
/// that warm-up is over, early enough that the consequences (recovery,
/// re-planned rounds) still play out inside the run.
common::SimTime draw_instant(common::Rng& rng, common::SimTime horizon) {
  return common::usec(static_cast<std::int64_t>(
      rng.uniform(0.05, 0.90) * static_cast<double>(horizon.us())));
}

}  // namespace

FaultPlan draw_fault_plan(const FaultConfig& config, std::uint64_t chaos_seed,
                          std::size_t hosts, common::SimTime horizon) {
  FaultPlan plan;
  if (hosts == 0 || horizon.us() <= 0 || !config.any()) return plan;

  {
    common::Rng rng = common::substream(chaos_seed, "crash");
    std::size_t n =
        config.max_crashes > 0 ? rng.next_below(config.max_crashes + 1) : 0;
    // The cluster refuses to crash its last live host; don't draw plans
    // that are mostly no-ops.
    n = std::min(n, hosts - 1);
    for (std::size_t i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kHostCrash;
      ev.at = draw_instant(rng, horizon);
      ev.host = static_cast<cluster::HostId>(rng.next_below(hosts));
      ev.restart = rng.chance(config.restart_probability);
      plan.events.push_back(ev);
    }
  }
  {
    common::Rng rng = common::substream(chaos_seed, "abort");
    const std::size_t n = config.max_migration_aborts > 0
                              ? rng.next_below(config.max_migration_aborts + 1)
                              : 0;
    for (std::size_t i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kMigrationAbort;
      ev.at = draw_instant(rng, horizon);
      plan.events.push_back(ev);
    }
  }
  {
    common::Rng rng = common::substream(chaos_seed, "link");
    const std::size_t n = config.max_link_degrades > 0
                              ? rng.next_below(config.max_link_degrades + 1)
                              : 0;
    for (std::size_t i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kLinkDegrade;
      ev.at = draw_instant(rng, horizon);
      ev.bandwidth_factor = rng.uniform(0.1, 0.6);
      // Long enough to catch whole migrations, short enough to end inside
      // the run most of the time (a window outrunning the horizon simply
      // never restores — still deterministic).
      ev.until = ev.at + common::usec(static_cast<std::int64_t>(
                             rng.uniform(0.05, 0.25) *
                             static_cast<double>(horizon.us())));
      plan.events.push_back(ev);
    }
  }
  {
    common::Rng rng = common::substream(chaos_seed, "brownout");
    const std::size_t n =
        config.max_brownouts > 0 ? rng.next_below(config.max_brownouts + 1) : 0;
    for (std::size_t i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kBrownout;
      ev.at = draw_instant(rng, horizon);
      ev.until = ev.at + common::usec(static_cast<std::int64_t>(
                             rng.uniform(0.1, 0.3) *
                             static_cast<double>(horizon.us())));
      plan.events.push_back(ev);
    }
  }

  // Time order for readability and for the injector's scheduling order;
  // stable so same-instant events keep their category draw order — one
  // fixed tiebreak, identical in every engine.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::arm(cluster::Cluster& cluster, sim::EventQueue& events) {
  cluster::Cluster* c = &cluster;
  // Degraded windows restore to the bandwidth configured at arm time — the
  // one knob this injector owns; nothing else in the simulator rewrites it.
  const double base_bw = cluster.link_bandwidth();
  for (const FaultEvent& ev : plan_.events) {
    switch (ev.kind) {
      case FaultKind::kHostCrash:
        events.schedule(ev.at, [this, c, host = ev.host,
                                restart = ev.restart](common::SimTime) {
          if (c->crash_host(host, restart)) ++crashes_fired_;
        });
        break;
      case FaultKind::kMigrationAbort:
        events.schedule(ev.at, [this, c](common::SimTime) {
          if (c->abort_oldest_migration()) ++aborts_fired_;
        });
        break;
      case FaultKind::kLinkDegrade:
        events.schedule(ev.at, [this, c, bw = base_bw * ev.bandwidth_factor](
                                   common::SimTime) {
          c->set_link_bandwidth(bw);
          ++link_degrades_fired_;
        });
        events.schedule(ev.until, [c, base_bw](common::SimTime) {
          c->set_link_bandwidth(base_bw);
        });
        break;
      case FaultKind::kBrownout:
        // No event needed: the manager checks its brownout windows at each
        // tick, so registering the window up front is equivalent — and
        // works even for ticks at the window's exact start.
        if (auto* mgr = c->manager()) mgr->add_brownout(ev.at, ev.until);
        break;
    }
  }
}

}  // namespace pas::fault
