#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace pas::sim {

void EventQueue::place(std::size_t pos, std::uint32_t slot) {
  heap_[pos] = slot;
  slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_up(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(moving, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, moving);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], moving)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, moving);
}

EventId EventQueue::schedule(common::SimTime when, EventFn fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);

  heap_.push_back(slot);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return pack(slot, s.generation);
}

void EventQueue::remove_heap_entry(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (last != slot) {
    place(pos, last);
    // The replacement may need to move either way relative to `pos`.
    sift_down(pos);
    sift_up(slots_[last].heap_pos);
  }
  Slot& s = slots_[slot];
  s.heap_pos = kNpos;
  ++s.generation;
  free_.push_back(slot);
}

bool EventQueue::reschedule(EventId id, common::SimTime when) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffff) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.generation != generation || s.heap_pos == kNpos) return false;
  s.when = when;
  s.seq = next_seq_++;
  // The key may have moved either way (the fresh seq only breaks ties):
  // settle downward first, then upward from wherever the entry landed.
  sift_down(s.heap_pos);
  sift_up(slots_[slot].heap_pos);
  return true;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffff) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.generation != generation || s.heap_pos == kNpos) return false;
  s.fn.reset();
  remove_heap_entry(s.heap_pos);
  return true;
}

void EventQueue::run_until(common::SimTime until) {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_.front();
    Slot& s = slots_[slot];
    if (s.when > until) break;
    const common::SimTime when = s.when;
    // Move the callback out and retire the slot *before* invoking: the
    // handler may schedule new events (possibly reusing this very slot) or
    // cancel others, and the heap must already be consistent.
    EventFn fn = std::move(s.fn);
    s.fn.reset();
    remove_heap_entry(0);
    fn(when);
  }
}

common::SimTime EventQueue::next_event_time(common::SimTime fallback) const {
  if (heap_.empty()) return fallback;
  return slots_[heap_.front()].when;
}

}  // namespace pas::sim
