#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace pas::sim {

EventId EventQueue::schedule(common::SimTime when, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  handlers_.emplace_back(id, std::move(fn));
  ++live_;
  return id;
}

EventFn* EventQueue::find_handler(EventId id) {
  const auto it = std::find_if(handlers_.begin(), handlers_.end(),
                               [id](const auto& p) { return p.first == id; });
  return it == handlers_.end() ? nullptr : &it->second;
}

void EventQueue::erase_handler(EventId id) {
  const auto it = std::find_if(handlers_.begin(), handlers_.end(),
                               [id](const auto& p) { return p.first == id; });
  if (it != handlers_.end()) {
    // The live-event count stays small (a handful of periodic tasks), so the
    // swap-erase is effectively O(1).
    *it = std::move(handlers_.back());
    handlers_.pop_back();
  }
}

bool EventQueue::cancel(EventId id) {
  if (find_handler(id) == nullptr) return false;
  erase_handler(id);
  --live_;
  return true;
}

void EventQueue::run_until(common::SimTime until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    const Entry e = heap_.top();
    heap_.pop();
    EventFn* fn = find_handler(e.id);
    if (fn == nullptr) continue;  // cancelled
    EventFn handler = std::move(*fn);
    erase_handler(e.id);
    --live_;
    handler(e.when);
  }
}

common::SimTime EventQueue::next_event_time(common::SimTime fallback) const {
  // Cancelled entries may linger at the top; we cannot pop here (const), so
  // report their time — callers only use this as a lower bound for the next
  // interesting instant, and a spurious early wake-up is harmless.
  if (heap_.empty()) return fallback;
  return heap_.top().when;
}

}  // namespace pas::sim
