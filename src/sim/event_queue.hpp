// Discrete-event core: a time-ordered queue of callbacks.
//
// The hypervisor host advances simulated time in scheduling quanta; all the
// *periodic* machinery around it (credit accounting, governor sampling,
// monitor window closing, PAS controller ticks, trace sampling) is driven by
// events in this queue. Ordering is deterministic: ties on time break by
// insertion sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace pas::sim {

using EventFn = std::function<void(common::SimTime now)>;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Events scheduled for a time in
  /// the past fire at the next dispatch.
  EventId schedule(common::SimTime when, EventFn fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled. Cancellation is O(1) (lazy: the entry is skipped at pop).
  bool cancel(EventId id);

  /// Runs every event with time <= `until`, in (time, insertion) order.
  /// Events may schedule further events; those also run if due.
  void run_until(common::SimTime until);

  /// Time of the earliest pending event, or `fallback` if none.
  [[nodiscard]] common::SimTime next_event_time(common::SimTime fallback) const;

  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

 private:
  struct Entry {
    common::SimTime when;
    EventId id = kInvalidEvent;
    // Ordered min-first by (when, id); std::priority_queue is max-first, so
    // invert the comparison.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  std::priority_queue<Entry> heap_;
  // id -> callback; erased on fire/cancel. Using a side map keeps cancel O(1)
  // and keeps std::function moves off the heap's sift paths.
  std::vector<std::pair<EventId, EventFn>> handlers_;
  EventFn* find_handler(EventId id);
  void erase_handler(EventId id);

  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace pas::sim
