// Discrete-event core: a time-ordered queue of callbacks.
//
// The hypervisor host advances simulated time in scheduling quanta; all the
// *periodic* machinery around it (credit accounting, governor sampling,
// monitor window closing, PAS controller ticks, trace sampling) is driven by
// events in this queue. Ordering is deterministic: ties on time break by
// insertion sequence.
//
// Implementation: an indexed binary min-heap over a slot pool. Each pending
// event owns a pool slot holding its callback (small-buffer optimized — the
// periodic ticks never heap-allocate) and its position in the heap, so
// cancel() removes the entry directly in O(log n) with no scanning and
// next_event_time() is exact (cancelled events never linger). Slots are
// recycled through a free list; EventIds carry a per-slot generation so a
// stale id can never cancel the slot's next tenant.
//
// Threading model: an EventQueue is single-threaded by design and stays
// that way under the cluster's parallel engine. Each hv::Host owns a
// private queue touched only while that host advances (possibly on a
// worker thread, but by exactly one thread at a time — the host's
// no-shared-state contract), and the cluster's coordinating queue is
// touched only by the coordinating thread between segment barriers. No
// locks needed, and the (time, seq) dispatch order is what makes cluster-
// event replay deterministic at any thread count (docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/inplace_function.hpp"
#include "common/units.hpp"

namespace pas::sim {

/// Event callbacks are stored by value; captures up to 48 bytes (six
/// pointers) are allocation-free.
using EventFn = common::InplaceFunction<void(common::SimTime), 48>;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Events scheduled for a time in
  /// the past fire at the next dispatch.
  EventId schedule(common::SimTime when, EventFn fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled. O(log n): the heap entry is removed immediately (no lazy
  /// tombstones), so pending() and next_event_time() stay exact.
  bool cancel(EventId id);

  /// Moves a pending event to `when`, drawing a fresh (largest) insertion
  /// sequence — exactly the order cancel() + schedule() of the same
  /// callback would produce, but in one heap adjustment, without touching
  /// the stored callback and without recycling the slot (the id stays
  /// valid). Returns false if `id` is stale.
  bool reschedule(EventId id, common::SimTime when);

  /// Runs every event with time <= `until`, in (time, insertion) order.
  /// Events may schedule further events; those also run if due.
  void run_until(common::SimTime until);

  /// Time of the earliest pending event, or `fallback` if none.
  [[nodiscard]] common::SimTime next_event_time(common::SimTime fallback) const;

  /// Insertion sequence of a pending event, or 0 if `id` is stale. Ties on
  /// time dispatch in ascending seq, so the host's bulk idle skip uses this
  /// to replay the exact merge order the reference loop would have run the
  /// periodic fires in (see hv::Host::skip_idle_to).
  [[nodiscard]] std::uint64_t seq_of(EventId id) const {
    if (id == kInvalidEvent) return 0;
    const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffff) - 1;
    const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size()) return 0;
    const Slot& s = slots_[slot];
    if (s.generation != generation || s.heap_pos == kNpos) return 0;
    return s.seq;
  }

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffff;

  struct Slot {
    common::SimTime when;
    std::uint64_t seq = 0;  // global insertion sequence; breaks time ties
    EventFn fn;
    std::uint32_t generation = 0;  // bumped on fire/cancel
    std::uint32_t heap_pos = kNpos;  // kNpos when the slot is free
  };

  [[nodiscard]] static EventId pack(std::uint32_t slot, std::uint32_t generation) {
    // +1 keeps ids nonzero so kInvalidEvent never collides with slot 0.
    return (static_cast<EventId>(generation) << 32) | (slot + 1);
  }

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void place(std::size_t pos, std::uint32_t slot);
  /// Detaches the heap entry at `pos` and returns the slot to the free list.
  void remove_heap_entry(std::size_t pos);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot indices, min-first by (when, seq)
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::uint64_t next_seq_ = 1;
};

}  // namespace pas::sim
