// Self-rearming periodic task on top of the EventQueue.
#pragma once

#include <utility>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace pas::sim {

/// Fires `fn(now)` every `period`, starting at `first` (absolute). The task
/// owns its rearm logic; destroying it (or calling stop()) cancels the next
/// firing. Must not outlive the queue. Rearming schedules a lambda that
/// captures only `this`, so a periodic tick never allocates.
class PeriodicTask {
 public:
  PeriodicTask(EventQueue& queue, common::SimTime first, common::SimTime period,
               EventFn fn)
      : queue_(queue), period_(period), fn_(std::move(fn)) {
    arm(first);
  }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { stop(); }

  void stop() {
    if (pending_ != kInvalidEvent) {
      queue_.cancel(pending_);
      pending_ = kInvalidEvent;
    }
  }

  [[nodiscard]] common::SimTime period() const { return period_; }

 private:
  void arm(common::SimTime when) {
    pending_ = queue_.schedule(when, [this](common::SimTime now) {
      pending_ = kInvalidEvent;
      arm(now + period_);
      fn_(now);
    });
  }

  EventQueue& queue_;
  common::SimTime period_;
  EventFn fn_;
  EventId pending_ = kInvalidEvent;
};

}  // namespace pas::sim
