// Self-rearming periodic task on top of the EventQueue.
#pragma once

#include <utility>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace pas::sim {

/// Fires `fn(now)` every `period`, starting at `first` (absolute). The task
/// owns its rearm logic; destroying it (or calling stop()) cancels the next
/// firing. Must not outlive the queue. Rearming schedules a lambda that
/// captures only `this`, so a periodic tick never allocates.
class PeriodicTask {
 public:
  PeriodicTask(EventQueue& queue, common::SimTime first, common::SimTime period,
               EventFn fn)
      : queue_(queue), period_(period), fn_(std::move(fn)) {
    arm(first);
  }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { stop(); }

  void stop() {
    if (pending_ != kInvalidEvent) {
      queue_.cancel(pending_);
      pending_ = kInvalidEvent;
    }
  }

  [[nodiscard]] common::SimTime period() const { return period_; }

  /// Absolute time of the next firing (meaningless after stop()).
  [[nodiscard]] common::SimTime next_due() const { return next_due_; }

  /// Queue insertion sequence of the pending firing, or 0 after stop().
  /// Same-instant fires dispatch in ascending seq — the host's bulk idle
  /// skip reads this to reproduce the reference merge order.
  [[nodiscard]] std::uint64_t pending_seq() const { return queue_.seq_of(pending_); }

  /// Re-arms the pending firing at absolute `when`. The firing draws a
  /// fresh (newest) insertion sequence, exactly as if the task had just
  /// fired and rearmed itself — which is what the bulk idle skip simulates
  /// when it re-arms fired tasks in simulated-fire order. Done in place
  /// (EventQueue::reschedule) when a firing is pending; falls back to a
  /// full arm otherwise.
  void advance_to(common::SimTime when) {
    if (pending_ != kInvalidEvent && queue_.reschedule(pending_, when)) {
      next_due_ = when;
      return;
    }
    stop();
    arm(when);
  }

 private:
  void arm(common::SimTime when) {
    next_due_ = when;
    pending_ = queue_.schedule(when, [this](common::SimTime now) {
      pending_ = kInvalidEvent;
      arm(now + period_);
      fn_(now);
    });
  }

  EventQueue& queue_;
  common::SimTime period_;
  EventFn fn_;
  EventId pending_ = kInvalidEvent;
  common::SimTime next_due_{};
};

}  // namespace pas::sim
