// cf calibration — the measurement procedure of §5.2, automated.
//
// For each P-state i of a machine we run a web workload at a fixed absolute
// demand, measure the global load L_i with the host pinned at state i, and
// solve eq. 1 for cf:
//
//     cf_i = L_top / (L_i * ratio_i)
//
// Measurements repeat over several demand levels and are averaged; the
// workload's Poisson arrivals and cost jitter make the result a *noisy
// estimate* of the machine's ground truth, as in any real calibration.
#pragma once

#include <vector>

#include "calibration/machine_model.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::calib {

struct CfCalibratorConfig {
  /// Absolute demand levels (percent of the machine's full speed) to
  /// average over; the paper "ran different Web-app workloads".
  std::vector<double> demand_levels_pct = {10.0, 20.0, 30.0};
  /// Measurement duration per (state, demand) point.
  common::SimTime measure_time = common::seconds(120);
  /// Warm-up discarded before measuring.
  common::SimTime warmup = common::seconds(10);
};

struct CfMeasurement {
  std::size_t state_index = 0;
  double nominal_mhz = 0.0;
  double ratio = 0.0;       // nominal F_i / F_max
  double mean_load_pct = 0.0;  // measured L_i (averaged over demands)
  double cf = 0.0;          // calibrated
};

struct CfReport {
  std::string machine;
  std::vector<CfMeasurement> states;  // ascending state order
  double cf_min = 0.0;                // cf of the lowest state (Table 1)
  double expected_cf_min = 0.0;       // model ground truth
};

/// Runs the full calibration for one machine.
[[nodiscard]] CfReport calibrate(const MachineSpec& spec, const CfCalibratorConfig& config = {});

/// Runs Table 1: calibrates every machine in table1_machines().
[[nodiscard]] std::vector<CfReport> calibrate_table1(const CfCalibratorConfig& config = {});

/// Builds a ladder with the calibrated cf values installed — what a
/// deployment would feed the PAS controller on that machine.
[[nodiscard]] cpu::FrequencyLadder calibrated_ladder(const CfReport& report,
                                                     const MachineSpec& spec);

}  // namespace pas::calib
