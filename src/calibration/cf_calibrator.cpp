#include "calibration/cf_calibrator.hpp"

#include <memory>
#include <stdexcept>

#include "common/stats.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/web_app.hpp"

namespace pas::calib {

namespace {

/// Measures the mean global load of a single full-credit VM serving a web
/// workload of `demand_pct`, with the machine pinned at `state`.
double measure_load_pct(const MachineSpec& spec, std::size_t state, double demand_pct,
                        const CfCalibratorConfig& cfg, std::uint64_t seed) {
  hv::HostConfig hc;
  hc.ladder = nominal_ladder(spec);
  hc.speed_override = speed_fn(spec);
  hc.trace_stride = common::SimTime{};  // no tracing needed
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};

  wl::WebAppConfig wc;
  wc.seed = seed;
  const double rate = wl::WebApp::rate_for_demand(demand_pct, wc.request_cost);
  hv::VmConfig vm;
  vm.name = "probe";
  vm.credit = 100.0;
  host.add_vm(vm, std::make_unique<wl::WebApp>(wl::LoadProfile::constant(rate), wc));

  host.cpufreq().request(state);
  host.run_until(cfg.warmup);
  const common::SimTime busy0 = host.monitor().cumulative_busy();
  host.run_until(cfg.warmup + cfg.measure_time);
  const common::SimTime busy1 = host.monitor().cumulative_busy();
  return 100.0 * static_cast<double>((busy1 - busy0).us()) /
         static_cast<double>(cfg.measure_time.us());
}

}  // namespace

CfReport calibrate(const MachineSpec& spec, const CfCalibratorConfig& cfg) {
  if (cfg.demand_levels_pct.empty())
    throw std::invalid_argument("calibrate: need at least one demand level");

  const cpu::FrequencyLadder ladder = nominal_ladder(spec);
  const std::size_t n = ladder.size();
  const std::size_t top = ladder.max_index();

  // loads[state][demand]. Common random numbers: every state replays the
  // same arrival stream for a given demand level, so the Poisson noise
  // cancels out of the L_max / L_i ratios (the quantity cf is solved from).
  std::vector<std::vector<double>> loads(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < cfg.demand_levels_pct.size(); ++d) {
      loads[s].push_back(
          measure_load_pct(spec, s, cfg.demand_levels_pct[d], cfg, spec.seed + d));
    }
  }

  CfReport report;
  report.machine = spec.name;
  report.expected_cf_min = expected_cf_min(spec);
  for (std::size_t s = 0; s < n; ++s) {
    CfMeasurement m;
    m.state_index = s;
    m.nominal_mhz = ladder.at(s).freq.value();
    m.ratio = ladder.ratio(s);
    common::RunningStats load_stats;
    common::RunningStats cf_stats;
    for (std::size_t d = 0; d < cfg.demand_levels_pct.size(); ++d) {
      load_stats.add(loads[s][d]);
      if (loads[s][d] > 0.0) {
        // eq. 1 solved for cf: Lmax/Li = ratio * cf.
        cf_stats.add(loads[top][d] / (loads[s][d] * m.ratio));
      }
    }
    m.mean_load_pct = load_stats.mean();
    m.cf = cf_stats.count() > 0 ? cf_stats.mean() : 1.0;
    report.states.push_back(m);
  }
  report.cf_min = report.states.front().cf;
  return report;
}

std::vector<CfReport> calibrate_table1(const CfCalibratorConfig& cfg) {
  std::vector<CfReport> out;
  for (const auto& spec : table1_machines()) out.push_back(calibrate(spec, cfg));
  return out;
}

cpu::FrequencyLadder calibrated_ladder(const CfReport& report, const MachineSpec& spec) {
  if (report.states.size() != spec.nominal_mhz.size())
    throw std::invalid_argument("calibrated_ladder: report does not match spec");
  std::vector<cpu::PState> states;
  states.reserve(report.states.size());
  for (std::size_t i = 0; i < report.states.size(); ++i) {
    states.push_back(cpu::PState{common::mhz(spec.nominal_mhz[i]), report.states[i].cf});
  }
  return cpu::FrequencyLadder{std::move(states)};
}

}  // namespace pas::calib
