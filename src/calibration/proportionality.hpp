// §5.2 "Verification of our assumptions": the three proportionality
// experiments, automated. These are the paper's sanity checks that
// eqs. 1–3 hold before building PAS on top of them; we run the same checks
// against the simulated substrate (where deviations would indicate a bug in
// the host/scheduler accounting rather than silicon quirks).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::calib {

/// Eq. 1 check: for a fixed web demand, the measured load at each state
/// obeys L_max / L_i = ratio_i * cf_i.
struct FreqLoadRow {
  std::size_t state_index = 0;
  double ratio = 0.0;
  double demand_pct = 0.0;    // injected absolute demand
  double load_pct = 0.0;      // measured L_i
  double load_ratio = 0.0;    // L_max / L_i
  double implied_cf = 0.0;    // load_ratio / ratio
};
[[nodiscard]] std::vector<FreqLoadRow> verify_eq1_frequency_load(
    const cpu::FrequencyLadder& ladder, std::vector<double> demands_pct = {10, 20, 30},
    common::SimTime measure_time = common::seconds(120));

/// Eq. 2 check: pi-app execution time at each state obeys
/// T_max / T_i = ratio_i * cf_i.
struct FreqTimeRow {
  std::size_t state_index = 0;
  double ratio = 0.0;
  double exec_time_sec = 0.0;
  double time_ratio = 0.0;  // T_max / T_i
  double implied_cf = 0.0;
};
[[nodiscard]] std::vector<FreqTimeRow> verify_eq2_frequency_time(
    const cpu::FrequencyLadder& ladder,
    common::Work pi_work = common::mf_seconds(50));

/// Eq. 3 check: pi-app execution time under credit c obeys
/// T_init / T_j = C_j / C_init (at a fixed frequency).
struct CreditTimeRow {
  common::Percent credit = 0.0;
  double exec_time_sec = 0.0;
  double time_ratio = 0.0;    // T_init / T_j (T_init = smallest credit's)
  double credit_ratio = 0.0;  // C_j / C_init
};
[[nodiscard]] std::vector<CreditTimeRow> verify_eq3_credit_time(
    const cpu::FrequencyLadder& ladder,
    std::vector<common::Percent> credits = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
    common::Work pi_work = common::mf_seconds(50));

/// Measures pi-app execution time on a fixed-credit host pinned at
/// `state_index` with the given credit — the primitive behind Fig. 1,
/// Table 2 and the eq. 2/3 checks.
[[nodiscard]] double measure_pi_time_sec(const cpu::FrequencyLadder& ladder,
                                         std::size_t state_index, common::Percent credit,
                                         common::Work pi_work);

}  // namespace pas::calib
