#include "calibration/machine_model.hpp"

#include <cassert>
#include <stdexcept>

namespace pas::calib {

std::vector<MachineSpec> table1_machines() {
  // Turbo / efficiency values chosen so expected_cf_min lands on the
  // paper's measured Table 1 row (rationale in machine_model.hpp).
  return {
      // Paper: cf_min = 0.94867. X3440 nominal 2.53 GHz; effective turbo
      // under their multi-threaded load ≈ one bin, 2.67 GHz.
      MachineSpec{"Intel Xeon X3440", {1197, 1463, 1729, 1995, 2261, 2533}, 2670.0, 1.0, 101},
      // Paper: 0.99903. No turbo; tiny low-state drift.
      MachineSpec{"Intel Xeon L5420", {2000, 2500}, 0.0, 0.999, 102},
      // Paper: 0.80338. E5-2620 nominal 2.0 GHz, all-core turbo ≈ 2.49 GHz.
      MachineSpec{"Intel Xeon E5-2620", {1200, 1400, 1600, 1800, 2000}, 2489.5, 1.0, 103},
      // Paper: 0.99508. No turbo.
      MachineSpec{"AMD Opteron 6164 HE", {800, 1000, 1300, 1700}, 0.0, 0.995, 104},
      // Paper: 0.86206. i7-3770 nominal 3.4 GHz, turbo 3.9 GHz.
      MachineSpec{"Intel Core i7-3770", {1600, 2000, 2400, 2800, 3400}, 3943.9, 1.0, 105},
  };
}

double expected_cf_min(const MachineSpec& spec) {
  assert(!spec.nominal_mhz.empty());
  const double nominal_top = spec.nominal_mhz.back();
  const double effective_top = spec.turbo_mhz > 0.0 ? spec.turbo_mhz : nominal_top;
  return nominal_top / effective_top * spec.low_state_efficiency;
}

cpu::FrequencyLadder nominal_ladder(const MachineSpec& spec) {
  if (spec.nominal_mhz.empty())
    throw std::invalid_argument("nominal_ladder: empty ladder");
  std::vector<cpu::PState> states;
  states.reserve(spec.nominal_mhz.size());
  for (double f : spec.nominal_mhz) states.push_back(cpu::PState{common::mhz(f), 1.0});
  return cpu::FrequencyLadder{std::move(states)};
}

cpu::CpuModel::SpeedFn speed_fn(const MachineSpec& spec) {
  const double nominal_top = spec.nominal_mhz.back();
  const double effective_top = spec.turbo_mhz > 0.0 ? spec.turbo_mhz : nominal_top;
  const std::size_t top = spec.nominal_mhz.size() - 1;
  const std::vector<double> nominal = spec.nominal_mhz;
  const double low_eff = spec.low_state_efficiency;
  return [nominal, effective_top, top, low_eff](std::size_t i) {
    if (i == top) return 1.0;  // the top state IS the machine's full speed
    return nominal[i] / effective_top * low_eff;
  };
}

cpu::CpuModel make_cpu_model(const MachineSpec& spec) {
  cpu::CpuModel model{nominal_ladder(spec)};
  model.set_speed_override(speed_fn(spec));
  return model;
}

}  // namespace pas::calib
