// Machine models for the paper's Table 1 (cf on different processors).
//
// The paper measures cf_min on five Grid5000 machines and finds it "most of
// the time equal to one" but as low as 0.80 on an E5-2620. Striking detail:
// every cf<1 part in their table is a Turbo Boost part, and
// nominal/turbo frequency explains the measured value almost exactly
// (i7-3770: 3.4/3.943 = 0.862 vs measured 0.86206; E5-2620: 2.0/2.49 =
// 0.803 vs 0.80338). The mechanism: eq. 1's Lmax is measured at the top
// P-state, where the core silently runs *above* nominal; the nominal
// frequency ratio then overestimates how much slower the lower states are,
// and the deficit lands in cf.
//
// We model exactly that: a machine's top P-state runs at its effective
// turbo frequency; lower states run at their nominal frequency, scaled by a
// small per-machine low-state efficiency (uncore/memory clocking effects,
// the reason non-turbo parts still measure cf slightly below 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu_model.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::calib {

struct MachineSpec {
  std::string name;
  /// Nominal (advertised) P-state frequencies, ascending, in MHz.
  std::vector<double> nominal_mhz;
  /// Effective speed of the top P-state in MHz (turbo); 0 = no turbo (top
  /// state runs at its nominal frequency).
  double turbo_mhz = 0.0;
  /// True-speed multiplier applied to the non-top states (≈1).
  double low_state_efficiency = 1.0;
  /// Seed for per-run measurement noise.
  std::uint64_t seed = 1;
};

/// The five processors of Table 1, parameters chosen so the *modeled*
/// ground-truth cf matches the paper's measured value (see DESIGN.md §2).
[[nodiscard]] std::vector<MachineSpec> table1_machines();

/// Ground-truth cf of the machine's lowest state under this model:
///   cf_min = (f_nominal_top / f_effective_top) * low_state_efficiency
[[nodiscard]] double expected_cf_min(const MachineSpec& spec);

/// The machine's nominal ladder with cf = 1 (the naive assumption eq. 1
/// starts from — calibration has to *discover* the real cf by measurement,
/// exactly as §5.2 does).
[[nodiscard]] cpu::FrequencyLadder nominal_ladder(const MachineSpec& spec);

/// The machine's true-speed function under the turbo model (plugs into
/// cpu::CpuModel::set_speed_override or hv::HostConfig::speed_override).
[[nodiscard]] cpu::CpuModel::SpeedFn speed_fn(const MachineSpec& spec);

/// Convenience: nominal ladder + speed override assembled into a CpuModel.
[[nodiscard]] cpu::CpuModel make_cpu_model(const MachineSpec& spec);

}  // namespace pas::calib
