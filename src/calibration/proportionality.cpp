#include "calibration/proportionality.hpp"

#include <memory>
#include <stdexcept>

#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "workload/pi_app.hpp"
#include "workload/web_app.hpp"

namespace pas::calib {

namespace {

double measure_web_load_pct(const cpu::FrequencyLadder& ladder, std::size_t state,
                            double demand_pct, common::SimTime measure_time,
                            std::uint64_t seed) {
  hv::HostConfig hc;
  hc.ladder = ladder;
  hc.trace_stride = common::SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};

  wl::WebAppConfig wc;
  wc.seed = seed;
  const double rate = wl::WebApp::rate_for_demand(demand_pct, wc.request_cost);
  hv::VmConfig vm;
  vm.name = "probe";
  vm.credit = 100.0;
  host.add_vm(vm, std::make_unique<wl::WebApp>(wl::LoadProfile::constant(rate), wc));

  host.cpufreq().request(state);
  const common::SimTime warmup = common::seconds(10);
  host.run_until(warmup);
  const common::SimTime busy0 = host.monitor().cumulative_busy();
  host.run_until(warmup + measure_time);
  const common::SimTime busy1 = host.monitor().cumulative_busy();
  return 100.0 * static_cast<double>((busy1 - busy0).us()) /
         static_cast<double>(measure_time.us());
}

}  // namespace

double measure_pi_time_sec(const cpu::FrequencyLadder& ladder, std::size_t state_index,
                           common::Percent credit, common::Work pi_work) {
  if (credit <= 0.0) throw std::invalid_argument("measure_pi_time_sec: credit must be > 0");
  hv::HostConfig hc;
  hc.ladder = ladder;
  hc.trace_stride = common::SimTime{};
  hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};

  hv::VmConfig vm;
  vm.name = "pi";
  vm.credit = credit;
  auto app = std::make_unique<wl::PiApp>(pi_work);
  const wl::PiApp* app_ptr = app.get();
  host.add_vm(vm, std::move(app));

  host.cpufreq().request(state_index);
  // Run in chunks until the computation completes. The bound is generous:
  // time at min speed with min credit, doubled.
  const double min_speed = ladder.ratio(0) * ladder.at(0).cf;
  const double bound_sec = pi_work.mf_seconds() / (credit / 100.0 * min_speed) * 2.0 + 60.0;
  const common::SimTime bound = common::seconds(static_cast<std::int64_t>(bound_sec));
  const common::SimTime chunk = common::seconds(20);
  while (!app_ptr->completion_time() && host.now() < bound) {
    host.run_until(host.now() + chunk);
  }
  if (!app_ptr->completion_time())
    throw std::runtime_error("measure_pi_time_sec: pi-app did not complete within bound");
  return app_ptr->completion_time()->sec();
}

std::vector<FreqLoadRow> verify_eq1_frequency_load(const cpu::FrequencyLadder& ladder,
                                                   std::vector<double> demands_pct,
                                                   common::SimTime measure_time) {
  std::vector<FreqLoadRow> rows;
  std::uint64_t seed = 42;
  for (double demand : demands_pct) {
    ++seed;  // one arrival stream per demand level, shared across states
    // Measure the top state first: it is the reference for L_max / L_i.
    const double l_max =
        measure_web_load_pct(ladder, ladder.max_index(), demand, measure_time, seed);
    for (std::size_t s = 0; s < ladder.size(); ++s) {
      FreqLoadRow r;
      r.state_index = s;
      r.ratio = ladder.ratio(s);
      r.demand_pct = demand;
      r.load_pct = s == ladder.max_index()
                       ? l_max
                       : measure_web_load_pct(ladder, s, demand, measure_time, seed);
      r.load_ratio = r.load_pct > 0.0 ? l_max / r.load_pct : 0.0;
      r.implied_cf = r.ratio > 0.0 ? r.load_ratio / r.ratio : 0.0;
      rows.push_back(r);
    }
  }
  return rows;
}

std::vector<FreqTimeRow> verify_eq2_frequency_time(const cpu::FrequencyLadder& ladder,
                                                   common::Work pi_work) {
  std::vector<FreqTimeRow> rows;
  const double t_max = measure_pi_time_sec(ladder, ladder.max_index(), 100.0, pi_work);
  for (std::size_t s = 0; s < ladder.size(); ++s) {
    FreqTimeRow r;
    r.state_index = s;
    r.ratio = ladder.ratio(s);
    r.exec_time_sec =
        s == ladder.max_index() ? t_max : measure_pi_time_sec(ladder, s, 100.0, pi_work);
    r.time_ratio = r.exec_time_sec > 0.0 ? t_max / r.exec_time_sec : 0.0;
    r.implied_cf = r.ratio > 0.0 ? r.time_ratio / r.ratio : 0.0;
    rows.push_back(r);
  }
  return rows;
}

std::vector<CreditTimeRow> verify_eq3_credit_time(const cpu::FrequencyLadder& ladder,
                                                  std::vector<common::Percent> credits,
                                                  common::Work pi_work) {
  if (credits.empty()) throw std::invalid_argument("verify_eq3_credit_time: no credits");
  std::vector<CreditTimeRow> rows;
  const common::Percent c_init = credits.front();
  double t_init = 0.0;
  for (common::Percent c : credits) {
    CreditTimeRow r;
    r.credit = c;
    r.exec_time_sec = measure_pi_time_sec(ladder, ladder.max_index(), c, pi_work);
    if (c == c_init) t_init = r.exec_time_sec;
    r.time_ratio = r.exec_time_sec > 0.0 ? t_init / r.exec_time_sec : 0.0;
    r.credit_ratio = c / c_init;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace pas::calib
