// Small-buffer-optimized callable: a move-only std::function replacement
// whose inline storage absorbs the capture sizes this codebase actually
// uses (a `this` pointer, a couple of references), so storing or rebinding
// a callback performs no heap allocation.
//
// Callables that are too large, over-aligned, or throwing-move fall back to
// a single heap allocation — functionality is never lost, only the
// no-allocation guarantee. The simulator's event hot path (PeriodicTask
// rearming every accounting tick) stays allocation-free because its lambdas
// capture exactly one pointer.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pas::common {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(std::move(other)); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(&storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    // Move-constructs dst's payload from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      static constexpr VTable vt{
          [](void* s, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<Fn*>(s)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      };
      vtable_ = &vt;
    } else {
      ::new (static_cast<void*>(&storage_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable vt{
          [](void* s, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<Fn**>(s)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            Fn** from = std::launder(reinterpret_cast<Fn**>(src));
            ::new (dst) Fn*(*from);
            *from = nullptr;
          },
          [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      };
      vtable_ = &vt;
    }
  }

  void move_from(InplaceFunction&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(&storage_, &other.storage_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity < sizeof(void*)
                                                   ? sizeof(void*)
                                                   : Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace pas::common
