#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace pas::common {

namespace {

/// Averages `values` into `buckets` equal x ranges. Empty buckets repeat the
/// previous bucket's value (series shorter than the bucket count).
std::vector<double> resample(std::span<const double> values, int buckets) {
  std::vector<double> out(static_cast<std::size_t>(buckets), 0.0);
  if (values.empty()) return out;
  const double per = static_cast<double>(values.size()) / buckets;
  double prev = values.front();
  for (int b = 0; b < buckets; ++b) {
    const auto lo = static_cast<std::size_t>(b * per);
    auto hi = static_cast<std::size_t>((b + 1) * per);
    hi = std::min(std::max(hi, lo + 1), values.size());
    if (lo >= values.size()) {
      out[static_cast<std::size_t>(b)] = prev;
      continue;
    }
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    prev = sum / static_cast<double>(hi - lo);
    out[static_cast<std::size_t>(b)] = prev;
  }
  return out;
}

}  // namespace

std::string render_chart(std::span<const ChartSeries> series, const ChartOptions& options) {
  const int w = std::max(options.width, 10);
  const int h = std::max(options.height, 4);
  const double lo = options.y_min;
  const double hi = options.y_max > lo ? options.y_max : lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    const auto ys = resample(s.values, w);
    for (int x = 0; x < w; ++x) {
      const double v = std::clamp(ys[static_cast<std::size_t>(x)], lo, hi);
      const double frac = (v - lo) / (hi - lo);
      const int row = static_cast<int>(std::lround(frac * (h - 1)));
      // row 0 is the bottom of the plot; grid row 0 is the top line printed.
      grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(x)] = s.glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) {
    out += options.title;
    out += '\n';
  }
  if (!options.y_label.empty()) {
    out += "  [y: ";
    out += options.y_label;
    out += "]\n";
  }
  char buf[64];
  for (int r = 0; r < h; ++r) {
    const double yv = hi - (hi - lo) * r / (h - 1);
    std::snprintf(buf, sizeof(buf), "%8.1f |", yv);
    out += buf;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "         +";
  out.append(static_cast<std::size_t>(w), '-');
  out += '\n';
  if (!options.x_label.empty()) {
    out += "          ";
    out += options.x_label;
    out += '\n';
  }
  out += "          legend:";
  for (const auto& s : series) {
    out += ' ';
    out += s.glyph;
    out += '=';
    out += s.name;
  }
  out += '\n';
  return out;
}

std::string render_bars(std::span<const Bar> bars, double max_value, std::string_view unit,
                        int width) {
  std::string out;
  std::size_t label_w = 0;
  for (const auto& b : bars) label_w = std::max(label_w, b.label.size());
  const double denom = max_value > 0 ? max_value : 1.0;
  char buf[128];
  for (const auto& b : bars) {
    const int n =
        static_cast<int>(std::lround(std::clamp(b.value / denom, 0.0, 1.0) * width));
    std::snprintf(buf, sizeof(buf), "  %-*s |", static_cast<int>(label_w), b.label.c_str());
    out += buf;
    out.append(static_cast<std::size_t>(n), '#');
    std::snprintf(buf, sizeof(buf), " %.4g %s\n", b.value, std::string(unit).c_str());
    out += buf;
  }
  return out;
}

}  // namespace pas::common
