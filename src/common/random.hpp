// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (Poisson request arrivals,
// service-time jitter, calibration measurement noise) draws from an Rng
// seeded explicitly, so every experiment is exactly reproducible and every
// test is deterministic. We use our own xoshiro256** rather than <random>
// engines because libstdc++'s distributions are not cross-platform
// deterministic.
#pragma once

#include <cstdint>
#include <string_view>

namespace pas::common {

/// xoshiro256** PRNG with explicit seeding (via splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson inter-arrival times in the open-loop load generator.
  double exponential(double mean);

  /// Standard normal via Box–Muller (no state caching; two uniforms per
  /// draw — simplicity over speed, this is not on a hot path).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derives an independent stream (for giving each VM its own generator).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Derives a named independent stream from (seed, tag) without touching any
/// other generator: substream(s, "chaos") and substream(s, "fleet") never
/// share state, and drawing from one cannot perturb the other or Rng{s}
/// itself. This is the prefix-preservation tool the scenario generators
/// rely on — a new feature draws from its own named stream, so every
/// historical (seed → scenario) mapping stays byte-identical. The
/// derivation (splitmix64 of the seed, xored with an FNV-1a hash of the
/// tag) is fixed: changing it would silently rename every seeded
/// experiment, and random_test pins golden values against that.
[[nodiscard]] Rng substream(std::uint64_t seed, std::string_view tag);

}  // namespace pas::common
