// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (Poisson request arrivals,
// service-time jitter, calibration measurement noise) draws from an Rng
// seeded explicitly, so every experiment is exactly reproducible and every
// test is deterministic. We use our own xoshiro256** rather than <random>
// engines because libstdc++'s distributions are not cross-platform
// deterministic.
#pragma once

#include <cstdint>

namespace pas::common {

/// xoshiro256** PRNG with explicit seeding (via splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson inter-arrival times in the open-loop load generator.
  double exponential(double mean);

  /// Standard normal via Box–Muller (no state caching; two uniforms per
  /// draw — simplicity over speed, this is not on a hot path).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derives an independent stream (for giving each VM its own generator).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace pas::common
