// Fixed-size fork-join worker pool — the cluster layer's parallel driver.
//
// The only primitive offered is parallel_for(n, body, grain): run
// body(0..n-1) once each, on the pool plus the calling thread, and return
// when every index has completed. Indices are handed out in *chunks* of
// `grain` through a single atomic counter, so the assignment of chunk ->
// OS thread is nondeterministic — which is exactly why the pool is safe
// for the cluster's determinism contract: bodies must touch only state
// owned by their index (one hv::Host each), so *what* each body computes
// is independent of *where* it runs. Within a chunk indices run in
// ascending order on one thread; chunking only reduces how often the
// executors hit the shared counter, it never changes which indices run.
// See docs/ARCHITECTURE.md ("parallel ≡ serial").
//
// Semantics:
//   * ThreadPool(t) provides t executors total: t-1 workers plus the
//     caller, which always participates. t == 0 means one executor per
//     hardware thread; t <= 1 spawns nothing and parallel_for degenerates
//     to a plain loop (the serial driver).
//   * parallel_for is a full barrier: every worker checks in once per
//     call, so a second parallel_for can never race the tail of the
//     first. Not reentrant and not thread-safe across callers — one
//     coordinating thread drives the pool (the cluster run loop).
//   * Bodies are stored in a common::InplaceFunction whose inline buffer
//     must absorb the capture (compile-time enforced), so issuing a
//     parallel_for never heap-allocates — the cluster fires one per
//     segment, thousands of times per simulated run.
//   * Exceptions thrown by bodies are captured and the one from the
//     LOWEST index is rethrown after the barrier — deterministic no
//     matter how the chunks were interleaved. Later indices still run
//     (an index is never skipped because an earlier one threw).
//   * Destruction with no parallel_for ever issued is clean shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/inplace_function.hpp"

namespace pas::common {

class ThreadPool {
 public:
  /// Inline capture budget for loop bodies: six pointers. Large enough for
  /// every driver in the tree (the cluster segment body captures a Cluster*
  /// and a SimTime), small enough that blowing it is a design smell.
  static constexpr std::size_t kBodyCapacity = 48;
  using Body = InplaceFunction<void(std::size_t), kBodyCapacity>;

  /// Default chunk size for index hand-out. Segment bodies are a few µs
  /// each; 8 per counter hit keeps the atomic off the profile while still
  /// load-balancing fleets where a handful of hosts dominate.
  static constexpr std::size_t kDefaultGrain = 8;

  /// `threads` = total executors (workers + the participating caller);
  /// 0 resolves to hardware_threads().
  explicit ThreadPool(std::size_t threads) {
    const std::size_t total = threads == 0 ? hardware_threads() : threads;
    workers_.reserve(total > 0 ? total - 1 : 0);
    for (std::size_t i = 1; i < total; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      ++generation_;
    }
    job_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors, including the calling thread. Always >= 1.
  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  /// hardware_concurrency with the "may return 0" wart removed.
  [[nodiscard]] static std::size_t hardware_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// Runs f(i) exactly once for every i in [0, n); returns after all
  /// completed. Rethrows the lowest-index exception, if any. `grain` is
  /// the number of consecutive indices claimed per counter hit (0 is
  /// treated as 1); it affects scheduling only, never which indices run.
  template <typename F>
  void parallel_for(std::size_t n, F&& f, std::size_t grain = kDefaultGrain) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kBodyCapacity,
                  "parallel_for body capture exceeds the inline budget; "
                  "shrink the capture (pointers, not copies) instead of "
                  "silently heap-allocating per call");
    static_assert(alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>,
                  "parallel_for body must be inline-storable (plain "
                  "nothrow-movable capture)");
    Body body(std::forward<F>(f));
    run(n, body, grain == 0 ? 1 : grain);
  }

 private:
  static constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

  void run(std::size_t n, Body& body, std::size_t grain) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      // Inline path — same error semantics as the pooled one: every index
      // runs, then the lowest-index exception surfaces.
      std::exception_ptr error;
      for (std::size_t i = 0; i < n; ++i) {
        try {
          body(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      if (error) std::rethrow_exception(error);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_n_ = n;
      job_grain_ = grain;
      job_body_ = &body;
      next_index_.store(0, std::memory_order_relaxed);
      workers_done_ = 0;
      error_index_ = kNoError;
      error_ = nullptr;
      ++generation_;
    }
    job_cv_.notify_all();
    drain(n, grain, body);  // the caller is executor 0
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return workers_done_ == workers_.size(); });
    if (error_) std::rethrow_exception(error_);
  }

  /// Claims chunks of `grain` consecutive indices until the job is
  /// exhausted; never throws (errors are parked for the post-barrier
  /// rethrow, and an index throwing never skips the rest of its chunk).
  void drain(std::size_t n, std::size_t grain, Body& body) {
    for (;;) {
      const std::size_t base = next_index_.fetch_add(grain, std::memory_order_relaxed);
      if (base >= n) return;
      const std::size_t end = n - base < grain ? n : base + grain;
      for (std::size_t i = base; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (i < error_index_) {
            error_index_ = i;
            error_ = std::current_exception();
          }
        }
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      job_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::size_t n = job_n_;
      const std::size_t grain = job_grain_;
      Body* body = job_body_;
      lock.unlock();
      drain(n, grain, *body);
      lock.lock();
      // Every worker checks in once per generation — the barrier that lets
      // parallel_for reuse the job slots immediately after returning.
      if (++workers_done_ == workers_.size()) done_cv_.notify_one();
    }
  }

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   // workers: a new generation (or stop)
  std::condition_variable done_cv_;  // caller: all workers checked in
  std::uint64_t generation_ = 0;     // guarded by mutex_
  bool stop_ = false;                // guarded by mutex_
  std::size_t job_n_ = 0;            // guarded by mutex_ at publication
  std::size_t job_grain_ = 1;        // guarded by mutex_ at publication
  Body* job_body_ = nullptr;         // guarded by mutex_ at publication
  std::size_t workers_done_ = 0;     // guarded by mutex_
  std::size_t error_index_ = kNoError;  // guarded by mutex_
  std::exception_ptr error_;            // guarded by mutex_

  std::atomic<std::size_t> next_index_{0};
};

}  // namespace pas::common
