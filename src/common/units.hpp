// Strong unit types shared by every module.
//
// The simulator reasons about three kinds of quantities that are easy to
// confuse when they are all plain arithmetic types:
//
//  * SimTime  — a point on (or span of) the simulated wall clock, stored in
//               integer microseconds. Wall-clock time passes at the same rate
//               regardless of the processor frequency.
//  * Mhz      — a processor frequency.
//  * Work     — an amount of computation, measured in *max-frequency
//               microseconds* (the wall time the computation would take on a
//               processor pinned at the maximum frequency with cf = 1).
//               Running for a wall-time span dt at frequency ratio r with
//               correction factor cf performs  dt * r * cf  units of work.
//
// Keeping Work and SimTime distinct is what prevents the classic bug family
// in this paper's domain: charging a VM for *work done* instead of *time
// consumed* (credits are a time share; QoS is a work share).
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

namespace pas::common {

/// A simulated-time point or duration in integer microseconds.
///
/// SimTime is totally ordered and supports the usual affine arithmetic
/// (difference of points is a duration; point + duration is a point). We do
/// not split point/duration into two types: the simulator's arithmetic is
/// simple enough that the extra ceremony costs more than it catches.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t microseconds) : us_(microseconds) {}

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime other) {
    us_ += other.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    us_ -= other.us_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us_ + b.us_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us_ - b.us_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.us_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.us_ * k}; }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    assert(b.us_ != 0);
    return a.us_ / b.us_;
  }
  friend constexpr SimTime operator%(SimTime a, SimTime b) {
    assert(b.us_ != 0);
    return SimTime{a.us_ % b.us_};
  }

 private:
  std::int64_t us_ = 0;
};

/// Convenience constructors. `usec(30)` reads better than `SimTime{30}` at
/// call sites and documents the unit.
constexpr SimTime usec(std::int64_t v) { return SimTime{v}; }
constexpr SimTime msec(std::int64_t v) { return SimTime{v * 1000}; }
constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000}; }

/// A processor frequency in MHz. Stored as double: the calibration module
/// works with fractional effective frequencies (turbo models).
class Mhz {
 public:
  constexpr Mhz() = default;
  constexpr explicit Mhz(double value) : v_(value) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr auto operator<=>(const Mhz&) const = default;

  /// Dimensionless ratio of two frequencies (eq. 1's F_i / F_max).
  friend constexpr double operator/(Mhz a, Mhz b) {
    assert(b.v_ > 0.0);
    return a.v_ / b.v_;
  }

 private:
  double v_ = 0.0;
};

constexpr Mhz mhz(double v) { return Mhz{v}; }

/// An amount of computation in max-frequency microseconds.
class Work {
 public:
  constexpr Work() = default;
  constexpr explicit Work(double max_freq_us) : mfus_(max_freq_us) {}

  [[nodiscard]] constexpr double mfus() const { return mfus_; }
  [[nodiscard]] constexpr double mf_seconds() const { return mfus_ / 1e6; }

  constexpr auto operator<=>(const Work&) const = default;

  constexpr Work& operator+=(Work other) {
    mfus_ += other.mfus_;
    return *this;
  }
  constexpr Work& operator-=(Work other) {
    mfus_ -= other.mfus_;
    return *this;
  }

  friend constexpr Work operator+(Work a, Work b) { return Work{a.mfus_ + b.mfus_}; }
  friend constexpr Work operator-(Work a, Work b) { return Work{a.mfus_ - b.mfus_}; }
  friend constexpr Work operator*(Work a, double k) { return Work{a.mfus_ * k}; }
  friend constexpr Work operator*(double k, Work a) { return Work{a.mfus_ * k}; }

 private:
  double mfus_ = 0.0;
};

/// Work expressed in max-frequency seconds (the natural unit for pi-app
/// sizes: "110 max-frequency seconds of computation").
constexpr Work mf_seconds(double v) { return Work{v * 1e6}; }
constexpr Work mf_usec(double v) { return Work{v}; }

/// A percentage in [0, +inf). Credits are percentages of the processor; the
/// PAS scheduler deliberately produces credits above 100 % at low frequency
/// (paper §4.2), so no upper clamp is applied here.
using Percent = double;

/// Formats a SimTime for logs ("1234.5s").
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace pas::common
