#include "common/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace pas::common {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter() = default;

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void CsvWriter::write_line(const std::string& line) {
  if (to_file_) {
    file_ << line << '\n';
  } else {
    memory_ += line;
    memory_ += '\n';
  }
}

void CsvWriter::raw_line(const std::string& line) { write_line(line); }

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  std::string line;
  bool first = true;
  for (auto c : cols) {
    if (!first) line += ',';
    line += escape(c);
    first = false;
  }
  write_line(line);
}

void CsvWriter::row(std::span<const double> values) {
  std::string line;
  bool first = true;
  for (double v : values) {
    if (!first) line += ',';
    line += format_number(v);
    first = false;
  }
  write_line(line);
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::span<const double>{values.begin(), values.size()});
}

void CsvWriter::labeled_row(std::string_view label, std::span<const double> values) {
  std::string line = escape(label);
  for (double v : values) {
    line += ',';
    line += format_number(v);
  }
  write_line(line);
}

}  // namespace pas::common
