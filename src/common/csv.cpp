#include "common/csv.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pas::common {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter() = default;

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void CsvWriter::write_line(const std::string& line) {
  if (to_file_) {
    file_ << line << '\n';
  } else {
    memory_ += line;
    memory_ += '\n';
  }
}

void CsvWriter::raw_line(const std::string& line) { write_line(line); }

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  std::string line;
  bool first = true;
  for (auto c : cols) {
    if (!first) line += ',';
    line += escape(c);
    first = false;
  }
  write_line(line);
}

void CsvWriter::row(std::span<const double> values) {
  std::string line;
  bool first = true;
  for (double v : values) {
    if (!first) line += ',';
    line += format_number(v);
    first = false;
  }
  write_line(line);
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::span<const double>{values.begin(), values.size()});
}

void CsvWriter::labeled_row(std::string_view label, std::span<const double> values) {
  std::string line = escape(label);
  for (double v : values) {
    line += ',';
    line += format_number(v);
  }
  write_line(line);
}

namespace {

[[noreturn]] void fail(const std::string& origin, std::size_t line, const std::string& what) {
  throw std::runtime_error(origin + ":" + std::to_string(line) + ": " + what);
}

}  // namespace

CsvTable CsvTable::parse(std::string_view text, std::string origin) {
  CsvTable t;
  t.origin_ = std::move(origin);
  if (text.empty()) throw std::runtime_error(t.origin_ + ": empty CSV input");

  // One pass, RFC 4180 state machine. `line` is the physical line under the
  // cursor; `row_line` the line the current row started on (quoted fields
  // may carry embedded newlines, so rows and lines diverge).
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;        // inside an open quote
  bool field_was_quoted = false;
  bool row_has_content = false;  // a comma or any field text was seen
  std::size_t line = 1;
  std::size_t row_line = 1;

  auto finish_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto finish_row = [&] {
    finish_field();
    if (t.header_.empty()) {
      t.header_ = std::move(row);
    } else {
      if (row.size() != t.header_.size())
        fail(t.origin_, row_line,
             "ragged row: " + std::to_string(row.size()) + " field(s), header has " +
                 std::to_string(t.header_.size()));
      t.cells_.push_back(std::move(row));
      t.lines_.push_back(row_line);
    }
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted)
          fail(t.origin_, line, "quote opening mid-field");
        quoted = true;
        field_was_quoted = true;
        row_has_content = true;
        break;
      case ',':
        finish_field();
        row_has_content = true;
        break;
      case '\r':
        // Tolerate CRLF: swallow the CR when an LF follows; a bare CR is
        // field content (nobody emits classic-Mac CSV on purpose, and
        // treating it as a terminator would hide encoding bugs).
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        if (field_was_quoted) fail(t.origin_, line, "text after closing quote");
        field += c;
        row_has_content = true;  // content like any other: the row must not vanish at EOF
        break;
      case '\n':
        finish_row();
        ++line;
        row_line = line;
        break;
      default:
        // A quoted field ends at a separator; '"12"3' is malformed, and
        // silently reading it as '123' would hand number() a wrong value.
        if (field_was_quoted) fail(t.origin_, line, "text after closing quote");
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (quoted) fail(t.origin_, row_line, "unterminated quoted field");
  // Final line without a trailing newline is a row; a trailing newline
  // leaves nothing pending and must not create a phantom empty row.
  if (row_has_content || !row.empty()) finish_row();

  if (t.header_.empty() || (t.header_.size() == 1 && t.header_[0].empty()))
    throw std::runtime_error(t.origin_ + ": empty CSV input");
  return t;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("CsvTable: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path);
}

double CsvTable::number(std::size_t row, std::size_t col) const {
  const std::string& s = cell(row, col);
  // Strict decimal grammar only: strtod alone would also accept leading
  // whitespace, "nan"/"inf" and hex floats, which are never valid trace
  // cells and must be loud errors, not NaNs smuggled downstream.
  bool has_digit = false;
  bool strict = !s.empty();
  for (const char c : s) {
    if (c >= '0' && c <= '9')
      has_digit = true;
    else if (c != '+' && c != '-' && c != '.' && c != 'e' && c != 'E')
      strict = false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (!strict || !has_digit || end != s.c_str() + s.size() || errno == ERANGE)
    fail(origin_, lines_.at(row),
         "non-numeric cell '" + s + "' in column '" + header_.at(col) + "'");
  return v;
}

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i)
    if (header_[i] == name) return i;
  return std::nullopt;
}

std::string CsvTable::context(std::size_t row) const {
  return origin_ + ":" + std::to_string(lines_.at(row));
}

}  // namespace pas::common
