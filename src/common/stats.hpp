// Small statistics helpers: streaming moments and batch summaries.
//
// Used by the benches to summarize per-phase loads ("mean absolute load of
// V20 during phase 1") and by the calibration module to average cf
// measurements across workloads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pas::common {

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long runs (an 8000 s simulation records ~800 k
/// samples into some of these).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void reset() { *this = RunningStats{}; }

  /// Pools two streams (parallel-merge form of Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary (copies and sorts internally; fine for bench-sized
/// vectors).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of a *sorted* sample, q in [0, 1]
/// (R type-7: pos = q*(n-1), lerp between the two neighboring order
/// statistics; q=0 is the min, q=1 the max, n=1 returns the sample, q is
/// clamped, empty input returns 0). Deliberately NOT the same definition
/// as the recovery-latency p50 in cluster::summarize_recoveries, which is
/// the lower-median nearest rank: that one must be an integer-microsecond
/// latency that actually occurred (byte-stable across engines), while
/// this helper smooths bench summaries. Both definitions are pinned in
/// tests/common/stats_test.cpp so neither can silently drift.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// Ordinary least squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace pas::common
