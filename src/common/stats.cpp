#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pas::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace pas::common
