// ASCII time-series renderer.
//
// The paper's evaluation is ten figures of load/frequency-vs-time plots.
// Each bench binary reproduces its figure both as CSV and as an ASCII chart
// printed to stdout, so the *shape* (plateaus, ramps, oscillation) is
// reviewable directly in bench_output.txt.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pas::common {

/// One plotted series: y-samples (uniform x spacing) and the glyph used to
/// draw it.
struct ChartSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> values;
};

struct ChartOptions {
  int width = 100;   // plot columns (x is resampled to this many buckets)
  int height = 20;   // plot rows
  double y_min = 0.0;
  double y_max = 100.0;
  std::string title;
  std::string y_label;
  std::string x_label;
};

/// Renders series over a common x axis into a multi-line string.
///
/// Later series overwrite earlier ones where they collide (draw the most
/// important series last). Values are averaged within each x bucket, which
/// preserves plateaus and makes oscillation show up as a dense band.
[[nodiscard]] std::string render_chart(std::span<const ChartSeries> series,
                                       const ChartOptions& options);

/// Renders a simple horizontal bar chart (used for the table benches).
struct Bar {
  std::string label;
  double value = 0.0;
};
[[nodiscard]] std::string render_bars(std::span<const Bar> bars, double max_value,
                                      std::string_view unit, int width = 60);

}  // namespace pas::common
