#include "common/flags.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace pas::common {
namespace {

/// Origin-style rejection, same shape as CsvTable / ctl::parse_tasks errors:
/// the offending flag spelled back verbatim, then what was wrong with it.
[[noreturn]] void fail(const std::string& key, const std::string& value,
                       const std::string& what) {
  throw std::runtime_error("--" + key + "=" + value + ": " + what);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_.emplace(std::string{arg}, "");
      } else {
        values_.emplace(std::string{arg.substr(0, eq)}, std::string{arg.substr(eq + 1)});
      }
    } else {
      positionals_.emplace_back(arg);
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

std::optional<std::string> Flags::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  if (v->empty()) fail(key, *v, "expected a number, got an empty value");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str()) fail(key, *v, "not a number");
  if (*end != '\0') fail(key, *v, std::string{"trailing junk after number: '"} + end + "'");
  if (errno == ERANGE) fail(key, *v, "number out of range");
  return parsed;
}

long Flags::get_int(const std::string& key, long def) const {
  const auto v = get(key);
  if (!v) return def;
  if (v->empty()) fail(key, *v, "expected an integer, got an empty value");
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str()) fail(key, *v, "not an integer");
  if (*end != '\0') fail(key, *v, std::string{"trailing junk after integer: '"} + end + "'");
  if (errno == ERANGE) fail(key, *v, "integer out of range");
  return parsed;
}

}  // namespace pas::common
