#include "common/flags.hpp"

#include <cstdlib>
#include <string_view>

namespace pas::common {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_.emplace(std::string{arg}, "");
      } else {
        values_.emplace(std::string{arg.substr(0, eq)}, std::string{arg.substr(eq + 1)});
      }
    } else {
      positionals_.emplace_back(arg);
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.contains(key); }

std::optional<std::string> Flags::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  return std::strtod(v->c_str(), nullptr);
}

long Flags::get_int(const std::string& key, long def) const {
  const auto v = get(key);
  if (!v || v->empty()) return def;
  return std::strtol(v->c_str(), nullptr, 10);
}

}  // namespace pas::common
