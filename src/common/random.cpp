#include "common/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pas::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::split() { return Rng{next_u64()}; }

Rng substream(std::uint64_t seed, std::string_view tag) {
  // FNV-1a 64 over the tag bytes: simple, cross-platform deterministic,
  // and good enough dispersion once pushed through the seeder's splitmix64
  // expansion. The seed is mixed through one splitmix64 step first so
  // (seed, tag) and (seed', tag') collide only if the hash does.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t sm = seed;
  return Rng{splitmix64(sm) ^ h};
}

}  // namespace pas::common
