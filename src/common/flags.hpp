// Tiny command-line flag parser shared by the bench and example binaries.
//
// Supports `--key=value` and bare `--switch` arguments; anything else is
// collected as a positional. No external dependencies, no global state.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pas::common {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& def) const;
  /// Numeric getters are strict: a missing flag returns `def`, but a flag
  /// that IS present must be a fully-formed number — `--threads=4x`,
  /// `--scale-hosts=` or a unit suffix throw std::runtime_error with the
  /// offending `--key=value` spelled back, instead of silently parsing a
  /// prefix (the old strtod(nullptr) behavior) or falling back to the
  /// default. Bare switches stay valid for has(); they just cannot be fed
  /// to a numeric getter.
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace pas::common
