// Identifier types shared across substrates.
#pragma once

#include <cstdint>
#include <limits>

namespace pas::common {

/// Index of a VM within its host. Dense, assigned by Host::add_vm in
/// creation order (Dom0, when modeled, is just another VM with priority).
using VmId = std::uint32_t;

inline constexpr VmId kInvalidVm = std::numeric_limits<VmId>::max();

}  // namespace pas::common
