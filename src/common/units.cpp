#include "common/units.hpp"

#include <cstdio>

namespace pas::common {

std::string to_string(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", t.sec());
  return buf;
}

}  // namespace pas::common
