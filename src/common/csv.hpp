// Minimal CSV writer for experiment traces.
//
// Every bench binary can dump its time series next to the textual report so
// the figures can be re-plotted with any external tool
// (`bench_fig05_absolute_credit --csv=fig5.csv`).
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pas::common {

/// Writes rows of comma-separated values; quotes fields containing commas,
/// quotes, or newlines per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error if the
  /// file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// In-memory mode (for tests); rendered text available via str().
  CsvWriter();

  void header(std::initializer_list<std::string_view> cols);
  /// Writes an already-joined line verbatim (dynamic headers).
  void raw_line(const std::string& line);
  void row(std::span<const double> values);
  void row(std::initializer_list<double> values);
  /// Mixed row: first column a label, remaining numeric.
  void labeled_row(std::string_view label, std::span<const double> values);

  /// Rendered content in in-memory mode; empty when writing to a file.
  [[nodiscard]] const std::string& str() const { return memory_; }

  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  void write_line(const std::string& line);

  std::ofstream file_;
  bool to_file_ = false;
  std::string memory_;
};

/// Formats a double with enough precision for re-plotting but without
/// scientific noise ("12.345").
[[nodiscard]] std::string format_number(double v);

}  // namespace pas::common
