// Minimal CSV writer + strict reader for experiment traces.
//
// Every bench binary can dump its time series next to the textual report so
// the figures can be re-plotted with any external tool
// (`bench_fig05_absolute_credit --csv=fig5.csv`), and recorded traces can be
// read back as replayable workloads (workload/trace_replay.hpp) through
// CsvTable.
#pragma once

#include <cstddef>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pas::common {

/// Writes rows of comma-separated values; quotes fields containing commas,
/// quotes, or newlines per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error if the
  /// file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// In-memory mode (for tests); rendered text available via str().
  CsvWriter();

  void header(std::initializer_list<std::string_view> cols);
  /// Writes an already-joined line verbatim (dynamic headers).
  void raw_line(const std::string& line);
  void row(std::span<const double> values);
  void row(std::initializer_list<double> values);
  /// Mixed row: first column a label, remaining numeric.
  void labeled_row(std::string_view label, std::span<const double> values);

  /// Rendered content in in-memory mode; empty when writing to a file.
  [[nodiscard]] const std::string& str() const { return memory_; }

  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  void write_line(const std::string& line);

  std::ofstream file_;
  bool to_file_ = false;
  std::string memory_;
};

/// Formats a double with enough precision for re-plotting but without
/// scientific noise ("12.345").
[[nodiscard]] std::string format_number(double v);

/// Strictly parsed CSV table: a header row plus zero or more data rows, all
/// of the same width.
///
/// Tolerated on input (real-world CSV dialects): CRLF line endings, RFC
/// 4180 quoted fields (embedded commas, quotes and newlines, `""` escapes),
/// and a present-or-absent final newline. Rejected, with errors prefixed
/// `origin:line:` so a bad row in a 10k-line trace is findable: empty
/// input, an unterminated quote, a quote opening mid-field, and ragged rows
/// (field count differing from the header's — a blank interior line counts
/// as a one-field row and is rejected the same way). Non-numeric cells are
/// rejected by number(), with the same origin:line prefix.
class CsvTable {
 public:
  /// Parses CSV text. `origin` names the source in error messages (a file
  /// path, or the default "<memory>" for in-memory input).
  [[nodiscard]] static CsvTable parse(std::string_view text,
                                      std::string origin = "<memory>");

  /// Reads and parses a file. Throws std::runtime_error if unreadable.
  [[nodiscard]] static CsvTable load(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }
  /// Data rows (the header is not one).
  [[nodiscard]] std::size_t rows() const { return cells_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const {
    return cells_.at(row).at(col);
  }
  /// The cell parsed as a double; the whole field must be numeric (throws
  /// std::runtime_error with origin:line otherwise, including for empty
  /// cells).
  [[nodiscard]] double number(std::size_t row, std::size_t col) const;
  /// Column index of a header name, if present.
  [[nodiscard]] std::optional<std::size_t> column(std::string_view name) const;
  /// Physical 1-based line the row started on (quoted fields may span
  /// lines, so this is not simply row + 2).
  [[nodiscard]] std::size_t line(std::size_t row) const { return lines_.at(row); }
  [[nodiscard]] const std::string& origin() const { return origin_; }
  /// "origin:line" prefix for caller-side validation errors about a row.
  [[nodiscard]] std::string context(std::size_t row) const;

 private:
  CsvTable() = default;

  std::string origin_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
  std::vector<std::size_t> lines_;  // per data row
};

}  // namespace pas::common
