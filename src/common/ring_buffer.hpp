// Fixed-capacity ring buffer used for sliding-window load averaging.
//
// The paper's footnote 5: "each time we consider the Global load, it
// represents an average of three successive processor utilization" — the
// LoadMonitor keeps the last N window samples in one of these.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace pas::common {

/// A bounded FIFO that overwrites its oldest element when full.
///
/// Iteration order (via `for_each` / `at`) is oldest-to-newest. The buffer
/// never allocates after construction.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) { assert(capacity > 0); }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Appends `value`, evicting the oldest element if at capacity.
  void push(const T& value) {
    buf_[head_] = value;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
  }

  /// Element `i` in oldest-to-newest order. Precondition: i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    const std::size_t oldest = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(oldest + i) % buf_.size()];
  }

  /// The most recently pushed element. Precondition: !empty().
  [[nodiscard]] const T& back() const {
    assert(size_ > 0);
    return buf_[(head_ + buf_.size() - 1) % buf_.size()];
  }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(at(i));
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
};

/// Mean of the stored elements (requires arithmetic T); 0 when empty.
template <typename T>
[[nodiscard]] double mean_of(const RingBuffer<T>& rb) {
  if (rb.empty()) return 0.0;
  double sum = 0.0;
  rb.for_each([&](const T& v) { sum += static_cast<double>(v); });
  return sum / static_cast<double>(rb.size());
}

}  // namespace pas::common
