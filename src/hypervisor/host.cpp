#include "hypervisor/host.hpp"

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>

namespace pas::hv {

Host::Host(HostConfig config, std::unique_ptr<Scheduler> scheduler)
    : cfg_(config),
      cpu_(config.ladder),
      cpufreq_(cpu_, config.cpufreq_transition_latency),
      scheduler_(std::move(scheduler)),
      monitor_(config.monitor_window, config.monitor_depth),
      energy_(config.power) {
  if (scheduler_ == nullptr) throw std::invalid_argument("Host: scheduler required");
  if (cfg_.quantum.us() <= 0) throw std::invalid_argument("Host: quantum must be positive");
  if (cfg_.speed_override) cpu_.set_speed_override(cfg_.speed_override);
}

Host::~Host() = default;

common::VmId Host::add_vm(VmConfig config, std::unique_ptr<wl::Workload> workload) {
  if (advancing_.load(std::memory_order_relaxed))
    throw std::logic_error("Host: add_vm while the host is advancing "
                           "(cross-host mutation must wait for the segment boundary)");
  if (workload == nullptr) throw std::invalid_argument("Host: workload required");
  const auto id = static_cast<common::VmId>(vms_.size());
  Vm vm;
  vm.id = id;
  vm.config = std::move(config);
  vm.workload = std::move(workload);
  monitor_.register_vm(id);
  scheduler_->add_vm(id, vm.config);
  initial_credits_.push_back(vm.config.credit);
  saturated_last_window_.push_back(false);
  vm_ids_.push_back(id);
  vms_.push_back(std::move(vm));
  if (tasks_installed_) {
    // Mid-run arrival: a slot created between segments. Seed its runnable
    // tracking as "just ran, hint expired" so the next refresh polls it,
    // widen the trace (old rows pad with zeros to the new width), and
    // re-seat the view — its spans over vm_ids_/initial_credits_ may have
    // dangled on the push_back reallocations above.
    wl_runnable_.push_back(0);
    wl_hint_.push_back(common::SimTime{});
    wl_ran_.push_back(1);
    any_ran_ = true;
    hint_floor_ = common::SimTime{};
    active_dirty_ = true;
    activity_dirty_ = true;
    trace_->grow_vm_count(vms_.size());
    view_ = HostView{&cpufreq_, &monitor_, scheduler_.get(), vm_ids_, initial_credits_};
    if (controller_) controller_->attach(view_);
  }
  return id;
}

std::unique_ptr<wl::Workload> Host::swap_workload(common::VmId id,
                                                  std::unique_ptr<wl::Workload> replacement) {
  if (advancing_.load(std::memory_order_relaxed))
    throw std::logic_error("Host: swap_workload while the host is advancing "
                           "(cross-host mutation must wait for the segment boundary)");
  if (replacement == nullptr) throw std::invalid_argument("Host: replacement workload required");
  Vm& vm = vms_.at(id);
  std::unique_ptr<wl::Workload> old = std::move(vm.workload);
  vm.workload = std::move(replacement);
  vm.blocked_this_slice = false;
  notify_workload_changed(id);
  return old;
}

void Host::notify_workload_changed(common::VmId id) {
  if (advancing_.load(std::memory_order_relaxed))
    throw std::logic_error("Host: notify_workload_changed while the host is advancing "
                           "(cross-host mutation must wait for the segment boundary)");
  if (id >= vms_.size()) throw std::out_of_range("Host: bad VM id");
  activity_dirty_ = true;
  if (!tasks_installed_) return;  // the first quantum polls everything anyway
  // Treat the slot exactly like one that just ran: the cached runnable flag
  // and transition hint may be stale, so the next refresh re-polls it.
  wl_ran_[id] = 1;
  any_ran_ = true;
}

void Host::set_governor(std::unique_ptr<gov::Governor> governor) {
  if (tasks_installed_) throw std::logic_error("Host: set_governor after run started");
  governor_ = std::move(governor);
  activity_dirty_ = true;
}

void Host::set_controller(std::unique_ptr<Controller> controller) {
  if (tasks_installed_) throw std::logic_error("Host: set_controller after run started");
  controller_ = std::move(controller);
  activity_dirty_ = true;
}

double Host::window_wanting_fraction(common::VmId id) const {
  const double win = static_cast<double>(cfg_.monitor_window.us());
  return static_cast<double>(vms_.at(id).window_wanting.us()) / win;
}

bool Host::vm_saturated_last_window(common::VmId id) const {
  return saturated_last_window_.at(id);
}

void Host::install_periodic_tasks() {
  view_ = HostView{&cpufreq_, &monitor_, scheduler_.get(), vm_ids_, initial_credits_};
  trace_ = std::make_unique<metrics::TraceRecorder>(vms_.size());

  // Incremental runnable tracking: everything starts "expired" so the first
  // quantum polls every workload.
  wl_runnable_.assign(vms_.size(), 0);
  wl_hint_.assign(vms_.size(), common::SimTime{});
  wl_ran_.assign(vms_.size(), 0);
  any_ran_ = true;  // conservative: the first refresh must scan everything
  hint_floor_ = common::SimTime{};
  active_ids_.reserve(vms_.size());
  runnable_scratch_.reserve(vms_.size());
  active_dirty_ = true;

  trace_scratch_global_.reserve(vms_.size());
  trace_scratch_absolute_.reserve(vms_.size());
  trace_scratch_credit_.reserve(vms_.size());
  trace_scratch_saturated_.reserve(vms_.size());

  // Creation order fixes same-timestamp firing order: accounting, then the
  // monitor window close, then governor, then controller, then tracing —
  // so policies always observe a freshly closed window.
  const common::SimTime acct = scheduler_->accounting_period();
  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      events_, acct, acct, [this](common::SimTime t) { scheduler_->account(t); }));

  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      events_, cfg_.monitor_window, cfg_.monitor_window,
      [this](common::SimTime t) { close_monitor_window(t); }));

  if (governor_) {
    const common::SimTime p = governor_->period();
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, p, p, [this](common::SimTime t) { governor_tick(t); }));
  }
  if (controller_) {
    controller_->attach(view_);
    const common::SimTime p = controller_->period();
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, p, p, [this](common::SimTime t) { controller_tick(t); }));
  }
  if (cfg_.trace_stride.us() > 0) {
    trace_task_index_ = tasks_.size();
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, cfg_.trace_stride, cfg_.trace_stride,
        [this](common::SimTime t) { trace_tick(t); }));
  }
}

void Host::close_monitor_window(common::SimTime now) {
  for (const auto& vm : vms_) {
    // A VM that wanted the CPU for (almost) the whole window is saturated:
    // it would have used more capacity had the scheduler granted it.
    saturated_last_window_[vm.id] = window_wanting_fraction(vm.id) >= 0.95;
  }
  monitor_.close_window(now);
  for (auto& vm : vms_) vm.window_wanting = common::SimTime{};
}

void Host::governor_tick(common::SimTime now) {
  assert(governor_ != nullptr);
  const common::SimTime span = now - gov_last_sample_time_;
  if (span.us() <= 0) return;
  const common::SimTime busy = monitor_.cumulative_busy() - gov_last_cum_busy_;
  gov::Sample s;
  s.now = now;
  s.util = std::clamp(
      static_cast<double>(busy.us()) / static_cast<double>(span.us()), 0.0, 1.0);
  s.avg_util = monitor_.avg_global_load_pct() / 100.0;
  s.current_index = cpufreq_.current_index();
  const std::size_t target = governor_->decide(s, cpu_.ladder());
  cpufreq_.request(target);
  gov_last_sample_time_ = now;
  gov_last_cum_busy_ = monitor_.cumulative_busy();
}

void Host::controller_tick(common::SimTime now) {
  assert(controller_ != nullptr);
  controller_->on_tick(now, view_);
}

void Host::trace_tick(common::SimTime now) {
  // The column scratch buffers are reused across ticks, so sampling only
  // allocates when the recorder's own columns grow.
  trace_scratch_global_.clear();
  trace_scratch_absolute_.clear();
  trace_scratch_credit_.clear();
  trace_scratch_saturated_.clear();
  for (const auto& vm : vms_) {
    trace_scratch_global_.push_back(monitor_.vm_global_load_pct(vm.id));
    trace_scratch_absolute_.push_back(monitor_.vm_absolute_load_pct(vm.id));
    trace_scratch_credit_.push_back(scheduler_->cap(vm.id));
    trace_scratch_saturated_.push_back(saturated_last_window_[vm.id] ? 1.0 : 0.0);
  }
  trace_->append(now, cpu_.current_freq().value(), monitor_.global_load_pct(),
                 monitor_.absolute_load_pct(), trace_scratch_global_,
                 trace_scratch_absolute_, trace_scratch_credit_,
                 trace_scratch_saturated_);
}

void Host::refresh_workloads(bool advance_runnable) {
  if (!cfg_.event_driven_fast_path) {
    // Reference mode: poll every workload every quantum — the pre-refactor
    // loop's cost model (and trivially its semantics).
    for (auto& vm : vms_) {
      vm.workload->advance_to(now_);
      const bool runnable = vm.workload->runnable();
      if (runnable != static_cast<bool>(wl_runnable_[vm.id])) {
        wl_runnable_[vm.id] = runnable ? 1 : 0;
        active_dirty_ = true;
      }
      vm.blocked_this_slice = false;
    }
  } else if (!any_ran_ && hint_floor_ > now_) {
    // Sparse refresh: no slot consumed a slice since the last full scan
    // and no transition hint has expired, so the scan below would only
    // deliver arrivals to still-runnable VMs — every other branch is
    // provably dead (a set blocked_this_slice implies a set wl_ran_, so
    // those flags are all clear too). Walk just the active list; the
    // runnable set cannot move, so active_ids_ stays valid.
    assert(!active_dirty_);
    if (advance_runnable)
      for (const common::VmId id : active_ids_) vms_[id].workload->advance_to(now_);
    return;
  } else {
    common::SimTime floor = wl::kNoTransition;
    for (auto& vm : vms_) {
      const auto id = vm.id;
      if (wl_ran_[id] || wl_hint_[id] <= now_) {
        // The VM was consumed last quantum, or its transition hint expired:
        // re-poll runnable-ness and refresh the hint.
        vm.workload->advance_to(now_);
        const bool runnable = vm.workload->runnable();
        if (runnable != static_cast<bool>(wl_runnable_[id])) {
          wl_runnable_[id] = runnable ? 1 : 0;
          active_dirty_ = true;
        }
        wl_hint_[id] = vm.workload->next_transition_time(now_);
        wl_ran_[id] = 0;
      } else if (advance_runnable && wl_runnable_[id]) {
        // Still runnable (the hint guarantees no self-transition yet), but
        // it may be scheduled this quantum, so arrivals must be delivered.
        vm.workload->advance_to(now_);
      }
      // Idle VMs with an unexpired hint are left untouched entirely — the
      // advance_to coarsening invariant (workload.hpp) makes the deferred
      // catch-up call indistinguishable.
      vm.blocked_this_slice = false;
      floor = std::min(floor, wl_hint_[id]);
    }
    // The scan cleared every ran flag and re-polled every expired hint;
    // the aggregates are exact again until the next consume/notify.
    any_ran_ = false;
    hint_floor_ = floor;
  }
  if (active_dirty_) {
    active_ids_.clear();
    for (const auto& vm : vms_)
      if (wl_runnable_[vm.id]) active_ids_.push_back(vm.id);
    active_dirty_ = false;
  }
}

common::SimTime Host::earliest_transition_hint() const {
  common::SimTime earliest = wl::kNoTransition;
  for (const common::SimTime h : wl_hint_) earliest = std::min(earliest, h);
  return earliest;
}

common::SimTime Host::next_poll_boundary(common::SimTime hint) const {
  const std::int64_t k =
      (hint.us() - now_.us() + cfg_.quantum.us() - 1) / cfg_.quantum.us();
  return now_ + cfg_.quantum * k;
}

void Host::run_quantum(common::SimTime slice_end) {
  const double ratio = cpu_.current_ratio();
  refresh_workloads();

  idle_tail_ = IdleTail::kNone;
  bool any_blocked = false;
  common::SimTime t = now_;
  while (t < slice_end) {
    // The schedulable set is the active (runnable) set minus VMs that
    // blocked earlier in this slice; the copy is only taken once a block
    // actually happens. Reference mode keeps the pre-refactor behaviour:
    // re-poll every workload and rebuild the set on every iteration.
    std::span<const common::VmId> runnable = active_ids_;
    if (!cfg_.event_driven_fast_path) {
      runnable_scratch_.clear();
      for (auto& vm : vms_)
        if (!vm.blocked_this_slice && vm.workload->runnable())
          runnable_scratch_.push_back(vm.id);
      runnable = runnable_scratch_;
    } else if (any_blocked) {
      runnable_scratch_.clear();
      for (const common::VmId id : active_ids_)
        if (!vms_[id].blocked_this_slice) runnable_scratch_.push_back(id);
      runnable = runnable_scratch_;
    }
    if (runnable.empty()) {
      idle_tail_ = IdleTail::kNoRunnable;
      break;
    }

    const common::VmId chosen = scheduler_->pick(t, runnable);
    const common::SimTime span = slice_end - t;
    if (chosen == common::kInvalidVm) {
      // Fixed-credit semantics: runnable VMs exist but all are over cap.
      // They keep "wanting" the CPU while it idles.
      for (common::VmId r : runnable) vms_[r].window_wanting += span;
      idle_tail_ = IdleTail::kOverCap;
      idle_break_set_.assign(runnable.begin(), runnable.end());
      break;
    }
    assert(std::find(runnable.begin(), runnable.end(), chosen) != runnable.end());

    Vm& v = vms_[chosen];
    // Extra-time grants may convert to guest work at reduced efficiency;
    // the wall time is occupied either way (the CPU looks busy to DVFS).
    const double eff = scheduler_->work_efficiency(chosen);
    assert(eff > 0.0 && eff <= 1.0);
    const common::Work budget = cpu_.work_for(span) * eff;
    const common::Work done = v.workload->consume(t, budget);
    wl_ran_[chosen] = 1;  // consume may have changed runnable-ness: re-poll
    any_ran_ = true;
    common::SimTime busy;
    if (done >= budget) {
      busy = span;
    } else {
      v.blocked_this_slice = true;
      any_blocked = true;
      busy = std::min(cpu_.time_for(common::Work{done.mfus() / eff}), span);
    }
    if (busy.us() == 0) {
      if (done <= common::Work{}) continue;  // spurious wakeup: retry others
      busy = common::usec(1);
    }

    scheduler_->charge(chosen, busy);
    monitor_.record_run(chosen, busy, done);
    v.total_busy += busy;
    v.total_work += done;
    energy_.record(busy, ratio, busy);
    for (common::VmId r : runnable) vms_[r].window_wanting += busy;
    t += busy;
  }

  if (t < slice_end) {
    const common::SimTime idle = slice_end - t;
    idle_total_ += idle;
    energy_.record(idle, ratio, common::SimTime{});
  }
}

void Host::skip_idle_time(common::SimTime until) {
  // The quantum that just ended at now_ finished with no pickable VM. If
  // that is still true at this boundary, nothing can happen until (a) the
  // next queue event (accounting refill, window close, governor/controller
  // tick, trace sample) — the only things that change credits or frequency
  // — (b) a workload self-transition, which the slow-stepped loop would
  // only observe at the first quantum boundary at or after it, or (c)
  // `until`. Jump there in one step.
  //
  // "Still true" is validated by re-polling the workloads exactly as the
  // next quantum would: an empty active set extends a no-runnable tail; an
  // unchanged active set extends an over-cap tail (the scheduler already
  // rejected precisely that set, and no charge/account ran since, so
  // re-asking it would both return the same answer and leave the same
  // state — the pick idempotence contract, scheduler.hpp).
  if (idle_tail_ == IdleTail::kOverCap && !scheduler_->rejection_is_stable())
    return;  // the rejection may expire with bare time (SEDF period refill)
  refresh_workloads(/*advance_runnable=*/false);
  if (idle_tail_ == IdleTail::kNoRunnable) {
    if (!active_ids_.empty()) return;
  } else {
    if (active_ids_ != idle_break_set_) return;
  }

  const common::SimTime hint = earliest_transition_hint();

  if (idle_tail_ == IdleTail::kOverCap) {
    // Queue events change credits (accounting refill, controller set_cap),
    // so an over-cap skip must stop at the next one.
    common::SimTime target = std::min(until, events_.next_event_time(until));
    if (hint < target) {
      if (hint <= now_) return;  // an "unknown" hint: re-poll every quantum
      target = std::min(target, next_poll_boundary(hint));
    }
    if (target <= now_) return;
    const common::SimTime span = target - now_;
    // Same per-quantum accrual the slow loop applies: over-cap VMs want the
    // CPU for every skipped instant. The hint bound guarantees the active
    // set is constant across the whole span.
    for (common::VmId r : active_ids_) vms_[r].window_wanting += span;
    idle_total_ += span;
    energy_.record(span, cpu_.current_ratio(), common::SimTime{});
    now_ = target;
    return;
  }

  // No-runnable skip: queue events cannot make a workload runnable (they
  // touch credits, frequency, monitor and trace — never workload state), so
  // the skip may cross them. Hop event to event so each idle segment is
  // accounted at the frequency then in force (a governor tick mid-skip
  // changes the idle power draw), firing handlers at their exact times in
  // the exact order the slow loop would. The quantum grid re-anchors at
  // every event crossed — an off-grid event cuts the reference loop's
  // slice short and later boundaries shift with it — so the hint wake-up
  // boundary is recomputed per segment from the segment's own start.
  while (now_ < until) {
    const common::SimTime seg_end = std::min(until, events_.next_event_time(until));
    common::SimTime stop = seg_end;
    if (hint < seg_end) {
      if (hint <= now_) break;  // the slow loop polls at this very boundary
      stop = std::min(stop, next_poll_boundary(hint));
    }
    if (stop > now_) {
      const common::SimTime span = stop - now_;
      idle_total_ += span;
      energy_.record(span, cpu_.current_ratio(), common::SimTime{});
      now_ = stop;
    }
    if (stop < seg_end) break;  // woke for the hint: re-poll in run_until
    events_.run_until(now_);
  }
}

common::SimTime Host::compute_next_activity() const {
  // Quiescence certificate: every condition below must hold for a bulk
  // skip to reproduce the reference loop byte for byte. Each line names
  // the divergence it rules out.
  if (!cfg_.event_driven_fast_path || !tasks_installed_) return now_;
  // Governor/controller ticks read monitor state and move frequency/caps;
  // replaying them is the reference loop's job.
  if (governor_ || controller_) return now_;
  // An over-cap tail accrues window_wanting per skipped instant and wakes
  // on credit refills — only a fully idle (no-runnable) host is inert.
  if (idle_tail_ != IdleTail::kNoRunnable) return now_;
  if (!active_ids_.empty()) return now_;
  for (const auto& vm : vms_) {
    const auto id = vm.id;
    // A consumed/notified slot or an expired hint forces a re-poll; a
    // pending window_wanting or saturation flag would alter the next
    // monitor close; any of these and the host must really run.
    if (wl_ran_[id] || wl_runnable_[id]) return now_;
    if (wl_hint_[id] <= now_) return now_;
    if (vm.window_wanting != common::SimTime{}) return now_;
    if (saturated_last_window_[id]) return now_;
  }
  // The periodic fires crossed by a skip must be provable no-ops: credits
  // at the refill fixed point, monitor reading all-zero with full
  // smoothing rings.
  if (!scheduler_->refill_settled()) return now_;
  if (!monitor_.idle_settled()) return now_;
  // The host schedules exclusively through its periodic tasks; the merge
  // in skip_idle_to relies on that being the whole queue.
  assert(events_.pending() == tasks_.size());
  // Inert until the earliest workload self-transition (kNoTransition for
  // a host of pure idlers: skippable to any horizon).
  return earliest_transition_hint();
}

common::SimTime Host::next_activity_time() {
  if (activity_dirty_) {
    activity_cache_ = compute_next_activity();
    activity_dirty_ = false;
  }
  return activity_cache_;
}

void Host::skip_idle_to(common::SimTime target) {
  if (target <= now_) return;
  if (next_activity_time() < target) {
    // The certificate does not cover the span (or the host is simply not
    // quiescent): take the honest path. Misuse costs time, never bytes.
    run_until(target);
    return;
  }
  if (advancing_.load(std::memory_order_relaxed))
    throw std::logic_error("Host: skip_idle_to while the host is advancing");
  struct AdvanceGuard {
    std::atomic<bool>& flag;
    ~AdvanceGuard() { flag.store(false, std::memory_order_relaxed); }
  } guard{advancing_};
  advancing_.store(true, std::memory_order_relaxed);

  // What the reference loop would do from a quiescent state: one
  // quantum-bounded idle chunk (run_quantum), then skip_idle_time hopping
  // event instant to event instant, firing the periodic tasks in exact
  // (time, seq) order — each a state no-op except the trace sampler —
  // and recording one idle energy chunk per hop. Frequency cannot change
  // (no governor/controller and nothing runs), so one ratio read serves
  // every chunk, exactly as each reference segment would have read it.
  const double ratio = cpu_.current_ratio();

  // Local merge simulation over the periodic tasks. Seqs start above
  // every live entry and grow per simulated fire, mirroring the queue's
  // global counter (a rearm always draws a fresh, largest seq).
  skip_entries_.clear();
  std::uint64_t local_seq = 0;
  common::SimTime first_due = target;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    SkipEntry e;
    e.due = tasks_[i]->next_due();
    e.period = tasks_[i]->period();
    e.seq = tasks_[i]->pending_seq();
    e.task = i;
    assert(e.seq != 0 && e.due > now_);
    local_seq = std::max(local_seq, e.seq);
    first_due = std::min(first_due, e.due);
    skip_entries_.push_back(e);
  }
  ++local_seq;

  // Chunk 1: the slice run_quantum would have cut at the quantum, the
  // target or the first event — whichever is earliest.
  common::SimTime prev = now_;
  {
    const common::SimTime b0 = std::min({now_ + cfg_.quantum, target, first_due});
    if (b0 > prev) {
      energy_.record(b0 - prev, ratio, common::SimTime{});
      prev = b0;
    }
  }

  // Fire merge: pop the earliest (due, seq) entry up to and including the
  // target (the reference's trailing events_.run_until fires events due
  // exactly at `until`). Distinct instants bound energy chunks; the trace
  // task's fires collect rows.
  skip_trace_times_.clear();
  for (;;) {
    SkipEntry* best = nullptr;
    for (auto& e : skip_entries_) {
      if (e.due > target) continue;
      if (best == nullptr || e.due < best->due ||
          (e.due == best->due && e.seq < best->seq))
        best = &e;
    }
    if (best == nullptr) break;
    if (best->due > prev) {
      energy_.record(best->due - prev, ratio, common::SimTime{});
      prev = best->due;
    }
    if (best->task == trace_task_index_) skip_trace_times_.push_back(best->due);
    best->seq = local_seq++;
    best->fired = true;
    best->due += best->period;
  }
  if (target > prev) energy_.record(target - prev, ratio, common::SimTime{});

  idle_total_ += target - now_;
  now_ = target;

  if (!skip_trace_times_.empty()) {
    // Every skipped trace row is the same constant row the sampler would
    // have built: loads zero, caps and frequency unchanged.
    trace_scratch_credit_.clear();
    for (const auto& vm : vms_)
      trace_scratch_credit_.push_back(scheduler_->cap(vm.id));
    trace_->append_idle_rows(skip_trace_times_, cpu_.current_freq().value(),
                             trace_scratch_credit_);
  }

  // Re-arm fired tasks at their simulated dues, in ascending final-seq
  // order: each rearm draws a fresh (largest) real seq, so the live
  // queue's relative (time, seq) order — the only observable — matches
  // the reference exactly. Unfired tasks keep their older (smaller) seqs,
  // as they would have in the reference.
  std::sort(skip_entries_.begin(), skip_entries_.end(),
            [](const SkipEntry& a, const SkipEntry& b) { return a.seq < b.seq; });
  for (const SkipEntry& e : skip_entries_)
    if (e.fired) tasks_[e.task]->advance_to(e.due);

  // Quiescence survives a skip by construction (nothing above re-polls a
  // workload or moves scheduler/monitor state), so the certificate —
  // bounded by the unchanged transition hints — stays valid: no
  // activity_dirty_ here. The skip itself cost O(fires), not O(span).
}

void Host::run_until(common::SimTime until) {
  // No-shared-state contract (see the header): while this host advances —
  // possibly on a worker thread of the cluster's parallel driver — nothing
  // may mutate it from outside. The guard turns a violation (a migration
  // attach or agent injection racing a running segment) into a hard error
  // instead of a silent nondeterminism.
  if (advancing_.load(std::memory_order_relaxed))
    throw std::logic_error("Host: reentrant run_until");
  struct AdvanceGuard {
    std::atomic<bool>& flag;
    ~AdvanceGuard() { flag.store(false, std::memory_order_relaxed); }
  } guard{advancing_};
  advancing_.store(true, std::memory_order_relaxed);
  activity_dirty_ = true;  // a real advance invalidates the certificate
  if (!tasks_installed_) {
    install_periodic_tasks();
    tasks_installed_ = true;
  }
  if (cfg_.trace_stride.us() > 0 && until > now_)
    trace_->reserve(static_cast<std::size_t>((until - now_) / cfg_.trace_stride) + 1);
  while (now_ < until) {
    events_.run_until(now_);
    const common::SimTime next_event = events_.next_event_time(until);
    // The queue removes cancelled entries eagerly, so the earliest pending
    // event is always strictly in the future here.
    assert(next_event > now_ || events_.empty());
    const common::SimTime slice_end = std::min({now_ + cfg_.quantum, until, next_event});
    run_quantum(slice_end);
    now_ = slice_end;
    if (cfg_.event_driven_fast_path && idle_tail_ != IdleTail::kNone && now_ < until)
      skip_idle_time(until);
  }
  events_.run_until(now_);
}

}  // namespace pas::hv
