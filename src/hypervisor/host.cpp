#include "hypervisor/host.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pas::hv {

Host::Host(HostConfig config, std::unique_ptr<Scheduler> scheduler)
    : cfg_(config),
      cpu_(config.ladder),
      cpufreq_(cpu_, config.cpufreq_transition_latency),
      scheduler_(std::move(scheduler)),
      monitor_(config.monitor_window, config.monitor_depth),
      energy_(config.power) {
  if (scheduler_ == nullptr) throw std::invalid_argument("Host: scheduler required");
  if (cfg_.quantum.us() <= 0) throw std::invalid_argument("Host: quantum must be positive");
  if (cfg_.speed_override) cpu_.set_speed_override(cfg_.speed_override);
}

Host::~Host() = default;

common::VmId Host::add_vm(VmConfig config, std::unique_ptr<wl::Workload> workload) {
  if (tasks_installed_) throw std::logic_error("Host: add_vm after run started");
  if (workload == nullptr) throw std::invalid_argument("Host: workload required");
  const auto id = static_cast<common::VmId>(vms_.size());
  Vm vm;
  vm.id = id;
  vm.config = std::move(config);
  vm.workload = std::move(workload);
  monitor_.register_vm(id);
  scheduler_->add_vm(id, vm.config);
  initial_credits_.push_back(vm.config.credit);
  saturated_last_window_.push_back(false);
  vm_ids_.push_back(id);
  vms_.push_back(std::move(vm));
  return id;
}

void Host::set_governor(std::unique_ptr<gov::Governor> governor) {
  if (tasks_installed_) throw std::logic_error("Host: set_governor after run started");
  governor_ = std::move(governor);
}

void Host::set_controller(std::unique_ptr<Controller> controller) {
  if (tasks_installed_) throw std::logic_error("Host: set_controller after run started");
  controller_ = std::move(controller);
}

double Host::window_wanting_fraction(common::VmId id) const {
  const double win = static_cast<double>(cfg_.monitor_window.us());
  return static_cast<double>(vms_.at(id).window_wanting.us()) / win;
}

bool Host::vm_saturated_last_window(common::VmId id) const {
  return saturated_last_window_.at(id);
}

void Host::install_periodic_tasks() {
  view_ = HostView{&cpufreq_, &monitor_, scheduler_.get(), vm_ids_, initial_credits_};
  trace_ = std::make_unique<metrics::TraceRecorder>(vms_.size());

  // Creation order fixes same-timestamp firing order: accounting, then the
  // monitor window close, then governor, then controller, then tracing —
  // so policies always observe a freshly closed window.
  const common::SimTime acct = scheduler_->accounting_period();
  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      events_, acct, acct, [this](common::SimTime t) { scheduler_->account(t); }));

  tasks_.push_back(std::make_unique<sim::PeriodicTask>(
      events_, cfg_.monitor_window, cfg_.monitor_window,
      [this](common::SimTime t) { close_monitor_window(t); }));

  if (governor_) {
    const common::SimTime p = governor_->period();
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, p, p, [this](common::SimTime t) { governor_tick(t); }));
  }
  if (controller_) {
    controller_->attach(view_);
    const common::SimTime p = controller_->period();
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, p, p, [this](common::SimTime t) { controller_tick(t); }));
  }
  if (cfg_.trace_stride.us() > 0) {
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        events_, cfg_.trace_stride, cfg_.trace_stride,
        [this](common::SimTime t) { trace_tick(t); }));
  }
}

void Host::close_monitor_window(common::SimTime now) {
  for (const auto& vm : vms_) {
    // A VM that wanted the CPU for (almost) the whole window is saturated:
    // it would have used more capacity had the scheduler granted it.
    saturated_last_window_[vm.id] = window_wanting_fraction(vm.id) >= 0.95;
  }
  monitor_.close_window(now);
  for (auto& vm : vms_) vm.window_wanting = common::SimTime{};
}

void Host::governor_tick(common::SimTime now) {
  assert(governor_ != nullptr);
  const common::SimTime span = now - gov_last_sample_time_;
  if (span.us() <= 0) return;
  const common::SimTime busy = monitor_.cumulative_busy() - gov_last_cum_busy_;
  gov::Sample s;
  s.now = now;
  s.util = std::clamp(
      static_cast<double>(busy.us()) / static_cast<double>(span.us()), 0.0, 1.0);
  s.avg_util = monitor_.avg_global_load_pct() / 100.0;
  s.current_index = cpufreq_.current_index();
  const std::size_t target = governor_->decide(s, cpu_.ladder());
  cpufreq_.request(target);
  gov_last_sample_time_ = now;
  gov_last_cum_busy_ = monitor_.cumulative_busy();
}

void Host::controller_tick(common::SimTime now) {
  assert(controller_ != nullptr);
  controller_->on_tick(now, view_);
}

void Host::trace_tick(common::SimTime now) {
  metrics::TraceSample s;
  s.t = now;
  s.freq_mhz = cpu_.current_freq().value();
  s.global_load_pct = monitor_.global_load_pct();
  s.absolute_load_pct = monitor_.absolute_load_pct();
  s.vm_global_pct.reserve(vms_.size());
  s.vm_absolute_pct.reserve(vms_.size());
  s.vm_credit_pct.reserve(vms_.size());
  s.vm_saturated.reserve(vms_.size());
  for (const auto& vm : vms_) {
    s.vm_global_pct.push_back(monitor_.vm_global_load_pct(vm.id));
    s.vm_absolute_pct.push_back(monitor_.vm_absolute_load_pct(vm.id));
    s.vm_credit_pct.push_back(scheduler_->cap(vm.id));
    s.vm_saturated.push_back(saturated_last_window_[vm.id] ? 1.0 : 0.0);
  }
  trace_->add(std::move(s));
}

void Host::run_quantum(common::SimTime slice_end) {
  const double ratio = cpu_.current_ratio();

  for (auto& vm : vms_) {
    vm.workload->advance_to(now_);
    vm.blocked_this_slice = false;
  }

  common::SimTime t = now_;
  while (t < slice_end) {
    runnable_scratch_.clear();
    for (auto& vm : vms_) {
      if (!vm.blocked_this_slice && vm.workload->runnable())
        runnable_scratch_.push_back(vm.id);
    }
    if (runnable_scratch_.empty()) break;

    const common::VmId chosen = scheduler_->pick(t, runnable_scratch_);
    const common::SimTime span = slice_end - t;
    if (chosen == common::kInvalidVm) {
      // Fixed-credit semantics: runnable VMs exist but all are over cap.
      // They keep "wanting" the CPU while it idles.
      for (common::VmId r : runnable_scratch_) vms_[r].window_wanting += span;
      break;
    }
    assert(std::find(runnable_scratch_.begin(), runnable_scratch_.end(), chosen) !=
           runnable_scratch_.end());

    Vm& v = vms_[chosen];
    // Extra-time grants may convert to guest work at reduced efficiency;
    // the wall time is occupied either way (the CPU looks busy to DVFS).
    const double eff = scheduler_->work_efficiency(chosen);
    assert(eff > 0.0 && eff <= 1.0);
    const common::Work budget = cpu_.work_for(span) * eff;
    const common::Work done = v.workload->consume(t, budget);
    common::SimTime busy;
    if (done >= budget) {
      busy = span;
    } else {
      v.blocked_this_slice = true;
      busy = std::min(cpu_.time_for(common::Work{done.mfus() / eff}), span);
    }
    if (busy.us() == 0) {
      if (done <= common::Work{}) continue;  // spurious wakeup: retry others
      busy = common::usec(1);
    }

    scheduler_->charge(chosen, busy);
    monitor_.record_run(chosen, busy, done);
    v.total_busy += busy;
    v.total_work += done;
    energy_.record(busy, ratio, busy);
    for (common::VmId r : runnable_scratch_) vms_[r].window_wanting += busy;
    t += busy;
  }

  if (t < slice_end) {
    const common::SimTime idle = slice_end - t;
    idle_total_ += idle;
    energy_.record(idle, ratio, common::SimTime{});
  }
}

void Host::run_until(common::SimTime until) {
  if (!tasks_installed_) {
    install_periodic_tasks();
    tasks_installed_ = true;
  }
  while (now_ < until) {
    events_.run_until(now_);
    common::SimTime next_event = events_.next_event_time(until);
    if (next_event <= now_) next_event = until;  // stale top entry already fired
    const common::SimTime slice_end = std::min({now_ + cfg_.quantum, until, next_event});
    run_quantum(slice_end);
    now_ = slice_end;
  }
  events_.run_until(now_);
}

}  // namespace pas::hv
