// Controller interface: coordinated credit + DVFS policy.
//
// A Controller is the hook where the paper's contribution plugs into the
// host. It runs periodically with a view of the measurement and actuation
// surfaces (load monitor, cpufreq, scheduler caps) and implements a
// coordination policy:
//
//   * core::PasController             — the in-hypervisor PAS scheduler
//     (§4.1 third design: "credit and DVFS computations ... performed each
//     time a scheduling decision is made");
//   * core::UserLevelCreditManager    — §4.1 first design (governor owns
//     DVFS, a slow user-level loop fixes credits);
//   * core::UserLevelDvfsCreditManager — §4.1 second design (user-level
//     loop owns both).
//
// A host may have a Governor, a Controller, or both (first design).
#pragma once

#include <span>
#include <string_view>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "cpu/cpufreq.hpp"
#include "hypervisor/scheduler.hpp"
#include "metrics/load_monitor.hpp"

namespace pas::hv {

/// The slice of host state a controller may observe and actuate. The spans
/// remain valid for the lifetime of the host.
struct HostView {
  cpu::Cpufreq* cpufreq = nullptr;
  const metrics::LoadMonitor* monitor = nullptr;
  Scheduler* scheduler = nullptr;
  /// All VM ids, in creation order.
  std::span<const common::VmId> vms;
  /// The *initial* credit of each VM (the SLA — what compensation preserves).
  std::span<const common::Percent> initial_credits;
};

class Controller {
 public:
  virtual ~Controller() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Invocation period. The in-hypervisor PAS runs at the scheduler
  /// accounting tick; the user-level designs run orders of magnitude slower.
  [[nodiscard]] virtual common::SimTime period() const = 0;

  /// Called once before the first tick.
  virtual void attach(const HostView& view) = 0;

  /// Periodic policy step.
  virtual void on_tick(common::SimTime now, const HostView& view) = 0;
};

}  // namespace pas::hv
