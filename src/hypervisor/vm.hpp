// VM configuration and runtime record.
#pragma once

#include <memory>
#include <string>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "workload/workload.hpp"

namespace pas::hv {

/// Static configuration of a VM, set at creation time ("VMs are created and
/// configured in order to have, among other parameters, an execution
/// priority and a CPU credit" — §2.1).
struct VmConfig {
  std::string name;

  /// CPU credit as a percentage of the processor *at maximum frequency*
  /// (the SLA). 0 means uncapped: the Xen null-credit special case — no
  /// guarantee, may consume any slack (§3.1).
  common::Percent credit = 0.0;

  /// Scheduling priority; higher preempts lower. The paper gives Dom0 the
  /// highest priority and keeps all customer VMs equal.
  int priority = 0;

  /// SEDF period p for this VM; the slice s is derived from `credit`
  /// (s = credit% of p) unless the scheduler is given explicit values.
  common::SimTime sedf_period = common::msec(100);

  /// SEDF extra-time eligibility flag b.
  bool sedf_extra = true;
};

/// Runtime record owned by the Host.
struct Vm {
  common::VmId id = common::kInvalidVm;
  VmConfig config;
  std::unique_ptr<wl::Workload> workload;

  // --- accounting (maintained by the Host) ---
  common::SimTime total_busy{};
  common::Work total_work{};
  /// Wall time the VM spent runnable-but-not-running or running in the
  /// current monitor window; used for saturation detection.
  common::SimTime window_wanting{};
  /// Transient: the VM blocked during the current quantum (ran out of work).
  bool blocked_this_slice = false;
};

}  // namespace pas::hv
