// Hypervisor VM-scheduler interface.
//
// The host drives any scheduler through four calls:
//   pick    — choose the VM to run now among the runnable set;
//   charge  — account the time the chosen VM actually ran;
//   account — periodic credit refill (the scheduler's accounting tick);
//   set_cap — dynamically adjust a VM's credit (what the PAS controller
//             does when the frequency changes).
//
// Implementations: sched::CreditScheduler (fixed credit, Xen Credit with a
// cap), sched::SedfScheduler (variable credit, Xen SEDF). The PAS
// contribution is NOT a separate scheduler class: per the paper it is the
// credit scheduler plus a credit/DVFS controller (core::PasController).
//
// ── Extension contract ──────────────────────────────────────────────────
// A new scheduler is correct when it upholds four promises; every one is
// load-bearing for an optimization or a cluster feature, so the
// differential suites (host fast-path tests, cluster fuzz + parallel
// sweeps) will catch a violation as a byte-level divergence:
//
//  1. pick() is time-idempotent (doc on pick below). License for the
//     host's fast path to re-ask "still nothing to run?" without
//     perturbing you.
//  2. rejection_is_stable() tells the truth (doc below). `true` lets the
//     host collapse a whole over-cap idle span into one skip; claiming it
//     falsely makes the fast path skip over the instant your scheduler
//     would have revived a VM — a silent divergence. When unsure, return
//     false: it costs wall-clock, never correctness.
//  3. export_credit()/import_credit() conserve (doc below). The cluster's
//     migration engine moves the returned balance verbatim from source to
//     destination; tests/cluster/migration_conservation_test.cpp asserts
//     the fleet-wide sum is unchanged across every hand-off.
//  4. No hidden clocks, no shared state. All state lives in the instance
//     (one per host — the cluster's parallel driver steps hosts on worker
//     threads), and all time arrives through the `now` parameters. A
//     static counter or wall-clock read breaks run-to-run determinism.
//
// Registration: add the class to sched/scheduler_factory.{hpp,cpp} and to
// the cluster fuzz generator's scheduler switch so the differential tests
// cover it. See docs/ARCHITECTURE.md ("A new scheduler").
#pragma once

#include <span>
#include <string_view>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hypervisor/vm.hpp"

namespace pas::hv {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Registers a VM. Ids arrive densely from 0 in creation order.
  virtual void add_vm(common::VmId id, const VmConfig& config) = 0;

  /// Chooses the VM to run at `now` from `runnable` (never empty), or
  /// common::kInvalidVm to leave the CPU idle (a fixed-credit scheduler
  /// idles when every runnable VM has exhausted its credit).
  ///
  /// Idempotence contract (the host's fast path relies on it): repeating
  /// pick with the same runnable set at later instants, with no
  /// charge()/account()/set_cap() in between, must return the same choice
  /// and leave observable scheduler state as if every repeat had been
  /// made. All lazily time-refreshed bookkeeping (SEDF period rollover)
  /// must therefore be a pure function of `now`, not of the call count.
  [[nodiscard]] virtual common::VmId pick(common::SimTime now,
                                          std::span<const common::VmId> runnable) = 0;

  /// Charges `busy` wall time of CPU use to `vm` (credits are a *time*
  /// share; see common/units.hpp).
  virtual void charge(common::VmId vm, common::SimTime busy) = 0;

  /// Accounting boundary: refill credits/periods.
  virtual void account(common::SimTime now) = 0;

  /// How often account() must run.
  [[nodiscard]] virtual common::SimTime accounting_period() const = 0;

  /// Sets the VM's current credit cap (percent of processor time). The PAS
  /// controller raises caps above the configured credit when the frequency
  /// drops — the sum across VMs may then exceed 100 % (paper §4.2).
  virtual void set_cap(common::VmId vm, common::Percent cap_pct) = 0;

  /// The VM's current cap (initially its configured credit).
  [[nodiscard]] virtual common::Percent cap(common::VmId vm) const = 0;

  /// True if unused slices are redistributed to other VMs (variable-credit
  /// / work-conserving semantics).
  [[nodiscard]] virtual bool work_conserving() const = 0;

  /// True if a runnable set this scheduler just rejected (pick returned
  /// kInvalidVm) stays rejected until the next charge()/account()/
  /// set_cap() call — i.e. eligibility never revives with bare time. Lets
  /// the host skip the whole idle span in one step: on a `true` answer an
  /// over-cap tail fast-forwards to the next queue event (the earliest
  /// call that could change eligibility) with the rejected set revalidated
  /// at the boundary.
  ///
  /// What SEDF opts out of, and why: SEDF refills each VM's slice lazily,
  /// as a pure function of `now` (the period rollover happens inside
  /// pick()), so a VM the scheduler rejected at time t can become eligible
  /// at t + δ with no charge/account/set_cap in between — bare time IS a
  /// reviving input. SedfScheduler therefore returns false and the host
  /// idles its over-cap spans quantum by quantum, exactly like the
  /// reference loop. Fixed-credit schedulers (Credit, Credit2) refill only
  /// inside account(), so their rejections are stable and they keep the
  /// default. Defaulting a new scheduler to `false` is always safe;
  /// claiming `true` wrongly makes the fast path diverge from the
  /// reference loop (the fuzz suites catch this as a byte-level diff).
  [[nodiscard]] virtual bool rejection_is_stable() const { return true; }

  /// True if the next account() call would be a no-op on all observable
  /// scheduler state — credits already at their refill fixed point, no
  /// under/over tier moves pending, no cursor advance. The host's bulk
  /// idle skip (Host::skip_idle_to) uses this to prove that replaying the
  /// remaining accounting ticks of an idle span one by one would change
  /// nothing, so the span can be crossed in one step.
  ///
  /// Honesty contract, same shape as rejection_is_stable(): `false` is
  /// always safe (the host just keeps stepping tick by tick); `true` when
  /// account() would actually mutate state silently diverges the sparse
  /// cluster driver from the reference engine, and the fuzz suites catch
  /// it as a byte-level diff. The default is the safe answer; fixed-credit
  /// schedulers override it with their refill fixed-point test.
  [[nodiscard]] virtual bool refill_settled() const { return false; }

  /// Fraction of the *upcoming* run (for the VM just returned by pick())
  /// that converts into useful guest work, in (0,1]. 1.0 for guaranteed
  /// time; variable-credit schedulers may return less for extra-time grants
  /// (hypervisor overhead on borrowed slices: the CPU stays busy — which is
  /// what blocks DVFS down-scaling — but the guest gets less out of it).
  [[nodiscard]] virtual double work_efficiency(common::VmId vm) const {
    (void)vm;
    return 1.0;
  }

  /// Live-migration support: the VM's scheduling state that must travel
  /// with it (today: the credit balance, a *time* share — see
  /// common/units.hpp).
  ///
  /// Call sequence during a migration (cluster::MigrationEngine): at the
  /// stop-and-copy pause the engine reads export_credit(vm) on the SOURCE
  /// host's scheduler (a pure read — it must not mutate), records it in
  /// the MigrationRecord (credit_exported), then drains the source slot
  /// itself via import_credit(vm, 0) + set_cap(vm, 0) so credit exists in
  /// exactly one place and refills stop minting into the empty slot. At
  /// attach time it calls import_credit(vm, exported) on the DESTINATION
  /// host's scheduler (credit_imported). The conservation contract: export
  /// on A == import on B, credit neither minted nor burned in flight.
  /// import_credit therefore REPLACES the slot's balance (no merge, no
  /// clamp to burst limits — a migrating VM must not lose credit in
  /// flight); the engine relies on "import zero == drain".
  ///
  /// Schedulers without a transferable balance keep the defaults: export
  /// zero, ignore imports. SEDF is the in-tree example — its scheduling
  /// state is (deadline, remaining slice) against the HOST-LOCAL period
  /// grid; a deadline from host A is meaningless on host B's clock, and
  /// slices refill within one period anyway, so the honest hand-off is
  /// "carry nothing". The conservation test treats a default-returning
  /// scheduler as conserving trivially.
  [[nodiscard]] virtual common::SimTime export_credit(common::VmId vm) const {
    (void)vm;
    return common::SimTime{};
  }
  virtual void import_credit(common::VmId vm, common::SimTime balance) {
    (void)vm;
    (void)balance;
  }
};

}  // namespace pas::hv
