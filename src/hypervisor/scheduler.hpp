// Hypervisor VM-scheduler interface.
//
// The host drives any scheduler through four calls:
//   pick    — choose the VM to run now among the runnable set;
//   charge  — account the time the chosen VM actually ran;
//   account — periodic credit refill (the scheduler's accounting tick);
//   set_cap — dynamically adjust a VM's credit (what the PAS controller
//             does when the frequency changes).
//
// Implementations: sched::CreditScheduler (fixed credit, Xen Credit with a
// cap), sched::SedfScheduler (variable credit, Xen SEDF). The PAS
// contribution is NOT a separate scheduler class: per the paper it is the
// credit scheduler plus a credit/DVFS controller (core::PasController).
#pragma once

#include <span>
#include <string_view>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hypervisor/vm.hpp"

namespace pas::hv {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Registers a VM. Ids arrive densely from 0 in creation order.
  virtual void add_vm(common::VmId id, const VmConfig& config) = 0;

  /// Chooses the VM to run at `now` from `runnable` (never empty), or
  /// common::kInvalidVm to leave the CPU idle (a fixed-credit scheduler
  /// idles when every runnable VM has exhausted its credit).
  ///
  /// Idempotence contract (the host's fast path relies on it): repeating
  /// pick with the same runnable set at later instants, with no
  /// charge()/account()/set_cap() in between, must return the same choice
  /// and leave observable scheduler state as if every repeat had been
  /// made. All lazily time-refreshed bookkeeping (SEDF period rollover)
  /// must therefore be a pure function of `now`, not of the call count.
  [[nodiscard]] virtual common::VmId pick(common::SimTime now,
                                          std::span<const common::VmId> runnable) = 0;

  /// Charges `busy` wall time of CPU use to `vm` (credits are a *time*
  /// share; see common/units.hpp).
  virtual void charge(common::VmId vm, common::SimTime busy) = 0;

  /// Accounting boundary: refill credits/periods.
  virtual void account(common::SimTime now) = 0;

  /// How often account() must run.
  [[nodiscard]] virtual common::SimTime accounting_period() const = 0;

  /// Sets the VM's current credit cap (percent of processor time). The PAS
  /// controller raises caps above the configured credit when the frequency
  /// drops — the sum across VMs may then exceed 100 % (paper §4.2).
  virtual void set_cap(common::VmId vm, common::Percent cap_pct) = 0;

  /// The VM's current cap (initially its configured credit).
  [[nodiscard]] virtual common::Percent cap(common::VmId vm) const = 0;

  /// True if unused slices are redistributed to other VMs (variable-credit
  /// / work-conserving semantics).
  [[nodiscard]] virtual bool work_conserving() const = 0;

  /// True if a runnable set this scheduler just rejected (pick returned
  /// kInvalidVm) stays rejected until the next charge()/account()/
  /// set_cap() call — i.e. eligibility never revives with bare time. Lets
  /// the host skip the whole idle span in one step. Schedulers with lazily
  /// time-refreshed eligibility (SEDF's per-VM period refill) must return
  /// false; the host then idles such spans quantum by quantum.
  [[nodiscard]] virtual bool rejection_is_stable() const { return true; }

  /// Fraction of the *upcoming* run (for the VM just returned by pick())
  /// that converts into useful guest work, in (0,1]. 1.0 for guaranteed
  /// time; variable-credit schedulers may return less for extra-time grants
  /// (hypervisor overhead on borrowed slices: the CPU stays busy — which is
  /// what blocks DVFS down-scaling — but the guest gets less out of it).
  [[nodiscard]] virtual double work_efficiency(common::VmId vm) const {
    (void)vm;
    return 1.0;
  }

  /// Live-migration support: the VM's scheduling state that must travel with
  /// it (today: the credit balance, a *time* share). export_credit reads it
  /// on the source host; import_credit installs it on the destination — the
  /// conservation contract is export on A == import on B, so credit is
  /// neither minted nor burned in flight. Schedulers without a transferable
  /// balance (SEDF's deadlines are host-local) keep the defaults: export
  /// zero, ignore imports.
  [[nodiscard]] virtual common::SimTime export_credit(common::VmId vm) const {
    (void)vm;
    return common::SimTime{};
  }
  virtual void import_credit(common::VmId vm, common::SimTime balance) {
    (void)vm;
    (void)balance;
  }
};

}  // namespace pas::hv
