// The virtualized host: CPU + hypervisor scheduler + VMs + measurement.
//
// This is the substrate that stands in for "Xen 4.1.2 on a DELL Optiplex
// 755". Simulated time advances in scheduling quanta (default 10 ms, Xen's
// tick). Within each quantum the scheduler picks a VM, the VM performs work
// at the current frequency, and the time is charged against its credit.
// Periodic machinery — credit accounting, monitor windows, governor
// sampling, controller ticks, trace sampling — runs off a discrete-event
// queue interleaved with the quantum loop.
//
// Fast path: when a quantum ends with the CPU idle and no VM picked (no
// runnable VM, or every runnable VM over its cap), the host jumps simulated
// time in one step to the next instant anything can change — the earliest
// queue event, `until`, or the first quantum boundary at or after a
// workload's self-transition hint (see Workload::next_transition_time) —
// instead of idling quantum by quantum. The runnable set is maintained
// incrementally from those hints rather than re-polled per quantum. Both
// optimizations reproduce the slow-stepped loop exactly (same event order,
// same traces); HostConfig::event_driven_fast_path turns them off for A/B
// reference runs.
//
// Determinism: given the same configuration and workload seeds, a run is
// bit-for-bit reproducible.
//
// No-shared-state contract (what lets the cluster's parallel driver step
// hosts on worker threads): a Host owns every piece of state it touches
// while advancing — scheduler, CPU/power models, workloads, event queue,
// meters — and run_until reads and writes nothing outside the object.
// Conversely, NOTHING outside may mutate the host between the entry and
// exit of run_until: swap_workload, notify_workload_changed and agent
// work injection are segment-boundary operations, legal only while no
// run_until is in flight. The contract is enforced, not just documented —
// those mutators throw std::logic_error when called mid-advance (see
// docs/ARCHITECTURE.md, "parallel ≡ serial").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "cpu/cpu_model.hpp"
#include "cpu/cpufreq.hpp"
#include "cpu/power_model.hpp"
#include "governor/governor.hpp"
#include "hypervisor/controller.hpp"
#include "hypervisor/scheduler.hpp"
#include "hypervisor/vm.hpp"
#include "metrics/energy_meter.hpp"
#include "metrics/load_monitor.hpp"
#include "metrics/trace_recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/periodic.hpp"

namespace pas::hv {

struct HostConfig {
  cpu::FrequencyLadder ladder = cpu::FrequencyLadder::paper_default();
  /// Scheduling quantum (Xen credit runs 10 ms ticks).
  common::SimTime quantum = common::msec(10);
  /// Load-monitor window and smoothing depth (paper footnote 5: average of
  /// three successive utilizations).
  common::SimTime monitor_window = common::seconds(1);
  std::size_t monitor_depth = 3;
  /// Stride between trace samples; 0 disables tracing.
  common::SimTime trace_stride = common::seconds(10);
  cpu::PowerModel power = cpu::PowerModel::desktop_2008();
  common::SimTime cpufreq_transition_latency = common::usec(50);
  /// Optional true-speed override installed into the CPU model (see
  /// cpu::CpuModel::set_speed_override; used by calibration's turbo
  /// machines).
  cpu::CpuModel::SpeedFn speed_override;
  /// Event-driven fast path (see file header). Produces identical
  /// simulation results; disable only for reference slow-stepped runs
  /// (regression tests, perf baselines).
  bool event_driven_fast_path = true;
};

class Host {
 public:
  Host(HostConfig config, std::unique_ptr<Scheduler> scheduler);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Adds a VM and returns its dense id. Callable before the first
  /// run_until AND between segments of a running host (a cluster creating
  /// a migration/recovery slot lazily): the mid-run path grows the
  /// runnable-tracking arrays, widens the trace recorder (historical rows
  /// pad with zeros) and re-seats the controller view. Like every
  /// cross-host mutation, it must wait for the segment boundary — calling
  /// it while the host is advancing throws.
  common::VmId add_vm(VmConfig config, std::unique_ptr<wl::Workload> workload);

  /// Installs a DVFS governor (optional — PAS runs without one).
  void set_governor(std::unique_ptr<gov::Governor> governor);

  /// Installs a credit/DVFS controller (the PAS hook; optional).
  void set_controller(std::unique_ptr<Controller> controller);

  /// Advances simulation to absolute time `until`.
  void run_until(common::SimTime until);

  /// Earliest future instant at which this host can perform observable
  /// work, or now() when that cannot be proven. A return beyond now()
  /// is a *quiescence certificate*: the host is provably inert — no
  /// runnable VM, no expired transition hint, no governor/controller,
  /// scheduler credits at their refill fixed point, monitor reading
  /// all-zero — until the earliest workload self-transition hint. The
  /// sparse cluster driver (Cluster::advance_hosts) dispatches a host
  /// only when this falls at or before the segment target and bulk-skips
  /// it otherwise. The certificate is cached and invalidated by every
  /// mutation hatch (run_until, add_vm, notify_workload_changed, the
  /// non-const accessors), so calling this per segment is O(1) for an
  /// undisturbed idle host.
  [[nodiscard]] common::SimTime next_activity_time();

  /// Bulk-advances a quiescent host to `target`, byte-identical to
  /// run_until(target): the exact energy chunks the reference loop would
  /// record (one per merged periodic-fire instant), the exact trace rows
  /// (bulk zero-fill at the trace stride), the exact relative (time, seq)
  /// order of the re-armed periodic events. Precondition:
  /// next_activity_time() >= target; falls back to run_until(target)
  /// when the certificate does not cover the span, so misuse costs time,
  /// never correctness.
  void skip_idle_to(common::SimTime target);

  /// Replaces a VM slot's workload and returns the previous one — the
  /// mechanism behind live migration: the cluster layer detaches a guest
  /// from its source slot (parking an idle placeholder there) and attaches
  /// it into a slot on the destination host. Callable between run_until
  /// calls only (hosts in a cluster are always synchronized to a common
  /// instant at that point); calling it mid-advance throws std::logic_error
  /// — the no-shared-state contract. The fast path's cached runnable state for the
  /// slot is invalidated, so the next quantum re-polls the new workload
  /// exactly as the slow-stepped loop would.
  std::unique_ptr<wl::Workload> swap_workload(common::VmId id,
                                              std::unique_ptr<wl::Workload> replacement);

  /// Declares that a workload's state was changed externally (work injected
  /// into a hypervisor agent, a profile rewritten): the fast path drops its
  /// cached runnable flag and transition hint for the slot and re-polls at
  /// the next quantum. No-op in reference mode, which re-polls everything
  /// anyway.
  void notify_workload_changed(common::VmId id);

  // --- accessors ---
  [[nodiscard]] common::SimTime now() const { return now_; }
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
  [[nodiscard]] const Vm& vm(common::VmId id) const { return vms_.at(id); }
  // The non-const accessors are mutation hatches (migration credit moves,
  // the cluster manager's DVFS requests, calibration overrides), so each
  // drops the cached quiescence certificate — see next_activity_time().
  [[nodiscard]] wl::Workload& workload(common::VmId id) {
    activity_dirty_ = true;
    return *vms_.at(id).workload;
  }
  [[nodiscard]] Scheduler& scheduler() {
    activity_dirty_ = true;
    return *scheduler_;
  }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] cpu::Cpufreq& cpufreq() {
    activity_dirty_ = true;
    return cpufreq_;
  }
  [[nodiscard]] const cpu::CpuModel& cpu() const { return cpu_; }
  [[nodiscard]] cpu::CpuModel& cpu_mutable() {
    activity_dirty_ = true;
    return cpu_;
  }
  [[nodiscard]] const metrics::LoadMonitor& monitor() const { return monitor_; }
  [[nodiscard]] const metrics::EnergyMeter& energy() const { return energy_; }
  [[nodiscard]] const metrics::TraceRecorder& trace() const { return *trace_; }
  [[nodiscard]] gov::Governor* governor() { return governor_.get(); }
  [[nodiscard]] Controller* controller() { return controller_.get(); }
  /// Total CPU-idle time so far.
  [[nodiscard]] common::SimTime idle_time() const { return idle_total_; }
  /// Fraction of the current monitor window each VM spent wanting the CPU
  /// (running or runnable); ~1 means saturated. Index = VmId.
  [[nodiscard]] double window_wanting_fraction(common::VmId id) const;
  /// Saturation flag captured at the close of the last monitor window.
  [[nodiscard]] bool vm_saturated_last_window(common::VmId id) const;

 private:
  /// How the last quantum's scheduling loop ended; drives the fast path.
  /// A quantum whose tail found no pickable VM leaves the host in a state
  /// that cannot change until the next event or workload transition — the
  /// license to skip time.
  enum class IdleTail {
    kNone,        // the slice was filled with picked work
    kNoRunnable,  // the loop stopped because nothing was runnable
    kOverCap,     // runnable VMs remained but every one was over its cap
  };

  void install_periodic_tasks();
  void run_quantum(common::SimTime slice_end);
  /// Re-polls workloads whose transition hint expired (or that just ran)
  /// and rebuilds `active_ids_` when membership changed. `advance_runnable`
  /// additionally advances still-runnable workloads to now_ — required
  /// before a quantum that may consume them, unnecessary for a pure
  /// membership check (the skip validation).
  void refresh_workloads(bool advance_runnable = true);
  /// Earliest instant any workload may change runnable-state on its own.
  [[nodiscard]] common::SimTime earliest_transition_hint() const;
  /// First quantum boundary on the grid anchored at now_ at or after
  /// `hint` — where the slow-stepped loop would next poll the workloads.
  [[nodiscard]] common::SimTime next_poll_boundary(common::SimTime hint) const;
  /// Jumps `now_` across provably idle quanta (fast path).
  void skip_idle_time(common::SimTime until);
  /// Recomputes the quiescence certificate (see next_activity_time()).
  [[nodiscard]] common::SimTime compute_next_activity() const;
  void close_monitor_window(common::SimTime now);
  void governor_tick(common::SimTime now);
  void controller_tick(common::SimTime now);
  void trace_tick(common::SimTime now);

  HostConfig cfg_;
  cpu::CpuModel cpu_;
  cpu::Cpufreq cpufreq_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<gov::Governor> governor_;
  std::unique_ptr<Controller> controller_;

  std::vector<Vm> vms_;
  std::vector<common::VmId> vm_ids_;
  std::vector<common::Percent> initial_credits_;
  std::vector<bool> saturated_last_window_;
  HostView view_;

  metrics::LoadMonitor monitor_;
  metrics::EnergyMeter energy_;
  std::unique_ptr<metrics::TraceRecorder> trace_;

  sim::EventQueue events_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
  bool tasks_installed_ = false;
  /// Index of the trace-sampling task within tasks_ (the only periodic
  /// whose firing writes anywhere during a bulk skip), or npos.
  std::size_t trace_task_index_ = static_cast<std::size_t>(-1);

  // Cached quiescence certificate (next_activity_time). Dropped by every
  // mutation hatch; only read/written between segments on the
  // coordinating thread, so a plain bool is race-free.
  common::SimTime activity_cache_{};
  bool activity_dirty_ = true;

  // Scratch for skip_idle_to's periodic-fire merge (allocation-free after
  // the first skip).
  struct SkipEntry {
    common::SimTime due;
    common::SimTime period;
    std::uint64_t seq = 0;   // simulated insertion sequence
    std::size_t task = 0;    // index into tasks_
    bool fired = false;
  };
  std::vector<SkipEntry> skip_entries_;
  std::vector<common::SimTime> skip_trace_times_;
  // True while run_until is in flight; guards the no-shared-state contract
  // (external mutators throw instead of racing a possibly-parallel segment).
  // Atomic because the violation it exists to catch IS a cross-thread race —
  // a plain bool would make the detection itself undefined. Relaxed order
  // suffices: correct runs only touch it from one thread at a time (the
  // pool barrier sequences segments), and for a violating run any
  // detection is best-effort by nature.
  std::atomic<bool> advancing_{false};
  common::SimTime now_{};
  common::SimTime idle_total_{};

  // Governor bookkeeping: cumulative busy at the previous governor sample.
  common::SimTime gov_last_sample_time_{};
  common::SimTime gov_last_cum_busy_{};

  // --- incremental runnable tracking (fast path) ---
  // Cached runnable() per VM, the workload's next self-transition hint, and
  // a "consumed last quantum" flag forcing a re-poll.
  std::vector<std::uint8_t> wl_runnable_;
  std::vector<common::SimTime> wl_hint_;
  std::vector<std::uint8_t> wl_ran_;
  std::vector<common::VmId> active_ids_;  // runnable VMs, ascending id
  bool active_dirty_ = true;
  // Aggregates over the per-VM flags, letting refresh_workloads prove the
  // full scan a no-op in O(1): any_ran_ is true while some wl_ran_ flag is
  // set, hint_floor_ is a lower bound on every wl_hint_. With no consumed
  // slot and no expired hint the scan would only deliver arrivals to
  // still-runnable VMs — so only the active list is walked.
  bool any_ran_ = true;
  common::SimTime hint_floor_{};

  // Set by run_quantum: how its scheduling loop ended, and — for an
  // over-cap tail — the exact runnable set the scheduler rejected (the
  // skip is only valid while that set is unchanged).
  IdleTail idle_tail_ = IdleTail::kNone;
  std::vector<common::VmId> idle_break_set_;

  // Scratch for the quantum loop (active minus blocked-this-slice).
  std::vector<common::VmId> runnable_scratch_;

  // Scratch for trace_tick (reused; keeps sampling allocation-free).
  std::vector<double> trace_scratch_global_, trace_scratch_absolute_,
      trace_scratch_credit_, trace_scratch_saturated_;
};

}  // namespace pas::hv
