// Trace-replay workloads: recorded demand series fed back through the
// Workload interface — real (or previously simulated) hosting-center load
// curves as first-class scenarios next to the synthetic mixes.
//
// A trace is a step function over simulated time: point i says "between
// t_i and t_{i+1} the guest demanded demand_pct percent of the
// max-frequency processor" (the same unit metrics::LoadMonitor records as
// absolute load, so a recorded run re-emits directly as a trace — see
// metrics/trace_export.hpp). TraceReplay delivers each interval's work as
// a batch when the interval opens and exposes an HONEST
// next_transition_time — the next trace point that delivers work — so the
// host's event-driven fast path skips straight between trace points and
// stays byte-identical to the slow-stepped loop.
//
// File format (CSV via common::CsvTable; CRLF/quoted-field tolerant,
// errors carry file:line):
//
//     t_sec,demand_pct[,memory_mb]
//     0,12.5
//     10,40.25,512
//     ...
//     3600,0
//
// Timestamps strictly increase; demands are non-negative; the final
// point's demand must be 0 — it closes the last interval, after which the
// workload idles forever (next_transition_time = kNoTransition).
// Serialization resolution is 1e-6 (microsecond timestamps, micro-percent
// demands): save() and load() round-trip exactly for traces on that grid,
// which everything the exporter emits is.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/workload.hpp"

namespace pas::wl {

struct TracePoint {
  common::SimTime t;
  /// Demand over [t, next point's t), in percent of the max-frequency
  /// processor (the unit of metrics::LoadMonitor's absolute load).
  double demand_pct = 0.0;
  /// Optional guest memory footprint at this instant (0 = not recorded).
  double memory_mb = 0.0;

  bool operator==(const TracePoint&) const = default;
};

/// A validated, immutable demand series. Construction (from memory or a
/// file) enforces the format invariants so every consumer — TraceReplay,
/// the scenario builder, the bench — can trust the shape.
class Trace {
 public:
  /// Validates and adopts `points`: non-empty, strictly increasing
  /// non-negative timestamps, non-negative finite demands and memory, and
  /// a final demand of 0. Throws std::invalid_argument naming the
  /// offending index otherwise. `name` labels the trace in errors and
  /// scenario listings (a file stem, "synthetic", ...).
  explicit Trace(std::vector<TracePoint> points, std::string name = "trace");

  /// Parses CSV text (header `t_sec,demand_pct[,memory_mb]`). Errors are
  /// prefixed `origin:line:`.
  [[nodiscard]] static Trace parse(std::string_view text,
                                   const std::string& origin = "<memory>");

  /// Loads one trace file; the trace is named by the file's stem.
  [[nodiscard]] static Trace load(const std::string& path);

  /// Loads every `*.csv` in `dir`, sorted by filename (deterministic trace
  /// ids for per-VM assignment). Throws if the directory has none.
  [[nodiscard]] static std::vector<Trace> load_dir(const std::string& dir);

  /// Renders the trace back to CSV (the format parse() reads; %.6f cells,
  /// memory column included only when the trace carries one).
  [[nodiscard]] std::string to_csv() const;
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<TracePoint>& points() const { return points_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool has_memory() const { return has_memory_; }
  /// Demand step value at `t` (0 before the first point and from the last
  /// point on — the final demand is validated to be 0).
  [[nodiscard]] double demand_pct_at(common::SimTime t) const;
  /// Work demanded by interval i ([t_i, t_{i+1})); 0 for the last point.
  [[nodiscard]] common::Work interval_work(std::size_t i) const;
  /// Sum of every interval's work.
  [[nodiscard]] common::Work total_work() const { return total_work_; }
  [[nodiscard]] double peak_demand_pct() const { return peak_demand_; }
  [[nodiscard]] double peak_memory_mb() const { return peak_memory_; }
  /// Timestamp of the final (demand-0) point: the replay is idle from here.
  [[nodiscard]] common::SimTime end_time() const { return points_.back().t; }

  bool operator==(const Trace&) const = default;

 private:
  std::vector<TracePoint> points_;
  std::string name_;
  bool has_memory_ = false;
  common::Work total_work_{};
  double peak_demand_ = 0.0;
  double peak_memory_ = 0.0;
};

/// Replays a Trace through the Workload interface. Interval i's work
/// arrives as a batch when advance_to crosses t_i (a pure function of the
/// crossed point set, so coarsened advance_to patterns deliver
/// identically); the guest then wants the CPU until the batch is drained.
/// Demand the scheduler never serves accumulates — a replay against an
/// undersized host stays honest about the backlog.
class TraceReplay final : public Workload {
 public:
  explicit TraceReplay(Trace trace);

  void advance_to(common::SimTime now) override;
  [[nodiscard]] bool runnable() const override { return pending_ > common::Work{}; }
  common::Work consume(common::SimTime now, common::Work budget) override;
  /// Every work-delivering point crossed and the backlog drained. Trailing
  /// zero-demand points don't matter: the host may never advance an idle
  /// workload again (that is the fast path's whole point).
  [[nodiscard]] bool finished() const override {
    return next_idx_ >= work_end_idx_ && !runnable();
  }
  /// The next trace point that delivers work (skipping zero-demand
  /// intervals), or kNoTransition once the trace is exhausted — the hint
  /// that lets the fast path jump across idle gaps between trace points.
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime now) override;

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] common::Work pending() const { return pending_; }
  /// Work delivered by crossed trace points so far (demand side).
  [[nodiscard]] common::Work demand_delivered() const { return delivered_; }
  /// Work actually served by the scheduler so far (supply side).
  [[nodiscard]] common::Work total_consumed() const { return consumed_; }
  /// True once every work-delivering interval was delivered AND served (no
  /// backlog left).
  [[nodiscard]] bool fully_served() const { return finished(); }

 private:
  Trace trace_;
  std::size_t next_idx_ = 0;   // first point not yet delivered
  std::size_t work_end_idx_;   // 1 + index of the last work-delivering point
  common::Work pending_{};
  common::Work delivered_{};
  common::Work consumed_{};
};

/// Rounds a demand percentage to the serialization grid (1e-6): the
/// exporter quantizes so that measure → save → load → replay → measure →
/// save reproduces the file byte for byte (replay dust is orders of
/// magnitude below the grid).
[[nodiscard]] double quantize_demand_pct(double pct);

}  // namespace pas::wl
