// Additional synthetic workloads used by tests, calibration and examples.
#pragma once

#include <utility>

#include "common/units.hpp"
#include "workload/load_profile.hpp"
#include "workload/workload.hpp"

namespace pas::wl {

/// Always-runnable CPU hog (infinite demand). The canonical "thrashing"
/// load: the VM saturates whatever capacity the scheduler grants it.
class BusyLoop final : public Workload {
 public:
  BusyLoop() = default;
  void advance_to(common::SimTime now) override { now_ = now; }
  [[nodiscard]] bool runnable() const override { return true; }
  common::Work consume(common::SimTime /*now*/, common::Work budget) override {
    total_ += budget;
    return budget;
  }
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime /*now*/) override {
    return kNoTransition;  // always runnable
  }
  [[nodiscard]] common::Work total_consumed() const { return total_; }

 private:
  common::SimTime now_{};
  common::Work total_{};
};

/// Never-runnable workload (a fully idle guest).
class IdleGuest final : public Workload {
 public:
  void advance_to(common::SimTime /*now*/) override {}
  [[nodiscard]] bool runnable() const override { return false; }
  common::Work consume(common::SimTime /*now*/, common::Work /*budget*/) override {
    return common::Work{};
  }
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime /*now*/) override {
    return kNoTransition;  // never runnable
  }
};

/// A CPU hog gated by a profile: thrashing while the profile is non-zero,
/// idle otherwise. This is the paper's "thrashing load" shaped by the
/// three-phase execution profile — unlike WebApp there is no queue, so the
/// demand vanishes instantly when the phase ends.
class GatedBusyLoop final : public Workload {
 public:
  explicit GatedBusyLoop(LoadProfile gate) : gate_(std::move(gate)) {}
  void advance_to(common::SimTime now) override { now_ = now; }
  [[nodiscard]] bool runnable() const override { return gate_.at(now_) > 0.0; }
  common::Work consume(common::SimTime /*now*/, common::Work budget) override {
    total_ += budget;
    return budget;
  }
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime now) override {
    // Runnable-ness follows the gate exactly; it can only flip where the
    // profile has a step.
    return gate_.next_change_after(now, kNoTransition);
  }
  [[nodiscard]] common::Work total_consumed() const { return total_; }

 private:
  LoadProfile gate_;
  common::SimTime now_{};
  common::Work total_{};
};

}  // namespace pas::wl
