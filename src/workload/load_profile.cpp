#include "workload/load_profile.hpp"

#include <stdexcept>
#include <utility>

namespace pas::wl {

LoadProfile::LoadProfile(std::vector<Step> steps) : steps_(std::move(steps)) {
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (!(steps_[i - 1].start < steps_[i].start))
      throw std::invalid_argument("LoadProfile: steps must be strictly increasing");
  }
  for (const auto& s : steps_) {
    if (s.value < 0.0) throw std::invalid_argument("LoadProfile: negative value");
  }
}

LoadProfile LoadProfile::constant(double value) {
  return LoadProfile{{Step{common::usec(0), value}}};
}

LoadProfile LoadProfile::pulse(common::SimTime active_from, common::SimTime active_until,
                               double value) {
  if (!(active_from < active_until))
    throw std::invalid_argument("LoadProfile::pulse: empty active interval");
  return LoadProfile{{Step{active_from, value}, Step{active_until, 0.0}}};
}

double LoadProfile::at(common::SimTime t) const {
  double v = 0.0;
  for (const auto& s : steps_) {
    if (s.start <= t) {
      v = s.value;
    } else {
      break;
    }
  }
  return v;
}

common::SimTime LoadProfile::next_change_after(common::SimTime t,
                                               common::SimTime horizon) const {
  for (const auto& s : steps_) {
    if (s.start > t) return s.start < horizon ? s.start : horizon;
  }
  return horizon;
}

}  // namespace pas::wl
