// Web-app: the paper's interactive workload — a Joomla CMS server loaded by
// httperf (§5.1). We model what matters for the scheduling experiments: an
// OPEN-LOOP request generator (httperf keeps sending at the configured rate
// whether or not the server keeps up) feeding a CPU-bound service queue.
//
// The paper's two load intensities map to the request rate:
//  * exact load    — rate * cost = 100 % of the VM's credited capacity at
//                    the maximum frequency, and no more;
//  * thrashing load — rate * cost exceeds the VM's capacity (the VM will
//                    saturate whatever the scheduler lets it have).
#pragma once

#include <cstdint>
#include <deque>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "workload/load_profile.hpp"
#include "workload/workload.hpp"

namespace pas::wl {

struct WebAppConfig {
  /// CPU cost of one request in max-frequency work. 10 ms of max-frequency
  /// CPU per request is Joomla-plausible and keeps queues in sane ranges.
  common::Work request_cost = common::mf_usec(10'000);
  /// Relative stddev of per-request cost (PHP requests are not uniform);
  /// 0 disables jitter.
  double cost_jitter = 0.10;
  /// Deterministic arrivals (exactly periodic) instead of Poisson. The
  /// paper's httperf injector is near-periodic; Poisson adds realism for
  /// governor-stability experiments.
  bool poisson = true;
  /// Max queued requests; beyond this the server drops (connection refused).
  std::size_t queue_capacity = 10'000;
  std::uint64_t seed = 1;
};

class WebApp final : public Workload {
 public:
  /// `rate_profile` gives the request rate in requests/second over time.
  WebApp(LoadProfile rate_profile, WebAppConfig config);

  void advance_to(common::SimTime now) override;
  [[nodiscard]] bool runnable() const override { return !queue_.empty(); }
  common::Work consume(common::SimTime now, common::Work budget) override;
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime now) override;

  // --- Service statistics (SLA metrics) ---
  [[nodiscard]] std::uint64_t arrived() const { return arrived_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// Response-time statistics over completed requests (seconds).
  [[nodiscard]] const common::RunningStats& latency_sec() const { return latency_sec_; }
  /// Total work injected so far (arrived * cost) — the demand side.
  [[nodiscard]] common::Work demand_generated() const { return demand_; }
  /// Total work served so far — the supply side.
  [[nodiscard]] common::Work work_served() const { return served_; }

  /// Request rate (req/s) that generates `demand_pct` percent of the
  /// max-frequency processor as CPU demand, for a given per-request cost.
  [[nodiscard]] static double rate_for_demand(common::Percent demand_pct, common::Work cost);

 private:
  struct Request {
    common::SimTime arrival;
    common::Work remaining;
  };

  void generate_arrivals(common::SimTime until);
  /// Draws the next inter-arrival gap (once) for the current segment.
  void arm_arrival(double rate);

  LoadProfile rate_;
  WebAppConfig cfg_;
  common::Rng rng_;
  common::SimTime clock_{};        // arrivals generated up to here
  common::SimTime next_arrival_{};  // candidate arrival instant (valid in a segment)
  bool arrival_pending_ = false;

  std::deque<Request> queue_;
  std::uint64_t arrived_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  common::Work demand_{};
  common::Work served_{};
  common::RunningStats latency_sec_;
};

}  // namespace pas::wl
