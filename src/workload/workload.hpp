// Workload interface: what a guest OS does with the CPU time it is given.
//
// The hypervisor host drives workloads through three calls per scheduling
// quantum: advance_to (deliver arrivals / phase changes up to `now`),
// runnable (does the VM want the CPU right now?), and consume (the VM ran
// and may perform up to `budget` units of work).
//
// Work is expressed in max-frequency units (see common/units.hpp), so a
// workload is frequency-oblivious — exactly like a real guest, which only
// notices DVFS through how little it gets done per wall second.
#pragma once

#include <cstdint>
#include <limits>

#include "common/units.hpp"

namespace pas::wl {

/// Sentinel for next_transition_time(): the workload's runnable state never
/// changes on its own (only consume() can change it, which the host sees).
inline constexpr common::SimTime kNoTransition{
    std::numeric_limits<std::int64_t>::max()};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Advances workload-internal state (request arrivals, phase boundaries)
  /// to time `now`, with monotonically non-decreasing `now`. The host calls
  /// this at quantum granularity while the VM is active, but may *coarsen*
  /// the call pattern while the VM is provably idle — implementations must
  /// make advance_to(a); advance_to(b) indistinguishable from advance_to(b)
  /// (deliver the same arrivals with the same timestamps, draw the same RNG
  /// sequence).
  virtual void advance_to(common::SimTime now) = 0;

  /// True if the VM has CPU work pending at the last advanced-to instant.
  [[nodiscard]] virtual bool runnable() const = 0;

  /// The VM was scheduled at `now` and may perform up to `budget` work.
  /// Returns the work actually performed (< budget iff the VM ran out of
  /// pending work mid-slice and blocked).
  virtual common::Work consume(common::SimTime now, common::Work budget) = 0;

  /// True once the workload will never become runnable again (pi-app after
  /// completing its computation). Open-loop servers never finish.
  [[nodiscard]] virtual bool finished() const { return false; }

  /// Lower bound on the next instant at which runnable() may change value
  /// on its own — i.e. through advance_to() alone, with no intervening
  /// consume(). This is the host's license to skip simulated time while the
  /// CPU idles: it will not re-poll this workload before the returned
  /// instant. kNoTransition means "never"; returning `now` (or any earlier
  /// time) means "unknown", which makes the host re-poll every quantum —
  /// always safe, never wrong. The bound may be conservative (early), never
  /// late. Non-const because open-loop generators may pre-draw their next
  /// arrival to answer (the draw order is unchanged, so determinism holds).
  [[nodiscard]] virtual common::SimTime next_transition_time(common::SimTime now) {
    return now;  // unknown: the host re-polls every quantum
  }
};

}  // namespace pas::wl
