// Workload interface: what a guest OS does with the CPU time it is given.
//
// The hypervisor host drives workloads through three calls per scheduling
// quantum: advance_to (deliver arrivals / phase changes up to `now`),
// runnable (does the VM want the CPU right now?), and consume (the VM ran
// and may perform up to `budget` units of work).
//
// Work is expressed in max-frequency units (see common/units.hpp), so a
// workload is frequency-oblivious — exactly like a real guest, which only
// notices DVFS through how little it gets done per wall second.
#pragma once

#include "common/units.hpp"

namespace pas::wl {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Advances workload-internal state (request arrivals, phase boundaries)
  /// to time `now`. Called at least once per scheduling quantum, with
  /// monotonically non-decreasing `now`.
  virtual void advance_to(common::SimTime now) = 0;

  /// True if the VM has CPU work pending at the last advanced-to instant.
  [[nodiscard]] virtual bool runnable() const = 0;

  /// The VM was scheduled at `now` and may perform up to `budget` work.
  /// Returns the work actually performed (< budget iff the VM ran out of
  /// pending work mid-slice and blocked).
  virtual common::Work consume(common::SimTime now, common::Work budget) = 0;

  /// True once the workload will never become runnable again (pi-app after
  /// completing its computation). Open-loop servers never finish.
  [[nodiscard]] virtual bool finished() const { return false; }
};

}  // namespace pas::wl
