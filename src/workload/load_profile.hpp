// Piecewise-constant time profile.
//
// Encodes the paper's three-phase execution profile (§5.3): each VM is
// inactive, then active (receiving load from the injector), then inactive
// again. The profile maps simulated time to a scalar — for the web app it
// is the request rate in requests/second; 0 means inactive.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace pas::wl {

class LoadProfile {
 public:
  struct Step {
    common::SimTime start;  // value applies from here until the next step
    double value = 0.0;
  };

  /// Steps must be strictly increasing in start time; the value before the
  /// first step is 0. Throws std::invalid_argument otherwise.
  explicit LoadProfile(std::vector<Step> steps);

  /// Constant value from t = 0 onward.
  static LoadProfile constant(double value);

  /// The paper's inactive/active/inactive shape: `value` on
  /// [active_from, active_until), 0 elsewhere.
  static LoadProfile pulse(common::SimTime active_from, common::SimTime active_until,
                           double value);

  [[nodiscard]] double at(common::SimTime t) const;

  /// First profile change strictly after `t`, or `horizon` if none. Lets
  /// arrival generators integrate the rate segment by segment.
  [[nodiscard]] common::SimTime next_change_after(common::SimTime t,
                                                  common::SimTime horizon) const;

  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

}  // namespace pas::wl
