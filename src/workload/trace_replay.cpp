#include "workload/trace_replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/csv.hpp"

namespace pas::wl {

namespace {

[[noreturn]] void invalid(const std::string& name, std::size_t index, const std::string& what) {
  throw std::invalid_argument("Trace '" + name + "': point " + std::to_string(index) +
                              ": " + what);
}

std::string cell6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

Trace::Trace(std::vector<TracePoint> points, std::string name)
    : points_(std::move(points)), name_(std::move(name)) {
  if (points_.empty())
    throw std::invalid_argument("Trace '" + name_ + "': no points (empty trace)");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const TracePoint& p = points_[i];
    if (p.t.us() < 0) invalid(name_, i, "negative timestamp");
    if (i > 0 && !(points_[i - 1].t < p.t))
      invalid(name_, i, "timestamps must strictly increase (" +
                            common::to_string(p.t) + " after " +
                            common::to_string(points_[i - 1].t) + ")");
    if (!(p.demand_pct >= 0.0) || !std::isfinite(p.demand_pct))
      invalid(name_, i, "demand_pct must be finite and non-negative");
    if (!(p.memory_mb >= 0.0) || !std::isfinite(p.memory_mb))
      invalid(name_, i, "memory_mb must be finite and non-negative");
    if (p.memory_mb > 0.0) has_memory_ = true;
    peak_demand_ = std::max(peak_demand_, p.demand_pct);
    peak_memory_ = std::max(peak_memory_, p.memory_mb);
  }
  if (points_.back().demand_pct != 0.0)
    invalid(name_, points_.size() - 1,
            "final demand must be 0 (the last point closes the trace)");
  for (std::size_t i = 0; i < points_.size(); ++i) total_work_ += interval_work(i);
}

common::Work Trace::interval_work(std::size_t i) const {
  if (i + 1 >= points_.size()) return common::Work{};
  const double span_us = static_cast<double>((points_[i + 1].t - points_[i].t).us());
  return common::Work{points_[i].demand_pct / 100.0 * span_us};
}

double Trace::demand_pct_at(common::SimTime t) const {
  double v = 0.0;
  for (const TracePoint& p : points_) {
    if (p.t <= t)
      v = p.demand_pct;
    else
      break;
  }
  return v;
}

namespace {

Trace trace_from_table(const common::CsvTable& table) {
  const std::string& origin = table.origin();
  const auto t_col = table.column("t_sec");
  const auto d_col = table.column("demand_pct");
  if (!t_col || !d_col)
    throw std::runtime_error(origin +
                             ": trace header must name t_sec and demand_pct columns");
  const auto m_col = table.column("memory_mb");
  if (table.rows() == 0) throw std::runtime_error(origin + ": trace has no data rows");

  std::vector<TracePoint> points;
  points.reserve(table.rows());
  for (std::size_t r = 0; r < table.rows(); ++r) {
    TracePoint p;
    const double t_sec = table.number(r, *t_col);
    p.t = common::SimTime{std::llround(t_sec * 1e6)};
    p.demand_pct = table.number(r, *d_col);
    if (m_col) p.memory_mb = table.number(r, *m_col);
    if (!points.empty() && !(points.back().t < p.t))
      throw std::runtime_error(table.context(r) +
                               ": timestamps must strictly increase");
    points.push_back(p);
  }
  std::string name = origin;
  try {
    const std::filesystem::path path{origin};
    if (path.has_stem() && origin != "<memory>") name = path.stem().string();
  } catch (const std::exception&) {
    // keep the origin verbatim
  }
  try {
    return Trace{std::move(points), name};
  } catch (const std::invalid_argument& e) {
    // Re-anchor constructor diagnostics on the file for loader callers.
    throw std::runtime_error(origin + ": " + e.what());
  }
}

}  // namespace

Trace Trace::parse(std::string_view text, const std::string& origin) {
  return trace_from_table(common::CsvTable::parse(text, origin));
}

Trace Trace::load(const std::string& path) {
  return trace_from_table(common::CsvTable::load(path));
}

std::vector<Trace> Trace::load_dir(const std::string& dir) {
  std::vector<std::string> files;
  {
    std::error_code ec;
    std::filesystem::directory_iterator it{dir, ec};
    if (ec) throw std::runtime_error("Trace: cannot read directory " + dir);
    for (const auto& entry : it)
      if (entry.is_regular_file() && entry.path().extension() == ".csv")
        files.push_back(entry.path().string());
  }
  // Directory iteration order is filesystem-dependent; sorted filenames
  // give deterministic trace ids for the per-VM assignment.
  std::sort(files.begin(), files.end());
  std::vector<Trace> traces;
  traces.reserve(files.size());
  for (const std::string& f : files) traces.push_back(load(f));
  if (traces.empty())
    throw std::runtime_error("Trace: no .csv traces in directory " + dir);
  return traces;
}

std::string Trace::to_csv() const {
  std::string out = has_memory_ ? "t_sec,demand_pct,memory_mb" : "t_sec,demand_pct";
  out += '\n';
  for (const TracePoint& p : points_) {
    out += cell6(static_cast<double>(p.t.us()) / 1e6);
    out += ',';
    out += cell6(p.demand_pct);
    if (has_memory_) {
      out += ',';
      out += cell6(p.memory_mb);
    }
    out += '\n';
  }
  return out;
}

void Trace::save(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("Trace: cannot write " + path);
  out << to_csv();
}

double quantize_demand_pct(double pct) { return std::round(pct * 1e6) / 1e6; }

TraceReplay::TraceReplay(Trace trace) : trace_(std::move(trace)) {
  work_end_idx_ = 0;
  for (std::size_t i = 0; i + 1 < trace_.points().size(); ++i)
    if (trace_.interval_work(i) > common::Work{}) work_end_idx_ = i + 1;
}

void TraceReplay::advance_to(common::SimTime now) {
  const auto& points = trace_.points();
  while (next_idx_ < points.size() && points[next_idx_].t <= now) {
    const common::Work batch = trace_.interval_work(next_idx_);
    pending_ += batch;
    delivered_ += batch;
    ++next_idx_;
  }
}

common::Work TraceReplay::consume(common::SimTime /*now*/, common::Work budget) {
  const common::Work done = std::min(budget, pending_);
  pending_ -= done;
  consumed_ += done;
  return done;
}

common::SimTime TraceReplay::next_transition_time(common::SimTime /*now*/) {
  // Runnable-ness changes through advance_to alone only when a crossed
  // point delivers work; zero-demand points are skipped so an idle gap is
  // one jump. (While runnable, pending can only grow — but a conservative
  // early hint is always legal, and the host only consults the hint when
  // the VM idles.)
  const auto& points = trace_.points();
  for (std::size_t i = next_idx_; i + 1 < points.size(); ++i)
    if (trace_.interval_work(i) > common::Work{}) return points[i].t;
  return kNoTransition;
}

}  // namespace pas::wl
