// pi-app: the paper's CPU-bound batch workload (§5.1).
//
// "when we aim at measuring an execution time, we use an application which
// computes an approximation of pi" — semantically, a fixed amount of pure
// CPU work whose completion time is the measurement. Used by Fig. 1
// (compensation sweep) and Table 2 (platform comparison).
#pragma once

#include <optional>

#include "common/units.hpp"
#include "workload/workload.hpp"

namespace pas::wl {

class PiApp final : public Workload {
 public:
  /// Performs `total` work, becoming runnable at `start`.
  PiApp(common::Work total, common::SimTime start = common::usec(0));

  void advance_to(common::SimTime now) override;
  [[nodiscard]] bool runnable() const override;
  common::Work consume(common::SimTime now, common::Work budget) override;
  [[nodiscard]] bool finished() const override { return remaining_ <= common::Work{}; }
  [[nodiscard]] common::SimTime next_transition_time(common::SimTime now) override {
    // Before the start instant the app is idle; afterwards runnable-ness
    // only changes by finishing, which happens inside consume().
    return now < start_ ? start_ : kNoTransition;
  }

  /// Completion instant (quantum precision), once finished.
  [[nodiscard]] std::optional<common::SimTime> completion_time() const { return completed_at_; }
  [[nodiscard]] common::Work remaining() const { return remaining_; }
  [[nodiscard]] common::Work total() const { return total_; }

 private:
  common::Work total_;
  common::Work remaining_;
  common::SimTime start_;
  common::SimTime now_{};
  std::optional<common::SimTime> completed_at_;
};

}  // namespace pas::wl
