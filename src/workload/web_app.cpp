#include "workload/web_app.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace pas::wl {

namespace {

constexpr common::SimTime kFarFuture = common::seconds(1'000'000'000);

common::SimTime from_seconds(double s) {
  return common::usec(static_cast<std::int64_t>(std::ceil(s * 1e6)));
}

}  // namespace

WebApp::WebApp(LoadProfile rate_profile, WebAppConfig config)
    : rate_(std::move(rate_profile)), cfg_(config), rng_(config.seed) {
  assert(cfg_.request_cost.mfus() > 0.0);
}

double WebApp::rate_for_demand(common::Percent demand_pct, common::Work cost) {
  assert(cost.mfus() > 0.0);
  // demand_pct % of the max-frequency processor equals demand_pct/100
  // max-frequency seconds of work per wall second.
  return (demand_pct / 100.0) * 1e6 / cost.mfus();
}

void WebApp::arm_arrival(double rate) {
  const double mean_gap_s = 1.0 / rate;
  const double wait_s = cfg_.poisson ? rng_.exponential(mean_gap_s) : mean_gap_s;
  next_arrival_ = clock_ + from_seconds(wait_s);
  arrival_pending_ = true;
}

void WebApp::generate_arrivals(common::SimTime until) {
  while (clock_ < until) {
    const double rate = rate_.at(clock_);
    const common::SimTime change = rate_.next_change_after(clock_, kFarFuture);

    if (rate <= 0.0) {
      clock_ = std::min(change, until);
      arrival_pending_ = false;
      continue;
    }

    if (!arrival_pending_) arm_arrival(rate);

    const common::SimTime seg_end = std::min(change, until);
    if (next_arrival_ <= seg_end) {
      clock_ = next_arrival_;
      arrival_pending_ = false;
      ++arrived_;
      common::Work cost = cfg_.request_cost;
      if (cfg_.cost_jitter > 0.0) {
        const double factor = std::max(
            0.1, rng_.normal(1.0, cfg_.cost_jitter));
        cost = cost * factor;
      }
      demand_ += cost;
      if (queue_.size() >= cfg_.queue_capacity) {
        ++dropped_;
      } else {
        queue_.push_back(Request{clock_, cost});
      }
    } else if (change <= until) {
      // Rate boundary before the pending arrival: restart the arrival
      // process in the new segment (exact for Poisson — memoryless).
      clock_ = change;
      arrival_pending_ = false;
    } else {
      // Nothing more happens inside this advance window; keep the pending
      // arrival armed for the next call.
      clock_ = until;
    }
  }
}

void WebApp::advance_to(common::SimTime now) { generate_arrivals(now); }

common::SimTime WebApp::next_transition_time(common::SimTime now) {
  // With work queued, runnable() can only flip through consume().
  if (!queue_.empty()) return kNoTransition;
  assert(clock_ >= now);  // advance_to(now) has already delivered arrivals
  (void)now;
  // Queue empty: the next transition is the next arrival. Walk the
  // generator state without enqueuing anything.
  const common::SimTime change = rate_.next_change_after(clock_, kNoTransition);
  const double rate = rate_.at(clock_);
  if (rate <= 0.0) return change;  // nothing can arrive before the rate turns on
  // Pre-draw the pending arrival if generate_arrivals has not already; this
  // is the identical draw it would make at the same point in the RNG
  // sequence, so the arrival process is unchanged.
  if (!arrival_pending_) arm_arrival(rate);
  // A rate step before the pending arrival discards and re-draws it, so the
  // conservative bound is whichever instant comes first.
  return std::min(next_arrival_, change);
}

common::Work WebApp::consume(common::SimTime now, common::Work budget) {
  common::Work consumed{};
  while (budget > common::Work{} && !queue_.empty()) {
    Request& head = queue_.front();
    if (head.remaining <= budget) {
      budget -= head.remaining;
      consumed += head.remaining;
      served_ += head.remaining;
      ++completed_;
      latency_sec_.add((now - head.arrival).sec());
      queue_.pop_front();
    } else {
      head.remaining -= budget;
      consumed += budget;
      served_ += budget;
      budget = common::Work{};
    }
  }
  return consumed;
}

}  // namespace pas::wl
