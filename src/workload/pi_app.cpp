#include "workload/pi_app.hpp"

#include <algorithm>
#include <cassert>

namespace pas::wl {

PiApp::PiApp(common::Work total, common::SimTime start)
    : total_(total), remaining_(total), start_(start) {
  assert(total.mfus() > 0.0);
}

void PiApp::advance_to(common::SimTime now) { now_ = now; }

bool PiApp::runnable() const { return now_ >= start_ && !finished(); }

common::Work PiApp::consume(common::SimTime now, common::Work budget) {
  if (!runnable()) return common::Work{};
  const common::Work done = std::min(budget, remaining_);
  remaining_ -= done;
  if (finished() && !completed_at_) completed_at_ = now;
  return done;
}

}  // namespace pas::wl
