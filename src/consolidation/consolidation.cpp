#include "consolidation/consolidation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/compensation.hpp"

namespace pas::consolidation {

double packing_cost(const HostSpec& host) {
  return host.power.idle_watts() / std::max(1e-9, host.memory_mb);
}

bool numa_spills(const VmSpec& vm, const HostSpec& host) {
  if (host.numa_nodes <= 1) return false;
  return vm.memory_mb > host.memory_mb / static_cast<double>(host.numa_nodes);
}

double effective_credit_pct(const VmSpec& vm, const HostSpec& host) {
  return vm.credit * (1.0 + (numa_spills(vm, host) ? host.numa_spill_penalty : 0.0));
}

Placement place_ffd(const std::vector<VmSpec>& vms, const std::vector<HostSpec>& hosts,
                    const FfdOptions& options) {
  for (const auto& vm : vms) {
    if (vm.memory_mb < 0 || vm.credit < 0 || vm.cpu_demand_pct < 0)
      throw std::invalid_argument("place_ffd: negative VM resource");
  }
  for (const auto& h : hosts) {
    if (h.numa_nodes == 0)
      throw std::invalid_argument("place_ffd: host needs at least one NUMA node");
    if (h.numa_spill_penalty < 0)
      throw std::invalid_argument("place_ffd: negative NUMA spill penalty");
  }

  // Sort VM indices by memory, decreasing (classic FFD on the binding
  // dimension).
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (vms[a].memory_mb != vms[b].memory_mb) return vms[a].memory_mb > vms[b].memory_mb;
    return a < b;  // stable, deterministic
  });

  // Candidate order over hosts: efficient-first sorts by idle watts per MB
  // (packing_cost), ties broken by index — a uniform fleet ties everywhere,
  // so the order (and thus the placement) is exactly classic first-fit.
  std::vector<std::size_t> host_order(hosts.size());
  std::iota(host_order.begin(), host_order.end(), 0);
  if (options.efficient_first) {
    std::sort(host_order.begin(), host_order.end(), [&](std::size_t a, std::size_t b) {
      const double ca = packing_cost(hosts[a]);
      const double cb = packing_cost(hosts[b]);
      if (ca != cb) return ca < cb;
      return a < b;  // stable, deterministic
    });
  }

  std::vector<double> mem_left;
  std::vector<double> credit_left;
  mem_left.reserve(hosts.size());
  credit_left.reserve(hosts.size());
  for (const auto& h : hosts) {
    mem_left.push_back(h.memory_mb);
    credit_left.push_back(h.cpu_capacity_pct);
  }

  Placement p;
  p.assignment.assign(vms.size(), kUnplaced);
  for (const std::size_t vi : order) {
    const VmSpec& vm = vms[vi];
    for (const std::size_t hi : host_order) {
      const double credit_needed = effective_credit_pct(vm, hosts[hi]);
      if (vm.memory_mb <= mem_left[hi] && credit_needed <= credit_left[hi]) {
        mem_left[hi] -= vm.memory_mb;
        credit_left[hi] -= credit_needed;
        p.assignment[vi] = hi;
        break;
      }
    }
    if (p.assignment[vi] == kUnplaced) ++p.unplaced;
  }

  for (std::size_t hi = 0; hi < hosts.size(); ++hi) {
    if (mem_left[hi] < hosts[hi].memory_mb || credit_left[hi] < hosts[hi].cpu_capacity_pct) {
      ++p.hosts_used;
    }
  }
  return p;
}

ClusterOutcome evaluate(const Placement& placement, const std::vector<VmSpec>& vms,
                        const std::vector<HostSpec>& hosts, bool allow_unplaced) {
  if (placement.assignment.size() != vms.size())
    throw std::invalid_argument("evaluate: placement does not match VM list");

  ClusterOutcome out;
  out.hosts.resize(hosts.size());

  for (std::size_t vi = 0; vi < vms.size(); ++vi) {
    const std::size_t hi = placement.assignment[vi];
    if (hi == kUnplaced) {
      if (!allow_unplaced)
        throw std::invalid_argument(
            "evaluate: placement leaves \"" + vms[vi].name +
            "\" unplaced; pass allow_unplaced and handle ClusterOutcome::unplaced_vms");
      out.unplaced_vms.push_back(vi);
      out.unplaced_credit_pct += vms[vi].credit;
      out.unplaced_demand_pct += vms[vi].cpu_demand_pct;
      out.unplaced_memory_mb += vms[vi].memory_mb;
      continue;
    }
    if (hi >= hosts.size()) throw std::invalid_argument("evaluate: bad host index");
    HostOutcome& h = out.hosts[hi];
    h.powered_on = true;
    // A NUMA-spilled VM pays its cross-node efficiency penalty in CPU: the
    // same guest work costs more cycles, so both the demand charged and the
    // credit reserved are inflated symmetrically with place_ffd's fit check.
    const bool spilled = numa_spills(vms[vi], hosts[hi]);
    const double inflate = 1.0 + (spilled ? hosts[hi].numa_spill_penalty : 0.0);
    if (spilled) {
      ++h.numa_spills;
      ++out.numa_spills;
    }
    h.cpu_load_pct += vms[vi].cpu_demand_pct * inflate;
    h.credit_reserved_pct += vms[vi].credit * inflate;
    h.memory_used_mb += vms[vi].memory_mb;
  }

  double load_sum = 0.0;
  for (std::size_t hi = 0; hi < hosts.size(); ++hi) {
    HostOutcome& h = out.hosts[hi];
    if (!h.powered_on) continue;
    ++out.hosts_on;
    load_sum += h.cpu_load_pct;

    // PAS operating point: lowest state whose capacity covers the load.
    const cpu::FrequencyLadder& ladder = hosts[hi].ladder;
    h.freq_index = core::compute_new_freq_index(ladder, h.cpu_load_pct);
    const double ratio = ladder.ratio(h.freq_index);
    // Utilization at the chosen state: the same work occupies a larger
    // share of a slower processor (eq. 1).
    const double util =
        std::min(1.0, h.cpu_load_pct / std::max(1e-9, ladder.capacity_pct(h.freq_index)));
    h.power_watts = hosts[hi].power.power_watts(ratio, util);
    const double util_max = std::min(1.0, h.cpu_load_pct / 100.0);
    h.power_max_freq_watts = hosts[hi].power.power_watts(1.0, util_max);

    out.total_power_watts += h.power_watts;
    out.total_power_max_freq_watts += h.power_max_freq_watts;
  }
  out.mean_active_load_pct =
      out.hosts_on > 0 ? load_sum / static_cast<double>(out.hosts_on) : 0.0;
  return out;
}

std::vector<HostSpec> fleet_from_classes(std::size_t count,
                                         const std::vector<HostSpec>& classes) {
  if (classes.empty())
    throw std::invalid_argument("fleet_from_classes: need at least one class");
  std::vector<HostSpec> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    HostSpec h = classes[i % classes.size()];
    h.name += "-" + std::to_string(i);
    fleet.push_back(std::move(h));
  }
  return fleet;
}

std::vector<HostSpec> uniform_fleet(std::size_t count, const HostSpec& spec) {
  return fleet_from_classes(count, {spec});
}

}  // namespace pas::consolidation
