#include "consolidation/host_book.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pas::consolidation {

HostBook::HostBook(FfdOptions options) : opt_(options) {}

bool HostBook::has_host(std::size_t id) const {
  return id < host_alive_.size() && host_alive_[id] != 0;
}

bool HostBook::has_vm(std::size_t id) const {
  return id < vm_alive_.size() && vm_alive_[id] != 0;
}

void HostBook::grow_host_arrays(std::size_t id) {
  if (id < host_alive_.size()) return;
  const std::size_t n = id + 1;
  host_alive_.resize(n, 0);
  host_mem_.resize(n, 0.0);
  host_cap_.resize(n, 0.0);
  host_penalty_.resize(n, 0.0);
  host_cost_.resize(n, 0.0);
  host_nodes_.resize(n, 1);
  host_dense_.resize(n, kUnplaced);
  old_mem_.resize(n, 0.0);
  old_cap_.resize(n, 0.0);
  new_mem_.resize(n, 0.0);
  new_cap_.resize(n, 0.0);
  div_flag_.resize(n, 0);
}

void HostBook::grow_vm_arrays(std::size_t id) {
  if (id < vm_alive_.size()) return;
  const std::size_t n = id + 1;
  vm_alive_.resize(n, 0);
  vm_mem_.resize(n, 0.0);
  vm_credit_.resize(n, 0.0);
  vm_dirty_.resize(n, 0);
  last_in_.resize(n, 0);
  last_mem_.resize(n, 0.0);
  last_credit_eff_.resize(n, 0.0);
  last_assign_.resize(n, kUnplaced);
  new_assign_.resize(n, kUnplaced);
  new_credit_.resize(n, 0.0);
}

void HostBook::add_host(std::size_t id, const HostSpec& spec) {
  if (spec.numa_nodes == 0)
    throw std::invalid_argument("HostBook: host needs at least one NUMA node");
  if (spec.numa_spill_penalty < 0)
    throw std::invalid_argument("HostBook: negative NUMA spill penalty");
  if (has_host(id)) throw std::invalid_argument("HostBook: add_host on a live host id");
  grow_host_arrays(id);
  host_alive_[id] = 1;
  host_mem_[id] = spec.memory_mb;
  host_cap_[id] = spec.cpu_capacity_pct;
  host_penalty_[id] = spec.numa_spill_penalty;
  host_nodes_[id] = spec.numa_nodes;
  host_cost_[id] = packing_cost(spec);
  host_rank_.emplace(host_cost_[id], id);
  active_hosts_.insert(
      std::lower_bound(active_hosts_.begin(), active_hosts_.end(), id), id);
  hosts_dirty_ = true;
}

void HostBook::remove_host(std::size_t id) {
  if (!has_host(id)) throw std::invalid_argument("HostBook: remove_host on unknown id");
  host_rank_.erase({host_cost_[id], id});
  active_hosts_.erase(
      std::lower_bound(active_hosts_.begin(), active_hosts_.end(), id));
  host_alive_[id] = 0;
  hosts_dirty_ = true;
}

void HostBook::update_host(std::size_t id, const HostSpec& spec) {
  if (!has_host(id)) throw std::invalid_argument("HostBook: update_host on unknown id");
  if (spec.numa_nodes == 0)
    throw std::invalid_argument("HostBook: host needs at least one NUMA node");
  if (spec.numa_spill_penalty < 0)
    throw std::invalid_argument("HostBook: negative NUMA spill penalty");
  host_rank_.erase({host_cost_[id], id});
  host_mem_[id] = spec.memory_mb;
  host_cap_[id] = spec.cpu_capacity_pct;
  host_penalty_[id] = spec.numa_spill_penalty;
  host_nodes_[id] = spec.numa_nodes;
  host_cost_[id] = packing_cost(spec);
  host_rank_.emplace(host_cost_[id], id);
  hosts_dirty_ = true;
}

void HostBook::mark_vm_dirty(std::size_t id) {
  if (vm_dirty_[id]) {
    ++stats_.coalesced_marks;
    return;
  }
  vm_dirty_[id] = 1;
  dirty_vms_.push_back(id);
}

void HostBook::add_vm(std::size_t id, const VmSpec& spec) {
  if (spec.memory_mb < 0 || spec.credit < 0 || spec.cpu_demand_pct < 0)
    throw std::invalid_argument("HostBook: negative VM resource");
  if (has_vm(id)) throw std::invalid_argument("HostBook: add_vm on a live VM id");
  grow_vm_arrays(id);
  vm_alive_[id] = 1;
  vm_mem_[id] = spec.memory_mb;
  vm_credit_[id] = spec.credit;
  active_vms_.insert(std::lower_bound(active_vms_.begin(), active_vms_.end(), id),
                     id);
  order_.insert(std::lower_bound(order_.begin(), order_.end(), id,
                                 [&](std::size_t elem, std::size_t vm) {
                                   return ffd_before(vm_mem_[elem], elem,
                                                     vm_mem_[vm], vm);
                                 }),
                id);
  mark_vm_dirty(id);
}

void HostBook::remove_vm(std::size_t id) {
  if (!has_vm(id)) throw std::invalid_argument("HostBook: remove_vm on unknown id");
  auto pos = std::lower_bound(order_.begin(), order_.end(), id,
                              [&](std::size_t elem, std::size_t vm) {
                                return ffd_before(vm_mem_[elem], elem,
                                                  vm_mem_[vm], vm);
                              });
  assert(pos != order_.end() && *pos == id);
  order_.erase(pos);
  active_vms_.erase(std::lower_bound(active_vms_.begin(), active_vms_.end(), id));
  vm_alive_[id] = 0;
  mark_vm_dirty(id);
}

void HostBook::update_vm(std::size_t id, const VmSpec& spec) {
  if (spec.memory_mb < 0 || spec.credit < 0 || spec.cpu_demand_pct < 0)
    throw std::invalid_argument("HostBook: negative VM resource");
  if (!has_vm(id)) throw std::invalid_argument("HostBook: update_vm on unknown id");
  // Re-key order_ under the OLD memory before the arena is overwritten.
  auto pos = std::lower_bound(order_.begin(), order_.end(), id,
                              [&](std::size_t elem, std::size_t vm) {
                                return ffd_before(vm_mem_[elem], elem,
                                                  vm_mem_[vm], vm);
                              });
  assert(pos != order_.end() && *pos == id);
  order_.erase(pos);
  vm_mem_[id] = spec.memory_mb;
  vm_credit_[id] = spec.credit;
  order_.insert(std::lower_bound(order_.begin(), order_.end(), id,
                                 [&](std::size_t elem, std::size_t vm) {
                                   return ffd_before(vm_mem_[elem], elem,
                                                     vm_mem_[vm], vm);
                                 }),
                id);
  mark_vm_dirty(id);
}

std::vector<std::size_t> HostBook::packing_order() const {
  std::vector<std::size_t> out;
  out.reserve(host_rank_.size());
  for (const auto& [cost, id] : host_rank_) out.push_back(id);
  return out;
}

bool HostBook::vm_spills(std::size_t vm, std::size_t host) const {
  if (host_nodes_[host] <= 1) return false;
  return vm_mem_[vm] > host_mem_[host] / static_cast<double>(host_nodes_[host]);
}

std::pair<std::size_t, double> HostBook::scan(std::size_t vm) const {
  const double mem = vm_mem_[vm];
  for (const std::size_t h : scan_order_) {
    const double needed =
        vm_credit_[vm] * (1.0 + (vm_spills(vm, h) ? host_penalty_[h] : 0.0));
    if (mem <= new_mem_[h] && needed <= new_cap_[h]) return {h, needed};
  }
  return {kUnplaced, 0.0};
}

void HostBook::touch(std::size_t h) {
  const bool div = old_mem_[h] != new_mem_[h] || old_cap_[h] != new_cap_[h];
  if (div == (div_flag_[h] != 0)) return;
  div_flag_[h] = div ? 1 : 0;
  if (div)
    ++diverged_;
  else
    --diverged_;
}

void HostBook::replay_old(std::size_t vm) {
  ++stats_.vms_walked;
  assert(last_in_[vm]);
  const std::size_t h = last_assign_[vm];
  if (h == kUnplaced) return;
  old_mem_[h] -= last_mem_[vm];
  old_cap_[h] -= last_credit_eff_[vm];
  touch(h);
}

void HostBook::place_new(std::size_t vm) {
  ++stats_.vms_walked;
  ++stats_.vms_scanned;
  const auto [h, needed] = scan(vm);
  new_assign_[vm] = h;
  new_credit_[vm] = needed;
  if (h == kUnplaced) return;
  new_mem_[h] -= vm_mem_[vm];
  new_cap_[h] -= needed;
  touch(h);
}

void HostBook::rebuild_scan_order() {
  if (opt_.efficient_first) {
    scan_order_.clear();
    scan_order_.reserve(host_rank_.size());
    for (const auto& [cost, id] : host_rank_) scan_order_.push_back(id);
  } else {
    scan_order_ = active_hosts_;
  }
  for (std::size_t d = 0; d < active_hosts_.size(); ++d)
    host_dense_[active_hosts_[d]] = d;
}

void HostBook::full_replay() {
  rebuild_scan_order();
  for (const std::size_t h : active_hosts_) {
    new_mem_[h] = host_mem_[h];
    new_cap_[h] = host_cap_[h];
  }
  for (const std::size_t vm : order_) {
    ++stats_.vms_walked;
    ++stats_.vms_scanned;
    const auto [h, needed] = scan(vm);
    new_assign_[vm] = h;
    new_credit_[vm] = needed;
    if (h == kUnplaced) continue;
    new_mem_[h] -= vm_mem_[vm];
    new_cap_[h] -= needed;
  }
}

void HostBook::delta_replay() {
  for (const std::size_t h : active_hosts_) {
    old_mem_[h] = new_mem_[h] = host_mem_[h];
    old_cap_[h] = new_cap_[h] = host_cap_[h];
    div_flag_[h] = 0;
  }
  diverged_ = 0;

  // Merge the old and the new FFD sequences in key order. Clean entries
  // appear in both with the same key, so clean heads always pair up; a key
  // present on only one side belongs to a dirty (added/removed/re-specced)
  // VM, whose replay is what seeds — and later heals — divergence.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < last_order_.size() || j < order_.size()) {
    if (i == last_order_.size()) {
      place_new(order_[j++]);
      continue;
    }
    if (j == order_.size()) {
      replay_old(last_order_[i++]);
      continue;
    }
    const std::size_t a = last_order_[i];
    const std::size_t b = order_[j];
    const bool clean_a = vm_alive_[a] != 0 && vm_dirty_[a] == 0;
    const bool clean_b = vm_dirty_[b] == 0;
    if (clean_a && clean_b) {
      assert(a == b && "clean heads of the old and new FFD orders must pair");
      ++stats_.vms_walked;
      if (diverged_ == 0) {
        // Every host's old and new capacities are bit-equal and the scan is
        // deterministic, so the previous answer is the new answer — copy it
        // and advance both images by the same subtraction, preserving
        // equality without a scan.
        const std::size_t h = last_assign_[a];
        new_assign_[a] = h;
        new_credit_[a] = last_credit_eff_[a];
        if (h != kUnplaced) {
          old_mem_[h] -= last_mem_[a];
          old_cap_[h] -= last_credit_eff_[a];
          new_mem_[h] -= last_mem_[a];
          new_cap_[h] -= last_credit_eff_[a];
        }
      } else {
        replay_old(a);
        place_new(b);
      }
      ++i;
      ++j;
      continue;
    }
    if (ffd_before(last_mem_[a], a, vm_mem_[b], b)) {
      // Old-only key: a clean VM would also be in the new sequence ahead of
      // b, contradicting the sort — so this head is dirty or removed.
      assert(!clean_a);
      replay_old(a);
      ++i;
    } else if (ffd_before(vm_mem_[b], b, last_mem_[a], a)) {
      assert(!clean_b);
      place_new(b);
      ++j;
    } else {
      // Equal keys share the id: the same dirty VM, re-specced with its
      // memory unchanged. Retire its old subtraction, then re-place it.
      assert(a == b);
      replay_old(a);
      place_new(b);
      ++i;
      ++j;
    }
  }
}

void HostBook::snapshot_and_clear_dirty() {
  for (const std::size_t id : dirty_vms_) {
    vm_dirty_[id] = 0;
    if (vm_alive_[id] == 0) {
      last_in_[id] = 0;
      last_assign_[id] = kUnplaced;
    }
  }
  dirty_vms_.clear();
  last_order_ = order_;
  for (const std::size_t id : order_) {
    last_in_[id] = 1;
    last_mem_[id] = vm_mem_[id];
    last_assign_[id] = new_assign_[id];
    last_credit_eff_[id] = new_credit_[id];
  }
  hosts_dirty_ = false;
  have_plan_ = true;
}

void HostBook::build_placement() {
  placement_.assignment.assign(active_vms_.size(), kUnplaced);
  placement_.unplaced = 0;
  placement_.hosts_used = 0;
  for (std::size_t d = 0; d < active_vms_.size(); ++d) {
    const std::size_t h = new_assign_[active_vms_[d]];
    if (h == kUnplaced)
      ++placement_.unplaced;
    else
      placement_.assignment[d] = host_dense_[h];
  }
  for (const std::size_t h : active_hosts_) {
    if (new_mem_[h] < host_mem_[h] || new_cap_[h] < host_cap_[h])
      ++placement_.hosts_used;
  }
}

BookTotals HostBook::totals() const {
  BookTotals t;
  t.hosts = active_hosts_.size();
  t.vms = active_vms_.size();
  for (const std::size_t h : active_hosts_) {
    t.host_memory_mb += host_mem_[h];
    t.host_capacity_pct += host_cap_[h];
  }
  for (const std::size_t v : active_vms_) {
    t.vm_memory_mb += vm_mem_[v];
    t.vm_credit_pct += vm_credit_[v];
  }
  return t;
}

const Placement& HostBook::plan() {
  ++stats_.plans;
  if (have_plan_ && !dirty()) {
    ++stats_.cached_plans;
    return placement_;
  }
  if (!have_plan_ || hosts_dirty_) {
    ++stats_.full_rebuilds;
    full_replay();
  } else {
    ++stats_.delta_plans;
    delta_replay();
  }
  snapshot_and_clear_dirty();
  build_placement();
  return placement_;
}

}  // namespace pas::consolidation
