// Delta-driven consolidation planning: a persistent book of hosts and VMs
// that replays only what changed since the last plan, yet produces a
// Placement byte-identical to a from-scratch place_ffd over the same
// inputs.
//
// Why a book: ClusterManager used to rebuild every HostSpec/VmSpec vector
// and re-run full FFD each planning tick — O(V·H) fit checks at every tick,
// the dominant planner cost at fleet scale (~10k hosts / 100k VMs). The
// HostBook keeps the planner's inputs resident in struct-of-arrays arenas
// (no per-tick spec vectors, no per-tick sort), keeps hosts in packing
// order with O(log n) insert/remove/update, and serves each plan() from
// one of three paths:
//
//   * cached  — nothing changed since the last plan: return it verbatim;
//   * delta   — only VM membership/specs changed: a merge walk over the
//     old and the new FFD orders re-scans just the changed entries and
//     the entries whose candidate-host state diverged, copying every
//     other assignment straight from the previous plan;
//   * full    — the host set changed (host added/removed/updated, e.g. a
//     crash or a class flip), or no prior plan exists: the degenerate
//     fallback replays classic FFD over the arenas. Host changes reshape
//     the scan order itself, so no per-VM invariant survives them — the
//     book does not try.
//
// ── The equivalence contract ────────────────────────────────────────────
// plan() is BYTE-identical to place_ffd(vms, hosts, options) where
// vms/hosts are the dense spec lists over planned_vms()/planned_hosts()
// (active ids ascending). "Byte" includes the floating-point residue:
// hosts_used is defined by place_ffd as `mem_left < total || credit_left <
// total` after the full subtraction sequence, so the delta walk replays
// the complete per-rank arithmetic (subtractions only — no scans for
// clean, non-diverged entries) to land on bit-equal residual capacities.
//
// How the delta walk stays exact: the previous plan's subtraction sequence
// is replayed against an "old" capacity image while the new plan builds a
// "new" image, merged in FFD key order (memory desc, id asc — the same
// deterministic tie-break place_ffd uses). A per-host divergence flag set
// tracks where the two images differ. When a clean VM's turn comes and NO
// host diverges, the first-fit scan provably reproduces the old answer
// (same candidate order, bit-equal capacities, same fit predicate), so the
// old assignment is copied and both images advance by the same subtraction
// — equality is preserved without scanning. Any divergence (a changed VM
// placed elsewhere, a removed VM's hole) flips the affected hosts' flags
// and clean VMs are re-scanned until the images re-converge. Equivalence
// is therefore structural, not heuristic; the differential suite
// (tests/consolidation/consolidation_delta_test.cpp) replays seeded
// mutation corpora to pin it.
//
// Iteration order of hosts (the property the book's O(log n) rank index
// maintains, and tests/consolidation/host_book_property_test.cpp checks
// against a re-sorted oracle): ascending packing_cost(), ties broken by
// ascending host id — deterministic and total, exactly place_ffd's
// efficient-first order with dense indices replaced by ids. With
// FfdOptions::efficient_first off the scan order is ascending id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "consolidation/consolidation.hpp"

namespace pas::consolidation {

/// Plan-path and work counters — how the book earned its keep. The tests
/// use them to prove the intended path ran (delta vs fallback); the bench
/// reports them next to the planner-time gate.
struct HostBookStats {
  std::size_t plans = 0;          ///< plan() calls
  std::size_t cached_plans = 0;   ///< served verbatim (no pending deltas)
  std::size_t delta_plans = 0;    ///< served by the merge walk
  std::size_t full_rebuilds = 0;  ///< fallback: host change or first plan
  std::size_t vms_walked = 0;     ///< merge-walk ranks processed
  std::size_t vms_scanned = 0;    ///< first-fit host scans actually run
  std::size_t coalesced_marks = 0;///< dirty marks folded into a pending one
};

/// Aggregate view of a book's active entries — the per-shard summary the
/// federation's global planner consumes (it balances shard totals, never
/// individual placements; those stay the shard manager's business).
struct BookTotals {
  std::size_t hosts = 0;          ///< live (active) hosts
  std::size_t vms = 0;            ///< planned (running) VMs
  double host_memory_mb = 0.0;    ///< sum of live hosts' plannable memory
  double host_capacity_pct = 0.0; ///< sum of live hosts' plannable credit
  double vm_memory_mb = 0.0;      ///< sum of planned VMs' memory
  double vm_credit_pct = 0.0;     ///< sum of planned VMs' credit
};

/// Persistent planner state. Ids are caller-chosen (the cluster uses
/// GlobalVmId / HostId); they need not be dense, but plan() output is dense
/// over the ACTIVE ids in ascending order — planned_vms()/planned_hosts()
/// give the mapping.
class HostBook {
 public:
  explicit HostBook(FfdOptions options = {});

  // --- host mutations (each forces the next plan onto the full-rebuild
  // fallback; the rank index itself updates in O(log n)) ---
  void add_host(std::size_t id, const HostSpec& spec);
  void remove_host(std::size_t id);
  void update_host(std::size_t id, const HostSpec& spec);

  // --- VM mutations (delta-planned; validation mirrors place_ffd) ---
  void add_vm(std::size_t id, const VmSpec& spec);
  void remove_vm(std::size_t id);
  void update_vm(std::size_t id, const VmSpec& spec);

  [[nodiscard]] bool has_host(std::size_t id) const;
  [[nodiscard]] bool has_vm(std::size_t id) const;
  [[nodiscard]] std::size_t host_count() const { return active_hosts_.size(); }
  [[nodiscard]] std::size_t vm_count() const { return active_vms_.size(); }
  /// True if plan() has pending work (mutations since the last plan).
  [[nodiscard]] bool dirty() const { return hosts_dirty_ || !dirty_vms_.empty(); }

  /// Sums over the active arenas (ids ascending — deterministic FP order).
  /// O(hosts + vms); reflects every mutation applied so far, planned yet or
  /// not.
  [[nodiscard]] BookTotals totals() const;

  /// Host ids in packing order: ascending packing_cost(), ties by
  /// ascending id (the documented deterministic tie-break). Independent of
  /// FfdOptions — this is the rank index the book maintains.
  [[nodiscard]] std::vector<std::size_t> packing_order() const;

  /// The placement, equivalent to place_ffd over the dense active lists.
  /// The reference stays valid (and unchanged) until the next mutation.
  [[nodiscard]] const Placement& plan();

  /// Dense index -> id maps for the last plan(): active VM/host ids in
  /// ascending order. Valid after plan().
  [[nodiscard]] const std::vector<std::size_t>& planned_vms() const {
    return active_vms_;
  }
  [[nodiscard]] const std::vector<std::size_t>& planned_hosts() const {
    return active_hosts_;
  }

  [[nodiscard]] const HostBookStats& stats() const { return stats_; }

 private:
  /// FFD key order: memory decreasing, id ascending on ties.
  [[nodiscard]] bool ffd_before(double mem_a, std::size_t a, double mem_b,
                                std::size_t b) const {
    if (mem_a != mem_b) return mem_a > mem_b;
    return a < b;
  }
  [[nodiscard]] bool vm_spills(std::size_t vm, std::size_t host) const;
  /// First-fit scan over scan_order_ against the `new` capacity image.
  /// Returns the host id (kUnplaced if none) and the effective credit the
  /// fit reserved there.
  [[nodiscard]] std::pair<std::size_t, double> scan(std::size_t vm) const;
  void place_new(std::size_t vm);
  void replay_old(std::size_t vm);
  void touch(std::size_t host);
  void mark_vm_dirty(std::size_t id);
  void grow_vm_arrays(std::size_t id);
  void grow_host_arrays(std::size_t id);
  void rebuild_scan_order();
  void full_replay();
  void delta_replay();
  void snapshot_and_clear_dirty();
  void build_placement();

  FfdOptions opt_;

  // Host arenas, indexed by host id.
  std::vector<std::uint8_t> host_alive_;
  std::vector<double> host_mem_, host_cap_, host_penalty_, host_cost_;
  std::vector<std::size_t> host_nodes_;
  std::vector<std::size_t> host_dense_;  // id -> dense index (last plan)
  /// (packing_cost, id): the O(log n) rank index behind packing_order().
  std::set<std::pair<double, std::size_t>> host_rank_;
  std::vector<std::size_t> scan_order_;   // ids in first-fit candidate order
  std::vector<std::size_t> active_hosts_; // ids ascending
  bool hosts_dirty_ = true;

  // VM arenas, indexed by VM id.
  std::vector<std::uint8_t> vm_alive_;
  std::vector<double> vm_mem_, vm_credit_;
  std::vector<std::size_t> active_vms_;  // ids ascending
  std::vector<std::size_t> order_;       // ids in FFD key order
  std::vector<std::uint8_t> vm_dirty_;
  std::vector<std::size_t> dirty_vms_;

  // Previous-plan snapshot, indexed by VM id. Strictly read-only during a
  // replay — the walk writes into the new_* arrays and the snapshot step
  // folds them back, so an old-order event can never read a value the new
  // order already overwrote.
  bool have_plan_ = false;
  std::vector<std::size_t> last_order_;   // FFD order at the last plan
  std::vector<std::uint8_t> last_in_;     // was in the last plan
  std::vector<double> last_mem_;          // memory as last planned
  std::vector<double> last_credit_eff_;   // effective credit last reserved
  std::vector<std::size_t> last_assign_;  // vm id -> host id (or kUnplaced)

  // Replay scratch. Per VM id: the assignment being built. Per host id:
  // the old and new capacity images and the divergence flags of the merge
  // walk.
  std::vector<std::size_t> new_assign_;
  std::vector<double> new_credit_;
  std::vector<double> old_mem_, old_cap_, new_mem_, new_cap_;
  std::vector<std::uint8_t> div_flag_;
  std::size_t diverged_ = 0;

  Placement placement_;
  HostBookStats stats_;
};

}  // namespace pas::consolidation
