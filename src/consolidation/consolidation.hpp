// Server consolidation model — the paper's §2.3 argument, executable.
//
// "Ideally, a consolidation system should gather all the VMs on a reduced
// set of machines which should have a high CPU load, and DVFS would
// therefore be useless. However ... an important bottleneck of such
// consolidation systems is memory. ... Consequently, DVFS is complementary
// to consolidation."
//
// This module packs VMs onto hosts first-fit-decreasing by memory (the
// binding resource), powers unused hosts off (VOVO), and then evaluates the
// cluster's power draw twice: with every active host pinned at the maximum
// frequency, and with each host at the PAS-chosen frequency (the lowest
// state whose capacity covers the host's absolute load). The gap between
// the two is exactly the energy PAS can reclaim *on top of* consolidation —
// and it grows with the memory-per-VM footprint, which is the paper's
// point. The conclusion's "main perspective" (coordinating VM scheduling,
// frequency scaling and memory management) starts here.
//
// A placement can FAIL to hold every VM (the fleet is too small for the
// purchased credits or memory), and that failure is an explicit, typed
// outcome — never silently-free capacity: place_ffd marks such VMs
// kUnplaced, and evaluate() refuses the placement (throws) unless the
// caller opts into degraded operation with allow_unplaced and consumes
// ClusterOutcome::unplaced_vms + the unplaced_* aggregates. The online
// ClusterManager does exactly that: it leaves unplaced VMs resident where
// they are and reports them via last_plan_unplaced().
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "cpu/frequency_ladder.hpp"
#include "cpu/power_model.hpp"

namespace pas::consolidation {

struct HostSpec {
  std::string name;
  /// CPU capacity in percent of one max-frequency processor (100 = the
  /// paper's single-core host).
  double cpu_capacity_pct = 100.0;
  double memory_mb = 4096.0;
  cpu::FrequencyLadder ladder = cpu::FrequencyLadder::paper_default();
  cpu::PowerModel power = cpu::PowerModel::desktop_2008();
};

struct VmSpec {
  std::string name;
  /// Purchased credit (absolute %, the SLA) — consolidation must reserve it.
  common::Percent credit = 0.0;
  double memory_mb = 512.0;
  /// Actual absolute CPU demand (<= credit for honest customers).
  double cpu_demand_pct = 0.0;
};

inline constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

struct Placement {
  /// assignment[vm] = host index, or kUnplaced.
  std::vector<std::size_t> assignment;
  std::size_t hosts_used = 0;
  std::size_t unplaced = 0;
};

/// First-fit decreasing by memory footprint. A VM fits a host if both its
/// memory and its *credit* (not merely its demand — SLAs must be
/// honorable) fit the remaining capacity.
[[nodiscard]] Placement place_ffd(const std::vector<VmSpec>& vms,
                                  const std::vector<HostSpec>& hosts);

struct HostOutcome {
  bool powered_on = false;
  double cpu_load_pct = 0.0;    // sum of placed demands (absolute)
  double credit_reserved_pct = 0.0;
  double memory_used_mb = 0.0;
  /// PAS frequency choice for this load (Listing 1.1).
  std::size_t freq_index = 0;
  double power_watts = 0.0;         // at the PAS operating point
  double power_max_freq_watts = 0.0;  // frequency pinned at max
};

struct ClusterOutcome {
  std::vector<HostOutcome> hosts;
  std::size_t hosts_on = 0;
  double total_power_watts = 0.0;          // consolidation + DVFS (PAS)
  double total_power_max_freq_watts = 0.0; // consolidation only
  /// Mean CPU load of powered-on hosts — §2.3 predicts this stays well
  /// below 100 % once memory binds first.
  double mean_active_load_pct = 0.0;
  /// VMs the placement left without a host, with the resources the cluster
  /// is therefore NOT providing. A VM in this list is demand the outcome's
  /// power and load figures do not cover — callers must surface it (degrade
  /// the SLA report, buy hosts, shed the customer), never ignore it.
  std::vector<std::size_t> unplaced_vms;
  double unplaced_credit_pct = 0.0;
  double unplaced_demand_pct = 0.0;
  double unplaced_memory_mb = 0.0;
  [[nodiscard]] bool all_placed() const { return unplaced_vms.empty(); }
  /// Watts reclaimed by DVFS on top of consolidation.
  [[nodiscard]] double dvfs_saving_watts() const {
    return total_power_max_freq_watts - total_power_watts;
  }
};

/// Evaluates a placement: per-host loads, PAS frequency choice, power with
/// and without DVFS. Powered-off hosts draw nothing (VOVO).
///
/// Unplaced VMs are an *explicit* outcome, not silently free capacity: by
/// default a placement with unplaced VMs throws std::invalid_argument.
/// Callers that can genuinely degrade (report the shortfall, run partial)
/// pass `allow_unplaced = true` and must consume `ClusterOutcome::
/// unplaced_vms` / the unplaced_* aggregates — those VMs' demand is NOT in
/// the outcome's power or load figures.
///
/// Example — a fleet too small for the tenant book:
///
///     auto placement = place_ffd(vms, hosts);
///     if (placement.unplaced > 0) {
///       // evaluate(placement, vms, hosts) would throw here.
///       auto out = evaluate(placement, vms, hosts, /*allow_unplaced=*/true);
///       for (std::size_t vi : out.unplaced_vms)
///         alert_capacity_shortfall(vms[vi].name);
///       // out.unplaced_credit_pct / unplaced_memory_mb quantify what the
///       // cluster is not providing; out.total_power_watts covers only
///       // the placed VMs.
///     } else {
///       auto out = evaluate(placement, vms, hosts);  // all placed: strict
///       report(out.total_power_watts, out.dvfs_saving_watts());
///     }
[[nodiscard]] ClusterOutcome evaluate(const Placement& placement,
                                      const std::vector<VmSpec>& vms,
                                      const std::vector<HostSpec>& hosts,
                                      bool allow_unplaced = false);

/// Convenience: a fleet of identical hosts.
[[nodiscard]] std::vector<HostSpec> uniform_fleet(std::size_t count, const HostSpec& spec);

}  // namespace pas::consolidation
