// Server consolidation model — the paper's §2.3 argument, executable.
//
// "Ideally, a consolidation system should gather all the VMs on a reduced
// set of machines which should have a high CPU load, and DVFS would
// therefore be useless. However ... an important bottleneck of such
// consolidation systems is memory. ... Consequently, DVFS is complementary
// to consolidation."
//
// This module packs VMs onto hosts first-fit-decreasing by memory (the
// binding resource), powers unused hosts off (VOVO), and then evaluates the
// cluster's power draw twice: with every active host pinned at the maximum
// frequency, and with each host at the PAS-chosen frequency (the lowest
// state whose capacity covers the host's absolute load). The gap between
// the two is exactly the energy PAS can reclaim *on top of* consolidation —
// and it grows with the memory-per-VM footprint, which is the paper's
// point. The conclusion's "main perspective" (coordinating VM scheduling,
// frequency scaling and memory management) starts here.
//
// A placement can FAIL to hold every VM (the fleet is too small for the
// purchased credits or memory), and that failure is an explicit, typed
// outcome — never silently-free capacity: place_ffd marks such VMs
// kUnplaced, and evaluate() refuses the placement (throws) unless the
// caller opts into degraded operation with allow_unplaced and consumes
// ClusterOutcome::unplaced_vms + the unplaced_* aggregates. The online
// ClusterManager does exactly that: it leaves unplaced VMs resident where
// they are and reports them via last_plan_unplaced().
//
// Heterogeneous fleets: hosts need not be clones. Each HostSpec carries its
// own ladder, power model, capacity, memory and NUMA layout (usually cut
// from a platform::HostClass). The planner reacts in two ways:
//
//   * efficient-first packing (FfdOptions::efficient_first, the default):
//     candidate hosts are tried in ascending packing_cost() order — idle
//     watts per MB of memory. Powering a host on commits its idle draw for
//     as long as it stays on (PAS suppresses the utilization term by
//     ratio^3), and memory is the binding resource (§2.3), so the fleet
//     energy bill is minimized by buying memory from the hosts that charge
//     the least standby power for it; VOVO retires the rest. On a uniform
//     fleet every cost ties and the order degrades to index order,
//     reproducing the classic FFD placement exactly.
//   * NUMA spill penalty: a VM whose memory footprint exceeds one NUMA
//     node's capacity (memory_mb / numa_nodes) cannot be node-local; its
//     cross-node traffic costs numa_spill_penalty extra CPU, so both the
//     credit the planner reserves and the demand evaluate() charges are
//     inflated by (1 + penalty). Single-node hosts never spill.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "cpu/frequency_ladder.hpp"
#include "cpu/power_model.hpp"

namespace pas::consolidation {

struct HostSpec {
  std::string name;
  /// CPU capacity in percent of one max-frequency processor (100 = the
  /// paper's single-core host).
  double cpu_capacity_pct = 100.0;
  double memory_mb = 4096.0;
  cpu::FrequencyLadder ladder = cpu::FrequencyLadder::paper_default();
  cpu::PowerModel power = cpu::PowerModel::desktop_2008();
  /// NUMA layout: memory_mb is split evenly over this many nodes. 1 = UMA.
  std::size_t numa_nodes = 1;
  /// Extra CPU fraction a cross-node VM costs on this host (remote-memory
  /// efficiency loss). Applied to both reserved credit and charged demand
  /// whenever a VM spills — see numa_spills().
  double numa_spill_penalty = 0.0;
};

/// Idle watts per MB of memory — the key efficient-first packing sorts
/// hosts by: what a host charges in committed standby power per unit of
/// the binding resource it contributes. Identical specs yield identical
/// costs, so uniform fleets keep index order.
[[nodiscard]] double packing_cost(const HostSpec& host);

struct VmSpec {
  std::string name;
  /// Purchased credit (absolute %, the SLA) — consolidation must reserve it.
  common::Percent credit = 0.0;
  double memory_mb = 512.0;
  /// Actual absolute CPU demand (<= credit for honest customers).
  double cpu_demand_pct = 0.0;
};

/// True if the VM cannot be node-local on this host: its footprint exceeds
/// one NUMA node's share of the host memory. Single-node hosts never spill.
[[nodiscard]] bool numa_spills(const VmSpec& vm, const HostSpec& host);

/// The credit the planner must reserve for this VM on this host: the
/// purchased credit, inflated by the NUMA spill penalty when the VM's
/// footprint crosses node capacity.
[[nodiscard]] double effective_credit_pct(const VmSpec& vm, const HostSpec& host);

inline constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

struct Placement {
  /// assignment[vm] = host index, or kUnplaced.
  std::vector<std::size_t> assignment;
  std::size_t hosts_used = 0;
  std::size_t unplaced = 0;
};

struct FfdOptions {
  /// Try candidate hosts in ascending packing_cost() order instead of index
  /// order. Degrades to index order (today's behavior) on uniform fleets,
  /// where every cost ties and the index breaks the tie.
  bool efficient_first = true;
};

/// First-fit decreasing by memory footprint. A VM fits a host if both its
/// memory and its *effective credit* (not merely its demand — SLAs must be
/// honorable, and a NUMA-spilled VM reserves its penalty too) fit the
/// remaining capacity.
[[nodiscard]] Placement place_ffd(const std::vector<VmSpec>& vms,
                                  const std::vector<HostSpec>& hosts,
                                  const FfdOptions& options = {});

struct HostOutcome {
  bool powered_on = false;
  double cpu_load_pct = 0.0;    // sum of placed demands (absolute, NUMA-inflated)
  double credit_reserved_pct = 0.0;
  double memory_used_mb = 0.0;
  /// Resident VMs whose footprint crosses a NUMA node (demand and credit
  /// above include their spill penalty).
  std::size_t numa_spills = 0;
  /// PAS frequency choice for this load (Listing 1.1).
  std::size_t freq_index = 0;
  double power_watts = 0.0;         // at the PAS operating point
  double power_max_freq_watts = 0.0;  // frequency pinned at max
};

struct ClusterOutcome {
  std::vector<HostOutcome> hosts;
  std::size_t hosts_on = 0;
  double total_power_watts = 0.0;          // consolidation + DVFS (PAS)
  double total_power_max_freq_watts = 0.0; // consolidation only
  /// Mean CPU load of powered-on hosts — §2.3 predicts this stays well
  /// below 100 % once memory binds first.
  double mean_active_load_pct = 0.0;
  /// VMs the placement left without a host, with the resources the cluster
  /// is therefore NOT providing. A VM in this list is demand the outcome's
  /// power and load figures do not cover — callers must surface it (degrade
  /// the SLA report, buy hosts, shed the customer), never ignore it.
  std::vector<std::size_t> unplaced_vms;
  double unplaced_credit_pct = 0.0;
  double unplaced_demand_pct = 0.0;
  double unplaced_memory_mb = 0.0;
  /// Total NUMA-spilled VMs across the fleet.
  std::size_t numa_spills = 0;
  [[nodiscard]] bool all_placed() const { return unplaced_vms.empty(); }
  /// Watts reclaimed by DVFS on top of consolidation.
  [[nodiscard]] double dvfs_saving_watts() const {
    return total_power_max_freq_watts - total_power_watts;
  }
};

/// Evaluates a placement: per-host loads, PAS frequency choice, power with
/// and without DVFS. Powered-off hosts draw nothing (VOVO).
///
/// Unplaced VMs are an *explicit* outcome, not silently free capacity: by
/// default a placement with unplaced VMs throws std::invalid_argument.
/// Callers that can genuinely degrade (report the shortfall, run partial)
/// pass `allow_unplaced = true` and must consume `ClusterOutcome::
/// unplaced_vms` / the unplaced_* aggregates — those VMs' demand is NOT in
/// the outcome's power or load figures.
///
/// Example — a fleet too small for the tenant book (this snippet is
/// compiled and executed by tests/consolidation/consolidation_doc_example_
/// test.cpp; keep the two in sync):
///
///     auto placement = place_ffd(vms, hosts);
///     if (placement.unplaced > 0) {
///       // evaluate(placement, vms, hosts) would throw here.
///       auto out = evaluate(placement, vms, hosts, /*allow_unplaced=*/true);
///       for (std::size_t vi : out.unplaced_vms)
///         alert_capacity_shortfall(vms[vi].name);
///       // out.unplaced_credit_pct / unplaced_memory_mb quantify what the
///       // cluster is not providing; out.total_power_watts covers only
///       // the placed VMs.
///     } else {
///       auto out = evaluate(placement, vms, hosts);  // all placed: strict
///       report(out.total_power_watts, out.dvfs_saving_watts());
///     }
[[nodiscard]] ClusterOutcome evaluate(const Placement& placement,
                                      const std::vector<VmSpec>& vms,
                                      const std::vector<HostSpec>& hosts,
                                      bool allow_unplaced = false);

/// Expands per-host "classes" into a named fleet: entry i is a clone of
/// classes[i % classes.size()] with "-i" appended to its name. Throws on an
/// empty class list.
[[nodiscard]] std::vector<HostSpec> fleet_from_classes(
    std::size_t count, const std::vector<HostSpec>& classes);

/// Convenience: a fleet of identical hosts — the single-class catalog case
/// of fleet_from_classes.
[[nodiscard]] std::vector<HostSpec> uniform_fleet(std::size_t count, const HostSpec& spec);

}  // namespace pas::consolidation
