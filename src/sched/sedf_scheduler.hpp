// SEDF: Simple Earliest Deadline First — Xen's variable-credit scheduler.
//
// Each VM is configured with a triplet (s, p, b): it is guaranteed slice s
// of CPU in every period of length p, and if b is set it is additionally
// eligible for *extra time* — slack the other VMs did not use (§3.1). The
// guaranteed portion is scheduled EDF (earliest current-period deadline
// first); extra time is handed out round-robin among eligible VMs.
//
// The slice is derived from the VM's credit (s = credit% of p), making the
// credit a guaranteed *minimum* rather than a cap — the work-conserving
// behaviour the paper's Figs. 6–8 exercise.
//
// `extra_work_efficiency` models the overhead of borrowed slices: an
// extra-time grant occupies the CPU for its full wall time (so the host
// looks busy and DVFS cannot scale down — exactly the paper's §3.2
// scenario 2) but only this fraction of it becomes useful guest work.
// 1.0 is ideal SEDF (the figures); the platform catalog uses calibrated
// values < 1 to land near Table 2's measured variable-credit times.
#pragma once

#include <cstdint>
#include <vector>

#include "hypervisor/scheduler.hpp"

namespace pas::sched {

struct SedfSchedulerConfig {
  /// Default period p when the VmConfig does not override it.
  common::SimTime default_period = common::msec(100);
  /// Accounting tick (diagnostics only; SEDF refills per-VM periods lazily).
  common::SimTime accounting_period = common::msec(30);
  /// Useful-work fraction of extra-time grants, in (0,1].
  double extra_work_efficiency = 1.0;
};

class SedfScheduler final : public hv::Scheduler {
 public:
  explicit SedfScheduler(SedfSchedulerConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "sedf"; }
  void add_vm(common::VmId id, const hv::VmConfig& config) override;
  [[nodiscard]] common::VmId pick(common::SimTime now,
                                  std::span<const common::VmId> runnable) override;
  void charge(common::VmId vm, common::SimTime busy) override;
  void account(common::SimTime now) override;
  [[nodiscard]] common::SimTime accounting_period() const override {
    return cfg_.accounting_period;
  }
  /// Re-derives the slice from the new cap (s = cap% of p). PAS-style
  /// compensation composes with SEDF too, though the paper applies it to
  /// the credit scheduler.
  void set_cap(common::VmId vm, common::Percent cap_pct) override;
  [[nodiscard]] common::Percent cap(common::VmId vm) const override;
  [[nodiscard]] bool work_conserving() const override { return true; }
  /// Period refill happens lazily in pick(), so a rejected set becomes
  /// eligible again when any member's period rolls over — with bare time.
  [[nodiscard]] bool rejection_is_stable() const override { return false; }
  [[nodiscard]] double work_efficiency(common::VmId vm) const override;

  /// Remaining guaranteed slice in the VM's current period (tests).
  [[nodiscard]] common::SimTime remaining_slice(common::VmId vm) const;
  /// Total extra (beyond-guarantee) time granted so far (tests/diagnostics).
  [[nodiscard]] common::SimTime extra_time_granted() const {
    return common::usec(extra_granted_us_);
  }

 private:
  struct Entry {
    common::Percent cap_pct = 0.0;
    std::int64_t period_us = 0;
    std::int64_t slice_us = 0;
    bool extra = true;
    // Current period state.
    std::int64_t deadline_us = 0;  // end of current period
    std::int64_t remain_us = 0;    // guaranteed time left in this period
    // Set by pick() so charge()/work_efficiency() know whether the run is
    // guaranteed slice or extra time.
    bool last_pick_was_extra = false;
  };

  void refresh_period(Entry& e, std::int64_t now_us) const;

  SedfSchedulerConfig cfg_;
  std::vector<Entry> vms_;
  std::size_t rr_cursor_ = 0;
  std::int64_t extra_granted_us_ = 0;
};

}  // namespace pas::sched
