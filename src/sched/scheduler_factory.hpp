// String-driven scheduler construction for benches and examples.
#pragma once

#include <memory>
#include <string>

#include "hypervisor/scheduler.hpp"
#include "sched/credit2_scheduler.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/sedf_scheduler.hpp"

namespace pas::sched {

enum class SchedulerKind {
  kCredit,   // fixed credit (Xen Credit with caps)
  kSedf,     // variable credit (Xen SEDF with extra time)
  kCredit2,  // weighted proportional share with caps (Xen Credit2-style)
};

[[nodiscard]] std::unique_ptr<hv::Scheduler> make_scheduler(SchedulerKind kind);

/// "credit" or "sedf"; throws std::invalid_argument otherwise.
[[nodiscard]] std::unique_ptr<hv::Scheduler> make_scheduler(const std::string& name);
[[nodiscard]] SchedulerKind scheduler_kind_from_name(const std::string& name);
[[nodiscard]] std::string to_string(SchedulerKind kind);

}  // namespace pas::sched
