// Fixed-credit scheduler: the Xen Credit scheduler with caps (§3.1).
//
// Each VM holds a credit balance in microseconds of CPU time. The balance
// refills every accounting period at cap% of the period and is clamped so an
// idle VM cannot hoard bursts. A VM with a positive balance is UNDER and
// eligible; a VM with a non-positive balance is OVER and — this is the
// *fixed* credit semantics — not scheduled at all, even if the CPU would
// otherwise idle. The single exception is the Xen "null credit" case: a VM
// configured with credit 0 has no guarantee and no limit, and may consume
// any slack left by capped VMs.
//
// Priorities: higher priority strictly preempts (the paper runs Dom0 at the
// highest priority with 10 % credit). Equal-priority UNDER VMs are served
// round-robin.
#pragma once

#include <cstdint>
#include <vector>

#include "hypervisor/scheduler.hpp"

namespace pas::sched {

struct CreditSchedulerConfig {
  /// Xen's credit accounting runs every 30 ms.
  common::SimTime accounting_period = common::msec(30);
  /// Maximum hoardable balance, in accounting periods' worth of refill.
  /// The half-period of slack above one refill matters: scheduling quanta
  /// do not divide a VM's per-period slice evenly, so an unclamped
  /// fractional leftover must survive the refill or the VM permanently
  /// loses it (a 70 % VM would converge to 66.7 % with a tight clamp).
  double burst_periods = 1.5;
};

class CreditScheduler final : public hv::Scheduler {
 public:
  explicit CreditScheduler(CreditSchedulerConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "credit"; }
  void add_vm(common::VmId id, const hv::VmConfig& config) override;
  [[nodiscard]] common::VmId pick(common::SimTime now,
                                  std::span<const common::VmId> runnable) override;
  void charge(common::VmId vm, common::SimTime busy) override;
  void account(common::SimTime now) override;
  [[nodiscard]] common::SimTime accounting_period() const override {
    return cfg_.accounting_period;
  }
  void set_cap(common::VmId vm, common::Percent cap_pct) override;
  [[nodiscard]] common::Percent cap(common::VmId vm) const override;
  [[nodiscard]] bool work_conserving() const override { return false; }

  /// Current balance (diagnostic / tests).
  [[nodiscard]] common::SimTime balance(common::VmId vm) const;

 private:
  struct Entry {
    common::Percent cap_pct = 0.0;  // 0 = uncapped (null credit)
    int priority = 0;
    std::int64_t balance_us = 0;
  };

  [[nodiscard]] std::int64_t refill_us(const Entry& e) const;
  [[nodiscard]] std::int64_t burst_limit_us(const Entry& e) const;

  CreditSchedulerConfig cfg_;
  std::vector<Entry> vms_;
  std::size_t rr_cursor_ = 0;  // rotates to break ties fairly
};

}  // namespace pas::sched
