// Fixed-credit scheduler: the Xen Credit scheduler with caps (§3.1).
//
// Each VM holds a credit balance in microseconds of CPU time. The balance
// refills every accounting period at cap% of the period and is clamped so an
// idle VM cannot hoard bursts. A VM with a positive balance is UNDER and
// eligible; a VM with a non-positive balance is OVER and — this is the
// *fixed* credit semantics — not scheduled at all, even if the CPU would
// otherwise idle. The single exception is the Xen "null credit" case: a VM
// configured with credit 0 has no guarantee and no limit, and may consume
// any slack left by capped VMs.
//
// Priorities: higher priority strictly preempts (the paper runs Dom0 at the
// highest priority with 10 % credit). Equal-priority UNDER VMs are served
// round-robin.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypervisor/scheduler.hpp"

namespace pas::sched {

struct CreditSchedulerConfig {
  /// Xen's credit accounting runs every 30 ms.
  common::SimTime accounting_period = common::msec(30);
  /// Maximum hoardable balance, in accounting periods' worth of refill.
  /// The half-period of slack above one refill matters: scheduling quanta
  /// do not divide a VM's per-period slice evenly, so an unclamped
  /// fractional leftover must survive the refill or the VM permanently
  /// loses it (a 70 % VM would converge to 66.7 % with a tight clamp).
  double burst_periods = 1.5;
};

class CreditScheduler final : public hv::Scheduler {
 public:
  explicit CreditScheduler(CreditSchedulerConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "credit"; }
  void add_vm(common::VmId id, const hv::VmConfig& config) override;
  [[nodiscard]] common::VmId pick(common::SimTime now,
                                  std::span<const common::VmId> runnable) override;
  void charge(common::VmId vm, common::SimTime busy) override;
  void account(common::SimTime now) override;
  [[nodiscard]] common::SimTime accounting_period() const override {
    return cfg_.accounting_period;
  }
  void set_cap(common::VmId vm, common::Percent cap_pct) override;
  [[nodiscard]] common::Percent cap(common::VmId vm) const override;
  [[nodiscard]] bool work_conserving() const override { return false; }
  [[nodiscard]] bool refill_settled() const override;
  [[nodiscard]] common::SimTime export_credit(common::VmId vm) const override;
  void import_credit(common::VmId vm, common::SimTime balance) override;

  /// Current balance (diagnostic / tests).
  [[nodiscard]] common::SimTime balance(common::VmId vm) const;

 private:
  struct Entry {
    common::Percent cap_pct = 0.0;  // 0 = uncapped (null credit)
    int priority = 0;
    std::int64_t balance_us = 0;
    // Cached refill/burst amounts, recomputed when the cap changes, so the
    // per-tick accounting loop stays integer-only.
    std::int64_t refill_us = 0;
    std::int64_t burst_us = 0;
    std::size_t tier = 0;        // index into tier_prios_ (highest prio = 0)
    bool counted_under = false;  // mirrored into under_per_tier_
  };

  [[nodiscard]] static bool is_under(const Entry& e) {
    return e.cap_pct > 0.0 && e.balance_us > 0;
  }

  /// Recomputes the cached refill/burst amounts from the current cap.
  void recompute_refill(Entry& e) const;

  /// Recomputes the priority-tier table and under-credit counts (add_vm).
  void rebuild_tiers();
  /// Re-syncs `e`'s under-credit membership after a balance/cap change.
  void update_under(Entry& e);

  /// The one rank scan shared by the UNDER and OVER passes: the eligible VM
  /// with the highest priority, ties broken by round-robin distance from
  /// `cursor` (already reduced modulo vm count).
  template <typename Eligible>
  [[nodiscard]] common::VmId scan_best(std::span<const common::VmId> runnable,
                                       std::size_t cursor, Eligible&& eligible) const {
    const std::size_t n = vms_.size();
    common::VmId best = common::kInvalidVm;
    int best_prio = 0;
    std::size_t best_rank = 0;
    for (const common::VmId id : runnable) {
      const Entry& e = vms_[id];
      if (!eligible(e)) continue;
      const std::size_t rank = id >= cursor ? id - cursor : id + n - cursor;
      if (best == common::kInvalidVm || e.priority > best_prio ||
          (e.priority == best_prio && rank < best_rank)) {
        best = id;
        best_prio = e.priority;
        best_rank = rank;
      }
    }
    return best;
  }

  CreditSchedulerConfig cfg_;
  std::vector<Entry> vms_;
  std::vector<int> tier_prios_;                 // distinct priorities, descending
  std::vector<std::uint32_t> under_per_tier_;   // VMs holding credit, per tier
  std::size_t rr_cursor_ = 0;  // rotates to break ties fairly
};

}  // namespace pas::sched
