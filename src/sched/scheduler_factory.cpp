#include "sched/scheduler_factory.hpp"

#include <stdexcept>

namespace pas::sched {

std::unique_ptr<hv::Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCredit:
      return std::make_unique<CreditScheduler>();
    case SchedulerKind::kSedf:
      return std::make_unique<SedfScheduler>();
    case SchedulerKind::kCredit2:
      return std::make_unique<Credit2Scheduler>();
  }
  throw std::invalid_argument("make_scheduler: bad kind");
}

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  if (name == "credit") return SchedulerKind::kCredit;
  if (name == "sedf") return SchedulerKind::kSedf;
  if (name == "credit2") return SchedulerKind::kCredit2;
  throw std::invalid_argument("scheduler_kind_from_name: unknown scheduler '" + name + "'");
}

std::unique_ptr<hv::Scheduler> make_scheduler(const std::string& name) {
  return make_scheduler(scheduler_kind_from_name(name));
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCredit:
      return "credit";
    case SchedulerKind::kSedf:
      return "sedf";
    case SchedulerKind::kCredit2:
      return "credit2";
  }
  return "?";
}

}  // namespace pas::sched
