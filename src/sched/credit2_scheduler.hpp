// Credit2-style scheduler: weighted proportional share with optional caps.
//
// The paper notes Xen's Credit2 as "an updated version of Credit scheduler,
// with the intention of solving some of its weaknesses" (§3.1, beta at the
// time). Its essence is proportional *share* scheduling: each VM owns a
// weight, runnable VMs receive CPU in proportion to their weights, and —
// unlike the paper's fix-credit configuration — unused share flows to whoever
// is runnable. A per-VM hard cap can be layered on top (as in Xen), which is
// the hook the PAS controller uses.
//
// Implementation: virtual-runtime (stride) scheduling. Each VM's vruntime
// advances by busy_time / weight; pick() selects the runnable VM with the
// smallest vruntime. A sleeping VM's vruntime is clamped forward on wakeup
// so it cannot hoard an arbitrarily large burst. Caps reuse the credit
// balance mechanism of the fixed scheduler.
//
// In the paper's taxonomy this sits between the two baselines: with no caps
// it behaves like a variable-credit scheduler (weights = credits); with
// caps equal to the credits it enforces them like the fixed scheduler while
// distributing *within-cap* contention by weight instead of round-robin.
#pragma once

#include <cstdint>
#include <vector>

#include "hypervisor/scheduler.hpp"

namespace pas::sched {

struct Credit2SchedulerConfig {
  common::SimTime accounting_period = common::msec(30);
  /// Enforce VmConfig::credit as a hard cap (Xen's `xl sched-credit2 --cap`
  /// analogue). Without caps the scheduler is fully work-conserving.
  bool enforce_caps = true;
  /// Wakeup clamp: a waking VM's vruntime is raised to at least
  /// (min runnable vruntime - burst_allowance/weight).
  common::SimTime burst_allowance = common::msec(30);
};

class Credit2Scheduler final : public hv::Scheduler {
 public:
  explicit Credit2Scheduler(Credit2SchedulerConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "credit2"; }
  void add_vm(common::VmId id, const hv::VmConfig& config) override;
  [[nodiscard]] common::VmId pick(common::SimTime now,
                                  std::span<const common::VmId> runnable) override;
  void charge(common::VmId vm, common::SimTime busy) override;
  void account(common::SimTime now) override;
  [[nodiscard]] common::SimTime accounting_period() const override {
    return cfg_.accounting_period;
  }
  void set_cap(common::VmId vm, common::Percent cap_pct) override;
  [[nodiscard]] common::Percent cap(common::VmId vm) const override;
  [[nodiscard]] bool work_conserving() const override { return !cfg_.enforce_caps; }
  [[nodiscard]] bool refill_settled() const override;
  [[nodiscard]] common::SimTime export_credit(common::VmId vm) const override {
    return common::usec(vms_.at(vm).balance_us);
  }
  void import_credit(common::VmId vm, common::SimTime balance) override {
    vms_.at(vm).balance_us = balance.us();
  }

  /// Weight of a VM (== its configured credit; diagnostics/tests).
  [[nodiscard]] double weight(common::VmId vm) const;
  /// Current vruntime in weighted microseconds (tests).
  [[nodiscard]] double vruntime(common::VmId vm) const;

 private:
  struct Entry {
    double weight = 1.0;         // proportional share
    common::Percent cap_pct = 0; // hard cap; 0 = uncapped
    double vruntime = 0.0;       // weighted virtual time, us / weight
    std::int64_t balance_us = 0; // cap budget (when enforce_caps)
    bool was_runnable = false;   // for wakeup clamping
  };

  [[nodiscard]] std::int64_t refill_us(const Entry& e) const;
  [[nodiscard]] bool cap_ok(const Entry& e) const;

  Credit2SchedulerConfig cfg_;
  std::vector<Entry> vms_;
  // Presence stamps for pick()'s sleep tracking: VMs whose stamp is not the
  // current epoch are absent from the runnable set. O(vms + runnable) per
  // pick instead of one linear search per VM.
  std::vector<std::uint64_t> runnable_stamp_;
  std::uint64_t stamp_epoch_ = 0;
};

}  // namespace pas::sched
