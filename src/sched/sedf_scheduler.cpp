#include "sched/sedf_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pas::sched {

SedfScheduler::SedfScheduler(SedfSchedulerConfig config) : cfg_(config) {
  if (cfg_.default_period.us() <= 0)
    throw std::invalid_argument("SedfScheduler: period must be positive");
  if (cfg_.extra_work_efficiency <= 0.0 || cfg_.extra_work_efficiency > 1.0)
    throw std::invalid_argument("SedfScheduler: extra_work_efficiency must be in (0,1]");
}

void SedfScheduler::add_vm(common::VmId id, const hv::VmConfig& config) {
  if (id != vms_.size()) throw std::invalid_argument("SedfScheduler: VM ids must be dense");
  Entry e;
  e.cap_pct = config.credit;
  e.period_us =
      (config.sedf_period.us() > 0 ? config.sedf_period : cfg_.default_period).us();
  e.slice_us = static_cast<std::int64_t>(
      std::llround(e.cap_pct / 100.0 * static_cast<double>(e.period_us)));
  e.extra = config.sedf_extra;
  e.deadline_us = e.period_us;
  e.remain_us = e.slice_us;
  vms_.push_back(e);
}

void SedfScheduler::refresh_period(Entry& e, std::int64_t now_us) const {
  if (now_us < e.deadline_us) return;
  // Jump over all fully elapsed periods (a long-idle VM must not replay
  // them one by one).
  const std::int64_t periods_past = (now_us - e.deadline_us) / e.period_us + 1;
  e.deadline_us += periods_past * e.period_us;
  e.remain_us = e.slice_us;
}

common::VmId SedfScheduler::pick(common::SimTime now, std::span<const common::VmId> runnable) {
  assert(!runnable.empty());
  const std::int64_t now_us = now.us();
  for (auto& e : vms_) refresh_period(e, now_us);

  // EDF pass over VMs with guaranteed slice remaining.
  common::VmId best = common::kInvalidVm;
  std::int64_t best_deadline = 0;
  for (const common::VmId id : runnable) {
    Entry& e = vms_.at(id);
    if (e.remain_us <= 0) continue;
    if (best == common::kInvalidVm || e.deadline_us < best_deadline) {
      best = id;
      best_deadline = e.deadline_us;
    }
  }
  if (best != common::kInvalidVm) {
    vms_.at(best).last_pick_was_extra = false;
    return best;
  }

  // Extra-time pass: round-robin among extra-eligible VMs. Work-conserving:
  // the CPU never idles while anyone is runnable and extra-eligible.
  const std::size_t n = vms_.size();
  const std::size_t cursor = rr_cursor_ % n;  // hoisted: one modulo per pick
  std::size_t best_rank = 0;
  for (const common::VmId id : runnable) {
    Entry& e = vms_.at(id);
    if (!e.extra) continue;
    const std::size_t rank = id >= cursor ? id - cursor : id + n - cursor;
    if (best == common::kInvalidVm || rank < best_rank) {
      best = id;
      best_rank = rank;
    }
  }
  if (best != common::kInvalidVm) {
    vms_.at(best).last_pick_was_extra = true;
    rr_cursor_ = best + 1;
  }
  return best;
}

double SedfScheduler::work_efficiency(common::VmId vm) const {
  return vms_.at(vm).last_pick_was_extra ? cfg_.extra_work_efficiency : 1.0;
}

void SedfScheduler::charge(common::VmId vm, common::SimTime busy) {
  Entry& e = vms_.at(vm);
  std::int64_t remaining_charge = busy.us();
  if (!e.last_pick_was_extra && e.remain_us > 0) {
    const std::int64_t guaranteed = std::min(e.remain_us, remaining_charge);
    e.remain_us -= guaranteed;
    remaining_charge -= guaranteed;
  }
  extra_granted_us_ += remaining_charge;
}

void SedfScheduler::account(common::SimTime /*now*/) {
  // Period refill is handled lazily in pick(); nothing to do here.
}

void SedfScheduler::set_cap(common::VmId vm, common::Percent cap_pct) {
  if (cap_pct < 0.0) throw std::invalid_argument("SedfScheduler: negative cap");
  Entry& e = vms_.at(vm);
  e.cap_pct = cap_pct;
  const std::int64_t new_slice = static_cast<std::int64_t>(
      std::llround(cap_pct / 100.0 * static_cast<double>(e.period_us)));
  // Apply the delta to the current period too, so compensation acts within
  // one period rather than one period late.
  e.remain_us = std::max<std::int64_t>(0, e.remain_us + (new_slice - e.slice_us));
  e.slice_us = new_slice;
}

common::Percent SedfScheduler::cap(common::VmId vm) const { return vms_.at(vm).cap_pct; }

common::SimTime SedfScheduler::remaining_slice(common::VmId vm) const {
  return common::usec(vms_.at(vm).remain_us);
}

}  // namespace pas::sched
