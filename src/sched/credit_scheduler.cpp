#include "sched/credit_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace pas::sched {

CreditScheduler::CreditScheduler(CreditSchedulerConfig config) : cfg_(config) {
  if (cfg_.accounting_period.us() <= 0)
    throw std::invalid_argument("CreditScheduler: accounting period must be positive");
  if (cfg_.burst_periods <= 0.0)
    throw std::invalid_argument("CreditScheduler: burst_periods must be positive");
}

void CreditScheduler::recompute_refill(Entry& e) const {
  e.refill_us = static_cast<std::int64_t>(
      std::llround(e.cap_pct / 100.0 * static_cast<double>(cfg_.accounting_period.us())));
  e.burst_us = static_cast<std::int64_t>(std::llround(
      cfg_.burst_periods * e.cap_pct / 100.0 *
      static_cast<double>(cfg_.accounting_period.us())));
}

void CreditScheduler::rebuild_tiers() {
  tier_prios_.clear();
  for (const Entry& e : vms_) tier_prios_.push_back(e.priority);
  std::sort(tier_prios_.begin(), tier_prios_.end(), std::greater<>());
  tier_prios_.erase(std::unique(tier_prios_.begin(), tier_prios_.end()),
                    tier_prios_.end());
  under_per_tier_.assign(tier_prios_.size(), 0);
  for (Entry& e : vms_) {
    e.tier = static_cast<std::size_t>(
        std::lower_bound(tier_prios_.begin(), tier_prios_.end(), e.priority,
                         std::greater<>()) -
        tier_prios_.begin());
    e.counted_under = is_under(e);
    if (e.counted_under) ++under_per_tier_[e.tier];
  }
}

void CreditScheduler::update_under(Entry& e) {
  const bool under = is_under(e);
  if (under == e.counted_under) return;
  if (under)
    ++under_per_tier_[e.tier];
  else
    --under_per_tier_[e.tier];
  e.counted_under = under;
}

void CreditScheduler::add_vm(common::VmId id, const hv::VmConfig& config) {
  if (id != vms_.size())
    throw std::invalid_argument("CreditScheduler: VM ids must be dense");
  if (config.credit < 0.0)
    throw std::invalid_argument("CreditScheduler: negative credit");
  Entry e;
  e.cap_pct = config.credit;
  e.priority = config.priority;
  recompute_refill(e);
  // Start with one refill so a VM can run before the first accounting tick.
  e.balance_us = e.refill_us;
  vms_.push_back(e);
  rebuild_tiers();
}

common::VmId CreditScheduler::pick(common::SimTime /*now*/,
                                   std::span<const common::VmId> runnable) {
  assert(!runnable.empty());
  const std::size_t cursor = rr_cursor_ % vms_.size();  // one modulo per pick
  // Pass 1 (UNDER): highest-priority VM holding positive balance,
  // round-robin within a tier. The incrementally maintained per-tier
  // under-credit counts let the pass skip exhausted tiers without touching
  // the runnable list, so cost is O(tiers holding credit) scans instead of
  // a full pass with modulo arithmetic per candidate.
  common::VmId best = common::kInvalidVm;
  for (std::size_t tier = 0; tier < tier_prios_.size(); ++tier) {
    if (under_per_tier_[tier] == 0) continue;
    best = scan_best(runnable, cursor,
                     [tier](const Entry& e) { return e.tier == tier && is_under(e); });
    if (best != common::kInvalidVm) break;  // higher tiers strictly preempt
  }
  // Pass 2 (OVER): only null-credit VMs may soak up slack.
  if (best == common::kInvalidVm) {
    best = scan_best(runnable, cursor,
                     [](const Entry& e) { return e.cap_pct <= 0.0; });
  }
  if (best != common::kInvalidVm) rr_cursor_ = best + 1;
  return best;
}

void CreditScheduler::charge(common::VmId vm, common::SimTime busy) {
  Entry& e = vms_.at(vm);
  e.balance_us -= busy.us();
  update_under(e);
}

void CreditScheduler::account(common::SimTime /*now*/) {
  for (auto& e : vms_) {
    if (e.cap_pct <= 0.0) {
      e.balance_us = 0;  // null credit: runs only in the OVER pass
    } else {
      e.balance_us = std::min(e.balance_us + e.refill_us, e.burst_us);
    }
    update_under(e);
  }
}

bool CreditScheduler::refill_settled() const {
  // account()'s exact per-entry assignment, phrased as a fixed-point test.
  // NOT `balance == burst`: import_credit is unclamped, so a migrated-in
  // hoard can sit above the burst limit — the next account() would pull it
  // down, which is an observable change.
  for (const Entry& e : vms_) {
    if (e.cap_pct <= 0.0) {
      if (e.balance_us != 0) return false;
    } else {
      if (std::min(e.balance_us + e.refill_us, e.burst_us) != e.balance_us) return false;
    }
  }
  return true;
}

void CreditScheduler::set_cap(common::VmId vm, common::Percent cap_pct) {
  if (cap_pct < 0.0) throw std::invalid_argument("CreditScheduler: negative cap");
  Entry& e = vms_.at(vm);
  e.cap_pct = cap_pct;
  recompute_refill(e);
  // Clamp an existing hoard to the new burst limit so a cap *reduction*
  // (frequency went up) takes effect within one accounting period.
  e.balance_us = std::min(e.balance_us, e.burst_us);
  update_under(e);
}

common::Percent CreditScheduler::cap(common::VmId vm) const { return vms_.at(vm).cap_pct; }

common::SimTime CreditScheduler::export_credit(common::VmId vm) const {
  return common::usec(vms_.at(vm).balance_us);
}

void CreditScheduler::import_credit(common::VmId vm, common::SimTime balance) {
  Entry& e = vms_.at(vm);
  // The imported balance replaces whatever the (previously idle) slot
  // accrued; it is NOT clamped to the burst limit — a migrating VM must not
  // lose credit in flight.
  e.balance_us = balance.us();
  update_under(e);
}

common::SimTime CreditScheduler::balance(common::VmId vm) const {
  return common::usec(vms_.at(vm).balance_us);
}

}  // namespace pas::sched
