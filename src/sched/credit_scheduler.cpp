#include "sched/credit_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pas::sched {

CreditScheduler::CreditScheduler(CreditSchedulerConfig config) : cfg_(config) {
  if (cfg_.accounting_period.us() <= 0)
    throw std::invalid_argument("CreditScheduler: accounting period must be positive");
  if (cfg_.burst_periods <= 0.0)
    throw std::invalid_argument("CreditScheduler: burst_periods must be positive");
}

std::int64_t CreditScheduler::refill_us(const Entry& e) const {
  return static_cast<std::int64_t>(
      std::llround(e.cap_pct / 100.0 * static_cast<double>(cfg_.accounting_period.us())));
}

std::int64_t CreditScheduler::burst_limit_us(const Entry& e) const {
  return static_cast<std::int64_t>(std::llround(
      cfg_.burst_periods * e.cap_pct / 100.0 *
      static_cast<double>(cfg_.accounting_period.us())));
}

void CreditScheduler::add_vm(common::VmId id, const hv::VmConfig& config) {
  if (id != vms_.size())
    throw std::invalid_argument("CreditScheduler: VM ids must be dense");
  if (config.credit < 0.0)
    throw std::invalid_argument("CreditScheduler: negative credit");
  Entry e;
  e.cap_pct = config.credit;
  e.priority = config.priority;
  vms_.push_back(e);
  // Start with one refill so a VM can run before the first accounting tick.
  vms_.back().balance_us = refill_us(vms_.back());
}

common::VmId CreditScheduler::pick(common::SimTime /*now*/,
                                   std::span<const common::VmId> runnable) {
  assert(!runnable.empty());
  // Pass 1 (UNDER): highest priority VM holding positive balance;
  // round-robin within a priority tier via the rotating cursor.
  common::VmId best = common::kInvalidVm;
  int best_prio = 0;
  std::size_t best_rank = 0;
  const std::size_t n = vms_.size();
  for (const common::VmId id : runnable) {
    const Entry& e = vms_.at(id);
    const bool under = e.cap_pct > 0.0 && e.balance_us > 0;
    if (!under) continue;
    // Rank = distance from the cursor; smaller rank wins inside a tier.
    const std::size_t rank = (id + n - rr_cursor_ % n) % n;
    if (best == common::kInvalidVm || e.priority > best_prio ||
        (e.priority == best_prio && rank < best_rank)) {
      best = id;
      best_prio = e.priority;
      best_rank = rank;
    }
  }
  // Pass 2 (OVER): only null-credit VMs may soak up slack.
  if (best == common::kInvalidVm) {
    for (const common::VmId id : runnable) {
      const Entry& e = vms_.at(id);
      if (e.cap_pct > 0.0) continue;
      const std::size_t rank = (id + n - rr_cursor_ % n) % n;
      if (best == common::kInvalidVm || e.priority > best_prio ||
          (e.priority == best_prio && rank < best_rank)) {
        best = id;
        best_prio = e.priority;
        best_rank = rank;
      }
    }
  }
  if (best != common::kInvalidVm) rr_cursor_ = best + 1;
  return best;
}

void CreditScheduler::charge(common::VmId vm, common::SimTime busy) {
  vms_.at(vm).balance_us -= busy.us();
}

void CreditScheduler::account(common::SimTime /*now*/) {
  for (auto& e : vms_) {
    if (e.cap_pct <= 0.0) {
      e.balance_us = 0;  // null credit: runs only in the OVER pass
      continue;
    }
    e.balance_us = std::min(e.balance_us + refill_us(e), burst_limit_us(e));
  }
}

void CreditScheduler::set_cap(common::VmId vm, common::Percent cap_pct) {
  if (cap_pct < 0.0) throw std::invalid_argument("CreditScheduler: negative cap");
  Entry& e = vms_.at(vm);
  e.cap_pct = cap_pct;
  // Clamp an existing hoard to the new burst limit so a cap *reduction*
  // (frequency went up) takes effect within one accounting period.
  e.balance_us = std::min(e.balance_us, burst_limit_us(e));
}

common::Percent CreditScheduler::cap(common::VmId vm) const { return vms_.at(vm).cap_pct; }

common::SimTime CreditScheduler::balance(common::VmId vm) const {
  return common::usec(vms_.at(vm).balance_us);
}

}  // namespace pas::sched
