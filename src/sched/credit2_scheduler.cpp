#include "sched/credit2_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pas::sched {

Credit2Scheduler::Credit2Scheduler(Credit2SchedulerConfig config) : cfg_(config) {
  if (cfg_.accounting_period.us() <= 0)
    throw std::invalid_argument("Credit2Scheduler: accounting period must be positive");
}

std::int64_t Credit2Scheduler::refill_us(const Entry& e) const {
  return static_cast<std::int64_t>(
      std::llround(e.cap_pct / 100.0 * static_cast<double>(cfg_.accounting_period.us())));
}

bool Credit2Scheduler::cap_ok(const Entry& e) const {
  if (!cfg_.enforce_caps || e.cap_pct <= 0.0) return true;
  return e.balance_us > 0;
}

void Credit2Scheduler::add_vm(common::VmId id, const hv::VmConfig& config) {
  if (id != vms_.size()) throw std::invalid_argument("Credit2Scheduler: VM ids must be dense");
  Entry e;
  // Weight == configured credit; a zero-credit VM gets a token weight so it
  // can still consume slack (the null-credit semantics).
  e.weight = config.credit > 0.0 ? config.credit : 1.0;
  e.cap_pct = config.credit;
  e.balance_us = refill_us(e);
  vms_.push_back(e);
  runnable_stamp_.push_back(0);
}

common::VmId Credit2Scheduler::pick(common::SimTime /*now*/,
                                    std::span<const common::VmId> runnable) {
  assert(!runnable.empty());
  // Sleep tracking: VMs absent from the runnable set lose their runnable
  // mark, so their next appearance is a wakeup and gets clamped. Presence
  // is marked with an epoch stamp to avoid a linear search per VM.
  ++stamp_epoch_;
  for (const common::VmId id : runnable) runnable_stamp_.at(id) = stamp_epoch_;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    if (runnable_stamp_[i] != stamp_epoch_) vms_[i].was_runnable = false;
  }
  // Wakeup clamp: a VM that just became runnable must not replay idle time.
  double min_vrt = 0.0;
  bool have_min = false;
  for (const common::VmId id : runnable) {
    const Entry& e = vms_.at(id);
    if (e.was_runnable) {
      if (!have_min || e.vruntime < min_vrt) {
        min_vrt = e.vruntime;
        have_min = true;
      }
    }
  }
  for (const common::VmId id : runnable) {
    Entry& e = vms_.at(id);
    if (!e.was_runnable) {
      if (have_min) {
        const double allowance =
            static_cast<double>(cfg_.burst_allowance.us()) / e.weight;
        e.vruntime = std::max(e.vruntime, min_vrt - allowance);
      }
      e.was_runnable = true;
    }
  }

  common::VmId best = common::kInvalidVm;
  double best_vrt = 0.0;
  for (const common::VmId id : runnable) {
    const Entry& e = vms_.at(id);
    if (!cap_ok(e)) continue;
    if (best == common::kInvalidVm || e.vruntime < best_vrt) {
      best = id;
      best_vrt = e.vruntime;
    }
  }
  return best;
}

void Credit2Scheduler::charge(common::VmId vm, common::SimTime busy) {
  Entry& e = vms_.at(vm);
  e.vruntime += static_cast<double>(busy.us()) / e.weight;
  e.balance_us -= busy.us();
}

void Credit2Scheduler::account(common::SimTime /*now*/) {
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Entry& e = vms_[i];
    // Same fractional-leftover rule as the credit scheduler: 1.5 periods.
    const std::int64_t burst =
        static_cast<std::int64_t>(std::llround(1.5 * static_cast<double>(refill_us(e))));
    e.balance_us = std::min(e.balance_us + refill_us(e), burst);
  }
}

bool Credit2Scheduler::refill_settled() const {
  // Fixed point of account()'s per-entry assignment (unclamped imports can
  // sit above the burst limit, so test the assignment, not balance==burst).
  // vruntime/was_runnable are pick()/charge() state and never move inside
  // account(), so they don't enter the predicate.
  for (const Entry& e : vms_) {
    const std::int64_t burst =
        static_cast<std::int64_t>(std::llround(1.5 * static_cast<double>(refill_us(e))));
    if (std::min(e.balance_us + refill_us(e), burst) != e.balance_us) return false;
  }
  return true;
}

void Credit2Scheduler::set_cap(common::VmId vm, common::Percent cap_pct) {
  if (cap_pct < 0.0) throw std::invalid_argument("Credit2Scheduler: negative cap");
  Entry& e = vms_.at(vm);
  e.cap_pct = cap_pct;
  const std::int64_t burst =
      static_cast<std::int64_t>(std::llround(1.5 * static_cast<double>(refill_us(e))));
  e.balance_us = std::min(e.balance_us, burst);
}

common::Percent Credit2Scheduler::cap(common::VmId vm) const { return vms_.at(vm).cap_pct; }

double Credit2Scheduler::weight(common::VmId vm) const { return vms_.at(vm).weight; }

double Credit2Scheduler::vruntime(common::VmId vm) const { return vms_.at(vm).vruntime; }

}  // namespace pas::sched
