// Platform catalog for Table 2: "Execution Times on Different Virtualization
// Platforms".
//
// The paper runs the V20/V70 scenario (pi-app in V20, V70 lazy) on seven
// stacks installed on one HP Elite 8300 (i7-3770) and shows:
//   * fixed-credit platforms (Hyper-V, ESXi, Xen/credit) lose 27–50 % under
//     OnDemand because the underloaded host gets down-clocked;
//   * Xen/PAS cancels the loss entirely;
//   * variable-credit platforms (Xen/SEDF, KVM, VirtualBox) keep the host
//     busy, so OnDemand never down-clocks — 0 % loss, at the price of V20
//     consuming far more than its SLA.
//
// We model each platform as: scheduler family + effective DVFS floor under
// its power policy + extra-time work efficiency. The floor and efficiency
// constants are calibrated once from the paper's measured *Performance*
// column (documented per entry); the OnDemand column and the degradation
// percentages are then produced by the model, not hardcoded.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::platform {

enum class SchedulerFamily {
  kFixedCredit,    // cap-enforcing
  kFixedCreditPas, // cap-enforcing + PAS controller (Xen/PAS)
  kVariableCredit, // work-conserving
};

struct PlatformProfile {
  std::string name;
  SchedulerFamily family = SchedulerFamily::kFixedCredit;
  /// Lowest P-state index the platform's OnDemand-equivalent policy will
  /// select on this host (its power-policy floor).
  std::size_t ondemand_floor = 0;
  /// Useful-work fraction of extra-time grants (variable-credit only).
  double extra_work_efficiency = 1.0;
};

/// The i7-3770-like host ladder shared by every platform row:
/// 1700 / 2040 / 2473 / 2800 / 3100 / 3400 MHz
/// (ratios 0.50, 0.60, 0.727, 0.824, 0.912, 1.00 — chosen so the floors of
/// Hyper-V (0.5), Xen (0.6) and ESXi (0.727) are exact ladder states).
[[nodiscard]] cpu::FrequencyLadder table2_ladder();

/// The seven platforms of Table 2.
[[nodiscard]] std::vector<PlatformProfile> table2_platforms();

struct Table2Row {
  std::string name;
  std::string family;
  double t_performance_sec = 0.0;  // execution time, Performance governor
  double t_ondemand_sec = 0.0;     // execution time, OnDemand governor
  double degradation_pct = 0.0;    // (t_ondemand / t_performance - 1) * 100
};

struct Table2Config {
  /// pi-app size. 311.8 max-frequency seconds makes the fixed-credit
  /// Performance rows land near the paper's ~1550–1600 s.
  common::Work pi_work = common::mf_seconds(311.8);
  common::Percent v20_credit = 20.0;
  common::Percent v70_credit = 70.0;
};

/// Runs one platform row (both governor modes).
[[nodiscard]] Table2Row run_platform(const PlatformProfile& profile,
                                     const Table2Config& config = {});

/// Runs the whole table.
[[nodiscard]] std::vector<Table2Row> run_table2(const Table2Config& config = {});

}  // namespace pas::platform
