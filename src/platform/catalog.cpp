#include "platform/catalog.hpp"

#include <memory>
#include <stdexcept>

#include "core/pas_controller.hpp"
#include "governor/governors.hpp"
#include "hypervisor/host.hpp"
#include "sched/credit_scheduler.hpp"
#include "sched/sedf_scheduler.hpp"
#include "workload/pi_app.hpp"
#include "workload/synthetic.hpp"

namespace pas::platform {

cpu::FrequencyLadder table2_ladder() {
  return cpu::FrequencyLadder::uniform({1700, 2040, 2473, 2800, 3100, 3400});
}

std::vector<PlatformProfile> table2_platforms() {
  // Floors / efficiencies calibrated from the paper's Performance column
  // and OnDemand floor behaviour (DESIGN.md §5, Table 2 mechanism):
  //  * Hyper-V's power policy descends to ratio 0.50  (paper ×2.01 loss);
  //  * ESXi "balanced" stops at a mid P-state, ratio 0.727 (paper ×1.375);
  //  * Xen ondemand reaches ratio 0.60 on this load     (paper ×1.667);
  //  * variable-credit extra-time efficiencies reproduce the measured
  //    616 / 599 / 625 s (0.2 + 0.8 * eff of the machine).
  return {
      PlatformProfile{"Hyper-V Server 2012", SchedulerFamily::kFixedCredit, 0, 1.0},
      PlatformProfile{"VMware ESXi 5", SchedulerFamily::kFixedCredit, 2, 1.0},
      PlatformProfile{"Xen/credit", SchedulerFamily::kFixedCredit, 1, 1.0},
      PlatformProfile{"Xen/PAS", SchedulerFamily::kFixedCreditPas, 0, 1.0},
      PlatformProfile{"Xen/SEDF", SchedulerFamily::kVariableCredit, 1, 0.3825},
      PlatformProfile{"KVM", SchedulerFamily::kVariableCredit, 0, 0.4006},
      PlatformProfile{"VirtualBox", SchedulerFamily::kVariableCredit, 0, 0.3736},
  };
}

namespace {

std::string family_name(SchedulerFamily f) {
  switch (f) {
    case SchedulerFamily::kFixedCredit:
      return "fixed credit";
    case SchedulerFamily::kFixedCreditPas:
      return "fixed credit + PAS";
    case SchedulerFamily::kVariableCredit:
      return "variable credit";
  }
  return "?";
}

/// Runs V20's pi-app to completion on the given platform and governor mode;
/// returns the execution time in seconds.
double run_pi_sec(const PlatformProfile& p, const Table2Config& cfg, bool ondemand_mode) {
  hv::HostConfig hc;
  hc.ladder = table2_ladder();
  hc.trace_stride = common::SimTime{};

  std::unique_ptr<hv::Scheduler> sched;
  if (p.family == SchedulerFamily::kVariableCredit) {
    sched::SedfSchedulerConfig sc;
    sc.extra_work_efficiency = p.extra_work_efficiency;
    sched = std::make_unique<sched::SedfScheduler>(sc);
  } else {
    sched = std::make_unique<sched::CreditScheduler>();
  }
  hv::Host host{hc, std::move(sched)};

  if (p.family == SchedulerFamily::kFixedCreditPas) {
    // PAS owns both credits and frequency; no governor in either mode
    // (matches the paper's identical 1559/1560 cells).
    host.set_controller(std::make_unique<core::PasController>());
  } else if (ondemand_mode) {
    host.set_governor(std::make_unique<gov::OndemandGovernor>());
    host.cpufreq().set_floor(p.ondemand_floor);
  } else {
    host.set_governor(std::make_unique<gov::PerformanceGovernor>());
  }

  // Dom0 idle; V20 runs the pi-app; V70 configured but lazy — the paper's
  // Table 2 scenario.
  hv::VmConfig dom0;
  dom0.name = "Dom0";
  dom0.credit = 10.0;
  dom0.priority = 1;
  host.add_vm(dom0, std::make_unique<wl::IdleGuest>());

  hv::VmConfig v20;
  v20.name = "V20";
  v20.credit = cfg.v20_credit;
  auto app = std::make_unique<wl::PiApp>(cfg.pi_work);
  const wl::PiApp* app_ptr = app.get();
  host.add_vm(v20, std::move(app));

  hv::VmConfig v70;
  v70.name = "V70";
  v70.credit = cfg.v70_credit;
  host.add_vm(v70, std::make_unique<wl::IdleGuest>());

  const double worst_capacity = cfg.v20_credit / 100.0 * host.cpu().ladder().ratio(0);
  const double bound_sec = cfg.pi_work.mf_seconds() / worst_capacity * 2.0 + 120.0;
  const common::SimTime bound = common::seconds(static_cast<std::int64_t>(bound_sec));
  const common::SimTime chunk = common::seconds(30);
  while (!app_ptr->completion_time() && host.now() < bound) {
    host.run_until(host.now() + chunk);
  }
  if (!app_ptr->completion_time())
    throw std::runtime_error("run_pi_sec: pi-app did not complete on " + p.name);
  return app_ptr->completion_time()->sec();
}

}  // namespace

Table2Row run_platform(const PlatformProfile& profile, const Table2Config& config) {
  Table2Row row;
  row.name = profile.name;
  row.family = family_name(profile.family);
  row.t_performance_sec = run_pi_sec(profile, config, /*ondemand_mode=*/false);
  row.t_ondemand_sec = run_pi_sec(profile, config, /*ondemand_mode=*/true);
  // The paper's "Degradation(%)" is the share of performance lost:
  // (1 - t_perf / t_ondemand) * 100.
  row.degradation_pct =
      row.t_ondemand_sec > 0.0
          ? (1.0 - row.t_performance_sec / row.t_ondemand_sec) * 100.0
          : 0.0;
  return row;
}

std::vector<Table2Row> run_table2(const Table2Config& config) {
  std::vector<Table2Row> rows;
  for (const auto& p : table2_platforms()) rows.push_back(run_platform(p, config));
  return rows;
}

}  // namespace pas::platform
