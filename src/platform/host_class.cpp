#include "platform/host_class.hpp"

#include <stdexcept>

#include "common/random.hpp"

namespace pas::platform {

HostClass optiplex_755() {
  HostClass c;
  c.name = "optiplex-755";
  c.ladder = cpu::FrequencyLadder::paper_default();
  c.power = cpu::PowerModel::desktop_2008();
  c.memory_mb = 4096.0;
  return c;
}

HostClass elite_8300() {
  HostClass c;
  c.name = "elite-8300";
  // The Table 2 ladder (platform::table2_ladder): floors of the measured
  // power policies are exact states, ratio 0.50 at the bottom.
  c.ladder = cpu::FrequencyLadder::uniform({1700, 2040, 2473, 2800, 3100, 3400});
  c.power = cpu::PowerModel{30.0, 90.0, 3.0};
  c.memory_mb = 8192.0;
  return c;
}

HostClass xeon_e5_2620() {
  HostClass c;
  c.name = "xeon-e5-2620";
  // Table 1's turbo mechanism as a ladder: the top state silently runs at
  // ~2.49 GHz, so relative to it the nominal lower states deliver only
  // 2000/2489.5 ~= 0.80 of proportional performance — the paper's measured
  // cf_min, carried here as per-state cf.
  c.ladder = cpu::FrequencyLadder{{{common::Mhz{1200}, 0.803},
                                   {common::Mhz{1400}, 0.803},
                                   {common::Mhz{1600}, 0.803},
                                   {common::Mhz{1800}, 0.803},
                                   {common::Mhz{2000}, 1.0}}};
  c.power = cpu::PowerModel{120.0, 235.0, 3.0};
  c.memory_mb = 16384.0;
  c.numa_nodes = 2;
  c.numa_spill_penalty = 0.15;
  return c;
}

std::vector<HostClass> fleet_catalog() {
  return {xeon_e5_2620(), optiplex_755(), elite_8300()};
}

std::vector<HostClass> uniform_fleet_classes(std::size_t count,
                                             const HostClass& host_class) {
  return std::vector<HostClass>(count, host_class);
}

std::vector<HostClass> mixed_fleet_classes(std::size_t count, std::uint64_t seed) {
  const std::vector<HostClass> catalog = fleet_catalog();
  std::vector<HostClass> fleet;
  fleet.reserve(count);
  if (seed == 0) {
    for (std::size_t i = 0; i < count; ++i) fleet.push_back(catalog[i % catalog.size()]);
    return fleet;
  }
  common::Rng rng{seed};
  for (std::size_t i = 0; i < count; ++i)
    fleet.push_back(catalog[rng.next_below(catalog.size())]);
  return fleet;
}

consolidation::HostSpec to_host_spec(const HostClass& host_class) {
  consolidation::HostSpec spec;
  spec.name = host_class.name;
  spec.cpu_capacity_pct = host_class.cpu_capacity_pct;
  spec.memory_mb = host_class.memory_mb;
  spec.ladder = host_class.ladder;
  spec.power = host_class.power;
  spec.numa_nodes = host_class.numa_nodes;
  spec.numa_spill_penalty = host_class.numa_spill_penalty;
  return spec;
}

std::vector<consolidation::HostSpec> fleet_specs(const std::vector<HostClass>& per_host) {
  std::vector<consolidation::HostSpec> specs;
  specs.reserve(per_host.size());
  for (std::size_t i = 0; i < per_host.size(); ++i) {
    consolidation::HostSpec spec = to_host_spec(per_host[i]);
    spec.name += "-" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<consolidation::HostSpec> planner_fleet(std::size_t count,
                                                   const HostClass& host_class) {
  return consolidation::fleet_from_classes(count, {to_host_spec(host_class)});
}

}  // namespace pas::platform
