// Per-machine platform classes for heterogeneous fleets.
//
// The paper's evaluation already spans distinct machines — the Optiplex 755
// every figure runs on, the HP Elite 8300 (i7-3770) behind Table 2, the
// Grid5000 parts of Table 1 with cf < 1 — yet the cluster layer used to
// clone one host template across the whole fleet, so consolidation and
// DVFS decisions were blind to machine differences. A HostClass bundles
// what makes a machine *itself*: its frequency ladder (with per-state cf),
// its power model, its schedulable CPU capacity, its memory, and its NUMA
// layout with the cross-node efficiency penalty the planner charges when a
// VM cannot be node-local.
//
// The stock classes below are cut from those measured machines; the fleet
// catalog and the mixing helpers turn them into per-host class lists that
// cluster::ClusterConfig, scenario::HostingClusterConfig and the
// consolidation planner all consume. Every helper is deterministic — mixes
// are a pure function of (count, seed) — so heterogeneous runs keep the
// repo's byte-identity contracts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "consolidation/consolidation.hpp"
#include "cpu/frequency_ladder.hpp"
#include "cpu/power_model.hpp"

namespace pas::platform {

struct HostClass {
  std::string name;
  cpu::FrequencyLadder ladder = cpu::FrequencyLadder::paper_default();
  cpu::PowerModel power = cpu::PowerModel::desktop_2008();
  /// Schedulable CPU in percent of one max-frequency processor (the
  /// simulated host models a single processor, so cluster classes use 100;
  /// the static planner accepts larger values for capacity studies).
  double cpu_capacity_pct = 100.0;
  double memory_mb = 4096.0;
  /// NUMA node count; memory_mb splits evenly across nodes. 1 = UMA.
  std::size_t numa_nodes = 1;
  /// Extra CPU fraction a VM costs when its footprint exceeds one node
  /// (consolidation::numa_spills) — the cross-node efficiency penalty.
  double numa_spill_penalty = 0.0;
};

// --- stock classes (the paper's machines) ----------------------------------

/// DELL Optiplex 755 — the paper's evaluation host: the 1600–2667 MHz
/// ladder of every figure, a Core2-era 45/105 W desktop envelope, 4 GB.
[[nodiscard]] HostClass optiplex_755();

/// HP Elite 8300 (i7-3770) — the Table 2 machine: the 1700–3400 MHz ladder
/// with a deep 0.50-ratio floor, an Ivy-Bridge-era 30/90 W envelope, 8 GB.
/// The fleet's power-efficient class.
[[nodiscard]] HostClass elite_8300();

/// Dual-socket Xeon E5-2620 — the Table 1 machine whose cf drops to 0.80:
/// lower states deliver only ~80 % of nominal proportionality (the turbo
/// effect modeled in calibration/machine_model), a 120/235 W server
/// envelope, 16 GB across 2 NUMA nodes with a 15 % cross-node penalty.
/// The fleet's power-hungry class.
[[nodiscard]] HostClass xeon_e5_2620();

/// The stock classes, ordered hungriest-first (xeon, optiplex, elite) —
/// the order mixed_fleet_classes round-robins, so index-order packing
/// lights the most expensive machines first and efficient-first packing
/// has something to save.
[[nodiscard]] std::vector<HostClass> fleet_catalog();

// --- fleet builders --------------------------------------------------------

/// `count` copies of one class — the uniform fleet as a class list.
[[nodiscard]] std::vector<HostClass> uniform_fleet_classes(std::size_t count,
                                                           const HostClass& host_class);

/// A deterministic heterogeneous fleet: seed 0 round-robins the catalog
/// (host i gets catalog[i % 3], hungriest at index 0); any other seed draws
/// each host's class from a common::Rng{seed}. Pure function of its
/// arguments — safe under every byte-identity contract.
[[nodiscard]] std::vector<HostClass> mixed_fleet_classes(std::size_t count,
                                                         std::uint64_t seed = 0);

// --- planner bridges -------------------------------------------------------

/// The consolidation planner's view of a class (name carried verbatim; use
/// fleet_specs / planner_fleet for per-host "-i" suffixed names).
[[nodiscard]] consolidation::HostSpec to_host_spec(const HostClass& host_class);

/// Per-host class list -> planner fleet, entry i named "<class>-i".
[[nodiscard]] std::vector<consolidation::HostSpec> fleet_specs(
    const std::vector<HostClass>& per_host);

/// `count` planner hosts cut from one class — the shared setup behind the
/// consolidation example and the ablation bench.
[[nodiscard]] std::vector<consolidation::HostSpec> planner_fleet(
    std::size_t count, const HostClass& host_class);

}  // namespace pas::platform
