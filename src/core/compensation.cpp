#include "core/compensation.hpp"

#include <cassert>
#include <stdexcept>

namespace pas::core {

double absolute_load_pct(double global_load_pct, double ratio, double cf) {
  assert(ratio > 0.0 && cf > 0.0);
  return global_load_pct * ratio * cf;
}

double load_at_state_pct(double absolute, double ratio, double cf) {
  assert(ratio > 0.0 && cf > 0.0);
  return absolute / (ratio * cf);
}

double predicted_time_at_state(double t_max, double ratio, double cf) {
  assert(ratio > 0.0 && cf > 0.0);
  return t_max / (ratio * cf);
}

double predicted_time_for_credit(double t_init, common::Percent c_init, common::Percent c_new) {
  if (c_init <= 0.0 || c_new <= 0.0)
    throw std::invalid_argument("predicted_time_for_credit: credits must be positive");
  return t_init * (c_init / c_new);
}

common::Percent compensated_credit(common::Percent initial, double ratio, double cf) {
  if (ratio <= 0.0 || cf <= 0.0)
    throw std::invalid_argument("compensated_credit: ratio and cf must be positive");
  return initial / (ratio * cf);
}

std::size_t compute_new_freq_index(const cpu::FrequencyLadder& ladder, double absolute) {
  // Listing 1.1: iterate frequencies ascending, return the first whose
  // capacity strictly exceeds the absolute load.
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder.capacity_pct(i) > absolute) return i;
  }
  return ladder.max_index();
}

common::Percent compensated_credit(common::Percent initial, const cpu::FrequencyLadder& ladder,
                                   std::size_t state_index) {
  return compensated_credit(initial, ladder.ratio(state_index), ladder.at(state_index).cf);
}

std::size_t compute_new_freq_index_saturating(const cpu::FrequencyLadder& ladder,
                                              double absolute, double global_load_pct,
                                              std::size_t current_index,
                                              double saturation_threshold_pct,
                                              double down_headroom_pct) {
  std::size_t target = compute_new_freq_index(ladder, absolute);
  if (global_load_pct >= saturation_threshold_pct && current_index < ladder.max_index()) {
    target = std::max(target, current_index + 1);
  }
  // Downward moves need real margin, not a strict-inequality tie.
  while (target < current_index &&
         ladder.capacity_pct(target) <= absolute + down_headroom_pct) {
    ++target;
  }
  return target;
}

}  // namespace pas::core
