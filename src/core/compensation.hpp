// The paper's equations (§4.2), implemented as pure functions.
//
// Eq. 1 (frequency/performance proportionality for loads):
//     L_max / L_i = (F_i / F_max) * cf_i
// Eq. 2 (same for execution times):
//     T_max / T_i = (F_i / F_max) * cf_i
// Eq. 3 (credit/performance proportionality):
//     T_init / T_j = C_j / C_init
// Eq. 4 (the compensation rule — the contribution):
//     C_j = C_init / (ratio_i * cf_i)
//
// Plus Listing 1.1 (computeNewFreq) and the absolute-load definition:
//     Absolute_load = Global_load * (F_cur / F_max) * cf_cur
//
// Everything stateful (when to apply these, to which VMs, with what
// smoothing) lives in the controllers; keeping the math free-standing makes
// the §5.2 proportionality verification and the property tests direct.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::core {

/// Eq. 1 rearranged: the load this measured load would represent at the
/// maximum frequency. `ratio` = F_cur/F_max, `cf` = cf_cur.
[[nodiscard]] double absolute_load_pct(double global_load_pct, double ratio, double cf);

/// Eq. 1 forward: the load a given absolute load represents at state
/// (ratio, cf). Unbounded above 100 (an infeasible demand stays infeasible).
[[nodiscard]] double load_at_state_pct(double absolute_load_pct, double ratio, double cf);

/// Eq. 2: predicted execution time at (ratio, cf) given the time at the
/// maximum frequency.
[[nodiscard]] double predicted_time_at_state(double t_max, double ratio, double cf);

/// Eq. 3: predicted execution time when the credit changes from c_init to
/// c_new at a fixed frequency.
[[nodiscard]] double predicted_time_for_credit(double t_init, common::Percent c_init,
                                               common::Percent c_new);

/// Eq. 4: the credit that preserves, at state (ratio, cf), the computing
/// capacity the VM had with `initial` credit at the maximum frequency. May
/// exceed 100 % ("the sum of the VM credits may be more than 100%" — §4.2).
[[nodiscard]] common::Percent compensated_credit(common::Percent initial, double ratio,
                                                 double cf);

/// Listing 1.1 — computeNewFreq: the lowest P-state whose computing
/// capacity (ratio * 100 * cf) strictly exceeds the absolute load; the
/// maximum state if none does.
[[nodiscard]] std::size_t compute_new_freq_index(const cpu::FrequencyLadder& ladder,
                                                 double absolute_load_pct);

/// Convenience: eq. 4 evaluated against a ladder state.
[[nodiscard]] common::Percent compensated_credit(common::Percent initial,
                                                 const cpu::FrequencyLadder& ladder,
                                                 std::size_t state_index);

/// Listing 1.1 with two stability amendments (both documented deviations —
/// see DESIGN.md §6):
///
/// 1. Saturation escalation. A saturated host (global load pinned at
///    ~100 %) measures an absolute load exactly equal to the current
///    state's capacity — the true demand is unobservable from below. The
///    paper's strict `>` comparison then keeps the frequency where it is
///    forever (on real hardware measurement noise breaks the tie; a
///    deterministic simulator deadlocks). When the global load is at or
///    above `saturation_threshold_pct` and a higher state exists, force at
///    least one step up; repeated ticks climb to a state that actually
///    absorbs the demand.
///
/// 2. Down-scaling headroom. Moving DOWN to a state whose capacity only
///    marginally exceeds the absolute load re-saturates the host (the
///    compensated credits no longer fit), which re-triggers escalation — a
///    flapping cycle. A downward move must leave `down_headroom_pct` of
///    capacity margin; if the Listing 1.1 state does not, the target walks
///    up until one does (or the current state is kept). Upward moves are
///    never delayed: QoS beats energy.
[[nodiscard]] std::size_t compute_new_freq_index_saturating(
    const cpu::FrequencyLadder& ladder, double absolute_load_pct, double global_load_pct,
    std::size_t current_index, double saturation_threshold_pct = 98.0,
    double down_headroom_pct = 3.0);

}  // namespace pas::core
