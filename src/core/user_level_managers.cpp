#include "core/user_level_managers.hpp"

namespace pas::core {

UserLevelCreditManager::UserLevelCreditManager(UserLevelConfig config) : cfg_(config) {}

void UserLevelCreditManager::attach(const hv::HostView& view) {
  initial_credits_.assign(view.initial_credits.begin(), view.initial_credits.end());
}

void UserLevelCreditManager::on_tick(common::SimTime /*now*/, const hv::HostView& view) {
  // Design 1 only *reads* the frequency; the governor owns it.
  const cpu::FrequencyLadder& ladder = view.cpufreq->ladder();
  const std::size_t cur = view.cpufreq->current_index();
  for (std::size_t i = 0; i < view.vms.size(); ++i) {
    const common::Percent init = initial_credits_[i];
    if (init <= 0.0) continue;
    view.scheduler->set_cap(view.vms[i], compensated_credit(init, ladder, cur));
  }
}

UserLevelDvfsCreditManager::UserLevelDvfsCreditManager(UserLevelConfig config) : cfg_(config) {}

void UserLevelDvfsCreditManager::attach(const hv::HostView& view) {
  initial_credits_.assign(view.initial_credits.begin(), view.initial_credits.end());
}

void UserLevelDvfsCreditManager::on_tick(common::SimTime /*now*/, const hv::HostView& view) {
  const cpu::FrequencyLadder& ladder = view.cpufreq->ladder();
  const double absolute = view.monitor->avg_absolute_load_pct();
  const std::size_t target = compute_new_freq_index_saturating(
      ladder, absolute, view.monitor->avg_global_load_pct(), view.cpufreq->current_index());
  for (std::size_t i = 0; i < view.vms.size(); ++i) {
    const common::Percent init = initial_credits_[i];
    if (init <= 0.0) continue;
    view.scheduler->set_cap(view.vms[i], compensated_credit(init, ladder, target));
  }
  view.cpufreq->request(target);
}

}  // namespace pas::core
