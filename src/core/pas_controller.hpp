// PAS — the Power-Aware Scheduler (§4): the paper's contribution.
//
// In-hypervisor design (the third of §4.1, the one the paper evaluates):
// at every scheduler tick,
//   1. read the smoothed global load and derive the absolute load;
//   2. computeNewFreq (Listing 1.1): lowest P-state that absorbs it;
//   3. updateDvfsAndCredits (Listing 1.2): recompute every VM's credit as
//      C_init / (ratio * cf) and apply both credits and frequency.
//
// Effects (the paper's design principles, end of §3.2):
//   * a VM's configured credit is a share of the processor at MAX frequency;
//   * credits rise when frequency falls (and vice versa) so the delivered
//     computing capacity is invariant;
//   * no VM ever receives more computing capacity than it bought, so the
//     host can keep the frequency low when it is genuinely underloaded.
#pragma once

#include <string>
#include <vector>

#include "core/compensation.hpp"
#include "hypervisor/controller.hpp"

namespace pas::core {

struct PasConfig {
  /// Tick period. The paper hooks the Xen scheduler tick; we default to the
  /// credit scheduler's 30 ms accounting period.
  common::SimTime period = common::msec(30);
  /// Use the three-window averaged load (paper footnote 5). Disable only
  /// for ablation: the raw last-window load makes PAS twitchy.
  bool use_averaged_load = true;
  /// Exempt VMs whose configured credit is 0 (uncapped null-credit VMs have
  /// no SLA to preserve).
  bool skip_uncapped = true;
  /// Saturation escalation (see compute_new_freq_index_saturating): when
  /// the smoothed global load reaches this, force at least one state up.
  double saturation_threshold_pct = 98.0;
  /// Down-moves must hold for this many consecutive ticks before they are
  /// applied (~3 s at the 30 ms tick — the smoothing horizon). Upward moves
  /// are immediate: QoS beats energy.
  int down_patience_ticks = 100;
};

class PasController final : public hv::Controller {
 public:
  explicit PasController(PasConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "pas"; }
  [[nodiscard]] common::SimTime period() const override { return cfg_.period; }
  void attach(const hv::HostView& view) override;
  void on_tick(common::SimTime now, const hv::HostView& view) override;

  /// Last frequency decision (diagnostics).
  [[nodiscard]] std::size_t last_freq_index() const { return last_index_; }
  /// Number of ticks during which the credits were rescaled.
  [[nodiscard]] std::uint64_t tick_count() const { return ticks_; }

 private:
  PasConfig cfg_;
  std::vector<common::Percent> initial_credits_;
  std::size_t last_index_ = 0;
  std::uint64_t ticks_ = 0;
  int down_streak_ = 0;
};

}  // namespace pas::core
