#include "core/pas_controller.hpp"

#include <cassert>

namespace pas::core {

PasController::PasController(PasConfig config) : cfg_(config) {}

void PasController::attach(const hv::HostView& view) {
  // Snapshot the configured credits: these are the SLAs that compensation
  // preserves, regardless of whatever the caps currently are.
  initial_credits_.assign(view.initial_credits.begin(), view.initial_credits.end());
  last_index_ = view.cpufreq->current_index();
}

void PasController::on_tick(common::SimTime /*now*/, const hv::HostView& view) {
  assert(view.monitor != nullptr && view.cpufreq != nullptr && view.scheduler != nullptr);
  ++ticks_;

  const metrics::LoadMonitor& mon = *view.monitor;
  // The monitor accumulates *work*, so its absolute load is exact even when
  // the frequency changed mid-window — no eq.1 rescaling needed here.
  const double absolute =
      cfg_.use_averaged_load ? mon.avg_absolute_load_pct() : mon.absolute_load_pct();
  const double global =
      cfg_.use_averaged_load ? mon.avg_global_load_pct() : mon.global_load_pct();

  const cpu::FrequencyLadder& ladder = view.cpufreq->ladder();
  const std::size_t current = view.cpufreq->current_index();
  std::size_t target = compute_new_freq_index_saturating(
      ladder, absolute, global, current, cfg_.saturation_threshold_pct);
  if (target < current) {
    // A downward move must persist across the smoothing horizon; a single
    // stale-window dip right after an up-ramp must not yank the frequency
    // back down (that re-saturates the host and causes flapping).
    if (++down_streak_ < cfg_.down_patience_ticks) target = current;
  } else {
    down_streak_ = 0;
  }

  // Listing 1.2 — updateDvfsAndCredits.
  for (std::size_t i = 0; i < view.vms.size(); ++i) {
    const common::Percent init = initial_credits_[i];
    if (cfg_.skip_uncapped && init <= 0.0) continue;
    view.scheduler->set_cap(view.vms[i], compensated_credit(init, ladder, target));
  }
  view.cpufreq->request(target);
  last_index_ = target;
}

}  // namespace pas::core
