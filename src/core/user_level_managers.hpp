// The two user-level designs of §4.1, kept as first-class citizens so the
// implementation-choice ablation (bench_ablation_impl_choice) can compare
// them against the in-hypervisor PAS.
//
//  Design 1 — UserLevelCreditManager ("user level - credit management"):
//    the stock Ondemand governor keeps managing DVFS; a user-level daemon
//    periodically *observes* the current frequency and rewrites VM credits
//    to compensate. Simple, but it chases the governor: after every
//    frequency change the credits are wrong until the daemon's next pass,
//    and the governor in turn reacts to load the stale credits produced.
//
//  Design 2 — UserLevelDvfsCreditManager ("user level - credit and DVFS
//    management"): the daemon owns both decisions (the governor is set to
//    userspace/none). Consistent, but still slow: daemon periods are tens
//    of monitor windows, not scheduler ticks, and each pass models the
//    syscall/hypercall round-trips of a real userspace tool (xm sched-*,
//    cpufreq-set) as actuation lag.
#pragma once

#include <vector>

#include "core/compensation.hpp"
#include "hypervisor/controller.hpp"

namespace pas::core {

struct UserLevelConfig {
  /// Daemon wake-up period. Real monitoring daemons poll on the order of
  /// seconds; the paper calls the approach "quite intrusive ... and it may
  /// lack reactivity".
  common::SimTime period = common::seconds(2);
};

class UserLevelCreditManager final : public hv::Controller {
 public:
  explicit UserLevelCreditManager(UserLevelConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "userlevel-credit"; }
  [[nodiscard]] common::SimTime period() const override { return cfg_.period; }
  void attach(const hv::HostView& view) override;
  /// Reads the frequency the governor chose and rewrites credits (eq. 4).
  void on_tick(common::SimTime now, const hv::HostView& view) override;

 private:
  UserLevelConfig cfg_;
  std::vector<common::Percent> initial_credits_;
};

class UserLevelDvfsCreditManager final : public hv::Controller {
 public:
  explicit UserLevelDvfsCreditManager(UserLevelConfig config = {});

  [[nodiscard]] std::string_view name() const override { return "userlevel-dvfs-credit"; }
  [[nodiscard]] common::SimTime period() const override { return cfg_.period; }
  void attach(const hv::HostView& view) override;
  /// Computes the fitting frequency from the observed absolute load, then
  /// sets both frequency and credits.
  void on_tick(common::SimTime now, const hv::HostView& view) override;

 private:
  UserLevelConfig cfg_;
  std::vector<common::Percent> initial_credits_;
};

}  // namespace pas::core
