// Umbrella header: the public API of the PAS library.
//
// Quickstart:
//
//   #include "core/pas.hpp"
//
//   using namespace pas;
//   hv::HostConfig hc;                                   // Optiplex ladder
//   hv::Host host{hc, std::make_unique<sched::CreditScheduler>()};
//   host.set_controller(std::make_unique<core::PasController>());
//
//   hv::VmConfig v20{.name = "V20", .credit = 20.0};
//   host.add_vm(v20, std::make_unique<wl::BusyLoop>());  // thrashing VM
//   host.run_until(common::seconds(100));
//
//   // V20's absolute capacity is 20 % although the frequency is low:
//   host.monitor().vm_absolute_load_pct(0);
#pragma once

#include "core/compensation.hpp"      // IWYU pragma: export
#include "core/pas_controller.hpp"    // IWYU pragma: export
#include "core/user_level_managers.hpp"  // IWYU pragma: export
#include "governor/governors.hpp"     // IWYU pragma: export
#include "hypervisor/host.hpp"        // IWYU pragma: export
#include "sched/scheduler_factory.hpp"  // IWYU pragma: export
#include "workload/pi_app.hpp"        // IWYU pragma: export
#include "workload/synthetic.hpp"     // IWYU pragma: export
#include "workload/web_app.hpp"       // IWYU pragma: export
