// P-state ladder: the set of frequencies the processor supports, with the
// paper's per-frequency correction factor cf_i.
//
// Eq. 1/2 of the paper model performance as proportional to frequency up to
// a per-frequency factor cf_i ("very close to 1" on the evaluation machine,
// but as low as 0.80 on an E5-2620 — Table 1). The ladder stores cf_i next
// to each frequency; the CPU model and the PAS equations both consume it.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace pas::cpu {

/// One processor performance state.
struct PState {
  common::Mhz freq;
  /// Correction factor cf_i from eq. 1: at this state the processor delivers
  /// (freq / freq_max) * cf computation per unit of wall time, normalized to
  /// the maximum state.
  double cf = 1.0;
};

/// An immutable, ascending list of P-states. Index 0 is the lowest
/// frequency; index size()-1 the highest (the paper's Freq[fmax]).
class FrequencyLadder {
 public:
  /// Builds a ladder from ascending states. Throws std::invalid_argument if
  /// empty, unordered, or any cf <= 0.
  explicit FrequencyLadder(std::vector<PState> states);

  /// Ladder with cf = 1 everywhere (the common case in the paper's host).
  static FrequencyLadder uniform(std::initializer_list<double> mhz_values);

  /// The Optiplex 755 ladder used throughout the paper's evaluation:
  /// 1600 / 1867 / 2133 / 2400 / 2667 MHz, cf = 1.
  static FrequencyLadder paper_default();

  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] const PState& at(std::size_t i) const { return states_.at(i); }
  [[nodiscard]] const PState& min() const { return states_.front(); }
  [[nodiscard]] const PState& max() const { return states_.back(); }
  [[nodiscard]] std::size_t max_index() const { return states_.size() - 1; }
  [[nodiscard]] std::span<const PState> states() const { return states_; }

  /// F_i / F_max for state i.
  [[nodiscard]] double ratio(std::size_t i) const { return states_.at(i).freq / max().freq; }

  /// Computing capacity of state i relative to the max state, in percent of
  /// the max-frequency processor: ratio_i * 100 * cf_i. This is exactly the
  /// quantity Listing 1.1 compares against the absolute load.
  [[nodiscard]] double capacity_pct(std::size_t i) const { return ratio(i) * 100.0 * states_.at(i).cf; }

  /// Index of the state with exactly this frequency; throws
  /// std::invalid_argument if absent.
  [[nodiscard]] std::size_t index_of(common::Mhz f) const;

 private:
  std::vector<PState> states_;
};

}  // namespace pas::cpu
