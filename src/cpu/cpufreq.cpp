#include "cpu/cpufreq.hpp"

#include <algorithm>
#include <cassert>

namespace pas::cpu {

Cpufreq::Cpufreq(CpuModel& cpu, common::SimTime transition_latency)
    : cpu_(cpu), transition_latency_(transition_latency), ceiling_(cpu.ladder().max_index()) {}

std::size_t Cpufreq::request(std::size_t index) {
  index = std::clamp(index, floor_, ceiling_);
  if (index != cpu_.current_index()) {
    cpu_.set_index(index);
    ++transitions_;
  }
  return index;
}

void Cpufreq::set_floor(std::size_t index) {
  assert(index < cpu_.ladder().size());
  floor_ = index;
  if (ceiling_ < floor_) ceiling_ = floor_;
  if (cpu_.current_index() < floor_) request(floor_);
}

void Cpufreq::set_ceiling(std::size_t index) {
  assert(index < cpu_.ladder().size());
  ceiling_ = index;
  if (floor_ > ceiling_) floor_ = ceiling_;
  if (cpu_.current_index() > ceiling_) request(ceiling_);
}

}  // namespace pas::cpu
