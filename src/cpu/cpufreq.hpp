// cpufreq subsystem: the kernel-style interface between frequency *policy*
// (governors, the PAS controller) and the frequency *mechanism* (CpuModel).
//
// Mirrors the Linux/Xen cpufreq layer the paper builds on (§2.2): policies
// request a target state; the subsystem applies it, enforces an optional
// floor/ceiling (platform power policies — see platform/), counts
// transitions and models transition latency as lost capacity.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "cpu/cpu_model.hpp"

namespace pas::cpu {

class Cpufreq {
 public:
  /// `transition_latency` models the stall while the PLL relocks; the
  /// aggregate is reported via stolen_time() (tens of microseconds per
  /// transition — a diagnostic for governor stability, not charged against
  /// simulated capacity).
  explicit Cpufreq(CpuModel& cpu, common::SimTime transition_latency = common::usec(50));

  [[nodiscard]] const CpuModel& cpu() const { return cpu_; }
  [[nodiscard]] std::size_t current_index() const { return cpu_.current_index(); }
  [[nodiscard]] common::Mhz current_freq() const { return cpu_.current_freq(); }
  [[nodiscard]] const FrequencyLadder& ladder() const { return cpu_.ladder(); }

  /// Requests a P-state. The request is clamped to [floor, ceiling]; a
  /// request equal to the current state is a no-op (not counted as a
  /// transition). Returns the state actually applied.
  std::size_t request(std::size_t index);

  /// Platform power-policy bounds (e.g. ESXi's "balanced" policy never
  /// descends below a mid P-state; see platform/catalog).
  void set_floor(std::size_t index);
  void set_ceiling(std::size_t index);
  [[nodiscard]] std::size_t floor() const { return floor_; }
  [[nodiscard]] std::size_t ceiling() const { return ceiling_; }

  [[nodiscard]] std::uint64_t transition_count() const { return transitions_; }
  /// Total wall time lost to transitions so far.
  [[nodiscard]] common::SimTime stolen_time() const {
    return transition_latency_ * static_cast<std::int64_t>(transitions_);
  }
  [[nodiscard]] common::SimTime transition_latency() const { return transition_latency_; }

 private:
  CpuModel& cpu_;
  common::SimTime transition_latency_;
  std::size_t floor_ = 0;
  std::size_t ceiling_;
  std::uint64_t transitions_ = 0;
};

}  // namespace pas::cpu
