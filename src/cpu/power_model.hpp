// Processor power model for the energy ablation benches.
//
// The paper motivates PAS with energy but never plots power; we add the
// standard CMOS model so the benches can report joules:
//
//     P(f, u) = P_idle + (P_busy_max - P_idle) * u * (f / f_max)^alpha
//
// alpha ≈ 3 captures V² · f scaling when voltage tracks frequency (DVFS);
// alpha = 1 degenerates to frequency-independent per-cycle energy.
#pragma once

#include <cmath>

#include "common/units.hpp"

namespace pas::cpu {

class PowerModel {
 public:
  PowerModel(double idle_watts, double busy_max_watts, double alpha = 3.0)
      : idle_w_(idle_watts), busy_max_w_(busy_max_watts), alpha_(alpha) {}

  /// A Core2-era desktop (the paper's Optiplex 755): ~45 W idle, ~105 W
  /// loaded at the top frequency.
  static PowerModel desktop_2008() { return PowerModel{45.0, 105.0, 3.0}; }

  /// Instantaneous power at frequency ratio `ratio` (F/Fmax) and utilization
  /// `util` in [0,1].
  ///
  /// Bit-exact fast paths: at util == 0 the pow term multiplies to +0.0
  /// whatever its value (ratio > 0 keeps it finite), so idle intervals —
  /// the overwhelming majority of records on a consolidated fleet — skip
  /// libm entirely; otherwise pow(ratio, alpha) is memoized on the last
  /// ratio, which only moves on a DVFS transition. Both return exactly
  /// the doubles the plain expression would.
  [[nodiscard]] double power_watts(double ratio, double util) const {
    if (util == 0.0) return idle_w_;
    if (ratio != pow_ratio_) {
      pow_ratio_ = ratio;
      pow_cache_ = std::pow(ratio, alpha_);
    }
    return idle_w_ + (busy_max_w_ - idle_w_) * util * pow_cache_;
  }

  /// Energy in joules for running `dt` at the given operating point.
  [[nodiscard]] double energy_joules(common::SimTime dt, double ratio, double util) const {
    return power_watts(ratio, util) * dt.sec();
  }

  [[nodiscard]] double idle_watts() const { return idle_w_; }
  [[nodiscard]] double busy_max_watts() const { return busy_max_w_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double idle_w_;
  double busy_max_w_;
  double alpha_;
  /// pow(ratio, alpha) memo for power_watts; per-instance, so parallel
  /// hosts (each owning its meter's model copy) never share it.
  mutable double pow_ratio_ = -1.0;
  mutable double pow_cache_ = 0.0;
};

}  // namespace pas::cpu
