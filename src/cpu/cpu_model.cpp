#include "cpu/cpu_model.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace pas::cpu {

CpuModel::CpuModel(FrequencyLadder ladder)
    : ladder_(std::move(ladder)), index_(ladder_.max_index()) {}

double CpuModel::speed() const {
  if (speed_override_) return speed_override_(index_);
  return ladder_.ratio(index_) * ladder_.at(index_).cf;
}

common::Work CpuModel::work_for(common::SimTime dt) const {
  return common::mf_usec(static_cast<double>(dt.us()) * speed());
}

common::SimTime CpuModel::time_for(common::Work w) const {
  const double s = speed();
  assert(s > 0.0);
  return common::usec(static_cast<std::int64_t>(std::ceil(w.mfus() / s)));
}

void CpuModel::set_index(std::size_t i) {
  assert(i < ladder_.size());
  index_ = i;
}

}  // namespace pas::cpu
