#include "cpu/frequency_ladder.hpp"

#include <stdexcept>
#include <utility>

namespace pas::cpu {

FrequencyLadder::FrequencyLadder(std::vector<PState> states) : states_(std::move(states)) {
  if (states_.empty()) throw std::invalid_argument("FrequencyLadder: no states");
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].freq.value() <= 0.0)
      throw std::invalid_argument("FrequencyLadder: non-positive frequency");
    if (states_[i].cf <= 0.0) throw std::invalid_argument("FrequencyLadder: non-positive cf");
    if (i > 0 && !(states_[i - 1].freq < states_[i].freq))
      throw std::invalid_argument("FrequencyLadder: states must be strictly ascending");
  }
}

FrequencyLadder FrequencyLadder::uniform(std::initializer_list<double> mhz_values) {
  std::vector<PState> s;
  s.reserve(mhz_values.size());
  for (double v : mhz_values) s.push_back(PState{common::mhz(v), 1.0});
  return FrequencyLadder{std::move(s)};
}

FrequencyLadder FrequencyLadder::paper_default() {
  return uniform({1600, 1867, 2133, 2400, 2667});
}

std::size_t FrequencyLadder::index_of(common::Mhz f) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].freq == f) return i;
  }
  throw std::invalid_argument("FrequencyLadder: frequency not in ladder");
}

}  // namespace pas::cpu
