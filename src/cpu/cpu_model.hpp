// Processor model: converts wall time at the current P-state into work done.
//
// This is the substrate that stands in for physical DVFS hardware. The
// conversion implements the paper's eq. 1/2 proportionality model directly:
//
//     work = wall_time * (F_cur / F_max) * cf_cur
//
// A "speed override" hook lets the calibration module model machines whose
// true behaviour *deviates* from the nominal model (turbo boost), which is
// how the paper's Table 1 cf values arise; see calibration/machine_model.
#pragma once

#include <cstddef>
#include <functional>

#include "common/units.hpp"
#include "cpu/frequency_ladder.hpp"

namespace pas::cpu {

class CpuModel {
 public:
  /// Starts at the maximum P-state (as a freshly booted host would under the
  /// performance governor).
  explicit CpuModel(FrequencyLadder ladder);

  [[nodiscard]] const FrequencyLadder& ladder() const { return ladder_; }
  [[nodiscard]] std::size_t current_index() const { return index_; }
  [[nodiscard]] common::Mhz current_freq() const { return ladder_.at(index_).freq; }
  [[nodiscard]] double current_ratio() const { return ladder_.ratio(index_); }
  [[nodiscard]] double current_cf() const { return ladder_.at(index_).cf; }

  /// Normalized execution speed at the current state: work per unit wall
  /// time, where 1.0 = max frequency with cf 1. With a speed override
  /// installed the override wins (turbo machines run *faster* than 1.0 at
  /// the top state never happens here because speeds are normalized to the
  /// true top speed; they run *slower than nominal* at lower states).
  [[nodiscard]] double speed() const;

  /// Work performed by running this CPU for `dt` of wall time.
  [[nodiscard]] common::Work work_for(common::SimTime dt) const;

  /// Wall time needed to perform `w` at the current state (rounded up to
  /// whole microseconds so a busy interval is never under-charged).
  [[nodiscard]] common::SimTime time_for(common::Work w) const;

  /// Switches P-state. Precondition: i < ladder().size().
  void set_index(std::size_t i);

  /// Installs a per-state true-speed function (normalized to the fastest
  /// state = 1.0). Used by calibration to model turbo: the *nominal* ladder
  /// says ratio = F_i/F_nominal_max, the *true* speed is F_i/F_turbo.
  using SpeedFn = std::function<double(std::size_t state_index)>;
  void set_speed_override(SpeedFn fn) { speed_override_ = std::move(fn); }

 private:
  FrequencyLadder ladder_;
  std::size_t index_;
  SpeedFn speed_override_;
};

}  // namespace pas::cpu
