// Load accounting: the measurement substrate behind every figure.
//
// Terminology follows §4 of the paper exactly:
//  * VM load          — how much of its *credit* a VM is using (100 % means
//                       the VM consumes its full allocation);
//  * VM global load   — the VM's contribution to processor time
//                       (busy time / wall time, in %);
//  * Global load      — sum of VM global loads; the paper always averages
//                       it over three successive windows (footnote 5);
//  * Absolute load    — the load the same work would represent at the
//                       maximum frequency: Global_load * ratio * cf. We
//                       compute it exactly by accumulating *work* instead of
//                       rescaling after the fact, which stays correct when
//                       the frequency changes inside a window.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/ring_buffer.hpp"
#include "common/units.hpp"

namespace pas::metrics {

class LoadMonitor {
 public:
  /// `window` is the sampling window (the paper samples utilization about
  /// once per second); `averaging_depth` is the paper's three-sample
  /// smoothing.
  explicit LoadMonitor(common::SimTime window = common::seconds(1),
                       std::size_t averaging_depth = 3);

  /// Declares a VM; ids must be dense starting at 0.
  void register_vm(common::VmId vm);

  /// Records that `vm` ran for `busy` wall time performing `work` within
  /// the current window.
  void record_run(common::VmId vm, common::SimTime busy, common::Work work);

  /// Closes the window ending at `now`; called by the host on window
  /// boundaries.
  void close_window(common::SimTime now);

  /// True when close_window() would be a value-exact no-op: nothing accrued
  /// in the open window, every last-window percentage already zero, and the
  /// smoothing rings full of zeros (a non-full ring still changes its mean
  /// divisor on push, so "empty and idle" is NOT settled). Lets the host's
  /// bulk idle skip cross monitor windows without replaying each close.
  /// Cumulative counters are untouched by close_window and don't enter in.
  [[nodiscard]] bool idle_settled() const;

  [[nodiscard]] common::SimTime window() const { return window_; }
  [[nodiscard]] std::size_t vm_count() const { return per_vm_.size(); }

  // --- Last closed window, in percent ---
  [[nodiscard]] double vm_global_load_pct(common::VmId vm) const;
  [[nodiscard]] double vm_absolute_load_pct(common::VmId vm) const;
  [[nodiscard]] double global_load_pct() const;
  [[nodiscard]] double absolute_load_pct() const;

  // --- Smoothed (averaged over the last `averaging_depth` windows) ---
  [[nodiscard]] double avg_global_load_pct() const;
  [[nodiscard]] double avg_absolute_load_pct() const;

  /// VM load in the paper's sense: VM_global_load / VM_credit * 100. The
  /// credit is supplied by the caller (the monitor does not know scheduler
  /// state).
  [[nodiscard]] double vm_load_pct(common::VmId vm, common::Percent credit) const;

  // --- Cumulative counters (since t = 0), for governors that sample on
  // their own period rather than on window boundaries ---
  [[nodiscard]] common::SimTime cumulative_busy() const { return cum_busy_all_; }
  [[nodiscard]] common::Work cumulative_work() const { return cum_work_all_; }
  [[nodiscard]] common::SimTime cumulative_busy(common::VmId vm) const;

 private:
  struct PerVm {
    common::SimTime window_busy{};
    common::Work window_work{};
    double last_global_pct = 0.0;
    double last_absolute_pct = 0.0;
    common::SimTime cum_busy{};
  };

  common::SimTime window_;
  std::vector<PerVm> per_vm_;
  double last_global_pct_ = 0.0;
  double last_absolute_pct_ = 0.0;
  common::RingBuffer<double> global_ring_;
  common::RingBuffer<double> absolute_ring_;
  common::SimTime cum_busy_all_{};
  common::Work cum_work_all_{};
};

}  // namespace pas::metrics
