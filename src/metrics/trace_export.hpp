// Re-emits a recorded run as replayable demand traces — the other half of
// the record→replay pipeline (workload/trace_replay.hpp reads what this
// writes).
//
// A TraceRecorder row at time t holds each VM's absolute load over the
// monitor window that closed at t (trace samples fire after the window
// close at the same instant — Host::install_periodic_tasks fixes that
// order), so with trace_stride == monitor_window the recorded series IS a
// step-function demand series on stride boundaries: sample r covers
// (t_r - stride, t_r]. The exporter validates that shape (equally spaced
// rows, first row one stride in) and quantizes demands to the trace
// serialization grid (1e-6), which makes the loop closable exactly: a
// synthetic run exported here, replayed through wl::TraceReplay on a host
// with capacity headroom, re-recorded and re-exported reproduces the trace
// file byte for byte (tests/cluster/cluster_trace_test.cpp pins this).
#pragma once

#include <string>

#include "common/ids.hpp"
#include "metrics/trace_recorder.hpp"
#include "workload/trace_replay.hpp"

namespace pas::metrics {

/// Builds the demand trace of one VM column from a recorded run. Throws
/// std::invalid_argument if the recorder is empty or its rows are not
/// equally spaced with the first at one stride (trace_stride must equal
/// the monitor window for the samples to tile time).
[[nodiscard]] wl::Trace vm_demand_trace(const TraceRecorder& recorder, common::VmId vm,
                                        std::string name = "vm");

/// vm_demand_trace + Trace::save.
void export_vm_demand_csv(const TraceRecorder& recorder, common::VmId vm,
                          const std::string& path, std::string name = "vm");

}  // namespace pas::metrics
