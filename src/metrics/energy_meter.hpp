// Energy accounting for the ablation benches (the provider-side metric the
// paper's governors are trying to optimize).
#pragma once

#include "common/units.hpp"
#include "cpu/power_model.hpp"

namespace pas::metrics {

class EnergyMeter {
 public:
  explicit EnergyMeter(cpu::PowerModel model) : model_(model) {}

  /// Accounts an interval of length `dt` spent at frequency ratio `ratio`
  /// with the CPU busy for `busy` of it.
  void record(common::SimTime dt, double ratio, common::SimTime busy) {
    if (dt.us() <= 0) return;
    const double util = static_cast<double>(busy.us()) / static_cast<double>(dt.us());
    joules_ += model_.energy_joules(dt, ratio, util);
    elapsed_ += dt;
  }

  [[nodiscard]] double joules() const { return joules_; }
  [[nodiscard]] double watt_hours() const { return joules_ / 3600.0; }
  [[nodiscard]] common::SimTime elapsed() const { return elapsed_; }
  /// Mean power over everything recorded so far.
  [[nodiscard]] double average_watts() const {
    return elapsed_.sec() > 0.0 ? joules_ / elapsed_.sec() : 0.0;
  }
  [[nodiscard]] const cpu::PowerModel& model() const { return model_; }

 private:
  cpu::PowerModel model_;
  double joules_ = 0.0;
  common::SimTime elapsed_{};
};

}  // namespace pas::metrics
