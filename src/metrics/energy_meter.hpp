// Energy accounting for the ablation benches (the provider-side metric the
// paper's governors are trying to optimize).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "cpu/power_model.hpp"

namespace pas::metrics {

class EnergyMeter {
 public:
  explicit EnergyMeter(cpu::PowerModel model) : model_(model) {}

  /// Accounts an interval of length `dt` spent at frequency ratio `ratio`
  /// with the CPU busy for `busy` of it.
  ///
  /// The two divisions are elided bit-exactly on the hot shapes: an idle
  /// interval's utilization is +0.0 with or without the divide, and
  /// dt.sec() is memoized on the last dt — idle fleets record millions of
  /// identical-width chunks (one per crossed periodic fire), so both memos
  /// hit almost always while the accumulated doubles stay byte-identical.
  void record(common::SimTime dt, double ratio, common::SimTime busy) {
    if (dt.us() <= 0) return;
    const double util =
        busy.us() == 0
            ? 0.0
            : static_cast<double>(busy.us()) / static_cast<double>(dt.us());
    if (dt.us() != sec_us_) {
      sec_us_ = dt.us();
      sec_cache_ = dt.sec();
    }
    joules_ += model_.power_watts(ratio, util) * sec_cache_;
    elapsed_ += dt;
  }

  [[nodiscard]] double joules() const { return joules_; }
  [[nodiscard]] double watt_hours() const { return joules_ / 3600.0; }
  [[nodiscard]] common::SimTime elapsed() const { return elapsed_; }
  /// Mean power over everything recorded so far.
  [[nodiscard]] double average_watts() const {
    return elapsed_.sec() > 0.0 ? joules_ / elapsed_.sec() : 0.0;
  }
  [[nodiscard]] const cpu::PowerModel& model() const { return model_; }

 private:
  cpu::PowerModel model_;
  double joules_ = 0.0;
  common::SimTime elapsed_{};
  /// dt.sec() memo for record(); keyed on the raw microsecond width.
  std::int64_t sec_us_ = -1;
  double sec_cache_ = 0.0;
};

}  // namespace pas::metrics
