// SLA verification: did each VM get the computing capacity it bought?
//
// The paper's core claim is about SLAs: "this portion of the CPU was bought
// by the client and has to be guaranteed by the provider". The checker
// watches a VM's *absolute* capacity — the work it could perform per wall
// second, normalized to the maximum frequency — against its purchased
// credit, and accumulates violation time.
//
// A VM only exercises its SLA when it has demand; an idle VM is never in
// violation. Callers therefore feed the checker both the measured absolute
// load and whether the VM was demand-limited (not saturated) in the window.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace pas::metrics {

class SlaChecker {
 public:
  /// `tolerance_pct` absorbs quantization (a VM measured at 19.4 % against
  /// a 20 % SLA is not a violation worth alarming on).
  explicit SlaChecker(double tolerance_pct = 2.0) : tolerance_(tolerance_pct) {}

  void register_vm(common::VmId vm, common::Percent purchased_credit);

  /// Accounts one monitor window: `absolute_pct` is the VM's measured
  /// absolute load; `saturated` means the VM wanted more CPU than it got
  /// (it was runnable essentially the whole window). Violations only count
  /// while saturated: an unsaturated VM chose not to use its credit.
  void record_window(common::VmId vm, common::SimTime window, double absolute_pct,
                     bool saturated);

  [[nodiscard]] common::SimTime violation_time(common::VmId vm) const;
  [[nodiscard]] common::SimTime observed_time(common::VmId vm) const;
  /// Fraction of saturated time the SLA was violated, in [0,1].
  [[nodiscard]] double violation_fraction(common::VmId vm) const;
  /// Worst shortfall seen (purchased - delivered, in absolute %).
  [[nodiscard]] double worst_shortfall_pct(common::VmId vm) const;

 private:
  struct PerVm {
    common::Percent purchased = 0.0;
    common::SimTime violation{};
    common::SimTime observed{};  // saturated time only
    double worst_shortfall = 0.0;
  };
  double tolerance_;
  std::vector<PerVm> per_vm_;
};

}  // namespace pas::metrics
