// Time-series recorder: samples the quantities the paper plots, at a fixed
// stride, so benches can regenerate each figure.
//
// Each sample row holds, per VM, the global and absolute load of the last
// monitor window, plus the current processor frequency — i.e. exactly the
// series in Figs. 2–10.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace pas::metrics {

struct TraceSample {
  common::SimTime t;
  double freq_mhz = 0.0;
  double global_load_pct = 0.0;    // whole host, last window
  double absolute_load_pct = 0.0;  // whole host, last window
  std::vector<double> vm_global_pct;
  std::vector<double> vm_absolute_pct;
  std::vector<double> vm_credit_pct;  // current scheduler cap per VM
  /// 1.0 if the VM was saturated (wanted the CPU essentially the whole
  /// window) when sampled, else 0.0. Drives SLA accounting: only a
  /// saturated VM exercises its SLA.
  std::vector<double> vm_saturated;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t vm_count) : vm_count_(vm_count) {}

  void add(TraceSample sample) { samples_.push_back(std::move(sample)); }

  [[nodiscard]] const std::vector<TraceSample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t vm_count() const { return vm_count_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Extracts one column as a vector (for charts/summaries).
  [[nodiscard]] std::vector<double> series_freq() const;
  [[nodiscard]] std::vector<double> series_vm_global(common::VmId vm) const;
  [[nodiscard]] std::vector<double> series_vm_absolute(common::VmId vm) const;
  [[nodiscard]] std::vector<double> series_vm_credit(common::VmId vm) const;
  [[nodiscard]] std::vector<double> series_time_sec() const;

  /// Writes the full trace as CSV to `path`
  /// (t_sec, freq_mhz, global, absolute, vm<i>_global..., vm<i>_absolute...,
  /// vm<i>_credit...).
  void write_csv(const std::string& path) const;

 private:
  std::size_t vm_count_;
  std::vector<TraceSample> samples_;
};

}  // namespace pas::metrics
