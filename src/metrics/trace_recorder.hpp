// Time-series recorder: samples the quantities the paper plots, at a fixed
// stride, so benches can regenerate each figure.
//
// Each sample row holds, per VM, the global and absolute load of the last
// monitor window, plus the current processor frequency — i.e. exactly the
// series in Figs. 2–10.
//
// Storage is struct-of-arrays: one flat preallocated column per scalar and
// one `rows * vm_count` column per per-VM series, so recording a sample on
// the simulation hot path performs no per-row vector allocations and
// column extraction is a straight copy. Rows are exposed through
// `SampleView` (spans into the columns), which reads like the old
// row-struct API.
#pragma once

#include <cstddef>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace pas::metrics {

/// Assembled row, used to feed add() (tests/tools). The recorder itself
/// stores columns, not these.
struct TraceSample {
  common::SimTime t;
  double freq_mhz = 0.0;
  double global_load_pct = 0.0;    // whole host, last window
  double absolute_load_pct = 0.0;  // whole host, last window
  std::vector<double> vm_global_pct;
  std::vector<double> vm_absolute_pct;
  std::vector<double> vm_credit_pct;  // current scheduler cap per VM
  /// 1.0 if the VM was saturated (wanted the CPU essentially the whole
  /// window) when sampled, else 0.0. Drives SLA accounting: only a
  /// saturated VM exercises its SLA.
  std::vector<double> vm_saturated;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t vm_count) : vm_count_(vm_count) {}

  /// Appends one row from column data (the host's allocation-free path).
  /// Every span must have exactly vm_count() elements.
  void append(common::SimTime t, double freq_mhz, double global_load_pct,
              double absolute_load_pct, std::span<const double> vm_global,
              std::span<const double> vm_absolute, std::span<const double> vm_credit,
              std::span<const double> vm_saturated);

  /// Row-struct convenience wrapper over append().
  void add(const TraceSample& sample);

  /// Bulk-appends one row per element of `ts` for a host whose monitor
  /// reads all-zero: frequency and per-VM credits are constant across the
  /// rows, every load/saturation column is 0.0. Value-identical to calling
  /// append() once per instant with those arguments — this is the
  /// fast-path primitive behind hv::Host::skip_idle_to, which proves the
  /// host quiescent and then zero-fills the trace in one go.
  void append_idle_rows(std::span<const common::SimTime> ts, double freq_mhz,
                        std::span<const double> vm_credit);

  /// Reserves storage for `rows` further samples (optional; columns grow
  /// geometrically regardless).
  void reserve(std::size_t rows);

  /// Widens the per-VM columns to `vm_count` mid-recording (a host gained a
  /// slot): historical rows are padded with 0.0 in the new columns, so
  /// every row — old and new — reads at the final width. Shrinking throws.
  void grow_vm_count(std::size_t vm_count);

  /// Read-only view of one recorded row; spans point into the recorder's
  /// columns and are invalidated by the next append.
  struct SampleView {
    common::SimTime t;
    double freq_mhz = 0.0;
    double global_load_pct = 0.0;
    double absolute_load_pct = 0.0;
    std::span<const double> vm_global_pct;
    std::span<const double> vm_absolute_pct;
    std::span<const double> vm_credit_pct;
    std::span<const double> vm_saturated;
  };

  [[nodiscard]] SampleView sample(std::size_t row) const;

  class SampleIterator {
   public:
    using value_type = SampleView;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    SampleIterator(const TraceRecorder* rec, std::size_t row) : rec_(rec), row_(row) {}
    SampleView operator*() const { return rec_->sample(row_); }
    SampleIterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const SampleIterator& other) const { return row_ == other.row_; }
    bool operator!=(const SampleIterator& other) const { return row_ != other.row_; }

   private:
    const TraceRecorder* rec_;
    std::size_t row_;
  };

  /// Lightweight range over all rows; behaves like the old
  /// `const std::vector<TraceSample>&` return (size/front/back/[]/
  /// iteration), but materializes views on demand.
  class SampleRange {
   public:
    explicit SampleRange(const TraceRecorder* rec) : rec_(rec) {}
    [[nodiscard]] std::size_t size() const { return rec_->size(); }
    [[nodiscard]] bool empty() const { return rec_->size() == 0; }
    [[nodiscard]] SampleView operator[](std::size_t row) const { return rec_->sample(row); }
    [[nodiscard]] SampleView front() const { return rec_->sample(0); }
    [[nodiscard]] SampleView back() const { return rec_->sample(rec_->size() - 1); }
    [[nodiscard]] SampleIterator begin() const { return {rec_, 0}; }
    [[nodiscard]] SampleIterator end() const { return {rec_, rec_->size()}; }

   private:
    const TraceRecorder* rec_;
  };

  [[nodiscard]] SampleRange samples() const { return SampleRange{this}; }
  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] std::size_t vm_count() const { return vm_count_; }
  [[nodiscard]] bool empty() const { return t_.empty(); }

  /// Extracts one column as a vector (for charts/summaries).
  [[nodiscard]] std::vector<double> series_freq() const { return freq_; }
  [[nodiscard]] std::vector<double> series_vm_global(common::VmId vm) const;
  [[nodiscard]] std::vector<double> series_vm_absolute(common::VmId vm) const;
  [[nodiscard]] std::vector<double> series_vm_credit(common::VmId vm) const;
  [[nodiscard]] std::vector<double> series_time_sec() const;

  /// Writes the full trace as CSV to `path`
  /// (t_sec, freq_mhz, global, absolute, vm<i>_global..., vm<i>_absolute...,
  /// vm<i>_credit...).
  void write_csv(const std::string& path) const;

 private:
  [[nodiscard]] std::vector<double> extract(const std::vector<double>& column,
                                            common::VmId vm) const;

  std::size_t vm_count_;
  // Scalar columns (one element per row).
  std::vector<common::SimTime> t_;
  std::vector<double> freq_, global_, absolute_;
  // Per-VM columns, row-major: element row * vm_count_ + vm.
  std::vector<double> vm_global_, vm_absolute_, vm_credit_, vm_saturated_;
};

}  // namespace pas::metrics
