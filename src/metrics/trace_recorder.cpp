#include "metrics/trace_recorder.hpp"

#include <cassert>

#include "common/csv.hpp"

namespace pas::metrics {

std::vector<double> TraceRecorder::series_freq() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.freq_mhz);
  return out;
}

std::vector<double> TraceRecorder::series_vm_global(common::VmId vm) const {
  assert(vm < vm_count_);
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.vm_global_pct[vm]);
  return out;
}

std::vector<double> TraceRecorder::series_vm_absolute(common::VmId vm) const {
  assert(vm < vm_count_);
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.vm_absolute_pct[vm]);
  return out;
}

std::vector<double> TraceRecorder::series_vm_credit(common::VmId vm) const {
  assert(vm < vm_count_);
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.vm_credit_pct[vm]);
  return out;
}

std::vector<double> TraceRecorder::series_time_sec() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.t.sec());
  return out;
}

void TraceRecorder::write_csv(const std::string& path) const {
  common::CsvWriter csv{path};
  // Build the header dynamically for the VM columns.
  std::string head = "t_sec,freq_mhz,global_pct,absolute_pct";
  for (std::size_t i = 0; i < vm_count_; ++i) head += ",vm" + std::to_string(i) + "_global_pct";
  for (std::size_t i = 0; i < vm_count_; ++i)
    head += ",vm" + std::to_string(i) + "_absolute_pct";
  for (std::size_t i = 0; i < vm_count_; ++i) head += ",vm" + std::to_string(i) + "_credit_pct";
  csv.raw_line(head);

  for (const auto& s : samples_) {
    std::vector<double> row;
    row.reserve(4 + 3 * vm_count_);
    row.push_back(s.t.sec());
    row.push_back(s.freq_mhz);
    row.push_back(s.global_load_pct);
    row.push_back(s.absolute_load_pct);
    for (double v : s.vm_global_pct) row.push_back(v);
    for (double v : s.vm_absolute_pct) row.push_back(v);
    for (double v : s.vm_credit_pct) row.push_back(v);
    csv.row(row);
  }
}

}  // namespace pas::metrics
