#include "metrics/trace_recorder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/csv.hpp"

namespace pas::metrics {

void TraceRecorder::reserve(std::size_t rows) {
  const std::size_t total = t_.size() + rows;
  t_.reserve(total);
  freq_.reserve(total);
  global_.reserve(total);
  absolute_.reserve(total);
  vm_global_.reserve(total * vm_count_);
  vm_absolute_.reserve(total * vm_count_);
  vm_credit_.reserve(total * vm_count_);
  vm_saturated_.reserve(total * vm_count_);
}

void TraceRecorder::grow_vm_count(std::size_t vm_count) {
  if (vm_count < vm_count_)
    throw std::invalid_argument("TraceRecorder: cannot shrink vm_count");
  if (vm_count == vm_count_) return;
  auto regrid = [&](std::vector<double>& col) {
    std::vector<double> wide(t_.size() * vm_count, 0.0);
    for (std::size_t row = 0; row < t_.size(); ++row)
      std::copy_n(col.data() + row * vm_count_, vm_count_, wide.data() + row * vm_count);
    col = std::move(wide);
  };
  regrid(vm_global_);
  regrid(vm_absolute_);
  regrid(vm_credit_);
  regrid(vm_saturated_);
  vm_count_ = vm_count;
}

void TraceRecorder::append(common::SimTime t, double freq_mhz, double global_load_pct,
                           double absolute_load_pct, std::span<const double> vm_global,
                           std::span<const double> vm_absolute,
                           std::span<const double> vm_credit,
                           std::span<const double> vm_saturated) {
  assert(vm_global.size() == vm_count_ && vm_absolute.size() == vm_count_ &&
         vm_credit.size() == vm_count_ && vm_saturated.size() == vm_count_);
  t_.push_back(t);
  freq_.push_back(freq_mhz);
  global_.push_back(global_load_pct);
  absolute_.push_back(absolute_load_pct);
  vm_global_.insert(vm_global_.end(), vm_global.begin(), vm_global.end());
  vm_absolute_.insert(vm_absolute_.end(), vm_absolute.begin(), vm_absolute.end());
  vm_credit_.insert(vm_credit_.end(), vm_credit.begin(), vm_credit.end());
  vm_saturated_.insert(vm_saturated_.end(), vm_saturated.begin(), vm_saturated.end());
}

void TraceRecorder::append_idle_rows(std::span<const common::SimTime> ts, double freq_mhz,
                                     std::span<const double> vm_credit) {
  assert(vm_credit.size() == vm_count_);
  if (ts.empty()) return;
  const std::size_t rows = ts.size();
  t_.insert(t_.end(), ts.begin(), ts.end());
  freq_.insert(freq_.end(), rows, freq_mhz);
  global_.insert(global_.end(), rows, 0.0);
  absolute_.insert(absolute_.end(), rows, 0.0);
  vm_global_.insert(vm_global_.end(), rows * vm_count_, 0.0);
  vm_absolute_.insert(vm_absolute_.end(), rows * vm_count_, 0.0);
  vm_saturated_.insert(vm_saturated_.end(), rows * vm_count_, 0.0);
  for (std::size_t r = 0; r < rows; ++r)
    vm_credit_.insert(vm_credit_.end(), vm_credit.begin(), vm_credit.end());
}

void TraceRecorder::add(const TraceSample& sample) {
  append(sample.t, sample.freq_mhz, sample.global_load_pct, sample.absolute_load_pct,
         sample.vm_global_pct, sample.vm_absolute_pct, sample.vm_credit_pct,
         sample.vm_saturated);
}

TraceRecorder::SampleView TraceRecorder::sample(std::size_t row) const {
  assert(row < t_.size());
  const std::size_t base = row * vm_count_;
  SampleView v;
  v.t = t_[row];
  v.freq_mhz = freq_[row];
  v.global_load_pct = global_[row];
  v.absolute_load_pct = absolute_[row];
  v.vm_global_pct = {vm_global_.data() + base, vm_count_};
  v.vm_absolute_pct = {vm_absolute_.data() + base, vm_count_};
  v.vm_credit_pct = {vm_credit_.data() + base, vm_count_};
  v.vm_saturated = {vm_saturated_.data() + base, vm_count_};
  return v;
}

std::vector<double> TraceRecorder::extract(const std::vector<double>& column,
                                           common::VmId vm) const {
  assert(vm < vm_count_);
  std::vector<double> out;
  out.reserve(t_.size());
  for (std::size_t row = 0; row < t_.size(); ++row)
    out.push_back(column[row * vm_count_ + vm]);
  return out;
}

std::vector<double> TraceRecorder::series_vm_global(common::VmId vm) const {
  return extract(vm_global_, vm);
}

std::vector<double> TraceRecorder::series_vm_absolute(common::VmId vm) const {
  return extract(vm_absolute_, vm);
}

std::vector<double> TraceRecorder::series_vm_credit(common::VmId vm) const {
  return extract(vm_credit_, vm);
}

std::vector<double> TraceRecorder::series_time_sec() const {
  std::vector<double> out;
  out.reserve(t_.size());
  for (const common::SimTime t : t_) out.push_back(t.sec());
  return out;
}

void TraceRecorder::write_csv(const std::string& path) const {
  common::CsvWriter csv{path};
  // Build the header dynamically for the VM columns.
  std::string head = "t_sec,freq_mhz,global_pct,absolute_pct";
  for (std::size_t i = 0; i < vm_count_; ++i) head += ",vm" + std::to_string(i) + "_global_pct";
  for (std::size_t i = 0; i < vm_count_; ++i)
    head += ",vm" + std::to_string(i) + "_absolute_pct";
  for (std::size_t i = 0; i < vm_count_; ++i) head += ",vm" + std::to_string(i) + "_credit_pct";
  csv.raw_line(head);

  std::vector<double> row;
  row.reserve(4 + 3 * vm_count_);
  for (std::size_t r = 0; r < t_.size(); ++r) {
    row.clear();
    const SampleView s = sample(r);
    row.push_back(s.t.sec());
    row.push_back(s.freq_mhz);
    row.push_back(s.global_load_pct);
    row.push_back(s.absolute_load_pct);
    for (double v : s.vm_global_pct) row.push_back(v);
    for (double v : s.vm_absolute_pct) row.push_back(v);
    for (double v : s.vm_credit_pct) row.push_back(v);
    csv.row(row);
  }
}

}  // namespace pas::metrics
