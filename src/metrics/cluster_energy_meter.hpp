// Cluster-wide energy accounting with VOVO (Vary-On/Vary-Off) gating.
//
// Each simulated host meters itself continuously (metrics::EnergyMeter) —
// including while it idles. A consolidation manager, though, powers empty
// hosts off, and an off host draws nothing. Rather than teach every host a
// power state, the cluster meter gates each host's *cumulative* joules
// counter: while a host is off, growth of its counter is excluded from the
// cluster total. Power transitions snapshot the counter, so the arithmetic
// is exact regardless of how often state flips.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace pas::metrics {

class ClusterEnergyMeter {
 public:
  explicit ClusterEnergyMeter(std::size_t host_count) : per_host_(host_count) {}

  [[nodiscard]] std::size_t host_count() const { return per_host_.size(); }
  [[nodiscard]] bool powered(std::size_t host) const { return per_host_.at(host).on; }

  /// Flips a host's power state at the instant its meter reads
  /// `host_joules_now`. A no-op if the state is unchanged.
  void set_powered(std::size_t host, bool on, double host_joules_now) {
    PerHost& h = per_host_.at(host);
    if (h.on == on) return;
    if (h.on) h.accumulated += host_joules_now - h.baseline;  // close the on-interval
    else h.baseline = host_joules_now;                        // open a new one
    h.on = on;
  }

  /// This host's cluster-counted joules, given its meter's current reading.
  [[nodiscard]] double host_joules(std::size_t host, double host_joules_now) const {
    const PerHost& h = per_host_.at(host);
    return h.accumulated + (h.on ? host_joules_now - h.baseline : 0.0);
  }

  /// Cluster total; `host_joules_now[i]` is host i's meter reading.
  [[nodiscard]] double total_joules(std::span<const double> host_joules_now) const {
    if (host_joules_now.size() != per_host_.size())
      throw std::invalid_argument("ClusterEnergyMeter: reading count mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < per_host_.size(); ++i)
      total += host_joules(i, host_joules_now[i]);
    return total;
  }

 private:
  struct PerHost {
    bool on = true;
    double baseline = 0.0;
    double accumulated = 0.0;
  };
  std::vector<PerHost> per_host_;
};

}  // namespace pas::metrics
