#include "metrics/load_monitor.hpp"

#include <cassert>
#include <stdexcept>

namespace pas::metrics {

LoadMonitor::LoadMonitor(common::SimTime window, std::size_t averaging_depth)
    : window_(window),
      global_ring_(averaging_depth == 0 ? 1 : averaging_depth),
      absolute_ring_(averaging_depth == 0 ? 1 : averaging_depth) {
  if (window.us() <= 0) throw std::invalid_argument("LoadMonitor: window must be positive");
}

void LoadMonitor::register_vm(common::VmId vm) {
  if (vm != per_vm_.size())
    throw std::invalid_argument("LoadMonitor: VM ids must be registered densely");
  per_vm_.emplace_back();
}

void LoadMonitor::record_run(common::VmId vm, common::SimTime busy, common::Work work) {
  assert(vm < per_vm_.size());
  auto& p = per_vm_[vm];
  p.window_busy += busy;
  p.window_work += work;
  p.cum_busy += busy;
  cum_busy_all_ += busy;
  cum_work_all_ += work;
}

void LoadMonitor::close_window(common::SimTime /*now*/) {
  const double win_us = static_cast<double>(window_.us());
  double global = 0.0;
  double absolute = 0.0;
  for (auto& p : per_vm_) {
    p.last_global_pct = 100.0 * static_cast<double>(p.window_busy.us()) / win_us;
    p.last_absolute_pct = 100.0 * p.window_work.mfus() / win_us;
    global += p.last_global_pct;
    absolute += p.last_absolute_pct;
    p.window_busy = common::SimTime{};
    p.window_work = common::Work{};
  }
  last_global_pct_ = global;
  last_absolute_pct_ = absolute;
  global_ring_.push(global);
  absolute_ring_.push(absolute);
}

bool LoadMonitor::idle_settled() const {
  for (const auto& p : per_vm_) {
    if (p.window_busy != common::SimTime{} || !(p.window_work == common::Work{}))
      return false;
    if (p.last_global_pct != 0.0 || p.last_absolute_pct != 0.0) return false;
  }
  if (last_global_pct_ != 0.0 || last_absolute_pct_ != 0.0) return false;
  if (!global_ring_.full() || !absolute_ring_.full()) return false;
  bool zeros = true;
  global_ring_.for_each([&](double v) { zeros = zeros && v == 0.0; });
  absolute_ring_.for_each([&](double v) { zeros = zeros && v == 0.0; });
  return zeros;
}

double LoadMonitor::vm_global_load_pct(common::VmId vm) const {
  assert(vm < per_vm_.size());
  return per_vm_[vm].last_global_pct;
}

double LoadMonitor::vm_absolute_load_pct(common::VmId vm) const {
  assert(vm < per_vm_.size());
  return per_vm_[vm].last_absolute_pct;
}

double LoadMonitor::global_load_pct() const { return last_global_pct_; }

double LoadMonitor::absolute_load_pct() const { return last_absolute_pct_; }

double LoadMonitor::avg_global_load_pct() const { return common::mean_of(global_ring_); }

double LoadMonitor::avg_absolute_load_pct() const { return common::mean_of(absolute_ring_); }

double LoadMonitor::vm_load_pct(common::VmId vm, common::Percent credit) const {
  if (credit <= 0.0) return 0.0;
  return vm_global_load_pct(vm) / credit * 100.0;
}

common::SimTime LoadMonitor::cumulative_busy(common::VmId vm) const {
  assert(vm < per_vm_.size());
  return per_vm_[vm].cum_busy;
}

}  // namespace pas::metrics
