#include "metrics/trace_export.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace pas::metrics {

wl::Trace vm_demand_trace(const TraceRecorder& recorder, common::VmId vm,
                          std::string name) {
  if (recorder.empty())
    throw std::invalid_argument("vm_demand_trace: recorder has no samples");
  if (vm >= recorder.vm_count())
    throw std::invalid_argument("vm_demand_trace: no such VM column");

  const auto samples = recorder.samples();
  const common::SimTime t0 = samples[0].t;
  // Row spacing = the stride; the first sample must close the window
  // [0, stride) exactly — a later start would mean unrecorded time that
  // the export would silently pass off as zero demand.
  const common::SimTime stride =
      samples.size() > 1 ? samples[1].t - samples[0].t : t0;
  if (stride.us() <= 0 || t0 != stride)
    throw std::invalid_argument(
        "vm_demand_trace: rows do not tile time from the epoch");
  for (std::size_t r = 1; r < samples.size(); ++r)
    if (samples[r].t - samples[r - 1].t != stride)
      throw std::invalid_argument(
          "vm_demand_trace: unequally spaced rows (stride changed at row " +
          std::to_string(r) + ")");

  std::vector<wl::TracePoint> points;
  points.reserve(samples.size() + 1);
  for (std::size_t r = 0; r < samples.size(); ++r) {
    wl::TracePoint p;
    p.t = samples[r].t - stride;
    p.demand_pct = wl::quantize_demand_pct(samples[r].vm_absolute_pct[vm]);
    points.push_back(p);
  }
  points.push_back(wl::TracePoint{samples[samples.size() - 1].t, 0.0, 0.0});
  return wl::Trace{std::move(points), std::move(name)};
}

void export_vm_demand_csv(const TraceRecorder& recorder, common::VmId vm,
                          const std::string& path, std::string name) {
  vm_demand_trace(recorder, vm, std::move(name)).save(path);
}

}  // namespace pas::metrics
