#include "metrics/sla_checker.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pas::metrics {

void SlaChecker::register_vm(common::VmId vm, common::Percent purchased_credit) {
  if (vm != per_vm_.size())
    throw std::invalid_argument("SlaChecker: VM ids must be registered densely");
  PerVm p;
  p.purchased = purchased_credit;
  per_vm_.push_back(p);
}

void SlaChecker::record_window(common::VmId vm, common::SimTime window, double absolute_pct,
                               bool saturated) {
  assert(vm < per_vm_.size());
  auto& p = per_vm_[vm];
  if (!saturated) return;
  p.observed += window;
  const double shortfall = p.purchased - absolute_pct;
  if (shortfall > tolerance_) {
    p.violation += window;
    p.worst_shortfall = std::max(p.worst_shortfall, shortfall);
  }
}

common::SimTime SlaChecker::violation_time(common::VmId vm) const {
  assert(vm < per_vm_.size());
  return per_vm_[vm].violation;
}

common::SimTime SlaChecker::observed_time(common::VmId vm) const {
  assert(vm < per_vm_.size());
  return per_vm_[vm].observed;
}

double SlaChecker::violation_fraction(common::VmId vm) const {
  assert(vm < per_vm_.size());
  const auto& p = per_vm_[vm];
  if (p.observed.us() == 0) return 0.0;
  return static_cast<double>(p.violation.us()) / static_cast<double>(p.observed.us());
}

double SlaChecker::worst_shortfall_pct(common::VmId vm) const {
  assert(vm < per_vm_.size());
  return per_vm_[vm].worst_shortfall;
}

}  // namespace pas::metrics
