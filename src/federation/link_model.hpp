// Per-link migration cost model for the federation tier.
//
// The single-cluster MigrationEngine prices every flight off ONE
// MigrationConfig — "the" migration link. Across clusters that is wrong in
// two ways: links differ (an intra-rack 10 GbE, a cross-rack aggregation
// hop, a WAN circuit are different machines), and the endpoints differ (a
// xeon→optiplex move pays costs a same-class move does not). A LinkModel
// bundles one link's MigrationConfig — fed verbatim into that link's own
// MigrationEngine, so MigrationEngine::set_link_bandwidth naturally scopes
// to one link — with the class-aware surcharges applied per flight:
//
//   * cross_class_dirty_factor — a guest moving between different platform
//     classes redirties faster in transit (page-tracking conversion,
//     differing page sizes), stretching pre-copy convergence;
//   * cross_class_switch_latency — extra switch-over pause on foreign
//     hardware (device re-attach, CPU feature mask rewrite), charged via
//     MigrationEngine::begin's per-flight extra_switch_latency so it
//     survives bandwidth re-plans.
//
// This is the per-hypervisor-migrate split of the migration-framework
// design: one interface, one implementation parameterization per link
// tier. The presets are deliberately round numbers — the model prices
// RELATIVE costs (WAN downtime ≫ intra-rack downtime), not a specific
// datacenter.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/migration.hpp"
#include "common/units.hpp"
#include "platform/host_class.hpp"

namespace pas::fed {

enum class LinkKind : std::uint8_t { kIntraRack = 0, kCrossRack, kWan };

[[nodiscard]] const char* to_string(LinkKind kind);

struct LinkModel {
  std::string name = "intra-rack";
  LinkKind kind = LinkKind::kIntraRack;
  /// The link's pre-copy cost model: bandwidth, stop-copy threshold,
  /// switch latency, per-MB hypervisor bills. One MigrationEngine per link
  /// is constructed from exactly this config.
  cluster::MigrationConfig migration;
  /// Dirty-rate multiplier for flights whose endpoints are different
  /// platform classes (1.0 = class-blind link).
  double cross_class_dirty_factor = 1.0;
  /// Extra switch-over pause for cross-class flights, on top of the
  /// config's switch_latency.
  common::SimTime cross_class_switch_latency{};

  /// Effective dirty-rate factor for a src→dst flight on this link.
  [[nodiscard]] double dirty_factor(const platform::HostClass& src,
                                    const platform::HostClass& dst) const;
  /// Extra switch-over latency for a src→dst flight on this link.
  [[nodiscard]] common::SimTime switch_penalty(const platform::HostClass& src,
                                               const platform::HostClass& dst) const;
};

/// Presets, cheapest to dearest. A shard's internal link (its own
/// ClusterConfig::migration) is the intra-rack tier; the federation wires
/// cross_rack between same-rack shards and wan between racks.
[[nodiscard]] LinkModel intra_rack_link();
[[nodiscard]] LinkModel cross_rack_link();
[[nodiscard]] LinkModel wan_link();

}  // namespace pas::fed
