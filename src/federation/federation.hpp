// Sharded multi-cluster federation: one coordinator over N Cluster shards
// on a shared virtual clock, with a global planner tier above the
// per-shard ClusterManagers and cross-shard live migrations priced per
// link (see link_model.hpp).
//
// Clock model — the cluster's lockstep contract, lifted one level: shards
// never interact except through FEDERATION events (planner ticks, link
// migration phases), and every federation event fires at an instant where
// all shards have been advanced to exactly that time. run_until therefore
// alternates
//
//     advance every shard to the next federation event -> fire the event
//
// with shards advanced serially in shard-id order (each shard may use its
// own parallel engine internally). A shard's own events at time t fire
// inside its run_until(t), i.e. BEFORE any federation event at t — a
// fixed, engine-independent order, so a federation run is byte-identical
// across fast/slow paths and thread counts exactly like a single cluster.
// With K = 1 the federation schedules NO events at all (nothing to
// balance, no links), so its run loop degenerates to one run_until per
// call — byte-exact to driving the bare Cluster, FP summation order
// included.
//
// Cross-shard migration reuses the cluster's MigrationEngine wholesale:
// each unordered shard pair owns one engine built from its link's
// MigrationConfig, scheduling on the FEDERATION queue (synced instants).
// The flight's source endpoint is the guest's live slot in the source
// shard; the destination endpoint is a slot admitted mid-run in the
// destination shard (Cluster::admit_inbound, state kInbound). The engine
// does what it always does — pre-copy rounds billing both hypervisor
// agents, detach draining workload+credit from the source, attach
// delivering both into the destination — and the federation's callbacks
// keep the shard bookkeeping honest: mark_departed at detach,
// complete_inbound (with the SLA-charged pause) at attach. The source
// shard's manager is fenced off the VM for the flight's duration via
// Cluster::set_federation_lock.
//
// Planner: each tick reads per-shard aggregate books — the manager's
// incremental consolidation::HostBook summed by HostBook::totals() when
// seeded, a direct deterministic scan otherwise — and issues at most
// max_cross_shard_per_tick moves from the most- to the least-utilized
// shard while their reserved-memory utilization gap exceeds the
// threshold. The global tier balances shard AGGREGATES; placement inside
// a shard stays the shard manager's delta-driven business.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "federation/link_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/periodic.hpp"

namespace pas::fed {

using ShardId = std::uint32_t;
/// Federation-wide VM identity: stable across shard hops (a VM's per-shard
/// GlobalVmId changes when it crosses a link; this id never does).
using FedVmId = std::uint32_t;

struct FederationPlannerConfig {
  common::SimTime period = common::seconds(120);
  /// Cross-shard migration budget per planner tick (mass WAN reshuffles
  /// are how federated fleets melt down).
  std::size_t max_cross_shard_per_tick = 2;
  /// Minimum reserved-memory utilization gap (fraction of capacity)
  /// between the most- and least-loaded shard before a move is issued.
  double imbalance_threshold = 0.10;
};

struct FederationConfig {
  FederationPlannerConfig planner;
  /// Rack id per shard: same-rack shard pairs talk over `cross_rack`,
  /// different racks over `wan`. Empty = every shard its own rack
  /// (all-WAN). (A shard's internal link — its ClusterConfig::migration —
  /// is the intra-rack tier.)
  std::vector<std::uint32_t> racks;
  LinkModel cross_rack = cross_rack_link();
  LinkModel wan = wan_link();
};

/// Where a federation VM currently lives.
struct FedVmRef {
  ShardId shard = 0;
  cluster::GlobalVmId vm = 0;
};

/// One completed cross-shard migration. `record.from`/`record.to` carry
/// federation-global host ids (global_host_id); `record.vm` the FedVmId.
struct FedMigrationRecord {
  FedVmId vm = 0;
  ShardId from_shard = 0;
  ShardId to_shard = 0;
  cluster::HostId from_host = 0;      // shard-local
  cluster::HostId to_host = 0;        // shard-local
  cluster::GlobalVmId src_vm = 0;     // the VM's id in the source shard (kDeparted)
  cluster::GlobalVmId dst_vm = 0;     // its id in the destination shard
  LinkKind link = LinkKind::kWan;
  cluster::MigrationRecord record;
};

class Federation {
 public:
  /// Takes ownership of the shards. Every VM already added to a shard is
  /// enrolled with a FedVmId (shards in id order, VMs in id order within
  /// each shard). Shards must not have started running yet.
  Federation(FederationConfig config, std::vector<std::unique_ptr<cluster::Cluster>> shards);
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Advances every shard, in lockstep, to absolute time `until`.
  void run_until(common::SimTime until);

  /// Starts a cross-shard live migration of `vm` (source-shard id) onto
  /// `to_host` in `to_shard`, over the pair's link. Same-shard calls
  /// delegate to the shard's own migrate (the intra-rack tier). Returns
  /// false if the VM is not running, already in flight (either tier), or
  /// the destination is crashed. Callable from planner ticks and between
  /// run_until calls.
  bool migrate(ShardId from_shard, cluster::GlobalVmId vm, ShardId to_shard,
               cluster::HostId to_host);

  /// Re-prices one link at runtime. a == b sets shard a's INTERNAL link
  /// (Cluster::set_link_bandwidth); a != b sets the pair's federation link,
  /// re-planning that link's in-flight pre-copies and no other link's —
  /// the per-link isolation the link tests pin.
  void set_link_bandwidth(ShardId a, ShardId b, double mb_per_s);

  // --- accessors ---
  [[nodiscard]] common::SimTime now() const { return now_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] cluster::Cluster& shard(ShardId s) { return *shards_.at(s); }
  [[nodiscard]] const cluster::Cluster& shard(ShardId s) const { return *shards_.at(s); }
  /// The link model a cross-shard pair uses. Throws on a == b.
  [[nodiscard]] const LinkModel& link(ShardId a, ShardId b) const;
  /// Federation-global host id: shard host-count prefix sum + local id.
  [[nodiscard]] std::uint32_t global_host_id(ShardId shard, cluster::HostId host) const;
  /// Current location of a federation VM.
  [[nodiscard]] FedVmRef locate(FedVmId vm) const { return vm_loc_.at(vm); }
  [[nodiscard]] std::size_t vm_count() const { return vm_loc_.size(); }
  [[nodiscard]] bool in_cross_shard_flight(FedVmId vm) const {
    return flights_.contains(vm);
  }
  [[nodiscard]] std::size_t cross_shard_in_flight() const { return flights_.size(); }
  /// Completed cross-shard migrations, in completion order.
  [[nodiscard]] const std::vector<FedMigrationRecord>& cross_shard_records() const {
    return records_;
  }
  [[nodiscard]] std::size_t planner_ticks() const { return planner_ticks_; }
  [[nodiscard]] std::size_t moves_issued() const { return moves_issued_; }

  /// Per-shard aggregate the planner balances: plannable capacity vs
  /// reserved memory (from the shard manager's HostBook when seeded, a
  /// direct scan otherwise), plus memory already in flight toward the
  /// shard so concurrent planner ticks don't double-fill a destination.
  struct ShardLoad {
    double capacity_mb = 0.0;
    double reserved_mb = 0.0;
    [[nodiscard]] double utilization() const {
      return capacity_mb > 0.0 ? reserved_mb / capacity_mb : 1.0;
    }
  };
  [[nodiscard]] ShardLoad shard_load(ShardId s) const;

 private:
  struct Link {
    LinkModel model;
    std::unique_ptr<cluster::MigrationEngine> engine;
  };
  struct FedFlight {
    FedVmId vm = 0;
    ShardId from_shard = 0;
    ShardId to_shard = 0;
    cluster::GlobalVmId src_vm = 0;
    cluster::GlobalVmId dst_vm = 0;
    cluster::HostId from_host = 0;
    cluster::HostId to_host = 0;
    LinkKind link = LinkKind::kWan;
    double memory_mb = 0.0;
  };

  void advance_shards(common::SimTime target);
  void planner_tick(common::SimTime now);
  Link& link_between(ShardId a, ShardId b);
  void on_link_detach(FedVmId vm);
  void on_link_done(FedVmId vm, const cluster::MigrationRecord& record);

  FederationConfig cfg_;
  std::vector<std::unique_ptr<cluster::Cluster>> shards_;
  std::vector<std::uint32_t> host_base_;  // shard -> global host id offset

  /// Federation VM registry: id -> current location, and per shard the
  /// local-id -> FedVmId reverse map (grown as inbound VMs register).
  std::vector<FedVmRef> vm_loc_;
  std::vector<std::vector<FedVmId>> local_fed_;

  /// One engine per unordered shard pair (key: a < b), scheduling on the
  /// federation queue.
  std::map<std::pair<ShardId, ShardId>, Link> links_;
  std::map<FedVmId, FedFlight> flights_;  // ordered: deterministic iteration
  /// Memory in flight toward each shard (admitted kInbound, not yet
  /// attached) — counted into shard_load so the planner sees it.
  std::vector<double> pending_in_mb_;

  sim::EventQueue events_;
  std::unique_ptr<sim::PeriodicTask> planner_task_;
  std::vector<FedMigrationRecord> records_;
  std::size_t planner_ticks_ = 0;
  std::size_t moves_issued_ = 0;
  common::SimTime now_{};
  bool started_ = false;
};

}  // namespace pas::fed
