#include "federation/link_model.hpp"

namespace pas::fed {

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kIntraRack: return "intra_rack";
    case LinkKind::kCrossRack: return "cross_rack";
    case LinkKind::kWan: return "wan";
  }
  return "unknown";
}

double LinkModel::dirty_factor(const platform::HostClass& src,
                               const platform::HostClass& dst) const {
  return src.name == dst.name ? 1.0 : cross_class_dirty_factor;
}

common::SimTime LinkModel::switch_penalty(const platform::HostClass& src,
                                          const platform::HostClass& dst) const {
  return src.name == dst.name ? common::SimTime{} : cross_class_switch_latency;
}

LinkModel intra_rack_link() {
  LinkModel link;
  link.name = "intra-rack";
  link.kind = LinkKind::kIntraRack;
  // MigrationConfig defaults ARE the intra-rack tier (dedicated 10 GbE,
  // 20 ms switch) — the single-cluster engine has always priced this link.
  link.cross_class_dirty_factor = 1.1;
  link.cross_class_switch_latency = common::msec(20);
  return link;
}

LinkModel cross_rack_link() {
  LinkModel link;
  link.name = "cross-rack";
  link.kind = LinkKind::kCrossRack;
  link.migration.link_mb_per_s = 400.0;       // shared aggregation uplink
  link.migration.switch_latency = common::msec(50);
  link.migration.source_cpu_us_per_mb = 110.0;
  link.migration.dest_cpu_us_per_mb = 70.0;
  link.cross_class_dirty_factor = 1.2;
  link.cross_class_switch_latency = common::msec(60);
  return link;
}

LinkModel wan_link() {
  LinkModel link;
  link.name = "wan";
  link.kind = LinkKind::kWan;
  link.migration.link_mb_per_s = 100.0;       // inter-site circuit
  link.migration.stop_copy_threshold_mb = 64.0;  // converge earlier: rounds are dear
  link.migration.switch_latency = common::msec(200);  // re-route, not just ARP
  link.migration.source_cpu_us_per_mb = 120.0;   // compression on the wire
  link.migration.dest_cpu_us_per_mb = 80.0;
  link.cross_class_dirty_factor = 1.25;
  link.cross_class_switch_latency = common::msec(150);
  return link;
}

}  // namespace pas::fed
