#include "federation/federation.hpp"

#include <stdexcept>
#include <utility>

#include "cluster/cluster_manager.hpp"

namespace pas::fed {

Federation::Federation(FederationConfig config,
                       std::vector<std::unique_ptr<cluster::Cluster>> shards)
    : cfg_(std::move(config)), shards_(std::move(shards)) {
  if (shards_.empty())
    throw std::invalid_argument("Federation: need at least one shard");
  if (!cfg_.racks.empty() && cfg_.racks.size() != shards_.size())
    throw std::invalid_argument("Federation: racks must map every shard");

  const auto n = static_cast<ShardId>(shards_.size());
  host_base_.resize(n);
  local_fed_.resize(n);
  pending_in_mb_.assign(n, 0.0);
  std::uint32_t base = 0;
  for (ShardId s = 0; s < n; ++s) {
    host_base_[s] = base;
    base += static_cast<std::uint32_t>(shards_[s]->host_count());
    // Enroll every pre-existing VM: shards in id order, VMs in id order —
    // the FedVmId assignment is a pure function of the shard contents.
    const auto nv = static_cast<cluster::GlobalVmId>(shards_[s]->vm_count());
    local_fed_[s].resize(nv);
    for (cluster::GlobalVmId v = 0; v < nv; ++v) {
      local_fed_[s][v] = static_cast<FedVmId>(vm_loc_.size());
      vm_loc_.push_back({s, v});
    }
  }
  // Every unordered pair gets its link up front: link() stays total and a
  // runtime re-price can never invent a link that wasn't planned.
  for (ShardId a = 0; a < n; ++a) {
    for (ShardId b = a + 1; b < n; ++b) {
      const bool same_rack = !cfg_.racks.empty() && cfg_.racks[a] == cfg_.racks[b];
      Link link;
      link.model = same_rack ? cfg_.cross_rack : cfg_.wan;
      link.engine =
          std::make_unique<cluster::MigrationEngine>(link.model.migration, events_);
      links_.emplace(std::make_pair(a, b), std::move(link));
    }
  }
}

Federation::~Federation() = default;

Federation::Link& Federation::link_between(ShardId a, ShardId b) {
  if (a == b) throw std::invalid_argument("Federation: no self link");
  return links_.at(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
}

const LinkModel& Federation::link(ShardId a, ShardId b) const {
  if (a == b) throw std::invalid_argument("Federation: no self link");
  return links_.at(a < b ? std::make_pair(a, b) : std::make_pair(b, a)).model;
}

std::uint32_t Federation::global_host_id(ShardId shard, cluster::HostId host) const {
  return host_base_.at(shard) + host;
}

void Federation::advance_shards(common::SimTime target) {
  // Serially, in shard-id order; each shard may fan out internally on its
  // own pool. Shards share no mutable state between federation events, so
  // the order is a wall-clock choice only — kept fixed for clarity.
  for (auto& shard : shards_) shard->run_until(target);
}

void Federation::run_until(common::SimTime until) {
  if (!started_) {
    // A single shard schedules NOTHING here: no planner (nothing to
    // balance), no links. The loop below then degenerates to one
    // advance_shards per call — byte-exact to driving the bare Cluster,
    // because extra segment cuts would reorder its FP energy summation.
    if (shards_.size() > 1) {
      const common::SimTime p = cfg_.planner.period;
      planner_task_ = std::make_unique<sim::PeriodicTask>(
          events_, p, p, [this](common::SimTime t) { planner_tick(t); });
    }
    started_ = true;
  }
  while (now_ < until) {
    // The cluster's lockstep loop, one level up: advance every shard to
    // the next federation event, then fire it. A shard's own events at t
    // fire inside its run_until(t) — before any federation event at t, a
    // fixed order independent of engine or thread count.
    const common::SimTime next_event = events_.next_event_time(until);
    if (events_.empty() || next_event > until) {
      advance_shards(until);
      now_ = until;
      break;
    }
    if (next_event > now_) {
      advance_shards(next_event);
      now_ = next_event;
    }
    events_.run_until(now_);
  }
}

bool Federation::migrate(ShardId from_shard, cluster::GlobalVmId vm, ShardId to_shard,
                         cluster::HostId to_host) {
  if (from_shard >= shards_.size() || to_shard >= shards_.size())
    throw std::invalid_argument("Federation: bad shard id");
  cluster::Cluster& src = *shards_[from_shard];
  if (vm >= src.vm_count()) throw std::invalid_argument("Federation: bad VM id");
  // Same shard: the intra-rack tier, i.e. the shard's own engine.
  if (from_shard == to_shard) return src.migrate(vm, to_host);

  cluster::Cluster& dst = *shards_[to_shard];
  if (to_host >= dst.host_count())
    throw std::invalid_argument("Federation: bad destination host");
  if (src.vm_state(vm) != cluster::VmState::kRunning) return false;
  if (src.migrating(vm) || src.federation_locked(vm)) return false;
  if (dst.crashed(to_host)) return false;
  const FedVmId fed = local_fed_[from_shard][vm];
  if (flights_.contains(fed)) return false;

  Link& link = link_between(from_shard, to_shard);
  const cluster::HostId from_host = src.residence(vm);
  const platform::HostClass& src_cls = src.host_class(from_host);
  const platform::HostClass& dst_cls = dst.host_class(to_host);
  const cluster::ClusterVmConfig cfg = src.vm_config(vm);

  // Fence the shard manager off the VM, then register the destination end
  // (slot parked, SLA registered, host powered, state kInbound).
  src.set_federation_lock(vm, true);
  const cluster::GlobalVmId dst_vm = dst.admit_inbound(cfg, to_host);
  local_fed_[to_shard].resize(dst.vm_count(), 0);
  local_fed_[to_shard][dst_vm] = fed;

  cluster::MigrationEngine::Endpoint source{&src.host(from_host), src.home_slot(vm),
                                            &src.agent(from_host), 0};
  cluster::MigrationEngine::Endpoint dest{&dst.host(to_host),
                                          dst.slot_on(to_host, dst_vm),
                                          &dst.agent(to_host), 0};
  flights_.emplace(fed, FedFlight{fed, from_shard, to_shard, vm, dst_vm, from_host,
                                  to_host, link.model.kind, cfg.memory_mb});
  pending_in_mb_[to_shard] += cfg.memory_mb;
  // The link's own engine runs the classic pre-copy over the federation
  // queue; class-aware surcharges land as a stretched dirty rate and a
  // per-flight switch-over addition (which survives bandwidth re-plans).
  link.engine->begin(
      fed, global_host_id(from_shard, from_host), global_host_id(to_shard, to_host),
      source, dest, cfg.memory_mb,
      cfg.dirty_mb_per_s * link.model.dirty_factor(src_cls, dst_cls), cfg.vm.credit,
      now_, [this, fed](const cluster::MigrationRecord& r) { on_link_done(fed, r); },
      [this, fed](const cluster::MigrationRecord&) { on_link_detach(fed); },
      link.model.switch_penalty(src_cls, dst_cls));
  ++moves_issued_;
  return true;
}

void Federation::on_link_detach(FedVmId vm) {
  // Stop-and-copy began: the engine drained the source slot; the source
  // shard now sees the VM as departed (no SLA, no planning, no recovery).
  const FedFlight& f = flights_.at(vm);
  shards_[f.from_shard]->mark_departed(f.src_vm);
}

void Federation::on_link_done(FedVmId vm, const cluster::MigrationRecord& record) {
  const auto it = flights_.find(vm);
  const FedFlight f = it->second;
  flights_.erase(it);
  pending_in_mb_[f.to_shard] -= f.memory_mb;
  // The engine's attach already delivered workload + credit into the
  // destination slot; complete_inbound flips kInbound -> kRunning and
  // charges the pause.
  shards_[f.to_shard]->complete_inbound(f.dst_vm, record.downtime);
  vm_loc_[f.vm] = FedVmRef{f.to_shard, f.dst_vm};
  records_.push_back(FedMigrationRecord{f.vm, f.from_shard, f.to_shard, f.from_host,
                                        f.to_host, f.src_vm, f.dst_vm, f.link, record});
}

void Federation::set_link_bandwidth(ShardId a, ShardId b, double mb_per_s) {
  if (a >= shards_.size() || b >= shards_.size())
    throw std::invalid_argument("Federation: bad shard id");
  if (a == b) {  // the shard's internal (intra-rack) link
    shards_[a]->set_link_bandwidth(mb_per_s);
    return;
  }
  Link& link = link_between(a, b);
  link.model.migration.link_mb_per_s = mb_per_s;
  // Re-plans this link's in-flight pre-copies and nobody else's — each
  // link is its own engine, so the isolation is structural.
  link.engine->set_link_bandwidth(mb_per_s, now_);
}

Federation::ShardLoad Federation::shard_load(ShardId s) const {
  const cluster::Cluster& c = *shards_.at(s);
  ShardLoad load;
  const cluster::ClusterManager* mgr = c.manager();
  if (mgr != nullptr && mgr->config().incremental && mgr->book_ready()) {
    // The shard's own incremental book, summed — the aggregate is as fresh
    // as the shard's last planning tick, exactly the staleness a real
    // cross-cluster control plane would see.
    const consolidation::BookTotals totals = mgr->book_totals();
    load.capacity_mb = totals.host_memory_mb;
    load.reserved_mb = totals.vm_memory_mb;
  } else {
    // Direct deterministic scan (no manager, or the book isn't seeded yet).
    for (cluster::HostId h = 0; h < c.host_count(); ++h)
      if (!c.crashed(h)) load.capacity_mb += c.host_memory_mb(h);
    const auto nv = static_cast<cluster::GlobalVmId>(c.vm_count());
    for (cluster::GlobalVmId g = 0; g < nv; ++g)
      if (c.vm_state(g) == cluster::VmState::kRunning)
        load.reserved_mb += c.vm_config(g).memory_mb;
  }
  load.reserved_mb += pending_in_mb_.at(s);
  return load;
}

void Federation::planner_tick(common::SimTime /*now*/) {
  ++planner_ticks_;
  const auto n = static_cast<ShardId>(shards_.size());
  std::vector<ShardLoad> loads(n);
  for (ShardId s = 0; s < n; ++s) loads[s] = shard_load(s);

  std::size_t budget = cfg_.planner.max_cross_shard_per_tick;
  while (budget > 0) {
    // Most- and least-utilized shard; ties break to the lowest id (strict
    // comparisons), keeping the choice deterministic.
    ShardId hi = 0;
    ShardId lo = 0;
    for (ShardId s = 1; s < n; ++s) {
      if (loads[s].utilization() > loads[hi].utilization()) hi = s;
      if (loads[s].utilization() < loads[lo].utilization()) lo = s;
    }
    if (hi == lo) break;
    if (loads[hi].utilization() - loads[lo].utilization() <
        cfg_.planner.imbalance_threshold)
      break;

    // Destination: the least-loaded shard's live host with the most free
    // reserved memory (running + inbound residents subtracted; ties to the
    // lowest id).
    const cluster::Cluster& dst = *shards_[lo];
    bool have_host = false;
    cluster::HostId best_host = 0;
    double best_free = 0.0;
    for (cluster::HostId h = 0; h < dst.host_count(); ++h) {
      if (dst.crashed(h)) continue;
      double free = dst.host_memory_mb(h);
      for (const auto& [gid, slot] : dst.host_slots(h)) {
        if (dst.residence(gid) != h) continue;
        const cluster::VmState st = dst.vm_state(gid);
        if (st == cluster::VmState::kRunning || st == cluster::VmState::kInbound)
          free -= dst.vm_config(gid).memory_mb;
      }
      if (!have_host || free > best_free) {
        have_host = true;
        best_free = free;
        best_host = h;
      }
    }
    if (!have_host) break;

    // Candidate: the most-loaded shard's largest running, unfenced VM that
    // fits the chosen destination (ties to the lowest id).
    const cluster::Cluster& srcc = *shards_[hi];
    bool have_vm = false;
    cluster::GlobalVmId best_vm = 0;
    double best_mem = 0.0;
    const auto nv = static_cast<cluster::GlobalVmId>(srcc.vm_count());
    for (cluster::GlobalVmId g = 0; g < nv; ++g) {
      if (srcc.vm_state(g) != cluster::VmState::kRunning) continue;
      if (srcc.migrating(g) || srcc.federation_locked(g)) continue;
      const double mem = srcc.vm_config(g).memory_mb;
      if (mem > best_free) continue;
      if (!have_vm || mem > best_mem) {
        have_vm = true;
        best_mem = mem;
        best_vm = g;
      }
    }
    if (!have_vm) break;
    if (!migrate(hi, best_vm, lo, best_host)) break;
    --budget;
    // Book the move against this tick's aggregates so the loop converges
    // instead of re-picking the same pair forever.
    loads[hi].reserved_mb -= best_mem;
    loads[lo].reserved_mb += best_mem;
  }
}

}  // namespace pas::fed
