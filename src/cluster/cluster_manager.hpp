// Online cluster reconfiguration: the paper's §2.3 loop made dynamic.
//
// Every period the manager re-runs the consolidation planner from
// src/consolidation/ against the fleet's purchased credits and memory
// footprints (reservations, not demand: SLAs must be honorable whatever
// the guests do), and converges the cluster toward the plan with a bounded
// number of live migrations per tick (mass reshuffles are how real
// consolidation systems melt down). It then applies the paper's two knobs per powered-on
// host: VOVO — hosts left without residents are powered off, hosts the plan
// needs are powered on — and PAS-style DVFS: each host drops to the lowest
// P-state whose capacity covers its observed absolute load plus a margin,
// with every resident VM's credit re-compensated for the chosen state
// (eq. 4), so frequency scaling never silently shrinks what a customer
// bought. Disabling the DVFS step (kPinnedMax) gives the
// consolidation-only baseline the cluster bench compares against — the gap
// is the paper's "DVFS is complementary to consolidation", measured on a
// running fleet instead of a frozen placement.
//
// The planner's inputs (credits, memory) are static, so the plan is stable
// between ticks: once the fleet matches it, the manager issues no further
// migrations until demand moves the DVFS step.
//
// Planning is DELTA-DRIVEN by default (ClusterManagerConfig::incremental):
// the manager keeps a persistent consolidation::HostBook mirroring the
// live fleet and feeds it a dirty set from cluster events — crash sweeps,
// recoveries, losses — delivered through note_vm_event/note_host_crashed
// and coalesced per id until the next tick. The book replays only what
// changed (falling back to a full rebuild on host-set changes) and its
// output is byte-identical to the from-scratch place_ffd the legacy path
// (incremental = false) runs, so both modes issue the same migrations and
// record the same energy. On ticks where nothing changed at all — the
// topology version is stable, no events are pending, and the fleet already
// matches the plan — the consolidation pass is skipped outright
// (plans_skipped()); VOVO and DVFS still run, as they track live load.
// replan_every_tick defeats the skip for debugging.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "consolidation/host_book.hpp"

namespace pas::cluster {

struct ClusterManagerConfig {
  common::SimTime period = common::seconds(60);
  /// Live-migration budget per tick.
  std::size_t max_migrations_per_tick = 4;
  enum class Dvfs {
    kPinnedMax,  // consolidation only: every powered-on host at max frequency
    kPas,        // per-host PAS frequency choice + eq. 4 credit compensation
  };
  Dvfs dvfs = Dvfs::kPas;
  /// Capacity margin (absolute % points) the chosen P-state must leave
  /// above the observed load — the down-scaling headroom that prevents
  /// saturate/escalate flapping.
  double load_margin_pct = 5.0;
  /// Issue migrations at all (off = DVFS-only / static-placement baseline).
  bool consolidate = true;
  /// Power empty hosts off / needed hosts on.
  bool vovo = true;
  /// Heterogeneity-aware packing: the planner tries hosts in ascending
  /// idle-watts-per-MB order (consolidation::packing_cost), so VMs
  /// consolidate onto the machines that charge the least standby power for
  /// the binding resource and VOVO retires the expensive ones. No-op on
  /// uniform fleets (every cost ties — index order); turning it off on a
  /// mixed fleet gives the naive index-order baseline the cluster bench
  /// prices the feature against.
  bool efficient_first = true;
  /// Crash recovery: how often to retry restarting an orphaned VM before
  /// abandoning it as lost. Attempt k (1-based) failing schedules the next
  /// try backoff·2^(k−1) later — exponential backoff, evaluated at tick
  /// granularity (a retry due mid-period waits for the next tick).
  std::size_t max_restart_attempts = 5;
  common::SimTime restart_backoff = common::seconds(20);
  /// Delta-driven planning through the persistent HostBook (see the file
  /// header). Off = the legacy from-scratch spec rebuild + full FFD every
  /// tick — the A/B baseline the scale bench prices the feature against.
  bool incremental = true;
  /// Debug knob: run the full consolidation pass even on provably
  /// unchanged ticks (disables the early-out, not the book).
  bool replan_every_tick = false;
};

class ClusterManager {
 public:
  explicit ClusterManager(ClusterManagerConfig config = {});

  [[nodiscard]] common::SimTime period() const { return cfg_.period; }
  [[nodiscard]] const ClusterManagerConfig& config() const { return cfg_; }

  /// One reconfiguration pass; invoked by the Cluster on its event queue.
  void on_tick(common::SimTime now, Cluster& cluster);

  /// Declares a planner brownout: every tick with from ≤ now < until is
  /// skipped outright (counted in ticks_skipped()), and the first tick
  /// after the window re-plans from whatever state the fleet drifted into
  /// — the graceful-recovery property the chaos tests pin. Callable any
  /// time (the fault injector calls it at arm time).
  void add_brownout(common::SimTime from, common::SimTime until);

  // --- cluster event feed (the Cluster calls these as faults/recoveries
  // --- land; same-id events coalesce until the next planning tick) ---
  /// A VM's lifecycle changed (orphaned, lost, restarted): reconcile its
  /// book membership at the next planning tick.
  void note_vm_event(GlobalVmId vm);
  /// A host crashed: drop it from the book (full-rebuild fallback) at the
  /// next planning tick.
  void note_host_crashed(HostId host);

  // --- external control (the ctl::ControlPlane's policy gate) ---
  enum class ExternalAdmission : std::uint8_t {
    kAdmitted = 0,
    kBrownout,  // the planner is browned out at `now`; nothing may migrate
    kNoBudget,  // this period's migration budget is already spent
  };

  /// Admission control for an externally-commanded migration: external
  /// commands obey the same rules as planner decisions — browned-out
  /// periods issue nothing, and planner + operator share ONE
  /// max_migrations_per_tick budget per period (kAdmitted decrements it,
  /// so an admitted command must be followed by the migrate call).
  [[nodiscard]] ExternalAdmission admit_external_migration(common::SimTime now);

  // --- diagnostics ---
  [[nodiscard]] std::size_t ticks() const { return ticks_; }
  [[nodiscard]] std::size_t ticks_skipped() const { return ticks_skipped_; }
  [[nodiscard]] std::size_t migrations_issued() const { return migrations_issued_; }
  /// Crash-recovery restarts issued / orphans abandoned after
  /// max_restart_attempts failures.
  [[nodiscard]] std::size_t restarts_issued() const { return restarts_issued_; }
  [[nodiscard]] std::size_t restarts_abandoned() const { return restarts_abandoned_; }
  /// VMs the *last* plan could not place (left resident where they were —
  /// the explicit-unplaced contract of consolidation::place_ffd).
  [[nodiscard]] std::size_t last_plan_unplaced() const { return last_plan_unplaced_; }
  /// Consolidation passes skipped by the unchanged-tick early-out.
  [[nodiscard]] std::size_t plans_skipped() const { return plans_skipped_; }
  /// Ticks that actually ran the consolidation pass, and the total wall
  /// time they spent in it (spec sync + plan + issuance) — the scale
  /// bench's planner-ns-per-tick gate divides these.
  [[nodiscard]] std::size_t planning_ticks() const { return planning_ticks_; }
  [[nodiscard]] std::uint64_t planner_ns() const { return planner_ns_; }
  /// Events that coalesced into an already-pending one before a tick.
  [[nodiscard]] std::size_t events_coalesced() const { return events_coalesced_; }
  [[nodiscard]] const consolidation::HostBookStats& book_stats() const {
    return book_.stats();
  }
  /// True once the incremental book mirrors the fleet (first planning tick
  /// on the incremental path has run).
  [[nodiscard]] bool book_ready() const { return book_seeded_; }
  /// Aggregate of the book's live hosts / planned VMs — the per-shard
  /// summary the federation's global planner balances. Only meaningful
  /// when book_ready(); reflects the fleet as of the last reconcile (the
  /// shard's planning cadence), which is exactly the staleness a real
  /// cross-cluster tier would see.
  [[nodiscard]] consolidation::BookTotals book_totals() const { return book_.totals(); }

 private:
  void recover_orphans(common::SimTime now, Cluster& cluster);
  void apply_dvfs(Cluster& cluster);
  /// Seeds the book on first use, then reconciles the pending dirty set.
  void sync_book(const Cluster& cluster);
  [[nodiscard]] static consolidation::HostSpec plan_host_spec(const Cluster& cluster,
                                                              HostId host);
  [[nodiscard]] static consolidation::VmSpec plan_vm_spec(const Cluster& cluster,
                                                          GlobalVmId vm);

  struct RetryState {
    std::size_t attempts = 0;
    common::SimTime next_attempt{};  // earliest tick allowed to retry
  };

  [[nodiscard]] bool browned_out(common::SimTime now) const;

  ClusterManagerConfig cfg_;
  std::vector<std::pair<common::SimTime, common::SimTime>> brownouts_;
  /// Remaining migrations this period — planner issuance and external
  /// admissions both draw it down; every live tick resets it.
  std::size_t migration_budget_left_ = 0;
  std::map<GlobalVmId, RetryState> retry_;  // ordered: deterministic iteration
  std::size_t ticks_ = 0;
  std::size_t ticks_skipped_ = 0;
  std::size_t migrations_issued_ = 0;
  std::size_t restarts_issued_ = 0;
  std::size_t restarts_abandoned_ = 0;
  std::size_t last_plan_unplaced_ = 0;

  // Incremental-planning state.
  consolidation::HostBook book_;
  bool book_seeded_ = false;
  std::vector<std::uint8_t> in_book_;        // per VM id: live in the book
  std::set<GlobalVmId> pending_vms_;         // ordered: deterministic replay
  std::set<HostId> pending_crashes_;
  std::uint64_t last_version_ = 0;
  bool have_version_ = false;
  bool converged_ = false;
  std::size_t plans_skipped_ = 0;
  std::size_t planning_ticks_ = 0;
  std::uint64_t planner_ns_ = 0;
  std::size_t events_coalesced_ = 0;
};

}  // namespace pas::cluster
