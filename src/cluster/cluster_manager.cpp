#include "cluster/cluster_manager.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "consolidation/consolidation.hpp"
#include "core/compensation.hpp"
#include "platform/host_class.hpp"

namespace pas::cluster {

ClusterManager::ClusterManager(ClusterManagerConfig config) : cfg_(config) {
  if (cfg_.period.us() <= 0)
    throw std::invalid_argument("ClusterManager: period must be positive");
}

void ClusterManager::on_tick(common::SimTime /*now*/, Cluster& cluster) {
  ++ticks_;

  if (cfg_.consolidate) {
    // Re-plan from scratch: FFD by memory with credit reservation, exactly
    // the static §2.3 planner — what changed is that the "current
    // placement" now disagrees with it, and the disagreement is worked off
    // by live migrations. Placement is reservation-driven (memory +
    // purchased credit, both static): SLAs must be honorable whatever the
    // demand does, and static inputs keep the plan stable between ticks.
    // Observed load enters below, in the DVFS step.
    std::vector<consolidation::VmSpec> vms;
    vms.reserve(cluster.vm_count());
    for (GlobalVmId gid = 0; gid < cluster.vm_count(); ++gid) {
      const ClusterVmConfig& vc = cluster.vm_config(gid);
      consolidation::VmSpec spec;
      spec.name = vc.vm.name;
      spec.credit = vc.vm.credit;
      spec.memory_mb = vc.memory_mb;
      vms.push_back(std::move(spec));
    }
    // Host specs come from each host's *actual* platform class — ladder,
    // power model, memory and NUMA layout per machine, not one template —
    // so the plan sees the fleet the paper's Table 2 describes: machines
    // that differ.
    std::vector<consolidation::HostSpec> hosts;
    hosts.reserve(cluster.host_count());
    for (HostId h = 0; h < cluster.host_count(); ++h) {
      const platform::HostClass& cls = cluster.host_class(h);
      consolidation::HostSpec spec = platform::to_host_spec(cls);
      spec.name += "-" + std::to_string(h);
      // Reserve the hypervisor agent's credit out of the schedulable
      // capacity, like Dom0 in the paper's single-host budget.
      spec.cpu_capacity_pct = cls.cpu_capacity_pct - cluster.config().agent_credit;
      hosts.push_back(std::move(spec));
    }

    consolidation::FfdOptions ffd;
    ffd.efficient_first = cfg_.efficient_first;
    const consolidation::Placement plan = consolidation::place_ffd(vms, hosts, ffd);
    // Unplaced VMs are an explicit outcome: they stay where they are, and
    // the count is surfaced so operators see unserved reservations.
    last_plan_unplaced_ = plan.unplaced;

    std::size_t budget = cfg_.max_migrations_per_tick;
    for (GlobalVmId gid = 0; gid < cluster.vm_count() && budget > 0; ++gid) {
      const std::size_t target = plan.assignment[gid];
      if (target == consolidation::kUnplaced) continue;
      if (cluster.migrating(gid)) continue;
      if (static_cast<HostId>(target) == cluster.residence(gid)) continue;
      if (cluster.migrate(gid, static_cast<HostId>(target))) {
        ++migrations_issued_;
        --budget;
      }
    }
  }

  if (cfg_.vovo) {
    for (HostId h = 0; h < cluster.host_count(); ++h) {
      if (cluster.host_in_use(h))
        cluster.set_powered(h, true);
      else
        cluster.set_powered(h, false);
    }
  }

  apply_dvfs(cluster);
}

void ClusterManager::apply_dvfs(Cluster& cluster) {
  for (HostId h = 0; h < cluster.host_count(); ++h) {
    hv::Host& host = cluster.host(h);
    const cpu::FrequencyLadder& ladder = host.cpu().ladder();

    std::size_t target = ladder.max_index();
    if (cfg_.dvfs == ClusterManagerConfig::Dvfs::kPas && cluster.powered_on(h)) {
      // Listing 1.1 against the smoothed absolute load, with headroom so a
      // saturated-at-capacity host escalates instead of flapping.
      const double load = host.monitor().avg_absolute_load_pct() + cfg_.load_margin_pct;
      target = core::compute_new_freq_index(ladder, load);
    }
    const std::size_t applied = host.cpufreq().request(target);

    // Eq. 4: whatever the state, resident VMs keep the computing capacity
    // they purchased. (At max frequency the compensated credit equals the
    // purchased credit, so this also undoes stale compensation.)
    for (GlobalVmId gid = 0; gid < cluster.vm_count(); ++gid) {
      if (cluster.residence(gid) != h) continue;
      // A VM in its stop-and-copy pause has been drained from this slot
      // (cap 0, balance 0); re-capping it would mint credit into an empty
      // slot. The attach re-establishes the destination cap.
      if (cluster.engine().detached(gid)) continue;
      const common::Percent credit = cluster.vm_config(gid).vm.credit;
      host.scheduler().set_cap(Cluster::slot(gid),
                               core::compensated_credit(credit, ladder, applied));
    }
    host.scheduler().set_cap(0, core::compensated_credit(cluster.config().agent_credit,
                                                         ladder, applied));
  }
}

}  // namespace pas::cluster
