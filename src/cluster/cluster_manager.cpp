#include "cluster/cluster_manager.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "consolidation/consolidation.hpp"
#include "core/compensation.hpp"
#include "platform/host_class.hpp"

namespace pas::cluster {

namespace {

consolidation::FfdOptions ffd_options(const ClusterManagerConfig& cfg) {
  consolidation::FfdOptions ffd;
  ffd.efficient_first = cfg.efficient_first;
  return ffd;
}

}  // namespace

ClusterManager::ClusterManager(ClusterManagerConfig config)
    : cfg_(config), migration_budget_left_(config.max_migrations_per_tick),
      book_(ffd_options(config)) {
  if (cfg_.period.us() <= 0)
    throw std::invalid_argument("ClusterManager: period must be positive");
  if (cfg_.restart_backoff.us() <= 0)
    throw std::invalid_argument("ClusterManager: restart backoff must be positive");
}

bool ClusterManager::browned_out(common::SimTime now) const {
  for (const auto& [from, until] : brownouts_)
    if (now >= from && now < until) return true;
  return false;
}

ClusterManager::ExternalAdmission ClusterManager::admit_external_migration(
    common::SimTime now) {
  if (browned_out(now)) return ExternalAdmission::kBrownout;
  if (migration_budget_left_ == 0) return ExternalAdmission::kNoBudget;
  --migration_budget_left_;
  return ExternalAdmission::kAdmitted;
}

void ClusterManager::add_brownout(common::SimTime from, common::SimTime until) {
  if (until <= from)
    throw std::invalid_argument("ClusterManager: empty brownout window");
  brownouts_.emplace_back(from, until);
}

void ClusterManager::note_vm_event(GlobalVmId vm) {
  if (!pending_vms_.insert(vm).second) ++events_coalesced_;
}

void ClusterManager::note_host_crashed(HostId host) {
  if (!pending_crashes_.insert(host).second) ++events_coalesced_;
}

consolidation::HostSpec ClusterManager::plan_host_spec(const Cluster& cluster,
                                                       HostId host) {
  // Host specs come from each host's *actual* platform class — ladder,
  // power model, memory and NUMA layout per machine, not one template —
  // so the plan sees the fleet the paper's Table 2 describes: machines
  // that differ.
  const platform::HostClass& cls = cluster.host_class(host);
  consolidation::HostSpec spec = platform::to_host_spec(cls);
  spec.name += "-" + std::to_string(host);
  // Reserve the hypervisor agent's credit out of the schedulable
  // capacity, like Dom0 in the paper's single-host budget.
  spec.cpu_capacity_pct = cls.cpu_capacity_pct - cluster.config().agent_credit;
  return spec;
}

consolidation::VmSpec ClusterManager::plan_vm_spec(const Cluster& cluster,
                                                   GlobalVmId vm) {
  const ClusterVmConfig& vc = cluster.vm_config(vm);
  consolidation::VmSpec spec;
  spec.name = vc.vm.name;
  spec.credit = vc.vm.credit;
  spec.memory_mb = vc.memory_mb;
  return spec;
}

void ClusterManager::sync_book(const Cluster& cluster) {
  if (!book_seeded_) {
    // First planning tick: mirror the live fleet into the book wholesale.
    for (HostId h = 0; h < cluster.host_count(); ++h) {
      if (cluster.crashed(h)) continue;
      book_.add_host(h, plan_host_spec(cluster, h));
    }
    in_book_.assign(cluster.vm_count(), 0);
    for (GlobalVmId gid = 0; gid < cluster.vm_count(); ++gid) {
      if (cluster.vm_state(gid) != VmState::kRunning) continue;
      book_.add_vm(gid, plan_vm_spec(cluster, gid));
      in_book_[gid] = 1;
    }
    book_seeded_ = true;
    pending_vms_.clear();
    pending_crashes_.clear();
    return;
  }

  if (in_book_.size() < cluster.vm_count()) in_book_.resize(cluster.vm_count(), 0);
  for (const HostId h : pending_crashes_)
    if (book_.has_host(h)) book_.remove_host(h);
  pending_crashes_.clear();
  for (const GlobalVmId vm : pending_vms_) {
    // Membership mirrors the legacy filter: running VMs are planned,
    // orphaned/lost ones are not. Specs themselves are static (purchased
    // credit + memory), so a VM already on the right side of that line
    // needs nothing — the event was a residency change, which the
    // issuance pass below reconciles against the (unchanged) plan.
    const bool live = cluster.vm_state(vm) == VmState::kRunning;
    if (live && !in_book_[vm]) {
      book_.add_vm(vm, plan_vm_spec(cluster, vm));
      in_book_[vm] = 1;
    } else if (!live && in_book_[vm]) {
      book_.remove_vm(vm);
      in_book_[vm] = 0;
    }
  }
  pending_vms_.clear();
}

void ClusterManager::recover_orphans(common::SimTime now, Cluster& cluster) {
  for (const GlobalVmId vm : cluster.orphaned_vms()) {
    RetryState& retry = retry_[vm];
    if (now < retry.next_attempt) continue;

    // First-fit over live hosts by *reservations* (memory + purchased
    // credit of running residents), the same static inputs the planner
    // packs by. Deliberate simplification: destinations of in-flight
    // migrations are not reserved — an overshoot is corrected by the next
    // consolidation pass, exactly like any other drift.
    const ClusterVmConfig& vc = cluster.vm_config(vm);
    std::vector<HostId> order;
    for (HostId h = 0; h < cluster.host_count(); ++h)
      if (!cluster.crashed(h)) order.push_back(h);
    if (cfg_.efficient_first) {
      std::stable_sort(order.begin(), order.end(), [&](HostId a, HostId b) {
        return consolidation::packing_cost(platform::to_host_spec(cluster.host_class(a))) <
               consolidation::packing_cost(platform::to_host_spec(cluster.host_class(b)));
      });
    }
    HostId target = 0;
    bool found = false;
    for (const HostId h : order) {
      double free_mem = cluster.host_memory_mb(h);
      double free_cpu =
          cluster.host_class(h).cpu_capacity_pct - cluster.config().agent_credit;
      // Only VMs with a slot on h can be resident there, and host_slots is
      // ascending by VM id — the same accumulation order as a full id scan
      // restricted to residents, so the sums are bit-identical.
      for (const auto& entry : cluster.host_slots(h)) {
        const GlobalVmId other = entry.first;
        if (other == vm) continue;
        if (cluster.vm_state(other) != VmState::kRunning) continue;
        if (cluster.residence(other) != h) continue;
        free_mem -= cluster.vm_config(other).memory_mb;
        free_cpu -= cluster.vm_config(other).vm.credit;
      }
      if (vc.memory_mb <= free_mem && vc.vm.credit <= free_cpu) {
        target = h;
        found = true;
        break;
      }
    }

    if (found && cluster.restart_vm(vm, target)) {
      ++restarts_issued_;
      retry_.erase(vm);
      continue;
    }
    ++retry.attempts;
    if (retry.attempts >= cfg_.max_restart_attempts) {
      cluster.mark_lost(vm);
      ++restarts_abandoned_;
      retry_.erase(vm);
    } else {
      // Exponential backoff: attempt k failing waits backoff·2^(k−1).
      retry.next_attempt =
          now + common::usec(cfg_.restart_backoff.us() << (retry.attempts - 1));
    }
  }
}

void ClusterManager::on_tick(common::SimTime now, Cluster& cluster) {
  if (browned_out(now)) {
    // Browned out: the planner is simply absent this period. No partial
    // work — the next live tick re-plans from the drifted state. The
    // budget stays frozen too: external commands are rejected outright
    // inside the window (admit_external_migration), not billed against a
    // phantom period.
    ++ticks_skipped_;
    return;
  }
  ++ticks_;
  // A fresh period, a fresh migration budget — shared between this tick's
  // issuance loop and any external migrate commands that fire before the
  // next tick (admit_external_migration draws the same counter down).
  migration_budget_left_ = cfg_.max_migrations_per_tick;

  // Crash recovery runs before consolidation so a restarted VM is placed
  // by reservation fit now and re-packed by the very plan computed below.
  recover_orphans(now, cluster);

  if (cfg_.consolidate) {
    const std::uint64_t version = cluster.topology_version();
    const bool can_skip = cfg_.incremental && !cfg_.replan_every_tick &&
                          book_seeded_ && have_version_ && version == last_version_ &&
                          pending_vms_.empty() && pending_crashes_.empty() && converged_;
    if (can_skip) {
      // Provably unchanged tick: no residency/power/lifecycle change since
      // the last pass (the topology version is stable), no pending events,
      // and the last plan was fully worked off. The planner's inputs are
      // static, so a re-plan would recompute the identical placement and
      // the issuance loop would find every VM already on target — skipping
      // the whole pass is observationally identical and O(1).
      ++plans_skipped_;
    } else {
      const auto wall0 = std::chrono::steady_clock::now();
      // Plan with FFD by memory with credit reservation, exactly the
      // static §2.3 planner — what changed is that the "current placement"
      // now disagrees with it, and the disagreement is worked off by live
      // migrations. Placement is reservation-driven (memory + purchased
      // credit, both static): SLAs must be honorable whatever the demand
      // does, and static inputs keep the plan stable between ticks.
      // Observed load enters below, in the DVFS step.
      // Plan over the *live* fleet only: running VMs (orphaned/lost ones
      // have no slot to pack) onto non-crashed hosts. Plan indices are
      // therefore dense over the survivors — plan_vms/plan_hosts map them
      // back.
      const consolidation::Placement* plan = nullptr;
      consolidation::Placement legacy_plan;
      std::vector<GlobalVmId> plan_vms;
      std::vector<HostId> plan_hosts;
      if (cfg_.incremental) {
        // Delta path: reconcile pending events into the persistent book
        // and let it replay only what changed. Byte-identical to the
        // legacy branch below by the book's equivalence contract.
        sync_book(cluster);
        plan = &book_.plan();
        plan_vms.reserve(book_.planned_vms().size());
        for (const std::size_t id : book_.planned_vms())
          plan_vms.push_back(static_cast<GlobalVmId>(id));
        plan_hosts.reserve(book_.planned_hosts().size());
        for (const std::size_t id : book_.planned_hosts())
          plan_hosts.push_back(static_cast<HostId>(id));
      } else {
        // Legacy path: rebuild the dense spec vectors and re-run full FFD
        // from scratch — the A/B baseline the scale bench prices the
        // incremental planner against.
        std::vector<consolidation::VmSpec> vms;
        vms.reserve(cluster.vm_count());
        for (GlobalVmId gid = 0; gid < cluster.vm_count(); ++gid) {
          if (cluster.vm_state(gid) != VmState::kRunning) continue;
          vms.push_back(plan_vm_spec(cluster, gid));
          plan_vms.push_back(gid);
        }
        std::vector<consolidation::HostSpec> hosts;
        hosts.reserve(cluster.host_count());
        for (HostId h = 0; h < cluster.host_count(); ++h) {
          if (cluster.crashed(h)) continue;
          hosts.push_back(plan_host_spec(cluster, h));
          plan_hosts.push_back(h);
        }
        legacy_plan = consolidation::place_ffd(vms, hosts, ffd_options(cfg_));
        plan = &legacy_plan;
      }
      // Unplaced VMs are an explicit outcome: they stay where they are, and
      // the count is surfaced so operators see unserved reservations.
      last_plan_unplaced_ = plan->unplaced;

      std::size_t disagree = 0;
      for (std::size_t i = 0; i < plan_vms.size(); ++i) {
        const GlobalVmId gid = plan_vms[i];
        const std::size_t target = plan->assignment[i];
        if (target == consolidation::kUnplaced) continue;
        const HostId target_host = plan_hosts[target];
        if (target_host == cluster.residence(gid)) continue;
        // Off-plan. The issuance below matches the pre-incremental loop
        // exactly (same order, same budget, same skips); the count feeds
        // the convergence flag the early-out needs.
        ++disagree;
        if (migration_budget_left_ == 0) continue;
        if (cluster.migrating(gid)) continue;
        if (cluster.migrate(gid, target_host)) {
          ++migrations_issued_;
          --migration_budget_left_;
        }
      }
      // Converged = the fleet already matched the plan before this pass
      // issued anything. Recording the version AFTER issuance means our
      // own migrations don't force a re-plan — their completions bump the
      // version again and do.
      converged_ = disagree == 0;
      last_version_ = cluster.topology_version();
      have_version_ = true;
      ++planning_ticks_;
      planner_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wall0)
              .count());
    }
  }

  if (cfg_.vovo) {
    for (HostId h = 0; h < cluster.host_count(); ++h) {
      if (cluster.crashed(h)) continue;  // already off, and not revivable
      if (cluster.host_in_use(h))
        cluster.set_powered(h, true);
      else
        cluster.set_powered(h, false);
    }
  }

  apply_dvfs(cluster);
}

void ClusterManager::apply_dvfs(Cluster& cluster) {
  for (HostId h = 0; h < cluster.host_count(); ++h) {
    if (cluster.crashed(h)) continue;  // nothing left to scale or re-cap
    hv::Host& host = cluster.host(h);
    const cpu::FrequencyLadder& ladder = host.cpu().ladder();

    std::size_t target = ladder.max_index();
    if (cfg_.dvfs == ClusterManagerConfig::Dvfs::kPas && cluster.powered_on(h)) {
      // Listing 1.1 against the smoothed absolute load, with headroom so a
      // saturated-at-capacity host escalates instead of flapping.
      const double load = host.monitor().avg_absolute_load_pct() + cfg_.load_margin_pct;
      target = core::compute_new_freq_index(ladder, load);
    }
    const std::size_t applied = host.cpufreq().request(target);

    // Eq. 4: whatever the state, resident VMs keep the computing capacity
    // they purchased. (At max frequency the compensated credit equals the
    // purchased credit, so this also undoes stale compensation.) Only VMs
    // holding a slot here can be resident — host_slots walks them in
    // ascending VM id, the order the dense id scan used.
    for (const auto& entry : cluster.host_slots(h)) {
      const GlobalVmId gid = entry.first;
      if (cluster.residence(gid) != h) continue;
      if (cluster.vm_state(gid) != VmState::kRunning) continue;
      // A VM in its stop-and-copy pause has been drained from this slot
      // (cap 0, balance 0); re-capping it would mint credit into an empty
      // slot. The attach re-establishes the destination cap.
      if (cluster.engine().detached(gid)) continue;
      const common::Percent credit = cluster.vm_config(gid).vm.credit;
      host.scheduler().set_cap(entry.second,
                               core::compensated_credit(credit, ladder, applied));
    }
    host.scheduler().set_cap(0, core::compensated_credit(cluster.config().agent_credit,
                                                         ladder, applied));
  }
}

}  // namespace pas::cluster
