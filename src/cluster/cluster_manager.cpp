#include "cluster/cluster_manager.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "consolidation/consolidation.hpp"
#include "core/compensation.hpp"
#include "platform/host_class.hpp"

namespace pas::cluster {

ClusterManager::ClusterManager(ClusterManagerConfig config) : cfg_(config) {
  if (cfg_.period.us() <= 0)
    throw std::invalid_argument("ClusterManager: period must be positive");
  if (cfg_.restart_backoff.us() <= 0)
    throw std::invalid_argument("ClusterManager: restart backoff must be positive");
}

void ClusterManager::add_brownout(common::SimTime from, common::SimTime until) {
  if (until <= from)
    throw std::invalid_argument("ClusterManager: empty brownout window");
  brownouts_.emplace_back(from, until);
}

void ClusterManager::recover_orphans(common::SimTime now, Cluster& cluster) {
  for (const GlobalVmId vm : cluster.orphaned_vms()) {
    RetryState& retry = retry_[vm];
    if (now < retry.next_attempt) continue;

    // First-fit over live hosts by *reservations* (memory + purchased
    // credit of running residents), the same static inputs the planner
    // packs by. Deliberate simplification: destinations of in-flight
    // migrations are not reserved — an overshoot is corrected by the next
    // consolidation pass, exactly like any other drift.
    const ClusterVmConfig& vc = cluster.vm_config(vm);
    std::vector<HostId> order;
    for (HostId h = 0; h < cluster.host_count(); ++h)
      if (!cluster.crashed(h)) order.push_back(h);
    if (cfg_.efficient_first) {
      std::stable_sort(order.begin(), order.end(), [&](HostId a, HostId b) {
        return consolidation::packing_cost(platform::to_host_spec(cluster.host_class(a))) <
               consolidation::packing_cost(platform::to_host_spec(cluster.host_class(b)));
      });
    }
    HostId target = 0;
    bool found = false;
    for (const HostId h : order) {
      double free_mem = cluster.host_memory_mb(h);
      double free_cpu =
          cluster.host_class(h).cpu_capacity_pct - cluster.config().agent_credit;
      for (GlobalVmId other = 0; other < cluster.vm_count(); ++other) {
        if (other == vm) continue;
        if (cluster.vm_state(other) != VmState::kRunning) continue;
        if (cluster.residence(other) != h) continue;
        free_mem -= cluster.vm_config(other).memory_mb;
        free_cpu -= cluster.vm_config(other).vm.credit;
      }
      if (vc.memory_mb <= free_mem && vc.vm.credit <= free_cpu) {
        target = h;
        found = true;
        break;
      }
    }

    if (found && cluster.restart_vm(vm, target)) {
      ++restarts_issued_;
      retry_.erase(vm);
      continue;
    }
    ++retry.attempts;
    if (retry.attempts >= cfg_.max_restart_attempts) {
      cluster.mark_lost(vm);
      ++restarts_abandoned_;
      retry_.erase(vm);
    } else {
      // Exponential backoff: attempt k failing waits backoff·2^(k−1).
      retry.next_attempt =
          now + common::usec(cfg_.restart_backoff.us() << (retry.attempts - 1));
    }
  }
}

void ClusterManager::on_tick(common::SimTime now, Cluster& cluster) {
  for (const auto& [from, until] : brownouts_) {
    if (now >= from && now < until) {
      // Browned out: the planner is simply absent this period. No partial
      // work — the next live tick re-plans from the drifted state.
      ++ticks_skipped_;
      return;
    }
  }
  ++ticks_;

  // Crash recovery runs before consolidation so a restarted VM is placed
  // by reservation fit now and re-packed by the very plan computed below.
  recover_orphans(now, cluster);

  if (cfg_.consolidate) {
    // Re-plan from scratch: FFD by memory with credit reservation, exactly
    // the static §2.3 planner — what changed is that the "current
    // placement" now disagrees with it, and the disagreement is worked off
    // by live migrations. Placement is reservation-driven (memory +
    // purchased credit, both static): SLAs must be honorable whatever the
    // demand does, and static inputs keep the plan stable between ticks.
    // Observed load enters below, in the DVFS step.
    // Plan over the *live* fleet only: running VMs (orphaned/lost ones have
    // no slot to pack) onto non-crashed hosts. Plan indices are therefore
    // dense over the survivors — plan_vms/plan_hosts map them back.
    std::vector<consolidation::VmSpec> vms;
    std::vector<GlobalVmId> plan_vms;
    vms.reserve(cluster.vm_count());
    for (GlobalVmId gid = 0; gid < cluster.vm_count(); ++gid) {
      if (cluster.vm_state(gid) != VmState::kRunning) continue;
      const ClusterVmConfig& vc = cluster.vm_config(gid);
      consolidation::VmSpec spec;
      spec.name = vc.vm.name;
      spec.credit = vc.vm.credit;
      spec.memory_mb = vc.memory_mb;
      vms.push_back(std::move(spec));
      plan_vms.push_back(gid);
    }
    // Host specs come from each host's *actual* platform class — ladder,
    // power model, memory and NUMA layout per machine, not one template —
    // so the plan sees the fleet the paper's Table 2 describes: machines
    // that differ.
    std::vector<consolidation::HostSpec> hosts;
    std::vector<HostId> plan_hosts;
    hosts.reserve(cluster.host_count());
    for (HostId h = 0; h < cluster.host_count(); ++h) {
      if (cluster.crashed(h)) continue;
      const platform::HostClass& cls = cluster.host_class(h);
      consolidation::HostSpec spec = platform::to_host_spec(cls);
      spec.name += "-" + std::to_string(h);
      // Reserve the hypervisor agent's credit out of the schedulable
      // capacity, like Dom0 in the paper's single-host budget.
      spec.cpu_capacity_pct = cls.cpu_capacity_pct - cluster.config().agent_credit;
      hosts.push_back(std::move(spec));
      plan_hosts.push_back(h);
    }

    consolidation::FfdOptions ffd;
    ffd.efficient_first = cfg_.efficient_first;
    const consolidation::Placement plan = consolidation::place_ffd(vms, hosts, ffd);
    // Unplaced VMs are an explicit outcome: they stay where they are, and
    // the count is surfaced so operators see unserved reservations.
    last_plan_unplaced_ = plan.unplaced;

    std::size_t budget = cfg_.max_migrations_per_tick;
    for (std::size_t i = 0; i < plan_vms.size() && budget > 0; ++i) {
      const GlobalVmId gid = plan_vms[i];
      const std::size_t target = plan.assignment[i];
      if (target == consolidation::kUnplaced) continue;
      if (cluster.migrating(gid)) continue;
      const HostId target_host = plan_hosts[target];
      if (target_host == cluster.residence(gid)) continue;
      if (cluster.migrate(gid, target_host)) {
        ++migrations_issued_;
        --budget;
      }
    }
  }

  if (cfg_.vovo) {
    for (HostId h = 0; h < cluster.host_count(); ++h) {
      if (cluster.crashed(h)) continue;  // already off, and not revivable
      if (cluster.host_in_use(h))
        cluster.set_powered(h, true);
      else
        cluster.set_powered(h, false);
    }
  }

  apply_dvfs(cluster);
}

void ClusterManager::apply_dvfs(Cluster& cluster) {
  for (HostId h = 0; h < cluster.host_count(); ++h) {
    if (cluster.crashed(h)) continue;  // nothing left to scale or re-cap
    hv::Host& host = cluster.host(h);
    const cpu::FrequencyLadder& ladder = host.cpu().ladder();

    std::size_t target = ladder.max_index();
    if (cfg_.dvfs == ClusterManagerConfig::Dvfs::kPas && cluster.powered_on(h)) {
      // Listing 1.1 against the smoothed absolute load, with headroom so a
      // saturated-at-capacity host escalates instead of flapping.
      const double load = host.monitor().avg_absolute_load_pct() + cfg_.load_margin_pct;
      target = core::compute_new_freq_index(ladder, load);
    }
    const std::size_t applied = host.cpufreq().request(target);

    // Eq. 4: whatever the state, resident VMs keep the computing capacity
    // they purchased. (At max frequency the compensated credit equals the
    // purchased credit, so this also undoes stale compensation.)
    for (GlobalVmId gid = 0; gid < cluster.vm_count(); ++gid) {
      if (cluster.residence(gid) != h) continue;
      if (cluster.vm_state(gid) != VmState::kRunning) continue;
      // A VM in its stop-and-copy pause has been drained from this slot
      // (cap 0, balance 0); re-capping it would mint credit into an empty
      // slot. The attach re-establishes the destination cap.
      if (cluster.engine().detached(gid)) continue;
      const common::Percent credit = cluster.vm_config(gid).vm.credit;
      host.scheduler().set_cap(Cluster::slot(gid),
                               core::compensated_credit(credit, ladder, applied));
    }
    host.scheduler().set_cap(0, core::compensated_credit(cluster.config().agent_credit,
                                                         ladder, applied));
  }
}

}  // namespace pas::cluster
